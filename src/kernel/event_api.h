// The scalable event-delivery API the paper evaluates as "new event API"
// (Section 5.5, citing Banga/Druschel/Mogul '98): the application declares
// interest in a descriptor once; the kernel queues event records and
// delivers batches at O(events) cost instead of select()'s O(descriptors).
//
// On the resource-container kernel, pending events are ordered by the
// network priority of the descriptor's bound container, so a saturated
// server sees high-priority connections' events first.
#ifndef SRC_KERNEL_EVENT_API_H_
#define SRC_KERNEL_EVENT_API_H_

#include <cstdint>
#include <deque>
#include <functional>
#include <optional>
#include <unordered_map>
#include <vector>

namespace kernel {

struct Event {
  enum class Kind {
    kAcceptReady,  // listen socket has an established connection
    kDataReady,    // connection has a request queued
    kConnClosed,   // peer closed / reset
    kSynDrop,      // SYNs were dropped on this listen socket (Section 5.7)
  };
  int fd = -1;
  Kind kind = Kind::kDataReady;
  int priority = 0;
};

class EventChannel {
 public:
  // Declares interest in the object behind `fd`.
  void Register(const void* obj, int fd) { registered_[obj] = fd; }
  void Unregister(const void* obj) { registered_.erase(obj); }

  // The registered descriptor for `obj`, if any.
  std::optional<int> FdFor(const void* obj) const {
    auto it = registered_.find(obj);
    if (it == registered_.end()) {
      return std::nullopt;
    }
    return it->second;
  }

  // Queues an event. When `priority_order` is set (RC kernel) the record is
  // inserted ahead of lower-priority pending events (FIFO within equal
  // priority). `dedupe` suppresses the push when an identical (fd, kind)
  // record is already pending (used for kSynDrop, which would otherwise
  // flood the channel during an attack).
  void Push(Event e, bool priority_order, bool dedupe = false);

  bool HasPending() const { return !pending_.empty(); }
  std::size_t pending_count() const { return pending_.size(); }

  // Removes and returns up to `max` events.
  std::vector<Event> Drain(int max);

  // Single waiter (the thread blocked in WaitEvents); invoked on push.
  std::function<void()> waiter;

 private:
  std::unordered_map<const void*, int> registered_;
  std::deque<Event> pending_;
};

}  // namespace kernel

#endif  // SRC_KERNEL_EVENT_API_H_
