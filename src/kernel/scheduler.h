// CPU scheduler interface. Two implementations:
//   DecayUsageScheduler        — classic process-centric time sharing
//                                (the "unmodified" and "LRP" systems)
//   HierarchicalScheduler      — resource containers as principals, with
//                                fixed shares, CPU limits, and priorities
//                                (the "RC" system, Section 4.3 / 5.1)
#ifndef SRC_KERNEL_SCHEDULER_H_
#define SRC_KERNEL_SCHEDULER_H_

#include <optional>

#include "src/rc/container.h"
#include "src/sim/time.h"

namespace kernel {

class Thread;

class CpuScheduler {
 public:
  virtual ~CpuScheduler() = default;

  // Adds a runnable thread to the run queue (keyed by its sched_hint leaf).
  virtual void Enqueue(Thread* t, sim::SimTime now) = 0;

  // Picks and removes the next thread to run; nullptr when nothing is
  // eligible (idle, or all runnable work is throttled).
  virtual Thread* PickNext(sim::SimTime now) = 0;

  // Records a CPU charge against `c` (and, for hierarchical policies, its
  // ancestors). Called for every consumed slice, including misaccounted
  // softint charges — that is precisely how the paper's "unlucky process"
  // effect feeds back into scheduling.
  virtual void OnCharge(rc::ResourceContainer& c, sim::Duration usec,
                        sim::SimTime now) = 0;

  // Forces any batched charges into scheduler state. Schedulers flush
  // implicitly before every decision; callers need this only before external
  // reads of charge-derived state, or before mutating container attributes
  // that pending charges were accumulated under. Default: no-op (unbatched
  // schedulers).
  virtual void FlushCharges() {}

  // Moves an already-queued thread to a new leaf (used when the kernel
  // network thread's highest-priority pending container changes). No-op if
  // the thread is not currently queued.
  virtual void MigrateQueued(Thread* t, sim::SimTime now) = 0;

  // Removes a thread from any run queue (exit while queued).
  virtual void Remove(Thread* t) = 0;

  // True when a queued thread should preempt `running` immediately (wakeup
  // preemption, as in the BSD-derived schedulers the paper builds on).
  // Default: rely on quantum-granularity re-arbitration only.
  virtual bool ShouldPreempt(const Thread& running) const {
    (void)running;
    return false;
  }

  // Periodic usage decay.
  virtual void Tick(sim::SimTime now) = 0;

  // When PickNext() returned nullptr while throttled work exists: the time
  // at which a throttled container becomes eligible again.
  virtual std::optional<sim::SimTime> NextEligibleTime(sim::SimTime now) = 0;

  // Drops scheduler state for a destroyed container. Share-tree-backed
  // policies register directly with the ContainerManager as
  // rc::LifecycleListener and need nothing here; the default no-op serves
  // them. Policies with private per-container state (decay usage) override.
  virtual void OnContainerDestroyed(rc::ResourceContainer& c) { (void)c; }

  // Unregisters any container-lifecycle listeners the policy holds (kernel
  // teardown: containers die in bulk and scheduler state no longer matters).
  virtual void DetachLifecycle() {}

  // Number of runnable threads currently queued (diagnostics).
  virtual int runnable_count() const = 0;
};

}  // namespace kernel

#endif  // SRC_KERNEL_SCHEDULER_H_
