#include "src/kernel/thread.h"

#include <cstdio>
#include <cstdlib>

#include "src/common/check.h"
#include "src/kernel/kernel.h"

namespace kernel {

void Program::promise_type::FinalAwaiter::await_suspend(
    std::coroutine_handle<promise_type> h) noexcept {
  Thread* t = h.promise().thread;
  RC_CHECK(t != nullptr);
  t->program_finished = true;
  t->MarkDone();
}

void Program::promise_type::unhandled_exception() {
  std::fprintf(stderr, "fatal: exception escaped a simulated program\n");
  std::abort();
}

Thread::Thread(Kernel* kernel, Process* process, ThreadId id, std::string name)
    : kernel_(kernel), process_(process), id_(id), name_(std::move(name)) {}

Thread::~Thread() {
  if (frame) {
    frame.destroy();
  }
}

void Thread::Unblock() {
  RC_CHECK(state_ == State::kBlocked);
  state_ = State::kRunnable;
  kernel_->tracer().Record(kernel_->now(), TraceKind::kWake, id_, 0, 0);
  kernel_->scheduler().Enqueue(this, kernel_->now());
  kernel_->PokeCpus();
}

}  // namespace kernel
