// Client populations: named groups of HTTP clients driven by a pluggable
// arrival process. The paper's experiments use closed-loop S-Clients; the
// scenario library adds open-loop Poisson arrivals (flash crowds, diurnal
// load) and on-off bursts, all behind one interface so the scenario
// compiler composes them declaratively.
#ifndef SRC_LOAD_POPULATION_H_
#define SRC_LOAD_POPULATION_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "src/load/dists.h"
#include "src/load/http_client.h"
#include "src/load/wire.h"
#include "src/sim/rng.h"
#include "src/sim/stats.h"

namespace load {

struct PopulationConfig {
  std::string name = "clients";

  enum class Arrival {
    kClosedLoop,  // `clients` S-Clients, each looping forever
    kOpenLoop,    // Poisson session arrivals at `rate_per_sec` over a pool
    kOnOff,       // closed loop that alternates fixed on/off periods
  };
  Arrival arrival = Arrival::kClosedLoop;

  int clients = 1;  // population size (open loop: concurrency pool cap)

  // Open loop: mean session arrival rate. Each session runs one client
  // activation (`conns_per_session` connections, then the client parks).
  // Arrivals finding every pool member busy are shed and counted.
  double rate_per_sec = 100.0;
  int conns_per_session = 1;

  // On-off: fixed-length activity bursts separated by silences.
  sim::Duration on_period = sim::Sec(1);
  sim::Duration off_period = sim::Sec(1);

  // Template for every member; `addr`, `doc_seed`, `conns_per_activation`
  // and `on_park` are filled in per client by the population.
  HttpClient::Config client;

  // When non-null, every member shares this document set (the pointee must
  // outlive the population).
  const std::vector<HttpClient::DocChoice>* doc_set = nullptr;

  // Client addresses: kFlat packs them linearly above `base_addr`;
  // kBlocks250 spreads them over /24 blocks of 250 hosts each, so CIDR
  // listen filters see distinct prefixes (rcsim's classic layout).
  enum class AddressLayout { kFlat, kBlocks250 };
  AddressLayout layout = AddressLayout::kFlat;
  net::Addr base_addr = net::MakeAddr(10, 0, 0, 0);

  std::uint32_t client_id_base = 0;  // first client id (must be unique per wire)
  std::uint64_t seed = 1;            // per-population RNG stream

  // Delay between successive client starts (closed loop / on-off).
  sim::Duration stagger = sim::Msec(1);
};

// A named group of clients sharing one arrival process. Construction
// attaches every member to the wire; Start() begins issuing load.
class Population {
 public:
  Population(sim::Simulator* simulator, Wire* wire, PopulationConfig config);

  Population(const Population&) = delete;
  Population& operator=(const Population&) = delete;

  void Start(sim::SimTime at);
  void Stop();

  const std::string& name() const { return config_.name; }
  const PopulationConfig& config() const { return config_; }
  std::size_t size() const { return clients_.size(); }

  // --- Aggregate statistics -------------------------------------------

  std::uint64_t completed() const;
  std::uint64_t failures() const;
  std::uint64_t timeouts() const;
  // Arrivals shed because the open-loop pool was exhausted.
  std::uint64_t shed_arrivals() const { return shed_arrivals_; }

  // Merges every member's response times (milliseconds) into `out`.
  void MergeLatencies(sim::SampleSet& out) const;

  void ResetStats();

 private:
  void StartClosedLoop(sim::SimTime at);
  void ScheduleArrival();   // open loop
  void ScheduleOnPhase(sim::SimTime at);
  void ScheduleOffPhase(sim::SimTime at);
  net::Addr AddrFor(int index) const;

  sim::Simulator* const simr_;
  Wire* const wire_;
  PopulationConfig config_;
  sim::Rng rng_;

  std::vector<std::unique_ptr<HttpClient>> clients_;
  std::vector<HttpClient*> parked_;  // open-loop free pool
  bool stopped_ = false;
  std::uint64_t shed_arrivals_ = 0;
};

}  // namespace load

#endif  // SRC_LOAD_POPULATION_H_
