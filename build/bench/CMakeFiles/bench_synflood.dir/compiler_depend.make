# Empty compiler generated dependencies file for bench_synflood.
# This may be replaced when dependencies are built.
