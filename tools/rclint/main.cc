// rclint command-line driver.
//
// Usage:
//   rclint [--root=DIR] [--fix-suggestions] [--list-rules] PATH...
//
// Each PATH (file or directory, resolved under --root) is scanned; rule
// scoping keys off the path relative to the root (src/, bench/, tools/).
// Exits 0 when the tree is clean, 1 when any diagnostic fired, 2 on usage
// or I/O errors.
#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "tools/rclint/rclint_lib.h"

namespace {

namespace fs = std::filesystem;

bool HasSourceExtension(const fs::path& p) {
  const std::string ext = p.extension().string();
  return ext == ".h" || ext == ".cc" || ext == ".cpp" || ext == ".hpp";
}

// Directories never worth scanning (build trees, VCS metadata).
bool SkippedDir(const std::string& name) {
  return name == ".git" || name.rfind("build", 0) == 0;
}

void CollectFiles(const fs::path& p, std::vector<fs::path>* out) {
  if (fs::is_regular_file(p)) {
    if (HasSourceExtension(p)) {
      out->push_back(p);
    }
    return;
  }
  if (!fs::is_directory(p)) {
    return;
  }
  for (const auto& entry : fs::directory_iterator(p)) {
    const std::string name = entry.path().filename().string();
    if (entry.is_directory()) {
      if (!SkippedDir(name)) {
        CollectFiles(entry.path(), out);
      }
    } else if (entry.is_regular_file() && HasSourceExtension(entry.path())) {
      out->push_back(entry.path());
    }
  }
}

std::string RelativeTo(const fs::path& file, const fs::path& root) {
  std::error_code ec;
  fs::path rel = fs::relative(file, root, ec);
  std::string s = (ec ? file : rel).generic_string();
  // Paths outside the root (or absolute inputs) keep their given spelling.
  return s;
}

int Usage() {
  std::fprintf(stderr,
               "usage: rclint [--root=DIR] [--fix-suggestions] [--list-rules] "
               "PATH...\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  fs::path root = fs::current_path();
  bool fix_suggestions = false;
  std::vector<std::string> paths;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--root=", 0) == 0) {
      root = arg.substr(7);
    } else if (arg == "--fix-suggestions") {
      fix_suggestions = true;
    } else if (arg == "--list-rules") {
      using rclint::Rule;
      for (Rule r : {Rule::kDeterminism, Rule::kCharging, Rule::kHotPath,
                     Rule::kLayering, Rule::kBadSuppression}) {
        std::printf("%s\n", rclint::RuleName(r));
      }
      return 0;
    } else if (arg.rfind("--", 0) == 0) {
      return Usage();
    } else {
      paths.push_back(arg);
    }
  }
  if (paths.empty()) {
    return Usage();
  }

  std::vector<fs::path> files;
  for (const std::string& p : paths) {
    fs::path resolved = fs::path(p).is_absolute() ? fs::path(p) : root / p;
    if (!fs::exists(resolved)) {
      std::fprintf(stderr, "rclint: no such path: %s\n", resolved.c_str());
      return 2;
    }
    CollectFiles(resolved, &files);
  }
  std::sort(files.begin(), files.end());
  files.erase(std::unique(files.begin(), files.end()), files.end());

  std::vector<rclint::Diagnostic> diags;
  for (const fs::path& file : files) {
    std::ifstream in(file, std::ios::binary);
    if (!in) {
      std::fprintf(stderr, "rclint: cannot read %s\n", file.c_str());
      return 2;
    }
    std::ostringstream buf;
    buf << in.rdbuf();
    rclint::FileInput input{RelativeTo(file, root), buf.str()};
    rclint::AnalyzeFile(input, &diags);
  }

  for (const rclint::Diagnostic& d : diags) {
    std::cout << rclint::FormatDiagnostic(d, fix_suggestions) << "\n";
  }
  if (!diags.empty()) {
    std::cout << "rclint: " << diags.size() << " diagnostic"
              << (diags.size() == 1 ? "" : "s") << " in " << files.size()
              << " files\n";
    return 1;
  }
  std::cerr << "rclint: clean (" << files.size() << " files)\n";
  return 0;
}
