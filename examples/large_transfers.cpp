// The "long file transfer" story (Section 4.8, Figure 9):
//
//   "If a particular connection (for example, a long file transfer) consumes
//    a lot of system resources, this consumption is charged to the resource
//    container. As a result, the scheduling priority of the associated
//    thread will decay, leading to the preferential scheduling of threads
//    handling other connections."
//
// A multi-threaded server handles two persistent bulk-download connections
// (1 MB responses: ~14 ms of kernel CPU each) alongside eight interactive
// clients fetching 1 KB documents. With per-connection containers, the bulk
// connections' containers accrue usage, so the interactive threads always
// run first; without containers all threads share one principal and the
// interactive requests queue behind the bulk work.
//
//   $ ./large_transfers
#include <cstdio>
#include <iostream>
#include <memory>
#include <vector>

#include "src/httpd/threaded_server.h"
#include "src/load/http_client.h"
#include "src/load/wire.h"
#include "src/xp/table.h"

namespace {

struct Outcome {
  double interactive_ms;
  double bulk_tput;
};

Outcome Run(bool use_containers) {
  sim::Simulator simr;
  kernel::Kernel kern(&simr, kernel::ResourceContainerSystemConfig());
  load::Wire wire(&simr, &kern);
  kern.Start();
  httpd::FileCache cache;
  cache.AddDocument(1, 1024);
  cache.AddDocument(9, 1024 * 1024);  // the big one

  httpd::ServerConfig scfg;
  scfg.use_containers = use_containers;
  scfg.worker_threads = 16;
  httpd::MultiThreadedServer server(&kern, &cache, scfg);
  server.Start();

  std::vector<std::unique_ptr<load::HttpClient>> interactive;
  std::vector<std::unique_ptr<load::HttpClient>> bulk;
  std::uint32_t id = 1;
  for (int i = 0; i < 8; ++i) {
    load::HttpClient::Config cfg;
    cfg.addr = net::Addr{net::MakeAddr(10, 1, 0, 0).v + static_cast<std::uint32_t>(i) + 1};
    cfg.requests_per_conn = 1000000;  // persistent
    cfg.think_time = sim::Msec(5);
    interactive.push_back(std::make_unique<load::HttpClient>(&simr, &wire, id++, cfg));
  }
  for (int i = 0; i < 2; ++i) {
    load::HttpClient::Config cfg;
    cfg.addr = net::Addr{net::MakeAddr(10, 2, 0, 0).v + static_cast<std::uint32_t>(i) + 1};
    cfg.requests_per_conn = 1000000;
    cfg.doc_id = 9;
    cfg.response_bytes = 1024 * 1024;
    bulk.push_back(std::make_unique<load::HttpClient>(&simr, &wire, id++, cfg));
  }
  sim::SimTime at = 0;
  for (auto& c : interactive) {
    c->Start(at += 1000);
  }
  for (auto& c : bulk) {
    c->Start(at += 1000);
  }

  simr.RunUntil(sim::Sec(2));
  for (auto& c : interactive) {
    c->ResetStats();
  }
  for (auto& c : bulk) {
    c->ResetStats();
  }
  simr.RunUntil(simr.now() + sim::Sec(5));

  Outcome out{0, 0};
  std::size_t n = 0;
  for (auto& c : interactive) {
    out.interactive_ms +=
        c->latencies().mean() * static_cast<double>(c->latencies().count());
    n += c->latencies().count();
  }
  out.interactive_ms = n ? out.interactive_ms / static_cast<double>(n) : 0;
  for (auto& c : bulk) {
    out.bulk_tput += static_cast<double>(c->completed()) / 5.0;
  }
  return out;
}

}  // namespace

int main() {
  Outcome without = Run(false);
  Outcome with = Run(true);

  xp::Table table({"configuration", "interactive latency ms", "bulk transfers/s"});
  table.AddRow({"shared principal (no containers)", xp::FormatDouble(without.interactive_ms, 2),
                xp::FormatDouble(without.bulk_tput, 1)});
  table.AddRow({"container per connection", xp::FormatDouble(with.interactive_ms, 2),
                xp::FormatDouble(with.bulk_tput, 1)});
  table.Print(std::cout);

  std::printf(
      "\nWith containers, each bulk connection's usage decays its own scheduling\n"
      "standing instead of the whole server's, so interactive requests cut in\n"
      "front of the 14 ms send bursts.\n");
  return 0;
}
