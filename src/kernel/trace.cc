#include "src/kernel/trace.h"

#include <iomanip>

namespace kernel {

void Tracer::Dump(std::ostream& os, std::size_t max_lines) const {
  std::size_t emitted = 0;
  ForEach([&](const TraceEvent& e) {
    if (emitted++ >= max_lines) {
      return;
    }
    os << std::setw(12) << e.at << "us  " << std::setw(9) << TraceKindName(e.kind);
    if (e.thread_id != 0) {
      os << "  thread=" << e.thread_id;
    }
    if (e.container_id != 0) {
      os << "  container=" << e.container_id;
    }
    if (e.arg != 0) {
      os << "  " << e.arg << "us";
    }
    if (e.cpu != 0) {
      os << "  cpu=" << e.cpu;
    }
    os << '\n';
  });
  if (dropped_ > 0) {
    os << "(" << dropped_ << " older events overwritten)\n";
  }
}

}  // namespace kernel
