file(REMOVE_RECURSE
  "librc_httpd.a"
)
