// Table 1 — cost of resource-container primitives.
//
// The paper measured its Digital UNIX syscalls on a 500 MHz Alpha 21164
// (create 2.36 us, destroy 2.10 us, change thread binding 1.04 us, obtain
// usage 2.04 us, set/get attributes 2.10 us, move between processes 3.15 us,
// obtain handle 1.90 us). Here we measure this library's primitives on the
// host CPU; the reproduced claim is the *relationship*: every primitive costs
// orders of magnitude less than one HTTP transaction (~338 us of CPU), so
// per-request container use adds negligible overhead (verified end-to-end by
// bench_baseline's Section 5.4 rows).
#include <benchmark/benchmark.h>

#include <cstring>
#include <vector>

#include "src/kernel/fd_table.h"
#include "src/rc/binding.h"
#include "src/rc/manager.h"
#include "src/telemetry/bench_io.h"

namespace {

void BM_CreateDestroyContainer(benchmark::State& state) {
  rc::ContainerManager manager;
  for (auto _ : state) {
    auto c = manager.Create(nullptr, "bench");
    benchmark::DoNotOptimize(c);
    // Dropping the last reference destroys the container.
  }
}
BENCHMARK(BM_CreateDestroyContainer);

void BM_ChangeThreadResourceBinding(benchmark::State& state) {
  rc::ContainerManager manager;
  auto a = manager.Create(nullptr, "a").value();
  auto b = manager.Create(nullptr, "b").value();
  rc::BindingPoint binding;
  sim::SimTime now = 0;
  bool flip = false;
  for (auto _ : state) {
    binding.Bind(flip ? a : b, now++);
    flip = !flip;
  }
}
BENCHMARK(BM_ChangeThreadResourceBinding);

void BM_ObtainContainerUsage(benchmark::State& state) {
  rc::ContainerManager manager;
  auto c = manager.Create(nullptr, "c").value();
  c->ChargeCpu(123, rc::CpuKind::kUser);
  for (auto _ : state) {
    rc::ResourceUsage u = c->usage();
    benchmark::DoNotOptimize(u);
  }
}
BENCHMARK(BM_ObtainContainerUsage);

void BM_ObtainSubtreeUsage(benchmark::State& state) {
  rc::ContainerManager manager;
  rc::Attributes parent_attrs;
  parent_attrs.sched.cls = rc::SchedClass::kFixedShare;
  parent_attrs.sched.fixed_share = 0.5;
  auto parent = manager.Create(nullptr, "p", parent_attrs).value();
  std::vector<rc::ContainerRef> children;
  for (int i = 0; i < static_cast<int>(state.range(0)); ++i) {
    children.push_back(manager.Create(parent, "child").value());
  }
  for (auto _ : state) {
    rc::ResourceUsage u = parent->SubtreeUsage();
    benchmark::DoNotOptimize(u);
  }
}
BENCHMARK(BM_ObtainSubtreeUsage)->Arg(1)->Arg(10)->Arg(100);

void BM_SetGetAttributes(benchmark::State& state) {
  rc::ContainerManager manager;
  auto c = manager.Create(nullptr, "c").value();
  rc::Attributes attrs = c->attributes();
  for (auto _ : state) {
    attrs.sched.priority = attrs.sched.priority == 16 ? 17 : 16;
    benchmark::DoNotOptimize(c->SetAttributes(attrs));
    benchmark::DoNotOptimize(c->attributes());
  }
}
BENCHMARK(BM_SetGetAttributes);

void BM_MoveContainerBetweenProcesses(benchmark::State& state) {
  rc::ContainerManager manager;
  auto c = manager.Create(nullptr, "c").value();
  kernel::FdTable sender;
  kernel::FdTable receiver;
  sender.Install(c);
  for (auto _ : state) {
    // "The sending process retains access to the container": install a copy
    // in the receiver, then drop it again.
    int fd = receiver.Install(c);
    benchmark::DoNotOptimize(receiver.Remove(fd));
  }
}
BENCHMARK(BM_MoveContainerBetweenProcesses);

void BM_ObtainHandleForExistingContainer(benchmark::State& state) {
  rc::ContainerManager manager;
  auto c = manager.Create(nullptr, "c").value();
  const rc::ContainerId id = c->id();
  for (auto _ : state) {
    auto handle = manager.Lookup(id);
    benchmark::DoNotOptimize(handle);
  }
}
BENCHMARK(BM_ObtainHandleForExistingContainer);

void BM_SchedulerBindingTouch(benchmark::State& state) {
  rc::ContainerManager manager;
  std::vector<rc::ContainerRef> cs;
  for (int i = 0; i < 64; ++i) {
    cs.push_back(manager.Create(nullptr, "c").value());
  }
  rc::SchedulerBinding binding;
  sim::SimTime now = 0;
  std::size_t i = 0;
  for (auto _ : state) {
    binding.Touch(cs[i++ % cs.size()], now++);
  }
}
BENCHMARK(BM_SchedulerBindingTouch);

void BM_ChargeCpuWithHierarchy(benchmark::State& state) {
  rc::ContainerManager manager;
  rc::Attributes fixed;
  fixed.sched.cls = rc::SchedClass::kFixedShare;
  fixed.sched.fixed_share = 0.01;
  rc::ContainerRef c = manager.root();
  // A chain of the requested depth.
  for (int d = 0; d < static_cast<int>(state.range(0)); ++d) {
    c = manager.Create(c, "level", fixed).value();
  }
  for (auto _ : state) {
    c->ChargeCpu(1, rc::CpuKind::kKernel);
  }
}
BENCHMARK(BM_ChargeCpuWithHierarchy)->Arg(1)->Arg(4)->Arg(16);

// Console reporter that additionally records every run's real time into the
// BENCH_primitives.json report.
class ReportingReporter : public benchmark::ConsoleReporter {
 public:
  explicit ReportingReporter(telemetry::BenchReport* report) : report_(report) {}

  void ReportRuns(const std::vector<Run>& runs) override {
    for (const Run& run : runs) {
      if (run.error_occurred) continue;
      report_->Add(run.benchmark_name(), run.GetAdjustedRealTime(),
                   benchmark::GetTimeUnitString(run.time_unit), "per_iteration");
    }
    ConsoleReporter::ReportRuns(runs);
  }

 private:
  telemetry::BenchReport* report_;
};

}  // namespace

int main(int argc, char** argv) {
  telemetry::BenchReport report("primitives", argc, argv);

  // benchmark::Initialize rejects flags it does not know; hide ours.
  std::vector<char*> bench_argv;
  for (int i = 0; i < argc; ++i) {
    if (std::strncmp(argv[i], "--metrics-out", 13) == 0) {
      if (std::strcmp(argv[i], "--metrics-out") == 0 && i + 1 < argc) ++i;
      continue;
    }
    bench_argv.push_back(argv[i]);
  }
  int bench_argc = static_cast<int>(bench_argv.size());
  benchmark::Initialize(&bench_argc, bench_argv.data());
  if (benchmark::ReportUnrecognizedArguments(bench_argc, bench_argv.data())) {
    return 1;
  }

  ReportingReporter reporter(&report);
  benchmark::RunSpecifiedBenchmarks(&reporter);
  benchmark::Shutdown();

  if (!report.Flush()) {
    std::fprintf(stderr, "failed to write %s\n", report.path().c_str());
    return 1;
  }
  return 0;
}
