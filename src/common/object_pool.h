// A freelist allocator for the data plane's per-item objects (queued disk
// requests, queued packets). A busy simulated server allocates and frees one
// of these per request; recycling the storage keeps the hot path out of the
// general-purpose allocator and its size-class locking, and keeps recycled
// objects cache-warm.
//
// Storage discipline: Create() placement-constructs into a recycled block
// (or a fresh one when the freelist is empty); Destroy() runs the destructor
// and pushes the block back. Blocks are only returned to the system when the
// pool itself is destroyed, so the pool must outlive every object it made.
#ifndef SRC_COMMON_OBJECT_POOL_H_
#define SRC_COMMON_OBJECT_POOL_H_

#include <cstddef>
#include <cstdint>
#include <new>
#include <utility>
#include <vector>

#include "src/common/check.h"

namespace rccommon {

template <typename T>
class ObjectPool {
 public:
  ObjectPool() = default;
  ObjectPool(const ObjectPool&) = delete;
  ObjectPool& operator=(const ObjectPool&) = delete;

  ~ObjectPool() {
    for (void* block : free_) {
      ::operator delete(block, std::align_val_t{alignof(T)});
    }
  }

  template <typename... Args>
  RC_HOT_PATH T* Create(Args&&... args) {
    void* block;
    if (free_.empty()) {
      // rclint: allow(hotpath): cold-start slab growth when the freelist is
      // empty; steady state always recycles.
      block = ::operator new(sizeof(T), std::align_val_t{alignof(T)});
      ++allocated_;
    } else {
      block = free_.back();
      free_.pop_back();
      ++recycled_;
    }
    // rclint: allow(hotpath): placement construction into recycled storage —
    // no heap allocation.
    return new (block) T(std::forward<Args>(args)...);
  }

  RC_HOT_PATH void Destroy(T* object) {
    if (object == nullptr) {
      return;
    }
    object->~T();
    // rclint: allow(hotpath): freelist push; capacity reached steady state
    // after the first churn wave, so this is store+bump.
    free_.push_back(object);
  }

  // Diagnostics: system allocations vs freelist reuses.
  std::uint64_t allocated() const { return allocated_; }
  std::uint64_t recycled() const { return recycled_; }
  std::size_t free_count() const { return free_.size(); }

 private:
  std::vector<void*> free_;
  std::uint64_t allocated_ = 0;
  std::uint64_t recycled_ = 0;
};

}  // namespace rccommon

#endif  // SRC_COMMON_OBJECT_POOL_H_
