// A counting semaphore for simulated threads (used e.g. by the
// process-per-connection server's master/worker hand-off).
#ifndef SRC_KERNEL_SYNC_H_
#define SRC_KERNEL_SYNC_H_

#include <deque>
#include <functional>

#include "src/common/thread_annotations.h"
#include "src/kernel/kernel.h"
#include "src/kernel/syscalls.h"
#include "src/verify/lockset.h"

namespace kernel {

class Semaphore {
 public:
  explicit Semaphore(int initial = 0) : count_(initial) {}

  // Releases one unit; wakes the longest-waiting thread, if any. In lockset
  // terms a Post releases the semaphore (a release of a lock the poster never
  // acquired — the hand-off pattern — is a no-op in the detector).
  void Post() {
    serial_.AssertHeld();
    if (det_ != nullptr) {
      det_->OnRelease(det_->current_thread(), this);
    }
    if (!waiters_.empty()) {
      auto w = std::move(waiters_.front());
      waiters_.pop_front();
      w();
      return;
    }
    ++count_;
  }

  // Awaitable acquire for the thread behind `sys`.
  Sys::BlockingAwaiter<bool> Wait(const Sys& sys) {
    Thread* t = sys.thread();
    Semaphore* self = this;
    det_ = sys.kernel().race_detector();
    auto start = [self, t](std::optional<bool>* slot) -> bool {
      self->serial_.AssertHeld();
      if (self->count_ > 0) {
        --self->count_;
        if (self->det_ != nullptr) {
          self->det_->OnAcquire(t->id(), self, "semaphore");
        }
        slot->emplace(true);
        return true;
      }
      self->waiters_.push_back([self, t, slot] {
        // Runs in the poster's context: the semaphore is handed to the
        // *waiting* thread, hence the explicit tid.
        self->serial_.AssertHeld();
        if (self->det_ != nullptr) {
          self->det_->OnAcquire(t->id(), self, "semaphore");
        }
        slot->emplace(true);
        t->Unblock();
      });
      return false;
    };
    return {t, sys.kernel().costs().syscall_base, rc::CpuKind::kKernel, std::move(start)};
  }

  int count() const {
    serial_.AssertHeld();
    return count_;
  }
  std::size_t waiter_count() const {
    serial_.AssertHeld();
    return waiters_.size();
  }

 private:
  // Post/Wait interleave only at simulated blocking points, never midway:
  // the semaphore is confined to the kernel's serialized event-loop domain.
  // (Wait/Post hand-off is checked dynamically by the lockset detector; a
  // scope-based ACQUIRE/RELEASE annotation cannot express a lock that is
  // released by a thread that never acquired it.)
  rccommon::Serial serial_;
  int count_ RC_GUARDED_BY(serial_);
  std::deque<std::function<void()>> waiters_ RC_GUARDED_BY(serial_);
  // Captured from the kernel on Wait; null while verification is off.
  verify::RaceDetector* det_ = nullptr;
};

}  // namespace kernel

#endif  // SRC_KERNEL_SYNC_H_
