#include "tools/rclint/rclint_lib.h"

#include <algorithm>
#include <cctype>
#include <cstddef>
#include <set>
#include <string>
#include <vector>

namespace rclint {
namespace {

// ---------------------------------------------------------------------------
// Lexer: a minimal C++ tokenizer. Comments and literals are consumed (their
// content can never violate a rule), suppression comments are collected, and
// preprocessor lines vanish except for quoted #include paths, which surface
// as kInclude tokens for the layering rule.
// ---------------------------------------------------------------------------

struct Token {
  enum class Kind { kIdent, kNumber, kPunct, kInclude };
  Kind kind;
  std::string text;
  int line;
};

struct Suppression {
  int line = 0;
  std::string rule_name;
  bool parsed = false;      // the allow(...) form was recognized at all
  bool has_reason = false;  // a non-empty reason string followed
};

struct LexResult {
  std::vector<Token> tokens;
  std::vector<Suppression> suppressions;
};

bool IsIdentStart(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) != 0 || c == '_';
}
bool IsIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

std::string Trim(std::string_view s) {
  std::size_t b = 0;
  std::size_t e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b])) != 0) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1])) != 0) --e;
  return std::string(s.substr(b, e - b));
}

// Scans comment text for `rclint: allow(<rule>)[: reason]`. The directive
// must be the comment's leading content — prose that merely *mentions* the
// syntax (docs, this file) is not a suppression. `comment` includes the
// opening delimiter.
void ParseSuppression(std::string_view comment, int line,
                      std::vector<Suppression>* out) {
  std::size_t start = 0;
  while (start < comment.size() &&
         (comment[start] == '/' || comment[start] == '*' ||
          std::isspace(static_cast<unsigned char>(comment[start])) != 0)) {
    ++start;
  }
  if (comment.compare(start, 7, "rclint:") != 0) {
    return;
  }
  const std::size_t tag = start;
  Suppression s;
  s.line = line;
  std::string_view rest = comment.substr(tag + 7);
  const std::size_t allow = rest.find("allow");
  const std::size_t open = rest.find('(');
  const std::size_t close = rest.find(')');
  if (allow == std::string_view::npos || open == std::string_view::npos ||
      close == std::string_view::npos || close < open) {
    out->push_back(s);  // unparsable: reported as bad-suppression
    return;
  }
  s.parsed = true;
  s.rule_name = Trim(rest.substr(open + 1, close - open - 1));
  std::string_view after = rest.substr(close + 1);
  const std::size_t colon = after.find(':');
  if (colon != std::string_view::npos) {
    s.has_reason = !Trim(after.substr(colon + 1)).empty();
  }
  out->push_back(s);
}

// Multi-character punctuators, longest first (maximal munch).
constexpr const char* kPuncts[] = {
    "<<=", ">>=", "->*", "...", "::", "->", "++", "--", "+=", "-=", "*=",
    "/=",  "%=",  "&=",  "|=",  "^=", "==", "!=", "<=", ">=", "&&", "||",
    "<<",  ">>",
};

LexResult Lex(const std::string& src) {
  LexResult res;
  std::size_t i = 0;
  const std::size_t n = src.size();
  int line = 1;
  bool at_line_start = true;  // only whitespace since the last newline

  auto peek = [&](std::size_t off) -> char {
    return i + off < n ? src[i + off] : '\0';
  };

  while (i < n) {
    const char c = src[i];
    if (c == '\n') {
      ++line;
      ++i;
      at_line_start = true;
      continue;
    }
    if (std::isspace(static_cast<unsigned char>(c)) != 0) {
      ++i;
      continue;
    }
    // Line comment.
    if (c == '/' && peek(1) == '/') {
      std::size_t end = src.find('\n', i);
      if (end == std::string::npos) end = n;
      ParseSuppression(std::string_view(src).substr(i, end - i), line,
                       &res.suppressions);
      i = end;
      continue;
    }
    // Block comment.
    if (c == '/' && peek(1) == '*') {
      const int start_line = line;
      std::size_t end = src.find("*/", i + 2);
      if (end == std::string::npos) end = n;
      ParseSuppression(std::string_view(src).substr(i, end - i), start_line,
                       &res.suppressions);
      for (std::size_t k = i; k < end && k < n; ++k) {
        if (src[k] == '\n') ++line;
      }
      i = end == n ? n : end + 2;
      at_line_start = false;
      continue;
    }
    // Preprocessor line: keep quoted #include paths, drop the rest.
    if (c == '#' && at_line_start) {
      std::string logical;
      while (i < n) {
        std::size_t end = src.find('\n', i);
        if (end == std::string::npos) end = n;
        std::string_view piece = std::string_view(src).substr(i, end - i);
        i = end;
        if (!piece.empty() && piece.back() == '\\') {
          logical.append(piece.substr(0, piece.size() - 1));
          if (i < n) {
            ++i;  // consume the newline of the continuation
            ++line;
          }
          continue;
        }
        logical.append(piece);
        break;
      }
      std::size_t p = 1;  // past '#'
      while (p < logical.size() &&
             std::isspace(static_cast<unsigned char>(logical[p])) != 0) {
        ++p;
      }
      if (logical.compare(p, 7, "include") == 0) {
        const std::size_t q1 = logical.find('"', p + 7);
        if (q1 != std::string::npos) {
          const std::size_t q2 = logical.find('"', q1 + 1);
          if (q2 != std::string::npos) {
            res.tokens.push_back(Token{Token::Kind::kInclude,
                                       logical.substr(q1 + 1, q2 - q1 - 1),
                                       line});
          }
        }
      }
      at_line_start = false;
      continue;
    }
    at_line_start = false;
    // Raw string literal.
    if (c == 'R' && peek(1) == '"') {
      std::size_t dstart = i + 2;
      std::size_t dp = src.find('(', dstart);
      if (dp == std::string::npos) {
        ++i;
        continue;
      }
      const std::string closer =
          ")" + src.substr(dstart, dp - dstart) + "\"";
      std::size_t end = src.find(closer, dp + 1);
      if (end == std::string::npos) end = n;
      for (std::size_t k = i; k < end && k < n; ++k) {
        if (src[k] == '\n') ++line;
      }
      i = end == n ? n : end + closer.size();
      continue;
    }
    // String / char literal.
    if (c == '"' || c == '\'') {
      const char quote = c;
      ++i;
      while (i < n && src[i] != quote) {
        if (src[i] == '\\' && i + 1 < n) ++i;
        if (src[i] == '\n') ++line;
        ++i;
      }
      if (i < n) ++i;
      continue;
    }
    // Identifier / keyword.
    if (IsIdentStart(c)) {
      std::size_t start = i;
      while (i < n && IsIdentChar(src[i])) ++i;
      res.tokens.push_back(
          Token{Token::Kind::kIdent, src.substr(start, i - start), line});
      continue;
    }
    // Number (rough: good enough to keep digits out of punct tokens).
    if (std::isdigit(static_cast<unsigned char>(c)) != 0) {
      std::size_t start = i;
      while (i < n && (IsIdentChar(src[i]) || src[i] == '.' ||
                       src[i] == '\'' ||
                       ((src[i] == '+' || src[i] == '-') && i > start &&
                        (src[i - 1] == 'e' || src[i - 1] == 'E' ||
                         src[i - 1] == 'p' || src[i - 1] == 'P')))) {
        ++i;
      }
      res.tokens.push_back(
          Token{Token::Kind::kNumber, src.substr(start, i - start), line});
      continue;
    }
    // Punctuator: maximal munch.
    bool matched = false;
    for (const char* p : kPuncts) {
      const std::size_t len = std::char_traits<char>::length(p);
      if (src.compare(i, len, p) == 0) {
        res.tokens.push_back(Token{Token::Kind::kPunct, p, line});
        i += len;
        matched = true;
        break;
      }
    }
    if (!matched) {
      res.tokens.push_back(
          Token{Token::Kind::kPunct, std::string(1, c), line});
      ++i;
    }
  }
  return res;
}

// ---------------------------------------------------------------------------
// Scoping helpers.
// ---------------------------------------------------------------------------

bool StartsWith(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.compare(0, prefix.size(), prefix) == 0;
}

bool Contains(const std::vector<std::string>& haystack,
              const std::string& needle) {
  return std::find(haystack.begin(), haystack.end(), needle) != haystack.end();
}

// Charging choke points: the only files allowed to mutate container
// accounting state directly.
bool IsChargingChokePoint(std::string_view path) {
  return path == "src/kernel/kernel.cc" || path == "src/sched/share_tree.cc" ||
         StartsWith(path, "src/rc/");
}

const std::vector<std::string>& AccountingFields() {
  static const std::vector<std::string> kFields = {
      "cpu_user_usec",    "cpu_kernel_usec",  "cpu_network_usec",
      "memory_bytes",     "memory_peak_bytes", "memory_refusals",
      "memory_reclaims",  "memory_reclaimed_bytes",
      "packets_received", "packets_dropped",  "bytes_received",
      "bytes_sent",       "disk_busy_usec",   "disk_reads",
      "disk_kb",          "link_busy_usec",   "link_packets",
  };
  return kFields;
}

const std::vector<std::string>& UsageBases() {
  static const std::vector<std::string> kBases = {
      "usage", "usage_", "retired", "retired_", "retired_usage",
      "SubtreeUsage"};
  return kBases;
}

const std::vector<std::string>& Mutators() {
  static const std::vector<std::string> kMut = {
      "=", "+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=", "++", "--"};
  return kMut;
}

const std::vector<std::string>& GrowthCalls() {
  static const std::vector<std::string> kGrowth = {
      "push_back", "emplace_back", "push_front", "emplace_front", "emplace",
      "insert",    "resize",       "reserve",    "append",        "push"};
  return kGrowth;
}

struct Analyzer {
  const FileInput& input;
  const std::vector<Token>& toks;
  std::vector<Diagnostic> diags;

  const Token* At(std::ptrdiff_t i) const {
    return i >= 0 && i < static_cast<std::ptrdiff_t>(toks.size()) ? &toks[i]
                                                                  : nullptr;
  }
  bool IsPunct(std::ptrdiff_t i, std::string_view text) const {
    const Token* t = At(i);
    return t != nullptr && t->kind == Token::Kind::kPunct && t->text == text;
  }
  bool IsIdent(std::ptrdiff_t i, std::string_view text) const {
    const Token* t = At(i);
    return t != nullptr && t->kind == Token::Kind::kIdent && t->text == text;
  }

  void Report(Rule rule, int line, std::string message) {
    diags.push_back(Diagnostic{input.path, line, rule, std::move(message), ""});
  }

  // --- determinism ---------------------------------------------------------

  void CheckDeterminism() {
    static const std::vector<std::string> kBannedAlways = {
        "random_device", "system_clock",  "steady_clock",
        "high_resolution_clock",          "getenv",
        "gettimeofday",  "clock_gettime", "srand",
        "drand48",       "lrand48"};
    static const std::vector<std::string> kBannedCalls = {"rand", "time"};
    static const std::vector<std::string> kOrdered = {"map", "set", "multimap",
                                                      "multiset"};
    for (std::ptrdiff_t i = 0; i < static_cast<std::ptrdiff_t>(toks.size());
         ++i) {
      const Token& t = toks[i];
      if (t.kind != Token::Kind::kIdent) {
        continue;
      }
      if (Contains(kBannedAlways, t.text)) {
        Report(Rule::kDeterminism, t.line,
               "'" + t.text +
                   "' is a nondeterminism source; the simulation draws "
                   "entropy from sim::Rng and time from the event clock");
        continue;
      }
      if (Contains(kBannedCalls, t.text) && IsPunct(i + 1, "(")) {
        // Member calls (x.time(), x->rand()) are someone else's API; a
        // qualified call only flags for namespace std. A preceding type name
        // makes this a *declaration* of an unrelated function (`Duration
        // time()`) — a call expression is never directly preceded by an
        // identifier other than a flow keyword.
        const bool member = IsPunct(i - 1, ".") || IsPunct(i - 1, "->");
        const bool qualified = IsPunct(i - 1, "::");
        const bool std_qualified = qualified && IsIdent(i - 2, "std");
        const bool declared =
            i > 0 && toks[static_cast<std::size_t>(i - 1)].kind ==
                         Token::Kind::kIdent &&
            toks[static_cast<std::size_t>(i - 1)].text != "return" &&
            toks[static_cast<std::size_t>(i - 1)].text != "co_return" &&
            toks[static_cast<std::size_t>(i - 1)].text != "co_await" &&
            toks[static_cast<std::size_t>(i - 1)].text != "co_yield";
        if (!member && !declared && (!qualified || std_qualified)) {
          Report(Rule::kDeterminism, t.line,
                 "call to '" + t.text +
                     "()' is a nondeterminism source; use sim::Rng / the "
                     "event clock");
        }
        continue;
      }
      // Pointer-keyed ordered containers: std::map<T*, ...> / std::set<T*>.
      if (Contains(kOrdered, t.text) && IsIdent(i - 2, "std") &&
          IsPunct(i - 1, "::") && IsPunct(i + 1, "<")) {
        int depth = 1;
        bool key_has_pointer = false;
        for (std::ptrdiff_t j = i + 2;
             j < static_cast<std::ptrdiff_t>(toks.size()) && depth > 0; ++j) {
          const Token& u = toks[j];
          if (u.kind != Token::Kind::kPunct) {
            continue;
          }
          if (u.text == "<") {
            ++depth;
          } else if (u.text == ">") {
            --depth;
          } else if (u.text == ">>") {
            depth -= 2;
          } else if (u.text == "," && depth == 1) {
            break;  // end of the key type
          } else if (u.text == "*" && depth == 1) {
            key_has_pointer = true;
          }
        }
        if (key_has_pointer) {
          Report(Rule::kDeterminism, t.line,
                 "pointer-keyed std::" + t.text +
                     " iterates in address order, which varies across runs; "
                     "key by a stable id instead");
        }
      }
    }
  }

  // --- charging ------------------------------------------------------------

  // Walks a member-access chain leftward from the '.'/'->' at `sep`,
  // collecting base identifiers (skipping balanced ()/[] groups). Returns the
  // index of the chain's leftmost token.
  std::ptrdiff_t WalkChain(std::ptrdiff_t sep,
                           std::vector<std::string>* bases) const {
    std::ptrdiff_t j = sep;
    while (IsPunct(j, ".") || IsPunct(j, "->") || IsPunct(j, "::")) {
      std::ptrdiff_t k = j - 1;
      // Skip one balanced () or [] group (call or index).
      while (IsPunct(k, ")") || IsPunct(k, "]")) {
        const std::string open = toks[k].text == ")" ? "(" : "[";
        const std::string close = toks[k].text;
        int depth = 0;
        while (k >= 0) {
          if (IsPunct(k, close)) {
            ++depth;
          } else if (IsPunct(k, open)) {
            --depth;
            if (depth == 0) {
              --k;
              break;
            }
          }
          --k;
        }
      }
      const Token* base = At(k);
      if (base == nullptr || base->kind != Token::Kind::kIdent) {
        return k + 1;
      }
      bases->push_back(base->text);
      j = k - 1;
    }
    return j + 1;
  }

  void CheckCharging() {
    for (std::ptrdiff_t i = 0; i < static_cast<std::ptrdiff_t>(toks.size());
         ++i) {
      const Token& t = toks[i];
      if (t.kind != Token::Kind::kIdent) {
        continue;
      }
      // Whole-record writes: usage_ = ..., retired_ += ...
      if ((t.text == "usage_" || t.text == "retired_") && IsMutatorAt(i + 1)) {
        Report(Rule::kCharging, t.line,
               "direct write to container accounting record '" + t.text +
                   "' outside a charging choke point");
        continue;
      }
      const bool acct_field = Contains(AccountingFields(), t.text);
      const bool acct_method = t.text == "AddCpu";
      if (!acct_field && !acct_method) {
        continue;
      }
      if (!IsPunct(i - 1, ".") && !IsPunct(i - 1, "->")) {
        continue;  // not a member access
      }
      std::vector<std::string> bases;
      const std::ptrdiff_t chain_start = WalkChain(i - 1, &bases);
      bool via_usage = false;
      for (const std::string& b : bases) {
        if (Contains(UsageBases(), b)) {
          via_usage = true;
          break;
        }
      }
      if (!via_usage) {
        continue;
      }
      if (acct_method) {
        Report(Rule::kCharging, t.line,
               "usage_.AddCpu() outside a charging choke point; route the "
               "charge through ResourceContainer::ChargeCpu");
        continue;
      }
      const bool written = IsMutatorAt(i + 1) || IsPunct(chain_start - 1, "++") ||
                           IsPunct(chain_start - 1, "--");
      if (written) {
        Report(Rule::kCharging, t.line,
               "direct mutation of accounting counter '" + t.text +
                   "' outside a charging choke point; use the "
                   "Charge*/Count* APIs");
      }
    }
  }

  bool IsMutatorAt(std::ptrdiff_t i) const {
    const Token* t = At(i);
    return t != nullptr && t->kind == Token::Kind::kPunct &&
           Contains(Mutators(), t->text);
  }

  // --- hotpath -------------------------------------------------------------

  void CheckHotPath() {
    for (std::ptrdiff_t i = 0; i < static_cast<std::ptrdiff_t>(toks.size());
         ++i) {
      if (!IsIdent(i, "RC_HOT_PATH")) {
        continue;
      }
      // Find the function name and body start (or stop at a declaration).
      std::string fn = "<function>";
      int paren_depth = 0;
      std::ptrdiff_t body_start = -1;
      for (std::ptrdiff_t j = i + 1;
           j < static_cast<std::ptrdiff_t>(toks.size()); ++j) {
        const Token& u = toks[j];
        if (u.kind == Token::Kind::kPunct) {
          if (u.text == "(") {
            if (paren_depth == 0 && j > 0 &&
                toks[j - 1].kind == Token::Kind::kIdent) {
              fn = toks[j - 1].text;
            }
            ++paren_depth;
          } else if (u.text == ")") {
            --paren_depth;
          } else if (u.text == ";" && paren_depth == 0) {
            break;  // declaration only: the definition is checked where it is
          } else if (u.text == "{" && paren_depth == 0) {
            body_start = j;
            break;
          }
        }
      }
      if (body_start < 0) {
        continue;
      }
      ScanHotBody(body_start, fn);
    }
  }

  void ScanHotBody(std::ptrdiff_t body_start, const std::string& fn) {
    int depth = 0;
    for (std::ptrdiff_t j = body_start;
         j < static_cast<std::ptrdiff_t>(toks.size()); ++j) {
      const Token& u = toks[j];
      if (u.kind == Token::Kind::kPunct) {
        if (u.text == "{") {
          ++depth;
        } else if (u.text == "}") {
          --depth;
          if (depth == 0) {
            return;
          }
        }
        continue;
      }
      if (u.kind != Token::Kind::kIdent) {
        continue;
      }
      const std::string in_fn = "' in RC_HOT_PATH function '" + fn + "'";
      if (u.text == "new") {
        Report(Rule::kHotPath, u.line,
               "heap allocation 'new" + in_fn +
                   "; hot paths recycle via pools/slabs");
      } else if (u.text == "make_shared" || u.text == "make_unique" ||
                 u.text == "allocate_shared") {
        Report(Rule::kHotPath, u.line,
               "heap allocation '" + u.text + in_fn +
                   "; hot paths recycle via pools/slabs");
      } else if (u.text == "function" && IsPunct(j - 1, "::") &&
                 IsIdent(j - 2, "std")) {
        Report(Rule::kHotPath, u.line,
               "std::function construction" + in_fn.substr(1) +
                   "; use a typed listener or move an existing callable");
      } else if (Contains(GrowthCalls(), u.text) &&
                 (IsPunct(j - 1, ".") || IsPunct(j - 1, "->")) &&
                 IsPunct(j + 1, "(")) {
        Report(Rule::kHotPath, u.line,
               "container growth '" + u.text + "()" + in_fn +
                   "; growth may allocate and throw mid-path");
      }
    }
  }

  // --- layering ------------------------------------------------------------

  void CheckLayering() {
    struct LayerRule {
      const char* from;
      const char* banned;
    };
    static constexpr LayerRule kRules[] = {
        {"src/sim/", "src/kernel/"},  {"src/sim/", "src/httpd/"},
        {"src/common/", "src/kernel/"}, {"src/common/", "src/httpd/"},
        {"src/rc/", "src/net/"},      {"src/rc/", "src/disk/"},
        // The spec layer speaks plain values; only the compiler (runner.cc)
        // may touch simulator internals.
        {"src/xp/spec", "src/kernel/"}, {"src/xp/spec", "src/net/"},
        {"src/xp/spec", "src/disk/"},
    };
    for (const Token& t : toks) {
      if (t.kind != Token::Kind::kInclude) {
        continue;
      }
      for (const LayerRule& r : kRules) {
        if (StartsWith(input.path, r.from) && StartsWith(t.text, r.banned)) {
          Report(Rule::kLayering, t.line,
                 std::string(r.from) + " must not include " + r.banned +
                     " headers (got \"" + t.text + "\")");
        }
      }
    }
  }
};

}  // namespace

const char* RuleName(Rule rule) {
  switch (rule) {
    case Rule::kDeterminism:
      return "determinism";
    case Rule::kCharging:
      return "charging";
    case Rule::kHotPath:
      return "hotpath";
    case Rule::kLayering:
      return "layering";
    case Rule::kBadSuppression:
      return "bad-suppression";
  }
  return "unknown";
}

bool RuleFromName(std::string_view name, Rule* out) {
  static constexpr Rule kAll[] = {Rule::kDeterminism, Rule::kCharging,
                                  Rule::kHotPath, Rule::kLayering,
                                  Rule::kBadSuppression};
  for (Rule r : kAll) {
    if (name == RuleName(r)) {
      *out = r;
      return true;
    }
  }
  return false;
}

std::string SuggestionFor(Rule rule) {
  switch (rule) {
    case Rule::kDeterminism:
      return "draw entropy from sim::Rng and time from sim::Simulator::now(); "
             "key ordered containers by stable ids, not pointers";
    case Rule::kCharging:
      return "route the mutation through ResourceContainer::ChargeCpu/"
             "ChargeMemory/ChargeDisk/ChargeLink/Count* or the share-tree "
             "OnCharge API so the auditor's books stay balanced";
    case Rule::kHotPath:
      return "preallocate outside the hot path (rccommon::ObjectPool, slab "
             "arenas, reserved capacity) or move the work off the annotated "
             "path";
    case Rule::kLayering:
      return "invert the dependency: lower layers expose interfaces, upper "
             "layers include them";
    case Rule::kBadSuppression:
      return "write '// rclint: allow(<rule>): <reason>' with a real rule "
             "name and a non-empty reason";
  }
  return "";
}

std::string FormatDiagnostic(const Diagnostic& d, bool fix_suggestions) {
  std::string out = d.file + ":" + std::to_string(d.line) + ": [" +
                    RuleName(d.rule) + "] " + d.message;
  if (fix_suggestions && !d.suggestion.empty()) {
    out += "\n  suggestion: " + d.suggestion;
  }
  return out;
}

void AnalyzeFile(const FileInput& input, std::vector<Diagnostic>* out) {
  LexResult lex = Lex(input.content);
  Analyzer a{input, lex.tokens, {}};

  const bool in_src = StartsWith(input.path, "src/");
  const bool in_bench_or_tools = StartsWith(input.path, "bench/") ||
                                 StartsWith(input.path, "tools/");

  if (in_src) {
    a.CheckDeterminism();
    a.CheckLayering();
  }
  if ((in_src || in_bench_or_tools) && !IsChargingChokePoint(input.path)) {
    a.CheckCharging();
  }
  a.CheckHotPath();

  // Apply suppressions: an allow(<rule>) with a reason covers diagnostics of
  // that rule on its own line (trailing comment) or on the first code line
  // below it (comment block directly above the violation — continuation
  // comment lines in between are fine).
  std::set<int> token_lines;
  for (const Token& t : lex.tokens) {
    token_lines.insert(t.line);
  }
  auto covers = [&token_lines](const Suppression& s, int diag_line) {
    if (s.line > diag_line) {
      return false;
    }
    auto it = token_lines.lower_bound(s.line);
    return it != token_lines.end() && *it == diag_line;
  };
  std::vector<Diagnostic> kept;
  for (Diagnostic& d : a.diags) {
    bool suppressed = false;
    for (const Suppression& s : lex.suppressions) {
      Rule named;
      if (s.parsed && s.has_reason && RuleFromName(s.rule_name, &named) &&
          named == d.rule && covers(s, d.line)) {
        suppressed = true;
        break;
      }
    }
    if (!suppressed) {
      kept.push_back(std::move(d));
    }
  }

  // Malformed suppressions are diagnostics in their own right.
  for (const Suppression& s : lex.suppressions) {
    Rule named;
    if (!s.parsed) {
      kept.push_back(Diagnostic{input.path, s.line, Rule::kBadSuppression,
                                "unparsable rclint suppression comment", ""});
    } else if (!RuleFromName(s.rule_name, &named)) {
      kept.push_back(Diagnostic{input.path, s.line, Rule::kBadSuppression,
                                "unknown rule '" + s.rule_name +
                                    "' in rclint suppression",
                                ""});
    } else if (!s.has_reason) {
      kept.push_back(Diagnostic{
          input.path, s.line, Rule::kBadSuppression,
          "rclint suppression for '" + s.rule_name +
              "' is missing its mandatory reason string",
          ""});
    }
  }

  std::stable_sort(kept.begin(), kept.end(),
                   [](const Diagnostic& x, const Diagnostic& y) {
                     return x.line < y.line;
                   });
  for (Diagnostic& d : kept) {
    d.suggestion = SuggestionFor(d.rule);
    out->push_back(std::move(d));
  }
}

}  // namespace rclint
