// ContainerManager: creates containers, owns the root of the hierarchy, and
// enforces cross-container invariants (sibling share sums, parenting rules).
#ifndef SRC_RC_MANAGER_H_
#define SRC_RC_MANAGER_H_

#include <cstdint>
#include <functional>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/common/expected.h"
#include "src/rc/container.h"

namespace rc {

class MemoryArbiter;

class ContainerManager {
 public:
  ContainerManager();
  ~ContainerManager();

  ContainerManager(const ContainerManager&) = delete;
  ContainerManager& operator=(const ContainerManager&) = delete;

  // The machine-wide root container: fixed-share, 100% of the CPU. All
  // top-level ("no parent") containers are its children.
  const ContainerRef& root() const { return root_; }

  // Creates a container under `parent` (nullptr means top level). Fails if
  // the parent is a time-share container ("time-share containers cannot have
  // children", Section 5.1) or if a fixed share would oversubscribe the
  // parent.
  rccommon::Expected<ContainerRef> Create(const ContainerRef& parent, std::string name,
                                          const Attributes& attrs = {});

  // Re-parents `c` (Section 4.6 "Set a container's parent"); `parent` of
  // nullptr means "no parent" (top level). Rejects cycles and
  // oversubscription at the new parent.
  rccommon::Expected<void> SetParent(const ContainerRef& c, const ContainerRef& parent);

  // "Obtain handle for existing container" (Table 1). Returns kNotFound when
  // the id does not name a live container.
  rccommon::Expected<ContainerRef> Lookup(ContainerId id) const;

  // Number of live containers, including the root.
  std::size_t live_count() const { return index_.size(); }

  // Visits every live container (including the root) in id order. Used by
  // the telemetry epoch sampler to snapshot per-container usage.
  void ForEachLive(const std::function<void(ResourceContainer&)>& fn) const;

  // Registers a callback invoked when any container is destroyed (used by
  // the CPU scheduler and the network stack to drop per-container state).
  void AddDestroyObserver(std::function<void(ResourceContainer&)> observer);

  // Registers a callback invoked after a container is re-parented (explicit
  // SetParent, or orphaning to the top level when the parent is destroyed).
  // `old_parent` is still a valid object at notification time.
  using ReparentObserver = std::function<void(ResourceContainer& child,
                                              ResourceContainer* old_parent,
                                              ResourceContainer* new_parent)>;
  void AddReparentObserver(ReparentObserver observer);

  // Sum of fixed shares of `parent`'s children that are fixed-share for
  // `kind`, excluding `exclude` (used when re-validating an attribute
  // change). Disk/link shares are budgeted independently of CPU shares.
  static double SiblingFixedShareSum(const ResourceContainer& parent,
                                     const ResourceContainer* exclude,
                                     ResourceKind kind = ResourceKind::kCpu);

  // Memory policy engine all ChargeMemory/ReleaseMemory calls route through
  // when set (the kernel installs its MemoryBroker here). Not owned; the
  // broker clears it on destruction.
  void set_memory_arbiter(MemoryArbiter* arbiter) { memory_arbiter_ = arbiter; }
  MemoryArbiter* memory_arbiter() const { return memory_arbiter_; }

 private:
  friend class ResourceContainer;

  // Called from ResourceContainer's destructor.
  void OnDestroy(ResourceContainer& c);

  void NotifyReparent(ResourceContainer& child, ResourceContainer* old_parent,
                      ResourceContainer* new_parent);

  rccommon::Expected<void> CheckParentEligible(const ResourceContainer& parent,
                                               const Attributes& child_attrs,
                                               const ResourceContainer* exclude) const;

  std::shared_ptr<bool> alive_;
  ContainerRef root_;
  ContainerId next_id_ = 1;
  std::unordered_map<ContainerId, std::weak_ptr<ResourceContainer>> index_;
  std::vector<std::function<void(ResourceContainer&)>> destroy_observers_;
  std::vector<ReparentObserver> reparent_observers_;
  MemoryArbiter* memory_arbiter_ = nullptr;
};

}  // namespace rc

#endif  // SRC_RC_MANAGER_H_
