// The architecture-independent server interface. The paper evaluates three
// server structures (Figures 1-3: pre-forked processes, one event-driven
// process, a kernel-thread pool); scenario composition picks between them at
// run time, so everything above this layer talks to the common surface:
// start under an optional guest container, expose ServerStats, publish
// telemetry.
#ifndef SRC_HTTPD_SERVER_H_
#define SRC_HTTPD_SERVER_H_

#include "src/httpd/server_config.h"
#include "src/rc/container.h"

namespace telemetry {
class Registry;
}

namespace httpd {

class Server {
 public:
  virtual ~Server() = default;

  // Creates the server's process(es) and begins serving. `default_container`
  // optionally supplies the process's default container (e.g. a fixed-share
  // guest in virtual-server setups).
  virtual void Start(rc::ContainerRef default_container = nullptr) = 0;

  virtual const ServerStats& stats() const = 0;

  // Installs the httpd.* probes (server counters + file cache) on `registry`.
  virtual void RegisterMetrics(telemetry::Registry& registry) = 0;
};

}  // namespace httpd

#endif  // SRC_HTTPD_SERVER_H_
