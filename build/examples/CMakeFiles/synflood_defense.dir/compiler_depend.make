# Empty compiler generated dependencies file for synflood_defense.
# This may be replaced when dependencies are built.
