// Rent-A-Server: virtual-server isolation (Section 5.8).
//
// A hosting machine runs three guest Web servers, each under a top-level
// fixed-share container. Guest 0 additionally subdivides its own allocation:
// a CGI sand-box capped at 25% *of the guest's share* (the hierarchy is
// recursive). The demo offers wildly unequal load and shows each guest's
// consumption pinned to its allocation.
//
//   $ ./rent_a_server
#include <cstdio>
#include <iostream>
#include <memory>
#include <vector>

#include "src/httpd/event_server.h"
#include "src/load/http_client.h"
#include "src/load/wire.h"
#include "src/xp/table.h"

int main() {
  sim::Simulator simr;
  kernel::Kernel kern(&simr, kernel::ResourceContainerSystemConfig());
  load::Wire wire(&simr, &kern);
  kern.Start();
  httpd::FileCache cache;
  cache.AddDocument(1, 1024);

  struct GuestSpec {
    const char* name;
    double share;
    std::uint16_t port;
    int clients;
    bool cgi;
  };
  const GuestSpec specs[] = {
      {"acme-corp", 0.50, 80, 24, true},  // overloaded tenant with CGI
      {"bob-blog", 0.30, 81, 8, false},   // moderate load
      {"tiny-site", 0.20, 82, 2, false},  // light load
  };

  std::vector<rc::ContainerRef> guests;
  std::vector<std::unique_ptr<httpd::EventDrivenServer>> servers;
  std::vector<std::unique_ptr<load::HttpClient>> clients;
  std::uint32_t next_id = 1;

  for (const GuestSpec& spec : specs) {
    rc::Attributes attrs;
    attrs.sched.cls = rc::SchedClass::kFixedShare;
    attrs.sched.fixed_share = spec.share;
    auto guest = kern.containers().Create(nullptr, spec.name, attrs).value();
    guests.push_back(guest);

    httpd::ServerConfig scfg;
    scfg.port = spec.port;
    scfg.use_containers = true;
    scfg.use_event_api = true;
    scfg.nest_under_default = true;  // per-conn containers under the guest
    if (spec.cgi) {
      scfg.cgi_sandbox = true;
      scfg.cgi_share = 0.25;  // of the guest's allocation, not the machine's
    }
    servers.push_back(std::make_unique<httpd::EventDrivenServer>(&kern, &cache, scfg));
    servers.back()->Start(guest);

    for (int i = 0; i < spec.clients; ++i) {
      load::HttpClient::Config ccfg;
      ccfg.addr = net::Addr{net::MakeAddr(10, static_cast<unsigned>(10 + next_id % 200),
                                          static_cast<unsigned>(i / 250), 0)
                                .v +
                            static_cast<std::uint32_t>(i % 250) + 1};
      ccfg.server_port = spec.port;
      clients.push_back(std::make_unique<load::HttpClient>(&simr, &wire, next_id++, ccfg));
      clients.back()->Start(static_cast<sim::SimTime>(clients.size()) * 500);
    }
    if (spec.cgi) {
      load::HttpClient::Config cgi;
      cgi.addr = net::MakeAddr(10, 99, 0, static_cast<unsigned>(next_id % 250) + 1);
      cgi.server_port = spec.port;
      cgi.is_cgi = true;
      cgi.cgi_cpu_usec = sim::Sec(2);
      cgi.request_timeout = 0;
      clients.push_back(std::make_unique<load::HttpClient>(&simr, &wire, next_id++, cgi));
      clients.back()->Start();
    }
  }

  simr.RunUntil(sim::Sec(2));
  std::vector<sim::Duration> cpu0;
  for (auto& g : guests) {
    cpu0.push_back(g->SubtreeUsage().TotalCpuUsec());
  }
  const sim::SimTime t0 = simr.now();
  simr.RunUntil(t0 + sim::Sec(10));

  xp::Table table({"guest", "share", "measured CPU", "static req/s", "note"});
  for (std::size_t g = 0; g < guests.size(); ++g) {
    const double used =
        static_cast<double>(guests[g]->SubtreeUsage().TotalCpuUsec() - cpu0[g]);
    const double share = used / static_cast<double>(simr.now() - t0);
    const double tput = static_cast<double>(servers[g]->stats().static_served) /
                        sim::ToSeconds(simr.now());
    table.AddRow({specs[g].name, xp::FormatDouble(100 * specs[g].share, 0) + "%",
                  xp::FormatDouble(100 * share, 1) + "%", xp::FormatDouble(tput, 0),
                  specs[g].cgi ? "runs a nested CGI sand-box" : "static only"});
  }
  table.Print(std::cout);

  std::printf(
      "\nEach guest's total consumption (including its CGI children) matches its\n"
      "fixed share while it has demand; lightly loaded guests use less, and the\n"
      "surplus is redistributed work-conservingly.\n");
  return 0;
}
