#include "src/kernel/process.h"

#include <utility>

#include "src/common/check.h"

namespace kernel {

Process::Process(Kernel* kernel, Pid pid, std::string name,
                 rc::ContainerRef default_container)
    : kernel_(kernel),
      pid_(pid),
      name_(std::move(name)),
      default_container_(std::move(default_container)) {
  RC_CHECK_NE(default_container_, nullptr);
}

Process::~Process() = default;

sim::Duration Process::TotalExecutedUsec() const {
  sim::Duration total = reaped_executed_usec;
  for (const auto& t : threads_) {
    total += t->executed_usec();
  }
  return total;
}

}  // namespace kernel
