// Kernel execution tracer: a bounded ring buffer of scheduling events
// (dispatches, preemptions, blocks, wake-ups, interrupts), in the spirit of
// ktrace. Disabled by default and cheap when off; when enabled it lets
// experiments and tests inspect exactly how the CPU was multiplexed.
#ifndef SRC_KERNEL_TRACE_H_
#define SRC_KERNEL_TRACE_H_

#include <cstdint>
#include <functional>
#include <ostream>
#include <vector>

#include "src/rc/container.h"
#include "src/sim/time.h"
#include "src/telemetry/metric.h"
#include "src/verify/digest.h"

namespace kernel {

enum class TraceKind : std::uint8_t {
  kDispatch,   // thread put on CPU              arg = 0
  kSlice,      // slice completed                arg = consumed usec
  kPreempt,    // slice preempted                arg = consumed usec
  kBlock,      // thread blocked
  kWake,       // thread unblocked
  kInterrupt,  // interrupt work executed        arg = cost usec
  kExit,       // thread finished
};

// Inline (with the ring accessors below) so the telemetry trace exporter can
// consume Tracer from headers alone, without linking against rc_kernel.
inline const char* TraceKindName(TraceKind k) {
  switch (k) {
    case TraceKind::kDispatch:
      return "dispatch";
    case TraceKind::kSlice:
      return "slice";
    case TraceKind::kPreempt:
      return "preempt";
    case TraceKind::kBlock:
      return "block";
    case TraceKind::kWake:
      return "wake";
    case TraceKind::kInterrupt:
      return "interrupt";
    case TraceKind::kExit:
      return "exit";
  }
  return "?";
}

struct TraceEvent {
  sim::SimTime at = 0;
  TraceKind kind = TraceKind::kDispatch;
  std::uint64_t thread_id = 0;         // 0 when not thread-related
  rc::ContainerId container_id = 0;    // charged principal, 0 = none/machine
  sim::Duration arg = 0;
  int cpu = 0;                         // which CPU the event happened on
};

class Tracer {
 public:
  // Starts recording into a ring of `capacity` events.
  void Enable(std::size_t capacity = 65536) {
    capacity_ = capacity;
    ring_.clear();
    ring_.reserve(capacity);
    next_ = 0;
    dropped_ = 0;
    total_ = 0;
    enabled_ = true;
  }
  void Disable() { enabled_ = false; }
  bool enabled() const { return enabled_; }

  // Telemetry hook: when attached, every recorded event also bumps this
  // registry counter (null and disabled-tracer cases stay one branch each).
  void set_recorded_counter(telemetry::Counter* counter) { recorded_counter_ = counter; }

  // Determinism-digest hook: when attached, every event folds into the
  // digest, whether or not the ring buffer is enabled.
  void set_digest(verify::TimelineDigest* digest) { digest_ = digest; }
  verify::TimelineDigest* digest() const { return digest_; }

  void Record(sim::SimTime at, TraceKind kind, std::uint64_t thread_id,
              rc::ContainerId container_id, sim::Duration arg, int cpu = 0) {
    if (digest_ != nullptr) {
      digest_->Absorb(at, static_cast<std::uint8_t>(kind), thread_id, container_id,
                      cpu);
    }
    if (!enabled_) {
      return;
    }
    ++total_;
    if (recorded_counter_ != nullptr) {
      recorded_counter_->Add();
    }
    const TraceEvent e{at, kind, thread_id, container_id, arg, cpu};
    if (ring_.size() < capacity_) {
      ring_.push_back(e);
      return;
    }
    ++dropped_;  // overwrote the oldest event
    ring_[next_] = e;
    next_ = (next_ + 1) % capacity_;
  }

  // Visits retained events in chronological order.
  void ForEach(const std::function<void(const TraceEvent&)>& fn) const {
    if (ring_.size() < capacity_) {
      for (const TraceEvent& e : ring_) {
        fn(e);
      }
      return;
    }
    for (std::size_t i = 0; i < ring_.size(); ++i) {
      fn(ring_[(next_ + i) % ring_.size()]);
    }
  }

  // Number of retained events of `kind`.
  std::size_t CountOf(TraceKind kind) const {
    std::size_t n = 0;
    ForEach([&](const TraceEvent& e) {
      if (e.kind == kind) {
        ++n;
      }
    });
    return n;
  }

  std::uint64_t total_recorded() const { return total_; }
  std::uint64_t dropped() const { return dropped_; }
  std::size_t size() const { return ring_.size(); }

  // Human-readable timeline.
  void Dump(std::ostream& os, std::size_t max_lines = 100) const;

 private:
  bool enabled_ = false;
  std::size_t capacity_ = 0;
  std::vector<TraceEvent> ring_;
  std::size_t next_ = 0;  // oldest slot once the ring wrapped
  std::uint64_t dropped_ = 0;
  std::uint64_t total_ = 0;
  telemetry::Counter* recorded_counter_ = nullptr;
  verify::TimelineDigest* digest_ = nullptr;
};

}  // namespace kernel

#endif  // SRC_KERNEL_TRACE_H_
