# Empty dependencies file for rc_disk.
# This may be replaced when dependencies are built.
