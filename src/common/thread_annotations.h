// Clang thread-safety annotations for the simulator's synchronization model.
//
// The simulator is single-OS-threaded, but its *simulated* threads interleave
// at every blocking point, so shared structures have the same discipline
// requirements as under real concurrency. verify::RaceDetector checks that
// discipline dynamically (Eraser locksets over simulated acquires); these
// macros are the static half: state carrying RC_GUARDED_BY can only be
// touched by code that holds — or explicitly asserts — the guarding
// capability, and clang's -Wthread-safety analysis (promoted to an error in
// clang builds, see the top-level CMakeLists) proves it at compile time.
//
// Under non-clang compilers every macro expands to nothing.
//
// The capability used most here is not a lock but a *serialization domain*:
// rccommon::Serial represents "running on the owner's serialized event-loop
// context". Structures confined to the kernel event loop embed a Serial and
// assert it at the top of every member function that touches guarded state
// (Serial::AssertHeld, a no-op at runtime). The payoff is choke-point
// enforcement: a new function that reaches guarded state without declaring
// itself part of the serialized domain fails the clang build instead of
// becoming a latent interleaving bug.
#ifndef SRC_COMMON_THREAD_ANNOTATIONS_H_
#define SRC_COMMON_THREAD_ANNOTATIONS_H_

#if defined(__clang__) && defined(__has_attribute)
#define RC_THREAD_ANNOTATION(x) __attribute__((x))
#else
#define RC_THREAD_ANNOTATION(x)
#endif

// Class attributes.
#define RC_CAPABILITY(name) RC_THREAD_ANNOTATION(capability(name))
#define RC_SCOPED_CAPABILITY RC_THREAD_ANNOTATION(scoped_lockable)

// Data-member attributes.
#define RC_GUARDED_BY(x) RC_THREAD_ANNOTATION(guarded_by(x))
#define RC_PT_GUARDED_BY(x) RC_THREAD_ANNOTATION(pt_guarded_by(x))

// Function attributes.
#define RC_REQUIRES(...) RC_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))
#define RC_REQUIRES_SHARED(...) \
  RC_THREAD_ANNOTATION(requires_shared_capability(__VA_ARGS__))
#define RC_ACQUIRE(...) RC_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))
#define RC_ACQUIRE_SHARED(...) \
  RC_THREAD_ANNOTATION(acquire_shared_capability(__VA_ARGS__))
#define RC_RELEASE(...) RC_THREAD_ANNOTATION(release_capability(__VA_ARGS__))
#define RC_RELEASE_SHARED(...) \
  RC_THREAD_ANNOTATION(release_shared_capability(__VA_ARGS__))
#define RC_TRY_ACQUIRE(...) \
  RC_THREAD_ANNOTATION(try_acquire_capability(__VA_ARGS__))
#define RC_EXCLUDES(...) RC_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))
#define RC_ASSERT_CAPABILITY(...) \
  RC_THREAD_ANNOTATION(assert_capability(__VA_ARGS__))
#define RC_RETURN_CAPABILITY(x) RC_THREAD_ANNOTATION(lock_returned(x))
#define RC_NO_THREAD_SAFETY_ANALYSIS \
  RC_THREAD_ANNOTATION(no_thread_safety_analysis)

namespace rccommon {

// A serialization-domain capability (see file comment). Zero size, zero
// runtime cost: AssertHeld only exists to carry the assert_capability
// attribute that tells the static analysis "this function runs inside the
// owner's serialized context".
class RC_CAPABILITY("serial") Serial {
 public:
  void AssertHeld() const RC_ASSERT_CAPABILITY() {}
};

}  // namespace rccommon

#endif  // SRC_COMMON_THREAD_ANNOTATIONS_H_
