#include "src/disk/disk_engine.h"

#include <algorithm>
#include <utility>

#include "src/common/check.h"
#include "src/telemetry/registry.h"
#include "src/verify/audit.h"

namespace disk {

sched::ShareTreeOptions DiskEngine::TreeOptions(const DiskCosts& costs) {
  sched::ShareTreeOptions options;
  options.resource = rc::ResourceKind::kDisk;
  options.decay_per_tick = costs.decay_per_tick;
  options.limit_window = costs.limit_window;
  options.capacity = 1;  // one spindle
  // Priority-0 I/O is background work, not a starvation class: it keeps a
  // weight-1 trickle even under saturating higher-priority streams.
  options.starve_priority_zero = false;
  return options;
}

DiskEngine::DiskEngine(sim::Simulator* simulator, const DiskCosts& costs,
                       rc::ContainerManager* manager)
    : simr_(simulator),
      costs_(costs),
      manager_(manager),
      tree_(manager, TreeOptions(costs)),
      created_at_(simulator->now()) {
  RC_CHECK_NE(manager, nullptr);
}

DiskEngine::~DiskEngine() {
  // Requests still queued at teardown are dropped without completion; return
  // them to the pool (they were pool-allocated in Submit).
  for (void* item : tree_.DrainAll()) {
    pool_.Destroy(static_cast<IoRequest*>(item));
  }
  pool_.Destroy(inflight_);
}

sim::Duration DiskEngine::ServiceTime(std::uint32_t kb, bool sequential) const {
  sim::Duration t = static_cast<sim::Duration>(kb) * costs_.transfer_usec_per_kb;
  if (!(sequential && costs_.sequential_optimization)) {
    t += costs_.positioning_usec;
  }
  return std::max<sim::Duration>(t, 1);
}

RC_HOT_PATH void DiskEngine::Submit(IoRequest request) {
  // Unowned requests queue at the root: served only when no owned request is
  // eligible, so they cannot crowd out containers with guarantees.
  rc::ResourceContainer* leaf =
      request.container ? request.container.get() : manager_->root().get();
  tree_.Push(leaf, pool_.Create(std::move(request)));
  MaybeStart();
}

void DiskEngine::MaybeStart() {
  if (busy_ || tree_.queued_total() == 0) {
    return;
  }
  const sim::SimTime now = simr_->now();
  void* item = tree_.Pop(now);
  if (item == nullptr) {
    // Everything queued is limit-throttled; retry when the earliest window
    // re-opens.
    if (!retry_armed_) {
      if (auto next = tree_.NextEligibleTime(now); next.has_value()) {
        retry_armed_ = true;
        simr_->At(*next, [this] {
          retry_armed_ = false;
          MaybeStart();
        });
      }
    }
    return;
  }
  inflight_ = static_cast<IoRequest*>(item);
  busy_ = true;

  const bool sequential = inflight_->block_kb == head_pos_kb_;
  const sim::Duration service = ServiceTime(inflight_->kb, sequential);
  if (sequential) {
    ++stats_.sequential_hits;
  }
  head_pos_kb_ = inflight_->block_kb + inflight_->kb;

  // Advance the share tree at dispatch so back-to-back picks under
  // contention interleave by share, not in bursts.
  rc::ResourceContainer* charged =
      inflight_->container ? inflight_->container.get() : manager_->root().get();
  tree_.OnCharge(*charged, service, now);

  simr_->After(service, [this, service] { CompleteInflight(service); });
}

RC_HOT_PATH void DiskEngine::CompleteInflight(sim::Duration service) {
  RC_CHECK(busy_);
  RC_CHECK(inflight_ != nullptr);
  IoRequest* req = inflight_;
  inflight_ = nullptr;

  ++stats_.requests;
  stats_.busy_usec += service;
  stats_.kb_transferred += req->kb;
  const bool owned = req->container != nullptr;
  if (owned) {
    if (auditor_ != nullptr) {
      auditor_->OnResourceCharge(rc::ResourceKind::kDisk, *req->container, service);
    }
    req->container->ChargeDisk(service, req->kb);
  }
  if (auditor_ != nullptr) {
    auditor_->OnDeviceWork(rc::ResourceKind::kDisk, service, owned);
  }
  busy_ = false;
  // Recycle before the callback, matching the previous release order (the
  // request's container reference must drop before `done` runs).
  auto done = std::move(req->done);
  pool_.Destroy(req);
  if (done) {
    done();
  }
  MaybeStart();
}

void DiskEngine::RegisterMetrics(telemetry::Registry& registry) {
  registry.AddProbe("disk.requests", "requests",
                    [this] { return static_cast<double>(stats_.requests); });
  registry.AddProbe("disk.busy_usec", "usec",
                    [this] { return static_cast<double>(stats_.busy_usec); });
  registry.AddProbe("disk.kb_transferred", "kb",
                    [this] { return static_cast<double>(stats_.kb_transferred); });
  registry.AddProbe("disk.sequential_hits", "requests",
                    [this] { return static_cast<double>(stats_.sequential_hits); });
  registry.AddProbe("disk.queue_depth", "requests",
                    [this] { return static_cast<double>(queued()); });
}

}  // namespace disk
