# Empty compiler generated dependencies file for rc_disk.
# This may be replaced when dependencies are built.
