// Response-size distributions for synthetic file sets. The paper's
// experiments serve one cached 1 KB document; capacity-planning scenarios
// compose realistic mixes: fixed sizes, empirical tables (SPECweb-style
// class mixes), and the bounded Pareto tail observed in Web traces
// (Crovella & Bestavros '96).
#ifndef SRC_LOAD_DISTS_H_
#define SRC_LOAD_DISTS_H_

#include <cmath>
#include <cstdint>
#include <vector>

#include "src/common/check.h"
#include "src/sim/rng.h"

namespace load {

struct SizeDist {
  enum class Kind {
    kFixed,   // every document is `fixed_bytes`
    kTable,   // empirical table: {bytes, weight} entries
    kPareto,  // bounded Pareto on [pareto_min_bytes, pareto_max_bytes]
  };

  struct Entry {
    std::uint32_t bytes = 0;
    double weight = 0.0;
  };

  Kind kind = Kind::kFixed;
  std::uint32_t fixed_bytes = 1024;
  std::vector<Entry> table;
  double pareto_alpha = 1.2;
  std::uint32_t pareto_min_bytes = 256;
  std::uint32_t pareto_max_bytes = 1 << 20;

  // Draws one document size. Deterministic given the rng stream.
  std::uint32_t Sample(sim::Rng& rng) const {
    switch (kind) {
      case Kind::kFixed:
        return fixed_bytes;
      case Kind::kTable: {
        RC_CHECK(!table.empty());
        double total = 0.0;
        for (const Entry& e : table) {
          total += e.weight;
        }
        double u = rng.NextDouble() * total;
        for (const Entry& e : table) {
          u -= e.weight;
          if (u <= 0.0) {
            return e.bytes;
          }
        }
        return table.back().bytes;  // floating-point slop on the last entry
      }
      case Kind::kPareto: {
        // Inverse CDF of the bounded Pareto: mass ~ x^(-alpha-1) on [L, H].
        const double a = pareto_alpha;
        const double la = std::pow(static_cast<double>(pareto_min_bytes), a);
        const double ha = std::pow(static_cast<double>(pareto_max_bytes), a);
        const double u = rng.NextDouble();
        const double x = std::pow(-(u * ha - u * la - ha) / (ha * la), -1.0 / a);
        if (x <= static_cast<double>(pareto_min_bytes)) {
          return pareto_min_bytes;
        }
        if (x >= static_cast<double>(pareto_max_bytes)) {
          return pareto_max_bytes;
        }
        return static_cast<std::uint32_t>(x);
      }
    }
    return fixed_bytes;
  }
};

}  // namespace load

#endif  // SRC_LOAD_DISTS_H_
