# Empty dependencies file for kernel_syscalls_test.
# This may be replaced when dependencies are built.
