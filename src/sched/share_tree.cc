#include "src/sched/share_tree.h"

#include <algorithm>

#include "src/common/check.h"

namespace sched {

namespace {
// Floor for the residual share granted to time-share children when fixed
// shares (nearly) exhaust the parent; keeps time-share work from starving.
constexpr double kResidualFloor = 0.02;
}  // namespace

ShareTree::ShareTree(rc::ContainerManager* manager, const ShareTreeOptions& options)
    : manager_(manager), options_(options) {
  manager_->AddLifecycleListener(this);
}

void ShareTree::DetachLifecycle() { manager_->RemoveLifecycleListener(this); }

ShareTree::NodeIndex ShareTree::FindNode(const rc::ResourceContainer& c) const {
  const std::int32_t slot = c.SchedSlotFor(this);
  // Validate the back-pointer: a slot recorded for a tree that died and was
  // reallocated at this address must read as absent, not as our node.
  if (slot < 0 || slot >= static_cast<std::int32_t>(nodes_.size()) ||
      nodes_[static_cast<std::size_t>(slot)].container != &c) {
    return kInvalidNode;
  }
  return slot;
}

ShareTree::NodeIndex ShareTree::EnsureNode(rc::ResourceContainer& c) {
  serial_.AssertHeld();
  NodeIndex i = FindNode(c);
  if (i != kInvalidNode) {
    return i;
  }
  if (free_nodes_.empty()) {
    i = static_cast<NodeIndex>(nodes_.size());
    nodes_.emplace_back();
  } else {
    i = free_nodes_.back();
    free_nodes_.pop_back();
    nodes_[static_cast<std::size_t>(i)] = Node{};
  }
  nodes_[static_cast<std::size_t>(i)].container = &c;
  c.SetSchedSlot(this, i);
  return i;
}

double ShareTree::ResidualWeight(const rc::ResourceContainer& parent) const {
  double fixed_total = 0.0;
  parent.ForEachChild([&](rc::ResourceContainer& child) {
    const rc::SchedParams& sched = rc::SchedFor(child.attributes(), options_.resource);
    if (sched.cls == rc::SchedClass::kFixedShare) {
      fixed_total += sched.fixed_share;
    }
  });
  return std::max(kResidualFloor, 1.0 - fixed_total);
}

double ShareTree::CachedResidualWeight(NodeIndex parent_index,
                                       const rc::ResourceContainer& parent) {
  serial_.AssertHeld();
  Node& pn = nodes_[static_cast<std::size_t>(parent_index)];
  if (!pn.residual_valid) {
    pn.residual = ResidualWeight(parent);
    pn.residual_valid = true;
    residual_cached_.push_back(parent_index);
  }
  return pn.residual;
}

RC_HOT_PATH void ShareTree::OnCharge(rc::ResourceContainer& c,
                                     sim::Duration usec, sim::SimTime now) {
  serial_.AssertHeld();
  // rclint: allow(hotpath): amortized append to the charge log; the vector
  // keeps its capacity across Flush() clears, so steady state is store+bump.
  log_.push_back(LogEntry{EnsureNode(c), usec, now});
}

void ShareTree::Flush() {
  serial_.AssertHeld();
  if (log_.empty()) {
    return;
  }
  // Replay in arrival order — the same operation sequence eager charging
  // would have performed, so every pass/decayed/window value (including its
  // floating-point rounding) is bit-identical to the unbatched tree.
  for (const LogEntry& e : log_) {
    const double usec = static_cast<double>(e.usec);
    for (rc::ResourceContainer* p = nodes_[static_cast<std::size_t>(e.node)].container;
         p != nullptr; p = p->parent()) {
      const NodeIndex ni = EnsureNode(*p);
      nodes_[static_cast<std::size_t>(ni)].decayed += usec;

      // Stride pass advance at this level.
      if (rc::ResourceContainer* parent = p->parent()) {
        const NodeIndex pi = EnsureNode(*parent);
        const rc::SchedParams& sched = rc::SchedFor(p->attributes(), options_.resource);
        if (sched.cls == rc::SchedClass::kFixedShare) {
          nodes_[static_cast<std::size_t>(ni)].pass +=
              usec / std::max(1e-6, sched.fixed_share);
        } else {
          nodes_[static_cast<std::size_t>(pi)].tshare_pass +=
              usec / CachedResidualWeight(pi, *parent);
        }
      }

      // Windowed limit, budgeted against the whole device's (or machine's)
      // capacity.
      const double limit = rc::LimitFor(p->attributes(), options_.resource);
      if (limit > 0.0) {
        nodes_[static_cast<std::size_t>(ni)].window.Charge(
            e.usec, e.now, limit, options_.limit_window, options_.capacity);
      }
    }
  }
  log_.clear();
  for (const NodeIndex ni : residual_cached_) {
    nodes_[static_cast<std::size_t>(ni)].residual_valid = false;
  }
  residual_cached_.clear();
}

void ShareTree::AdjustRunnable(rc::ResourceContainer* leaf, int delta) {
  serial_.AssertHeld();
  for (rc::ResourceContainer* c = leaf; c != nullptr; c = c->parent()) {
    const NodeIndex ni = EnsureNode(*c);
    const int before = nodes_[static_cast<std::size_t>(ni)].runnable;
    nodes_[static_cast<std::size_t>(ni)].runnable += delta;
    RC_CHECK_GE(nodes_[static_cast<std::size_t>(ni)].runnable, 0);
    rc::ResourceContainer* parent = c->parent();
    if (parent == nullptr) {
      continue;
    }
    const NodeIndex pi = EnsureNode(*parent);
    Node& n = nodes_[static_cast<std::size_t>(ni)];
    Node& pn = nodes_[static_cast<std::size_t>(pi)];
    const bool fixed =
        rc::SchedFor(c->attributes(), options_.resource).cls == rc::SchedClass::kFixedShare;
    if (before == 0 && n.runnable == 1) {
      // (Re)entering the runnable set: no credit for idle time.
      if (fixed) {
        n.pass = std::max(n.pass, pn.vtime);
      } else if (++pn.tshare_runnable_children == 1) {
        pn.tshare_pass = std::max(pn.tshare_pass, pn.vtime);
      }
    } else if (before == 1 && n.runnable == 0) {
      if (!fixed) {
        --pn.tshare_runnable_children;
        RC_CHECK_GE(pn.tshare_runnable_children, 0);
      }
    }
  }
  total_queued_ += delta;
}

ShareTree::NodeIndex ShareTree::Push(rc::ResourceContainer* leaf, void* item) {
  serial_.AssertHeld();
  RC_CHECK_NE(leaf, nullptr);
  RC_CHECK_NE(item, nullptr);
  Flush();  // runnable-entry clamps read stride state
  const NodeIndex ni = EnsureNode(*leaf);
  std::int32_t qs;
  if (qfree_ >= 0) {
    qs = qfree_;
    qfree_ = qslots_[static_cast<std::size_t>(qs)].next;
  } else {
    qs = static_cast<std::int32_t>(qslots_.size());
    qslots_.emplace_back();
  }
  qslots_[static_cast<std::size_t>(qs)] = QueueSlot{item, -1};
  Node& n = nodes_[static_cast<std::size_t>(ni)];
  if (n.q_tail < 0) {
    n.q_head = qs;
  } else {
    qslots_[static_cast<std::size_t>(n.q_tail)].next = qs;
  }
  n.q_tail = qs;
  AdjustRunnable(leaf, +1);
  return ni;
}

ShareTree::NodeIndex ShareTree::PickChild(NodeIndex parent, sim::SimTime now,
                                          bool allow_zero) {
  // Collect the stride candidates at this level: eligible fixed-share
  // children, and the time-share group if any of its members is eligible.
  NodeIndex best_fixed = kInvalidNode;
  bool group_eligible = false;

  const rc::ResourceContainer* pc = nodes_[static_cast<std::size_t>(parent)].container;
  pc->ForEachChild([&](rc::ResourceContainer& child) {
    const NodeIndex ci = FindNode(child);
    if (ci == kInvalidNode) {
      return;
    }
    const Node& cn = nodes_[static_cast<std::size_t>(ci)];
    if (cn.runnable == 0 || Throttled(cn, now)) {
      return;
    }
    const rc::SchedParams& sched = rc::SchedFor(child.attributes(), options_.resource);
    if (sched.cls == rc::SchedClass::kFixedShare) {
      if (best_fixed == kInvalidNode ||
          cn.pass < nodes_[static_cast<std::size_t>(best_fixed)].pass) {
        best_fixed = ci;
      }
    } else {
      if (sched.priority <= 0 && !allow_zero) {
        return;
      }
      group_eligible = true;
    }
  });

  Node& pn = nodes_[static_cast<std::size_t>(parent)];
  const bool pick_group =
      group_eligible &&
      (best_fixed == kInvalidNode ||
       pn.tshare_pass <= nodes_[static_cast<std::size_t>(best_fixed)].pass);

  if (!pick_group && best_fixed == kInvalidNode) {
    return kInvalidNode;
  }

  pn.vtime = std::max(
      pn.vtime, pick_group ? pn.tshare_pass
                           : nodes_[static_cast<std::size_t>(best_fixed)].pass);

  if (!pick_group) {
    return best_fixed;
  }

  // Inside the group: decayed usage scaled by numeric priority. In the CPU's
  // starvation-class mode, positive-priority children always beat
  // priority-0 ones; otherwise priority 0 is just the weakest weight.
  NodeIndex best = kInvalidNode;
  double best_key = 0.0;
  bool best_positive = false;
  pc->ForEachChild([&](rc::ResourceContainer& child) {
    const NodeIndex ci = FindNode(child);
    if (ci == kInvalidNode) {
      return;
    }
    const Node& cn = nodes_[static_cast<std::size_t>(ci)];
    if (cn.runnable == 0 || Throttled(cn, now)) {
      return;
    }
    const rc::SchedParams& sched = rc::SchedFor(child.attributes(), options_.resource);
    if (sched.cls == rc::SchedClass::kFixedShare) {
      return;
    }
    const bool positive = sched.priority > 0;
    if (!positive && !allow_zero) {
      return;
    }
    const double key = cn.decayed / static_cast<double>(std::max(1, sched.priority));
    bool better;
    if (options_.starve_priority_zero) {
      better = best == kInvalidNode || (positive && !best_positive) ||
               (positive == best_positive && key < best_key);
    } else {
      better = best == kInvalidNode || key < best_key;
    }
    if (better) {
      best = ci;
      best_key = key;
      best_positive = positive;
    }
  });
  return best;
}

void* ShareTree::Descend(sim::SimTime now, bool allow_zero) {
  serial_.AssertHeld();
  NodeIndex ni = EnsureNode(*manager_->root());
  if (nodes_[static_cast<std::size_t>(ni)].runnable == 0) {
    return nullptr;
  }
  while (true) {
    const NodeIndex child = PickChild(ni, now, allow_zero);
    if (child != kInvalidNode) {
      ni = child;
      continue;
    }
    Node& n = nodes_[static_cast<std::size_t>(ni)];
    if (n.q_head < 0) {
      return nullptr;  // everything below is throttled or priority-0
    }
    const std::int32_t qs = n.q_head;
    QueueSlot& slot = qslots_[static_cast<std::size_t>(qs)];
    void* item = slot.item;
    n.q_head = slot.next;
    if (n.q_head < 0) {
      n.q_tail = -1;
    }
    slot = QueueSlot{nullptr, qfree_};
    qfree_ = qs;
    AdjustRunnable(n.container, -1);
    return item;
  }
}

void* ShareTree::Pop(sim::SimTime now) {
  Flush();
  if (!options_.starve_priority_zero) {
    return Descend(now, /*allow_zero=*/true);
  }
  if (void* item = Descend(now, /*allow_zero=*/false)) {
    return item;
  }
  // Nothing with positive priority: admit the starvation (priority-0) class.
  return Descend(now, /*allow_zero=*/true);
}

void ShareTree::Erase(NodeIndex node, void* item) {
  serial_.AssertHeld();
  RC_CHECK_GE(node, 0);
  Flush();
  Node& n = nodes_[static_cast<std::size_t>(node)];
  std::int32_t prev = -1;
  std::int32_t qs = n.q_head;
  bool found = false;
  while (qs >= 0) {
    QueueSlot& slot = qslots_[static_cast<std::size_t>(qs)];
    const std::int32_t next = slot.next;
    if (slot.item == item) {
      if (prev < 0) {
        n.q_head = next;
      } else {
        qslots_[static_cast<std::size_t>(prev)].next = next;
      }
      if (n.q_tail == qs) {
        n.q_tail = prev;
      }
      slot = QueueSlot{nullptr, qfree_};
      qfree_ = qs;
      found = true;
    } else {
      prev = qs;
    }
    qs = next;
  }
  RC_CHECK(found);
  AdjustRunnable(n.container, -1);
}

void ShareTree::Tick() {
  Flush();
  for (Node& n : nodes_) {
    if (n.container != nullptr) {
      n.decayed *= options_.decay_per_tick;
    }
  }
}

std::optional<sim::SimTime> ShareTree::NextEligibleTime(sim::SimTime now) const {
  // Logically const: pending charges affect window state.
  const_cast<ShareTree*>(this)->Flush();
  std::optional<sim::SimTime> earliest;
  for (const Node& n : nodes_) {
    if (n.container != nullptr && n.runnable > 0 && n.window.throttled_until > now) {
      if (!earliest.has_value() || n.window.throttled_until < *earliest) {
        earliest = n.window.throttled_until;
      }
    }
  }
  return earliest;
}

void ShareTree::OnContainerDestroyed(rc::ResourceContainer& c) {
  serial_.AssertHeld();
  Flush();  // ancestors must receive this container's pending charges
  const NodeIndex ni = FindNode(c);
  if (ni == kInvalidNode) {
    return;
  }
  // Discard any work still queued under the dying container — in steady
  // state queued items hold container references so this loop never runs;
  // it fires on teardown paths where a container dies with work pending.
  while (nodes_[static_cast<std::size_t>(ni)].q_head >= 0) {
    Node& n = nodes_[static_cast<std::size_t>(ni)];
    const std::int32_t qs = n.q_head;
    n.q_head = qslots_[static_cast<std::size_t>(qs)].next;
    if (n.q_head < 0) {
      n.q_tail = -1;
    }
    qslots_[static_cast<std::size_t>(qs)] = QueueSlot{nullptr, qfree_};
    qfree_ = qs;
    // May grow nodes_ for ancestors: re-index on the next iteration.
    AdjustRunnable(&c, -1);
  }
  c.ClearSchedSlot(this);
  nodes_[static_cast<std::size_t>(ni)] = Node{};
  free_nodes_.push_back(ni);
}

void ShareTree::OnContainerReparented(rc::ResourceContainer& child,
                                      rc::ResourceContainer* old_parent,
                                      rc::ResourceContainer* new_parent) {
  Flush();  // pending charges must walk the pre-move ancestor chain
  const NodeIndex ci = FindNode(child);
  if (ci == kInvalidNode || nodes_[static_cast<std::size_t>(ci)].runnable == 0) {
    return;
  }
  const int k = nodes_[static_cast<std::size_t>(ci)].runnable;
  const bool fixed = rc::SchedFor(child.attributes(), options_.resource).cls ==
                     rc::SchedClass::kFixedShare;
  for (rc::ResourceContainer* p = old_parent; p != nullptr; p = p->parent()) {
    const NodeIndex ni = FindNode(*p);
    if (ni != kInvalidNode) {
      Node& n = nodes_[static_cast<std::size_t>(ni)];
      if (p == old_parent && !fixed) {
        --n.tshare_runnable_children;
      }
      n.runnable -= k;
      RC_CHECK_GE(n.runnable, 0);
    }
  }
  for (rc::ResourceContainer* p = new_parent; p != nullptr; p = p->parent()) {
    const NodeIndex ni = EnsureNode(*p);
    Node& n = nodes_[static_cast<std::size_t>(ni)];
    if (p == new_parent && !fixed) {
      ++n.tshare_runnable_children;
    }
    n.runnable += k;
  }
}

std::vector<void*> ShareTree::DrainAll() {
  serial_.AssertHeld();
  // Teardown path: discard un-flushed charges instead of applying them — the
  // containers they reference may already be destroyed (teardown order), and
  // a drained tree's share state is never consulted again.
  log_.clear();
  std::vector<void*> items;
  for (Node& n : nodes_) {
    if (n.container == nullptr) {
      continue;
    }
    for (std::int32_t qs = n.q_head; qs >= 0;) {
      QueueSlot& slot = qslots_[static_cast<std::size_t>(qs)];
      items.push_back(slot.item);
      const std::int32_t next = slot.next;
      slot = QueueSlot{nullptr, qfree_};
      qfree_ = qs;
      qs = next;
    }
    n.q_head = -1;
    n.q_tail = -1;
    n.runnable = 0;
    n.tshare_runnable_children = 0;
  }
  total_queued_ = 0;
  return items;
}

double ShareTree::DecayedUsage(const rc::ResourceContainer& c) const {
  const_cast<ShareTree*>(this)->Flush();
  const NodeIndex ni = FindNode(c);
  return ni == kInvalidNode ? 0.0 : nodes_[static_cast<std::size_t>(ni)].decayed;
}

bool ShareTree::IsThrottled(const rc::ResourceContainer& c, sim::SimTime now) const {
  const_cast<ShareTree*>(this)->Flush();
  const NodeIndex ni = FindNode(c);
  return ni != kInvalidNode && Throttled(nodes_[static_cast<std::size_t>(ni)], now);
}

// --- Space-shared (occupancy) mode -----------------------------------
//
// A space-shared tree allocates no nodes at all: occupancy lives in the
// containers themselves (subtree_memory_bytes), so the tree is stateless
// policy math over the hierarchy plus the configured capacity.

rccommon::Expected<void> ShareTree::CheckSpaceCharge(const rc::ResourceContainer& c,
                                                     std::int64_t bytes) const {
  RC_CHECK(options_.space_shared);
  return c.CheckMemoryLimits(bytes, options_.capacity_bytes);
}

std::int64_t ShareTree::EntitlementBytes(const rc::ResourceContainer& c) const {
  RC_CHECK(options_.space_shared);
  if (options_.capacity_bytes <= 0) {
    return 0;
  }
  // Root→c path (c.depth() levels above c, root last after reversal).
  std::vector<const rc::ResourceContainer*> path;
  for (const rc::ResourceContainer* p = &c; p != nullptr; p = p->parent()) {
    path.push_back(p);
  }
  std::reverse(path.begin(), path.end());

  double ent = static_cast<double>(options_.capacity_bytes);
  for (std::size_t i = 1; i < path.size(); ++i) {
    const rc::ResourceContainer* parent = path[i - 1];
    const rc::ResourceContainer* child = path[i];
    const rc::SchedParams& sched =
        rc::SchedFor(child->attributes(), rc::ResourceKind::kMemory);
    if (sched.cls == rc::SchedClass::kFixedShare) {
      ent *= sched.fixed_share;
      continue;
    }
    // Time-share link: the parent's residual is split among the time-share
    // siblings that currently occupy memory (idle siblings cede their cut),
    // weighted by priority. The path child always counts as occupying — its
    // entitlement is what a prospective charge is measured against.
    double weight_total = 0.0;
    const double child_weight =
        static_cast<double>(std::max(1, sched.priority));
    parent->ForEachChild([&](rc::ResourceContainer& sib) {
      const rc::SchedParams& ss =
          rc::SchedFor(sib.attributes(), rc::ResourceKind::kMemory);
      if (ss.cls == rc::SchedClass::kFixedShare) {
        return;
      }
      if (&sib == child || sib.subtree_memory_bytes() > 0) {
        weight_total += static_cast<double>(std::max(1, ss.priority));
      }
    });
    ent *= ResidualWeight(*parent) * child_weight / std::max(1.0, weight_total);
  }
  return static_cast<std::int64_t>(ent);
}

void ShareTree::ForEachOccupyingTopLevel(
    const std::function<void(rc::ResourceContainer&, std::int64_t,
                             std::int64_t)>& fn) const {
  RC_CHECK(options_.space_shared);
  if (options_.capacity_bytes <= 0) {
    return;
  }
  const rc::ContainerRef& root = manager_->root();
  // Pass 1: the fixed-share total (→ residual) and the occupying time-share
  // weight denominator, both shared by every emitted child.
  double fixed_total = 0.0;
  double occ_weight_total = 0.0;
  root->ForEachChild([&](rc::ResourceContainer& child) {
    const rc::SchedParams& sched =
        rc::SchedFor(child.attributes(), options_.resource);
    if (sched.cls == rc::SchedClass::kFixedShare) {
      fixed_total += sched.fixed_share;
    } else if (child.subtree_memory_bytes() > 0) {
      occ_weight_total += static_cast<double>(std::max(1, sched.priority));
    }
  });
  const double residual = std::max(kResidualFloor, 1.0 - fixed_total);
  const double capacity = static_cast<double>(options_.capacity_bytes);
  // Pass 2: each occupying child's entitlement in O(1). An occupying child's
  // own weight is already in the denominator, so this matches what
  // EntitlementBytes would compute for it.
  root->ForEachChild([&](rc::ResourceContainer& child) {
    const std::int64_t held = child.subtree_memory_bytes();
    if (held <= 0) {
      return;
    }
    const rc::SchedParams& sched =
        rc::SchedFor(child.attributes(), options_.resource);
    double ent;
    if (sched.cls == rc::SchedClass::kFixedShare) {
      ent = sched.fixed_share * capacity;
    } else {
      const double w = static_cast<double>(std::max(1, sched.priority));
      ent = residual * capacity * w / std::max(1.0, occ_weight_total);
    }
    fn(child, held, static_cast<std::int64_t>(ent));
  });
}

std::int64_t ShareTree::GuaranteeBytes(const rc::ResourceContainer& c) const {
  RC_CHECK(options_.space_shared);
  if (options_.capacity_bytes <= 0) {
    return 0;
  }
  double fraction = 1.0;
  for (const rc::ResourceContainer* p = &c; p->parent() != nullptr; p = p->parent()) {
    const rc::SchedParams& sched =
        rc::SchedFor(p->attributes(), rc::ResourceKind::kMemory);
    if (sched.cls != rc::SchedClass::kFixedShare) {
      return 0;  // a time-share link holds no demand-independent guarantee
    }
    fraction *= sched.fixed_share;
  }
  return static_cast<std::int64_t>(
      fraction * static_cast<double>(options_.capacity_bytes));
}

}  // namespace sched
