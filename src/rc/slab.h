// Slab/freelist arena for container storage. A million-client run churns
// ~2M per-connection containers; allocating each ResourceContainer (and its
// shared_ptr control block) through the general-purpose heap makes the
// allocator the lifecycle bottleneck. SlabPool carves fixed-size blocks out
// of large slabs and recycles them through an intrusive free list, so a
// create/destroy cycle in steady state is two pointer moves.
//
// The pool serves ONE size class, fixed by the first allocation — exactly
// the std::allocate_shared<ResourceContainer> control-block-plus-object
// allocation the manager makes. Requests of any other size fall through to
// the global heap, so the pool is safe to hand to any allocator-aware
// machinery. SlabPoolAllocator carries the pool by shared_ptr: allocate_shared
// stores a copy of the allocator inside the control block it allocates, which
// keeps the arena alive until the last ContainerRef drops, even if the
// manager that created the pool is long gone.
#ifndef SRC_RC_SLAB_H_
#define SRC_RC_SLAB_H_

#include <cstddef>
#include <memory>
#include <new>
#include <vector>

namespace rc {

class SlabPool {
 public:
  explicit SlabPool(std::size_t blocks_per_slab = 256)
      : blocks_per_slab_(blocks_per_slab) {}

  SlabPool(const SlabPool&) = delete;
  SlabPool& operator=(const SlabPool&) = delete;

  void* Allocate(std::size_t bytes) {
    const std::size_t size = BlockSizeFor(bytes);
    if (block_size_ == 0) {
      block_size_ = size;
    }
    if (size != block_size_) {
      return ::operator new(bytes);
    }
    if (free_ == nullptr) {
      Grow();
    }
    FreeBlock* block = free_;
    free_ = block->next;
    return block;
  }

  void Deallocate(void* p, std::size_t bytes) {
    if (BlockSizeFor(bytes) != block_size_) {
      ::operator delete(p);
      return;
    }
    auto* block = static_cast<FreeBlock*>(p);
    block->next = free_;
    free_ = block;
  }

  std::size_t slab_count() const { return slabs_.size(); }

 private:
  struct FreeBlock {
    FreeBlock* next;
  };

  static std::size_t BlockSizeFor(std::size_t bytes) {
    const std::size_t align = alignof(std::max_align_t);
    std::size_t size = (bytes + align - 1) / align * align;
    return size < sizeof(FreeBlock) ? sizeof(FreeBlock) : size;
  }

  void Grow() {
    auto slab = std::make_unique<unsigned char[]>(block_size_ * blocks_per_slab_);
    unsigned char* base = slab.get();
    // Thread the new blocks onto the free list back to front so allocation
    // order matches address order within a fresh slab.
    for (std::size_t i = blocks_per_slab_; i-- > 0;) {
      auto* block = reinterpret_cast<FreeBlock*>(base + i * block_size_);
      block->next = free_;
      free_ = block;
    }
    slabs_.push_back(std::move(slab));
  }

  std::size_t block_size_ = 0;
  const std::size_t blocks_per_slab_;
  FreeBlock* free_ = nullptr;
  std::vector<std::unique_ptr<unsigned char[]>> slabs_;
};

// Standard-allocator shim over a shared SlabPool. Over-aligned types are not
// supported (the pool aligns to max_align_t).
template <typename T>
class SlabPoolAllocator {
 public:
  using value_type = T;

  explicit SlabPoolAllocator(std::shared_ptr<SlabPool> pool) : pool_(std::move(pool)) {}

  template <typename U>
  SlabPoolAllocator(const SlabPoolAllocator<U>& other)  // NOLINT(google-explicit-constructor)
      : pool_(other.pool()) {}

  T* allocate(std::size_t n) {
    static_assert(alignof(T) <= alignof(std::max_align_t));
    return static_cast<T*>(pool_->Allocate(n * sizeof(T)));
  }

  void deallocate(T* p, std::size_t n) { pool_->Deallocate(p, n * sizeof(T)); }

  const std::shared_ptr<SlabPool>& pool() const { return pool_; }

  template <typename U>
  bool operator==(const SlabPoolAllocator<U>& other) const {
    return pool_ == other.pool();
  }
  template <typename U>
  bool operator!=(const SlabPoolAllocator<U>& other) const {
    return pool_ != other.pool();
  }

 private:
  std::shared_ptr<SlabPool> pool_;
};

}  // namespace rc

#endif  // SRC_RC_SLAB_H_
