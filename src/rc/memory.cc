#include "src/rc/memory.h"

namespace rc {

const char* MemorySourceName(MemorySource source) {
  switch (source) {
    case MemorySource::kOther:
      return "other";
    case MemorySource::kFileCache:
      return "file-cache";
    case MemorySource::kConnection:
      return "connection";
  }
  return "unknown";
}

}  // namespace rc
