#include "src/rc/manager.h"

#include <algorithm>
#include <utility>

#include "src/common/check.h"

namespace rc {

using rccommon::Errc;
using rccommon::Expected;
using rccommon::MakeUnexpected;

LifecycleListener::~LifecycleListener() {
  if (lifecycle_manager_ != nullptr) {
    lifecycle_manager_->RemoveLifecycleListener(this);
  }
}

ContainerManager::ContainerManager()
    : shared_(std::make_shared<ManagerShared>()),
      pool_(std::make_shared<SlabPool>()) {
  Attributes root_attrs;
  root_attrs.sched.cls = SchedClass::kFixedShare;
  root_attrs.sched.fixed_share = 1.0;
  root_ = Materialize(nullptr, shared_->Intern("root"), root_attrs);
}

ContainerManager::~ContainerManager() {
  // Null every registered listener's back-pointer so listeners that outlive
  // the manager (declaration order differs across owners) don't unregister
  // against a dead object.
  for (LifecycleListener* listener : listeners_) {
    if (listener != nullptr) {
      listener->lifecycle_manager_ = nullptr;
    }
  }
  listeners_.clear();
  // Containers still referenced elsewhere (e.g. by queued simulator events)
  // may be destroyed after this point; the shared flag tells their
  // destructors to skip manager interaction.
  shared_->alive = false;
  root_.reset();
}

ContainerRef ContainerManager::Materialize(ResourceContainer* parent,
                                           const std::string* name,
                                           const Attributes& attrs) {
  ContainerRef c = std::allocate_shared<ResourceContainer>(
      SlabPoolAllocator<ResourceContainer>(pool_), ResourceContainer::CreateKey{},
      this, shared_, next_id_++, name, attrs);
  std::uint32_t slot;
  if (free_slots_.empty()) {
    slot = static_cast<std::uint32_t>(slots_.size());
    slots_.emplace_back();
  } else {
    slot = free_slots_.back();
    free_slots_.pop_back();
  }
  Slot& s = slots_[slot];
  s.ptr = c.get();
  c->slot_ = slot;
  c->generation_ = s.generation;
  ++live_;
  if (parent != nullptr) {
    parent->AdoptChild(c.get());
  }
  return c;
}

Expected<ContainerRef> ContainerManager::Create(const ContainerRef& parent,
                                                std::string name,
                                                const Attributes& attrs) {
  if (auto v = attrs.Validate(); !v.ok()) {
    return MakeUnexpected(v.error());
  }
  ResourceContainer* p = parent ? parent.get() : root_.get();
  if (auto v = CheckParentEligible(*p, attrs, nullptr); !v.ok()) {
    return MakeUnexpected(v.error());
  }
  return Materialize(p, shared_->Intern(std::move(name)), attrs);
}

Expected<ContainerTemplateRef> ContainerManager::PrepareTemplate(
    const ContainerRef& parent, std::string name, const Attributes& attrs) {
  if (auto v = attrs.Validate(); !v.ok()) {
    return MakeUnexpected(v.error());
  }
  const ContainerRef& p = parent ? parent : root_;
  if (auto v = CheckParentEligible(*p, attrs, nullptr); !v.ok()) {
    return MakeUnexpected(v.error());
  }
  std::shared_ptr<ContainerTemplate> t(new ContainerTemplate());
  t->parent_ = p;
  t->name_ = shared_->Intern(std::move(name));
  t->shared_ = shared_;
  t->attrs_ = attrs;
  for (int k = 0; k < kResourceKindCount; ++k) {
    if (SchedFor(attrs, static_cast<ResourceKind>(k)).cls == SchedClass::kFixedShare) {
      t->needs_budget_check_ = true;
    }
  }
  return ContainerTemplateRef(std::move(t));
}

Expected<ContainerRef> ContainerManager::CreateFromTemplate(const ContainerTemplate& t) {
  RC_DCHECK(t.shared_ == shared_);  // template belongs to this manager
  ResourceContainer* p = t.parent_.get();
  if (t.needs_budget_check_) {
    if (auto v = CheckParentEligible(*p, t.attrs_, nullptr); !v.ok()) {
      return MakeUnexpected(v.error());
    }
  } else if (p->attributes().sched.cls != SchedClass::kFixedShare) {
    return MakeUnexpected(Errc::kHasChildren);
  }
  return Materialize(p, t.name_, t.attrs_);
}

Expected<void> ContainerManager::SetParent(const ContainerRef& c,
                                           const ContainerRef& parent) {
  if (!c || c == root_) {
    return MakeUnexpected(Errc::kInvalidArgument);
  }
  ResourceContainer* new_parent = parent ? parent.get() : root_.get();
  if (new_parent == c->parent()) {
    return {};
  }
  // Reject cycles: the new parent must not be c or a descendant of c.
  if (c->IsSelfOrDescendant(new_parent)) {
    return MakeUnexpected(Errc::kInvalidArgument);
  }
  if (auto v = CheckParentEligible(*new_parent, c->attributes(), c.get()); !v.ok()) {
    return v;
  }

  ResourceContainer* old_parent = c->parent();
  RC_CHECK_NE(old_parent, nullptr);
  const std::int64_t m = c->subtree_memory_bytes();
  old_parent->RemoveChild(c.get());
  old_parent->PropagateMemory(-m);
  new_parent->AdoptChild(c.get());
  new_parent->PropagateMemory(m);
  NotifyReparent(*c, old_parent, new_parent);
  return {};
}

Expected<ContainerRef> ContainerManager::Lookup(ContainerId id) const {
  for (const Slot& s : slots_) {
    if (s.ptr != nullptr && s.ptr->id() == id) {
      return s.ptr->shared_from_this();
    }
  }
  return MakeUnexpected(Errc::kNotFound);
}

void ContainerManager::ForEachLive(
    const std::function<void(ResourceContainer&)>& fn) const {
  // id order keeps telemetry exports deterministic across runs.
  std::vector<ContainerRef> live;
  live.reserve(live_);
  for (const Slot& s : slots_) {
    if (s.ptr != nullptr) {
      live.push_back(s.ptr->shared_from_this());
    }
  }
  std::sort(live.begin(), live.end(),
            [](const ContainerRef& a, const ContainerRef& b) { return a->id() < b->id(); });
  for (const ContainerRef& ref : live) {
    fn(*ref);
  }
}

void ContainerManager::AddLifecycleListener(LifecycleListener* listener) {
  RC_CHECK(listener->lifecycle_manager_ == nullptr);
  listener->lifecycle_manager_ = this;
  listeners_.push_back(listener);
}

void ContainerManager::RemoveLifecycleListener(LifecycleListener* listener) {
  if (listener->lifecycle_manager_ != this) {
    return;
  }
  listener->lifecycle_manager_ = nullptr;
  auto it = std::find(listeners_.begin(), listeners_.end(), listener);
  RC_CHECK(it != listeners_.end());
  if (dispatch_depth_ > 0) {
    // Mid-dispatch: null the entry so the active loops skip it, compact
    // when the outermost dispatch unwinds.
    *it = nullptr;
    listeners_dirty_ = true;
  } else {
    listeners_.erase(it);
  }
}

void ContainerManager::NotifyReparent(ResourceContainer& child,
                                      ResourceContainer* old_parent,
                                      ResourceContainer* new_parent) {
  ++dispatch_depth_;
  const std::size_t n = listeners_.size();
  for (std::size_t i = 0; i < n; ++i) {
    if (LifecycleListener* listener = listeners_[i]) {
      listener->OnContainerReparented(child, old_parent, new_parent);
    }
  }
  if (--dispatch_depth_ == 0 && listeners_dirty_) {
    listeners_.erase(std::remove(listeners_.begin(), listeners_.end(), nullptr),
                     listeners_.end());
    listeners_dirty_ = false;
  }
}

double ContainerManager::SiblingFixedShareSum(const ResourceContainer& parent,
                                              const ResourceContainer* exclude,
                                              ResourceKind kind) {
  const int k = static_cast<int>(kind);
  double sum = parent.child_fixed_sum_[k];
  if (exclude != nullptr && exclude->parent_ == &parent) {
    const SchedParams& sched = SchedFor(exclude->attrs_, kind);
    if (sched.cls == SchedClass::kFixedShare) {
      // With a single fixed child the remainder is exactly zero — don't let
      // subtraction rounding manufacture a phantom residual.
      sum = parent.child_fixed_count_[k] == 1 ? 0.0 : sum - sched.fixed_share;
    }
  }
  return sum;
}

void ContainerManager::OnDestroy(ResourceContainer& c) {
  Slot& s = slots_[c.slot_];
  RC_DCHECK(s.ptr == &c);
  s.ptr = nullptr;
  ++s.generation;
  --live_;
  // Churn hygiene: every slot is live or free — the registry cannot leak
  // entries under create/destroy churn. (This slot is freelisted below,
  // after dispatch, so reentrant creates cannot reuse it mid-notification.)
  RC_DCHECK_EQ(live_ + free_slots_.size() + 1, slots_.size());
  ++dispatch_depth_;
  const std::size_t n = listeners_.size();
  for (std::size_t i = 0; i < n; ++i) {
    if (LifecycleListener* listener = listeners_[i]) {
      listener->OnContainerDestroyed(c);
    }
  }
  if (--dispatch_depth_ == 0 && listeners_dirty_) {
    listeners_.erase(std::remove(listeners_.begin(), listeners_.end(), nullptr),
                     listeners_.end());
    listeners_dirty_ = false;
  }
  free_slots_.push_back(c.slot_);
}

Expected<void> ContainerManager::CheckParentEligible(
    const ResourceContainer& parent, const Attributes& child_attrs,
    const ResourceContainer* exclude) const {
  // Time-share containers cannot have children (prototype rule, Section 5.1).
  if (parent.attributes().sched.cls != SchedClass::kFixedShare) {
    return MakeUnexpected(Errc::kHasChildren);
  }
  // Fixed-share budgets are per resource: a child's CPU, disk, link, and
  // memory guarantees each draw from an independent 100% at the parent —
  // this is what rejects sibling memory over-guarantee.
  for (const ResourceKind kind :
       {ResourceKind::kCpu, ResourceKind::kDisk, ResourceKind::kLink,
        ResourceKind::kMemory}) {
    const SchedParams& sched = SchedFor(child_attrs, kind);
    if (sched.cls == SchedClass::kFixedShare) {
      const double others = SiblingFixedShareSum(parent, exclude, kind);
      if (others + sched.fixed_share > 1.0 + 1e-9) {
        return MakeUnexpected(Errc::kLimitExceeded);
      }
    }
  }
  return {};
}

}  // namespace rc
