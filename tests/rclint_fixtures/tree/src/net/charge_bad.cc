// Charging fixture: direct mutation of accounting state outside a choke
// point (src/net/ is not one). Both the field-level write and the
// whole-record overwrite must fire.
struct Usage {
  long cpu_user_usec = 0;
  long bytes_sent = 0;
};

struct Container {
  Usage usage;
};

void ChargeBad(Container* c, long usec, long bytes) {
  c->usage.cpu_user_usec += usec;  // field mutation outside a choke point
  c->usage.bytes_sent = bytes;     // plain assignment counts too
}
