#include "src/rc/container.h"

#include <algorithm>
#include <utility>

#include "src/common/check.h"
#include "src/rc/manager.h"

namespace rc {

using rccommon::Errc;
using rccommon::Expected;
using rccommon::MakeUnexpected;

const std::string* ManagerShared::Intern(std::string name) {
  auto it = name_index.find(name);
  if (it != name_index.end()) {
    return it->second;
  }
  names.push_back(std::move(name));
  const std::string* interned = &names.back();
  name_index.emplace(std::string_view(*interned), interned);
  return interned;
}

ResourceContainer::ResourceContainer(CreateKey, ContainerManager* manager,
                                     std::shared_ptr<ManagerShared> shared,
                                     ContainerId id, const std::string* name,
                                     const Attributes& attrs)
    : manager_(manager),
      shared_(std::move(shared)),
      id_(id),
      name_(name),
      attrs_(attrs) {}

ResourceContainer::~ResourceContainer() {
  // Orphan children to the top level ("no parent"): they become children of
  // the root container. Their subtree memory migrates with them. When the
  // manager itself is being torn down (the dying container IS the root, or
  // the root is already gone), children are simply detached.
  const bool manager_alive = shared_->alive;
  ResourceContainer* root = manager_alive ? manager_->root().get() : nullptr;
  if (root == this) {
    root = nullptr;
  }
  while (!children_.empty()) {
    ResourceContainer* child = children_.back();
    children_.pop_back();
    const std::int64_t m = child->subtree_memory_bytes_;
    // Remove the child's memory from this dying chain (self upward), then
    // account it at the root chain (just the root, its new parent).
    PropagateMemory(-m);
    child->parent_ = root;
    if (root != nullptr) {
      root->children_.push_back(child);
      root->AddChildShares(child->attrs_);
      root->PropagateMemory(m);
      manager_->NotifyReparent(*child, /*old_parent=*/this, /*new_parent=*/root);
    }
  }

  if (parent_ != nullptr) {
    // Retire accumulated usage into the parent so machine-wide accounting is
    // conserved across container destruction.
    ResourceUsage retired = usage_;
    retired += retired_;
    parent_->retired_ += retired;

    parent_->RemoveChild(this);
    parent_->PropagateMemory(-subtree_memory_bytes_);
  }

  if (manager_alive) {
    manager_->OnDestroy(*this);
  }
}

int ResourceContainer::depth() const {
  int d = 0;
  for (const ResourceContainer* p = parent_; p != nullptr; p = p->parent_) {
    ++d;
  }
  return d;
}

bool ResourceContainer::IsSelfOrDescendant(const ResourceContainer* candidate) const {
  for (const ResourceContainer* p = candidate; p != nullptr; p = p->parent_) {
    if (p == this) {
      return true;
    }
  }
  return false;
}

Expected<void> ResourceContainer::SetAttributes(const Attributes& attrs) {
  if (auto v = attrs.Validate(); !v.ok()) {
    return v;
  }
  // A container with children must stay fixed-share (time-share containers
  // cannot have children).
  if (!children_.empty() && attrs.sched.cls != SchedClass::kFixedShare) {
    return MakeUnexpected(Errc::kHasChildren);
  }
  // Re-check the sibling share budget (per resource) when this container
  // holds (or takes) a fixed-share guarantee.
  if (parent_ != nullptr) {
    for (const ResourceKind kind :
         {ResourceKind::kCpu, ResourceKind::kDisk, ResourceKind::kLink,
          ResourceKind::kMemory}) {
      const SchedParams& sched = SchedFor(attrs, kind);
      if (sched.cls != SchedClass::kFixedShare) {
        continue;
      }
      const double others =
          ContainerManager::SiblingFixedShareSum(*parent_, this, kind);
      if (others + sched.fixed_share > 1.0 + 1e-9) {
        return MakeUnexpected(Errc::kLimitExceeded);
      }
    }
    parent_->RemoveChildShares(attrs_);
    attrs_ = attrs;
    parent_->AddChildShares(attrs_);
    return {};
  }
  attrs_ = attrs;
  return {};
}

ResourceUsage ResourceContainer::SubtreeUsage() const {
  ResourceUsage total = usage_;
  total += retired_;
  for (const ResourceContainer* child : children_) {
    total += child->SubtreeUsage();
  }
  return total;
}

RC_HOT_PATH void ResourceContainer::ChargeCpu(sim::Duration usec, CpuKind kind) {
  RC_DCHECK(usec >= 0);
  usage_.AddCpu(usec, kind);
}

Expected<void> ResourceContainer::ChargeMemory(std::int64_t bytes,
                                               MemorySource source) {
  RC_CHECK_GE(bytes, 0);
  if (shared_->alive) {
    if (MemoryArbiter* arbiter = manager_->memory_arbiter(); arbiter != nullptr) {
      return arbiter->ChargeMemory(*this, bytes, source);
    }
  }
  // Legacy path (no broker installed): plain hierarchical limit enforcement.
  if (auto v = CheckMemoryLimits(bytes, /*capacity_bytes=*/0); !v.ok()) {
    CountMemoryRefusal();
    return v;
  }
  CommitMemoryCharge(bytes);
  return {};
}

void ResourceContainer::ReleaseMemory(std::int64_t bytes, MemorySource source) {
  RC_CHECK_GE(bytes, 0);
  if (shared_->alive) {
    if (MemoryArbiter* arbiter = manager_->memory_arbiter(); arbiter != nullptr) {
      arbiter->ReleaseMemory(*this, bytes, source);
      return;
    }
  }
  CommitMemoryRelease(bytes);
}

Expected<void> ResourceContainer::CheckMemoryLimits(
    std::int64_t bytes, std::int64_t capacity_bytes) const {
  for (const ResourceContainer* p = this; p != nullptr; p = p->parent_) {
    const std::int64_t would = p->subtree_memory_bytes_ + bytes;
    const std::int64_t abs_limit = p->attrs_.memory_limit_bytes;
    if (abs_limit > 0 && would > abs_limit) {
      return MakeUnexpected(Errc::kLimitExceeded);
    }
    // `memory.limit` is a fraction of the machine; it only binds when the
    // machine size is known (broker installed with capacity > 0).
    const double frac_limit = p->attrs_.memory.limit;
    if (capacity_bytes > 0 && frac_limit > 0.0 &&
        static_cast<double>(would) >
            frac_limit * static_cast<double>(capacity_bytes)) {
      return MakeUnexpected(Errc::kLimitExceeded);
    }
  }
  return {};
}

void ResourceContainer::CommitMemoryCharge(std::int64_t bytes) {
  usage_.memory_bytes += bytes;
  usage_.memory_peak_bytes = std::max(usage_.memory_peak_bytes, usage_.memory_bytes);
  PropagateMemory(bytes);
}

void ResourceContainer::CommitMemoryRelease(std::int64_t bytes) {
  RC_CHECK_GE(bytes, 0);
  RC_CHECK_GE(usage_.memory_bytes, bytes);
  usage_.memory_bytes -= bytes;
  PropagateMemory(-bytes);
}

void ResourceContainer::ForEachChild(
    const std::function<void(ResourceContainer&)>& fn) const {
  for (ResourceContainer* child : children_) {
    fn(*child);
  }
}

void ResourceContainer::AdoptChild(ResourceContainer* child) {
  children_.push_back(child);
  child->parent_ = this;
  AddChildShares(child->attrs_);
}

void ResourceContainer::RemoveChild(ResourceContainer* child) {
  auto it = std::find(children_.begin(), children_.end(), child);
  RC_CHECK(it != children_.end());
  children_.erase(it);
  RemoveChildShares(child->attrs_);
}

void ResourceContainer::AddChildShares(const Attributes& child_attrs) {
  for (int k = 0; k < kResourceKindCount; ++k) {
    const SchedParams& sched = SchedFor(child_attrs, static_cast<ResourceKind>(k));
    if (sched.cls == SchedClass::kFixedShare) {
      child_fixed_sum_[k] += sched.fixed_share;
      ++child_fixed_count_[k];
    }
  }
}

void ResourceContainer::RemoveChildShares(const Attributes& child_attrs) {
  for (int k = 0; k < kResourceKindCount; ++k) {
    const SchedParams& sched = SchedFor(child_attrs, static_cast<ResourceKind>(k));
    if (sched.cls == SchedClass::kFixedShare) {
      RC_DCHECK(child_fixed_count_[k] > 0);
      --child_fixed_count_[k];
      // Reset to exactly zero when the last fixed child leaves: unbounded
      // add/remove churn must not accumulate float drift.
      child_fixed_sum_[k] =
          child_fixed_count_[k] == 0 ? 0.0 : child_fixed_sum_[k] - sched.fixed_share;
    }
  }
}

void ResourceContainer::PropagateMemory(std::int64_t delta) {
  for (ResourceContainer* p = this; p != nullptr; p = p->parent_) {
    p->subtree_memory_bytes_ += delta;
    RC_DCHECK(p->subtree_memory_bytes_ >= 0);
  }
}

}  // namespace rc
