file(REMOVE_RECURSE
  "CMakeFiles/bench_virtual_servers.dir/bench_virtual_servers.cpp.o"
  "CMakeFiles/bench_virtual_servers.dir/bench_virtual_servers.cpp.o.d"
  "bench_virtual_servers"
  "bench_virtual_servers.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_virtual_servers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
