// Minimal expected<T, E> substitute (std::expected is C++23; this project
// targets C++20). Only the operations the codebase needs are provided.
#ifndef SRC_COMMON_EXPECTED_H_
#define SRC_COMMON_EXPECTED_H_

#include <string>
#include <utility>
#include <variant>

#include "src/common/check.h"

namespace rccommon {

// Error codes for fallible operations across the library. Kept in one enum so
// call sites can report errors uniformly (cf. errno).
enum class Errc {
  kOk = 0,
  kInvalidArgument,    // bad parameter (e.g. share > 1.0, bad fd)
  kNotFound,           // no such container / descriptor / connection
  kPermissionDenied,   // operation not allowed for this principal
  kLimitExceeded,      // resource limit (memory, child count) exceeded
  kWrongState,         // operation invalid in current object state
  kWouldBlock,         // non-blocking operation has no data
  kQueueFull,          // bounded queue overflow (SYN queue, accept queue)
  kNotLeaf,            // thread bindings are restricted to leaf containers
  kHasChildren,        // time-share containers cannot have children
};

const char* ErrcName(Errc e);

// Tag type for constructing an error-holding Expected.
struct Unexpected {
  Errc error;
};

inline Unexpected MakeUnexpected(Errc e) { return Unexpected{e}; }

// A value-or-error sum type. `Expected<void>` is specialized below.
template <typename T>
class [[nodiscard]] Expected {
 public:
  Expected(T value) : data_(std::move(value)) {}              // NOLINT(runtime/explicit)
  Expected(Unexpected unexpected) : data_(unexpected.error) {  // NOLINT(runtime/explicit)
    RC_DCHECK(unexpected.error != Errc::kOk);
  }

  bool ok() const { return std::holds_alternative<T>(data_); }
  explicit operator bool() const { return ok(); }

  Errc error() const { return ok() ? Errc::kOk : std::get<Errc>(data_); }

  T& value() & {
    RC_CHECK(ok());
    return std::get<T>(data_);
  }
  const T& value() const& {
    RC_CHECK(ok());
    return std::get<T>(data_);
  }
  T&& value() && {
    RC_CHECK(ok());
    return std::get<T>(std::move(data_));
  }

  T& operator*() & { return value(); }
  const T& operator*() const& { return value(); }
  T* operator->() { return &value(); }
  const T* operator->() const { return &value(); }

  T value_or(T fallback) const {
    return ok() ? std::get<T>(data_) : std::move(fallback);
  }

 private:
  std::variant<T, Errc> data_;
};

template <>
class [[nodiscard]] Expected<void> {
 public:
  Expected() : error_(Errc::kOk) {}
  Expected(Unexpected unexpected) : error_(unexpected.error) {  // NOLINT(runtime/explicit)
    RC_DCHECK(unexpected.error != Errc::kOk);
  }

  bool ok() const { return error_ == Errc::kOk; }
  explicit operator bool() const { return ok(); }
  Errc error() const { return error_; }

 private:
  Errc error_;
};

}  // namespace rccommon

#endif  // SRC_COMMON_EXPECTED_H_
