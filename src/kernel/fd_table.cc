#include "src/kernel/fd_table.h"

#include <utility>

namespace kernel {

using rccommon::Errc;
using rccommon::Expected;
using rccommon::MakeUnexpected;

int FdTable::Install(FdEntry entry) {
  for (std::size_t i = 0; i < entries_.size(); ++i) {
    if (std::holds_alternative<std::monostate>(entries_[i])) {
      entries_[i] = std::move(entry);
      return static_cast<int>(i);
    }
  }
  entries_.push_back(std::move(entry));
  return static_cast<int>(entries_.size() - 1);
}

Expected<FdEntry> FdTable::Remove(int fd) {
  if (!IsValid(fd)) {
    return MakeUnexpected(Errc::kNotFound);
  }
  FdEntry out = std::move(entries_[static_cast<std::size_t>(fd)]);
  entries_[static_cast<std::size_t>(fd)] = std::monostate{};
  return out;
}

int FdTable::open_count() const {
  int n = 0;
  for (const auto& e : entries_) {
    if (!std::holds_alternative<std::monostate>(e)) {
      ++n;
    }
  }
  return n;
}

}  // namespace kernel
