// Unit tests for the simulated TCP/IP stack: demultiplexing, connection
// lifecycle, SYN-queue behavior, the three processing modes, and accounting.
#include <optional>
#include <vector>

#include <gtest/gtest.h>

#include "src/net/addr.h"
#include "src/net/stack.h"
#include "src/rc/manager.h"

namespace net {
namespace {

using rccommon::Errc;

// Captures every callback the stack makes.
class FakeEnv : public StackEnv {
 public:
  void EmitToWire(Packet p) override { wire.push_back(p); }
  void WakeAcceptors(ListenSocket& ls) override { accept_wakes.push_back(&ls); }
  void WakeConnection(Connection& conn) override { conn_wakes.push_back(&conn); }
  void NotifyPendingNetWork(std::uint64_t owner) override {
    pending_notifies.push_back(owner);
  }
  void OnSynDrop(ListenSocket& ls, Addr source) override {
    syn_drops.push_back({&ls, source});
  }

  std::vector<Packet> wire;
  std::vector<ListenSocket*> accept_wakes;
  std::vector<Connection*> conn_wakes;
  std::vector<std::uint64_t> pending_notifies;
  std::vector<std::pair<ListenSocket*, Addr>> syn_drops;
};

Packet MakeSyn(std::uint64_t flow, Addr src = MakeAddr(10, 1, 0, 1),
               std::uint16_t port = 80) {
  Packet p;
  p.type = PacketType::kSyn;
  p.src = Endpoint{src, 12345};
  p.dst = Endpoint{Addr{0}, port};
  p.flow_id = flow;
  return p;
}

Packet MakeAck(std::uint64_t flow, Addr src = MakeAddr(10, 1, 0, 1)) {
  Packet p = MakeSyn(flow, src);
  p.type = PacketType::kAck;
  return p;
}

Packet MakeRequest(std::uint64_t flow, Addr src = MakeAddr(10, 1, 0, 1)) {
  Packet p = MakeSyn(flow, src);
  p.type = PacketType::kData;
  p.request.request_id = flow * 100;
  p.request.response_bytes = 1024;
  return p;
}

class StackTest : public ::testing::Test {
 protected:
  // Runs softint-style: applies returned work immediately.
  void Deliver(Stack& stack, const Packet& p) {
    auto work = stack.HandleArrival(p);
    if (work.has_value()) {
      work->apply();
    }
  }

  // Drains all deferred work for `owner` (LRP/RC modes).
  int DrainPending(Stack& stack, std::uint64_t owner) {
    int n = 0;
    while (auto work = stack.NextPendingWork(owner)) {
      work->apply();
      ++n;
    }
    return n;
  }

  rc::ContainerManager manager_;
  FakeEnv env_;
  StackCosts costs_;
};

TEST_F(StackTest, ListenRejectsDuplicateBinding) {
  Stack stack(&env_, costs_, NetMode::kSoftint);
  auto c = manager_.Create(nullptr, "c").value();
  ASSERT_TRUE(stack.Listen(80, kMatchAll, c, 1).ok());
  auto dup = stack.Listen(80, kMatchAll, c, 1);
  EXPECT_FALSE(dup.ok());
  // Same port, different filter: fine.
  EXPECT_TRUE(stack.Listen(80, CidrFilter{MakeAddr(10, 0, 0, 0), 8}, c, 1).ok());
  // Different port: fine.
  EXPECT_TRUE(stack.Listen(81, kMatchAll, c, 1).ok());
  EXPECT_EQ(stack.listen_count(), 3u);
}

TEST_F(StackTest, ListenValidatesArguments) {
  Stack stack(&env_, costs_, NetMode::kSoftint);
  EXPECT_FALSE(stack.Listen(80, kMatchAll, nullptr, 1).ok());
  auto c = manager_.Create(nullptr, "c").value();
  EXPECT_FALSE(stack.Listen(80, kMatchAll, c, 1, /*syn_backlog=*/0).ok());
}

TEST_F(StackTest, HandshakeEstablishesConnection) {
  Stack stack(&env_, costs_, NetMode::kSoftint);
  auto c = manager_.Create(nullptr, "c").value();
  auto ls = stack.Listen(80, kMatchAll, c, 1).value();

  Deliver(stack, MakeSyn(7));
  ASSERT_EQ(env_.wire.size(), 1u);
  EXPECT_EQ(env_.wire[0].type, PacketType::kSynAck);
  EXPECT_EQ(stack.pcb_count(), 1u);
  EXPECT_TRUE(ls->accept_queue().empty());

  Deliver(stack, MakeAck(7));
  EXPECT_EQ(ls->accept_queue().size(), 1u);
  EXPECT_EQ(env_.accept_wakes.size(), 1u);

  ConnRef conn = stack.Accept(*ls);
  ASSERT_NE(conn, nullptr);
  EXPECT_EQ(conn->state(), ConnState::kEstablished);
  EXPECT_EQ(conn->flow_id(), 7u);
}

TEST_F(StackTest, DuplicateSynIsIgnored) {
  Stack stack(&env_, costs_, NetMode::kSoftint);
  auto c = manager_.Create(nullptr, "c").value();
  auto ls = stack.Listen(80, kMatchAll, c, 1).value();
  Deliver(stack, MakeSyn(7));
  Deliver(stack, MakeSyn(7));
  EXPECT_EQ(stack.pcb_count(), 1u);
  EXPECT_EQ(ls->syn_queue().size(), 1u);
}

TEST_F(StackTest, SynWithNoListenerGetsRst) {
  Stack stack(&env_, costs_, NetMode::kSoftint);
  Deliver(stack, MakeSyn(7, MakeAddr(10, 1, 0, 1), /*port=*/9999));
  ASSERT_EQ(env_.wire.size(), 1u);
  EXPECT_EQ(env_.wire[0].type, PacketType::kRst);
  EXPECT_EQ(stack.stats().rsts_out, 1u);
}

TEST_F(StackTest, MostSpecificFilterWins) {
  Stack stack(&env_, costs_, NetMode::kSoftint);
  auto wide = manager_.Create(nullptr, "wide").value();
  auto narrow = manager_.Create(nullptr, "narrow").value();
  auto ls_wide = stack.Listen(80, kMatchAll, wide, 1).value();
  auto ls_narrow =
      stack.Listen(80, CidrFilter{MakeAddr(10, 2, 0, 0), 16}, narrow, 1).value();

  Deliver(stack, MakeSyn(1, MakeAddr(10, 2, 3, 4)));  // matches /16
  Deliver(stack, MakeSyn(2, MakeAddr(10, 9, 0, 1)));  // only wildcard
  EXPECT_EQ(ls_narrow->syns_received, 1u);
  EXPECT_EQ(ls_wide->syns_received, 1u);

  Deliver(stack, MakeAck(1, MakeAddr(10, 2, 3, 4)));
  ConnRef conn = stack.Accept(*ls_narrow);
  ASSERT_NE(conn, nullptr);
  EXPECT_EQ(conn->container(), narrow);
}

TEST_F(StackTest, RequestDeliveredToEstablishedConnection) {
  Stack stack(&env_, costs_, NetMode::kSoftint);
  auto c = manager_.Create(nullptr, "c").value();
  auto ls = stack.Listen(80, kMatchAll, c, 1).value();
  Deliver(stack, MakeSyn(7));
  Deliver(stack, MakeAck(7));
  ConnRef conn = stack.Accept(*ls);
  ASSERT_NE(conn, nullptr);

  Deliver(stack, MakeRequest(7));
  EXPECT_EQ(env_.conn_wakes.size(), 1u);
  auto req = stack.Recv(*conn);
  ASSERT_TRUE(req.has_value());
  EXPECT_EQ(req->request_id, 700u);
  EXPECT_FALSE(stack.Recv(*conn).has_value());
  EXPECT_EQ(conn->container()->usage().packets_received, 1u);
}

TEST_F(StackTest, DataBeforeEstablishIsDropped) {
  Stack stack(&env_, costs_, NetMode::kSoftint);
  auto c = manager_.Create(nullptr, "c").value();
  auto ls = stack.Listen(80, kMatchAll, c, 1).value();
  Deliver(stack, MakeSyn(7));
  Deliver(stack, MakeRequest(7));  // still half-open
  EXPECT_TRUE(env_.conn_wakes.empty());
  (void)ls;
}

TEST_F(StackTest, SendSegmentsByMtu) {
  Stack stack(&env_, costs_, NetMode::kSoftint);
  auto c = manager_.Create(nullptr, "c").value();
  auto ls = stack.Listen(80, kMatchAll, c, 1).value();
  Deliver(stack, MakeSyn(7));
  Deliver(stack, MakeAck(7));
  ConnRef conn = stack.Accept(*ls);
  env_.wire.clear();

  stack.Send(*conn, 4000, /*response_to=*/42, /*close_after=*/false);
  // ceil(4000/1460) = 3 segments.
  ASSERT_EQ(env_.wire.size(), 3u);
  EXPECT_FALSE(env_.wire[0].last_segment);
  EXPECT_TRUE(env_.wire[2].last_segment);
  EXPECT_EQ(env_.wire[2].response_to, 42u);
  EXPECT_EQ(conn->container()->usage().bytes_sent, 4000u);
  EXPECT_EQ(stack.SendCost(4000), 3 * costs_.output_per_packet);
}

TEST_F(StackTest, SendCloseAfterEmitsFinAndTearsDown) {
  Stack stack(&env_, costs_, NetMode::kSoftint);
  auto c = manager_.Create(nullptr, "c").value();
  auto ls = stack.Listen(80, kMatchAll, c, 1).value();
  Deliver(stack, MakeSyn(7));
  Deliver(stack, MakeAck(7));
  ConnRef conn = stack.Accept(*ls);
  env_.wire.clear();

  stack.Send(*conn, 1024, 1, /*close_after=*/true);
  ASSERT_EQ(env_.wire.size(), 2u);
  EXPECT_EQ(env_.wire[0].type, PacketType::kData);
  EXPECT_EQ(env_.wire[1].type, PacketType::kFin);
  EXPECT_TRUE(conn->torn_down());
  EXPECT_EQ(stack.pcb_count(), 0u);
}

TEST_F(StackTest, ConnectionMemoryChargedAndReleased) {
  Stack stack(&env_, costs_, NetMode::kSoftint);
  auto c = manager_.Create(nullptr, "c").value();
  auto ls = stack.Listen(80, kMatchAll, c, 1).value();
  Deliver(stack, MakeSyn(7));
  EXPECT_EQ(c->usage().memory_bytes, costs_.connection_memory_bytes);
  Deliver(stack, MakeAck(7));
  ConnRef conn = stack.Accept(*ls);
  stack.Close(*conn);
  EXPECT_EQ(c->usage().memory_bytes, 0);
}

TEST_F(StackTest, MemoryLimitRejectsConnections) {
  Stack stack(&env_, costs_, NetMode::kSoftint);
  rc::Attributes attrs;
  attrs.memory_limit_bytes = costs_.connection_memory_bytes + 100;
  auto c = manager_.Create(nullptr, "c", attrs).value();
  auto ls = stack.Listen(80, kMatchAll, c, 1).value();
  (void)ls;
  Deliver(stack, MakeSyn(1));
  env_.wire.clear();
  Deliver(stack, MakeSyn(2));  // second PCB exceeds the memory limit
  EXPECT_EQ(stack.stats().mem_reject_drops, 1u);
  ASSERT_EQ(env_.wire.size(), 1u);
  EXPECT_EQ(env_.wire[0].type, PacketType::kRst);
}

TEST_F(StackTest, RebindConnectionMovesMemory) {
  Stack stack(&env_, costs_, NetMode::kSoftint);
  auto a = manager_.Create(nullptr, "a").value();
  auto b = manager_.Create(nullptr, "b").value();
  auto ls = stack.Listen(80, kMatchAll, a, 1).value();
  Deliver(stack, MakeSyn(7));
  Deliver(stack, MakeAck(7));
  ConnRef conn = stack.Accept(*ls);
  ASSERT_TRUE(stack.RebindConnection(*conn, b).ok());
  EXPECT_EQ(a->usage().memory_bytes, 0);
  EXPECT_EQ(b->usage().memory_bytes, costs_.connection_memory_bytes);
  EXPECT_EQ(conn->container(), b);
}

TEST_F(StackTest, SynQueueEvictsOldestAndNotifies) {
  Stack stack(&env_, costs_, NetMode::kSoftint);
  auto c = manager_.Create(nullptr, "c").value();
  auto ls = stack.Listen(80, kMatchAll, c, 1, /*syn_backlog=*/2).value();
  Deliver(stack, MakeSyn(1, MakeAddr(10, 5, 0, 1)));
  Deliver(stack, MakeSyn(2, MakeAddr(10, 5, 0, 2)));
  Deliver(stack, MakeSyn(3, MakeAddr(10, 5, 0, 3)));  // evicts flow 1
  EXPECT_EQ(ls->syn_queue().size(), 2u);
  EXPECT_EQ(stack.stats().syn_drops, 1u);
  ASSERT_EQ(env_.syn_drops.size(), 1u);
  EXPECT_EQ(env_.syn_drops[0].second, MakeAddr(10, 5, 0, 1));
  // The evicted flow's ACK now gets a RST (client must retry).
  env_.wire.clear();
  Deliver(stack, MakeAck(1, MakeAddr(10, 5, 0, 1)));
  ASSERT_EQ(env_.wire.size(), 1u);
  EXPECT_EQ(env_.wire[0].type, PacketType::kRst);
}

TEST_F(StackTest, AcceptQueueOverflowResets) {
  Stack stack(&env_, costs_, NetMode::kSoftint);
  auto c = manager_.Create(nullptr, "c").value();
  auto ls = stack.Listen(80, kMatchAll, c, 1, 16, /*accept_backlog=*/1).value();
  Deliver(stack, MakeSyn(1));
  Deliver(stack, MakeSyn(2));
  Deliver(stack, MakeAck(1));
  env_.wire.clear();
  Deliver(stack, MakeAck(2));  // accept queue already holds flow 1
  EXPECT_EQ(ls->accept_drops, 1u);
  ASSERT_EQ(env_.wire.size(), 1u);
  EXPECT_EQ(env_.wire[0].type, PacketType::kRst);
  EXPECT_EQ(stack.pcb_count(), 1u);
}

TEST_F(StackTest, ClientRstTearsDownQueuedConnection) {
  Stack stack(&env_, costs_, NetMode::kSoftint);
  auto c = manager_.Create(nullptr, "c").value();
  auto ls = stack.Listen(80, kMatchAll, c, 1).value();
  Deliver(stack, MakeSyn(1));
  Deliver(stack, MakeAck(1));
  Packet rst = MakeSyn(1);
  rst.type = PacketType::kRst;
  Deliver(stack, rst);
  // Accept skips the reset connection.
  EXPECT_EQ(stack.Accept(*ls), nullptr);
  EXPECT_EQ(stack.pcb_count(), 0u);
}

TEST_F(StackTest, FinMarksPeerClosed) {
  Stack stack(&env_, costs_, NetMode::kSoftint);
  auto c = manager_.Create(nullptr, "c").value();
  auto ls = stack.Listen(80, kMatchAll, c, 1).value();
  Deliver(stack, MakeSyn(1));
  Deliver(stack, MakeAck(1));
  ConnRef conn = stack.Accept(*ls);
  Packet fin = MakeSyn(1);
  fin.type = PacketType::kFin;
  Deliver(stack, fin);
  EXPECT_TRUE(conn->peer_closed());
  EXPECT_FALSE(conn->torn_down());  // server still owns it
}

TEST_F(StackTest, SoftintReturnsInlineWork) {
  Stack stack(&env_, costs_, NetMode::kSoftint);
  auto c = manager_.Create(nullptr, "c").value();
  auto ls = stack.Listen(80, kMatchAll, c, 1).value();
  (void)ls;
  auto work = stack.HandleArrival(MakeSyn(1));
  ASSERT_TRUE(work.has_value());
  EXPECT_EQ(work->cost, costs_.syn_processing);
  EXPECT_EQ(work->charge_to, nullptr);  // charged to the unlucky principal
  EXPECT_FALSE(stack.HasPendingWork(1));
}

TEST_F(StackTest, LrpDefersToOwnerBacklog) {
  Stack stack(&env_, costs_, NetMode::kLrp);
  auto c = manager_.Create(nullptr, "c").value();
  auto ls = stack.Listen(80, kMatchAll, c, /*owner=*/42).value();
  (void)ls;
  auto work = stack.HandleArrival(MakeSyn(1));
  EXPECT_FALSE(work.has_value());
  EXPECT_TRUE(stack.HasPendingWork(42));
  ASSERT_EQ(env_.pending_notifies.size(), 1u);
  EXPECT_EQ(env_.pending_notifies[0], 42u);

  auto deferred = stack.NextPendingWork(42);
  ASSERT_TRUE(deferred.has_value());
  EXPECT_EQ(deferred->charge_to, c);  // charged to the receiving principal
  deferred->apply();
  EXPECT_EQ(stack.pcb_count(), 1u);
  EXPECT_FALSE(stack.HasPendingWork(42));
}

TEST_F(StackTest, UnmatchedPacketDiscardedEarlyInLrp) {
  Stack stack(&env_, costs_, NetMode::kLrp);
  auto work = stack.HandleArrival(MakeRequest(99));  // no such flow
  EXPECT_FALSE(work.has_value());
  EXPECT_FALSE(stack.HasPendingWork(0));
  EXPECT_TRUE(env_.wire.empty());  // no RST work generated at interrupt level
}

TEST_F(StackTest, RcServicesBacklogInPriorityOrder) {
  Stack stack(&env_, costs_, NetMode::kResourceContainer);
  rc::Attributes high;
  high.sched.priority = 40;
  rc::Attributes low;
  low.sched.priority = 4;
  auto hc = manager_.Create(nullptr, "high", high).value();
  auto lc = manager_.Create(nullptr, "low", low).value();
  auto ls_high =
      stack.Listen(80, CidrFilter{MakeAddr(10, 1, 0, 0), 16}, hc, /*owner=*/1).value();
  auto ls_low = stack.Listen(80, kMatchAll, lc, /*owner=*/1).value();
  (void)ls_high;
  (void)ls_low;

  // Low-priority SYN arrives first, then a high-priority one.
  (void)stack.HandleArrival(MakeSyn(1, MakeAddr(10, 9, 0, 1)));
  (void)stack.HandleArrival(MakeSyn(2, MakeAddr(10, 1, 0, 1)));

  EXPECT_EQ(stack.PeekPendingContainer(1), hc);
  auto first = stack.NextPendingWork(1);
  ASSERT_TRUE(first.has_value());
  EXPECT_EQ(first->charge_to, hc);  // high priority served first
  auto second = stack.NextPendingWork(1);
  ASSERT_TRUE(second.has_value());
  EXPECT_EQ(second->charge_to, lc);
}

TEST_F(StackTest, PerContainerBacklogBoundDropsAndNotifies) {
  Stack stack(&env_, costs_, NetMode::kResourceContainer);
  auto c = manager_.Create(nullptr, "c").value();
  auto ls = stack.Listen(80, kMatchAll, c, /*owner=*/1).value();
  (void)ls;
  // 256 is the per-container pending cap; the 257th SYN is dropped early.
  for (int i = 0; i < 257; ++i) {
    (void)stack.HandleArrival(MakeSyn(static_cast<std::uint64_t>(i) + 1));
  }
  EXPECT_EQ(stack.stats().backlog_drops, 1u);
  EXPECT_EQ(env_.syn_drops.size(), 1u);
  EXPECT_EQ(c->usage().packets_dropped, 1u);
}

TEST_F(StackTest, CloseListenTearsDownQueuedConnections) {
  Stack stack(&env_, costs_, NetMode::kSoftint);
  auto c = manager_.Create(nullptr, "c").value();
  auto ls = stack.Listen(80, kMatchAll, c, 1).value();
  Deliver(stack, MakeSyn(1));
  Deliver(stack, MakeSyn(2));
  Deliver(stack, MakeAck(1));
  EXPECT_EQ(stack.pcb_count(), 2u);
  stack.CloseListen(ls);
  EXPECT_EQ(stack.pcb_count(), 0u);
  EXPECT_EQ(stack.listen_count(), 0u);
  EXPECT_EQ(c->usage().memory_bytes, 0);
}

TEST_F(StackTest, DrainPendingProcessesWholeHandshake) {
  Stack stack(&env_, costs_, NetMode::kResourceContainer);
  auto c = manager_.Create(nullptr, "c").value();
  auto ls = stack.Listen(80, kMatchAll, c, /*owner=*/1).value();
  (void)stack.HandleArrival(MakeSyn(1));
  EXPECT_EQ(DrainPending(stack, 1), 1);
  (void)stack.HandleArrival(MakeAck(1));
  (void)stack.HandleArrival(MakeRequest(1));
  EXPECT_EQ(DrainPending(stack, 1), 2);
  ConnRef conn = stack.Accept(*ls);
  ASSERT_NE(conn, nullptr);
  EXPECT_TRUE(conn->has_data());
}

TEST(AddrTest, ToStringRoundTrip) {
  EXPECT_EQ(AddrToString(MakeAddr(10, 1, 2, 3)), "10.1.2.3");
  EXPECT_EQ(AddrToString(Addr{0}), "0.0.0.0");
  EXPECT_EQ(AddrToString(MakeAddr(255, 255, 255, 255)), "255.255.255.255");
}

TEST(AddrTest, CidrFilterBasics) {
  CidrFilter f{MakeAddr(192, 168, 1, 0), 24};
  EXPECT_TRUE(f.Matches(MakeAddr(192, 168, 1, 77)));
  EXPECT_FALSE(f.Matches(MakeAddr(192, 168, 2, 77)));
  EXPECT_EQ(f.ToString(), "192.168.1.0/24");
}

TEST(AddrTest, WildcardMatchesEverything) {
  EXPECT_TRUE(kMatchAll.Matches(Addr{0}));
  EXPECT_TRUE(kMatchAll.Matches(MakeAddr(255, 1, 2, 3)));
}

TEST(AddrTest, FullPrefixIsExactMatch) {
  CidrFilter f{MakeAddr(10, 0, 0, 1), 32};
  EXPECT_TRUE(f.Matches(MakeAddr(10, 0, 0, 1)));
  EXPECT_FALSE(f.Matches(MakeAddr(10, 0, 0, 2)));
}

}  // namespace
}  // namespace net

namespace net {
namespace complement_filter_tests {

TEST(AddrTest, ComplementFilterMatchesOutsidePrefix) {
  CidrFilter except{MakeAddr(10, 5, 0, 0), 16, /*negate=*/true};
  EXPECT_FALSE(except.Matches(MakeAddr(10, 5, 1, 2)));
  EXPECT_TRUE(except.Matches(MakeAddr(10, 6, 1, 2)));
  EXPECT_EQ(except.ToString(), "!10.5.0.0/16");
  EXPECT_EQ(except.Specificity(), 0);
}

TEST(AddrTest, ComplementOfWildcardMatchesNothing) {
  CidrFilter none{Addr{0}, 0, true};
  EXPECT_FALSE(none.Matches(MakeAddr(1, 2, 3, 4)));
}

class ComplementDemuxTest : public ::testing::Test {
 protected:
  class NullEnv : public StackEnv {
   public:
    void EmitToWire(Packet) override {}
    void WakeAcceptors(ListenSocket&) override {}
    void WakeConnection(Connection&) override {}
    void NotifyPendingNetWork(std::uint64_t) override {}
    void OnSynDrop(ListenSocket&, Addr) override {}
  };
  rc::ContainerManager manager_;
  NullEnv env_;
};

TEST_F(ComplementDemuxTest, AcceptExceptFromCertainClients) {
  // Section 4.8's suggestion: accept connections EXCEPT from a set of
  // clients. The complement socket serves everyone outside the banned
  // prefix; the banned prefix falls through to a low-priority socket.
  Stack stack(&env_, StackCosts{}, NetMode::kSoftint);
  auto good = manager_.Create(nullptr, "good").value();
  auto banned = manager_.Create(nullptr, "banned").value();
  auto ls_good =
      stack.Listen(80, CidrFilter{MakeAddr(10, 66, 0, 0), 16, true}, good, 1).value();
  auto ls_banned = stack.Listen(80, kMatchAll, banned, 1).value();

  auto syn = [](std::uint64_t flow, Addr src) {
    Packet p;
    p.type = PacketType::kSyn;
    p.src = Endpoint{src, 999};
    p.dst = Endpoint{Addr{0}, 80};
    p.flow_id = flow;
    return p;
  };
  auto deliver = [&](const Packet& p) {
    auto work = stack.HandleArrival(p);
    if (work.has_value()) {
      work->apply();
    }
  };
  deliver(syn(1, MakeAddr(10, 1, 2, 3)));   // outsider -> complement socket
  deliver(syn(2, MakeAddr(10, 66, 4, 5)));  // banned prefix -> wildcard socket
  EXPECT_EQ(ls_good->syns_received, 1u);
  EXPECT_EQ(ls_banned->syns_received, 1u);
}

TEST_F(ComplementDemuxTest, PositiveFilterBeatsComplement) {
  Stack stack(&env_, StackCosts{}, NetMode::kSoftint);
  auto a = manager_.Create(nullptr, "a").value();
  auto b = manager_.Create(nullptr, "b").value();
  // A positive /8 and a complement of some other prefix both match 10.x;
  // the positive prefix is more specific.
  auto ls_pos = stack.Listen(80, CidrFilter{MakeAddr(10, 0, 0, 0), 8}, a, 1).value();
  auto ls_neg =
      stack.Listen(80, CidrFilter{MakeAddr(192, 168, 0, 0), 16, true}, b, 1).value();
  Packet p;
  p.type = PacketType::kSyn;
  p.src = Endpoint{MakeAddr(10, 1, 1, 1), 999};
  p.dst = Endpoint{Addr{0}, 80};
  p.flow_id = 9;
  auto work = stack.HandleArrival(p);
  work->apply();
  EXPECT_EQ(ls_pos->syns_received, 1u);
  EXPECT_EQ(ls_neg->syns_received, 0u);
}

}  // namespace complement_filter_tests
}  // namespace net
