file(REMOVE_RECURSE
  "librc_kernel.a"
)
