#include "src/rc/binding.h"

#include <algorithm>

#include "src/common/check.h"

namespace rc {

void SchedulerBinding::Touch(const ContainerRef& c, sim::SimTime now) {
  auto [it, inserted] = entries_.try_emplace(c->id(), Entry{c, now});
  if (!inserted) {
    it->second.last_used = now;
  }
}

void SchedulerBinding::Reset(const ContainerRef& current, sim::SimTime now) {
  entries_.clear();
  if (current) {
    entries_.emplace(current->id(), Entry{current, now});
  }
}

std::size_t SchedulerBinding::Prune(sim::SimTime now, sim::Duration idle_threshold) {
  const std::size_t before = entries_.size();
  for (auto it = entries_.begin(); it != entries_.end();) {
    if (now - it->second.last_used > idle_threshold) {
      it = entries_.erase(it);
    } else {
      ++it;
    }
  }
  return before - entries_.size();
}

bool SchedulerBinding::Contains(const ResourceContainer* c) const {
  return c != nullptr && entries_.contains(c->id());
}

void SchedulerBinding::ForEach(
    const std::function<void(const ContainerRef&)>& fn) const {
  for (const auto& [id, e] : entries_) {
    fn(e.container);
  }
}

int SchedulerBinding::CombinedPriority() const {
  int sum = 0;
  for (const auto& [id, e] : entries_) {
    sum += e.container->attributes().sched.priority;
  }
  return sum;
}

BindingPoint::~BindingPoint() {
  if (resource_binding_) {
    --resource_binding_->bound_thread_count_;
  }
}

void BindingPoint::Bind(const ContainerRef& c, sim::SimTime now) {
  RC_CHECK_NE(c, nullptr);
  if (resource_binding_) {
    --resource_binding_->bound_thread_count_;
  }
  resource_binding_ = c;
  ++c->bound_thread_count_;
  sched_binding_.Touch(c, now);
}

void BindingPoint::ResetSchedulerBinding(sim::SimTime now) {
  sched_binding_.Reset(resource_binding_, now);
}

}  // namespace rc
