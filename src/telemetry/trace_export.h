// Chrome trace-event export of the kernel Tracer ring: the output loads in
// chrome://tracing and in Perfetto (legacy JSON import), with one track per
// charged container so misaccounting vs correct attribution is visible on a
// timeline (Figures 11-14 territory).
//
// Mapping:
//   kSlice / kPreempt / kInterrupt -> complete events ("ph":"X") whose
//       duration is the consumed CPU (the event is recorded at completion,
//       so ts = at - arg);
//   kDispatch / kBlock / kWake / kExit -> instant events ("ph":"i").
// Every event lands on pid 1 ("rc kernel"), tid = charged container id
// (tid 0 collects unattributed machine events), with thread_name metadata
// naming each container track.
#ifndef SRC_TELEMETRY_TRACE_EXPORT_H_
#define SRC_TELEMETRY_TRACE_EXPORT_H_

#include <functional>
#include <ostream>
#include <string>

#include "src/kernel/trace.h"
#include "src/rc/container.h"

namespace telemetry {

// Maps a container id to the label of its track; may be null (tracks are
// then named "container <id>"). Ids the callback does not recognize should
// return an empty string to fall back to the default label.
using ContainerNameFn = std::function<std::string(rc::ContainerId)>;

// Writes the full trace document: {"traceEvents":[...],"displayTimeUnit":"ms"}.
void WriteChromeTrace(const kernel::Tracer& tracer, const ContainerNameFn& name_of,
                      std::ostream& os);

// Convenience: a ContainerNameFn backed by a live ContainerManager.
ContainerNameFn ContainerNamesFrom(const rc::ContainerManager& manager);

}  // namespace telemetry

#endif  // SRC_TELEMETRY_TRACE_EXPORT_H_
