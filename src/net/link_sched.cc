#include "src/net/link_sched.h"

#include <algorithm>
#include <cmath>
#include <utility>

#include "src/common/check.h"
#include "src/telemetry/registry.h"
#include "src/verify/audit.h"

namespace net {

sched::ShareTreeOptions LinkScheduler::TreeOptions(const LinkConfig& config) {
  sched::ShareTreeOptions options;
  options.resource = rc::ResourceKind::kLink;
  options.decay_per_tick = config.decay_per_tick;
  options.limit_window = config.limit_window;
  options.capacity = 1;  // one serial link
  // Background flows keep a weight-1 trickle rather than starving.
  options.starve_priority_zero = false;
  return options;
}

LinkScheduler::LinkScheduler(sim::Simulator* simulator,
                             rc::ContainerManager* manager,
                             const LinkConfig& config)
    : simr_(simulator),
      manager_(manager),
      config_(config),
      tree_(manager, TreeOptions(config)),
      created_at_(simulator->now()) {
  RC_CHECK_NE(manager, nullptr);
}

LinkScheduler::~LinkScheduler() {
  // Packets still queued at teardown are dropped; return them to the pool.
  for (void* item : tree_.DrainAll()) {
    pool_.Destroy(static_cast<QueuedPacket*>(item));
  }
  pool_.Destroy(inflight_);
}

sim::Duration LinkScheduler::TxTime(std::uint32_t bytes) const {
  RC_CHECK(enabled());
  // 1 Mbps == 1 bit per microsecond, so wire time is bits / mbps.
  const double usec = static_cast<double>(bytes) * 8.0 / config_.mbps;
  return std::max<sim::Duration>(1, static_cast<sim::Duration>(std::ceil(usec)));
}

RC_HOT_PATH void LinkScheduler::Transmit(Packet p, rc::ContainerRef charge_to) {
  if (!enabled()) {
    if (sink_) {
      sink_(p);
    }
    return;
  }
  rc::ResourceContainer* leaf =
      charge_to ? charge_to.get() : manager_->root().get();
  tree_.Push(leaf, pool_.Create(std::move(p), std::move(charge_to)));
  MaybeSend();
}

void LinkScheduler::MaybeSend() {
  if (busy_ || tree_.queued_total() == 0) {
    return;
  }
  const sim::SimTime now = simr_->now();
  void* item = tree_.Pop(now);
  if (item == nullptr) {
    // Everything queued is limit-throttled; retry when the earliest window
    // re-opens.
    if (!retry_armed_) {
      if (auto next = tree_.NextEligibleTime(now); next.has_value()) {
        retry_armed_ = true;
        simr_->At(*next, [this] {
          retry_armed_ = false;
          MaybeSend();
        });
      }
    }
    return;
  }
  inflight_ = static_cast<QueuedPacket*>(item);
  busy_ = true;

  const sim::Duration tx = TxTime(inflight_->packet.size_bytes);
  // Advance the share tree at dispatch so back-to-back picks under
  // contention interleave by share, not in bursts.
  rc::ResourceContainer* charged =
      inflight_->container ? inflight_->container.get() : manager_->root().get();
  tree_.OnCharge(*charged, tx, now);

  simr_->After(tx, [this, tx] { CompleteInflight(tx); });
}

RC_HOT_PATH void LinkScheduler::CompleteInflight(sim::Duration tx) {
  RC_CHECK(busy_);
  RC_CHECK(inflight_ != nullptr);
  QueuedPacket* qp = inflight_;
  inflight_ = nullptr;

  ++stats_.packets;
  stats_.busy_usec += tx;
  stats_.bytes_sent += qp->packet.size_bytes;
  const bool owned = qp->container != nullptr;
  if (owned) {
    if (auditor_ != nullptr) {
      auditor_->OnResourceCharge(rc::ResourceKind::kLink, *qp->container, tx);
    }
    qp->container->ChargeLink(tx, /*packets=*/1);
  }
  if (auditor_ != nullptr) {
    auditor_->OnDeviceWork(rc::ResourceKind::kLink, tx, owned);
  }
  busy_ = false;
  if (sink_) {
    sink_(qp->packet);
  }
  pool_.Destroy(qp);
  MaybeSend();
}

void LinkScheduler::RegisterMetrics(telemetry::Registry& registry) {
  registry.AddProbe("link.packets", "packets",
                    [this] { return static_cast<double>(stats_.packets); });
  registry.AddProbe("link.busy_usec", "usec",
                    [this] { return static_cast<double>(stats_.busy_usec); });
  registry.AddProbe("link.bytes_sent", "bytes",
                    [this] { return static_cast<double>(stats_.bytes_sent); });
  registry.AddProbe("link.queue_depth", "packets",
                    [this] { return static_cast<double>(queued()); });
}

}  // namespace net
