// Suppression fixture: malformed directives are themselves diagnostics — a
// suppression that silently failed to parse would hide real findings.

// rclint: allow(determinsm): typo in the rule name
int a = 0;

// rclint: allow(hotpath)
int b = 0;  // missing reason — suppressions must say why

// rclint: allow
int c = 0;  // unparsable directive
