# Empty dependencies file for large_transfers.
# This may be replaced when dependencies are built.
