#include "src/kernel/syscalls.h"

#include <algorithm>

#include "src/common/check.h"

namespace kernel {

using rccommon::Errc;
using rccommon::Expected;
using rccommon::MakeUnexpected;

Sys::BlockingAwaiter<bool> Sys::Sleep(sim::Duration usec) {
  Kernel* k = kernel_;
  Thread* t = thread_;
  auto start = [k, t, usec](std::optional<bool>* slot) -> bool {
    k->simulator().After(usec, [t, slot] {
      slot->emplace(true);
      t->Unblock();
    });
    return false;
  };
  return {thread_, kernel_->costs().syscall_base, rc::CpuKind::kKernel, std::move(start)};
}

Sys::BlockingAwaiter<bool> Sys::ReadDisk(std::uint64_t block_kb, std::uint32_t kb) {
  Kernel* k = kernel_;
  Thread* t = thread_;
  auto start = [k, t, block_kb, kb](std::optional<bool>* slot) -> bool {
    disk::IoRequest req;
    req.block_kb = block_kb;
    req.kb = kb;
    req.container = t->binding().resource_binding();
    req.done = [t, slot] {
      slot->emplace(true);
      t->Unblock();
    };
    k->disk().Submit(std::move(req));
    return false;
  };
  return {thread_, kernel_->costs().syscall_base, rc::CpuKind::kKernel, std::move(start)};
}

Sys::ActionAwaiter<Expected<int>> Sys::CreateContainer(std::string name,
                                                       const rc::Attributes& attrs,
                                                       int parent_fd) {
  Kernel* k = kernel_;
  Thread* t = thread_;
  auto action = [k, t, name = std::move(name), attrs, parent_fd]() -> Expected<int> {
    rc::ContainerRef parent;  // null => top level
    if (parent_fd >= 0) {
      parent = t->process()->fds().Get<rc::ContainerRef>(parent_fd);
      if (!parent) {
        return MakeUnexpected(Errc::kNotFound);
      }
    }
    // A fixed-share sibling changes the residual weight of every time-share
    // container under `parent`; flush charges accrued under the old split.
    k->FlushResourceCharges();
    auto created = k->containers().Create(parent, name, attrs);
    if (!created.ok()) {
      return MakeUnexpected(created.error());
    }
    return t->process()->fds().Install(*std::move(created));
  };
  return {thread_, kernel_->costs().container_create, rc::CpuKind::kKernel,
          std::move(action)};
}

Sys::ActionAwaiter<Expected<int>> Sys::CreateContainer(rc::ContainerTemplateRef tmpl) {
  Kernel* k = kernel_;
  Thread* t = thread_;
  auto action = [k, t, tmpl = std::move(tmpl)]() -> Expected<int> {
    if (!tmpl) {
      return MakeUnexpected(Errc::kInvalidArgument);
    }
    if (tmpl->needs_budget_check()) {
      // A fixed-share sibling changes the residual weight of every
      // time-share container under the parent; flush charges accrued under
      // the old split. Time-share templates skip this: they leave the
      // residual split untouched.
      k->FlushResourceCharges();
    }
    auto created = k->containers().CreateFromTemplate(*tmpl);
    if (!created.ok()) {
      return MakeUnexpected(created.error());
    }
    return t->process()->fds().Install(*std::move(created));
  };
  return {thread_, kernel_->costs().container_create, rc::CpuKind::kKernel,
          std::move(action)};
}

Sys::ActionAwaiter<Expected<void>> Sys::CloseFd(int fd) {
  Kernel* k = kernel_;
  Thread* t = thread_;
  // Cost is type-dependent: closing a connection includes protocol
  // teardown; releasing a container descriptor is a Table 1 primitive.
  sim::Duration cost = k->costs().close_syscall;
  if (t->process()->fds().Get<net::ConnRef>(fd)) {
    cost += k->costs().teardown;
  } else if (t->process()->fds().Get<rc::ContainerRef>(fd)) {
    cost = k->costs().container_destroy;
  }
  auto action = [k, t, fd]() -> Expected<void> {
    auto removed = t->process()->fds().Remove(fd);
    if (!removed.ok()) {
      return MakeUnexpected(removed.error());
    }
    if (auto* conn = std::get_if<net::ConnRef>(&*removed)) {
      k->stack().Close(**conn);
    } else if (auto* ls = std::get_if<net::ListenRef>(&*removed)) {
      k->stack().CloseListen(*ls);
      k->DrainAcceptWaiters(ls->get());
    }
    // Containers: dropping the descriptor reference suffices; destruction
    // happens when the last reference (descriptor or binding) goes away.
    return {};
  };
  return {thread_, cost, rc::CpuKind::kKernel, std::move(action)};
}

Sys::ActionAwaiter<Expected<void>> Sys::ReleaseFd(int fd) {
  Thread* t = thread_;
  auto action = [t, fd]() -> Expected<void> {
    auto removed = t->process()->fds().Remove(fd);
    if (!removed.ok()) {
      return MakeUnexpected(removed.error());
    }
    return {};
  };
  return {thread_, kernel_->costs().close_syscall, rc::CpuKind::kKernel,
          std::move(action)};
}

Sys::ActionAwaiter<Expected<int>> Sys::PassFd(Pid target, int fd) {
  Kernel* k = kernel_;
  Thread* t = thread_;
  auto action = [k, t, target, fd]() -> Expected<int> {
    const FdEntry* entry = t->process()->fds().GetEntry(fd);
    if (entry == nullptr) {
      return MakeUnexpected(Errc::kNotFound);
    }
    Process* other = k->FindProcess(target);
    if (other == nullptr) {
      return MakeUnexpected(Errc::kNotFound);
    }
    return other->fds().Install(*entry);
  };
  return {thread_, kernel_->costs().container_move, rc::CpuKind::kKernel,
          std::move(action)};
}

Sys::ActionAwaiter<Expected<void>> Sys::BindThread(int container_fd) {
  Kernel* k = kernel_;
  Thread* t = thread_;
  auto action = [k, t, container_fd]() -> Expected<void> {
    rc::ContainerRef c = t->process()->fds().Get<rc::ContainerRef>(container_fd);
    if (!c) {
      return MakeUnexpected(Errc::kNotFound);
    }
    if (!c->IsLeaf()) {
      return MakeUnexpected(Errc::kNotLeaf);  // prototype rule (Section 5.1)
    }
    t->binding().Bind(c, k->now());
    t->set_sched_hint(nullptr);  // follow the resource binding again
    return {};
  };
  return {thread_, kernel_->costs().container_bind_thread, rc::CpuKind::kKernel,
          std::move(action)};
}

int Sys::CpuCount() const { return kernel_->smp().cpus(); }

Sys::ActionAwaiter<Expected<void>> Sys::SetThreadAffinity(int cpu) {
  Kernel* k = kernel_;
  Thread* t = thread_;
  auto action = [k, t, cpu]() -> Expected<void> {
    return k->SetThreadAffinity(t, cpu);
  };
  return {thread_, kernel_->costs().syscall_base, rc::CpuKind::kKernel,
          std::move(action)};
}

Sys::ActionAwaiter<bool> Sys::ResetSchedulerBinding() {
  Kernel* k = kernel_;
  Thread* t = thread_;
  auto action = [k, t]() -> bool {
    t->binding().ResetSchedulerBinding(k->now());
    return true;
  };
  return {thread_, kernel_->costs().container_bind_thread, rc::CpuKind::kKernel,
          std::move(action)};
}

Sys::ActionAwaiter<Expected<rc::ResourceUsage>> Sys::GetUsage(int container_fd) {
  Thread* t = thread_;
  auto action = [t, container_fd]() -> Expected<rc::ResourceUsage> {
    rc::ContainerRef c = t->process()->fds().Get<rc::ContainerRef>(container_fd);
    if (!c) {
      return MakeUnexpected(Errc::kNotFound);
    }
    return c->usage();
  };
  return {thread_, kernel_->costs().container_get_usage, rc::CpuKind::kKernel,
          std::move(action)};
}

Sys::ActionAwaiter<Expected<rc::ResourceUsage>> Sys::GetSubtreeUsage(int container_fd) {
  Thread* t = thread_;
  auto action = [t, container_fd]() -> Expected<rc::ResourceUsage> {
    rc::ContainerRef c = t->process()->fds().Get<rc::ContainerRef>(container_fd);
    if (!c) {
      return MakeUnexpected(Errc::kNotFound);
    }
    return c->SubtreeUsage();
  };
  return {thread_, kernel_->costs().container_get_usage, rc::CpuKind::kKernel,
          std::move(action)};
}

Sys::ActionAwaiter<Expected<rc::Attributes>> Sys::GetAttributes(int container_fd) {
  Thread* t = thread_;
  auto action = [t, container_fd]() -> Expected<rc::Attributes> {
    rc::ContainerRef c = t->process()->fds().Get<rc::ContainerRef>(container_fd);
    if (!c) {
      return MakeUnexpected(Errc::kNotFound);
    }
    return c->attributes();
  };
  return {thread_, kernel_->costs().container_set_attr, rc::CpuKind::kKernel,
          std::move(action)};
}

Sys::ActionAwaiter<Expected<void>> Sys::SetAttributes(int container_fd,
                                                      const rc::Attributes& attrs) {
  Kernel* k = kernel_;
  Thread* t = thread_;
  auto action = [k, t, container_fd, attrs]() -> Expected<void> {
    rc::ContainerRef c = t->process()->fds().Get<rc::ContainerRef>(container_fd);
    if (!c) {
      return MakeUnexpected(Errc::kNotFound);
    }
    // Batched charges were accrued under the current weights/limits; apply
    // them before the change so they are not re-weighted retroactively.
    k->FlushResourceCharges();
    return c->SetAttributes(attrs);
  };
  return {thread_, kernel_->costs().container_set_attr, rc::CpuKind::kKernel,
          std::move(action)};
}

Sys::ActionAwaiter<Expected<void>> Sys::SetContainerParent(int container_fd,
                                                           int parent_fd) {
  Kernel* k = kernel_;
  Thread* t = thread_;
  auto action = [k, t, container_fd, parent_fd]() -> Expected<void> {
    rc::ContainerRef c = t->process()->fds().Get<rc::ContainerRef>(container_fd);
    if (!c) {
      return MakeUnexpected(Errc::kNotFound);
    }
    rc::ContainerRef parent;
    if (parent_fd >= 0) {
      parent = t->process()->fds().Get<rc::ContainerRef>(parent_fd);
      if (!parent) {
        return MakeUnexpected(Errc::kNotFound);
      }
    }
    return k->containers().SetParent(c, parent);
  };
  return {thread_, kernel_->costs().container_set_attr, rc::CpuKind::kKernel,
          std::move(action)};
}

Sys::ActionAwaiter<Expected<int>> Sys::PassContainer(Pid target, int container_fd) {
  Kernel* k = kernel_;
  Thread* t = thread_;
  auto action = [k, t, target, container_fd]() -> Expected<int> {
    rc::ContainerRef c = t->process()->fds().Get<rc::ContainerRef>(container_fd);
    if (!c) {
      return MakeUnexpected(Errc::kNotFound);
    }
    Process* other = k->FindProcess(target);
    if (other == nullptr) {
      return MakeUnexpected(Errc::kNotFound);
    }
    return other->fds().Install(c);  // sender retains its descriptor
  };
  return {thread_, kernel_->costs().container_move, rc::CpuKind::kKernel,
          std::move(action)};
}

Sys::ActionAwaiter<Expected<int>> Sys::GetContainerHandle(rc::ContainerId id) {
  Kernel* k = kernel_;
  Thread* t = thread_;
  auto action = [k, t, id]() -> Expected<int> {
    auto found = k->containers().Lookup(id);
    if (!found.ok()) {
      return MakeUnexpected(found.error());
    }
    return t->process()->fds().Install(*std::move(found));
  };
  return {thread_, kernel_->costs().container_get_handle, rc::CpuKind::kKernel,
          std::move(action)};
}

Sys::ActionAwaiter<Expected<int>> Sys::Listen(std::uint16_t port,
                                              const net::CidrFilter& filter,
                                              int container_fd, int syn_backlog,
                                              int accept_backlog) {
  Kernel* k = kernel_;
  Thread* t = thread_;
  auto action = [k, t, port, filter, container_fd, syn_backlog,
                 accept_backlog]() -> Expected<int> {
    Process* p = t->process();
    rc::ContainerRef c =
        container_fd >= 0 ? p->fds().Get<rc::ContainerRef>(container_fd) : p->default_container();
    if (!c) {
      return MakeUnexpected(Errc::kNotFound);
    }
    auto ls = k->stack().Listen(port, filter, c, p->pid(), syn_backlog, accept_backlog);
    if (!ls.ok()) {
      return MakeUnexpected(ls.error());
    }
    k->EnsureNetThread(p);
    return p->fds().Install(*std::move(ls));
  };
  return {thread_, kernel_->costs().listen_syscall, rc::CpuKind::kKernel,
          std::move(action)};
}

Sys::BlockingAwaiter<Expected<int>> Sys::Accept(int listen_fd) {
  Kernel* k = kernel_;
  Thread* t = thread_;
  auto start = [k, t, listen_fd](std::optional<Expected<int>>* slot) -> bool {
    net::ListenRef ls = t->process()->fds().Get<net::ListenRef>(listen_fd);
    if (!ls) {
      slot->emplace(MakeUnexpected(Errc::kNotFound));
      return true;
    }
    auto attempt = [k, t, ls, slot]() -> bool {
      if (ls->closed()) {
        slot->emplace(MakeUnexpected(Errc::kWrongState));
        return true;
      }
      net::ConnRef conn = k->stack().Accept(*ls);
      if (!conn) {
        return false;
      }
      slot->emplace(t->process()->fds().Install(conn));
      return true;
    };
    if (attempt()) {
      return true;
    }
    k->AddAcceptWaiter(ls.get(), [attempt, t]() -> bool {
      if (!attempt()) {
        return false;
      }
      t->Unblock();
      return true;
    });
    return false;
  };
  return {thread_, kernel_->costs().accept_syscall, rc::CpuKind::kKernel,
          std::move(start)};
}

Sys::ActionAwaiter<Expected<int>> Sys::TryAccept(int listen_fd) {
  Kernel* k = kernel_;
  Thread* t = thread_;
  auto action = [k, t, listen_fd]() -> Expected<int> {
    net::ListenRef ls = t->process()->fds().Get<net::ListenRef>(listen_fd);
    if (!ls) {
      return MakeUnexpected(Errc::kNotFound);
    }
    net::ConnRef conn = k->stack().Accept(*ls);
    if (!conn) {
      return MakeUnexpected(Errc::kWouldBlock);
    }
    return t->process()->fds().Install(conn);
  };
  return {thread_, kernel_->costs().accept_syscall, rc::CpuKind::kKernel,
          std::move(action)};
}

Sys::BlockingAwaiter<Expected<RecvResult>> Sys::Recv(int conn_fd) {
  Kernel* k = kernel_;
  Thread* t = thread_;
  auto start = [k, t, conn_fd](std::optional<Expected<RecvResult>>* slot) -> bool {
    net::ConnRef conn = t->process()->fds().Get<net::ConnRef>(conn_fd);
    if (!conn) {
      slot->emplace(MakeUnexpected(Errc::kNotFound));
      return true;
    }
    auto attempt = [k, conn, slot]() -> bool {
      if (auto req = k->stack().Recv(*conn)) {
        slot->emplace(RecvResult{false, *req});
        return true;
      }
      if (conn->peer_closed() || conn->torn_down()) {
        slot->emplace(RecvResult{true, {}});
        return true;
      }
      return false;
    };
    if (attempt()) {
      return true;
    }
    k->AddConnWaiter(conn.get(), [attempt, t]() -> bool {
      if (!attempt()) {
        return false;
      }
      t->Unblock();
      return true;
    });
    return false;
  };
  return {thread_, kernel_->costs().recv_syscall, rc::CpuKind::kKernel, std::move(start)};
}

Sys::ActionAwaiter<Expected<RecvResult>> Sys::TryRecv(int conn_fd) {
  Kernel* k = kernel_;
  Thread* t = thread_;
  auto action = [k, t, conn_fd]() -> Expected<RecvResult> {
    net::ConnRef conn = t->process()->fds().Get<net::ConnRef>(conn_fd);
    if (!conn) {
      return MakeUnexpected(Errc::kNotFound);
    }
    if (auto req = k->stack().Recv(*conn)) {
      return RecvResult{false, *req};
    }
    if (conn->peer_closed() || conn->torn_down()) {
      return RecvResult{true, {}};
    }
    return MakeUnexpected(Errc::kWouldBlock);
  };
  return {thread_, kernel_->costs().recv_syscall, rc::CpuKind::kKernel,
          std::move(action)};
}

Sys::ActionAwaiter<Expected<void>> Sys::Send(int conn_fd, std::uint32_t bytes,
                                             std::uint64_t response_to,
                                             bool close_after) {
  Kernel* k = kernel_;
  Thread* t = thread_;
  sim::Duration cost = k->costs().send_syscall + k->stack().SendCost(bytes);
  if (close_after) {
    cost += k->costs().teardown;
  }
  auto action = [k, t, conn_fd, bytes, response_to, close_after]() -> Expected<void> {
    net::ConnRef conn = t->process()->fds().Get<net::ConnRef>(conn_fd);
    if (!conn) {
      return MakeUnexpected(Errc::kNotFound);
    }
    if (conn->torn_down()) {
      return MakeUnexpected(Errc::kWrongState);
    }
    k->stack().Send(*conn, bytes, response_to, close_after);
    return {};
  };
  return {thread_, cost, rc::CpuKind::kKernel, std::move(action)};
}

Sys::ActionAwaiter<Expected<void>> Sys::BindSocket(int sock_fd, int container_fd) {
  Kernel* k = kernel_;
  Thread* t = thread_;
  auto action = [k, t, sock_fd, container_fd]() -> Expected<void> {
    rc::ContainerRef c = t->process()->fds().Get<rc::ContainerRef>(container_fd);
    if (!c) {
      return MakeUnexpected(Errc::kNotFound);
    }
    if (net::ConnRef conn = t->process()->fds().Get<net::ConnRef>(sock_fd)) {
      return k->stack().RebindConnection(*conn, c);
    }
    if (net::ListenRef ls = t->process()->fds().Get<net::ListenRef>(sock_fd)) {
      ls->set_container(c);
      return {};
    }
    return MakeUnexpected(Errc::kNotFound);
  };
  return {thread_, kernel_->costs().container_bind_thread, rc::CpuKind::kKernel,
          std::move(action)};
}

Sys::BlockingAwaiter<std::vector<int>> Sys::Select(std::vector<int> fds) {
  Kernel* k = kernel_;
  Thread* t = thread_;
  const sim::Duration cost =
      k->costs().select_base +
      k->costs().select_per_fd * static_cast<sim::Duration>(fds.size());
  auto start = [k, t, fds = std::move(fds)](std::optional<std::vector<int>>* slot) -> bool {
    Process* p = t->process();
    auto scan = [k, t, p, fds, slot]() -> bool {
      std::vector<int> ready;
      for (int fd : fds) {
        if (k->IsFdReady(*p, fd)) {
          ready.push_back(fd);
        }
      }
      if (ready.empty()) {
        return false;
      }
      slot->emplace(std::move(ready));
      return true;
    };
    if (scan()) {
      return true;
    }
    k->AddSelectWaiter(p, [scan, t]() -> bool {
      if (!scan()) {
        return false;
      }
      t->Unblock();
      return true;
    });
    return false;
  };
  return {thread_, cost, rc::CpuKind::kKernel, std::move(start)};
}

Sys::ActionAwaiter<Expected<void>> Sys::EventRegister(int fd) {
  Kernel* k = kernel_;
  Thread* t = thread_;
  auto action = [k, t, fd]() -> Expected<void> {
    Process* p = t->process();
    const FdEntry* entry = p->fds().GetEntry(fd);
    if (entry == nullptr) {
      return MakeUnexpected(Errc::kNotFound);
    }
    const bool rc_mode =
        k->config().net_mode == net::NetMode::kResourceContainer;
    if (auto* conn = std::get_if<net::ConnRef>(entry)) {
      p->events().Register(conn->get(), fd);
      // Level-trigger: data may have arrived before interest was declared.
      if ((*conn)->has_data() || (*conn)->peer_closed() || (*conn)->torn_down()) {
        const Event::Kind kind = (*conn)->has_data() ? Event::Kind::kDataReady
                                                     : Event::Kind::kConnClosed;
        int prio = 0;
        if (rc_mode && (*conn)->container()) {
          prio = (*conn)->container()->attributes().EffectiveNetworkPriority();
        }
        p->events().Push(Event{fd, kind, prio}, rc_mode);
      }
      return {};
    }
    if (auto* ls = std::get_if<net::ListenRef>(entry)) {
      p->events().Register(ls->get(), fd);
      if (!(*ls)->accept_queue().empty()) {
        int prio = 0;
        if (rc_mode && (*ls)->container()) {
          prio = (*ls)->container()->attributes().EffectiveNetworkPriority();
        }
        p->events().Push(Event{fd, Event::Kind::kAcceptReady, prio}, rc_mode);
      }
      return {};
    }
    return MakeUnexpected(Errc::kInvalidArgument);
  };
  return {thread_, kernel_->costs().event_api_base, rc::CpuKind::kKernel,
          std::move(action)};
}

Sys::ActionAwaiter<Expected<void>> Sys::EventUnregister(int fd) {
  Thread* t = thread_;
  auto action = [t, fd]() -> Expected<void> {
    Process* p = t->process();
    const FdEntry* entry = p->fds().GetEntry(fd);
    if (entry == nullptr) {
      return MakeUnexpected(Errc::kNotFound);
    }
    if (auto* conn = std::get_if<net::ConnRef>(entry)) {
      p->events().Unregister(conn->get());
      return {};
    }
    if (auto* ls = std::get_if<net::ListenRef>(entry)) {
      p->events().Unregister(ls->get());
      return {};
    }
    return MakeUnexpected(Errc::kInvalidArgument);
  };
  return {thread_, kernel_->costs().event_api_base, rc::CpuKind::kKernel,
          std::move(action)};
}

Sys::BlockingAwaiter<std::vector<Event>> Sys::WaitEvents(int max_events) {
  Kernel* k = kernel_;
  Thread* t = thread_;
  auto start = [k, t, max_events](std::optional<std::vector<Event>>* slot) -> bool {
    Process* p = t->process();
    auto drain = [k, t, p, max_events, slot]() -> bool {
      if (!p->events().HasPending()) {
        return false;
      }
      std::vector<Event> events = p->events().Drain(max_events);
      // Delivery cost is per returned event; consumed before resumption.
      t->cpu_demand += k->costs().event_api_per_event *
                       static_cast<sim::Duration>(events.size());
      t->demand_kind = rc::CpuKind::kKernel;
      slot->emplace(std::move(events));
      return true;
    };
    if (drain()) {
      return true;
    }
    p->events().waiter = [drain, t] {
      if (drain()) {
        t->Unblock();
      }
    };
    return false;
  };
  return {thread_, kernel_->costs().event_api_base, rc::CpuKind::kKernel,
          std::move(start)};
}

Sys::ActionAwaiter<Expected<Kernel::SynDropReport>> Sys::GetSynDropReport(
    int listen_fd) {
  Kernel* k = kernel_;
  Thread* t = thread_;
  auto action = [k, t, listen_fd]() -> Expected<Kernel::SynDropReport> {
    net::ListenRef ls = t->process()->fds().Get<net::ListenRef>(listen_fd);
    if (!ls) {
      return MakeUnexpected(Errc::kNotFound);
    }
    return k->TakeSynDrops(ls.get());
  };
  return {thread_, kernel_->costs().container_get_usage, rc::CpuKind::kKernel,
          std::move(action)};
}

Sys::ActionAwaiter<Expected<Pid>> Sys::Spawn(std::string name,
                                             std::function<Program(Sys)> body,
                                             SpawnOptions options) {
  Kernel* k = kernel_;
  Thread* t = thread_;
  auto action = [k, t, name = std::move(name), body = std::move(body),
                 options = std::move(options)]() -> Expected<Pid> {
    Process* parent = t->process();
    rc::ContainerRef child_container;  // null => fresh top-level container
    if (options.container_fd == -1) {
      child_container = parent->default_container();
    } else if (options.container_fd >= 0) {
      child_container = parent->fds().Get<rc::ContainerRef>(options.container_fd);
      if (!child_container) {
        return MakeUnexpected(Errc::kNotFound);
      }
    }
    Process* child = k->CreateProcess(name, child_container);
    child->auto_reap = options.detach;
    for (int fd : options.pass_fds) {
      const FdEntry* entry = parent->fds().GetEntry(fd);
      if (entry == nullptr) {
        return MakeUnexpected(Errc::kNotFound);
      }
      child->fds().Install(*entry);
    }
    k->SpawnThread(child, "main", body);
    return child->pid();
  };
  return {thread_, kernel_->costs().fork_cost, rc::CpuKind::kKernel, std::move(action)};
}

Sys::BlockingAwaiter<Expected<void>> Sys::WaitProcess(Pid pid) {
  Kernel* k = kernel_;
  Thread* t = thread_;
  auto start = [k, t, pid](std::optional<Expected<void>>* slot) -> bool {
    Process* target = k->FindProcess(pid);
    if (target == nullptr) {
      slot->emplace(MakeUnexpected(Errc::kNotFound));
      return true;
    }
    if (target->zombie()) {
      slot->emplace(Expected<void>{});
      k->ReapProcess(pid);
      return true;
    }
    k->AddProcessExitWaiter(pid, [k, t, pid, slot] {
      slot->emplace(Expected<void>{});
      k->ReapProcess(pid);
      t->Unblock();
    });
    return false;
  };
  return {thread_, kernel_->costs().syscall_base, rc::CpuKind::kKernel, std::move(start)};
}

}  // namespace kernel
