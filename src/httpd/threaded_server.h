// The single-process multi-threaded server (Figure 3): a pool of kernel
// threads, each handling one connection at a time; on the RC kernel each
// connection gets a container and the handling thread binds to it
// (Figure 9).
#ifndef SRC_HTTPD_THREADED_SERVER_H_
#define SRC_HTTPD_THREADED_SERVER_H_

#include "src/httpd/file_cache.h"
#include "src/httpd/server.h"
#include "src/httpd/server_config.h"
#include "src/kernel/kernel.h"
#include "src/kernel/syscalls.h"

namespace telemetry {
class Registry;
}

namespace httpd {

class MultiThreadedServer : public Server {
 public:
  MultiThreadedServer(kernel::Kernel* kernel, FileCache* cache, ServerConfig config);

  void Start(rc::ContainerRef default_container = nullptr) override;

  kernel::Process* process() const { return proc_; }
  const ServerStats& stats() const override { return stats_; }

  // Installs the httpd.* probes (server counters + file cache) on `registry`.
  void RegisterMetrics(telemetry::Registry& registry) override;

 private:
  kernel::Program Init(kernel::Sys sys);
  kernel::Program Worker(kernel::Sys sys);

  kernel::Kernel* const kernel_;
  FileCache* const cache_;
  const ServerConfig config_;
  kernel::Process* proc_ = nullptr;
  int listen_fd_ = -1;
  // Pre-validated "conn" recipe shared by every worker (attributes checked
  // once in Init, reused per accepted connection).
  rc::ContainerTemplateRef conn_template_;
  ServerStats stats_;
  std::uint64_t cgi_completed_ = 0;
};

}  // namespace httpd

#endif  // SRC_HTTPD_THREADED_SERVER_H_
