file(REMOVE_RECURSE
  "CMakeFiles/billing.dir/billing.cpp.o"
  "CMakeFiles/billing.dir/billing.cpp.o.d"
  "billing"
  "billing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/billing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
