file(REMOVE_RECURSE
  "CMakeFiles/rc_disk.dir/disk_engine.cc.o"
  "CMakeFiles/rc_disk.dir/disk_engine.cc.o.d"
  "librc_disk.a"
  "librc_disk.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rc_disk.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
