file(REMOVE_RECURSE
  "CMakeFiles/synflood_defense.dir/synflood_defense.cpp.o"
  "CMakeFiles/synflood_defense.dir/synflood_defense.cpp.o.d"
  "synflood_defense"
  "synflood_defense.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/synflood_defense.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
