// A simulated disk with container-aware request scheduling.
//
// Section 4.4: "the use of other system resources such as physical memory,
// disk bandwidth and socket buffers can be conveniently controlled by
// resource containers… the container mechanism causes resource consumption
// to be charged to the correct principal". This module provides that
// substrate for disk bandwidth: requests carry the container of the activity
// that issued them, the disk services pending requests in container network-
// priority order (FIFO within a priority), and each request's service time
// (seek + transfer) is charged to the container's disk-usage accounting.
//
// The model is a single-spindle disk with a fixed average positioning time
// and a linear transfer rate — 1999-era numbers by default, matching the
// machine the paper's costs are calibrated to.
#ifndef SRC_DISK_DISK_ENGINE_H_
#define SRC_DISK_DISK_ENGINE_H_

#include <array>
#include <cstdint>
#include <deque>
#include <functional>

#include "src/rc/container.h"
#include "src/sim/simulator.h"

namespace telemetry {
class Registry;
}

namespace disk {

struct DiskCosts {
  sim::Duration positioning_usec = 8000;  // average seek + rotational delay
  sim::Duration transfer_usec_per_kb = 60;  // ~16 MB/s sustained
  // Requests whose blocks are adjacent to the previous request skip the
  // positioning cost (sequential-read optimization).
  bool sequential_optimization = true;
};

struct IoRequest {
  std::uint64_t block_kb = 0;   // starting block, in KB units
  std::uint32_t kb = 4;         // transfer size
  rc::ContainerRef container;   // charged principal (may be null: unowned)
  std::function<void()> done;   // completion callback
};

class DiskEngine {
 public:
  DiskEngine(sim::Simulator* simulator, const DiskCosts& costs)
      : simr_(simulator), costs_(costs) {}

  // Enqueues a request; `done` fires when the transfer completes.
  void Submit(IoRequest request);

  // The service time a request of `kb` would take, excluding queueing.
  sim::Duration ServiceTime(std::uint32_t kb, bool sequential) const;

  bool busy() const { return busy_; }
  int queued() const { return queued_; }

  struct Stats {
    std::uint64_t requests = 0;
    sim::Duration busy_usec = 0;
    std::uint64_t kb_transferred = 0;
    std::uint64_t sequential_hits = 0;
  };
  const Stats& stats() const { return stats_; }

  // Installs pull-based probes for the disk counters (disk.*) and the
  // current queue depth; `this` must outlive reads of the registry.
  void RegisterMetrics(telemetry::Registry& registry);

 private:
  void MaybeStart();

  sim::Simulator* const simr_;
  const DiskCosts costs_;

  // Pending requests bucketed by container network priority (FIFO within).
  std::array<std::deque<IoRequest>, rc::kMaxPriority + 1> buckets_;
  int queued_ = 0;
  bool busy_ = false;
  // Block after the last transfer; the sentinel means "no transfer yet", so
  // the first request always pays the positioning cost.
  static constexpr std::uint64_t kNoPosition = ~std::uint64_t{0};
  std::uint64_t head_pos_kb_ = kNoPosition;

  Stats stats_;
};

}  // namespace disk

#endif  // SRC_DISK_DISK_ENGINE_H_
