# Empty dependencies file for bench_virtual_servers.
# This may be replaced when dependencies are built.
