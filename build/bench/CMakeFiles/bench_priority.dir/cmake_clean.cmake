file(REMOVE_RECURSE
  "CMakeFiles/bench_priority.dir/bench_priority.cpp.o"
  "CMakeFiles/bench_priority.dir/bench_priority.cpp.o.d"
  "bench_priority"
  "bench_priority.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_priority.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
