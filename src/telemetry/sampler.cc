#include "src/telemetry/sampler.h"

#include <algorithm>
#include <utility>

#include "src/common/check.h"
#include "src/telemetry/json.h"

namespace telemetry {

void WriteContainerSeriesJsonLines(std::ostream& os, const ContainerSeries& s) {
  for (const UsageSample& sample : s.samples) {
    const rc::ResourceUsage& u = sample.usage;
    os << "{\"at\":" << sample.at << ",\"container\":" << s.id << ",\"name\":\""
       << EscapeJson(s.name) << "\",\"cpu_user_usec\":" << u.cpu_user_usec
       << ",\"cpu_kernel_usec\":" << u.cpu_kernel_usec
       << ",\"cpu_network_usec\":" << u.cpu_network_usec
       << ",\"memory_bytes\":" << u.memory_bytes
       << ",\"memory_guaranteed_bytes\":" << sample.guaranteed_bytes
       << ",\"memory_reclaims\":" << u.memory_reclaims
       << ",\"memory_reclaimed_bytes\":" << u.memory_reclaimed_bytes
       << ",\"memory_refusals\":" << u.memory_refusals
       << ",\"packets_received\":" << u.packets_received
       << ",\"packets_dropped\":" << u.packets_dropped
       << ",\"bytes_received\":" << u.bytes_received
       << ",\"bytes_sent\":" << u.bytes_sent
       << ",\"disk_busy_usec\":" << u.disk_busy_usec
       << ",\"link_busy_usec\":" << u.link_busy_usec
       << ",\"link_packets\":" << u.link_packets << "}\n";
  }
  if (s.retired()) {
    os << "{\"container\":" << s.id << ",\"name\":\"" << EscapeJson(s.name)
       << "\",\"retired\":" << s.retired_at << "}\n";
  }
}

EpochSampler::EpochSampler(sim::Simulator* simulator, rc::ContainerManager* containers,
                           sim::Duration interval)
    : simr_(simulator), containers_(containers), interval_(interval) {
  // A non-positive interval would make Tick() reschedule itself at the same
  // instant and pin the simulator at the current time forever.
  RC_CHECK_GT(interval_, 0);
  containers_->AddLifecycleListener(this);
}

EpochSampler::~EpochSampler() {
  Stop();
  // ~LifecycleListener unregisters from the manager (if it still exists).
}

void EpochSampler::Start() {
  if (running_) {
    return;
  }
  running_ = true;
  timer_ = simr_->After(interval_, [this] { Tick(); });
}

void EpochSampler::Stop() {
  running_ = false;
  timer_.Cancel();
}

void EpochSampler::Tick() {
  if (!running_) {
    return;
  }
  SampleNow();
  timer_ = simr_->After(interval_, [this] { Tick(); });
}

void EpochSampler::SampleNow() {
  serial_.AssertHeld();
  const sim::SimTime now = simr_->now();
  ++epochs_;
  const sim::EventQueue& q = simr_->queue();
  engine_series_.push_back(EngineSample{now, q.dispatched(), q.canceled(),
                                        static_cast<std::uint64_t>(q.depth())});
  // One dense pass over the manager's slot registry. A slot whose occupant
  // changed since the last epoch (destroy retired the old series and reset
  // `active`) starts a fresh series in place.
  const std::size_t cap = containers_->slot_capacity();
  if (live_.size() < cap) {
    live_.resize(cap);
  }
  for (std::size_t i = 0; i < cap; ++i) {
    rc::ResourceContainer* c = containers_->container_at_slot(i);
    if (c == nullptr) {
      continue;
    }
    SlotSeries& ss = live_[i];
    if (!ss.active) {
      ss.active = true;
      ss.series.id = c->id();
      ss.series.name = c->name();
      ss.series.first_sample_at = now;
      ss.series.retired_at = -1;
      ss.series.samples.clear();
    }
    RC_DCHECK_EQ(ss.series.id, c->id());
    UsageSample sample{now, c->usage(), 0};
    if (guarantee_probe_) {
      sample.guaranteed_bytes = guarantee_probe_(*c);
    }
    ss.series.samples.push_back(std::move(sample));
  }
}

void EpochSampler::OnContainerDestroyed(rc::ResourceContainer& c) {
  serial_.AssertHeld();
  const std::size_t slot = static_cast<std::size_t>(c.slot());
  if (slot >= live_.size()) {
    return;  // never sampled
  }
  SlotSeries& ss = live_[slot];
  if (!ss.active || ss.series.id != c.id()) {
    return;  // never sampled since this slot's last occupant
  }
  ss.active = false;
  ss.series.retired_at = simr_->now();
  RetireSeries(std::move(ss.series));
  ss.series = ContainerSeries{};
}

void EpochSampler::RetireSeries(ContainerSeries&& s) {
  serial_.AssertHeld();
  if (retired_sink_) {
    retired_sink_(s);
    return;
  }
  retired_.push_back(std::move(s));
  while (retired_.size() > retired_cap_) {
    retired_.pop_front();
    ++retired_dropped_;
  }
}

std::map<rc::ContainerId, ContainerSeries> EpochSampler::series() const {
  serial_.AssertHeld();
  std::map<rc::ContainerId, ContainerSeries> out;
  for (const ContainerSeries& s : retired_) {
    out.emplace(s.id, s);
  }
  for (const SlotSeries& ss : live_) {
    if (ss.active) {
      out.emplace(ss.series.id, ss.series);
    }
  }
  return out;
}

void EpochSampler::WriteJsonLines(std::ostream& os) const {
  serial_.AssertHeld();
  const auto old_precision = os.precision(15);
  // Emit in container-id order regardless of slot/retirement order so the
  // output is deterministic and matches the pre-slot-registry format.
  std::vector<const ContainerSeries*> ordered;
  ordered.reserve(retired_.size() + live_.size());
  for (const ContainerSeries& s : retired_) {
    ordered.push_back(&s);
  }
  for (const SlotSeries& ss : live_) {
    if (ss.active) {
      ordered.push_back(&ss.series);
    }
  }
  std::sort(ordered.begin(), ordered.end(),
            [](const ContainerSeries* a, const ContainerSeries* b) {
              return a->id < b->id;
            });
  for (const ContainerSeries* s : ordered) {
    WriteContainerSeriesJsonLines(os, *s);
  }
  for (const EngineSample& e : engine_series_) {
    os << "{\"at\":" << e.at << ",\"engine\":{\"events_dispatched\":"
       << e.events_dispatched << ",\"events_canceled\":" << e.events_canceled
       << ",\"queue_depth\":" << e.queue_depth << "}}\n";
  }
  os.precision(old_precision);
}

}  // namespace telemetry
