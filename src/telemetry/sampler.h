// The epoch sampler: a simulator-driven periodic snapshot of every live
// container's ResourceUsage into per-container time series. This is the
// time-series backbone for Figure 11-14-style plots — attribution over time,
// per principal — without any instrumentation on the charging hot path (the
// sampler *reads* usage that containers already maintain).
//
// Hot-path layout: series live in a flat array indexed by the manager's
// dense container slot, so an epoch is a single linear pass — no hash or
// tree probe per live container, and slots are reused as containers churn.
// Retired series are bounded: each is offered to an optional sink at
// retirement (streaming JSONL out), otherwise retained up to a cap — a
// 2M-connection run no longer holds 2M dead series.
#ifndef SRC_TELEMETRY_SAMPLER_H_
#define SRC_TELEMETRY_SAMPLER_H_

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <ostream>
#include <string>
#include <vector>

#include "src/common/thread_annotations.h"
#include "src/rc/lifecycle.h"
#include "src/rc/manager.h"
#include "src/rc/usage.h"
#include "src/sim/simulator.h"

namespace telemetry {

struct UsageSample {
  sim::SimTime at = 0;
  rc::ResourceUsage usage;
  // Guaranteed resident bytes under the memory share tree at the sample
  // instant (0 when no memory capacity / guarantee probe is configured).
  std::int64_t guaranteed_bytes = 0;
};

// Machine-level event-engine sample, one per epoch: cumulative dispatch and
// cancel totals plus the live queue depth at the sample instant.
struct EngineSample {
  sim::SimTime at = 0;
  std::uint64_t events_dispatched = 0;
  std::uint64_t events_canceled = 0;
  std::uint64_t queue_depth = 0;
};

struct ContainerSeries {
  rc::ContainerId id = 0;
  std::string name;
  sim::SimTime first_sample_at = 0;
  // Simulated time the container was destroyed; -1 while it is alive.
  sim::SimTime retired_at = -1;
  std::vector<UsageSample> samples;

  bool retired() const { return retired_at >= 0; }
};

// Writes one JSON line per sample of `s` (the per-(epoch, container) format
// of EpochSampler::WriteJsonLines), plus the trailing retired line when the
// series is retired. This is what a retired-series sink typically calls.
void WriteContainerSeriesJsonLines(std::ostream& os, const ContainerSeries& s);

class EpochSampler : public rc::LifecycleListener {
 public:
  // Samples every container known to `containers` each `interval` once
  // started. The simulator must outlive the sampler; manager and sampler may
  // be destroyed in either order (lifecycle unregistration handles both).
  EpochSampler(sim::Simulator* simulator, rc::ContainerManager* containers,
               sim::Duration interval);
  ~EpochSampler() override;

  // Begins periodic sampling; the first epoch fires one interval from now.
  void Start();
  void Stop();
  bool running() const { return running_; }

  // Takes one epoch sample immediately (also usable without Start, e.g. to
  // bracket a measurement window by hand).
  void SampleNow();

  // Optional: evaluated per live container at each epoch to stamp
  // UsageSample::guaranteed_bytes (the kernel wires this to the memory
  // broker's GuaranteeBytes). The callee must outlive sampling.
  void set_memory_guarantee_probe(
      std::function<std::int64_t(const rc::ResourceContainer&)> probe) {
    guarantee_probe_ = std::move(probe);
  }

  // Streaming outlet for retired series: when set, every series whose
  // container is destroyed is handed to the sink at retirement instead of
  // being retained (WriteJsonLines then covers live series only — the sink
  // owns the retired ones).
  void set_retired_sink(std::function<void(const ContainerSeries&)> sink) {
    retired_sink_ = std::move(sink);
  }

  // Without a sink, at most `cap` retired series are retained (oldest
  // dropped first, counted in retired_dropped()).
  void set_retired_capacity(std::size_t cap) { retired_cap_ = cap; }
  std::size_t retired_capacity() const { return retired_cap_; }
  std::size_t retired_count() const {
    serial_.AssertHeld();
    return retired_.size();
  }
  std::uint64_t retired_dropped() const {
    serial_.AssertHeld();
    return retired_dropped_;
  }

  sim::Duration interval() const { return interval_; }
  std::size_t epochs() const {
    serial_.AssertHeld();
    return epochs_;
  }

  // Assembled per-container view, keyed by container id: live series plus
  // the retained retired ones (with `retired_at` stamped). Built on demand —
  // introspection/test API, not a hot path.
  std::map<rc::ContainerId, ContainerSeries> series() const;

  // Machine-level engine series, one sample per epoch.
  const std::vector<EngineSample>& engine_series() const {
    serial_.AssertHeld();
    return engine_series_;
  }

  // JSON Lines: one object per (epoch, container) —
  //   {"at":..,"container":..,"name":..,"cpu_user_usec":..,...}
  // plus one {"retired":...} line per destroyed container, plus one
  // {"at":..,"engine":{...}} machine line per epoch. Series are emitted in
  // container-id order (deterministic across runs).
  void WriteJsonLines(std::ostream& os) const;

  // rc::LifecycleListener: stamps retirement so a series is never mistaken
  // for a live container that merely stopped accumulating.
  void OnContainerDestroyed(rc::ResourceContainer& c) override;

 private:
  struct SlotSeries {
    ContainerSeries series;
    bool active = false;
  };

  void Tick();
  void RetireSeries(ContainerSeries&& s);

  sim::Simulator* const simr_;
  rc::ContainerManager* const containers_;
  const sim::Duration interval_;

  // Series state is confined to the simulator's serialized event-loop
  // domain (epoch timer callbacks and lifecycle notifications both run
  // there); accessors re-assert the domain before touching it.
  rccommon::Serial serial_;

  // Indexed by the manager's dense container slot; grown lazily to the
  // manager's slot capacity.
  std::vector<SlotSeries> live_ RC_GUARDED_BY(serial_);
  std::deque<ContainerSeries> retired_ RC_GUARDED_BY(serial_);
  std::size_t retired_cap_ = 65536;
  std::uint64_t retired_dropped_ RC_GUARDED_BY(serial_) = 0;
  std::function<void(const ContainerSeries&)> retired_sink_;

  std::vector<EngineSample> engine_series_ RC_GUARDED_BY(serial_);
  std::function<std::int64_t(const rc::ResourceContainer&)> guarantee_probe_;
  std::size_t epochs_ RC_GUARDED_BY(serial_) = 0;
  sim::EventHandle timer_;
  bool running_ = false;
};

}  // namespace telemetry

#endif  // SRC_TELEMETRY_SAMPLER_H_
