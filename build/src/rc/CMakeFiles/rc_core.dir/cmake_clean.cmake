file(REMOVE_RECURSE
  "CMakeFiles/rc_core.dir/attributes.cc.o"
  "CMakeFiles/rc_core.dir/attributes.cc.o.d"
  "CMakeFiles/rc_core.dir/binding.cc.o"
  "CMakeFiles/rc_core.dir/binding.cc.o.d"
  "CMakeFiles/rc_core.dir/container.cc.o"
  "CMakeFiles/rc_core.dir/container.cc.o.d"
  "CMakeFiles/rc_core.dir/manager.cc.o"
  "CMakeFiles/rc_core.dir/manager.cc.o.d"
  "librc_core.a"
  "librc_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rc_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
