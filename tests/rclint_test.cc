// Self-tests for the rclint analyzer (tools/rclint/rclint_lib). Each rule
// gets a firing case and a quiet case over synthetic file contents; the
// fixture corpus under tests/rclint_fixtures/ exercises the same rules
// end-to-end through the CLI (see rclint_golden_test.cmake).
#include <algorithm>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "tools/rclint/rclint_lib.h"

namespace {

using rclint::AnalyzeFile;
using rclint::Diagnostic;
using rclint::FileInput;
using rclint::Rule;

std::vector<Diagnostic> Analyze(const std::string& path,
                                const std::string& content) {
  std::vector<Diagnostic> diags;
  AnalyzeFile(FileInput{path, content}, &diags);
  return diags;
}

bool HasRule(const std::vector<Diagnostic>& diags, Rule rule) {
  return std::any_of(diags.begin(), diags.end(),
                     [rule](const Diagnostic& d) { return d.rule == rule; });
}

// --- determinism -----------------------------------------------------------

TEST(RclintDeterminismTest, FlagsEntropyAndClockSources) {
  const auto diags = Analyze("src/x.cc",
                             "#include <random>\n"
                             "int f() { std::random_device rd; return rand(); }\n");
  ASSERT_EQ(diags.size(), 2u);
  EXPECT_EQ(diags[0].rule, Rule::kDeterminism);
  EXPECT_EQ(diags[1].rule, Rule::kDeterminism);
  EXPECT_EQ(diags[1].line, 2);
}

TEST(RclintDeterminismTest, FlagsPointerKeyedOrderedContainers) {
  const auto diags =
      Analyze("src/x.cc", "std::map<Conn*, int> m;\nstd::set<int> ok;\n");
  ASSERT_EQ(diags.size(), 1u);
  EXPECT_EQ(diags[0].rule, Rule::kDeterminism);
  EXPECT_EQ(diags[0].line, 1);
}

TEST(RclintDeterminismTest, MemberAndDeclarationUsesAreQuiet) {
  // x.time() is the simulator's clock; `Duration time()` declares an
  // unrelated function; `rng.rand()` is someone's member.
  const auto diags = Analyze("src/x.cc",
                             "long f(Sim& s) { return s.time(); }\n"
                             "struct R { Duration time() const; };\n"
                             "int g(Rng& r) { return r.rand(); }\n");
  EXPECT_TRUE(diags.empty());
}

TEST(RclintDeterminismTest, OnlyAppliesUnderSrc) {
  // Wall-clock use in bench/tools is legitimate (throughput measurement).
  const std::string body = "int f() { return rand(); }\n";
  EXPECT_FALSE(HasRule(Analyze("bench/x.cc", body), Rule::kDeterminism));
  EXPECT_FALSE(HasRule(Analyze("tools/x.cc", body), Rule::kDeterminism));
  EXPECT_TRUE(HasRule(Analyze("src/x.cc", body), Rule::kDeterminism));
}

// --- charging --------------------------------------------------------------

TEST(RclintChargingTest, FlagsDirectCounterMutationOutsideChokePoints) {
  const std::string body = "void f(C* c) { c->usage.cpu_user_usec += 5; }\n";
  EXPECT_TRUE(HasRule(Analyze("src/net/x.cc", body), Rule::kCharging));
  EXPECT_TRUE(HasRule(Analyze("bench/x.cc", body), Rule::kCharging));
}

TEST(RclintChargingTest, ChokePointsMayMutateDirectly) {
  const std::string body = "void f(C* c) { c->usage.cpu_user_usec += 5; }\n";
  EXPECT_TRUE(Analyze("src/rc/container.cc", body).empty());
  EXPECT_TRUE(Analyze("src/kernel/kernel.cc", body).empty());
  EXPECT_TRUE(Analyze("src/sched/share_tree.cc", body).empty());
}

TEST(RclintChargingTest, ReadsOfCountersAreQuiet) {
  const auto diags = Analyze(
      "src/net/x.cc", "long f(const C& c) { return c.usage().bytes_sent; }\n");
  EXPECT_TRUE(diags.empty());
}

// --- hotpath ---------------------------------------------------------------

TEST(RclintHotPathTest, FlagsAllocationInAnnotatedFunction) {
  const auto diags = Analyze("src/x.cc",
                             "RC_HOT_PATH void f(std::vector<int>* v) {\n"
                             "  v->push_back(new int);\n"
                             "}\n");
  ASSERT_EQ(diags.size(), 2u);  // `new` and `push_back`
  EXPECT_EQ(diags[0].rule, Rule::kHotPath);
  EXPECT_EQ(diags[1].rule, Rule::kHotPath);
}

TEST(RclintHotPathTest, UnannotatedFunctionsMayAllocate) {
  const auto diags = Analyze(
      "src/x.cc", "void f(std::vector<int>* v) { v->push_back(new int); }\n");
  EXPECT_TRUE(diags.empty());
}

TEST(RclintHotPathTest, BodyEndsAtClosingBrace) {
  const auto diags = Analyze("src/x.cc",
                             "RC_HOT_PATH int f() { return 0; }\n"
                             "void g() { auto* p = new int; (void)p; }\n");
  EXPECT_TRUE(diags.empty());
}

// --- layering --------------------------------------------------------------

TEST(RclintLayeringTest, FoundationMayNotReachUp) {
  EXPECT_TRUE(HasRule(
      Analyze("src/sim/x.cc", "#include \"src/kernel/kernel.h\"\n"),
      Rule::kLayering));
  EXPECT_TRUE(HasRule(
      Analyze("src/common/x.h", "#include \"src/httpd/server.h\"\n"),
      Rule::kLayering));
  EXPECT_TRUE(HasRule(Analyze("src/rc/x.cc", "#include \"src/net/stack.h\"\n"),
                      Rule::kLayering));
}

TEST(RclintLayeringTest, DownwardIncludesAreQuiet) {
  EXPECT_TRUE(
      Analyze("src/sim/x.cc", "#include \"src/common/check.h\"\n").empty());
  EXPECT_TRUE(
      Analyze("src/kernel/x.cc", "#include \"src/sim/time.h\"\n").empty());
}

TEST(RclintLayeringTest, SpecLayerMayNotTouchSimulatorInternals) {
  EXPECT_TRUE(HasRule(
      Analyze("src/xp/spec.cc", "#include \"src/kernel/kernel.h\"\n"),
      Rule::kLayering));
  EXPECT_TRUE(HasRule(Analyze("src/xp/spec.h", "#include \"src/net/addr.h\"\n"),
                      Rule::kLayering));
  EXPECT_TRUE(HasRule(
      Analyze("src/xp/spec.cc", "#include \"src/disk/disk.h\"\n"),
      Rule::kLayering));
}

TEST(RclintLayeringTest, CompilerMayTouchSimulatorInternals) {
  // Only spec.{h,cc} is value-only; the scenario compiler next to it does
  // the mapping onto the live simulator.
  EXPECT_TRUE(
      Analyze("src/xp/runner.cc", "#include \"src/kernel/kernel.h\"\n").empty());
  EXPECT_TRUE(
      Analyze("src/xp/spec.cc", "#include \"src/rc/attributes.h\"\n").empty());
}

// --- suppressions ----------------------------------------------------------

TEST(RclintSuppressionTest, ReasonedSuppressionSilencesNextCodeLine) {
  const auto diags = Analyze(
      "src/x.cc",
      "// rclint: allow(determinism): fixture exercising the suppressor.\n"
      "int r = rand();\n");
  EXPECT_TRUE(diags.empty());
}

TEST(RclintSuppressionTest, SuppressionOnlyCoversItsOwnRule) {
  const auto diags = Analyze(
      "src/x.cc",
      "// rclint: allow(hotpath): wrong rule for this diagnostic.\n"
      "int r = rand();\n");
  EXPECT_TRUE(HasRule(diags, Rule::kDeterminism));
}

TEST(RclintSuppressionTest, MissingReasonIsItselfADiagnostic) {
  const auto diags = Analyze("src/x.cc", "// rclint: allow(determinism)\n");
  ASSERT_EQ(diags.size(), 1u);
  EXPECT_EQ(diags[0].rule, Rule::kBadSuppression);
}

TEST(RclintSuppressionTest, UnknownRuleIsItselfADiagnostic) {
  const auto diags =
      Analyze("src/x.cc", "// rclint: allow(nosuchrule): reasons.\n");
  ASSERT_EQ(diags.size(), 1u);
  EXPECT_EQ(diags[0].rule, Rule::kBadSuppression);
}

TEST(RclintSuppressionTest, ProseMentioningTheSyntaxIsNotADirective) {
  const auto diags = Analyze(
      "src/x.cc",
      "// Suppress with `// rclint: allow(<rule>): reason` on the line above.\n"
      "int x = 0;\n");
  EXPECT_TRUE(diags.empty());
}

// --- diagnostics surface ---------------------------------------------------

TEST(RclintFormatTest, FormatsPathLineRuleAndOptionalSuggestion) {
  const auto diags = Analyze("src/x.cc", "int r = rand();\n");
  ASSERT_EQ(diags.size(), 1u);
  const std::string plain = rclint::FormatDiagnostic(diags[0], false);
  EXPECT_NE(plain.find("src/x.cc:1: [determinism]"), std::string::npos);
  EXPECT_EQ(plain.find("suggestion:"), std::string::npos);
  const std::string with_fix = rclint::FormatDiagnostic(diags[0], true);
  EXPECT_NE(with_fix.find("suggestion:"), std::string::npos);
}

TEST(RclintFormatTest, RuleNamesRoundTrip) {
  for (Rule r : {Rule::kDeterminism, Rule::kCharging, Rule::kHotPath,
                 Rule::kLayering, Rule::kBadSuppression}) {
    Rule parsed = Rule::kDeterminism;
    ASSERT_TRUE(rclint::RuleFromName(rclint::RuleName(r), &parsed));
    EXPECT_EQ(parsed, r);
  }
  Rule ignored = Rule::kDeterminism;
  EXPECT_FALSE(rclint::RuleFromName("nosuchrule", &ignored));
}

TEST(RclintLexerTest, CommentsAndStringsAreNotCode) {
  const auto diags = Analyze("src/x.cc",
                             "// rand() in a comment\n"
                             "/* std::random_device in a block */\n"
                             "const char* s = \"rand()\";\n"
                             "const char* r = R\"(getenv)\";\n");
  EXPECT_TRUE(diags.empty());
}

}  // namespace
