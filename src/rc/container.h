// The resource container: "an abstract operating system entity that logically
// contains all the system resources being used by an application to achieve a
// particular independent activity" (Section 4.1).
//
// Lifetime follows the paper's reference model (Section 4.6): a container is
// held alive by descriptor references and thread resource bindings, both of
// which are represented as shared_ptr copies (ContainerRef). When the last
// reference drops the container is destroyed: its accumulated usage is
// retired into its parent, and its children are orphaned to the top level
// ("If the parent P of a container C is destroyed, C's parent is set to
// 'no parent'").
//
// Lifecycle fast path: containers are slab-allocated through the manager's
// freelist arena (one allocation per container, control block included),
// registered in a dense slot array with generation counters instead of a
// hash map, and carry an interned name pointer — per-class names like "conn"
// exist once per manager, not once per connection.
#ifndef SRC_RC_CONTAINER_H_
#define SRC_RC_CONTAINER_H_

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <string>
#include <string_view>
#include <unordered_map>
#include <utility>
#include <vector>

#include "src/common/check.h"
#include "src/common/expected.h"
#include "src/rc/attributes.h"
#include "src/rc/memory.h"
#include "src/rc/usage.h"
#include "src/sim/time.h"

namespace rc {

class ContainerManager;
class ResourceContainer;

using ContainerId = std::uint64_t;
using ContainerRef = std::shared_ptr<ResourceContainer>;

// State shared between the manager and every container it created, with the
// lifetime of the *longest-lived* of them: containers can outlive the manager
// (e.g. refs held by queued simulator events at teardown), and both the
// liveness flag and the interned name storage must stay valid for their
// destructors and name() accessors.
struct ManagerShared {
  bool alive = true;
  // Interned names. Deque: stable addresses across growth.
  std::deque<std::string> names;
  std::unordered_map<std::string_view, const std::string*> name_index;

  const std::string* Intern(std::string name);
};

class ResourceContainer : public std::enable_shared_from_this<ResourceContainer> {
 public:
  // Containers are created only through ContainerManager; the passkey lets
  // the manager reach this public constructor through allocate_shared.
  class CreateKey {
   private:
    CreateKey() = default;
    friend class ContainerManager;
  };
  ResourceContainer(CreateKey, ContainerManager* manager,
                    std::shared_ptr<ManagerShared> shared, ContainerId id,
                    const std::string* name, const Attributes& attrs);

  ResourceContainer(const ResourceContainer&) = delete;
  ResourceContainer& operator=(const ResourceContainer&) = delete;
  ~ResourceContainer();

  ContainerId id() const { return id_; }
  const std::string& name() const { return *name_; }

  // Dense index of this container in the manager's slot array, and the
  // slot's generation at assignment time. Slots are reused after destroy
  // with a bumped generation, so (slot, generation) uniquely names a
  // container incarnation.
  std::uint32_t slot() const { return slot_; }
  std::uint32_t generation() const { return generation_; }

  // Parent in the hierarchy; nullptr only for the root container.
  ResourceContainer* parent() const { return parent_; }
  bool is_root() const { return parent_ == nullptr; }
  bool IsLeaf() const { return children_.empty(); }
  std::size_t child_count() const { return children_.size(); }
  int depth() const;

  // True if `candidate` is this container or one of its descendants.
  bool IsSelfOrDescendant(const ResourceContainer* candidate) const;

  const Attributes& attributes() const { return attrs_; }

  // Updates attributes; validated, and sibling fixed-share sums re-checked.
  rccommon::Expected<void> SetAttributes(const Attributes& attrs);

  // Sum of fixed shares of this container's children that are fixed-share
  // for `kind`. Maintained incrementally on adopt/orphan/SetAttributes, so
  // per-create share validation is O(1) instead of O(siblings).
  double ChildFixedShareSum(ResourceKind kind) const {
    return child_fixed_sum_[static_cast<int>(kind)];
  }

  // --- Accounting -----------------------------------------------------

  // Usage charged directly to this container (excludes descendants).
  const ResourceUsage& usage() const { return usage_; }

  // Usage of destroyed descendants, retired into this container.
  const ResourceUsage& retired_usage() const { return retired_; }

  // This container plus all live descendants plus retired descendants.
  ResourceUsage SubtreeUsage() const;

  void ChargeCpu(sim::Duration usec, CpuKind kind);

  // Charges `bytes` of memory. When the manager has a MemoryArbiter installed
  // (the kernel's MemoryBroker) the charge flows through it — machine
  // capacity, guarantees and reclaim apply; otherwise the hierarchical limit
  // walk below is enforced directly. `source` says what kind of kernel object
  // holds the bytes (reclaimability, auditing).
  rccommon::Expected<void> ChargeMemory(std::int64_t bytes,
                                        MemorySource source = MemorySource::kOther);
  void ReleaseMemory(std::int64_t bytes,
                     MemorySource source = MemorySource::kOther);

  // --- Memory-arbiter protocol ----------------------------------------
  // The arbiter decides, then commits through these; they update the books
  // without re-entering policy. CheckMemoryLimits is the hierarchical
  // byte-limit walk (memory_limit_bytes and memory.limit × capacity on every
  // ancestor), shared by the legacy path and the broker.
  rccommon::Expected<void> CheckMemoryLimits(std::int64_t bytes,
                                             std::int64_t capacity_bytes) const;
  void CommitMemoryCharge(std::int64_t bytes);
  void CommitMemoryRelease(std::int64_t bytes);
  void CountMemoryReclaim(std::int64_t bytes) {
    ++usage_.memory_reclaims;
    usage_.memory_reclaimed_bytes += bytes;
  }
  void CountMemoryRefusal() { ++usage_.memory_refusals; }

  // Subtree memory currently charged (maintained incrementally).
  std::int64_t subtree_memory_bytes() const { return subtree_memory_bytes_; }

  // Records a completed disk transfer (service time + size).
  RC_HOT_PATH void ChargeDisk(sim::Duration busy_usec, std::uint32_t kb) {
    usage_.disk_busy_usec += busy_usec;
    ++usage_.disk_reads;
    usage_.disk_kb += kb;
  }

  // Records a completed transmit-link occupancy (rate-limited link model).
  RC_HOT_PATH void ChargeLink(sim::Duration busy_usec, std::uint64_t packets = 1) {
    usage_.link_busy_usec += busy_usec;
    usage_.link_packets += packets;
  }

  RC_HOT_PATH void CountPacketReceived(std::uint64_t bytes) {
    ++usage_.packets_received;
    usage_.bytes_received += bytes;
  }
  RC_HOT_PATH void CountPacketDropped() { ++usage_.packets_dropped; }
  RC_HOT_PATH void CountBytesSent(std::uint64_t bytes) { usage_.bytes_sent += bytes; }

  // --- Hierarchy traversal --------------------------------------------

  void ForEachChild(const std::function<void(ResourceContainer&)>& fn) const;

  // --- Scheduler integration ------------------------------------------

  // Per-scheduler slot registry: each share tree (CPU shards, disk, link)
  // records the index of this container's node in its flat node array, keyed
  // by the tree's address. A handful of trees exist per simulation, so lookup
  // is a short linear scan. Returns -1 when `owner` has no slot recorded.
  std::int32_t SchedSlotFor(const void* owner) const {
    for (const auto& [key, slot] : sched_slots_) {
      if (key == owner) {
        return slot;
      }
    }
    return -1;
  }
  void SetSchedSlot(const void* owner, std::int32_t slot) {
    for (auto& [key, existing] : sched_slots_) {
      if (key == owner) {
        existing = slot;
        return;
      }
    }
    sched_slots_.emplace_back(owner, slot);
  }
  void ClearSchedSlot(const void* owner) {
    for (auto it = sched_slots_.begin(); it != sched_slots_.end(); ++it) {
      if (it->first == owner) {
        sched_slots_.erase(it);
        return;
      }
    }
  }

  // Monotonic count of threads whose *current* resource binding is this
  // container; maintained by BindingPoint.
  int bound_thread_count() const { return bound_thread_count_; }

  ContainerManager* manager() const { return manager_; }

 private:
  friend class ContainerManager;
  friend class BindingPoint;

  void AdoptChild(ResourceContainer* child);
  void RemoveChild(ResourceContainer* child);
  // Adds `delta` to subtree_memory of this node and all ancestors.
  void PropagateMemory(std::int64_t delta);

  // Incremental maintenance of child_fixed_sum_/child_fixed_count_ as
  // children arrive, leave, or change attributes.
  void AddChildShares(const Attributes& child_attrs);
  void RemoveChildShares(const Attributes& child_attrs);

  ContainerManager* manager_;
  std::shared_ptr<ManagerShared> shared_;
  const ContainerId id_;
  const std::string* name_;  // interned; storage owned by shared_
  Attributes attrs_;

  ResourceContainer* parent_ = nullptr;
  std::vector<ResourceContainer*> children_;

  // Per-kind sum (and count) of children's fixed shares; count-of-zero
  // resets the sum to exactly 0.0 so float drift cannot accumulate across
  // unbounded churn.
  double child_fixed_sum_[kResourceKindCount] = {};
  std::uint32_t child_fixed_count_[kResourceKindCount] = {};

  ResourceUsage usage_;
  ResourceUsage retired_;
  std::int64_t subtree_memory_bytes_ = 0;

  std::vector<std::pair<const void*, std::int32_t>> sched_slots_;
  int bound_thread_count_ = 0;

  std::uint32_t slot_ = 0;
  std::uint32_t generation_ = 0;
};

}  // namespace rc

#endif  // SRC_RC_CONTAINER_H_
