// The simulated TCP/IP stack with the three protocol-processing disciplines
// the paper compares:
//
//   kSoftint            — classic BSD-style: after the per-packet interrupt
//                         overhead, full protocol processing runs inline at
//                         software-interrupt priority and is charged to
//                         whatever principal happened to be running
//                         (Section 3.2's misaccounting).
//   kLrp                — Lazy Receiver Processing: packets are demultiplexed
//                         early (at interrupt level) onto a per-process queue;
//                         protocol processing runs later in that process's
//                         kernel network thread and is charged to the
//                         receiving process's container.
//   kResourceContainer  — the paper's system: like LRP, but the charge target
//                         is the *container bound to the socket*, and pending
//                         packets are serviced in container network-priority
//                         order (Section 4.7).
#ifndef SRC_NET_STACK_H_
#define SRC_NET_STACK_H_

#include <array>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <optional>
#include <unordered_map>
#include <vector>

#include "src/common/expected.h"
#include "src/net/packet.h"
#include "src/net/socket.h"
#include "src/rc/container.h"
#include "src/sim/time.h"

namespace telemetry {
class Registry;
}

namespace net {

enum class NetMode {
  kSoftint,
  kLrp,
  kResourceContainer,
};

const char* NetModeName(NetMode mode);

// Protocol-processing costs (populated from the kernel's CostModel).
struct StackCosts {
  sim::Duration syn_processing = 45;    // SYN validation + PCB + SYN-ACK output
  sim::Duration ack_processing = 25;    // handshake completion
  sim::Duration data_in = 25;           // inbound data segment
  sim::Duration fin_processing = 20;    // inbound FIN
  sim::Duration output_per_packet = 20; // outbound segment (checksum + driver)
  sim::Duration teardown = 25;          // PCB teardown on close
  std::uint32_t mtu_bytes = 1460;
  std::int64_t connection_memory_bytes = 4096;  // PCB + socket buffers
};

// A unit of deferred protocol processing. `cost` must be consumed as CPU time
// (charged to `charge_to`, or to the interrupted principal when null) before
// `apply` commits the state transition.
struct ProtocolWork {
  sim::Duration cost = 0;
  rc::ContainerRef charge_to;  // null => softint misaccounting
  std::function<void()> apply;
};

// Kernel-facing environment. The stack never schedules or wakes threads
// directly; it reports conditions and the kernel reacts.
class StackEnv {
 public:
  virtual ~StackEnv() = default;

  // Transmits a server-originated packet toward the client (the environment
  // models wire latency and delivery).
  virtual void EmitToWire(Packet p) = 0;

  // As above, with the container whose activity produced the packet — the
  // principal a rate-limited transmit link charges for the wire time.
  // `charge_to` may be null (e.g. RSTs for connections that no longer
  // exist). The default forwards to the unattributed overload, so
  // environments that do not model the link need not override this.
  virtual void EmitToWire(Packet p, rc::ContainerRef charge_to) {
    (void)charge_to;
    EmitToWire(std::move(p));
  }

  // An established connection reached `ls`'s accept queue.
  virtual void WakeAcceptors(ListenSocket& ls) = 0;

  // `conn` has new data, or its peer closed.
  virtual void WakeConnection(Connection& conn) = 0;

  // Deferred work was queued for `owner_tag`'s network thread (LRP/RC).
  virtual void NotifyPendingNetWork(std::uint64_t owner_tag) = 0;

  // A SYN from `source` was dropped on `ls` (queue overflow / backlog drop).
  // This is the kernel-to-application notification of Section 5.7.
  virtual void OnSynDrop(ListenSocket& ls, Addr source) = 0;
};

class Stack {
 public:
  Stack(StackEnv* env, const StackCosts& costs, NetMode mode);
  // Tears down every remaining PCB, releasing its connection-memory charge —
  // the stack must never strand bytes in the containers it charged.
  ~Stack();

  Stack(const Stack&) = delete;
  Stack& operator=(const Stack&) = delete;

  NetMode mode() const { return mode_; }
  const StackCosts& costs() const { return costs_; }

  // --- Socket management (driven by kernel syscalls) --------------------

  // Binds a listen socket on <port, filter>. Multiple sockets may share a
  // port if their filters differ; an exact duplicate is rejected.
  rccommon::Expected<ListenRef> Listen(std::uint16_t port, const CidrFilter& filter,
                                       rc::ContainerRef container, std::uint64_t owner_tag,
                                       int syn_backlog = 1024, int accept_backlog = 128);
  void CloseListen(const ListenRef& ls);

  // Pops the next established connection, or nullptr when the queue is empty.
  ConnRef Accept(ListenSocket& ls);

  // Pops the next received request, if any.
  std::optional<HttpRequestInfo> Recv(Connection& conn);

  // CPU cost of transmitting an n-byte response (charged by the caller as
  // part of the send syscall, in the sending thread's context).
  sim::Duration SendCost(std::uint32_t bytes) const;

  // Emits the response packets for `bytes` toward the client; when
  // `close_after` is set, a FIN follows and the connection is torn down.
  void Send(Connection& conn, std::uint32_t bytes, std::uint64_t response_to,
            bool close_after);

  // Application close: emits FIN (if not already sent) and tears down.
  void Close(Connection& conn);

  // Moves a connection's charge target to `c` (the bind-socket-to-container
  // operation). Connection memory is migrated between containers; fails if
  // the new container's memory limit would be exceeded.
  rccommon::Expected<void> RebindConnection(Connection& conn, rc::ContainerRef c);

  // --- Wire input --------------------------------------------------------

  // Handles a packet arrival. Must be called at interrupt level, after the
  // per-packet interrupt overhead has been consumed by the CPU engine.
  // Returns work to execute inline (softint mode); in LRP/RC modes the work
  // is queued on the owner's backlog and nullopt is returned.
  std::optional<ProtocolWork> HandleArrival(const Packet& p);

  // Dequeues the highest-priority pending work for `owner_tag` (LRP is FIFO;
  // RC services container network priorities from high to low).
  std::optional<ProtocolWork> NextPendingWork(std::uint64_t owner_tag);
  bool HasPendingWork(std::uint64_t owner_tag) const;

  // Container of the highest-priority pending packet for `owner_tag`
  // (informs the kernel network thread's scheduling placement); null if none.
  rc::ContainerRef PeekPendingContainer(std::uint64_t owner_tag) const;

  // --- Introspection -----------------------------------------------------

  std::size_t pcb_count() const { return pcbs_.size(); }
  std::size_t listen_count() const { return listeners_.size(); }

  // Connection memory currently charged across all live PCBs (the stack's
  // side of the auditor's resident-byte conservation check).
  std::int64_t connection_memory_bytes() const { return connection_memory_bytes_; }

  struct Stats {
    std::uint64_t packets_in = 0;
    std::uint64_t packets_out = 0;
    std::uint64_t syns_in = 0;
    std::uint64_t syn_drops = 0;      // half-open evictions
    std::uint64_t backlog_drops = 0;  // per-container backlog overflow
    std::uint64_t rsts_out = 0;
    std::uint64_t accept_drops = 0;
    std::uint64_t mem_reject_drops = 0;  // container memory limit hit
  };
  const Stats& stats() const { return stats_; }

  // Installs pull-based probes for every stack counter (net.*) plus the
  // deferred-work queue depth; `this` must outlive reads of the registry.
  void RegisterMetrics(telemetry::Registry& registry);

 private:
  struct PendingPacket {
    Packet packet;
    rc::ContainerRef charge_to;
    rc::ContainerId backlog_key = 0;
  };
  // Per-process (owner_tag) backlog of deferred protocol processing, one
  // FIFO bucket per network priority level.
  struct OwnerBacklog {
    std::array<std::deque<PendingPacket>, rc::kMaxPriority + 1> buckets;
    std::unordered_map<rc::ContainerId, int> per_container_count;
    int total = 0;
  };

  // Finds the listen socket with the most specific filter matching
  // (port, source); nullptr when none match.
  ListenSocket* DemuxListen(std::uint16_t port, Addr source);

  // Builds the state-transition closure for `p` (shared by all modes).
  ProtocolWork MakeWork(const Packet& p, rc::ContainerRef charge_to);

  // State transitions (run inside ProtocolWork::apply).
  void ApplySyn(const Packet& p);
  void ApplyAck(const Packet& p);
  void ApplyData(const Packet& p);
  void ApplyFin(const Packet& p);
  void ApplyRst(const Packet& p);

  void Teardown(Connection& conn);
  void EmitRst(const Packet& cause);

  // Early-demultiplexing result: where deferred processing of a packet is
  // charged and queued (LRP/RC modes).
  struct DemuxResult {
    rc::ContainerRef container;   // null when the packet matches nothing
    std::uint64_t owner_tag = 0;
    ListenSocket* listener = nullptr;  // set for SYNs
  };
  DemuxResult EarlyDemux(const Packet& p);

  sim::Duration CostFor(PacketType t) const;

  StackEnv* const env_;
  const StackCosts costs_;
  const NetMode mode_;

  std::vector<ListenRef> listeners_;
  std::unordered_map<std::uint64_t, ConnRef> pcbs_;
  std::unordered_map<std::uint64_t, OwnerBacklog> backlogs_;

  Stats stats_;
  std::int64_t connection_memory_bytes_ = 0;

  static constexpr int kPerContainerBacklogLimit = 256;
};

}  // namespace net

#endif  // SRC_NET_STACK_H_
