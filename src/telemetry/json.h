// Minimal JSON support for the telemetry exporters and their tests: string
// escaping for the writers, and a small recursive-descent parser so tests can
// round-trip exported documents (metrics JSONL, Chrome traces, bench
// artifacts) without an external dependency.
#ifndef SRC_TELEMETRY_JSON_H_
#define SRC_TELEMETRY_JSON_H_

#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace telemetry {

// Escapes `s` for embedding inside a JSON string literal (quotes not
// included).
std::string EscapeJson(std::string_view s);

// A parsed JSON document. Object member order is preserved.
class JsonValue {
 public:
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

  Type type = Type::kNull;
  bool bool_value = false;
  double number_value = 0.0;
  std::string string_value;
  std::vector<JsonValue> array;
  std::vector<std::pair<std::string, JsonValue>> object;

  bool is_object() const { return type == Type::kObject; }
  bool is_array() const { return type == Type::kArray; }

  // Member lookup on an object; nullptr when absent (or not an object).
  const JsonValue* Find(std::string_view key) const;

  // Convenience accessors: the member's value, or `fallback` when the key is
  // missing or has a different type.
  double NumberOr(std::string_view key, double fallback) const;
  std::string StringOr(std::string_view key, std::string_view fallback) const;
};

// Parses one JSON document; nullopt on any syntax error or trailing garbage.
std::optional<JsonValue> ParseJson(std::string_view text);

}  // namespace telemetry

#endif  // SRC_TELEMETRY_JSON_H_
