// MemoryBroker: the kernel's physical-memory arbiter. Every
// ResourceContainer::ChargeMemory/ReleaseMemory in a kernel-owned hierarchy
// routes here (installed on the ContainerManager as its rc::MemoryArbiter).
//
// Policy is the space-shared instantiation of sched::ShareTree over
// ResourceKind::kMemory: hierarchical byte/fraction limits, per-container
// entitlements (capacity split down the tree by memory shares), and
// guarantees (demand-independent resident-byte floors from fixed shares).
// The broker converts that policy into action:
//
//   * a charge that violates an ancestor limit is refused outright;
//   * a charge that does not fit — machine capacity minus what is resident
//     minus what is *reserved* for other tenants' unmet guarantees — first
//     triggers reclaim from registered reclaimers (the file cache), evicting
//     LRU state of over-entitled containers, then of containers holding
//     bytes no guarantee protects; if the deficit survives both rounds the
//     charge is refused (admission control — this is how non-reclaimable
//     connection memory is kept from squeezing a paying tenant's guarantee).
//
// With capacity_bytes == 0 (the default KernelConfig) the broker is inert
// policy-wise: only the hierarchical limits the legacy ChargeMemory walk
// enforced apply, entitlements and guarantees are zero, and reclaim never
// triggers — runs that set no memory policy behave digit-identically.
#ifndef SRC_KERNEL_MEMORY_BROKER_H_
#define SRC_KERNEL_MEMORY_BROKER_H_

#include <cstdint>
#include <vector>

#include "src/common/expected.h"
#include "src/rc/manager.h"
#include "src/rc/memory.h"
#include "src/sched/share_tree.h"

namespace telemetry {
class Registry;
}  // namespace telemetry

namespace verify {
class ChargeAuditor;
}  // namespace verify

namespace kernel {

class MemoryBroker : public rc::MemoryArbiter {
 public:
  MemoryBroker(rc::ContainerManager* manager, std::int64_t capacity_bytes);
  ~MemoryBroker() override;

  MemoryBroker(const MemoryBroker&) = delete;
  MemoryBroker& operator=(const MemoryBroker&) = delete;

  // --- rc::MemoryArbiter ----------------------------------------------
  rccommon::Expected<void> ChargeMemory(rc::ResourceContainer& c,
                                        std::int64_t bytes,
                                        rc::MemorySource source) override;
  void ReleaseMemory(rc::ResourceContainer& c, std::int64_t bytes,
                     rc::MemorySource source) override;

  // Registers a holder of reclaimable memory. Reclaimers are polled in
  // registration order and must outlive the broker's last reclaim (they
  // deregister by the owner tearing them down before the kernel).
  void RegisterReclaimer(rc::MemoryReclaimer* reclaimer);

  void set_auditor(verify::ChargeAuditor* auditor) { auditor_ = auditor; }
  void RegisterMetrics(telemetry::Registry* registry);

  // The space-shared tree registers itself with the manager for container
  // lifecycle; this unhooks it early at kernel teardown.
  void DetachLifecycle() { tree_.DetachLifecycle(); }

  // --- Policy introspection -------------------------------------------
  std::int64_t capacity_bytes() const { return tree_.capacity_bytes(); }
  std::int64_t total_bytes() const { return total_; }
  std::int64_t GuaranteeBytes(const rc::ResourceContainer& c) const {
    return tree_.GuaranteeBytes(c);
  }
  std::int64_t EntitlementBytes(const rc::ResourceContainer& c) const {
    return tree_.EntitlementBytes(c);
  }
  // Bytes registered reclaimers currently hold (evictable upper bound).
  std::int64_t ReclaimableBytes() const;
  std::int64_t BytesForSource(rc::MemorySource source) const {
    return by_source_[static_cast<int>(source)];
  }

  struct Stats {
    std::uint64_t reclaim_invocations = 0;
    std::int64_t reclaimed_bytes = 0;
    std::uint64_t refusals = 0;
  };
  const Stats& stats() const { return stats_; }

 private:
  // capacity − resident − reservations held for *other* top-level tenants'
  // unmet guarantees. Reclaim cannot grow this by raiding a guarantee:
  // victims stop at their entitlement, which never sits below it.
  std::int64_t AvailableFor(const rc::ResourceContainer& c) const;

  // Evicts up to `want` bytes from registered reclaimers, restricted to
  // containers satisfying `victim`. Returns bytes actually freed.
  std::int64_t Reclaim(std::int64_t want, const rc::MemoryReclaimer::VictimFn& victim);

  // Round-1 reclaim: repeatedly evicts from the single most over-entitled
  // subtree (highest resident/entitlement ratio), stopping each pass when
  // that subtree falls back to its entitlement. Worst-offender-first makes
  // sustained contention converge on the share-proportional split instead
  // of the equal split plain LRU order would produce.
  std::int64_t ReclaimOverEntitled(std::int64_t want);

  bool OverEntitled(const rc::ResourceContainer& c) const;
  bool WithinGuarantee(const rc::ResourceContainer& c) const;

  rc::ContainerManager* const manager_;
  sched::ShareTree tree_;  // space-shared: pure policy math, no nodes
  std::vector<rc::MemoryReclaimer*> reclaimers_;
  verify::ChargeAuditor* auditor_ = nullptr;

  std::int64_t total_ = 0;  // resident bytes across every container
  std::int64_t by_source_[rc::kMemorySourceCount] = {0, 0, 0};
  bool in_reclaim_ = false;  // releases during reclaim count as reclaimed
  Stats stats_;
};

}  // namespace kernel

#endif  // SRC_KERNEL_MEMORY_BROKER_H_
