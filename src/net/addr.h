// IPv4-style addressing and the paper's new sockaddr namespace: a listen
// socket binds <local-port> plus a <template-address, CIDR-mask> filter
// (Section 4.8), and incoming connections are assigned to the listen socket
// with the most specific matching filter.
#ifndef SRC_NET_ADDR_H_
#define SRC_NET_ADDR_H_

#include <cstdint>
#include <string>

namespace net {

// IPv4 address, host byte order.
struct Addr {
  std::uint32_t v = 0;

  friend bool operator==(Addr a, Addr b) { return a.v == b.v; }
  friend bool operator!=(Addr a, Addr b) { return a.v != b.v; }
};

// Builds an address from dotted-quad components.
constexpr Addr MakeAddr(unsigned a, unsigned b, unsigned c, unsigned d) {
  return Addr{(static_cast<std::uint32_t>(a) << 24) | (static_cast<std::uint32_t>(b) << 16) |
              (static_cast<std::uint32_t>(c) << 8) | static_cast<std::uint32_t>(d)};
}

std::string AddrToString(Addr a);

struct Endpoint {
  Addr addr;
  std::uint16_t port = 0;

  friend bool operator==(const Endpoint& a, const Endpoint& b) {
    return a.addr == b.addr && a.port == b.port;
  }
};

// <template-address, CIDR-mask> filter (RFC 1518 style), as in Section 4.8.
// `negate` implements the paper's suggested complement filters ("to accept
// connections except from certain clients"): the filter matches addresses
// OUTSIDE the prefix.
struct CidrFilter {
  Addr base;
  int prefix_len = 0;  // 0..32; 0 matches everything
  bool negate = false;

  bool Matches(Addr a) const {
    bool in_prefix = true;
    if (prefix_len > 0) {
      const std::uint32_t mask =
          prefix_len >= 32 ? ~std::uint32_t{0}
                           : ~((std::uint32_t{1} << (32 - prefix_len)) - 1);
      in_prefix = (a.v & mask) == (base.v & mask);
    }
    return negate ? !in_prefix : in_prefix;
  }

  // Demultiplexing specificity: longer prefixes win; a complement filter is
  // less specific than its positive counterpart (it matches "everything
  // but"), so it ranks just above the wildcard.
  int Specificity() const { return negate ? 0 : prefix_len; }

  std::string ToString() const;
};

// The wildcard filter used by a default listen socket.
inline constexpr CidrFilter kMatchAll{Addr{0}, 0};

}  // namespace net

#endif  // SRC_NET_ADDR_H_
