// Engine-throughput microbenchmark: raw event-core dispatch rate on a
// million-client mixed HTTP-like timer workload, timing wheel vs the seed's
// binary-heap ordering (kept as the kHeap reference backend).
//
// Each simulated client always has one live timer (service bursts of
// 100-500 us mixed with 10-200 ms think times) plus one pending timeout
// timer that is canceled and re-armed on every fire — the TCP-retransmit
// pattern that motivates timing wheels: almost every timeout is canceled
// before it expires. Callbacks are trivial, so the measurement isolates the
// queue itself (schedule + cancel + dispatch), not kernel work.
//
// Records simulated-events/sec and wall-clock-per-simulated-second for both
// backends plus their ratio into BENCH_engine.json (--metrics-out).
//
// --check-against=FILE re-reads a committed BENCH_engine.json and fails
// (exit 1) if the wheel-vs-heap speedup regressed more than --tolerance
// (default 10%). The gate compares the *speedup*, not absolute events/sec:
// both sides of the ratio are measured in the same process on the same
// machine, so the check is meaningful on CI runners whose absolute speed
// differs from the machine that committed the baseline. Absolute numbers
// are still recorded for trend plots.
//
// Flags: --clients=N (default 1000000), --events=N (default 4000000),
//        --seed=N, --metrics-out[=FILE], --check-against=FILE,
//        --tolerance=F.
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <functional>
#include <iostream>
#include <memory>
#include <queue>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "src/sim/event_queue.h"
#include "src/sim/rng.h"
#include "src/telemetry/bench_io.h"
#include "src/telemetry/json.h"
#include "src/xp/table.h"

namespace {

struct BenchResult {
  double wall_seconds = 0;
  double events_per_sec = 0;
  double sim_seconds = 0;
  double wall_per_sim_sec = 0;  // wall-clock seconds per simulated second
  std::uint64_t dispatched = 0;
  std::uint64_t canceled = 0;
};

// Line-for-line replica of the event queue this rebuild replaced (see the
// seed commit's src/sim/event_queue.*): a std::priority_queue of entries,
// each carrying a heap-allocated shared_ptr cancel-state. This is the
// baseline the >=3x target is measured against; the in-tree kHeap backend
// keeps the seed's *ordering* but already benefits from the slab, so it is
// reported separately as the ordering-only ablation.
class SeedQueue {
 public:
  class Handle {
   public:
    Handle() = default;
    void Cancel() {
      if (auto s = state_.lock()) {
        s->canceled = true;
      }
    }

   private:
    friend class SeedQueue;
    struct State {
      bool canceled = false;
    };
    explicit Handle(std::weak_ptr<State> state) : state_(std::move(state)) {}
    std::weak_ptr<State> state_;
  };

  Handle Schedule(sim::SimTime when, std::function<void()> fn) {
    auto state = std::make_shared<Handle::State>();
    heap_.push(Entry{when, next_seq_++, std::move(fn), state});
    return Handle(state);
  }

  bool empty() {
    DropCanceledHead();
    return heap_.empty();
  }

  sim::SimTime RunNext() {
    DropCanceledHead();
    heap_.top().state->canceled = true;  // fired => handle reports !pending
    const sim::SimTime when = heap_.top().when;
    std::function<void()> fn = std::move(heap_.top().fn);
    heap_.pop();
    ++dispatched_;
    fn();
    return when;
  }

  std::uint64_t dispatched() const { return dispatched_; }
  std::uint64_t canceled() const { return canceled_; }

 private:
  struct Entry {
    sim::SimTime when;
    std::uint64_t seq;
    mutable std::function<void()> fn;
    std::shared_ptr<Handle::State> state;
  };
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const {
      if (a.when != b.when) {
        return a.when > b.when;
      }
      return a.seq > b.seq;
    }
  };

  void DropCanceledHead() {
    while (!heap_.empty() && heap_.top().state->canceled) {
      heap_.pop();
      ++canceled_;
    }
  }

  std::priority_queue<Entry, std::vector<Entry>, Later> heap_;
  std::uint64_t next_seq_ = 0;
  std::uint64_t dispatched_ = 0;
  std::uint64_t canceled_ = 0;
};

// Adapters so one Workload template drives the rebuilt queue (either
// backend) and the seed replica through the same schedule/cancel/dispatch
// surface.
struct WheelQueue : sim::EventQueue {
  WheelQueue() : sim::EventQueue(sim::EventQueue::Backend::kWheel) {}
};
struct HeapQueue : sim::EventQueue {
  HeapQueue() : sim::EventQueue(sim::EventQueue::Backend::kHeap) {}
};

template <typename Queue>
class Workload {
 public:
  Workload(int clients, std::uint64_t seed)
      : rng_(seed), clients_(static_cast<std::size_t>(clients)) {
    for (std::size_t i = 0; i < clients_.size(); ++i) {
      ArmClient(i, /*now=*/0);
    }
  }

  // Dispatches `total_events` events (timer fires; canceled timeouts do not
  // count) and returns the throughput measurement, including setup.
  BenchResult Run(std::uint64_t total_events, std::chrono::steady_clock::time_point start) {
    while (queue_.dispatched() < total_events && !queue_.empty()) {
      now_ = queue_.RunNext();
    }
    const auto end = std::chrono::steady_clock::now();
    BenchResult r;
    r.wall_seconds = std::chrono::duration<double>(end - start).count();
    r.dispatched = queue_.dispatched();
    r.canceled = queue_.canceled();
    r.events_per_sec = static_cast<double>(r.dispatched) / r.wall_seconds;
    r.sim_seconds = static_cast<double>(now_) / 1e6;
    r.wall_per_sim_sec = r.sim_seconds > 0 ? r.wall_seconds / r.sim_seconds : 0;
    return r;
  }

 private:
  using HandleT = decltype(std::declval<Queue&>().Schedule(0, std::function<void()>()));

  struct Client {
    HandleT timeout;
    sim::SimTime fire_at = 0;  // timestamp of the client's pending timer
  };

  // Mixed HTTP-ish inter-event gap: mostly sub-millisecond service events,
  // a fat tail of think times.
  sim::Duration NextDelay() {
    const std::uint64_t shape = rng_.NextU64() % 100;
    if (shape < 70) {
      return static_cast<sim::Duration>(100 + rng_.NextU64() % 400);  // 100-500 us
    }
    return static_cast<sim::Duration>(10'000 + rng_.NextU64() % 190'000);  // 10-200 ms
  }

  void ArmClient(std::size_t i, sim::SimTime now) {
    // Re-arm the timeout first: cancel the one from the previous round (the
    // common case — it never fires) and schedule a fresh one.
    Client& c = clients_[i];
    c.timeout.Cancel();
    c.timeout = queue_.Schedule(now + 30'000, [] {});  // 30 ms "retransmit" timer
    c.fire_at = now + NextDelay();
    queue_.Schedule(c.fire_at, [this, i] { ArmClient(i, clients_[i].fire_at); });
  }

  Queue queue_;
  sim::Rng rng_;
  sim::SimTime now_ = 0;
  std::vector<Client> clients_;
};

template <typename Queue>
BenchResult RunBackend(int clients, std::uint64_t total_events, std::uint64_t seed) {
  const auto start = std::chrono::steady_clock::now();
  Workload<Queue> w(clients, seed);
  return w.Run(total_events, start);
}

// Returns the value of `metric` for the entry whose config starts with
// `config_prefix`, or -1 when absent.
double BaselineValue(const telemetry::JsonValue& doc, const std::string& metric,
                     const std::string& config_prefix) {
  if (!doc.is_array()) {
    return -1;
  }
  for (const telemetry::JsonValue& e : doc.array) {
    if (e.StringOr("metric", "") == metric &&
        e.StringOr("config", "").rfind(config_prefix, 0) == 0) {
      return e.NumberOr("value", -1);
    }
  }
  return -1;
}

}  // namespace

int main(int argc, char** argv) {
  telemetry::BenchReport report("engine", argc, argv);

  int clients = 1'000'000;
  std::uint64_t events = 4'000'000;
  std::uint64_t seed = 42;
  std::string check_against;
  double tolerance = 0.10;
  for (int i = 1; i < argc; ++i) {
    const char* a = argv[i];
    if (std::strncmp(a, "--clients=", 10) == 0) {
      clients = std::atoi(a + 10);
    } else if (std::strncmp(a, "--events=", 9) == 0) {
      events = static_cast<std::uint64_t>(std::atoll(a + 9));
    } else if (std::strncmp(a, "--seed=", 7) == 0) {
      seed = static_cast<std::uint64_t>(std::atoll(a + 7));
    } else if (std::strncmp(a, "--check-against=", 16) == 0) {
      check_against = a + 16;
    } else if (std::strncmp(a, "--tolerance=", 12) == 0) {
      tolerance = std::atof(a + 12);
    }
  }

  std::printf("=== engine throughput: %d clients, %llu events ===\n\n", clients,
              static_cast<unsigned long long>(events));

  const std::string cfg =
      "clients=" + std::to_string(clients) + ",events=" + std::to_string(events);
  const BenchResult seedq = RunBackend<SeedQueue>(clients, events, seed);
  const BenchResult heap = RunBackend<HeapQueue>(clients, events, seed);
  const BenchResult wheel = RunBackend<WheelQueue>(clients, events, seed);
  // Identical seed => identical workloads; the backends must agree on what
  // they simulated or the comparison is meaningless.
  if (wheel.dispatched != heap.dispatched || wheel.canceled != heap.canceled ||
      seedq.dispatched != wheel.dispatched) {
    std::fprintf(stderr, "backend divergence: wheel %llu/%llu heap %llu/%llu seed %llu\n",
                 static_cast<unsigned long long>(wheel.dispatched),
                 static_cast<unsigned long long>(wheel.canceled),
                 static_cast<unsigned long long>(heap.dispatched),
                 static_cast<unsigned long long>(heap.canceled),
                 static_cast<unsigned long long>(seedq.dispatched));
    return 1;
  }
  const double speedup = wheel.events_per_sec / seedq.events_per_sec;
  const double ablation = wheel.events_per_sec / heap.events_per_sec;

  xp::Table table({"backend", "events/s", "wall s", "sim s", "wall/sim-s"});
  auto row = [&](const char* name, const BenchResult& r) {
    table.AddRow({name, xp::FormatDouble(r.events_per_sec, 0),
                  xp::FormatDouble(r.wall_seconds, 2), xp::FormatDouble(r.sim_seconds, 2),
                  xp::FormatDouble(r.wall_per_sim_sec, 3)});
  };
  row("seed (shared_ptr heap)", seedq);
  row("heap ordering + slab", heap);
  row("timing wheel", wheel);
  table.Print(std::cout);
  std::printf("speedup (wheel vs seed): %.2fx  [target >= 3x]\n", speedup);
  std::printf("speedup (wheel vs slab heap): %.2fx\n", ablation);

  report.Add("events_per_sec", wheel.events_per_sec, "events/s", "wheel," + cfg);
  report.Add("wall_per_sim_sec", wheel.wall_per_sim_sec, "s/sim-s", "wheel," + cfg);
  report.Add("events_per_sec", heap.events_per_sec, "events/s", "heap," + cfg);
  report.Add("wall_per_sim_sec", heap.wall_per_sim_sec, "s/sim-s", "heap," + cfg);
  report.Add("events_per_sec", seedq.events_per_sec, "events/s", "seed," + cfg);
  report.Add("wall_per_sim_sec", seedq.wall_per_sim_sec, "s/sim-s", "seed," + cfg);
  report.Add("speedup", speedup, "ratio", "wheel-vs-seed," + cfg);
  report.Add("speedup", ablation, "ratio", "wheel-vs-heap," + cfg);
  if (!report.Flush()) {
    std::fprintf(stderr, "failed to write %s\n", report.path().c_str());
    return 1;
  }

  if (!check_against.empty()) {
    std::ifstream in(check_against);
    if (!in) {
      std::fprintf(stderr, "--check-against: cannot read %s\n", check_against.c_str());
      return 1;
    }
    std::ostringstream buf;
    buf << in.rdbuf();
    const auto doc = telemetry::ParseJson(buf.str());
    if (!doc.has_value()) {
      std::fprintf(stderr, "--check-against: %s is not valid JSON\n",
                   check_against.c_str());
      return 1;
    }
    const double base = BaselineValue(*doc, "speedup", "wheel-vs-seed");
    if (base <= 0) {
      std::fprintf(stderr, "--check-against: no wheel-vs-seed speedup in %s\n",
                   check_against.c_str());
      return 1;
    }
    const double floor = base * (1.0 - tolerance);
    std::printf("baseline speedup %.2fx, floor %.2fx (tolerance %.0f%%): %s\n", base,
                floor, tolerance * 100, speedup >= floor ? "OK" : "REGRESSED");
    if (speedup < floor) {
      return 1;
    }
  }
  return 0;
}
