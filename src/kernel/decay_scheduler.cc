#include "src/kernel/decay_scheduler.h"

#include <algorithm>

#include "src/common/check.h"
#include "src/kernel/thread.h"

namespace kernel {

void DecayUsageScheduler::Enqueue(Thread* t, sim::SimTime /*now*/) {
  RC_CHECK_EQ(t->sched_cookie, nullptr);
  t->sched_cookie = this;
  run_queue_.push_back(t);
}

double DecayUsageScheduler::UsageOf(const Thread* t) const {
  const rc::ContainerRef& principal = t->binding().resource_binding();
  RC_CHECK_NE(principal, nullptr);
  auto it = usage_.find(principal->id());
  return it == usage_.end() ? 0.0 : it->second;
}

Thread* DecayUsageScheduler::PickNext(sim::SimTime /*now*/) {
  if (run_queue_.empty()) {
    return nullptr;
  }
  // Lowest decayed usage wins; FIFO among equals (strict < keeps the first).
  auto best = run_queue_.begin();
  double best_usage = UsageOf(*best);
  for (auto it = std::next(run_queue_.begin()); it != run_queue_.end(); ++it) {
    const double u = UsageOf(*it);
    if (u < best_usage) {
      best = it;
      best_usage = u;
    }
  }
  Thread* t = *best;
  run_queue_.erase(best);
  t->sched_cookie = nullptr;
  return t;
}

void DecayUsageScheduler::OnCharge(rc::ResourceContainer& c, sim::Duration usec,
                                   sim::SimTime /*now*/) {
  usage_[c.id()] += static_cast<double>(usec);
}

bool DecayUsageScheduler::ShouldPreempt(const Thread& running) const {
  const double running_usage = UsageOf(&running);
  for (const Thread* t : run_queue_) {
    if (UsageOf(t) < running_usage) {
      return true;
    }
  }
  return false;
}

void DecayUsageScheduler::MigrateQueued(Thread* /*t*/, sim::SimTime /*now*/) {
  // Single global run queue; the principal is re-read at pick time.
}

void DecayUsageScheduler::Remove(Thread* t) {
  if (t->sched_cookie == nullptr) {
    return;
  }
  run_queue_.erase(std::remove(run_queue_.begin(), run_queue_.end(), t), run_queue_.end());
  t->sched_cookie = nullptr;
}

void DecayUsageScheduler::Tick(sim::SimTime /*now*/) {
  for (auto& [id, u] : usage_) {
    u *= decay_;
  }
}

std::optional<sim::SimTime> DecayUsageScheduler::NextEligibleTime(sim::SimTime /*now*/) {
  return std::nullopt;  // no throttling in the classic policy
}

void DecayUsageScheduler::OnContainerDestroyed(rc::ResourceContainer& c) {
  usage_.erase(c.id());
}

double DecayUsageScheduler::DecayedUsage(const rc::ResourceContainer& c) const {
  auto it = usage_.find(c.id());
  return it == usage_.end() ? 0.0 : it->second;
}

}  // namespace kernel
