#include "src/verify/lockset.h"

#include <algorithm>

namespace verify {

namespace {

// Id of the implicit kernel-context lock (see header). Real locks get ids
// from 1 up, in first-acquisition order.
constexpr RaceDetector::LockId kKernelLockId = 0;

}  // namespace

RaceDetector::LockId RaceDetector::IdFor(const void* lock) {
  auto [it, inserted] =
      lock_ids_.emplace(lock, static_cast<LockId>(lock_names_.size() + 1));
  if (inserted) {
    lock_names_.emplace_back();
  }
  return it->second;
}

void RaceDetector::OnAcquire(std::uint64_t tid, const void* lock,
                             const char* name) {
  const LockId id = IdFor(lock);
  held_[tid].insert(id);
  std::string& stored = lock_names_[id - 1];
  if (stored.empty()) {
    stored = name;
  }
}

void RaceDetector::OnRelease(std::uint64_t tid, const void* lock) {
  auto ids = lock_ids_.find(lock);
  if (ids == lock_ids_.end()) {
    return;  // never acquired: releasing is a no-op
  }
  auto it = held_.find(tid);
  if (it != held_.end()) {
    it->second.erase(ids->second);  // releasing an unheld lock is a no-op
  }
}

std::set<RaceDetector::LockId> RaceDetector::CurrentLocks() const {
  std::set<LockId> locks;
  auto it = held_.find(current_);
  if (it != held_.end()) {
    locks = it->second;
  }
  if (current_ == kKernelContext) {
    locks.insert(kKernelLockId);
  }
  return locks;
}

void RaceDetector::OnAccess(const void* addr, const char* name, bool is_write) {
  ++access_count_;
  VarState& var = vars_[addr];
  if (var.name.empty()) {
    var.name = name;
  }
  switch (var.phase) {
    case Phase::kVirgin:
      var.phase = Phase::kExclusive;
      var.owner = current_;
      return;
    case Phase::kExclusive:
      if (current_ == var.owner) {
        return;  // still single-threaded: no refinement yet
      }
      // Second thread: initialize the candidate lockset from its held locks
      // and leave the exclusive phase.
      var.lockset = CurrentLocks();
      var.last_other = current_;
      var.phase = is_write ? Phase::kSharedModified : Phase::kShared;
      MaybeReport(var, is_write);
      return;
    case Phase::kShared:
    case Phase::kSharedModified: {
      const std::set<LockId> locks = CurrentLocks();
      std::set<LockId> refined;
      std::set_intersection(var.lockset.begin(), var.lockset.end(),
                            locks.begin(), locks.end(),
                            std::inserter(refined, refined.begin()));
      var.lockset = std::move(refined);
      if (current_ != var.owner) {
        var.last_other = current_;
      }
      if (is_write) {
        var.phase = Phase::kSharedModified;
      }
      MaybeReport(var, is_write);
      return;
    }
  }
}

void RaceDetector::MaybeReport(VarState& var, bool is_write) {
  if (var.phase != Phase::kSharedModified || !var.lockset.empty() ||
      var.reported) {
    return;
  }
  var.reported = true;
  Report r;
  r.variable = var.name;
  r.first_thread = var.owner;
  r.second_thread = var.last_other;
  r.on_write = is_write;
  r.what = "race: '" + var.name + "' accessed by thread " +
           std::to_string(var.owner) + " and thread " +
           std::to_string(var.last_other) +
           " with no common lock (candidate lockset empty on a " +
           (is_write ? "write" : "read") + ")";
  reports_.push_back(std::move(r));
}

}  // namespace verify
