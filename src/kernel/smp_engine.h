// The simulated multiprocessor: N CpuEngines plus interrupt steering.
//
// Each engine runs the single-CPU state machine unchanged; the SmpEngine
// decides which CPU takes a device interrupt (and, in softint mode, the
// protocol processing that follows it), aggregates machine-wide accounting,
// and fans wake-up pokes out to every CPU. With cpus = 1 it degenerates to
// exactly the paper's uniprocessor: one engine, all interrupts on CPU 0.
#ifndef SRC_KERNEL_SMP_ENGINE_H_
#define SRC_KERNEL_SMP_ENGINE_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "src/kernel/cpu_engine.h"
#include "src/net/packet.h"

namespace kernel {

// Where device interrupts (and the softint/LRP work queued behind them) run.
enum class IrqSteering {
  kFixed,       // everything on CPU 0 (classic single-NIC wiring)
  kRoundRobin,  // arrivals rotate across CPUs
  kFlowHash,    // net::FlowHash(packet) % cpus — per-connection CPU locality
};

class SmpEngine {
 public:
  SmpEngine(sim::Simulator* simulator, Kernel* kernel, const CostModel* costs,
            int cpus, IrqSteering steering);

  int cpus() const { return static_cast<int>(engines_.size()); }
  CpuEngine& engine(int cpu) { return *engines_[static_cast<std::size_t>(cpu)]; }
  const CpuEngine& engine(int cpu) const {
    return *engines_[static_cast<std::size_t>(cpu)];
  }

  IrqSteering steering() const { return steering_; }

  // The CPU that takes `p`'s device interrupt under the steering policy.
  CpuEngine& SteerFor(const net::Packet& p);

  // Something became runnable somewhere: give every idle CPU a chance to
  // dispatch (deterministic order, CPU 0 first).
  void PokeAll();

  // --- Machine-wide accounting (sums over all CPUs) ------------------------
  sim::Duration busy_usec() const;
  sim::Duration interrupt_usec() const;
  sim::Duration context_switch_usec() const;
  sim::Duration idle_usec() const;

 private:
  std::vector<std::unique_ptr<CpuEngine>> engines_;
  const IrqSteering steering_;
  std::uint64_t rr_next_ = 0;
};

}  // namespace kernel

#endif  // SRC_KERNEL_SMP_ENGINE_H_
