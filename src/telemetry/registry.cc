#include "src/telemetry/registry.h"

#include "src/common/check.h"
#include "src/telemetry/json.h"

namespace telemetry {

const char* MetricKindName(MetricKind kind) {
  switch (kind) {
    case MetricKind::kCounter:
      return "counter";
    case MetricKind::kGauge:
      return "gauge";
    case MetricKind::kHistogram:
      return "histogram";
    case MetricKind::kProbe:
      return "probe";
  }
  return "?";
}

template <typename T>
T* Registry::GetTyped(std::string_view name, std::string_view unit, MetricKind kind) {
  auto it = metrics_.find(name);
  if (it != metrics_.end()) {
    RC_CHECK(it->second->kind() == kind);
    return static_cast<T*>(it->second.get());
  }
  ++total_allocations_;
  auto metric = std::unique_ptr<T>(
      new T(&enabled_, std::string(name), std::string(unit)));
  T* raw = metric.get();
  metrics_.emplace(std::string(name), std::move(metric));
  return raw;
}

Counter* Registry::GetCounter(std::string_view name, std::string_view unit) {
  return GetTyped<Counter>(name, unit, MetricKind::kCounter);
}

Gauge* Registry::GetGauge(std::string_view name, std::string_view unit) {
  return GetTyped<Gauge>(name, unit, MetricKind::kGauge);
}

Histogram* Registry::GetHistogram(std::string_view name, std::string_view unit) {
  return GetTyped<Histogram>(name, unit, MetricKind::kHistogram);
}

void Registry::AddProbe(std::string_view name, std::string_view unit,
                        std::function<double()> fn) {
  auto it = metrics_.find(name);
  if (it != metrics_.end()) {
    RC_CHECK(it->second->kind() == MetricKind::kProbe);
    static_cast<Probe&>(*it->second) =
        Probe(&enabled_, std::string(name), std::string(unit), std::move(fn));
    return;
  }
  ++total_allocations_;
  metrics_.emplace(std::string(name),
                   std::unique_ptr<Metric>(new Probe(&enabled_, std::string(name),
                                                     std::string(unit), std::move(fn))));
}

const Metric* Registry::Find(std::string_view name) const {
  auto it = metrics_.find(name);
  return it == metrics_.end() ? nullptr : it->second.get();
}

namespace {

double ScalarOf(const Metric& m) {
  switch (m.kind()) {
    case MetricKind::kCounter:
      return static_cast<double>(static_cast<const Counter&>(m).value());
    case MetricKind::kGauge:
      return static_cast<const Gauge&>(m).value();
    case MetricKind::kHistogram:
      return static_cast<const Histogram&>(m).mean();
    case MetricKind::kProbe:
      return static_cast<const Probe&>(m).value();
  }
  return 0.0;
}

}  // namespace

double Registry::Value(std::string_view name) const {
  const Metric* m = Find(name);
  return m == nullptr ? 0.0 : ScalarOf(*m);
}

std::vector<Registry::Row> Registry::Snapshot() const {
  std::vector<Row> rows;
  rows.reserve(metrics_.size());
  for (const auto& [name, metric] : metrics_) {
    Row row;
    row.name = name;
    row.unit = metric->unit();
    row.kind = metric->kind();
    row.value = ScalarOf(*metric);
    if (metric->kind() == MetricKind::kHistogram) {
      const auto& h = static_cast<const Histogram&>(*metric);
      row.count = h.count();
      row.p50 = h.Percentile(50.0);
      row.p95 = h.Percentile(95.0);
      row.p99 = h.Percentile(99.0);
    }
    rows.push_back(std::move(row));
  }
  return rows;
}

void Registry::WriteJsonLines(std::ostream& os, sim::SimTime at) const {
  // 15 significant digits: integer-valued counters survive the round trip.
  const auto old_precision = os.precision(15);
  for (const Row& row : Snapshot()) {
    os << "{\"at\":" << at << ",\"name\":\"" << EscapeJson(row.name)
       << "\",\"kind\":\"" << MetricKindName(row.kind) << "\",\"unit\":\""
       << EscapeJson(row.unit) << "\",\"value\":" << row.value;
    if (row.kind == MetricKind::kHistogram) {
      os << ",\"count\":" << row.count << ",\"p50\":" << row.p50
         << ",\"p95\":" << row.p95 << ",\"p99\":" << row.p99;
    }
    os << "}\n";
  }
  os.precision(old_precision);
}

}  // namespace telemetry
