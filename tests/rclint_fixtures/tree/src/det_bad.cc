// Determinism fixture: every construct below must fire in src/.
#include <cstdlib>
#include <ctime>
#include <map>
#include <random>
#include <set>

struct Conn {};

int DetBad() {
  std::random_device rd;                       // nondeterministic entropy
  int r = rand();                              // libc PRNG, unseeded state
  std::srand(42);                              // libc PRNG seeding
  long t = time(nullptr);                      // wall clock
  auto now = std::chrono::system_clock::now(); // wall clock
  auto tick = std::chrono::steady_clock::now(); // host-monotonic clock
  const char* env = std::getenv("SEED");       // environment-derived input
  std::map<Conn*, int> by_conn;                // pointer-keyed iteration order
  std::set<const Conn*> conns;                 // pointer-keyed iteration order
  (void)rd;
  (void)r;
  (void)t;
  (void)now;
  (void)tick;
  (void)env;
  (void)by_conn;
  (void)conns;
  return 0;
}
