// Per-process descriptor table. Containers are "visible to the application
// as file descriptors" (Section 4.6) and share the descriptor space with
// sockets, exactly as the prototype grafted them onto the UNIX fd space.
#ifndef SRC_KERNEL_FD_TABLE_H_
#define SRC_KERNEL_FD_TABLE_H_

#include <variant>
#include <vector>

#include "src/common/expected.h"
#include "src/net/socket.h"
#include "src/rc/container.h"

namespace kernel {

using FdEntry = std::variant<std::monostate, rc::ContainerRef, net::ListenRef, net::ConnRef>;

class FdTable {
 public:
  // Installs an entry at the lowest free descriptor (classic UNIX rule).
  int Install(FdEntry entry);

  bool IsValid(int fd) const {
    return fd >= 0 && fd < static_cast<int>(entries_.size()) &&
           !std::holds_alternative<std::monostate>(entries_[static_cast<std::size_t>(fd)]);
  }

  // Typed accessors; default-constructed (null) result when the descriptor
  // is absent or of a different type.
  template <typename T>
  T Get(int fd) const {
    if (!IsValid(fd)) {
      return nullptr;
    }
    const auto* p = std::get_if<T>(&entries_[static_cast<std::size_t>(fd)]);
    return p ? *p : nullptr;
  }

  const FdEntry* GetEntry(int fd) const {
    return IsValid(fd) ? &entries_[static_cast<std::size_t>(fd)] : nullptr;
  }

  // Removes the entry, returning it so the caller can run type-specific
  // teardown (socket close, container release).
  rccommon::Expected<FdEntry> Remove(int fd);

  int open_count() const;
  int capacity() const { return static_cast<int>(entries_.size()); }

 private:
  std::vector<FdEntry> entries_;
};

}  // namespace kernel

#endif  // SRC_KERNEL_FD_TABLE_H_
