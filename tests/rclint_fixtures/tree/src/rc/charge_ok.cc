// Charging fixture, negative case: byte-for-byte the same mutations as
// src/net/charge_bad.cc, but src/rc/ is a charging choke point — the one
// place the books may be written directly.
struct Usage {
  long cpu_user_usec = 0;
  long bytes_sent = 0;
};

struct Container {
  Usage usage;
};

void ChargeOk(Container* c, long usec, long bytes) {
  c->usage.cpu_user_usec += usec;
  c->usage.bytes_sent = bytes;
}
