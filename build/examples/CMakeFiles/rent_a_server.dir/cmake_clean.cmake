file(REMOVE_RECURSE
  "CMakeFiles/rent_a_server.dir/rent_a_server.cpp.o"
  "CMakeFiles/rent_a_server.dir/rent_a_server.cpp.o.d"
  "rent_a_server"
  "rent_a_server.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rent_a_server.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
