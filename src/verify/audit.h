// Charge-conservation auditor.
//
// The paper's contribution rests on accounting correctness: every microsecond
// a CPU is busy must be charged to exactly one place — a resource container,
// machine interrupt overhead, or context-switch overhead — and per-container
// charges must add up across the hierarchy, including usage retired into a
// parent when a container is destroyed. The auditor observes every charging
// event through hooks in the kernel's charge paths and keeps independent
// tallies; Check() then compares those tallies against the kernel's own
// accounting and reports any microsecond that was lost or double-charged.
//
// The same conservation argument applies to the scheduled devices: every
// microsecond the disk or the transmit link is busy must be charged to the
// container whose request occupied it (or explicitly recorded as unowned),
// per-container device charges must match the containers' usage records, and
// busy + idle must equal wallclock per device. OnDeviceWork/OnResourceCharge
// feed those tallies; Check() takes per-device samples next to the CPU ones.
//
// The auditor is opt-in (attach it with kernel::Kernel::AttachAuditor before
// any simulated work runs) and costs the charge path one null check when
// detached. It must outlive the kernel it observes: container-destroy
// notifications fire during kernel teardown.
#ifndef SRC_VERIFY_AUDIT_H_
#define SRC_VERIFY_AUDIT_H_

#include <array>
#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/rc/container.h"
#include "src/rc/lifecycle.h"
#include "src/rc/manager.h"
#include "src/rc/usage.h"
#include "src/sim/time.h"

namespace telemetry {
class Registry;
class Counter;
}  // namespace telemetry

namespace verify {

// Test-only fault injection: perturbs the next container charge so tests can
// prove the auditor actually catches accounting bugs.
enum class AuditFault {
  kNone,
  kDropCharge,       // the container never receives the charge
  kDuplicateCharge,  // the container receives the charge twice
};

class ChargeAuditor : public rc::LifecycleListener {
 public:
  ChargeAuditor() = default;

  // Mirrors container destruction (usage retires into the parent) so the
  // audit tallies follow the same lifecycle as the kernel's accounting.
  // Called once by Kernel::AttachAuditor.
  void ObserveHierarchy(rc::ContainerManager* manager);

  // rc::LifecycleListener: retires the dying container's tallies into its
  // parent, mirroring ~ResourceContainer.
  void OnContainerDestroyed(rc::ResourceContainer& c) override;

  // --- Observation hooks (kernel charge paths) ---------------------------

  // Kernel::ChargeCpu is about to charge `usec` to `c`. Records the intended
  // charge; the kernel separately applies it (unless a fault is injected).
  void OnCharge(const rc::ResourceContainer& c, sim::Duration usec);

  // A device engine (or the kernel CPU path, kind == kCpu) is about to
  // charge `usec` of `kind` to `c`.
  void OnResourceCharge(rc::ResourceKind kind, const rc::ResourceContainer& c,
                        sim::Duration usec);

  // A CPU engine consumed a thread slice: `overhead` microseconds of
  // context-switch cost plus `work` microseconds charged to a container.
  void OnSlice(int cpu, sim::Duration overhead, sim::Duration work);

  // A CPU engine consumed interrupt work; `charged` says whether the cost
  // was charged to a container (early-demux modes) or counted as machine
  // interrupt overhead.
  void OnInterrupt(int cpu, sim::Duration cost, bool charged);

  // A scheduled device (disk, link) was busy for `busy` microseconds
  // servicing one request; `charged` says whether that time was charged to a
  // container or the request was unowned.
  void OnDeviceWork(rc::ResourceKind kind, sim::Duration busy, bool charged);

  // The memory broker committed a resident-byte charge to / release from `c`.
  // Memory is space-shared, so the auditor keeps *occupancy* tallies (bytes
  // currently held) rather than cumulative time, per container and per
  // rc::MemorySource; Check() proves they equal the kernel's usage records,
  // the broker's running total, and what the kernel objects actually hold.
  void OnMemoryCharge(const rc::ResourceContainer& c, std::int64_t bytes,
                      rc::MemorySource source);
  void OnMemoryRelease(const rc::ResourceContainer& c, std::int64_t bytes,
                       rc::MemorySource source);

  // --- Fault injection (tests only) --------------------------------------

  void InjectFault(AuditFault fault) { fault_ = fault; }
  // Consumes the pending fault (applies to exactly one charge).
  AuditFault TakeFault();

  // --- Checking -----------------------------------------------------------

  // Per-CPU accounting snapshot, provided by the kernel (Kernel::AuditCheck).
  struct CpuSample {
    int cpu = 0;
    sim::Duration busy = 0;
    sim::Duration idle = 0;
    sim::Duration wallclock = 0;  // now - engine creation time
  };

  // Per-device accounting snapshot (disk, transmit link).
  struct DeviceSample {
    rc::ResourceKind kind = rc::ResourceKind::kDisk;
    sim::Duration busy = 0;
    sim::Duration idle = 0;
    sim::Duration wallclock = 0;  // now - device creation time
  };

  // Resident-memory snapshot (memory broker + the kernel objects holding
  // bytes), provided by Kernel::AuditCheck.
  struct MemorySample {
    std::int64_t broker_resident = 0;   // MemoryBroker::total_bytes()
    std::int64_t cache_resident = 0;    // Σ registered reclaimers' charged bytes
    std::int64_t connection_bytes = 0;  // net::Stack connection memory
  };

  // Runs every conservation invariant; returns one human-readable diagnostic
  // per violation (empty == clean). Diagnostics name the CPU, device, or
  // container (id and name) involved and both sides of the failed equality.
  std::vector<std::string> Check(const std::vector<CpuSample>& cpus) const {
    return Check(cpus, {});
  }
  std::vector<std::string> Check(const std::vector<CpuSample>& cpus,
                                 const std::vector<DeviceSample>& devices) const {
    return Check(cpus, devices, nullptr);
  }
  std::vector<std::string> Check(const std::vector<CpuSample>& cpus,
                                 const std::vector<DeviceSample>& devices,
                                 const MemorySample* memory) const;

  // --- Introspection / telemetry ------------------------------------------

  std::uint64_t charge_events() const { return charge_events_; }
  sim::Duration charged_usec() const { return charged_total_; }
  std::uint64_t faults_injected() const { return faults_injected_; }

  // Exports audit counters (audit.charge_events, audit.charged_usec,
  // audit.faults_injected) into `registry` on every future observation.
  void AttachTelemetry(telemetry::Registry* registry);

 private:
  struct ContainerTally {
    // Charges observed per resource kind, and tallies folded in from
    // destroyed children, indexed by rc::ResourceKind.
    std::array<sim::Duration, rc::kResourceKindCount> direct{};
    std::array<sim::Duration, rc::kResourceKindCount> retired{};
    // Resident bytes currently held (occupancy, not cumulative), and bytes
    // destroyed children still held when they retired into this container.
    std::int64_t resident = 0;
    std::int64_t retired_resident = 0;
    std::string name;  // for diagnostics after destruction
  };

  struct CpuTally {
    sim::Duration busy = 0;      // every busy accrual observed
    sim::Duration overhead = 0;  // context-switch share
    sim::Duration irq = 0;       // uncharged machine interrupt overhead
    sim::Duration charged = 0;   // work + charged interrupt cost
  };

  struct DeviceTally {
    sim::Duration busy = 0;      // every service interval observed
    sim::Duration charged = 0;   // intervals charged to a container
    sim::Duration unowned = 0;   // intervals with no owning container
  };

  CpuTally& CpuAt(int cpu);
  static std::size_t KindIndex(rc::ResourceKind kind) {
    return static_cast<std::size_t>(kind);
  }

  rc::ContainerManager* manager_ = nullptr;

  std::unordered_map<rc::ContainerId, ContainerTally> tallies_;
  std::vector<CpuTally> cpus_;
  std::array<DeviceTally, rc::kResourceKindCount> devices_{};

  std::uint64_t charge_events_ = 0;
  sim::Duration charged_total_ = 0;        // Σ OnCharge (kernel CPU charge path)
  sim::Duration engine_charged_total_ = 0;  // Σ engine-side charged usec
  // Σ device charges that reached a container, per kind (container side).
  std::array<sim::Duration, rc::kResourceKindCount> device_charged_total_{};

  // Resident-byte occupancy, machine-wide and split by memory source.
  std::int64_t mem_resident_total_ = 0;
  std::array<std::int64_t, rc::kMemorySourceCount> mem_by_source_{};

  AuditFault fault_ = AuditFault::kNone;
  std::uint64_t faults_injected_ = 0;

  telemetry::Counter* charge_counter_ = nullptr;
  telemetry::Counter* usec_counter_ = nullptr;
  telemetry::Counter* fault_counter_ = nullptr;
};

}  // namespace verify

#endif  // SRC_VERIFY_AUDIT_H_
