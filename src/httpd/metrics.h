// Telemetry registration shared by the three server architectures: they all
// expose the same ServerStats counters (plus the file cache), so one helper
// installs the httpd.* probes regardless of which server model is running.
#ifndef SRC_HTTPD_METRICS_H_
#define SRC_HTTPD_METRICS_H_

#include "src/httpd/file_cache.h"
#include "src/httpd/server_config.h"

namespace telemetry {
class Registry;
}

namespace httpd {

// Installs pull-based probes for `stats` (httpd.*) and, when non-null,
// `cache` (httpd.cache.*). Both pointers must outlive reads of the registry.
void RegisterServerMetrics(telemetry::Registry& registry, const ServerStats* stats,
                           const FileCache* cache);

}  // namespace httpd

#endif  // SRC_HTTPD_METRICS_H_
