#include "src/kernel/memory_broker.h"

#include <algorithm>
#include <limits>

#include "src/common/check.h"
#include "src/telemetry/registry.h"
#include "src/verify/audit.h"

namespace kernel {

using rccommon::Errc;
using rccommon::Expected;
using rccommon::MakeUnexpected;

namespace {

sched::ShareTreeOptions SpaceOptions(std::int64_t capacity_bytes) {
  sched::ShareTreeOptions options;
  options.resource = rc::ResourceKind::kMemory;
  options.space_shared = true;
  options.capacity_bytes = capacity_bytes;
  return options;
}

}  // namespace

MemoryBroker::MemoryBroker(rc::ContainerManager* manager,
                           std::int64_t capacity_bytes)
    : manager_(manager), tree_(manager, SpaceOptions(capacity_bytes)) {
  manager_->set_memory_arbiter(this);
}

MemoryBroker::~MemoryBroker() {
  if (manager_->memory_arbiter() == this) {
    manager_->set_memory_arbiter(nullptr);
  }
}

void MemoryBroker::RegisterReclaimer(rc::MemoryReclaimer* reclaimer) {
  RC_CHECK_NE(reclaimer, nullptr);
  reclaimers_.push_back(reclaimer);
}

std::int64_t MemoryBroker::ReclaimableBytes() const {
  std::int64_t sum = 0;
  for (const rc::MemoryReclaimer* r : reclaimers_) {
    sum += r->ReclaimableBytes();
  }
  return sum;
}

bool MemoryBroker::OverEntitled(const rc::ResourceContainer& c) const {
  // A container is a first-round reclaim victim when its subtree — or any
  // enclosing subtree — holds more than its demand-weighted entitlement.
  for (const rc::ResourceContainer* p = &c; p->parent() != nullptr;
       p = p->parent()) {
    if (p->subtree_memory_bytes() > tree_.EntitlementBytes(*p)) {
      return true;
    }
  }
  return false;
}

bool MemoryBroker::WithinGuarantee(const rc::ResourceContainer& c) const {
  // Protected from the second round when some self-or-ancestor holds a
  // positive guarantee that still covers its resident bytes.
  for (const rc::ResourceContainer* p = &c; p->parent() != nullptr;
       p = p->parent()) {
    const std::int64_t g = tree_.GuaranteeBytes(*p);
    if (g > 0 && p->subtree_memory_bytes() <= g) {
      return true;
    }
  }
  return false;
}

std::int64_t MemoryBroker::AvailableFor(const rc::ResourceContainer& c) const {
  const std::int64_t capacity = tree_.capacity_bytes();
  // The charger's top-level ancestor draws on its own reservation freely;
  // every *other* top-level tenant's unmet guarantee is held back from it.
  const rc::ResourceContainer* top = &c;
  while (top->parent() != nullptr && !top->parent()->is_root()) {
    top = top->parent();
  }
  std::int64_t reserved = 0;
  manager_->root()->ForEachChild([&](rc::ResourceContainer& tenant) {
    if (&tenant == top) {
      return;
    }
    reserved += std::max<std::int64_t>(
        0, tree_.GuaranteeBytes(tenant) - tenant.subtree_memory_bytes());
  });
  return capacity - total_ - reserved;
}

std::int64_t MemoryBroker::Reclaim(std::int64_t want,
                                   const rc::MemoryReclaimer::VictimFn& victim) {
  ++stats_.reclaim_invocations;
  in_reclaim_ = true;
  std::int64_t freed = 0;
  for (rc::MemoryReclaimer* r : reclaimers_) {
    if (freed >= want) {
      break;
    }
    freed += r->ReclaimMemory(want - freed, victim);
  }
  in_reclaim_ = false;
  return freed;
}

std::int64_t MemoryBroker::ReclaimOverEntitled(std::int64_t want) {
  std::int64_t freed = 0;
  // Subtrees that yielded nothing this round (their bytes are outside every
  // reclaimer) are skipped when picking the next worst offender. Candidates
  // are the top-level tenants: round 1 arbitrates machine capacity between
  // them (matching AvailableFor's reservation granularity), and scanning
  // only the root's children keeps a reclaim pass cheap no matter how many
  // per-connection containers are live inside the tenants.
  std::vector<const rc::ResourceContainer*> barren;
  while (freed < want) {
    const rc::ResourceContainer* worst = nullptr;
    std::int64_t worst_ent = 0;
    double worst_ratio = 1.0;  // only strictly over-entitled subtrees qualify
    tree_.ForEachOccupyingTopLevel([&](rc::ResourceContainer& t,
                                       std::int64_t held, std::int64_t ent) {
      if (held <= ent) {
        return;
      }
      if (std::find(barren.begin(), barren.end(), &t) != barren.end()) {
        return;
      }
      const double ratio = ent > 0 ? static_cast<double>(held) / static_cast<double>(ent)
                                   : std::numeric_limits<double>::infinity();
      if (worst == nullptr || ratio > worst_ratio) {
        worst_ratio = ratio;
        worst = &t;
        worst_ent = ent;
      }
    });
    if (worst == nullptr) {
      break;
    }
    // The predicate stops the pass the moment `worst` is back inside its
    // entitlement, so reclaim never digs a victim below it. Only `worst`'s
    // subtree loses bytes during the pass, so every sibling's occupancy — and
    // with it `worst`'s entitlement — is invariant: the bound is computed
    // once, keeping each victim check O(depth).
    const std::int64_t got =
        Reclaim(want - freed, [worst, worst_ent](const rc::ResourceContainer& v) {
          if (worst->subtree_memory_bytes() <= worst_ent) {
            return false;
          }
          for (const rc::ResourceContainer* p = &v; p != nullptr; p = p->parent()) {
            if (p == worst) {
              return true;
            }
          }
          return false;
        });
    if (got == 0) {
      barren.push_back(worst);
    } else {
      freed += got;
    }
  }
  return freed;
}

Expected<void> MemoryBroker::ChargeMemory(rc::ResourceContainer& c,
                                          std::int64_t bytes,
                                          rc::MemorySource source) {
  RC_CHECK_GE(bytes, 0);
  if (auto v = tree_.CheckSpaceCharge(c, bytes); !v.ok()) {
    c.CountMemoryRefusal();
    ++stats_.refusals;
    return v;
  }
  if (tree_.capacity_bytes() > 0 && bytes > AvailableFor(c)) {
    // Round 1: evict from containers holding more than their entitlement,
    // worst offender first.
    ReclaimOverEntitled(bytes - AvailableFor(c));
    if (bytes > AvailableFor(c)) {
      // Round 2: evict anything no guarantee protects.
      Reclaim(bytes - AvailableFor(c), [this](const rc::ResourceContainer& v) {
        return !WithinGuarantee(v);
      });
    }
    if (bytes > AvailableFor(c)) {
      c.CountMemoryRefusal();
      ++stats_.refusals;
      return MakeUnexpected(Errc::kLimitExceeded);
    }
  }
  total_ += bytes;
  by_source_[static_cast<int>(source)] += bytes;
  c.CommitMemoryCharge(bytes);
  if (auditor_ != nullptr) {
    auditor_->OnMemoryCharge(c, bytes, source);
  }
  return {};
}

void MemoryBroker::ReleaseMemory(rc::ResourceContainer& c, std::int64_t bytes,
                                 rc::MemorySource source) {
  RC_CHECK_GE(bytes, 0);
  RC_CHECK_GE(total_, bytes);
  total_ -= bytes;
  by_source_[static_cast<int>(source)] -= bytes;
  RC_DCHECK(by_source_[static_cast<int>(source)] >= 0);
  c.CommitMemoryRelease(bytes);
  if (auditor_ != nullptr) {
    auditor_->OnMemoryRelease(c, bytes, source);
  }
  if (in_reclaim_) {
    // This release was forced by the eviction pass currently running: book
    // it as reclaim against the victim.
    c.CountMemoryReclaim(bytes);
    stats_.reclaimed_bytes += bytes;
  }
}

void MemoryBroker::RegisterMetrics(telemetry::Registry* registry) {
  if (registry == nullptr) {
    return;
  }
  registry->AddProbe("memory.broker.total_bytes", "bytes",
                     [this] { return static_cast<double>(total_); });
  registry->AddProbe("memory.broker.capacity_bytes", "bytes", [this] {
    return static_cast<double>(tree_.capacity_bytes());
  });
  registry->AddProbe("memory.broker.reclaimable_bytes", "bytes", [this] {
    return static_cast<double>(ReclaimableBytes());
  });
  registry->AddProbe("memory.broker.reclaimed_bytes", "bytes", [this] {
    return static_cast<double>(stats_.reclaimed_bytes);
  });
  registry->AddProbe("memory.broker.refusals", "charges", [this] {
    return static_cast<double>(stats_.refusals);
  });
}

}  // namespace kernel
