// Direct unit tests of the two CPU schedulers (no CPU engine): run-queue
// mechanics, stride bookkeeping, throttling edges, migration, and container
// lifecycle interaction.
#include <memory>

#include <gtest/gtest.h>

#include "src/kernel/decay_scheduler.h"
#include "src/kernel/hier_scheduler.h"
#include "src/kernel/kernel.h"
#include "src/kernel/syscalls.h"

namespace kernel {
namespace {

// Threads need a kernel/process to exist; the scheduler under test is a
// separate instance so we can drive it by hand.
class SchedulerUnitTest : public ::testing::Test {
 protected:
  SchedulerUnitTest() : kern_(&simr_, UnmodifiedSystemConfig()) {}

  Thread* MakeThread(rc::ContainerRef binding) {
    Process* p = kern_.CreateProcess("holder", binding);
    // A thread that immediately blocks forever (we drive scheduling by hand).
    Thread* t = kern_.SpawnThread(p, "t", [](Sys sys) -> Program {
      co_await sys.Sleep(sim::Sec(3600));
    });
    simr_.RunUntil(simr_.now() + 10);  // let it block
    // Detach it from the kernel's own scheduler bookkeeping.
    kern_.scheduler().Remove(t);
    t->sched_cookie = nullptr;
    return t;
  }

  rc::ContainerManager& cm() { return kern_.containers(); }

  sim::Simulator simr_;
  Kernel kern_;
};

rc::Attributes Fixed(double share) {
  rc::Attributes a;
  a.sched.cls = rc::SchedClass::kFixedShare;
  a.sched.fixed_share = share;
  return a;
}

TEST_F(SchedulerUnitTest, HierarchicalPicksFifoWithinLeaf) {
  HierarchicalScheduler sched(&cm(), 0.9, sim::Msec(100));
  auto c = cm().Create(nullptr, "leaf").value();
  Thread* a = MakeThread(c);
  Thread* b = MakeThread(c);
  sched.Enqueue(a, 0);
  sched.Enqueue(b, 0);
  EXPECT_EQ(sched.runnable_count(), 2);
  EXPECT_EQ(sched.PickNext(0), a);
  EXPECT_EQ(sched.PickNext(0), b);
  EXPECT_EQ(sched.PickNext(0), nullptr);
  EXPECT_EQ(sched.runnable_count(), 0);
}

TEST_F(SchedulerUnitTest, HierarchicalStrideAlternatesByCharge) {
  HierarchicalScheduler sched(&cm(), 1.0, sim::Msec(100));
  auto ca = cm().Create(nullptr, "a", Fixed(0.5)).value();
  auto cb = cm().Create(nullptr, "b", Fixed(0.5)).value();
  Thread* ta = MakeThread(ca);
  Thread* tb = MakeThread(cb);

  // Equal shares, alternate charging: the uncharged one is always picked.
  sched.Enqueue(ta, 0);
  sched.Enqueue(tb, 0);
  Thread* first = sched.PickNext(0);
  ASSERT_NE(first, nullptr);
  rc::ResourceContainer* first_c = first->binding().resource_binding().get();
  sched.OnCharge(*first_c, 1000, 0);
  sched.Enqueue(first, 0);
  Thread* second = sched.PickNext(0);
  EXPECT_NE(second, first);  // the other container has the lower pass
}

TEST_F(SchedulerUnitTest, HierarchicalUnequalStrideRatio) {
  HierarchicalScheduler sched(&cm(), 1.0, sim::Msec(100));
  auto ca = cm().Create(nullptr, "a", Fixed(0.75)).value();
  auto cb = cm().Create(nullptr, "b", Fixed(0.25)).value();
  Thread* ta = MakeThread(ca);
  Thread* tb = MakeThread(cb);

  // Both stay runnable throughout (as with the real engine): pick, charge a
  // fixed slice, immediately re-queue.
  sched.Enqueue(ta, 0);
  sched.Enqueue(tb, 0);
  int picks_a = 0;
  for (int i = 0; i < 100; ++i) {
    Thread* t = sched.PickNext(0);
    ASSERT_NE(t, nullptr);
    if (t == ta) {
      ++picks_a;
    }
    sched.OnCharge(*t->binding().resource_binding(), 1000, 0);
    sched.Enqueue(t, 0);
  }
  // 3:1 share ratio => ~75 of 100 picks go to a.
  EXPECT_NEAR(picks_a, 75, 5);
}

TEST_F(SchedulerUnitTest, ThrottledContainerSkipped) {
  HierarchicalScheduler sched(&cm(), 1.0, sim::Msec(100));
  rc::Attributes capped;
  capped.cpu_limit = 0.1;  // 10 ms budget per 100 ms window
  auto cc = cm().Create(nullptr, "capped", capped).value();
  auto cf = cm().Create(nullptr, "free").value();
  Thread* tc = MakeThread(cc);
  Thread* tf = MakeThread(cf);

  sched.OnCharge(*cc, sim::Msec(20), /*now=*/0);  // blow the budget
  EXPECT_TRUE(sched.IsThrottled(*cc, 1000));
  sched.Enqueue(tc, 1000);
  sched.Enqueue(tf, 1000);
  EXPECT_EQ(sched.PickNext(1000), tf);
  EXPECT_EQ(sched.PickNext(1000), nullptr);  // tc still throttled
  auto when = sched.NextEligibleTime(1000);
  ASSERT_TRUE(when.has_value());
  EXPECT_EQ(*when, sim::Msec(100));
  // After the window the container is eligible again.
  EXPECT_EQ(sched.PickNext(sim::Msec(100)), tc);
}

TEST_F(SchedulerUnitTest, MigrateQueuedMovesThread) {
  HierarchicalScheduler sched(&cm(), 1.0, sim::Msec(100));
  rc::Attributes lo;
  lo.sched.priority = 1;
  rc::Attributes hi;
  hi.sched.priority = 60;
  auto cl = cm().Create(nullptr, "lo", lo).value();
  auto ch = cm().Create(nullptr, "hi", hi).value();
  auto other = cm().Create(nullptr, "other").value();
  Thread* t = MakeThread(cl);
  Thread* competitor = MakeThread(other);

  sched.Enqueue(t, 0);
  sched.Enqueue(competitor, 0);
  // Give the low container heavy decayed usage so it would lose the pick.
  sched.OnCharge(*cl, sim::Msec(50), 0);
  // Re-point the thread at the high-priority container and migrate.
  t->set_sched_hint(ch);
  sched.MigrateQueued(t, 0);
  EXPECT_EQ(sched.runnable_count(), 2);
  EXPECT_EQ(sched.PickNext(0), t);  // now reachable via the fresh hi container
}

TEST_F(SchedulerUnitTest, RemoveFromQueueIsIdempotent) {
  HierarchicalScheduler sched(&cm(), 1.0, sim::Msec(100));
  auto c = cm().Create(nullptr, "c").value();
  Thread* t = MakeThread(c);
  sched.Enqueue(t, 0);
  sched.Remove(t);
  EXPECT_EQ(sched.runnable_count(), 0);
  sched.Remove(t);  // no-op
  EXPECT_EQ(sched.PickNext(0), nullptr);
}

TEST_F(SchedulerUnitTest, DecayUsagePrefersLowUsagePrincipal) {
  DecayUsageScheduler sched(0.5);
  auto ca = cm().Create(nullptr, "a").value();
  auto cb = cm().Create(nullptr, "b").value();
  Thread* ta = MakeThread(ca);
  Thread* tb = MakeThread(cb);
  sched.OnCharge(*ca, 5000, 0);
  sched.Enqueue(ta, 0);
  sched.Enqueue(tb, 0);
  EXPECT_EQ(sched.PickNext(0), tb);
  EXPECT_TRUE(sched.ShouldPreempt(*tb) == false);  // ta has more usage
  // Decay halves the gap but preserves the order.
  sched.Tick(0);
  EXPECT_DOUBLE_EQ(sched.DecayedUsage(*ca), 2500.0);
}

TEST_F(SchedulerUnitTest, DecayUsageWakePreemption) {
  DecayUsageScheduler sched(0.5);
  auto hog = cm().Create(nullptr, "hog").value();
  auto fresh = cm().Create(nullptr, "fresh").value();
  Thread* th = MakeThread(hog);
  Thread* tf = MakeThread(fresh);
  sched.OnCharge(*hog, 10000, 0);
  // The hog is "running"; a fresh thread arrives.
  sched.Enqueue(tf, 0);
  EXPECT_TRUE(sched.ShouldPreempt(*th));
  // Not the other way around.
  sched.Remove(tf);
  sched.Enqueue(th, 0);
  EXPECT_FALSE(sched.ShouldPreempt(*tf));
}

TEST_F(SchedulerUnitTest, ContainerDestroyedDropsSchedulerState) {
  HierarchicalScheduler sched(&cm(), 1.0, sim::Msec(100));
  rc::ContainerId id;
  {
    auto c = cm().Create(nullptr, "gone").value();
    id = c->id();
    sched.OnCharge(*c, 100, 0);
    EXPECT_GT(sched.DecayedUsage(*c), 0.0);
    // The scheduler's share tree registers itself as a lifecycle listener on
    // construction; no manual destroy wiring is needed.
  }
  EXPECT_FALSE(cm().Lookup(id).ok());
}

TEST_F(SchedulerUnitTest, HierarchicalDescendsIntoSubtrees) {
  HierarchicalScheduler sched(&cm(), 1.0, sim::Msec(100));
  auto parent = cm().Create(nullptr, "p", Fixed(0.5)).value();
  auto leaf = cm().Create(parent, "leaf").value();
  Thread* t = MakeThread(leaf);
  sched.Enqueue(t, 0);
  EXPECT_EQ(sched.PickNext(0), t);
}

TEST_F(SchedulerUnitTest, PriorityZeroGroupOnlyWhenAlone) {
  HierarchicalScheduler sched(&cm(), 1.0, sim::Msec(100));
  rc::Attributes zero;
  zero.sched.priority = 0;
  auto cz = cm().Create(nullptr, "z", zero).value();
  auto cn = cm().Create(nullptr, "n").value();
  Thread* tz = MakeThread(cz);
  Thread* tn = MakeThread(cn);
  sched.Enqueue(tz, 0);
  sched.Enqueue(tn, 0);
  EXPECT_EQ(sched.PickNext(0), tn);  // positive priority first
  EXPECT_EQ(sched.PickNext(0), tz);  // then the starvation class
}

}  // namespace
}  // namespace kernel
