#include "src/kernel/thread.h"

#include "src/common/check.h"
#include "src/kernel/kernel.h"
#include "src/verify/lockset.h"

namespace kernel {

void Program::promise_type::FinalAwaiter::await_suspend(
    std::coroutine_handle<promise_type> h) noexcept {
  Thread* t = h.promise().thread;
  RC_CHECK_NE(t, nullptr);
  t->program_finished = true;
  t->MarkDone();
}

void Program::promise_type::unhandled_exception() {
  ::rccommon::CheckFailed("exception escaped a simulated program", __FILE__, __LINE__);
}

Thread::Thread(Kernel* kernel, Process* process, ThreadId id, std::string name)
    : kernel_(kernel), process_(process), id_(id), name_(std::move(name)) {}

Thread::~Thread() {
  if (frame) {
    frame.destroy();
  }
}

void Thread::Unblock() {
  RC_CHECK_EQ(state_, State::kBlocked);
  state_ = State::kRunnable;
  kernel_->tracer().Record(kernel_->now(), TraceKind::kWake, id_, 0, 0);
  {
    verify::ScopedLock sched_lock(kernel_->race_detector(), &kernel_->scheduler(),
                                  "sched_lock");
    RC_SHARED_WRITE(kernel_->race_detector(), kernel_->scheduler());
    kernel_->scheduler().Enqueue(this, kernel_->now());
  }
  kernel_->PokeCpus();
}

}  // namespace kernel
