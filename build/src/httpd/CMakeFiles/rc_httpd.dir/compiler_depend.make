# Empty compiler generated dependencies file for rc_httpd.
# This may be replaced when dependencies are built.
