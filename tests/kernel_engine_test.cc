// Tests of the CPU engine and both schedulers: charging, conservation,
// slicing, preemption, fixed shares, CPU limits, and the starvation class.
#include <memory>

#include <gtest/gtest.h>

#include "src/kernel/decay_scheduler.h"
#include "src/kernel/hier_scheduler.h"
#include "src/kernel/kernel.h"
#include "src/kernel/syscalls.h"

namespace kernel {
namespace {

struct SpinnerState {
  bool stop = false;
  Thread* thread = nullptr;
};

Program Spinner(Sys sys, SpinnerState* state, sim::Duration chunk) {
  state->thread = sys.thread();
  while (!state->stop) {
    co_await sys.Compute(chunk, rc::CpuKind::kUser);
  }
}

Program ComputeOnce(Sys sys, sim::Duration amount, sim::SimTime* done_at) {
  co_await sys.Compute(amount, rc::CpuKind::kUser);
  *done_at = sys.now();
}

Program SleepOnce(Sys sys, sim::Duration amount, sim::SimTime* done_at) {
  co_await sys.Sleep(amount);
  *done_at = sys.now();
}

class EngineTest : public ::testing::Test {
 protected:
  void MakeKernel(KernelConfig cfg) {
    kernel_ = std::make_unique<Kernel>(&simr_, cfg);
  }

  // A process whose default container is `c` (or fresh when null), running a
  // spinner.
  Process* SpawnSpinner(SpinnerState* state, rc::ContainerRef c = nullptr,
                        sim::Duration chunk = 100) {
    Process* p = kernel_->CreateProcess("spin", std::move(c));
    kernel_->SpawnThread(p, "spinner", [state, chunk](Sys sys) {
      return Spinner(sys, state, chunk);
    });
    return p;
  }

  sim::Simulator simr_;
  std::unique_ptr<Kernel> kernel_;
};

TEST_F(EngineTest, ComputeChargesBindingContainer) {
  MakeKernel(UnmodifiedSystemConfig());
  sim::SimTime done = 0;
  Process* p = kernel_->CreateProcess("app");
  rc::ContainerRef c = p->default_container();
  kernel_->SpawnThread(p, "t", [&done](Sys sys) { return ComputeOnce(sys, 5000, &done); });
  simr_.RunUntil(sim::Sec(1));
  EXPECT_EQ(c->usage().cpu_user_usec, 5000);
  // Completion time = context switch + work.
  EXPECT_EQ(done, kernel_->costs().context_switch + 5000);
}

TEST_F(EngineTest, ConservationOfCpuTime) {
  MakeKernel(UnmodifiedSystemConfig());
  SpinnerState a;
  SpawnSpinner(&a);
  simr_.RunUntil(sim::Msec(500));
  a.stop = true;
  simr_.RunUntil(sim::Sec(1));
  const sim::Duration busy = kernel_->cpu().busy_usec();
  const sim::Duration accounted = kernel_->TotalChargedCpuUsec() +
                                  kernel_->cpu().interrupt_usec() +
                                  kernel_->cpu().context_switch_usec();
  EXPECT_EQ(busy, accounted);
  EXPECT_EQ(kernel_->cpu().idle_usec(), simr_.now() - busy);
}

TEST_F(EngineTest, TwoSpinnersShareEqually) {
  MakeKernel(UnmodifiedSystemConfig());
  SpinnerState a;
  SpinnerState b;
  Process* pa = SpawnSpinner(&a);
  Process* pb = SpawnSpinner(&b);
  simr_.RunUntil(sim::Sec(2));
  const double ua = static_cast<double>(pa->TotalExecutedUsec());
  const double ub = static_cast<double>(pb->TotalExecutedUsec());
  EXPECT_NEAR(ua / (ua + ub), 0.5, 0.02);
}

TEST_F(EngineTest, InterruptStealsFromRunningSlice) {
  MakeKernel(UnmodifiedSystemConfig());
  sim::SimTime done = 0;
  Process* p = kernel_->CreateProcess("app");
  kernel_->SpawnThread(p, "t", [&done](Sys sys) { return ComputeOnce(sys, 1000, &done); });
  // Interrupt arrives mid-slice at t=500 and consumes 200 usec.
  bool irq_ran = false;
  simr_.At(500, [&] {
    kernel_->cpu().QueueInterruptWork(200, nullptr, [&] { irq_ran = true; });
  });
  simr_.RunUntil(sim::Sec(1));
  EXPECT_TRUE(irq_ran);
  EXPECT_EQ(kernel_->cpu().interrupt_usec(), 200);
  // The thread's 1000 usec of work finish 200 usec late (plus switches).
  EXPECT_GE(done, 1200);
  EXPECT_EQ(p->default_container()->usage().cpu_user_usec, 1000);
}

TEST_F(EngineTest, InterruptChargedToContainerWhenRequested) {
  MakeKernel(UnmodifiedSystemConfig());
  auto c = kernel_->containers().Create(nullptr, "victim").value();
  kernel_->cpu().QueueInterruptWork(300, c, nullptr);
  simr_.RunUntil(sim::Msec(1));
  EXPECT_EQ(c->usage().cpu_network_usec, 300);
  EXPECT_EQ(kernel_->cpu().interrupt_usec(), 0);
}

TEST_F(EngineTest, SleepWakesAtRightTime) {
  MakeKernel(UnmodifiedSystemConfig());
  sim::SimTime done = 0;
  Process* p = kernel_->CreateProcess("app");
  kernel_->SpawnThread(p, "t", [&done](Sys sys) { return SleepOnce(sys, 10000, &done); });
  simr_.RunUntil(sim::Sec(1));
  // syscall overhead (+switch) before the timer arms; wake + zero demand.
  EXPECT_GE(done, 10000);
  EXPECT_LE(done, 10000 + 50);
}

TEST_F(EngineTest, ThreadReapedAfterExit) {
  MakeKernel(UnmodifiedSystemConfig());
  sim::SimTime done = 0;
  Process* p = kernel_->CreateProcess("app");
  kernel_->SpawnThread(p, "t", [&done](Sys sys) { return ComputeOnce(sys, 100, &done); });
  simr_.RunUntil(sim::Sec(1));
  EXPECT_TRUE(p->zombie());
  EXPECT_EQ(p->TotalExecutedUsec(), 100);
}

TEST_F(EngineTest, YieldInterleavesEqualThreads) {
  MakeKernel(UnmodifiedSystemConfig());
  std::vector<int> order;
  Process* p = kernel_->CreateProcess("app");
  auto body = [&order](int id) {
    return [&order, id](Sys sys) -> Program {
      for (int i = 0; i < 5; ++i) {
        co_await sys.Compute(100, rc::CpuKind::kUser);
        order.push_back(id);
        co_await sys.Yield();
      }
    };
  };
  kernel_->SpawnThread(p, "a", body(1));
  kernel_->SpawnThread(p, "b", body(2));
  simr_.RunUntil(sim::Msec(10));
  ASSERT_EQ(order.size(), 10u);
  // Yield sends the runner to the back of the tie; strict alternation.
  for (std::size_t i = 1; i < order.size(); ++i) {
    EXPECT_NE(order[i], order[i - 1]) << "position " << i;
  }
}

TEST_F(EngineTest, WakePreemptionFavorsLowUsageThread) {
  MakeKernel(UnmodifiedSystemConfig());
  SpinnerState hog;
  SpawnSpinner(&hog, nullptr, /*chunk=*/sim::Msec(50));
  // A sleeper that wakes at t=20ms; with wake preemption it should run
  // within roughly a quantum, not wait out the hog's 50 ms demand.
  sim::SimTime woke = 0;
  Process* p = kernel_->CreateProcess("sleeper");
  kernel_->SpawnThread(p, "t", [&woke](Sys sys) -> Program {
    co_await sys.Sleep(sim::Msec(20));
    co_await sys.Compute(10, rc::CpuKind::kUser);
    woke = sys.now();
  });
  simr_.RunUntil(sim::Sec(1));
  EXPECT_GT(woke, sim::Msec(20));
  EXPECT_LT(woke, sim::Msec(20) + 2 * kernel_->costs().quantum);
}

// --- Hierarchical scheduler ----------------------------------------------

rc::Attributes FixedShare(double share) {
  rc::Attributes a;
  a.sched.cls = rc::SchedClass::kFixedShare;
  a.sched.fixed_share = share;
  return a;
}

TEST_F(EngineTest, FixedSharesRespected) {
  MakeKernel(ResourceContainerSystemConfig());
  auto ca = kernel_->containers().Create(nullptr, "a", FixedShare(0.7)).value();
  auto cb = kernel_->containers().Create(nullptr, "b", FixedShare(0.3)).value();
  SpinnerState a;
  SpinnerState b;
  Process* pa = SpawnSpinner(&a, ca);
  Process* pb = SpawnSpinner(&b, cb);
  simr_.RunUntil(sim::Sec(5));
  const double ua = static_cast<double>(pa->TotalExecutedUsec());
  const double ub = static_cast<double>(pb->TotalExecutedUsec());
  EXPECT_NEAR(ua / (ua + ub), 0.7, 0.02);
}

TEST_F(EngineTest, WorkConservingWhenShareHolderIdles) {
  MakeKernel(ResourceContainerSystemConfig());
  auto ca = kernel_->containers().Create(nullptr, "a", FixedShare(0.9)).value();
  auto cb = kernel_->containers().Create(nullptr, "b", FixedShare(0.1)).value();
  (void)ca;  // nobody runs in the 90% container
  SpinnerState b;
  Process* pb = SpawnSpinner(&b, cb);
  simr_.RunUntil(sim::Sec(1));
  // b may use the whole machine while a is idle.
  EXPECT_GT(static_cast<double>(pb->TotalExecutedUsec()) / sim::Sec(1), 0.95);
}

TEST_F(EngineTest, NoCreditForIdleTime) {
  MakeKernel(ResourceContainerSystemConfig());
  auto ca = kernel_->containers().Create(nullptr, "a", FixedShare(0.5)).value();
  auto cb = kernel_->containers().Create(nullptr, "b", FixedShare(0.5)).value();
  SpinnerState b;
  Process* pb = SpawnSpinner(&b, cb);
  // a sleeps for the first second, then spins.
  SpinnerState a;
  Process* pa = kernel_->CreateProcess("late", ca);
  kernel_->SpawnThread(pa, "t", [&a](Sys sys) -> Program {
    co_await sys.Sleep(sim::Sec(1));
    while (!a.stop) {
      co_await sys.Compute(100, rc::CpuKind::kUser);
    }
  });
  simr_.RunUntil(sim::Sec(2));
  // In the second second both should get ~50% — a must NOT get extra credit
  // for its idle first second (so b keeps ~50% of second two).
  const double ub = static_cast<double>(pb->TotalExecutedUsec());
  EXPECT_NEAR(ub / sim::Sec(2), 0.75, 0.02);  // 100% + 50% halves
}

TEST_F(EngineTest, CpuLimitThrottles) {
  MakeKernel(ResourceContainerSystemConfig());
  rc::Attributes attrs;  // time-share with a hard 25% cap
  attrs.cpu_limit = 0.25;
  auto c = kernel_->containers().Create(nullptr, "capped", attrs).value();
  SpinnerState s;
  Process* p = SpawnSpinner(&s, c);
  simr_.RunUntil(sim::Sec(2));
  const double share = static_cast<double>(p->TotalExecutedUsec()) / sim::Sec(2);
  EXPECT_NEAR(share, 0.25, 0.02);
  // The rest of the machine idles (nothing else to run).
  EXPECT_GT(kernel_->cpu().idle_usec(), sim::Msec(1400));
}

TEST_F(EngineTest, LimitAppliesToSubtree) {
  MakeKernel(ResourceContainerSystemConfig());
  rc::Attributes parent_attrs = FixedShare(0.5);
  parent_attrs.cpu_limit = 0.2;
  auto parent = kernel_->containers().Create(nullptr, "p", parent_attrs).value();
  auto c1 = kernel_->containers().Create(parent, "c1").value();
  auto c2 = kernel_->containers().Create(parent, "c2").value();
  SpinnerState s1;
  SpinnerState s2;
  Process* p1 = SpawnSpinner(&s1, c1);
  Process* p2 = SpawnSpinner(&s2, c2);
  simr_.RunUntil(sim::Sec(2));
  const double total = static_cast<double>(p1->TotalExecutedUsec() +
                                           p2->TotalExecutedUsec()) /
                       sim::Sec(2);
  EXPECT_NEAR(total, 0.2, 0.02);
}

TEST_F(EngineTest, PriorityZeroRunsOnlyWhenIdle) {
  MakeKernel(ResourceContainerSystemConfig());
  rc::Attributes zero;
  zero.sched.priority = 0;
  auto cz = kernel_->containers().Create(nullptr, "starved", zero).value();
  auto cn = kernel_->containers().Create(nullptr, "normal").value();
  SpinnerState z;
  SpinnerState n;
  Process* pz = SpawnSpinner(&z, cz);
  Process* pn = SpawnSpinner(&n, cn);
  simr_.RunUntil(sim::Sec(1));
  // While the normal container is busy, priority 0 gets essentially nothing.
  EXPECT_LT(pz->TotalExecutedUsec(), sim::Msec(5));
  n.stop = true;
  simr_.RunUntil(sim::Sec(2));
  // Once the machine is otherwise idle, the starved class runs.
  EXPECT_GT(pz->TotalExecutedUsec(), sim::Msec(900));
  (void)pn;
}

TEST_F(EngineTest, TimeSharePrioritiesActAsWeights) {
  MakeKernel(ResourceContainerSystemConfig());
  rc::Attributes p32;
  p32.sched.priority = 32;
  rc::Attributes p8;
  p8.sched.priority = 8;
  auto ch = kernel_->containers().Create(nullptr, "hi", p32).value();
  auto cl = kernel_->containers().Create(nullptr, "lo", p8).value();
  SpinnerState h;
  SpinnerState l;
  Process* ph = SpawnSpinner(&h, ch);
  Process* pl = SpawnSpinner(&l, cl);
  simr_.RunUntil(sim::Sec(4));
  const double uh = static_cast<double>(ph->TotalExecutedUsec());
  const double ul = static_cast<double>(pl->TotalExecutedUsec());
  // 32:8 weights => 80/20 split.
  EXPECT_NEAR(uh / (uh + ul), 0.8, 0.05);
}

TEST_F(EngineTest, FixedShareSurvivesTimeShareChurn) {
  // Regression test: a stream of short-lived time-share containers must not
  // starve a fixed-share sibling of its guarantee (each fresh container has
  // zero usage and would always win a naive usage-based arbitration).
  MakeKernel(ResourceContainerSystemConfig());
  auto fixed = kernel_->containers().Create(nullptr, "fixed", FixedShare(0.3)).value();
  SpinnerState f;
  Process* pf = SpawnSpinner(&f, fixed);

  // The churner rebinds to a fresh container every 2 ms of work.
  Process* churner = kernel_->CreateProcess("churn");
  kernel_->SpawnThread(churner, "t", [](Sys sys) -> Program {
    for (int i = 0; i < 100000; ++i) {
      auto fd = co_await sys.CreateContainer("ephemeral");
      if (!fd.ok()) {
        break;
      }
      co_await sys.BindThread(*fd);
      co_await sys.Compute(2000, rc::CpuKind::kUser);
      co_await sys.CloseFd(*fd);
    }
  });
  simr_.RunUntil(sim::Sec(4));
  const double share = static_cast<double>(pf->TotalExecutedUsec()) / sim::Sec(4);
  EXPECT_NEAR(share, 0.3, 0.03);
}

TEST_F(EngineTest, HierarchicalConservation) {
  MakeKernel(ResourceContainerSystemConfig());
  auto ca = kernel_->containers().Create(nullptr, "a", FixedShare(0.6)).value();
  SpinnerState a;
  SpinnerState b;
  SpawnSpinner(&a, ca);
  SpawnSpinner(&b);
  simr_.RunUntil(sim::Sec(1));
  EXPECT_EQ(kernel_->cpu().busy_usec(),
            kernel_->TotalChargedCpuUsec() + kernel_->cpu().interrupt_usec() +
                kernel_->cpu().context_switch_usec());
}

}  // namespace
}  // namespace kernel
