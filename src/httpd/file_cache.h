// A minimal in-memory document cache. The paper's experiments all serve a
// cached, 1 KB static file; the cache exists so lookup costs (and misses,
// for non-paper workloads) are modeled and accounted.
#ifndef SRC_HTTPD_FILE_CACHE_H_
#define SRC_HTTPD_FILE_CACHE_H_

#include <cstdint>
#include <optional>
#include <unordered_map>

namespace httpd {

class FileCache {
 public:
  void AddDocument(std::uint32_t doc_id, std::uint32_t bytes) {
    docs_[doc_id] = bytes;
  }

  // Returns the document size on a hit.
  std::optional<std::uint32_t> Lookup(std::uint32_t doc_id) {
    auto it = docs_.find(doc_id);
    if (it == docs_.end()) {
      ++misses_;
      return std::nullopt;
    }
    ++hits_;
    return it->second;
  }

  // A miss is followed by an insert (the "disk read" populated the cache).
  void Insert(std::uint32_t doc_id, std::uint32_t bytes) { docs_[doc_id] = bytes; }

  std::uint64_t hits() const { return hits_; }
  std::uint64_t misses() const { return misses_; }
  std::size_t size() const { return docs_.size(); }

 private:
  std::unordered_map<std::uint32_t, std::uint32_t> docs_;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
};

}  // namespace httpd

#endif  // SRC_HTTPD_FILE_CACHE_H_
