// The scenario compiler: xp::Compile maps a validated xp::Spec onto a live
// xp::Scenario — kernel variant, servers, container tree, file sets, client
// populations, background workloads and attack injections — and returns a
// CompiledScenario whose Run() executes the spec's phases, computes the
// run's metric namespace (docs/SCENARIOS.md) and evaluates its assertions.
// This is the single construction path from declarative specs to running
// experiments; rcsim and the scenario-suite CI job both go through it.
#ifndef SRC_XP_RUNNER_H_
#define SRC_XP_RUNNER_H_

#include <cstdint>
#include <memory>
#include <ostream>
#include <string>
#include <utility>
#include <vector>

#include "src/xp/scenario.h"
#include "src/xp/spec.h"

namespace xp {

struct CompileOptions {
  // Charge-conservation auditing and the timeline digest (src/verify).
  bool audit = false;
  bool digest = false;
  // Forces push-side telemetry on even when the spec leaves it off.
  bool telemetry = false;
  // Epoch-sampler interval when telemetry is on; 0 = the scenario default.
  double telemetry_interval_ms = 0.0;
};

struct AssertionResult {
  std::string metric;
  double value = 0.0;
  bool passed = false;
  std::string detail;  // human-readable, e.g. "throughput_rps = 81.6 < min 2000"
};

// Outcome of CompiledScenario::Run: the full metric namespace (insertion
// order: machine-wide, per-population, per-container, per-workload,
// per-server) plus the evaluated assertions.
struct RunResult {
  std::vector<std::pair<std::string, double>> metrics;
  std::vector<AssertionResult> assertions;
  bool ok = true;          // every assertion passed
  std::string digest_hex;  // non-empty when the digest was enabled

  // Null when the metric was not produced by this run.
  const double* Find(const std::string& name) const;
};

class CompiledScenario;

struct CompileResult {
  bool ok() const { return error.empty(); }
  std::unique_ptr<CompiledScenario> compiled;
  std::string error;
};

// Builds the scenario a spec describes. Never dies on a bad spec: resource
// errors the parser cannot see (share oversubscription against the live
// container manager, class table overflow) come back as `error`.
CompileResult Compile(const Spec& spec, const CompileOptions& options = {});

// A spec made runnable: the scenario plus everything the spec layered on
// top of it (containers by name, populations with their start plan, pinned
// workload bookkeeping). Owns the simulation; destroy to tear it down.
class CompiledScenario {
 public:
  ~CompiledScenario();

  CompiledScenario(const CompiledScenario&) = delete;
  CompiledScenario& operator=(const CompiledScenario&) = delete;

  Scenario& scenario() { return *scenario_; }
  const Spec& spec() const { return spec_; }

  // Executes the spec's phases — warmup, client-stat reset, measurement —
  // then computes metrics and evaluates assertions. When
  // phases.report_every_s > 0 and `out` is non-null, per-interval goodput
  // lines are streamed to `out` during measurement (timeline experiments).
  // Call once per CompiledScenario.
  RunResult Run(std::ostream* out = nullptr);

 private:
  friend CompileResult Compile(const Spec& spec, const CompileOptions& options);

  CompiledScenario() = default;

  // Self-rearming simulator timer (runs until the simulation ends).
  struct Periodic {
    sim::Simulator* simr = nullptr;
    sim::Duration period = 0;
    std::function<void()> fn;
    void Arm() {
      simr->After(period, [this] {
        fn();
        Arm();
      });
    }
  };

  // cache_pin workload bookkeeping: the tenant's guaranteed resident bytes
  // and the minimum it actually held (sampled every sample_period_ms).
  struct PinnedSet {
    std::string name;
    std::int64_t guarantee_bytes = 0;
    std::shared_ptr<std::int64_t> min_resident;
  };

  rc::ContainerRef FindContainer(const std::string& name) const;

  Spec spec_;
  // Declared before the scenario: populations (owned by the scenario) hold
  // pointers into these document sets for their whole lifetime.
  std::vector<std::unique_ptr<std::vector<load::HttpClient::DocChoice>>> doc_sets_;
  std::unique_ptr<Scenario> scenario_;
  std::vector<std::pair<std::string, rc::ContainerRef>> containers_;  // spec order
  std::vector<load::Population*> populations_;  // parallel to spec_.populations
  std::vector<httpd::Server*> servers_;         // parallel to spec_.servers
  std::vector<std::unique_ptr<Periodic>> periodics_;
  std::vector<PinnedSet> pins_;
};

}  // namespace xp

#endif  // SRC_XP_RUNNER_H_
