file(REMOVE_RECURSE
  "CMakeFiles/kernel_fd_event_test.dir/kernel_fd_event_test.cc.o"
  "CMakeFiles/kernel_fd_event_test.dir/kernel_fd_event_test.cc.o.d"
  "kernel_fd_event_test"
  "kernel_fd_event_test.pdb"
  "kernel_fd_event_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kernel_fd_event_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
