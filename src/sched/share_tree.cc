#include "src/sched/share_tree.h"

#include <algorithm>

#include "src/common/check.h"

namespace sched {

namespace {
// Floor for the residual share granted to time-share children when fixed
// shares (nearly) exhaust the parent; keeps time-share work from starving.
constexpr double kResidualFloor = 0.02;
}  // namespace

ShareTree::ShareTree(rc::ContainerManager* manager, const ShareTreeOptions& options)
    : manager_(manager), options_(options) {}

ShareTree::Node* ShareTree::NodeFor(rc::ResourceContainer& c) {
  if (options_.cache_in_container) {
    if (c.sched_cookie() != nullptr) {
      return static_cast<Node*>(c.sched_cookie());
    }
  } else {
    auto it = nodes_.find(c.id());
    if (it != nodes_.end()) {
      return it->second.get();
    }
  }
  auto node = std::make_unique<Node>();
  node->container = &c;
  Node* raw = node.get();
  if (options_.cache_in_container) {
    c.set_sched_cookie(raw);
  }
  nodes_[c.id()] = std::move(node);
  return raw;
}

ShareTree::Node* ShareTree::NodeForIfExists(const rc::ResourceContainer& c) const {
  if (options_.cache_in_container) {
    return static_cast<Node*>(c.sched_cookie());
  }
  auto it = nodes_.find(c.id());
  return it == nodes_.end() ? nullptr : it->second.get();
}

double ShareTree::ResidualWeight(const rc::ResourceContainer& parent) const {
  double fixed_total = 0.0;
  parent.ForEachChild([&](rc::ResourceContainer& child) {
    const rc::SchedParams& sched = rc::SchedFor(child.attributes(), options_.resource);
    if (sched.cls == rc::SchedClass::kFixedShare) {
      fixed_total += sched.fixed_share;
    }
  });
  return std::max(kResidualFloor, 1.0 - fixed_total);
}

void ShareTree::AdjustRunnable(rc::ResourceContainer* leaf, int delta) {
  for (rc::ResourceContainer* c = leaf; c != nullptr; c = c->parent()) {
    Node* n = NodeFor(*c);
    const int before = n->runnable;
    n->runnable += delta;
    RC_CHECK_GE(n->runnable, 0);
    rc::ResourceContainer* parent = c->parent();
    if (parent == nullptr) {
      continue;
    }
    Node* pn = NodeFor(*parent);
    const bool fixed =
        rc::SchedFor(c->attributes(), options_.resource).cls == rc::SchedClass::kFixedShare;
    if (before == 0 && n->runnable == 1) {
      // (Re)entering the runnable set: no credit for idle time.
      if (fixed) {
        n->pass = std::max(n->pass, pn->vtime);
      } else if (++pn->tshare_runnable_children == 1) {
        pn->tshare_pass = std::max(pn->tshare_pass, pn->vtime);
      }
    } else if (before == 1 && n->runnable == 0) {
      if (!fixed) {
        --pn->tshare_runnable_children;
        RC_CHECK_GE(pn->tshare_runnable_children, 0);
      }
    }
  }
  total_queued_ += delta;
}

ShareTree::Node* ShareTree::Push(rc::ResourceContainer* leaf, void* item) {
  RC_CHECK_NE(leaf, nullptr);
  RC_CHECK_NE(item, nullptr);
  Node* node = NodeFor(*leaf);
  node->queue.push_back(item);
  AdjustRunnable(leaf, +1);
  return node;
}

ShareTree::Node* ShareTree::PickChild(Node* parent, sim::SimTime now,
                                      bool allow_zero) {
  // Collect the stride candidates at this level: eligible fixed-share
  // children, and the time-share group if any of its members is eligible.
  Node* best_fixed = nullptr;
  bool group_eligible = false;

  parent->container->ForEachChild([&](rc::ResourceContainer& child) {
    Node* cn = NodeForIfExists(child);
    if (cn == nullptr || cn->runnable == 0 || Throttled(*cn, now)) {
      return;
    }
    const rc::SchedParams& sched = rc::SchedFor(child.attributes(), options_.resource);
    if (sched.cls == rc::SchedClass::kFixedShare) {
      if (best_fixed == nullptr || cn->pass < best_fixed->pass) {
        best_fixed = cn;
      }
    } else {
      if (sched.priority <= 0 && !allow_zero) {
        return;
      }
      group_eligible = true;
    }
  });

  const bool pick_group =
      group_eligible && (best_fixed == nullptr || parent->tshare_pass <= best_fixed->pass);

  if (!pick_group && best_fixed == nullptr) {
    return nullptr;
  }

  parent->vtime =
      std::max(parent->vtime, pick_group ? parent->tshare_pass : best_fixed->pass);

  if (!pick_group) {
    return best_fixed;
  }

  // Inside the group: decayed usage scaled by numeric priority. In the CPU's
  // starvation-class mode, positive-priority children always beat
  // priority-0 ones; otherwise priority 0 is just the weakest weight.
  Node* best = nullptr;
  double best_key = 0.0;
  bool best_positive = false;
  parent->container->ForEachChild([&](rc::ResourceContainer& child) {
    Node* cn = NodeForIfExists(child);
    if (cn == nullptr || cn->runnable == 0 || Throttled(*cn, now)) {
      return;
    }
    const rc::SchedParams& sched = rc::SchedFor(child.attributes(), options_.resource);
    if (sched.cls == rc::SchedClass::kFixedShare) {
      return;
    }
    const bool positive = sched.priority > 0;
    if (!positive && !allow_zero) {
      return;
    }
    const double key = cn->decayed / static_cast<double>(std::max(1, sched.priority));
    bool better;
    if (options_.starve_priority_zero) {
      better = best == nullptr || (positive && !best_positive) ||
               (positive == best_positive && key < best_key);
    } else {
      better = best == nullptr || key < best_key;
    }
    if (better) {
      best = cn;
      best_key = key;
      best_positive = positive;
    }
  });
  return best;
}

void* ShareTree::Descend(sim::SimTime now, bool allow_zero) {
  Node* n = NodeFor(*manager_->root());
  if (n->runnable == 0) {
    return nullptr;
  }
  while (true) {
    Node* child = PickChild(n, now, allow_zero);
    if (child != nullptr) {
      n = child;
      continue;
    }
    if (n->queue.empty()) {
      return nullptr;  // everything below is throttled or priority-0
    }
    void* item = n->queue.front();
    n->queue.pop_front();
    AdjustRunnable(n->container, -1);
    return item;
  }
}

void* ShareTree::Pop(sim::SimTime now) {
  if (!options_.starve_priority_zero) {
    return Descend(now, /*allow_zero=*/true);
  }
  if (void* item = Descend(now, /*allow_zero=*/false)) {
    return item;
  }
  // Nothing with positive priority: admit the starvation (priority-0) class.
  return Descend(now, /*allow_zero=*/true);
}

void ShareTree::Erase(Node* node, void* item) {
  RC_CHECK_NE(node, nullptr);
  auto& q = node->queue;
  q.erase(std::remove(q.begin(), q.end(), item), q.end());
  AdjustRunnable(node->container, -1);
}

void ShareTree::OnCharge(rc::ResourceContainer& c, sim::Duration usec,
                         sim::SimTime now) {
  for (rc::ResourceContainer* p = &c; p != nullptr; p = p->parent()) {
    Node* n = NodeFor(*p);
    n->decayed += static_cast<double>(usec);

    // Stride pass advance at this level.
    if (rc::ResourceContainer* parent = p->parent()) {
      Node* pn = NodeFor(*parent);
      const rc::SchedParams& sched = rc::SchedFor(p->attributes(), options_.resource);
      if (sched.cls == rc::SchedClass::kFixedShare) {
        n->pass += static_cast<double>(usec) / std::max(1e-6, sched.fixed_share);
      } else {
        pn->tshare_pass += static_cast<double>(usec) / ResidualWeight(*parent);
      }
    }

    // Windowed limit, budgeted against the whole device's (or machine's)
    // capacity.
    const double limit = rc::LimitFor(p->attributes(), options_.resource);
    if (limit > 0.0) {
      n->window.Charge(usec, now, limit, options_.limit_window, options_.capacity);
    }
  }
}

void ShareTree::Tick() {
  for (auto& [id, node] : nodes_) {
    node->decayed *= options_.decay_per_tick;
  }
}

std::optional<sim::SimTime> ShareTree::NextEligibleTime(sim::SimTime now) const {
  std::optional<sim::SimTime> earliest;
  for (const auto& [id, node] : nodes_) {
    if (node->runnable > 0 && node->window.throttled_until > now) {
      if (!earliest.has_value() || node->window.throttled_until < *earliest) {
        earliest = node->window.throttled_until;
      }
    }
  }
  return earliest;
}

void ShareTree::OnContainerDestroyed(rc::ResourceContainer& c) {
  Node* n = NodeForIfExists(c);
  if (n == nullptr) {
    return;
  }
  // Queued items hold references to their containers, so a container with
  // queued work can never be destroyed.
  RC_CHECK(n->queue.empty());
  if (options_.cache_in_container) {
    c.set_sched_cookie(nullptr);
  }
  nodes_.erase(c.id());
}

void ShareTree::OnContainerReparented(rc::ResourceContainer& child,
                                      rc::ResourceContainer* old_parent,
                                      rc::ResourceContainer* new_parent) {
  Node* cn = NodeForIfExists(child);
  if (cn == nullptr || cn->runnable == 0) {
    return;
  }
  const int k = cn->runnable;
  const bool fixed = rc::SchedFor(child.attributes(), options_.resource).cls ==
                     rc::SchedClass::kFixedShare;
  for (rc::ResourceContainer* p = old_parent; p != nullptr; p = p->parent()) {
    Node* n = NodeForIfExists(*p);
    if (n != nullptr) {
      if (p == old_parent && !fixed) {
        --n->tshare_runnable_children;
      }
      n->runnable -= k;
      RC_CHECK_GE(n->runnable, 0);
    }
  }
  for (rc::ResourceContainer* p = new_parent; p != nullptr; p = p->parent()) {
    Node* n = NodeFor(*p);
    if (p == new_parent && !fixed) {
      ++n->tshare_runnable_children;
    }
    n->runnable += k;
  }
}

std::vector<void*> ShareTree::DrainAll() {
  std::vector<void*> items;
  for (auto& [id, node] : nodes_) {
    for (void* item : node->queue) {
      items.push_back(item);
    }
    node->queue.clear();
    node->runnable = 0;
    node->tshare_runnable_children = 0;
  }
  total_queued_ = 0;
  return items;
}

double ShareTree::DecayedUsage(const rc::ResourceContainer& c) const {
  Node* n = NodeForIfExists(c);
  return n == nullptr ? 0.0 : n->decayed;
}

bool ShareTree::IsThrottled(const rc::ResourceContainer& c, sim::SimTime now) const {
  Node* n = NodeForIfExists(c);
  return n != nullptr && Throttled(*n, now);
}

}  // namespace sched
