file(REMOVE_RECURSE
  "CMakeFiles/large_transfers.dir/large_transfers.cpp.o"
  "CMakeFiles/large_transfers.dir/large_transfers.cpp.o.d"
  "large_transfers"
  "large_transfers.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/large_transfers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
