// Layering fixture, negative case: sim may include common/ and its own
// headers.
#include "src/common/check.h"
#include "src/sim/time.h"

void SimLayerOk() {}
