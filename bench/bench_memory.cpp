// Memory-scheduling benchmark: the memory share tree under pressure.
//
// Two scenarios on an 8 MiB machine (kernel_config.memory_bytes):
//
//   squeeze   — a latency tenant holds a working set equal to its guaranteed
//               resident bytes (fixed memory share 0.25) in the file cache;
//               a cache-hog tenant then streams 4x machine capacity through
//               the same cache. The broker must satisfy the hog by evicting
//               the hog's own LRU documents (over-entitlement first, then
//               unprotected bytes) and the latency tenant's resident bytes
//               must never dip below its guarantee — sampled after every
//               insert batch, the minimum is the headline number.
//
//   admission — a hostile tenant grabs *non-reclaimable* connection memory
//               until refused; a paying tenant (fixed memory share 0.5) then
//               claims its full guarantee. The guarantee reservation must
//               have held the hostile tenant at capacity - guarantee, so the
//               paying tenant sees zero refusals.
//
// Both scenarios run with the charge auditor attached, so every epoch also
// proves resident-byte conservation end to end.
//
// Records the results into BENCH_memory.json (--metrics-out). The invariant
// gates (min resident >= guarantee, zero paying refusals, reclaim actually
// ran) fail the binary directly; --check-against=FILE additionally compares
// the deterministic ratios against a committed baseline with --tolerance
// (default 5%).
//
// Flags: --capacity-mib=N (default 8), --metrics-out[=FILE],
//        --check-against=FILE, --tolerance=F.
#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "src/telemetry/bench_io.h"
#include "src/telemetry/json.h"
#include "src/xp/scenario.h"
#include "src/xp/table.h"

namespace {

constexpr std::int64_t kMiB = 1024 * 1024;

rc::ContainerRef MakeTenant(xp::Scenario& scenario, const std::string& name,
                            double memory_share) {
  rc::Attributes a;
  if (memory_share > 0) {
    a.memory.override_sched = true;
    a.memory.sched.cls = rc::SchedClass::kFixedShare;
    a.memory.sched.fixed_share = memory_share;
  }
  return scenario.kernel().containers().Create(nullptr, name, a).value();
}

xp::ScenarioOptions MemoryOptions(std::int64_t capacity) {
  xp::ScenarioOptions options;
  options.kernel_config = kernel::ResourceContainerSystemConfig();
  options.kernel_config.memory_bytes = capacity;
  options.audit = true;
  options.telemetry = true;
  return options;
}

struct SqueezeResult {
  std::int64_t guarantee = 0;
  std::int64_t min_resident = 0;
  std::uint64_t docs_survived = 0;   // of kLatencyDocs
  std::uint64_t reclaim_evictions = 0;
  std::int64_t reclaimed_bytes = 0;
  std::uint64_t latency_refusals = 0;
  std::uint64_t hog_refusals = 0;
};

constexpr std::uint32_t kLatencyDocs = 64;

SqueezeResult RunSqueeze(std::int64_t capacity) {
  xp::Scenario scenario(MemoryOptions(capacity));
  rc::ContainerRef latency = MakeTenant(scenario, "latency", 0.25);
  rc::ContainerRef hog = MakeTenant(scenario, "hog", 0.0);

  SqueezeResult r;
  r.guarantee = scenario.kernel().memory().GuaranteeBytes(*latency);

  // The latency tenant's working set fills its guarantee exactly.
  const auto doc_bytes = static_cast<std::uint32_t>(r.guarantee / kLatencyDocs);
  for (std::uint32_t i = 0; i < kLatencyDocs; ++i) {
    scenario.cache().Insert(1000 + i, doc_bytes, latency);
  }
  r.min_resident = latency->usage().memory_bytes;

  // The hog streams 4x machine capacity through the cache in 64 KiB
  // documents; every insert beyond its entitlement forces a reclaim pass.
  const auto hog_docs = static_cast<int>(4 * capacity / (64 * 1024));
  for (int i = 0; i < hog_docs; ++i) {
    scenario.cache().Insert(100000 + static_cast<std::uint32_t>(i), 64 * 1024, hog);
    if ((i & 15) == 0) {
      scenario.RunFor(sim::Msec(1));  // epoch sampling + conservation audit
      r.min_resident = std::min(r.min_resident, latency->usage().memory_bytes);
    }
  }
  scenario.RunFor(sim::Msec(10));
  r.min_resident = std::min(r.min_resident, latency->usage().memory_bytes);
  for (std::uint32_t i = 0; i < kLatencyDocs; ++i) {
    if (scenario.cache().Lookup(1000 + i).has_value()) {
      ++r.docs_survived;
    }
  }
  r.reclaim_evictions = scenario.cache().reclaim_evictions();
  r.reclaimed_bytes = scenario.kernel().memory().stats().reclaimed_bytes;
  r.latency_refusals = latency->usage().memory_refusals;
  r.hog_refusals = hog->usage().memory_refusals;
  return r;
}

struct AdmissionResult {
  std::int64_t guarantee = 0;
  std::int64_t hostile_admitted = 0;
  std::uint64_t hostile_refusals = 0;
  std::int64_t paying_resident = 0;
  std::uint64_t paying_refusals = 0;
};

AdmissionResult RunAdmission(std::int64_t capacity) {
  xp::Scenario scenario(MemoryOptions(capacity));
  rc::ContainerRef paying = MakeTenant(scenario, "paying", 0.5);
  rc::ContainerRef hostile = MakeTenant(scenario, "hostile", 0.0);

  AdmissionResult r;
  r.guarantee = scenario.kernel().memory().GuaranteeBytes(*paying);

  // Hostile pressure: non-reclaimable memory (the connection-memory shape —
  // kOther rather than kConnection, because the auditor pins kConnection to
  // the stack's own counter), grabbed until the broker refuses. Nothing of
  // it is in any reclaimer, so only the guarantee reservation can stop it.
  const std::int64_t chunk = 64 * 1024;
  while (hostile->ChargeMemory(chunk, rc::MemorySource::kOther).ok()) {
    r.hostile_admitted += chunk;
    if (r.hostile_admitted > 2 * capacity) {
      break;  // defensive: admission control failed open
    }
  }
  r.hostile_refusals = hostile->usage().memory_refusals;
  scenario.RunFor(sim::Msec(1));

  // The paying tenant claims its full guarantee after the hostile tenant
  // already squatted on everything else.
  std::int64_t claimed = 0;
  while (claimed < r.guarantee &&
         paying->ChargeMemory(chunk, rc::MemorySource::kOther).ok()) {
    claimed += chunk;
  }
  r.paying_resident = paying->usage().memory_bytes;
  r.paying_refusals = paying->usage().memory_refusals;
  scenario.RunFor(sim::Msec(1));

  hostile->ReleaseMemory(r.hostile_admitted, rc::MemorySource::kOther);
  paying->ReleaseMemory(claimed, rc::MemorySource::kOther);
  return r;
}

// Returns the value of `metric` for the entry whose config starts with
// `config_prefix`, or -1 when absent.
double BaselineValue(const telemetry::JsonValue& doc, const std::string& metric,
                     const std::string& config_prefix) {
  if (!doc.is_array()) {
    return -1;
  }
  for (const telemetry::JsonValue& e : doc.array) {
    if (e.StringOr("metric", "") == metric &&
        e.StringOr("config", "").rfind(config_prefix, 0) == 0) {
      return e.NumberOr("value", -1);
    }
  }
  return -1;
}

}  // namespace

int main(int argc, char** argv) {
  telemetry::BenchReport report("memory", argc, argv);

  std::int64_t capacity_mib = 8;
  std::string check_against;
  double tolerance = 0.05;
  for (int i = 1; i < argc; ++i) {
    const char* a = argv[i];
    if (std::strncmp(a, "--capacity-mib=", 15) == 0) {
      capacity_mib = std::atoll(a + 15);
    } else if (std::strncmp(a, "--check-against=", 16) == 0) {
      check_against = a + 16;
    } else if (std::strncmp(a, "--tolerance=", 12) == 0) {
      tolerance = std::atof(a + 12);
    }
  }
  const std::int64_t capacity = capacity_mib * kMiB;

  std::printf("=== memory scheduling: %lld MiB machine, audited ===\n\n",
              static_cast<long long>(capacity_mib));

  const SqueezeResult sq = RunSqueeze(capacity);
  const AdmissionResult ad = RunAdmission(capacity);

  const double min_over_guarantee =
      sq.guarantee > 0 ? static_cast<double>(sq.min_resident) /
                             static_cast<double>(sq.guarantee)
                       : 0;
  const double survived_frac =
      static_cast<double>(sq.docs_survived) / kLatencyDocs;
  const double hostile_admitted_frac =
      static_cast<double>(ad.hostile_admitted) /
      static_cast<double>(capacity - ad.guarantee);

  xp::Table table({"scenario", "measure", "value"});
  table.AddRow({"squeeze", "guarantee (bytes)", std::to_string(sq.guarantee)});
  table.AddRow({"squeeze", "min resident (bytes)", std::to_string(sq.min_resident)});
  table.AddRow({"squeeze", "working-set docs survived",
                std::to_string(sq.docs_survived) + "/" + std::to_string(kLatencyDocs)});
  table.AddRow({"squeeze", "reclaim evictions", std::to_string(sq.reclaim_evictions)});
  table.AddRow({"squeeze", "reclaimed (bytes)", std::to_string(sq.reclaimed_bytes)});
  table.AddRow({"squeeze", "hog refusals", std::to_string(sq.hog_refusals)});
  table.AddRow({"admission", "guarantee (bytes)", std::to_string(ad.guarantee)});
  table.AddRow({"admission", "hostile admitted (bytes)",
                std::to_string(ad.hostile_admitted)});
  table.AddRow({"admission", "hostile refusals", std::to_string(ad.hostile_refusals)});
  table.AddRow({"admission", "paying resident (bytes)",
                std::to_string(ad.paying_resident)});
  table.AddRow({"admission", "paying refusals", std::to_string(ad.paying_refusals)});
  table.Print(std::cout);

  const std::string cfg = "capacity_mib=" + std::to_string(capacity_mib);
  report.Add("guarantee_bytes", static_cast<double>(sq.guarantee), "bytes",
             "squeeze," + cfg);
  report.Add("min_resident_bytes", static_cast<double>(sq.min_resident), "bytes",
             "squeeze," + cfg);
  report.Add("min_resident_over_guarantee", min_over_guarantee, "ratio",
             "squeeze," + cfg);
  report.Add("docs_survived_frac", survived_frac, "ratio", "squeeze," + cfg);
  report.Add("reclaim_evictions", static_cast<double>(sq.reclaim_evictions),
             "documents", "squeeze," + cfg);
  report.Add("reclaimed_bytes", static_cast<double>(sq.reclaimed_bytes), "bytes",
             "squeeze," + cfg);
  report.Add("hostile_admitted_frac", hostile_admitted_frac, "ratio",
             "admission," + cfg);
  report.Add("hostile_refusals", static_cast<double>(ad.hostile_refusals),
             "charges", "admission," + cfg);
  report.Add("paying_refusals", static_cast<double>(ad.paying_refusals),
             "charges", "admission," + cfg);
  if (!report.Flush()) {
    std::fprintf(stderr, "failed to write %s\n", report.path().c_str());
    return 1;
  }

  // Invariant gates: these hold by construction of the memory share tree, on
  // any machine, so a violation is a correctness regression, not noise.
  bool ok = true;
  if (sq.min_resident < sq.guarantee) {
    std::fprintf(stderr,
                 "FAIL: latency tenant dipped below its guarantee (%lld < %lld)\n",
                 static_cast<long long>(sq.min_resident),
                 static_cast<long long>(sq.guarantee));
    ok = false;
  }
  if (sq.docs_survived != kLatencyDocs) {
    std::fprintf(stderr, "FAIL: reclaim evicted guaranteed working-set documents\n");
    ok = false;
  }
  if (sq.reclaim_evictions == 0 || sq.reclaimed_bytes == 0) {
    std::fprintf(stderr, "FAIL: hog pressure never triggered reclaim\n");
    ok = false;
  }
  if (sq.latency_refusals != 0 || ad.paying_refusals != 0) {
    std::fprintf(stderr, "FAIL: a guaranteed tenant was refused a charge\n");
    ok = false;
  }
  if (ad.hostile_refusals == 0 || ad.hostile_admitted > capacity - ad.guarantee) {
    std::fprintf(stderr, "FAIL: admission control failed to reserve the guarantee\n");
    ok = false;
  }
  std::printf("\ninvariants (guarantee floor, reclaim ran, admission held): %s\n",
              ok ? "OK" : "FAILED");
  if (!ok) {
    return 1;
  }

  if (!check_against.empty()) {
    std::ifstream in(check_against);
    if (!in) {
      std::fprintf(stderr, "--check-against: cannot read %s\n", check_against.c_str());
      return 1;
    }
    std::ostringstream buf;
    buf << in.rdbuf();
    const auto doc = telemetry::ParseJson(buf.str());
    if (!doc.has_value()) {
      std::fprintf(stderr, "--check-against: %s is not valid JSON\n",
                   check_against.c_str());
      return 1;
    }
    bool gate_ok = true;
    const struct {
      const char* metric;
      const char* prefix;
      double value;
    } gates[] = {
        {"min_resident_over_guarantee", "squeeze", min_over_guarantee},
        {"docs_survived_frac", "squeeze", survived_frac},
        {"hostile_admitted_frac", "admission", hostile_admitted_frac},
    };
    for (const auto& g : gates) {
      const double base = BaselineValue(*doc, g.metric, g.prefix);
      if (base < 0) {
        std::fprintf(stderr, "--check-against: no %s in %s\n", g.metric,
                     check_against.c_str());
        return 1;
      }
      const double floor = base * (1.0 - tolerance);
      std::printf("baseline %s %.3f, floor %.3f: %s\n", g.metric, base, floor,
                  g.value >= floor ? "OK" : "REGRESSED");
      if (g.value < floor) {
        gate_ok = false;
      }
    }
    if (!gate_ok) {
      return 1;
    }
  }
  return 0;
}
