#include "src/kernel/cpu_engine.h"

#include <algorithm>
#include <utility>

#include "src/common/check.h"
#include "src/kernel/kernel.h"
#include "src/verify/audit.h"
#include "src/verify/lockset.h"

namespace kernel {

namespace {

// Marks the race detector's current simulated thread for the duration of a
// RunThread body, restoring the previous context (usually the kernel) on
// every exit path. Null-safe and one branch when verification is off.
class ScopedCurrentThread {
 public:
  ScopedCurrentThread(verify::RaceDetector* detector, std::uint64_t tid)
      : detector_(detector) {
    if (detector_ != nullptr) {
      previous_ = detector_->current_thread();
      detector_->SetCurrentThread(tid);
    }
  }
  ~ScopedCurrentThread() {
    if (detector_ != nullptr) {
      detector_->SetCurrentThread(previous_);
    }
  }
  ScopedCurrentThread(const ScopedCurrentThread&) = delete;
  ScopedCurrentThread& operator=(const ScopedCurrentThread&) = delete;

 private:
  verify::RaceDetector* const detector_;
  std::uint64_t previous_ = verify::RaceDetector::kKernelContext;
};

}  // namespace

CpuEngine::CpuEngine(sim::Simulator* simulator, Kernel* kernel, const CostModel* costs,
                     int cpu_id)
    : simr_(simulator),
      kernel_(kernel),
      costs_(costs),
      cpu_id_(cpu_id),
      created_at_(simulator->now()) {}

void CpuEngine::QueueInterruptWork(sim::Duration cost, rc::ContainerRef charge_to,
                                   std::function<void()> fn) {
  RC_CHECK_GE(cost, 0);
  irq_queue_.push_back(IrqItem{cost, std::move(charge_to), std::move(fn)});
  if (state_ == CpuState::kSlice) {
    PreemptSlice();
  }
  if (state_ == CpuState::kIdle) {
    MaybeDispatch();
  }
  // kInterrupt / kProcessing: the current activity's completion chains here.
}

void CpuEngine::Poke() {
  if (state_ == CpuState::kIdle) {
    MaybeDispatch();
    return;
  }
  if (state_ == CpuState::kSlice && sched_->ShouldPreempt(*running_)) {
    PreemptSlice();
    MaybeDispatch();
  }
}

rc::ContainerRef CpuEngine::CurrentContainer() const {
  if (running_ != nullptr && state_ == CpuState::kSlice) {
    return running_->binding().resource_binding();
  }
  return nullptr;
}

sim::Duration CpuEngine::idle_usec() const {
  return (simr_->now() - created_at_) - busy_usec_;
}

void CpuEngine::MaybeDispatch() {
  if (state_ != CpuState::kIdle) {
    return;  // a nested wake-up already started something
  }
  if (!irq_queue_.empty()) {
    StartInterrupt();
    return;
  }
  RC_CHECK_NE(sched_, nullptr);
  Thread* t = nullptr;
  {
    verify::ScopedLock sched_lock(kernel_->race_detector(), &kernel_->scheduler(),
                                  "sched_lock");
    RC_SHARED_WRITE(kernel_->race_detector(), kernel_->scheduler());
    t = sched_->PickNext(simr_->now());
  }
  if (t == nullptr) {
    ScheduleThrottleRetry();
    return;
  }
  RunThread(t, /*fresh=*/true);
}

void CpuEngine::StartInterrupt() {
  state_ = CpuState::kInterrupt;
  IrqItem item = std::move(irq_queue_.front());
  irq_queue_.pop_front();
  completion_ = simr_->After(item.cost, [this, item = std::move(item)]() mutable {
    busy_usec_ += item.cost;
    if (auto* aud = kernel_->auditor()) {
      aud->OnInterrupt(cpu_id_, item.cost, item.charge_to != nullptr);
    }
    kernel_->tracer().Record(simr_->now(), TraceKind::kInterrupt, 0,
                             item.charge_to ? item.charge_to->id() : 0, item.cost,
                             cpu_id_);
    if (item.charge_to) {
      kernel_->ChargeCpu(*item.charge_to, item.cost, rc::CpuKind::kNetwork);
    } else {
      interrupt_usec_ += item.cost;
    }
    state_ = CpuState::kProcessing;
    if (item.fn) {
      item.fn();
    }
    state_ = CpuState::kIdle;
    MaybeDispatch();
  });
}

void CpuEngine::RunThread(Thread* t, bool fresh) {
  ScopedCurrentThread in_thread(kernel_->race_detector(), t->id());
  state_ = CpuState::kProcessing;
  running_ = t;
  t->MarkRunning();
  if (fresh) {
    dispatch_used_ = 0;
    kernel_->tracer().Record(simr_->now(), TraceKind::kDispatch, t->id(),
                             t->binding().resource_binding()
                                 ? t->binding().resource_binding()->id()
                                 : 0,
                             0, cpu_id_);
  }
  while (true) {
    if (t->cpu_demand > 0) {
      if (dispatch_used_ >= costs_->quantum) {
        // Quantum exhausted across syscall boundaries: re-arbitrate.
        running_ = nullptr;
        state_ = CpuState::kIdle;
        t->MarkRunnable();
        sched_->Enqueue(t, simr_->now());
        MaybeDispatch();
        return;
      }
      StartSlice(t);
      return;
    }
    if (t->after_demand) {
      auto fn = std::exchange(t->after_demand, nullptr);
      fn();
      if (t->state() == Thread::State::kBlocked) {
        break;
      }
      continue;
    }
    if (t->pending_resume) {
      auto h = std::exchange(t->pending_resume, nullptr);
      h.resume();
      if (t->program_finished) {
        running_ = nullptr;
        state_ = CpuState::kIdle;
        kernel_->ReapThread(t);  // destroys t; may start nested dispatch
        MaybeDispatch();
        return;
      }
      if (t->yield_requested) {
        t->yield_requested = false;
        running_ = nullptr;
        state_ = CpuState::kIdle;
        t->MarkRunnable();
        sched_->Enqueue(t, simr_->now());
        MaybeDispatch();
        return;
      }
      if (t->state() == Thread::State::kBlocked) {
        break;
      }
      continue;
    }
    // A runnable thread must have demand, a deferred action, or a
    // continuation; anything else is a bug in the syscall layer.
    RC_CHECK(false);
  }
  // Blocked.
  kernel_->tracer().Record(simr_->now(), TraceKind::kBlock, t->id(), 0, 0, cpu_id_);
  running_ = nullptr;
  state_ = CpuState::kIdle;
  MaybeDispatch();
}

void CpuEngine::StartSlice(Thread* t) {
  const sim::Duration budget = costs_->quantum - dispatch_used_;
  slice_work_ = std::min(t->cpu_demand, budget);
  slice_overhead_ = (last_dispatched_ == t) ? 0 : costs_->context_switch;
  last_dispatched_ = t;
  slice_start_ = simr_->now();
  state_ = CpuState::kSlice;
  completion_ = simr_->After(slice_overhead_ + slice_work_, [this] { OnSliceComplete(); });
}

void CpuEngine::OnSliceComplete() {
  RC_CHECK_EQ(state_, CpuState::kSlice);
  kernel_->tracer().Record(simr_->now(), TraceKind::kSlice, running_->id(),
                           running_->binding().resource_binding()
                               ? running_->binding().resource_binding()->id()
                               : 0,
                           slice_overhead_ + slice_work_, cpu_id_);
  SettleSlice(slice_overhead_ + slice_work_);
  Thread* t = running_;
  running_ = nullptr;
  state_ = CpuState::kIdle;
  if (t->cpu_demand > 0) {
    // Quantum expired with demand remaining: back to the run queue.
    t->MarkRunnable();
    sched_->Enqueue(t, simr_->now());
    MaybeDispatch();
  } else {
    // Demand met: continue the thread's zero-cost actions immediately (no
    // preemption point inside a syscall). The quantum budget carries over.
    RunThread(t, /*fresh=*/false);
  }
}

void CpuEngine::PreemptSlice() {
  RC_CHECK_EQ(state_, CpuState::kSlice);
  completion_.Cancel();
  const sim::Duration consumed = simr_->now() - slice_start_;
  kernel_->tracer().Record(simr_->now(), TraceKind::kPreempt, running_->id(),
                           running_->binding().resource_binding()
                               ? running_->binding().resource_binding()->id()
                               : 0,
                           consumed, cpu_id_);
  SettleSlice(consumed);
  Thread* t = running_;
  running_ = nullptr;
  state_ = CpuState::kIdle;
  t->MarkRunnable();
  sched_->Enqueue(t, simr_->now());
}

void CpuEngine::SettleSlice(sim::Duration consumed) {
  RC_CHECK_GE(consumed, 0);
  busy_usec_ += consumed;
  const sim::Duration overhead = std::min(consumed, slice_overhead_);
  csw_usec_ += overhead;
  const sim::Duration work = consumed - overhead;
  dispatch_used_ += work;
  if (auto* aud = kernel_->auditor()) {
    aud->OnSlice(cpu_id_, overhead, work);
  }
  if (work > 0) {
    Thread* t = running_;
    t->AddExecuted(work);
    rc::ContainerRef target = t->binding().resource_binding();
    RC_CHECK_NE(target, nullptr);
    kernel_->ChargeCpu(*target, work, t->demand_kind);
    t->cpu_demand -= work;
    RC_CHECK_GE(t->cpu_demand, 0);
  }
  slice_overhead_ = 0;
  slice_work_ = 0;
}

void CpuEngine::ScheduleThrottleRetry() {
  auto when = sched_->NextEligibleTime(simr_->now());
  if (!when.has_value()) {
    return;
  }
  const sim::SimTime target = std::max(*when, simr_->now() + 1);
  if (retry_.pending() && retry_time_ <= target) {
    return;
  }
  retry_.Cancel();
  retry_time_ = target;
  retry_ = simr_->At(target, [this] { Poke(); });
}

}  // namespace kernel
