// The resource-generic proportional-share core (Sections 4.3, 4.5, 5.1),
// extracted from the CPU scheduler so every schedulable resource — CPU time,
// disk bandwidth, transmit-link bandwidth — arbitrates with the same
// machinery, keyed by the container hierarchy.
//
// At each tree level the share tree arbitrates with *stride scheduling*
// between
//
//   * each fixed-share child (weight = its guaranteed fraction), and
//   * the set of time-share children, treated as ONE aggregate client whose
//     weight is the residual fraction left by the fixed shares.
//
// Every charge advances the charged client's "pass" by usec/weight; the
// client with the minimum pass runs next. Clients (re)entering the runnable
// set are clamped to the level's virtual time, so they get no credit for
// idle periods. Within the time-share group, siblings are picked by decayed
// usage scaled by numeric priority.
//
// The tree is parameterized over "what a charge is" via ShareTreeOptions:
// the resource kind selects which of the container's attributes govern it
// (rc::SchedFor / rc::LimitFor), and `starve_priority_zero` selects the
// priority-0 semantics:
//
//   * true (CPU): priority 0 is the starvation class (Section 4.8) —
//     selected only when nothing positive-priority is runnable anywhere.
//   * false (disk, link): priority 0 is simply the weakest weight
//     (weight 1), so low-priority I/O makes proportional progress instead
//     of starving behind a saturating high-priority stream.
//
// Windowed limits ("resource sand-box", Section 5.6): a container whose
// windowed subtree usage exceeds its per-resource limit is throttled until
// the window ends.
//
// Queued items are opaque (void*): the CPU adapter queues Thread*, the disk
// engine queues IoRequest*, the link scheduler queues pending packets. Items
// queue FIFO per container; Push returns the node, whose pointer is the
// cookie Erase needs.
#ifndef SRC_SCHED_SHARE_TREE_H_
#define SRC_SCHED_SHARE_TREE_H_

#include <deque>
#include <memory>
#include <optional>
#include <unordered_map>
#include <vector>

#include "src/rc/manager.h"
#include "src/rc/usage.h"
#include "src/sim/time.h"

namespace sched {

struct ShareTreeOptions {
  // Which container attributes govern arbitration (rc::SchedFor/LimitFor).
  rc::ResourceKind resource = rc::ResourceKind::kCpu;
  // Multiplier applied to decayed usage on every Tick().
  double decay_per_tick = 1.0;
  // Length of the windowed-limit budget window.
  sim::Duration limit_window = 0;
  // Budget multiplier for limits: a window of length W holds capacity * W of
  // the resource (CPU: the CPU count; single-server devices: 1).
  int capacity = 1;
  // Stash the per-container Node in the container's sched_cookie (fast
  // path). Valid only for a single tree instance per container tree: per-CPU
  // scheduler shards and the disk/link trees must leave this false.
  bool cache_in_container = false;
  // Priority-0 semantics (see file comment).
  bool starve_priority_zero = true;
};

class ShareTree {
 public:
  struct Node {
    rc::ResourceContainer* container = nullptr;

    double decayed = 0.0;  // decayed subtree charge (time-share pick, stats)

    // Stride state. For a fixed-share container: its own pass. As a parent:
    // the aggregate pass and virtual time of its time-share children.
    double pass = 0.0;
    double tshare_pass = 0.0;
    double vtime = 0.0;
    int tshare_runnable_children = 0;

    // Windowed-limit state (see rc::UsageWindow).
    rc::UsageWindow window;

    // Items queued at this node (leaves only, normally).
    std::deque<void*> queue;
    // Queued items at or below this node.
    int runnable = 0;
  };

  ShareTree(rc::ContainerManager* manager, const ShareTreeOptions& options);

  ShareTree(const ShareTree&) = delete;
  ShareTree& operator=(const ShareTree&) = delete;

  // Queues `item` under `leaf` (FIFO within the container). Returns the node
  // holding it — the cookie a later Erase needs.
  Node* Push(rc::ResourceContainer* leaf, void* item);

  // Removes and returns the next item under the share policy; nullptr when
  // nothing is eligible (empty, or everything throttled / starvation-class).
  void* Pop(sim::SimTime now);

  // Removes `item` from `node`'s queue (it must be queued there).
  void Erase(Node* node, void* item);

  // `usec` of the resource was consumed on behalf of `c`: advances decayed
  // usage, stride passes, and limit windows on the whole ancestor chain.
  void OnCharge(rc::ResourceContainer& c, sim::Duration usec, sim::SimTime now);

  // Periodic decay of per-node usage.
  void Tick();

  // Earliest time a throttled container with queued items becomes eligible
  // again; nullopt when nothing relevant is throttled.
  std::optional<sim::SimTime> NextEligibleTime(sim::SimTime now) const;

  // Hierarchy lifecycle (wired to ContainerManager observers by the owner).
  void OnContainerDestroyed(rc::ResourceContainer& c);
  void OnContainerReparented(rc::ResourceContainer& child,
                             rc::ResourceContainer* old_parent,
                             rc::ResourceContainer* new_parent);

  // Total items queued anywhere in the tree.
  int queued_total() const { return total_queued_; }

  // Removes and returns every queued item, ignoring policy (owner teardown).
  std::vector<void*> DrainAll();

  // Introspection / test hooks.
  double DecayedUsage(const rc::ResourceContainer& c) const;
  bool IsThrottled(const rc::ResourceContainer& c, sim::SimTime now) const;

 private:
  Node* NodeFor(rc::ResourceContainer& c);
  Node* NodeForIfExists(const rc::ResourceContainer& c) const;
  bool Throttled(const Node& n, sim::SimTime now) const {
    return n.window.Throttled(now);
  }

  // Residual weight left for the time-share group under `parent`.
  double ResidualWeight(const rc::ResourceContainer& parent) const;

  // Arbitration at `parent`: the eligible child with minimal pass (stride),
  // descending into the time-share group by decayed/priority. `allow_zero`
  // admits priority-0 time-share children.
  Node* PickChild(Node* parent, sim::SimTime now, bool allow_zero);

  // One full descent; nullptr if nothing eligible under this policy pass.
  void* Descend(sim::SimTime now, bool allow_zero);

  void AdjustRunnable(rc::ResourceContainer* leaf, int delta);

  rc::ContainerManager* const manager_;
  const ShareTreeOptions options_;
  std::unordered_map<rc::ContainerId, std::unique_ptr<Node>> nodes_;
  int total_queued_ = 0;
};

}  // namespace sched

#endif  // SRC_SCHED_SHARE_TREE_H_
