// The epoch sampler: a simulator-driven periodic snapshot of every live
// container's ResourceUsage into per-container time series. This is the
// time-series backbone for Figure 11-14-style plots — attribution over time,
// per principal — without any instrumentation on the charging hot path (the
// sampler *reads* usage that containers already maintain).
#ifndef SRC_TELEMETRY_SAMPLER_H_
#define SRC_TELEMETRY_SAMPLER_H_

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <ostream>
#include <string>
#include <vector>

#include "src/rc/manager.h"
#include "src/rc/usage.h"
#include "src/sim/simulator.h"

namespace telemetry {

struct UsageSample {
  sim::SimTime at = 0;
  rc::ResourceUsage usage;
  // Guaranteed resident bytes under the memory share tree at the sample
  // instant (0 when no memory capacity / guarantee probe is configured).
  std::int64_t guaranteed_bytes = 0;
};

// Machine-level event-engine sample, one per epoch: cumulative dispatch and
// cancel totals plus the live queue depth at the sample instant.
struct EngineSample {
  sim::SimTime at = 0;
  std::uint64_t events_dispatched = 0;
  std::uint64_t events_canceled = 0;
  std::uint64_t queue_depth = 0;
};

struct ContainerSeries {
  rc::ContainerId id = 0;
  std::string name;
  sim::SimTime first_sample_at = 0;
  // Simulated time the container was destroyed; -1 while it is alive.
  sim::SimTime retired_at = -1;
  std::vector<UsageSample> samples;

  bool retired() const { return retired_at >= 0; }
};

class EpochSampler {
 public:
  // Samples every container known to `containers` each `interval` once
  // started. Both pointers must outlive the sampler's Start()..Stop() span;
  // the destroy observer registered on the manager is safe even if the
  // sampler dies first.
  EpochSampler(sim::Simulator* simulator, rc::ContainerManager* containers,
               sim::Duration interval);
  ~EpochSampler();

  EpochSampler(const EpochSampler&) = delete;
  EpochSampler& operator=(const EpochSampler&) = delete;

  // Begins periodic sampling; the first epoch fires one interval from now.
  void Start();
  void Stop();
  bool running() const { return running_; }

  // Takes one epoch sample immediately (also usable without Start, e.g. to
  // bracket a measurement window by hand).
  void SampleNow();

  // Optional: evaluated per live container at each epoch to stamp
  // UsageSample::guaranteed_bytes (the kernel wires this to the memory
  // broker's GuaranteeBytes). The callee must outlive sampling.
  void set_memory_guarantee_probe(
      std::function<std::int64_t(const rc::ResourceContainer&)> probe) {
    guarantee_probe_ = std::move(probe);
  }

  sim::Duration interval() const { return interval_; }
  std::size_t epochs() const { return epochs_; }

  // Per-container series, keyed by container id. A container that was
  // destroyed keeps its series (with `retired_at` stamped); a container
  // created mid-run starts its series at the first epoch that saw it.
  const std::map<rc::ContainerId, ContainerSeries>& series() const { return series_; }

  // Machine-level engine series, one sample per epoch.
  const std::vector<EngineSample>& engine_series() const { return engine_series_; }

  // JSON Lines: one object per (epoch, container) —
  //   {"at":..,"container":..,"name":..,"cpu_user_usec":..,...}
  // plus one {"retired":...} line per destroyed container, plus one
  // {"at":..,"engine":{...}} machine line per epoch.
  void WriteJsonLines(std::ostream& os) const;

 private:
  void Tick();

  sim::Simulator* const simr_;
  rc::ContainerManager* const containers_;
  const sim::Duration interval_;

  std::map<rc::ContainerId, ContainerSeries> series_;
  std::vector<EngineSample> engine_series_;
  std::function<std::int64_t(const rc::ResourceContainer&)> guarantee_probe_;
  std::size_t epochs_ = 0;
  sim::EventHandle timer_;
  bool running_ = false;
  // Outlives `this` inside the manager's destroy observer; the observer
  // bails out once the sampler is gone.
  std::shared_ptr<EpochSampler*> self_;
};

}  // namespace telemetry

#endif  // SRC_TELEMETRY_SAMPLER_H_
