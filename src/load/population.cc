#include "src/load/population.h"

#include <utility>

#include "src/common/check.h"

namespace load {

Population::Population(sim::Simulator* simulator, Wire* wire, PopulationConfig config)
    : simr_(simulator), wire_(wire), config_(std::move(config)), rng_(config_.seed) {
  RC_CHECK_GT(config_.clients, 0);
  clients_.reserve(static_cast<std::size_t>(config_.clients));
  for (int i = 0; i < config_.clients; ++i) {
    HttpClient::Config cc = config_.client;
    cc.addr = AddrFor(i);
    cc.doc_set = config_.doc_set;
    cc.doc_seed = rng_.NextU64();
    if (config_.arrival == PopulationConfig::Arrival::kOpenLoop) {
      cc.conns_per_activation = config_.conns_per_session;
      cc.on_park = [this](HttpClient* c) {
        if (!stopped_) {
          parked_.push_back(c);
        }
      };
    }
    clients_.push_back(std::make_unique<HttpClient>(
        simr_, wire_, config_.client_id_base + static_cast<std::uint32_t>(i), std::move(cc)));
  }
}

net::Addr Population::AddrFor(int index) const {
  switch (config_.layout) {
    case PopulationConfig::AddressLayout::kFlat:
      return net::Addr{config_.base_addr.v + static_cast<std::uint32_t>(index) + 1};
    case PopulationConfig::AddressLayout::kBlocks250: {
      // 250 hosts per /24 block; successive blocks advance the third octet
      // (carrying into the second), so CIDR filters see distinct prefixes.
      const std::uint32_t block = static_cast<std::uint32_t>(index) / 250;
      const std::uint32_t host = static_cast<std::uint32_t>(index) % 250 + 1;
      return net::Addr{config_.base_addr.v + (block << 8) + host};
    }
  }
  return config_.base_addr;
}

void Population::Start(sim::SimTime at) {
  stopped_ = false;
  switch (config_.arrival) {
    case PopulationConfig::Arrival::kClosedLoop:
      StartClosedLoop(at);
      return;
    case PopulationConfig::Arrival::kOpenLoop: {
      parked_.clear();
      // Members activate lazily: all start parked and wake per arrival.
      for (auto it = clients_.rbegin(); it != clients_.rend(); ++it) {
        parked_.push_back(it->get());
      }
      simr_->At(at, [this] { ScheduleArrival(); });
      return;
    }
    case PopulationConfig::Arrival::kOnOff:
      ScheduleOnPhase(at);
      return;
  }
}

void Population::StartClosedLoop(sim::SimTime at) {
  sim::SimTime t = at;
  for (auto& c : clients_) {
    c->Start(t);
    t += config_.stagger;
  }
}

void Population::ScheduleArrival() {
  if (stopped_) {
    return;
  }
  // Draw the gap first so the RNG stream is independent of pool occupancy.
  const sim::Duration gap = rng_.PoissonGap(config_.rate_per_sec);
  if (parked_.empty()) {
    ++shed_arrivals_;
  } else {
    HttpClient* c = parked_.back();
    parked_.pop_back();
    c->Start(simr_->now());
  }
  simr_->After(gap, [this] { ScheduleArrival(); });
}

void Population::ScheduleOnPhase(sim::SimTime at) {
  if (stopped_) {
    return;
  }
  simr_->At(at, [this] {
    if (stopped_) {
      return;
    }
    StartClosedLoop(simr_->now());
    ScheduleOffPhase(simr_->now() + config_.on_period);
  });
}

void Population::ScheduleOffPhase(sim::SimTime at) {
  simr_->At(at, [this] {
    if (stopped_) {
      return;
    }
    for (auto& c : clients_) {
      c->Stop();
    }
    ScheduleOnPhase(simr_->now() + config_.off_period);
  });
}

void Population::Stop() {
  stopped_ = true;
  for (auto& c : clients_) {
    c->Stop();
  }
}

std::uint64_t Population::completed() const {
  std::uint64_t n = 0;
  for (const auto& c : clients_) {
    n += c->completed();
  }
  return n;
}

std::uint64_t Population::failures() const {
  std::uint64_t n = 0;
  for (const auto& c : clients_) {
    n += c->failures();
  }
  return n;
}

std::uint64_t Population::timeouts() const {
  std::uint64_t n = 0;
  for (const auto& c : clients_) {
    n += c->timeouts();
  }
  return n;
}

void Population::MergeLatencies(sim::SampleSet& out) const {
  for (const auto& c : clients_) {
    out.Merge(c->latencies());
  }
}

void Population::ResetStats() {
  shed_arrivals_ = 0;
  for (auto& c : clients_) {
    c->ResetStats();
  }
}

}  // namespace load
