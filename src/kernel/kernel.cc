#include "src/kernel/kernel.h"

#include <algorithm>
#include <utility>

#include "src/common/check.h"
#include "src/kernel/decay_scheduler.h"
#include "src/kernel/hier_scheduler.h"
#include "src/kernel/syscalls.h"
#include "src/verify/audit.h"
#include "src/verify/lockset.h"

namespace kernel {

KernelConfig UnmodifiedSystemConfig() {
  KernelConfig cfg;
  cfg.net_mode = net::NetMode::kSoftint;
  cfg.sched = SchedulerKind::kDecayUsage;
  return cfg;
}

KernelConfig LrpSystemConfig() {
  KernelConfig cfg;
  cfg.net_mode = net::NetMode::kLrp;
  cfg.sched = SchedulerKind::kDecayUsage;
  return cfg;
}

KernelConfig ResourceContainerSystemConfig() {
  KernelConfig cfg;
  cfg.net_mode = net::NetMode::kResourceContainer;
  cfg.sched = SchedulerKind::kHierarchical;
  return cfg;
}

Kernel::Kernel(sim::Simulator* simulator, KernelConfig config)
    : simr_(simulator), config_(config) {
  const int ncpus = std::max(1, config_.cpus);
  config_.cpus = ncpus;
  // Install the memory arbiter before anything can charge bytes, so every
  // memory charge in a kernel-owned hierarchy flows through one broker.
  memory_broker_ =
      std::make_unique<MemoryBroker>(&containers_, config_.memory_bytes);
  // One policy instance per CPU; on a uniprocessor the single instance is
  // wired directly to the engine (no sharding layer on the hot path).
  auto make_policy = [this, ncpus]() -> std::unique_ptr<CpuScheduler> {
    switch (config_.sched) {
      case SchedulerKind::kDecayUsage:
        return std::make_unique<DecayUsageScheduler>(config_.costs.decay_per_tick);
      case SchedulerKind::kHierarchical:
        return std::make_unique<HierarchicalScheduler>(
            &containers_, config_.costs.decay_per_tick, config_.costs.limit_window,
            /*capacity_cpus=*/ncpus);
    }
    return nullptr;
  };
  if (ncpus == 1) {
    sched_ = make_policy();
    active_sched_ = sched_.get();
  } else {
    sharded_ = std::make_unique<ShardedScheduler>(ncpus, make_policy);
    active_sched_ = sharded_.get();
  }
  smp_ = std::make_unique<SmpEngine>(simr_, this, &config_.costs, ncpus,
                                     config_.irq_steering);
  for (int i = 0; i < ncpus; ++i) {
    smp_->engine(i).set_scheduler(ncpus == 1 ? active_sched_ : sharded_->ViewFor(i));
  }
  if (sharded_ != nullptr) {
    sharded_->set_poke([this](int cpu) { smp_->engine(cpu).Poke(); });
  }
  stack_ = std::make_unique<net::Stack>(this, config_.costs.ToStackCosts(),
                                        config_.net_mode);
  disk_ = std::make_unique<disk::DiskEngine>(simr_, config_.disk_costs,
                                             &containers_);
  net::LinkConfig link_config;
  link_config.mbps = config_.link_mbps;
  link_ = std::make_unique<net::LinkScheduler>(simr_, &containers_, link_config);
  link_->set_sink([this](const net::Packet& p) {
    if (wire_sink_) {
      wire_sink_(p);
    }
  });
  // The scheduler/disk/link/memory share trees registered themselves with
  // the manager above; the kernel listens too, to clean up policies with
  // private per-container state (decay usage).
  containers_.AddLifecycleListener(this);
}

void Kernel::OnContainerDestroyed(rc::ResourceContainer& c) {
  if (!shutting_down_) {
    active_sched_->OnContainerDestroyed(c);
  }
}

Kernel::~Kernel() {
  Stop();
  shutting_down_ = true;
  // Unhook the share trees from container lifecycle: processes (and their
  // threads' container references) die in bulk below, and per-container
  // scheduler state no longer matters.
  active_sched_->DetachLifecycle();
  disk_->DetachLifecycle();
  link_->DetachLifecycle();
  memory_broker_->DetachLifecycle();
  // Destroy processes (and their threads' container references) while the
  // scheduler still exists.
  processes_.clear();
}

void Kernel::Start() {
  if (running_) {
    return;
  }
  running_ = true;
  ScheduleTick();
  SchedulePrune();
}

void Kernel::Stop() {
  running_ = false;
  tick_timer_.Cancel();
  prune_timer_.Cancel();
}

void Kernel::ScheduleTick() {
  tick_timer_ = simr_->After(config_.costs.decay_tick, [this] {
    active_sched_->Tick(simr_->now());
    disk_->Tick();
    link_->Tick();
    if (running_) {
      ScheduleTick();
    }
  });
}

void Kernel::SchedulePrune() {
  prune_timer_ = simr_->After(config_.costs.binding_prune_interval, [this] {
    const sim::SimTime t = simr_->now();
    for (auto& [pid, proc] : processes_) {
      for (auto& thread : proc->threads()) {
        thread->binding().scheduler_binding().Prune(
            t, config_.costs.binding_idle_threshold);
      }
    }
    if (running_) {
      SchedulePrune();
    }
  });
}

Process* Kernel::CreateProcess(std::string name, rc::ContainerRef default_container) {
  if (!default_container) {
    auto created = containers_.Create(nullptr, name);
    RC_CHECK(created.ok());
    default_container = *std::move(created);
  }
  const Pid pid = next_pid_++;
  auto proc = std::make_unique<Process>(this, pid, std::move(name),
                                        std::move(default_container));
  Process* raw = proc.get();
  processes_[pid] = std::move(proc);
  return raw;
}

Thread* Kernel::SpawnThread(Process* process, std::string name,
                            std::function<Program(Sys)> body) {
  RC_CHECK_NE(process, nullptr);
  auto owned = std::make_unique<Thread>(this, process, next_tid_++, std::move(name));
  Thread* t = owned.get();
  t->binding().Bind(process->default_container(), now());
  process->threads().push_back(std::move(owned));
  process->mark_started();

  // Keep the callable alive for the thread's lifetime: a coroutine lambda
  // reads its captures through the lambda object itself.
  auto stored = std::make_shared<std::function<Program(Sys)>>(std::move(body));
  t->body_keepalive = [stored] {};
  Program prog = (*stored)(Sys(this, t));
  t->frame = prog.handle();
  t->frame.promise().thread = t;
  t->pending_resume = t->frame;  // first dispatch starts the body
  t->MarkRunnable();
  {
    verify::ScopedLock sched_lock(race_detector_, active_sched_, "sched_lock");
    RC_SHARED_WRITE(race_detector_, *active_sched_);
    active_sched_->Enqueue(t, now());
  }
  PokeCpus();
  return t;
}

void Kernel::ReapThread(Thread* t) {
  tracer_.Record(simr_->now(), TraceKind::kExit, t->id(), 0, 0);
  {
    verify::ScopedLock sched_lock(race_detector_, active_sched_, "sched_lock");
    RC_SHARED_WRITE(race_detector_, *active_sched_);
    active_sched_->Remove(t);
  }
  Process* p = t->process();
  p->reaped_executed_usec += t->executed_usec();
  if (p->net_thread == t) {
    p->net_thread = nullptr;
  }
  auto& threads = p->threads();
  threads.erase(std::remove_if(threads.begin(), threads.end(),
                               [t](const std::unique_ptr<Thread>& owned) {
                                 return owned.get() == t;
                               }),
                threads.end());
  if (p->zombie()) {
    const Pid pid = p->pid();
    const bool auto_reap = p->auto_reap;
    auto watchers = std::move(p->exit_watchers);
    p->exit_watchers.clear();
    for (auto& w : watchers) {
      w();
    }
    if (auto_reap) {
      ReapProcess(pid);  // may already be gone if a watcher reaped it
    }
  }
}

Process* Kernel::FindProcess(Pid pid) {
  auto it = processes_.find(pid);
  return it == processes_.end() ? nullptr : it->second.get();
}

void Kernel::ReapProcess(Pid pid) {
  auto it = processes_.find(pid);
  if (it != processes_.end() && it->second->zombie()) {
    reaped_executed_by_name_[it->second->name()] += it->second->TotalExecutedUsec();
    select_waiters_.erase(it->second.get());
    processes_.erase(it);
  }
}

void Kernel::AttachTelemetry(telemetry::Registry* registry) {
  telemetry_ = registry;
  if (registry == nullptr) {
    charge_counters_[0] = charge_counters_[1] = charge_counters_[2] = nullptr;
    tracer_.set_recorded_counter(nullptr);
    return;
  }
  charge_counters_[static_cast<int>(rc::CpuKind::kUser)] =
      registry->GetCounter("rc.cpu.user_usec", "usec");
  charge_counters_[static_cast<int>(rc::CpuKind::kKernel)] =
      registry->GetCounter("rc.cpu.kernel_usec", "usec");
  charge_counters_[static_cast<int>(rc::CpuKind::kNetwork)] =
      registry->GetCounter("rc.cpu.network_usec", "usec");
  tracer_.set_recorded_counter(registry->GetCounter("kernel.trace.recorded", "events"));
  registry->AddProbe("rc.containers.live", "containers",
                     [this] { return static_cast<double>(containers_.live_count()); });
  registry->AddProbe("kernel.processes", "processes",
                     [this] { return static_cast<double>(processes_.size()); });
  memory_broker_->RegisterMetrics(registry);
}

void Kernel::AttachAuditor(verify::ChargeAuditor* auditor) {
  auditor_ = auditor;
  disk_->set_auditor(auditor);
  link_->set_auditor(auditor);
  memory_broker_->set_auditor(auditor);
  if (auditor != nullptr) {
    auditor->ObserveHierarchy(&containers_);
  }
}

std::vector<std::string> Kernel::AuditCheck() const {
  if (auditor_ == nullptr) {
    return {};
  }
  std::vector<verify::ChargeAuditor::CpuSample> samples;
  for (int i = 0; i < smp_->cpus(); ++i) {
    const CpuEngine& eng = smp_->engine(i);
    verify::ChargeAuditor::CpuSample s;
    s.cpu = i;
    s.busy = eng.busy_usec();
    s.idle = eng.idle_usec();
    s.wallclock = simr_->now() - eng.created_at();
    samples.push_back(s);
  }
  // Scheduled devices: the disk always exists; the link participates even
  // when disabled (all tallies stay zero, so the checks are vacuous).
  std::vector<verify::ChargeAuditor::DeviceSample> devices;
  {
    verify::ChargeAuditor::DeviceSample d;
    d.kind = rc::ResourceKind::kDisk;
    d.busy = disk_->stats().busy_usec;
    d.wallclock = simr_->now() - disk_->created_at();
    d.idle = d.wallclock - d.busy;
    devices.push_back(d);
  }
  {
    verify::ChargeAuditor::DeviceSample d;
    d.kind = rc::ResourceKind::kLink;
    d.busy = link_->stats().busy_usec;
    d.wallclock = simr_->now() - link_->created_at();
    d.idle = d.wallclock - d.busy;
    devices.push_back(d);
  }
  // Resident-byte conservation: the broker's running total must equal what
  // the kernel objects actually hold (reclaimable cache bytes + connection
  // bytes + everything charged directly).
  verify::ChargeAuditor::MemorySample memory;
  memory.broker_resident = memory_broker_->total_bytes();
  memory.cache_resident = memory_broker_->ReclaimableBytes();
  memory.connection_bytes = stack_->connection_memory_bytes();
  return auditor_->Check(samples, devices, &memory);
}

void Kernel::FlushResourceCharges() {
  active_sched_->FlushCharges();
  disk_->FlushCharges();
  link_->FlushCharges();
}

RC_HOT_PATH void Kernel::ChargeCpu(rc::ResourceContainer& c, sim::Duration usec,
                                   rc::CpuKind kind) {
  if (auditor_ != nullptr) {
    auditor_->OnCharge(c, usec);
    switch (auditor_->TakeFault()) {
      case verify::AuditFault::kDropCharge:
        return;  // the charge silently vanishes — the auditor must notice
      case verify::AuditFault::kDuplicateCharge:
        c.ChargeCpu(usec, kind);  // charged once here, once again below
        break;
      case verify::AuditFault::kNone:
        break;
    }
  }
  c.ChargeCpu(usec, kind);
  if (telemetry_ != nullptr) {
    charge_counters_[static_cast<int>(kind)]->Add(static_cast<std::uint64_t>(usec));
  }
  verify::ScopedLock sched_lock(race_detector_, active_sched_, "sched_lock");
  RC_SHARED_WRITE(race_detector_, *active_sched_);
  active_sched_->OnCharge(c, usec, simr_->now());
}

rccommon::Expected<void> Kernel::SetThreadAffinity(Thread* t, int cpu) {
  if (cpu < -1 || cpu >= smp_->cpus()) {
    return rccommon::MakeUnexpected(rccommon::Errc::kInvalidArgument);
  }
  t->pinned_cpu = cpu;
  if (cpu < 0) {
    return {};  // unpinned; the thread keeps its current home
  }
  if (t->state() == Thread::State::kRunnable && t->home_cpu != cpu) {
    // Queued on another shard: move it now so the pin takes effect before
    // the next dispatch.
    active_sched_->Remove(t);
    t->home_cpu = cpu;
    active_sched_->Enqueue(t, now());
    PokeCpus();
  } else {
    // Running or blocked: not in any queue. The next enqueue (slice end or
    // wake-up) routes to the pinned CPU via HomeFor.
    t->home_cpu = cpu;
  }
  return {};
}

sim::Duration Kernel::TotalChargedCpuUsec() const {
  return containers_.root()->SubtreeUsage().TotalCpuUsec();
}

sim::Duration Kernel::ExecutedUsecForName(const std::string& name) const {
  sim::Duration total = 0;
  auto it = reaped_executed_by_name_.find(name);
  if (it != reaped_executed_by_name_.end()) {
    total += it->second;
  }
  for (const auto& [pid, proc] : processes_) {
    if (proc->name() == name) {
      total += proc->TotalExecutedUsec();
    }
  }
  return total;
}

void Kernel::DeliverFromWire(const net::Packet& p) {
  // Interrupt steering: the chosen CPU takes the device interrupt AND any
  // protocol processing queued behind it, so softint misaccounting and
  // livelock reproduce per-CPU.
  CpuEngine* eng = &smp_->SteerFor(p);
  // Softint misaccounting: protocol processing will be charged to whoever is
  // running right now on the interrupted CPU (captured here, at
  // device-interrupt time).
  rc::ContainerRef unlucky;
  sim::Duration irq_cost = config_.costs.irq_overhead;
  if (config_.net_mode == net::NetMode::kSoftint) {
    unlucky = eng->CurrentContainer();
  } else {
    irq_cost += config_.costs.packet_filter;  // early demux at interrupt level
  }
  eng->QueueInterruptWork(irq_cost, nullptr, [this, p, unlucky, eng] {
    auto work = stack_->HandleArrival(p);
    if (work.has_value()) {
      // Softint mode: protocol processing runs now, at interrupt priority.
      rc::ContainerRef charge = work->charge_to ? work->charge_to : unlucky;
      eng->QueueInterruptWork(work->cost, std::move(charge), std::move(work->apply));
    }
  });
}

// --- Syscall-layer plumbing --------------------------------------------

void Kernel::AddAcceptWaiter(net::ListenSocket* ls, std::function<bool()> waiter) {
  accept_waiters_[ls].push_back(std::move(waiter));
}

void Kernel::AddConnWaiter(net::Connection* conn, std::function<bool()> waiter) {
  conn_waiters_[conn].push_back(std::move(waiter));
}

void Kernel::AddSelectWaiter(Process* proc, std::function<bool()> waiter) {
  select_waiters_[proc].push_back(std::move(waiter));
}

void Kernel::SetNetWorkWaiter(std::uint64_t owner_tag, std::function<void()> waiter) {
  net_work_waiters_[owner_tag] = std::move(waiter);
}

void Kernel::AddProcessExitWaiter(Pid pid, std::function<void()> waiter) {
  Process* p = FindProcess(pid);
  RC_CHECK_NE(p, nullptr);
  p->exit_watchers.push_back(std::move(waiter));
}

bool Kernel::IsFdReady(Process& proc, int fd) const {
  const FdEntry* entry = proc.fds().GetEntry(fd);
  if (entry == nullptr) {
    return false;
  }
  if (const auto* ls = std::get_if<net::ListenRef>(entry)) {
    for (const auto& conn : (*ls)->accept_queue()) {
      if (!conn->torn_down()) {
        return true;
      }
    }
    return false;
  }
  if (const auto* conn = std::get_if<net::ConnRef>(entry)) {
    return (*conn)->has_data() || (*conn)->peer_closed() || (*conn)->torn_down();
  }
  return false;
}

void Kernel::DrainAcceptWaiters(net::ListenSocket* ls) {
  auto it = accept_waiters_.find(ls);
  if (it == accept_waiters_.end()) {
    return;
  }
  auto waiters = std::move(it->second);
  accept_waiters_.erase(it);
  for (auto& w : waiters) {
    w();  // each waiter re-checks; on a closed socket it completes with error
  }
}

void Kernel::EnsureNetThread(Process* proc) {
  if (config_.net_mode == net::NetMode::kSoftint || proc->net_thread != nullptr) {
    return;
  }
  const std::uint64_t owner = proc->pid();
  proc->net_thread = SpawnThread(proc, "knet", [this, owner](Sys sys) {
    return NetThreadBody(sys, owner);
  });
}

Program Kernel::NetThreadBody(Sys sys, std::uint64_t owner_tag) {
  Thread* t = sys.thread();
  for (;;) {
    auto work = stack_->NextPendingWork(owner_tag);
    if (!work.has_value()) {
      // Block until the stack queues more work for this process.
      co_await Sys::BlockingAwaiter<bool>{
          t, 0, rc::CpuKind::kNetwork,
          [this, t, owner_tag](std::optional<bool>* slot) -> bool {
            if (stack_->HasPendingWork(owner_tag)) {
              slot->emplace(true);
              return true;
            }
            SetNetWorkWaiter(owner_tag, [t, slot] {
              slot->emplace(true);
              t->Unblock();
            });
            return false;
          }};
      continue;
    }
    // Charge (and schedule) this packet's processing in the context of the
    // container it belongs to (Section 4.7).
    rc::ContainerRef target =
        work->charge_to ? work->charge_to : t->process()->default_container();
    t->binding().Bind(target, simr_->now());
    t->set_sched_hint(target);
    co_await Sys::ComputeAwaiter{t, work->cost, rc::CpuKind::kNetwork};
    work->apply();
  }
}

// --- SYN-drop monitor -----------------------------------------------------

Kernel::SynDropReport Kernel::TakeSynDrops(net::ListenSocket* ls) {
  SynDropReport report;
  auto it = syn_drops_.find(ls);
  if (it == syn_drops_.end()) {
    return report;
  }
  for (const auto& [prefix, count] : it->second) {
    report.total += count;
    report.sources.push_back(SynDropSource{net::Addr{prefix}, count});
  }
  std::sort(report.sources.begin(), report.sources.end(),
            [](const SynDropSource& a, const SynDropSource& b) {
              return a.drops > b.drops;
            });
  syn_drops_.erase(it);
  return report;
}

// --- net::StackEnv ----------------------------------------------------------

int Kernel::EventPriorityFor(const rc::ContainerRef& c) const {
  if (config_.net_mode != net::NetMode::kResourceContainer || !c) {
    return 0;
  }
  return c->attributes().EffectiveNetworkPriority();
}

void Kernel::EmitToWire(net::Packet p) {
  EmitToWire(std::move(p), nullptr);
}

void Kernel::EmitToWire(net::Packet p, rc::ContainerRef charge_to) {
  // The link scheduler owns delivery: rate 0 passes straight through to the
  // wire sink, a real rate queues the packet under `charge_to`'s container.
  link_->Transmit(std::move(p), std::move(charge_to));
}

void Kernel::WakeAcceptors(net::ListenSocket& ls) {
  auto it = accept_waiters_.find(&ls);
  if (it != accept_waiters_.end() && !it->second.empty()) {
    auto fn = std::move(it->second.front());
    it->second.pop_front();
    if (!fn()) {
      it->second.push_front(std::move(fn));
    }
  }
  Process* p = FindProcess(ls.owner_tag());
  if (p != nullptr) {
    if (auto fd = p->events().FdFor(&ls)) {
      p->events().Push(Event{*fd, Event::Kind::kAcceptReady,
                             EventPriorityFor(ls.container())},
                       config_.net_mode == net::NetMode::kResourceContainer);
    }
    WakeSelectWaiters(*p);
  }
}

void Kernel::WakeConnection(net::Connection& conn) {
  auto it = conn_waiters_.find(&conn);
  if (it != conn_waiters_.end() && !it->second.empty()) {
    auto fn = std::move(it->second.front());
    it->second.pop_front();
    if (!fn()) {
      it->second.push_front(std::move(fn));
    }
  }
  Process* p = FindProcess(conn.owner_tag());
  if (p != nullptr) {
    if (auto fd = p->events().FdFor(&conn)) {
      const Event::Kind kind =
          conn.has_data() ? Event::Kind::kDataReady : Event::Kind::kConnClosed;
      p->events().Push(Event{*fd, kind, EventPriorityFor(conn.container())},
                       config_.net_mode == net::NetMode::kResourceContainer);
    }
    WakeSelectWaiters(*p);
  }
}

void Kernel::WakeSelectWaiters(Process& proc) {
  auto it = select_waiters_.find(&proc);
  if (it == select_waiters_.end()) {
    return;
  }
  auto& waiters = it->second;
  waiters.erase(std::remove_if(waiters.begin(), waiters.end(),
                               [](std::function<bool()>& w) { return w(); }),
                waiters.end());
}

void Kernel::NotifyPendingNetWork(std::uint64_t owner_tag) {
  Process* p = FindProcess(owner_tag);
  if (p == nullptr || p->net_thread == nullptr) {
    return;
  }
  Thread* nt = p->net_thread;
  rc::ContainerRef top = stack_->PeekPendingContainer(owner_tag);
  if (!top) {
    return;
  }
  if (nt->state() == Thread::State::kBlocked) {
    nt->set_sched_hint(top);
    auto it = net_work_waiters_.find(owner_tag);
    if (it != net_work_waiters_.end()) {
      auto fn = std::move(it->second);
      net_work_waiters_.erase(it);
      fn();
    }
    return;
  }
  if (nt->state() == Thread::State::kRunnable && nt->sched_cookie != nullptr) {
    // Re-queue the network thread under the new top container when that
    // raises its effective priority (scheduler-binding effect, Section 4.3).
    const rc::ContainerRef& cur = nt->sched_hint();
    const int cur_prio = cur ? cur->attributes().EffectiveNetworkPriority() : 0;
    if (top->attributes().EffectiveNetworkPriority() > cur_prio) {
      nt->set_sched_hint(top);
      active_sched_->MigrateQueued(nt, simr_->now());
    }
  }
}

void Kernel::OnSynDrop(net::ListenSocket& ls, net::Addr source) {
  syn_drops_[&ls][source.v & 0xffffff00u] += 1;
  Process* p = FindProcess(ls.owner_tag());
  if (p != nullptr) {
    if (auto fd = p->events().FdFor(&ls)) {
      p->events().Push(Event{*fd, Event::Kind::kSynDrop, 0},
                       config_.net_mode == net::NetMode::kResourceContainer,
                       /*dedupe=*/true);
    }
  }
}

}  // namespace kernel
