// The process-per-connection server with a master and pre-forked workers
// (Figure 1; the NCSA-httpd architecture). The master accepts connections
// and passes descriptors to worker processes. Dynamic requests are handled
// by a library module inside the worker (the ISAPI/NSAPI variant of
// Section 2) rather than by forking.
#ifndef SRC_HTTPD_PREFORK_SERVER_H_
#define SRC_HTTPD_PREFORK_SERVER_H_

#include <deque>
#include <memory>
#include <vector>

#include "src/httpd/file_cache.h"
#include "src/httpd/server.h"
#include "src/httpd/server_config.h"
#include "src/kernel/kernel.h"
#include "src/kernel/sync.h"
#include "src/kernel/syscalls.h"

namespace telemetry {
class Registry;
}

namespace httpd {

class PreforkServer : public Server {
 public:
  PreforkServer(kernel::Kernel* kernel, FileCache* cache, ServerConfig config);

  // `default_container` becomes the master process's default container (the
  // workers inherit nothing from it — each forked worker is its own
  // principal, as on a stock kernel).
  void Start(rc::ContainerRef default_container = nullptr) override;

  const ServerStats& stats() const override { return stats_; }
  kernel::Process* master() const { return master_; }

  // Installs the httpd.* probes (server counters + file cache) on `registry`.
  void RegisterMetrics(telemetry::Registry& registry) override;

 private:
  struct WorkerState {
    kernel::Pid pid = 0;
    std::deque<int> jobs;  // worker-local connection descriptors
    kernel::Semaphore sem;
  };

  kernel::Program Master(kernel::Sys sys);
  kernel::Program Worker(kernel::Sys sys, WorkerState* state);

  kernel::Kernel* const kernel_;
  FileCache* const cache_;
  const ServerConfig config_;
  kernel::Process* master_ = nullptr;
  std::vector<std::unique_ptr<WorkerState>> workers_;
  ServerStats stats_;
};

}  // namespace httpd

#endif  // SRC_HTTPD_PREFORK_SERVER_H_
