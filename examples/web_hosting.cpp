// Differentiated quality of service for a Web server (Sections 4.8, 5.5).
//
// An ISP serves two customer populations: "gold" clients (paid a premium,
// addresses in 10.1.0.0/16) and "best-effort" clients (everyone else). The
// server binds one listen socket per class using the <address, CIDR-mask>
// namespace, attaches containers with different priorities, and creates a
// per-connection container for each accepted connection.
//
// The demo saturates the machine with best-effort traffic and shows that
// gold clients' response times stay low.
//
//   $ ./web_hosting
#include <cstdio>
#include <iostream>

#include "src/xp/scenario.h"
#include "src/xp/table.h"

int main() {
  xp::ScenarioOptions options;
  options.kernel_config = kernel::ResourceContainerSystemConfig();

  httpd::ServerConfig& server = options.server_config;
  server.use_containers = true;
  server.use_event_api = true;
  server.classes.clear();
  server.classes.push_back(
      httpd::ListenClass{net::CidrFilter{net::MakeAddr(10, 1, 0, 0), 16}, 48, "gold"});
  server.classes.push_back(httpd::ListenClass{net::kMatchAll, 8, "best-effort"});

  xp::Scenario scenario(options);
  scenario.StartServer();

  // Three gold clients, thirty best-effort clients (enough to saturate).
  auto gold = scenario.AddStaticClients(3, net::MakeAddr(10, 1, 0, 0), /*class=*/1);
  auto rest = scenario.AddStaticClients(30, net::MakeAddr(10, 2, 0, 0), /*class=*/0);
  scenario.StartAllClients();

  scenario.RunFor(sim::Sec(2));  // warm-up
  scenario.ResetClientStats();
  scenario.RunFor(sim::Sec(5));

  auto aggregate = [](const std::vector<load::HttpClient*>& clients) {
    std::uint64_t completed = 0;
    for (auto* c : clients) {
      completed += c->completed();
    }
    double mean = 0;
    std::size_t n = 0;
    for (auto* c : clients) {
      mean += c->latencies().mean() * static_cast<double>(c->latencies().count());
      n += c->latencies().count();
    }
    return std::make_pair(completed, n ? mean / static_cast<double>(n) : 0.0);
  };

  auto [gold_done, gold_ms] = aggregate(gold);
  auto [rest_done, rest_ms] = aggregate(rest);

  xp::Table table({"class", "clients", "req/s", "mean latency ms"});
  table.AddRow({"gold", "3", xp::FormatDouble(static_cast<double>(gold_done) / 5.0, 0),
                xp::FormatDouble(gold_ms, 2)});
  table.AddRow({"best-effort", "30",
                xp::FormatDouble(static_cast<double>(rest_done) / 5.0, 0),
                xp::FormatDouble(rest_ms, 2)});
  table.Print(std::cout);

  std::printf(
      "\nGold clients ride the high-priority containers: their kernel network\n"
      "processing, event delivery and application handling all run first, so\n"
      "their latency stays near the unloaded value while the machine is\n"
      "saturated by best-effort traffic.\n");
  return 0;
}
