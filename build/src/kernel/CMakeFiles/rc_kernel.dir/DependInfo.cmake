
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/kernel/cpu_engine.cc" "src/kernel/CMakeFiles/rc_kernel.dir/cpu_engine.cc.o" "gcc" "src/kernel/CMakeFiles/rc_kernel.dir/cpu_engine.cc.o.d"
  "/root/repo/src/kernel/decay_scheduler.cc" "src/kernel/CMakeFiles/rc_kernel.dir/decay_scheduler.cc.o" "gcc" "src/kernel/CMakeFiles/rc_kernel.dir/decay_scheduler.cc.o.d"
  "/root/repo/src/kernel/event_api.cc" "src/kernel/CMakeFiles/rc_kernel.dir/event_api.cc.o" "gcc" "src/kernel/CMakeFiles/rc_kernel.dir/event_api.cc.o.d"
  "/root/repo/src/kernel/fd_table.cc" "src/kernel/CMakeFiles/rc_kernel.dir/fd_table.cc.o" "gcc" "src/kernel/CMakeFiles/rc_kernel.dir/fd_table.cc.o.d"
  "/root/repo/src/kernel/hier_scheduler.cc" "src/kernel/CMakeFiles/rc_kernel.dir/hier_scheduler.cc.o" "gcc" "src/kernel/CMakeFiles/rc_kernel.dir/hier_scheduler.cc.o.d"
  "/root/repo/src/kernel/kernel.cc" "src/kernel/CMakeFiles/rc_kernel.dir/kernel.cc.o" "gcc" "src/kernel/CMakeFiles/rc_kernel.dir/kernel.cc.o.d"
  "/root/repo/src/kernel/process.cc" "src/kernel/CMakeFiles/rc_kernel.dir/process.cc.o" "gcc" "src/kernel/CMakeFiles/rc_kernel.dir/process.cc.o.d"
  "/root/repo/src/kernel/syscalls.cc" "src/kernel/CMakeFiles/rc_kernel.dir/syscalls.cc.o" "gcc" "src/kernel/CMakeFiles/rc_kernel.dir/syscalls.cc.o.d"
  "/root/repo/src/kernel/thread.cc" "src/kernel/CMakeFiles/rc_kernel.dir/thread.cc.o" "gcc" "src/kernel/CMakeFiles/rc_kernel.dir/thread.cc.o.d"
  "/root/repo/src/kernel/trace.cc" "src/kernel/CMakeFiles/rc_kernel.dir/trace.cc.o" "gcc" "src/kernel/CMakeFiles/rc_kernel.dir/trace.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/rc_common.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/rc_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/rc/CMakeFiles/rc_core.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/rc_net.dir/DependInfo.cmake"
  "/root/repo/build/src/disk/CMakeFiles/rc_disk.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
