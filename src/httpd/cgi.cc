#include "src/httpd/cgi.h"

namespace httpd {

namespace {

kernel::Program CgiMain(kernel::Sys sys, net::HttpRequestInfo req,
                        std::uint64_t* completed) {
  // The dynamic computation itself (the paper's CGI programs burn ~2 s of
  // CPU each, Section 5.6).
  co_await sys.Compute(req.cgi_cpu_usec, rc::CpuKind::kUser);
  // Respond directly on the inherited connection and close it.
  co_await sys.Send(/*conn_fd=*/0, req.response_bytes, req.request_id,
                    /*close_after=*/true);
  co_await sys.ReleaseFd(0);
  if (completed != nullptr) {
    ++*completed;
  }
}

}  // namespace

std::function<kernel::Program(kernel::Sys)> MakeCgiProgram(net::HttpRequestInfo req,
                                                           std::uint64_t* completed) {
  return [req, completed](kernel::Sys sys) { return CgiMain(sys, req, completed); };
}

}  // namespace httpd
