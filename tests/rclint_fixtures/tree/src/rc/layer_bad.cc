// Layering fixture: the container layer is device-agnostic — devices charge
// containers, never the reverse.
#include "src/net/stack.h"  // illegal: rc -> net

void RcLayerBad() {}
