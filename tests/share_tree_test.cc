// Unit tests for the resource-generic proportional-share core
// (src/sched/share_tree). The tree is exercised directly with opaque items,
// the way its CPU/disk/link adapters drive it.
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "src/rc/manager.h"
#include "src/sched/share_tree.h"

namespace sched {
namespace {

// One backlogged client: an identity the tests can push repeatedly.
struct Item {
  int id = 0;
};

class ShareTreeTest : public ::testing::Test {
 protected:
  rc::ContainerRef Fixed(const std::string& name, double share,
                         rc::ResourceKind kind = rc::ResourceKind::kCpu) {
    rc::Attributes a;
    if (kind == rc::ResourceKind::kCpu) {
      a.sched.cls = rc::SchedClass::kFixedShare;
      a.sched.fixed_share = share;
    } else if (kind == rc::ResourceKind::kDisk) {
      a.disk.override_sched = true;
      a.disk.sched.cls = rc::SchedClass::kFixedShare;
      a.disk.sched.fixed_share = share;
    } else {
      a.link.override_sched = true;
      a.link.sched.cls = rc::SchedClass::kFixedShare;
      a.link.sched.fixed_share = share;
    }
    return manager_.Create(nullptr, name, a).value();
  }

  rc::ContainerRef TimeShare(const std::string& name, int priority) {
    rc::Attributes a;
    a.sched.priority = priority;
    return manager_.Create(nullptr, name, a).value();
  }

  // Runs `rounds` backlogged service rounds: every container always has one
  // item queued; each pop charges `service` usec to the popped container and
  // re-queues it. Returns how many rounds each container won.
  std::vector<int> RunBacklogged(ShareTree& tree, std::vector<rc::ContainerRef> cts,
                                 int rounds, sim::Duration service = 100) {
    std::vector<Item> items(cts.size());
    std::vector<int> wins(cts.size(), 0);
    for (std::size_t i = 0; i < cts.size(); ++i) {
      items[i].id = static_cast<int>(i);
      tree.Push(cts[i].get(), &items[i]);
    }
    sim::SimTime now = 0;
    for (int r = 0; r < rounds; ++r) {
      auto* item = static_cast<Item*>(tree.Pop(now));
      if (item == nullptr) {
        break;
      }
      const std::size_t i = static_cast<std::size_t>(item->id);
      tree.OnCharge(*cts[i], service, now);
      now += service;
      tree.Push(cts[i].get(), item);
      ++wins[i];
    }
    return wins;
  }

  rc::ContainerManager manager_;
};

TEST_F(ShareTreeTest, FixedSharesSplitProportionally) {
  ShareTreeOptions opt;
  opt.resource = rc::ResourceKind::kDisk;
  opt.starve_priority_zero = false;
  ShareTree tree(&manager_, opt);
  auto a = Fixed("a", 0.5, rc::ResourceKind::kDisk);
  auto b = Fixed("b", 0.3, rc::ResourceKind::kDisk);
  auto c = Fixed("c", 0.2, rc::ResourceKind::kDisk);

  const std::vector<int> wins = RunBacklogged(tree, {a, b, c}, 1000);
  EXPECT_NEAR(wins[0], 500, 20);
  EXPECT_NEAR(wins[1], 300, 20);
  EXPECT_NEAR(wins[2], 200, 20);
}

TEST_F(ShareTreeTest, ReentryClampsPassToVirtualTime) {
  // A container that sat idle must not bank credit: after re-entry it splits
  // the resource evenly with an equal-share sibling instead of monopolizing
  // the device to "catch up".
  ShareTreeOptions opt;
  ShareTree tree(&manager_, opt);
  auto a = Fixed("a", 0.5);
  auto b = Fixed("b", 0.5);

  // Phase 1: only `a` is backlogged; its pass races far ahead of b's.
  Item ia;
  tree.Push(a.get(), &ia);
  sim::SimTime now = 0;
  for (int r = 0; r < 200; ++r) {
    auto* item = static_cast<Item*>(tree.Pop(now));
    ASSERT_EQ(item, &ia);
    tree.OnCharge(*a, 100, now);
    now += 100;
    tree.Push(a.get(), item);
  }

  // Phase 2: `b` enters. With clamping it wins about half the rounds; with
  // idle credit it would win essentially all of them.
  Item ib;
  tree.Push(b.get(), &ib);
  int b_wins = 0;
  for (int r = 0; r < 200; ++r) {
    auto* item = static_cast<Item*>(tree.Pop(now));
    ASSERT_NE(item, nullptr);
    rc::ResourceContainer* winner = item == &ia ? a.get() : b.get();
    tree.OnCharge(*winner, 100, now);
    now += 100;
    tree.Push(winner, item);
    if (item == &ib) {
      ++b_wins;
    }
  }
  EXPECT_NEAR(b_wins, 100, 10);
}

TEST_F(ShareTreeTest, TimeShareGroupGetsResidualWeight) {
  // One fixed-share container at 0.8 vs two time-share siblings: the group
  // is one stride client with the residual weight (0.2), and splits its
  // rounds by priority.
  ShareTreeOptions opt;
  ShareTree tree(&manager_, opt);
  auto f = Fixed("f", 0.8);
  auto t1 = TimeShare("t1", 32);
  auto t2 = TimeShare("t2", 16);

  const std::vector<int> wins = RunBacklogged(tree, {f, t1, t2}, 1000);
  EXPECT_NEAR(wins[0], 800, 30);
  EXPECT_NEAR(wins[1] + wins[2], 200, 30);
  // In-group: decayed/priority keying gives t1 about twice t2's rounds.
  EXPECT_GT(wins[1], wins[2]);
  EXPECT_NEAR(static_cast<double>(wins[1]) / std::max(1, wins[2]), 2.0, 0.6);
}

TEST_F(ShareTreeTest, WindowedLimitThrottlesUntilWindowEnd) {
  ShareTreeOptions opt;
  opt.resource = rc::ResourceKind::kDisk;
  opt.starve_priority_zero = false;
  opt.limit_window = 100000;
  ShareTree tree(&manager_, opt);

  rc::Attributes a;
  a.disk.limit = 0.1;  // 10% of the device per window
  auto limited = manager_.Create(nullptr, "limited", a).value();

  Item i1, i2;
  tree.Push(limited.get(), &i1);
  tree.Push(limited.get(), &i2);

  ASSERT_EQ(tree.Pop(0), &i1);
  // One big charge blows the 10000-usec budget for this window.
  tree.OnCharge(*limited, 20000, 0);
  EXPECT_TRUE(tree.IsThrottled(*limited, 20000));
  EXPECT_EQ(tree.Pop(20000), nullptr);
  ASSERT_TRUE(tree.NextEligibleTime(20000).has_value());
  EXPECT_EQ(*tree.NextEligibleTime(20000), 100000);
  // The window expires; the queued item becomes eligible again.
  EXPECT_EQ(tree.Pop(100000), &i2);
}

TEST_F(ShareTreeTest, PriorityZeroStarvesInCpuMode) {
  ShareTreeOptions opt;  // defaults: kCpu, starve_priority_zero = true
  ShareTree tree(&manager_, opt);
  auto hi = TimeShare("hi", 16);
  auto zero = TimeShare("zero", 0);

  Item ih, iz;
  tree.Push(zero.get(), &iz);
  tree.Push(hi.get(), &ih);
  // The positive-priority item always wins while queued...
  ASSERT_EQ(tree.Pop(0), &ih);
  tree.OnCharge(*hi, 100, 0);
  // ...and the starvation class runs only when nothing else is runnable.
  EXPECT_EQ(tree.Pop(100), &iz);
}

TEST_F(ShareTreeTest, PriorityZeroMakesProgressInDeviceMode) {
  ShareTreeOptions opt;
  opt.resource = rc::ResourceKind::kDisk;
  opt.starve_priority_zero = false;
  ShareTree tree(&manager_, opt);
  auto hi = TimeShare("hi", 16);
  auto zero = TimeShare("zero", 0);

  const std::vector<int> wins = RunBacklogged(tree, {hi, zero}, 1700);
  // Weight 16 vs weight 1: both make progress, in priority proportion.
  EXPECT_NEAR(wins[0], 1600, 60);
  EXPECT_GT(wins[1], 50);
}

TEST_F(ShareTreeTest, EraseAndDrainKeepCountsConsistent) {
  ShareTreeOptions opt;
  ShareTree tree(&manager_, opt);
  auto a = Fixed("a", 0.5);
  auto b = TimeShare("b", 16);

  Item i1, i2, i3;
  ShareTree::NodeIndex na = tree.Push(a.get(), &i1);
  tree.Push(a.get(), &i2);
  tree.Push(b.get(), &i3);
  EXPECT_EQ(tree.queued_total(), 3);

  tree.Erase(na, &i1);
  EXPECT_EQ(tree.queued_total(), 2);

  std::vector<void*> drained = tree.DrainAll();
  EXPECT_EQ(drained.size(), 2u);
  EXPECT_EQ(tree.queued_total(), 0);
  EXPECT_EQ(tree.Pop(0), nullptr);
}

}  // namespace
}  // namespace sched
