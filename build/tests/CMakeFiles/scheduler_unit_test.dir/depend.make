# Empty dependencies file for scheduler_unit_test.
# This may be replaced when dependencies are built.
