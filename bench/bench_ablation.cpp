// Ablations of design choices called out in DESIGN.md.
//
//  A. select() vs the scalable event API with many idle persistent
//     connections — the select() cost is linear in the size of the interest
//     set (Section 5.5's residual Thigh growth; Banga & Mogul '98).
//  B. Softint vs LRP protocol processing under overload — interrupt-priority
//     processing steals CPU from the application (receive livelock,
//     Mogul & Ramakrishnan '97); LRP/RC defer and discard early.
//  C. CPU-limit window size vs enforcement accuracy of the CGI sand-box.
#include <iostream>

#include "src/telemetry/bench_io.h"
#include "src/xp/scenario.h"
#include "src/xp/table.h"

namespace {

// --- A: idle-connection scaling -------------------------------------------

double ActiveLatencyWithIdleConns(bool use_event_api, int idle_conns) {
  xp::ScenarioOptions options;
  options.kernel_config = kernel::ResourceContainerSystemConfig();
  options.server_config.use_containers = true;
  options.server_config.use_event_api = use_event_api;
  options.server_config.accept_backlog = 512;

  xp::Scenario scenario(options);
  scenario.StartServer();

  // Idle population: persistent connections that think for a long time
  // between requests, so they stay open but contribute no load.
  for (int i = 0; i < idle_conns; ++i) {
    load::HttpClient::Config idle;
    idle.addr = net::Addr{net::MakeAddr(10, 7, 0, 0).v + static_cast<std::uint32_t>(i) + 1};
    idle.requests_per_conn = 1000000;
    idle.think_time = sim::Sec(30);  // effectively idle after the first hit
    scenario.AddClient(idle);
  }

  load::HttpClient::Config active;
  active.addr = net::MakeAddr(10, 8, 0, 1);
  active.requests_per_conn = 1;
  load::HttpClient* client = scenario.AddClient(active);

  scenario.StartAllClients(sim::Msec(1));
  scenario.RunFor(sim::Sec(3));
  scenario.ResetClientStats();
  scenario.RunFor(sim::Sec(5));
  return client->latencies().mean();
}

// --- B: overload behavior ---------------------------------------------------

double OverloadThroughput(const kernel::KernelConfig& kcfg, int clients) {
  xp::ScenarioOptions options;
  options.kernel_config = kcfg;
  xp::Scenario scenario(options);
  scenario.StartServer();
  auto added = scenario.AddStaticClients(clients, net::MakeAddr(10, 1, 0, 0));
  // Aggressive retry: a client that cannot connect tries again immediately,
  // so offered load stays high (S-Client methodology).
  (void)added;
  for (auto& c : scenario.clients()) {
    c->Start();
  }
  scenario.RunFor(sim::Sec(2));
  scenario.ResetClientStats();
  scenario.RunFor(sim::Sec(5));
  return static_cast<double>(scenario.TotalCompleted()) / 5.0;
}

// --- C: limit-window accuracy -----------------------------------------------

double CgiShareWithWindow(sim::Duration window) {
  xp::ScenarioOptions options;
  options.kernel_config = kernel::ResourceContainerSystemConfig();
  options.kernel_config.costs.limit_window = window;
  options.server_config.use_containers = true;
  options.server_config.cgi_sandbox = true;
  options.server_config.cgi_share = 0.30;

  xp::Scenario scenario(options);
  scenario.StartServer();
  scenario.AddStaticClients(16, net::MakeAddr(10, 1, 0, 0));
  for (int i = 0; i < 3; ++i) {
    load::HttpClient::Config cgi;
    cgi.addr = net::Addr{net::MakeAddr(10, 3, 0, 0).v + static_cast<std::uint32_t>(i) + 1};
    cgi.is_cgi = true;
    cgi.cgi_cpu_usec = sim::Sec(2);
    scenario.AddClient(cgi);
  }
  for (auto& c : scenario.clients()) {
    c->Start();
  }
  scenario.RunFor(sim::Sec(3));
  const sim::Duration cgi0 = scenario.kernel().ExecutedUsecForName("cgi");
  const sim::SimTime t0 = scenario.simulator().now();
  scenario.RunFor(sim::Sec(8));
  const sim::Duration cgi1 = scenario.kernel().ExecutedUsecForName("cgi");
  return static_cast<double>(cgi1 - cgi0) /
         static_cast<double>(scenario.simulator().now() - t0);
}

// --- D: disk-bandwidth prioritization -----------------------------------------
//
// Four processes read from the simulated disk in a closed loop; one holds a
// high-priority container. Requests are scheduled in container-priority
// order, so the high-priority reader's latency stays near the raw service
// time while the others queue.

struct DiskAblation {
  double hi_reads;
  double lo_reads_each;
};

DiskAblation DiskPriorityBandwidth(int hi_priority) {
  sim::Simulator simr;
  kernel::Kernel kern(&simr, kernel::ResourceContainerSystemConfig());
  rc::Attributes hi;
  hi.sched.priority = hi_priority;
  auto chi = kern.containers().Create(nullptr, "hi", hi).value();
  auto clo = kern.containers().Create(nullptr, "lo").value();

  auto reader = [](kernel::Sys sys) -> kernel::Program {
    for (int i = 0; i < 100000; ++i) {
      co_await sys.ReadDisk(static_cast<std::uint64_t>(i) * 64, 16);
    }
  };
  kern.SpawnThread(kern.CreateProcess("hi", chi), "t", reader);
  for (int i = 0; i < 3; ++i) {
    kern.SpawnThread(kern.CreateProcess("lo", clo), "t", reader);
  }
  simr.RunUntil(sim::Sec(5));
  return DiskAblation{static_cast<double>(chi->usage().disk_reads),
                      static_cast<double>(clo->usage().disk_reads) / 3.0};
}

}  // namespace

int main(int argc, char** argv) {
  telemetry::BenchReport report("ablation", argc, argv);

  std::printf("=== Ablation A: select() vs event API, idle persistent connections ===\n\n");
  xp::Table a({"idle conns", "select() latency ms", "event API latency ms"});
  for (int idle : {0, 100, 250, 500, 1000}) {
    const double sel = ActiveLatencyWithIdleConns(false, idle);
    const double evt = ActiveLatencyWithIdleConns(true, idle);
    report.Add("active_latency_select", sel, "ms", "idle_conns=" + std::to_string(idle));
    report.Add("active_latency_event_api", evt, "ms",
               "idle_conns=" + std::to_string(idle));
    a.AddRow({std::to_string(idle), xp::FormatDouble(sel, 3), xp::FormatDouble(evt, 3)});
    std::fflush(stdout);
  }
  a.Print(std::cout);
  std::printf("\nexpect: select() latency grows with the interest set; event API flat.\n");

  std::printf("\n=== Ablation B: overload behavior, softint vs LRP charging ===\n\n");
  xp::Table b({"clients", "softint (unmodified)", "LRP"});
  for (int n : {16, 64, 128, 256}) {
    const double softint = OverloadThroughput(kernel::UnmodifiedSystemConfig(), n);
    const double lrp = OverloadThroughput(kernel::LrpSystemConfig(), n);
    report.Add("overload_throughput_softint", softint, "req/s",
               "clients=" + std::to_string(n));
    report.Add("overload_throughput_lrp", lrp, "req/s", "clients=" + std::to_string(n));
    b.AddRow({std::to_string(n), xp::FormatDouble(softint, 0), xp::FormatDouble(lrp, 0)});
    std::fflush(stdout);
  }
  b.Print(std::cout);
  std::printf("\nexpect: softint throughput degrades past saturation (interrupt-priority\n"
              "processing steals the CPU); LRP holds steady by discarding early.\n");

  std::printf("\n=== Ablation C: CPU-limit window vs sand-box accuracy (cap 30%%) ===\n\n");
  xp::Table c({"window", "measured CGI share"});
  for (sim::Duration w : {sim::Msec(10), sim::Msec(100), sim::Sec(1)}) {
    const double share = CgiShareWithWindow(w);
    report.Add("cgi_share_at_cap30", 100 * share, "percent",
               "limit_window_ms=" + std::to_string(w / sim::kMsec));
    c.AddRow({xp::FormatDouble(sim::ToSeconds(w) * 1000, 0) + " ms",
              xp::FormatDouble(100 * share, 1) + "%"});
    std::fflush(stdout);
  }
  c.Print(std::cout);

  std::printf("\n=== Ablation D: disk-bandwidth prioritization (1 reader vs 3) ===\n\n");
  xp::Table d({"hi priority", "hi reads/s", "each lo reads/s"});
  for (int prio : {16, 48}) {
    DiskAblation r = DiskPriorityBandwidth(prio);
    report.Add("disk_reads_per_sec_hi", r.hi_reads / 5.0, "reads/s",
               "hi_priority=" + std::to_string(prio));
    report.Add("disk_reads_per_sec_lo_each", r.lo_reads_each / 5.0, "reads/s",
               "hi_priority=" + std::to_string(prio));
    d.AddRow({std::to_string(prio), xp::FormatDouble(r.hi_reads / 5.0, 1),
              xp::FormatDouble(r.lo_reads_each / 5.0, 1)});
    std::fflush(stdout);
  }
  d.Print(std::cout);
  std::printf("\nexpect: at equal priority (16) all four readers share the disk; at\n"
              "priority 48 the high reader's requests jump the queue.\n");
  if (!report.Flush()) {
    std::fprintf(stderr, "failed to write %s\n", report.path().c_str());
    return 1;
  }
  return 0;
}
