#include "src/httpd/metrics.h"

#include <string>

#include "src/telemetry/registry.h"

namespace httpd {

void RegisterServerMetrics(telemetry::Registry& registry, const ServerStats* stats,
                           const FileCache* cache) {
  registry.AddProbe("httpd.connections_accepted", "connections", [stats] {
    return static_cast<double>(stats->connections_accepted);
  });
  registry.AddProbe("httpd.static_served", "requests", [stats] {
    return static_cast<double>(stats->static_served);
  });
  registry.AddProbe("httpd.cgi_started", "requests",
                    [stats] { return static_cast<double>(stats->cgi_started); });
  registry.AddProbe("httpd.eof_closed", "connections",
                    [stats] { return static_cast<double>(stats->eof_closed); });
  registry.AddProbe("httpd.flood_filters_installed", "filters", [stats] {
    return static_cast<double>(stats->flood_filters_installed);
  });
  for (int k = 0; k < kMaxClientClasses; ++k) {
    registry.AddProbe("httpd.class" + std::to_string(k) + ".served", "requests",
                      [stats, k] { return static_cast<double>(stats->served_by_class[k]); });
  }
  if (cache != nullptr) {
    registry.AddProbe("httpd.cache.hits", "lookups",
                      [cache] { return static_cast<double>(cache->hits()); });
    registry.AddProbe("httpd.cache.misses", "lookups",
                      [cache] { return static_cast<double>(cache->misses()); });
    registry.AddProbe("httpd.cache.documents", "documents",
                      [cache] { return static_cast<double>(cache->size()); });
    registry.AddProbe("httpd.cache.evictions", "documents",
                      [cache] { return static_cast<double>(cache->evictions()); });
    registry.AddProbe("httpd.cache.resident_bytes", "bytes", [cache] {
      return static_cast<double>(cache->resident_bytes());
    });
  }
}

}  // namespace httpd
