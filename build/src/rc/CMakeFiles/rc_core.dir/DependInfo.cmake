
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/rc/attributes.cc" "src/rc/CMakeFiles/rc_core.dir/attributes.cc.o" "gcc" "src/rc/CMakeFiles/rc_core.dir/attributes.cc.o.d"
  "/root/repo/src/rc/binding.cc" "src/rc/CMakeFiles/rc_core.dir/binding.cc.o" "gcc" "src/rc/CMakeFiles/rc_core.dir/binding.cc.o.d"
  "/root/repo/src/rc/container.cc" "src/rc/CMakeFiles/rc_core.dir/container.cc.o" "gcc" "src/rc/CMakeFiles/rc_core.dir/container.cc.o.d"
  "/root/repo/src/rc/manager.cc" "src/rc/CMakeFiles/rc_core.dir/manager.cc.o" "gcc" "src/rc/CMakeFiles/rc_core.dir/manager.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/rc_common.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/rc_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
