#include "src/xp/table.h"

#include <algorithm>
#include <cstdio>

#include "src/telemetry/registry.h"

namespace xp {

std::string FormatDouble(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

void Table::Print(std::ostream& os) const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t i = 0; i < headers_.size(); ++i) {
    widths[i] = headers_[i].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t i = 0; i < row.size() && i < widths.size(); ++i) {
      widths[i] = std::max(widths[i], row[i].size());
    }
  }
  auto emit = [&](const std::vector<std::string>& cells) {
    for (std::size_t i = 0; i < widths.size(); ++i) {
      const std::string& cell = i < cells.size() ? cells[i] : std::string();
      os << "  " << cell;
      for (std::size_t pad = cell.size(); pad < widths[i]; ++pad) {
        os << ' ';
      }
    }
    os << '\n';
  };
  emit(headers_);
  std::string rule;
  for (std::size_t w : widths) {
    rule += "  " + std::string(w, '-');
  }
  os << rule << '\n';
  for (const auto& row : rows_) {
    emit(row);
  }
}

void Table::PrintCsv(std::ostream& os) const {
  auto emit = [&](const std::vector<std::string>& cells) {
    for (std::size_t i = 0; i < cells.size(); ++i) {
      if (i > 0) {
        os << ',';
      }
      os << cells[i];
    }
    os << '\n';
  };
  emit(headers_);
  for (const auto& row : rows_) {
    emit(row);
  }
}

Table MetricsTable(const telemetry::Registry& registry) {
  Table table({"metric", "value", "unit"});
  for (const telemetry::Registry::Row& row : registry.Snapshot()) {
    // Integral values (counters, most probes) print without a fraction.
    const bool integral = row.value == static_cast<double>(static_cast<long long>(row.value));
    table.AddRow({row.name, FormatDouble(row.value, integral ? 0 : 3), row.unit});
  }
  return table;
}

}  // namespace xp
