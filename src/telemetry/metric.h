// Metric handle types for the telemetry registry.
//
// Handles are created and owned by a telemetry::Registry; emitters keep raw
// pointers resolved once (at attach/registration time) and update them on hot
// paths. Every mutation is guarded by the owning registry's enabled flag, so
// a disabled registry costs one predictable branch per update — the same
// cheap-when-off discipline kernel::Tracer::Record follows. Holders of a
// null handle pointer (telemetry never attached) pay only their own null
// check and never touch the registry at all.
#ifndef SRC_TELEMETRY_METRIC_H_
#define SRC_TELEMETRY_METRIC_H_

#include <cstdint>
#include <functional>
#include <string>
#include <utility>

#include "src/sim/stats.h"

namespace telemetry {

class Registry;

enum class MetricKind {
  kCounter,    // monotonically increasing integer total
  kGauge,      // last-set value
  kHistogram,  // sample distribution (exact percentiles at export time)
  kProbe,      // pull-based: evaluated when the registry is read
};

const char* MetricKindName(MetricKind kind);

// Common identity shared by every metric. `name` is the stable dotted id
// (e.g. "rc.cpu.network_usec"); `unit` is a free-form suffix for display and
// export ("usec", "packets", ...).
class Metric {
 public:
  // Metrics are owned and deleted through `std::unique_ptr<Metric>` in the
  // registry, so the destructor must be virtual.
  virtual ~Metric() = default;

  const std::string& name() const { return name_; }
  const std::string& unit() const { return unit_; }
  MetricKind kind() const { return kind_; }

 protected:
  Metric(const bool* enabled, MetricKind kind, std::string name, std::string unit)
      : enabled_(enabled), kind_(kind), name_(std::move(name)), unit_(std::move(unit)) {}

  bool on() const { return *enabled_; }

 private:
  const bool* enabled_;  // points at the owning registry's enabled flag
  MetricKind kind_;
  std::string name_;
  std::string unit_;
};

class Counter : public Metric {
 public:
  void Add(std::uint64_t n = 1) {
    if (on()) {
      value_ += n;
    }
  }
  std::uint64_t value() const { return value_; }

 private:
  friend class Registry;
  Counter(const bool* enabled, std::string name, std::string unit)
      : Metric(enabled, MetricKind::kCounter, std::move(name), std::move(unit)) {}
  std::uint64_t value_ = 0;
};

class Gauge : public Metric {
 public:
  void Set(double v) {
    if (on()) {
      value_ = v;
    }
  }
  double value() const { return value_; }

 private:
  friend class Registry;
  Gauge(const bool* enabled, std::string name, std::string unit)
      : Metric(enabled, MetricKind::kGauge, std::move(name), std::move(unit)) {}
  double value_ = 0.0;
};

class Histogram : public Metric {
 public:
  void Record(double v) {
    if (on()) {
      samples_.Add(v);
    }
  }
  std::size_t count() const { return samples_.count(); }
  double mean() const { return samples_.mean(); }
  double Percentile(double p) const { return samples_.Percentile(p); }

 private:
  friend class Registry;
  Histogram(const bool* enabled, std::string name, std::string unit)
      : Metric(enabled, MetricKind::kHistogram, std::move(name), std::move(unit)) {}
  // mutable: SampleSet::Percentile sorts lazily, which is invisible to
  // readers; exports take percentiles through const references.
  mutable sim::SampleSet samples_;
};

// Pull-based metric: `fn` is evaluated whenever the registry is snapshotted
// or exported, so registering a probe adds zero cost to the emitting hot
// path. The callback must stay valid for as long as the registry is read.
class Probe : public Metric {
 public:
  double value() const { return fn_(); }

 private:
  friend class Registry;
  Probe(const bool* enabled, std::string name, std::string unit,
        std::function<double()> fn)
      : Metric(enabled, MetricKind::kProbe, std::move(name), std::move(unit)),
        fn_(std::move(fn)) {}
  std::function<double()> fn_;
};

}  // namespace telemetry

#endif  // SRC_TELEMETRY_METRIC_H_
