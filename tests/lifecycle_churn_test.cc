// Lifecycle fast-path tests: slot/generation reuse in the manager's dense
// registry, name interning identity, listener (un)registration during
// destroy dispatch, template creation semantics, sampler retired-series
// retention, and a large create/destroy differential run that pins usage
// retirement totals against the incremental share-sum bookkeeping.
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "src/rc/container.h"
#include "src/rc/lifecycle.h"
#include "src/rc/manager.h"
#include "src/sim/simulator.h"
#include "src/telemetry/sampler.h"

namespace rc {
namespace {

Attributes FixedShare(double share) {
  Attributes a;
  a.sched.cls = SchedClass::kFixedShare;
  a.sched.fixed_share = share;
  return a;
}

// ---------------------------------------------------------------------------
// Slot / generation reuse
// ---------------------------------------------------------------------------

TEST(LifecycleSlotTest, SlotsAreReusedWithBumpedGeneration) {
  ContainerManager m;
  std::uint32_t slot;
  std::uint32_t generation;
  {
    auto c = m.Create(nullptr, "ephemeral").value();
    slot = c->slot();
    generation = c->generation();
    EXPECT_EQ(m.container_at_slot(slot), c.get());
  }
  // The slot frees on destroy...
  EXPECT_EQ(m.container_at_slot(slot), nullptr);
  // ...and the next create reuses it with a bumped generation, so a stale
  // (slot, generation) pair can never alias the new occupant.
  auto next = m.Create(nullptr, "next").value();
  EXPECT_EQ(next->slot(), slot);
  EXPECT_GT(next->generation(), generation);
}

TEST(LifecycleSlotTest, SlotCapacityTracksPeakNotTotal) {
  ContainerManager m;
  const std::size_t base = m.slot_capacity();
  for (int round = 0; round < 100; ++round) {
    auto a = m.Create(nullptr, "a").value();
    auto b = m.Create(nullptr, "b").value();
  }
  // 200 containers churned through at most 2 extra slots.
  EXPECT_LE(m.slot_capacity(), base + 2);
  EXPECT_EQ(m.live_count(), 1u);  // root only
}

TEST(LifecycleSlotTest, LiveCountAndLookupStayConsistentUnderChurn) {
  ContainerManager m;
  std::vector<ContainerRef> live;
  std::vector<ContainerId> dead_ids;
  for (int i = 0; i < 50; ++i) {
    auto c = m.Create(nullptr, "c").value();
    if (i % 2 == 0) {
      live.push_back(c);
    } else {
      dead_ids.push_back(c->id());
    }
  }
  EXPECT_EQ(m.live_count(), 1 + live.size());
  for (const auto& c : live) {
    auto found = m.Lookup(c->id());
    ASSERT_TRUE(found.ok());
    EXPECT_EQ(found->get(), c.get());
  }
  for (ContainerId id : dead_ids) {
    EXPECT_FALSE(m.Lookup(id).ok());
  }
}

// ---------------------------------------------------------------------------
// Name interning
// ---------------------------------------------------------------------------

TEST(LifecycleInternTest, SameClassNameSharesStorage) {
  ContainerManager m;
  auto a = m.Create(nullptr, "conn").value();
  auto b = m.Create(nullptr, "conn").value();
  // Interned: both containers point at the same string object.
  EXPECT_EQ(&a->name(), &b->name());
  auto other = m.Create(nullptr, "cgi-req").value();
  EXPECT_NE(&a->name(), &other->name());
  EXPECT_EQ(other->name(), "cgi-req");
}

TEST(LifecycleInternTest, InternedNameSurvivesChurn) {
  ContainerManager m;
  const std::string* stored;
  {
    auto a = m.Create(nullptr, "conn").value();
    stored = &a->name();
  }
  auto b = m.Create(nullptr, "conn").value();
  EXPECT_EQ(&b->name(), stored);
}

// ---------------------------------------------------------------------------
// Listener (un)registration during destroy dispatch
// ---------------------------------------------------------------------------

struct CountingListener : LifecycleListener {
  void OnContainerDestroyed(ResourceContainer& c) override {
    ++destroys;
    last_id = c.id();
  }
  int destroys = 0;
  ContainerId last_id = 0;
};

// Unregisters itself (and optionally a peer) from inside the destroy
// notification.
struct SelfRemovingListener : LifecycleListener {
  explicit SelfRemovingListener(ContainerManager* m, LifecycleListener* peer = nullptr)
      : manager(m), peer(peer) {}
  void OnContainerDestroyed(ResourceContainer&) override {
    ++destroys;
    manager->RemoveLifecycleListener(this);
    if (peer != nullptr) {
      manager->RemoveLifecycleListener(peer);
      peer = nullptr;
    }
  }
  ContainerManager* manager;
  LifecycleListener* peer;
  int destroys = 0;
};

// Registers a new listener from inside the destroy notification.
struct AddingListener : LifecycleListener {
  explicit AddingListener(ContainerManager* m, LifecycleListener* to_add)
      : manager(m), to_add(to_add) {}
  void OnContainerDestroyed(ResourceContainer&) override {
    if (to_add != nullptr) {
      manager->AddLifecycleListener(to_add);
      to_add = nullptr;
    }
  }
  ContainerManager* manager;
  LifecycleListener* to_add;
};

TEST(LifecycleListenerTest, SelfRemovalDuringDispatchIsSafe) {
  ContainerManager m;
  SelfRemovingListener once(&m);
  CountingListener after;
  m.AddLifecycleListener(&once);
  m.AddLifecycleListener(&after);
  { auto c = m.Create(nullptr, "x").value(); }
  { auto c = m.Create(nullptr, "y").value(); }
  EXPECT_EQ(once.destroys, 1);  // removed itself after the first event
  EXPECT_EQ(after.destroys, 2);  // the surviving listener saw both
}

TEST(LifecycleListenerTest, RemovingAPeerMidDispatchSkipsIt) {
  ContainerManager m;
  CountingListener victim;
  SelfRemovingListener remover(&m, &victim);
  // Registration order matters: the remover runs first and yanks the victim
  // out of the same dispatch.
  m.AddLifecycleListener(&remover);
  m.AddLifecycleListener(&victim);
  { auto c = m.Create(nullptr, "x").value(); }
  EXPECT_EQ(remover.destroys, 1);
  // Removal nulls the victim's entry mid-dispatch: it is never called for
  // this event even though it was registered when the event began.
  EXPECT_EQ(victim.destroys, 0);
  { auto c = m.Create(nullptr, "y").value(); }
  EXPECT_EQ(victim.destroys, 0);  // still unregistered
}

TEST(LifecycleListenerTest, ListenerAddedMidDispatchSeesNextEvent) {
  ContainerManager m;
  CountingListener late;
  AddingListener adder(&m, &late);
  m.AddLifecycleListener(&adder);
  { auto c = m.Create(nullptr, "x").value(); }
  EXPECT_EQ(late.destroys, 0);  // not called for the event that added it
  { auto c = m.Create(nullptr, "y").value(); }
  EXPECT_EQ(late.destroys, 1);
}

TEST(LifecycleListenerTest, ListenerDestructorUnregisters) {
  ContainerManager m;
  {
    CountingListener scoped;
    m.AddLifecycleListener(&scoped);
    auto c = m.Create(nullptr, "x").value();
    c.reset();
    EXPECT_EQ(scoped.destroys, 1);
  }
  // The listener died registered; the manager must not touch it now.
  { auto c = m.Create(nullptr, "y").value(); }
  EXPECT_EQ(m.live_count(), 1u);
}

TEST(LifecycleListenerTest, ManagerDestroyedBeforeListenerIsSafe) {
  CountingListener listener;
  {
    ContainerManager m;
    m.AddLifecycleListener(&listener);
    auto c = m.Create(nullptr, "x").value();
  }
  // ~ContainerManager nulled the back-pointer; ~listener must not unregister
  // into freed memory. (ASan would catch a violation.)
  EXPECT_EQ(listener.destroys, 1);
}

// ---------------------------------------------------------------------------
// Templates
// ---------------------------------------------------------------------------

TEST(LifecycleTemplateTest, TemplateCreatesMatchGenericCreates) {
  ContainerManager m;
  auto parent = m.Create(nullptr, "class", FixedShare(0.5)).value();
  Attributes a;
  a.sched.priority = 7;
  auto tmpl = m.PrepareTemplate(parent, "conn", a);
  ASSERT_TRUE(tmpl.ok());
  EXPECT_FALSE((*tmpl)->needs_budget_check());

  auto from_template = m.CreateFromTemplate(**tmpl).value();
  auto generic = m.Create(parent, "conn", a).value();
  EXPECT_EQ(from_template->parent(), parent.get());
  EXPECT_EQ(from_template->name(), generic->name());
  EXPECT_EQ(&from_template->name(), &generic->name());  // interned identity
  EXPECT_EQ(from_template->attributes().sched.priority, 7);
  EXPECT_LT(from_template->id(), generic->id());  // ids stay monotonic
}

TEST(LifecycleTemplateTest, PrepareRejectsWhatCreateRejects) {
  ContainerManager m;
  auto ts_parent = m.Create(nullptr, "leafy").value();  // time-share
  EXPECT_FALSE(m.PrepareTemplate(ts_parent, "conn", {}).ok());

  Attributes bad;
  bad.sched.cls = SchedClass::kFixedShare;
  bad.sched.fixed_share = 1.5;
  EXPECT_FALSE(m.PrepareTemplate(nullptr, "conn", bad).ok());
}

TEST(LifecycleTemplateTest, FixedShareTemplateRechecksBudget) {
  ContainerManager m;
  auto parent = m.Create(nullptr, "class", FixedShare(0.5)).value();
  auto tmpl = m.PrepareTemplate(parent, "conn", FixedShare(0.6));
  ASSERT_TRUE(tmpl.ok());
  EXPECT_TRUE((*tmpl)->needs_budget_check());
  auto first = m.CreateFromTemplate(**tmpl);
  ASSERT_TRUE(first.ok());
  // Children draw from an independent 100% at the parent; a second 0.6
  // sibling would oversubscribe it, so the template path must still enforce
  // the budget.
  auto second = m.CreateFromTemplate(**tmpl);
  EXPECT_FALSE(second.ok());
  first->reset();
  EXPECT_TRUE(m.CreateFromTemplate(**tmpl).ok());
}

// ---------------------------------------------------------------------------
// Incremental share sums vs. explicit walk, and usage retirement, at scale
// ---------------------------------------------------------------------------

double WalkSiblingFixedShareSum(const ContainerManager& m,
                                const ResourceContainer& parent, ResourceKind kind) {
  double sum = 0.0;
  m.ForEachLive([&](ResourceContainer& c) {
    if (c.parent() != &parent) {
      return;
    }
    const SchedParams& sched = SchedFor(c.attributes(), kind);
    if (sched.cls == SchedClass::kFixedShare) {
      sum += sched.fixed_share;
    }
  });
  return sum;
}

TEST(LifecycleChurnTest, IncrementalShareSumsMatchWalkUnderChurn) {
  ContainerManager m;
  auto parent = m.Create(nullptr, "p", FixedShare(0.9)).value();
  std::vector<ContainerRef> kept;
  for (int i = 0; i < 500; ++i) {
    auto c = m.Create(parent, "conn", FixedShare(0.001)).value();
    if (i % 3 == 0) {
      kept.push_back(c);
    }
    if (i % 7 == 0 && !kept.empty()) {
      kept.erase(kept.begin());
    }
    if (i % 50 == 0) {
      EXPECT_DOUBLE_EQ(ContainerManager::SiblingFixedShareSum(*parent, nullptr),
                       WalkSiblingFixedShareSum(m, *parent, ResourceKind::kCpu));
    }
  }
  kept.clear();
  // Every fixed child is gone: the cached sum must be exactly zero (not FP
  // residue), so a future full-budget child still fits.
  EXPECT_EQ(ContainerManager::SiblingFixedShareSum(*parent, nullptr), 0.0);
  EXPECT_TRUE(m.Create(parent, "full", FixedShare(1.0)).ok());
}

TEST(LifecycleChurnTest, MillionChurnRetiresEveryMicrosecond) {
  // The differential test the fast path is gated on: a large create/charge/
  // destroy run must retire every charged microsecond into the parent, keep
  // the registry dense, and leave no series/slot debris.
  constexpr int kChurn = 1000000;
  constexpr int kLiveWindow = 64;
  ContainerManager m;
  auto parent = m.Create(nullptr, "svc", FixedShare(0.5)).value();
  auto tmpl = m.PrepareTemplate(parent, "conn", {}).value();

  std::vector<ContainerRef> window;
  window.reserve(kLiveWindow);
  std::uint64_t charged_total = 0;
  std::set<ContainerId> ids_sample;
  for (int i = 0; i < kChurn; ++i) {
    auto c = m.CreateFromTemplate(*tmpl).value();
    const std::uint64_t usec = 1 + (i % 17);
    c->ChargeCpu(static_cast<sim::Duration>(usec), CpuKind::kUser);
    charged_total += usec;
    if (i < 1000) {
      ids_sample.insert(c->id());
    }
    window.push_back(std::move(c));
    if (window.size() == kLiveWindow) {
      window.erase(window.begin(), window.begin() + kLiveWindow / 2);
    }
  }
  window.clear();

  EXPECT_EQ(ids_sample.size(), 1000u);  // ids unique even under slot reuse
  EXPECT_EQ(m.live_count(), 2u);        // root + parent
  EXPECT_LE(m.slot_capacity(), static_cast<std::size_t>(kLiveWindow) + 8);
  // Conservation: every charged microsecond retired into the parent.
  EXPECT_EQ(parent->retired_usage().cpu_user_usec,
            static_cast<sim::Duration>(charged_total));
  EXPECT_EQ(parent->SubtreeUsage().cpu_user_usec,
            static_cast<sim::Duration>(charged_total));
  EXPECT_EQ(ContainerManager::SiblingFixedShareSum(*parent, nullptr), 0.0);
}

// ---------------------------------------------------------------------------
// Sampler retention
// ---------------------------------------------------------------------------

TEST(SamplerRetentionTest, RetiredSeriesAreBounded) {
  sim::Simulator simr;
  ContainerManager m;
  telemetry::EpochSampler sampler(&simr, &m, sim::Msec(10));
  sampler.set_retired_capacity(8);
  for (int i = 0; i < 50; ++i) {
    auto c = m.Create(nullptr, "conn").value();
    sampler.SampleNow();
  }
  EXPECT_EQ(sampler.retired_count(), 8u);
  EXPECT_EQ(sampler.retired_dropped(), 42u);
  // The assembled view holds the root plus the retained retired series.
  EXPECT_EQ(sampler.series().size(), 1u + 8u);
}

TEST(SamplerRetentionTest, SinkReceivesRetiredSeriesInsteadOfRetention) {
  sim::Simulator simr;
  ContainerManager m;
  telemetry::EpochSampler sampler(&simr, &m, sim::Msec(10));
  std::vector<ContainerId> flushed;
  sampler.set_retired_sink([&](const telemetry::ContainerSeries& s) {
    EXPECT_TRUE(s.retired());
    flushed.push_back(s.id);
  });
  std::vector<ContainerId> created;
  for (int i = 0; i < 5; ++i) {
    auto c = m.Create(nullptr, "conn").value();
    created.push_back(c->id());
    sampler.SampleNow();
  }
  EXPECT_EQ(flushed, created);
  EXPECT_EQ(sampler.retired_count(), 0u);
  EXPECT_EQ(sampler.retired_dropped(), 0u);
}

TEST(SamplerRetentionTest, SlotReuseStartsFreshSeries) {
  sim::Simulator simr;
  ContainerManager m;
  telemetry::EpochSampler sampler(&simr, &m, sim::Msec(10));
  ContainerId first_id;
  std::uint32_t slot;
  {
    auto c = m.Create(nullptr, "one").value();
    first_id = c->id();
    slot = c->slot();
    sampler.SampleNow();
    sampler.SampleNow();
  }
  auto reuse = m.Create(nullptr, "two").value();
  ASSERT_EQ(reuse->slot(), slot);  // same dense slot, new identity
  sampler.SampleNow();
  auto series = sampler.series();
  ASSERT_EQ(series.count(first_id), 1u);
  ASSERT_EQ(series.count(reuse->id()), 1u);
  EXPECT_TRUE(series.at(first_id).retired());
  EXPECT_EQ(series.at(first_id).samples.size(), 2u);
  EXPECT_EQ(series.at(first_id).name, "one");
  EXPECT_FALSE(series.at(reuse->id()).retired());
  EXPECT_EQ(series.at(reuse->id()).samples.size(), 1u);
  EXPECT_EQ(series.at(reuse->id()).name, "two");
}

}  // namespace
}  // namespace rc
