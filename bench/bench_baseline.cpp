// Section 5.3 — baseline throughput of the event-driven server on the
// unmodified kernel, serving a cached 1 KB document.
//
// Paper: 2954 requests/s with connection-per-request HTTP (338 us/request),
//        9487 requests/s with persistent connections (105 us/request),
//        both CPU-saturated.
//
// Section 5.4 — the same workload on the RC kernel with one container per
// request adds negligible overhead ("throughput remained effectively
// unchanged").
#include <cstdio>
#include <iostream>

#include "src/telemetry/bench_io.h"
#include "src/xp/scenario.h"
#include "src/xp/table.h"

namespace {

struct Result {
  double throughput = 0;
  double cpu_busy_frac = 0;
  double usec_per_request = 0;
};

Result RunBaseline(const kernel::KernelConfig& kcfg, bool use_containers,
                   bool use_event_api, int requests_per_conn, int clients) {
  xp::ScenarioOptions options;
  options.kernel_config = kcfg;
  options.server_config.use_containers = use_containers;
  options.server_config.use_event_api = use_event_api;
  xp::Scenario scenario(options);
  scenario.StartServer();
  scenario.AddStaticClients(clients, net::MakeAddr(10, 1, 0, 0), /*client_class=*/0,
                            requests_per_conn);
  for (auto& c : scenario.clients()) {
    c->Start();
  }
  scenario.RunFor(sim::Sec(2));  // warm-up
  scenario.ResetClientStats();
  const auto cpu0 = scenario.SnapshotCpu();
  scenario.RunFor(sim::Sec(5));
  const auto cpu1 = scenario.SnapshotCpu();

  Result r;
  const double secs = sim::ToSeconds(cpu1.at - cpu0.at);
  r.throughput = static_cast<double>(scenario.TotalCompleted()) / secs;
  r.cpu_busy_frac =
      static_cast<double>(cpu1.busy - cpu0.busy) / static_cast<double>(cpu1.at - cpu0.at);
  r.usec_per_request = r.throughput > 0 ? 1e6 / r.throughput : 0;
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  telemetry::BenchReport report("baseline", argc, argv);

  std::printf("=== Section 5.3: baseline throughput (cached 1 KB document) ===\n\n");

  xp::Table table({"configuration", "req/s", "us/req", "CPU busy", "paper req/s"});

  auto record = [&report](const char* config, const Result& r) {
    report.Add("throughput", r.throughput, "req/s", config);
    report.Add("usec_per_request", r.usec_per_request, "usec", config);
    report.Add("cpu_busy_frac", r.cpu_busy_frac, "fraction", config);
  };

  // Unmodified system (softint + decay-usage + select()).
  Result cpr = RunBaseline(kernel::UnmodifiedSystemConfig(), false, false, 1, 24);
  record("unmodified,conn-per-req,clients=24", cpr);
  table.AddRow({"unmodified, connection/request", xp::FormatDouble(cpr.throughput, 0),
                xp::FormatDouble(cpr.usec_per_request, 1),
                xp::FormatDouble(100 * cpr.cpu_busy_frac, 1) + "%", "2954"});

  Result pers = RunBaseline(kernel::UnmodifiedSystemConfig(), false, false, 1000, 24);
  record("unmodified,persistent=1000,clients=24", pers);
  table.AddRow({"unmodified, persistent", xp::FormatDouble(pers.throughput, 0),
                xp::FormatDouble(pers.usec_per_request, 1),
                xp::FormatDouble(100 * pers.cpu_busy_frac, 1) + "%", "9487"});

  std::printf("\n=== Section 5.4: container overhead (one container per request) ===\n\n");

  Result rc_cpr =
      RunBaseline(kernel::ResourceContainerSystemConfig(), true, false, 1, 24);
  record("rc,containers,conn-per-req,clients=24", rc_cpr);
  table.AddRow({"RC kernel + containers, conn/req", xp::FormatDouble(rc_cpr.throughput, 0),
                xp::FormatDouble(rc_cpr.usec_per_request, 1),
                xp::FormatDouble(100 * rc_cpr.cpu_busy_frac, 1) + "%",
                "~2954 (unchanged)"});

  Result rc_pers =
      RunBaseline(kernel::ResourceContainerSystemConfig(), true, false, 1000, 24);
  record("rc,containers,persistent=1000,clients=24", rc_pers);
  table.AddRow({"RC kernel + containers, persistent",
                xp::FormatDouble(rc_pers.throughput, 0),
                xp::FormatDouble(rc_pers.usec_per_request, 1),
                xp::FormatDouble(100 * rc_pers.cpu_busy_frac, 1) + "%",
                "~9487 (unchanged)"});

  table.Print(std::cout);

  const double overhead =
      100.0 * (1.0 - rc_cpr.throughput / (cpr.throughput > 0 ? cpr.throughput : 1));
  std::printf("\ncontainer overhead (connection/request): %.1f%%  (paper: ~0%%)\n",
              overhead);
  report.Add("container_overhead_pct", overhead, "percent",
             "rc,containers,conn-per-req vs unmodified");
  if (!report.Flush()) {
    std::fprintf(stderr, "failed to write %s\n", report.path().c_str());
    return 1;
  }
  return 0;
}
