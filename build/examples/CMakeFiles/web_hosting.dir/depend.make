# Empty dependencies file for web_hosting.
# This may be replaced when dependencies are built.
