#include "src/net/addr.h"

#include <cstdio>

namespace net {

std::string AddrToString(Addr a) {
  char buf[20];
  std::snprintf(buf, sizeof(buf), "%u.%u.%u.%u", (a.v >> 24) & 0xff, (a.v >> 16) & 0xff,
                (a.v >> 8) & 0xff, a.v & 0xff);
  return buf;
}

std::string CidrFilter::ToString() const {
  std::string s = AddrToString(base) + "/" + std::to_string(prefix_len);
  if (negate) {
    s.insert(0, "!");
  }
  return s;
}

}  // namespace net
