// rcsim — command-line driver for the simulated server machine.
//
// Runs a configurable scenario and prints a report, so experiments beyond
// the canned benchmarks can be run without writing C++:
//
//   rcsim --kernel=rc --containers --event-api --clients=24 --seconds=5
//   rcsim --kernel=unmodified --clients=16 --cgi=4 --cgi-seconds=2
//   rcsim --kernel=rc --containers --event-api --defend --flood=50000
//   rcsim --kernel=lrp --clients=64 --persistent=100 --csv
//
// Flags:
//   --kernel=unmodified|lrp|rc   which of the paper's systems to run
//   --containers                 per-connection containers (RC kernel)
//   --event-api                  scalable event API instead of select()
//   --clients=N                  static-document clients (default 16)
//   --persistent=K               requests per connection (default 1)
//   --doc-bytes=N                document size (default 1024)
//   --cgi=N                      concurrent CGI clients (default 0)
//   --cgi-seconds=S              CPU burned per CGI request (default 2)
//   --cgi-cap=F                  CGI-parent sand-box share/limit (default 0.3)
//   --flood=RATE                 SYN flood rate per second (default 0)
//   --defend                     adaptive SYN-flood filter defense
//   --cpus=N                     simulated CPUs (default 1, the paper's
//                                uniprocessor; N>1 shards the run queues)
//   --irq-steering=fixed|rr|flow interrupt steering policy for --cpus>1
//                                (default flow: per-connection flow hash)
//   --seed=N                     root seed for the load generators (default
//                                42; same seed + flags => same run)
//   --warmup=S --seconds=S       warm-up / measured simulated seconds
//   --csv                        machine-readable output
//   --metrics-out[=FILE]         write headline metrics as BENCH_rcsim.json
//   --trace-out=FILE             record the kernel tracer and export the run
//                                as Chrome trace-event JSON (chrome://tracing)
//   --series-out=FILE            per-container usage time series (JSON Lines)
//   --epoch-ms=N                 sampling interval for --series-out (default 100)
//   --print-metrics              dump the full metric registry after the run
//   --audit                      charge-conservation auditing (src/verify):
//                                every RunFor verifies that busy CPU time,
//                                container charges and overheads conserve;
//                                violations go to stderr and exit nonzero.
//                                RC_AUDIT=1 in the environment does the same.
//   --digest                     print "digest: <16 hex>" — an FNV-1a hash of
//                                the full event timeline. Same seed + flags
//                                must reproduce the same digest.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>

#include "src/telemetry/bench_io.h"
#include "src/telemetry/trace_export.h"
#include "src/xp/scenario.h"
#include "src/xp/table.h"

namespace {

struct Flags {
  std::string kernel = "unmodified";
  bool containers = false;
  bool event_api = false;
  int clients = 16;
  int persistent = 1;
  std::uint32_t doc_bytes = 1024;
  int cgi = 0;
  double cgi_seconds = 2.0;
  double cgi_cap = 0.3;
  double flood = 0.0;
  bool defend = false;
  int cpus = 1;
  std::string irq_steering = "flow";
  std::uint64_t seed = 42;
  double warmup = 2.0;
  double seconds = 5.0;
  bool csv = false;
  std::string trace_out;
  std::string series_out;
  int epoch_ms = 100;
  bool print_metrics = false;
  bool audit = false;
  bool digest = false;
};

bool ParseFlag(const char* arg, const char* name, std::string* out) {
  const std::size_t n = std::strlen(name);
  if (std::strncmp(arg, name, n) == 0 && arg[n] == '=') {
    *out = arg + n + 1;
    return true;
  }
  return false;
}

int Usage() {
  std::fprintf(stderr, "see the header of tools/rcsim.cpp for flag reference\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags;
  for (int i = 1; i < argc; ++i) {
    std::string value;
    const char* a = argv[i];
    if (ParseFlag(a, "--kernel", &value)) {
      flags.kernel = value;
    } else if (std::strcmp(a, "--containers") == 0) {
      flags.containers = true;
    } else if (std::strcmp(a, "--event-api") == 0) {
      flags.event_api = true;
    } else if (ParseFlag(a, "--clients", &value)) {
      flags.clients = std::atoi(value.c_str());
    } else if (ParseFlag(a, "--persistent", &value)) {
      flags.persistent = std::atoi(value.c_str());
    } else if (ParseFlag(a, "--doc-bytes", &value)) {
      flags.doc_bytes = static_cast<std::uint32_t>(std::atoi(value.c_str()));
    } else if (ParseFlag(a, "--cgi", &value)) {
      flags.cgi = std::atoi(value.c_str());
    } else if (ParseFlag(a, "--cgi-seconds", &value)) {
      flags.cgi_seconds = std::atof(value.c_str());
    } else if (ParseFlag(a, "--cgi-cap", &value)) {
      flags.cgi_cap = std::atof(value.c_str());
    } else if (ParseFlag(a, "--flood", &value)) {
      flags.flood = std::atof(value.c_str());
    } else if (std::strcmp(a, "--defend") == 0) {
      flags.defend = true;
    } else if (ParseFlag(a, "--cpus", &value)) {
      flags.cpus = std::atoi(value.c_str());
    } else if (ParseFlag(a, "--irq-steering", &value)) {
      flags.irq_steering = value;
    } else if (ParseFlag(a, "--seed", &value)) {
      flags.seed = static_cast<std::uint64_t>(std::atoll(value.c_str()));
    } else if (ParseFlag(a, "--warmup", &value)) {
      flags.warmup = std::atof(value.c_str());
    } else if (ParseFlag(a, "--seconds", &value)) {
      flags.seconds = std::atof(value.c_str());
    } else if (std::strcmp(a, "--csv") == 0) {
      flags.csv = true;
    } else if (std::strncmp(a, "--metrics-out", 13) == 0) {
      // Consumed by BenchReport, which scans argv itself.
    } else if (ParseFlag(a, "--trace-out", &value)) {
      flags.trace_out = value;
    } else if (ParseFlag(a, "--series-out", &value)) {
      flags.series_out = value;
    } else if (ParseFlag(a, "--epoch-ms", &value)) {
      flags.epoch_ms = std::atoi(value.c_str());
    } else if (std::strcmp(a, "--print-metrics") == 0) {
      flags.print_metrics = true;
    } else if (std::strcmp(a, "--audit") == 0) {
      flags.audit = true;
    } else if (std::strcmp(a, "--digest") == 0) {
      flags.digest = true;
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", a);
      return Usage();
    }
  }

  xp::ScenarioOptions options;
  if (flags.kernel == "unmodified") {
    options.kernel_config = kernel::UnmodifiedSystemConfig();
  } else if (flags.kernel == "lrp") {
    options.kernel_config = kernel::LrpSystemConfig();
  } else if (flags.kernel == "rc") {
    options.kernel_config = kernel::ResourceContainerSystemConfig();
  } else {
    std::fprintf(stderr, "bad --kernel value: %s\n", flags.kernel.c_str());
    return Usage();
  }
  if ((flags.containers || flags.defend) && flags.kernel != "rc") {
    std::fprintf(stderr, "--containers/--defend require --kernel=rc\n");
    return Usage();
  }
  if (flags.cpus < 1) {
    std::fprintf(stderr, "--cpus must be >= 1\n");
    return Usage();
  }
  options.kernel_config.cpus = flags.cpus;
  if (flags.irq_steering == "fixed") {
    options.kernel_config.irq_steering = kernel::IrqSteering::kFixed;
  } else if (flags.irq_steering == "rr") {
    options.kernel_config.irq_steering = kernel::IrqSteering::kRoundRobin;
  } else if (flags.irq_steering == "flow") {
    options.kernel_config.irq_steering = kernel::IrqSteering::kFlowHash;
  } else {
    std::fprintf(stderr, "bad --irq-steering value: %s\n", flags.irq_steering.c_str());
    return Usage();
  }
  options.seed = flags.seed;
  options.audit = flags.audit;
  options.digest = flags.digest;

  if (flags.epoch_ms <= 0) {
    std::fprintf(stderr, "--epoch-ms must be positive\n");
    return Usage();
  }
  if (!flags.series_out.empty() || flags.print_metrics) {
    options.telemetry = true;
    options.telemetry_interval = sim::Msec(flags.epoch_ms);
  }

  httpd::ServerConfig& server = options.server_config;
  server.use_containers = flags.containers;
  server.use_event_api = flags.event_api || flags.defend;
  server.syn_defense = flags.defend;
  if (flags.containers && flags.cgi > 0) {
    server.cgi_sandbox = true;
    server.cgi_share = flags.cgi_cap;
  }

  xp::Scenario scenario(options);
  if (!flags.trace_out.empty()) {
    scenario.kernel().tracer().Enable();
  }
  scenario.cache().AddDocument(2, flags.doc_bytes);
  scenario.StartServer();

  for (int i = 0; i < flags.clients; ++i) {
    load::HttpClient::Config cfg;
    cfg.addr = net::Addr{net::MakeAddr(10, 1, static_cast<unsigned>(i / 250), 0).v +
                         static_cast<std::uint32_t>(i % 250) + 1};
    cfg.requests_per_conn = flags.persistent;
    cfg.doc_id = 2;
    cfg.response_bytes = flags.doc_bytes;
    scenario.AddClient(cfg);
  }
  for (int i = 0; i < flags.cgi; ++i) {
    load::HttpClient::Config cgi;
    cgi.addr = net::Addr{net::MakeAddr(10, 3, 0, 0).v + static_cast<std::uint32_t>(i) + 1};
    cgi.is_cgi = true;
    cgi.cgi_cpu_usec = static_cast<sim::Duration>(flags.cgi_seconds * sim::kSec);
    cgi.client_class = 2;
    cgi.request_timeout = 0;
    scenario.AddClient(cgi);
  }
  if (flags.flood > 0) {
    load::SynFlooder::Config fcfg;
    fcfg.rate_per_sec = flags.flood;
    fcfg.seed = flags.seed;
    scenario.AddFlooder(fcfg)->Start();
  }

  scenario.StartAllClients();
  scenario.RunFor(static_cast<sim::Duration>(flags.warmup * sim::kSec));
  scenario.ResetClientStats();
  const auto cpu0 = scenario.SnapshotCpu();
  const sim::Duration cgi0 = scenario.kernel().ExecutedUsecForName("cgi");
  scenario.RunFor(static_cast<sim::Duration>(flags.seconds * sim::kSec));
  const auto cpu1 = scenario.SnapshotCpu();
  const sim::Duration cgi1 = scenario.kernel().ExecutedUsecForName("cgi");

  const double secs = sim::ToSeconds(cpu1.at - cpu0.at);
  const double tput = static_cast<double>(scenario.TotalCompleted()) / secs;
  double mean_ms = 0;
  std::size_t samples = 0;
  std::uint64_t timeouts = 0;
  std::uint64_t failures = 0;
  for (const auto& c : scenario.clients()) {
    mean_ms += c->latencies().mean() * static_cast<double>(c->latencies().count());
    samples += c->latencies().count();
    timeouts += c->timeouts();
    failures += c->failures();
  }
  mean_ms = samples ? mean_ms / static_cast<double>(samples) : 0;
  const double busy = static_cast<double>(cpu1.busy - cpu0.busy) /
                      static_cast<double>(cpu1.at - cpu0.at);
  const double irq = static_cast<double>(cpu1.interrupt - cpu0.interrupt) /
                     static_cast<double>(cpu1.at - cpu0.at);
  const double cgi_share =
      static_cast<double>(cgi1 - cgi0) / static_cast<double>(cpu1.at - cpu0.at);

  if (!flags.trace_out.empty()) {
    std::ofstream os(flags.trace_out);
    telemetry::WriteChromeTrace(scenario.kernel().tracer(),
                                telemetry::ContainerNamesFrom(scenario.kernel().containers()),
                                os);
    if (!os) {
      std::fprintf(stderr, "failed to write %s\n", flags.trace_out.c_str());
      return 1;
    }
  }
  if (!flags.series_out.empty()) {
    std::ofstream os(flags.series_out);
    scenario.sampler()->WriteJsonLines(os);
    if (!os) {
      std::fprintf(stderr, "failed to write %s\n", flags.series_out.c_str());
      return 1;
    }
  }

  telemetry::BenchReport bench("rcsim", argc, argv);
  {
    std::string config = "kernel=" + flags.kernel +
                         ",clients=" + std::to_string(flags.clients) +
                         ",persistent=" + std::to_string(flags.persistent);
    if (flags.cpus > 1) config += ",cpus=" + std::to_string(flags.cpus);
    if (flags.cgi > 0) config += ",cgi=" + std::to_string(flags.cgi);
    if (flags.flood > 0) {
      config += ",flood=" + std::to_string(static_cast<long>(flags.flood));
    }
    bench.Add("throughput", tput, "req/s", config);
    bench.Add("mean_latency", mean_ms, "ms", config);
    bench.Add("cpu_busy_frac", busy, "fraction", config);
    bench.Add("interrupt_frac", irq, "fraction", config);
    if (flags.cgi > 0) bench.Add("cgi_cpu_share", cgi_share, "fraction", config);
    bench.Add("client_timeouts", static_cast<double>(timeouts), "count", config);
    bench.Add("client_failures", static_cast<double>(failures), "count", config);
    if (!bench.Flush()) {
      std::fprintf(stderr, "failed to write %s\n", bench.path().c_str());
      return 1;
    }
  }

  if (flags.print_metrics) {
    xp::MetricsTable(scenario.metrics()).Print(std::cout);
    std::printf("\n");
  }

  if (flags.digest) {
    std::printf("digest: %s\n", scenario.digest()->hex().c_str());
  }

  if (flags.csv) {
    std::printf("throughput,mean_ms,cpu_busy,interrupt,cgi_share,timeouts,failures\n");
    std::printf("%.1f,%.3f,%.4f,%.4f,%.4f,%llu,%llu\n", tput, mean_ms, busy, irq,
                cgi_share, static_cast<unsigned long long>(timeouts),
                static_cast<unsigned long long>(failures));
    return 0;
  }

  xp::Table report({"metric", "value"});
  report.AddRow({"kernel", flags.kernel});
  report.AddRow({"throughput", xp::FormatDouble(tput, 0) + " req/s"});
  report.AddRow({"mean latency", xp::FormatDouble(mean_ms, 2) + " ms"});
  report.AddRow({"CPU busy", xp::FormatDouble(100 * busy, 1) + "%"});
  report.AddRow({"interrupt time", xp::FormatDouble(100 * irq, 1) + "%"});
  if (flags.cgi > 0) {
    report.AddRow({"CGI CPU share", xp::FormatDouble(100 * cgi_share, 1) + "%"});
  }
  if (flags.flood > 0) {
    report.AddRow({"flood filters", std::to_string(
                                        scenario.server().stats().flood_filters_installed)});
  }
  report.AddRow({"client timeouts", std::to_string(timeouts)});
  report.AddRow({"client failures", std::to_string(failures)});
  report.Print(std::cout);
  return 0;
}
