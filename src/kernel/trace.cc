#include "src/kernel/trace.h"

#include <iomanip>

namespace kernel {

const char* TraceKindName(TraceKind k) {
  switch (k) {
    case TraceKind::kDispatch:
      return "dispatch";
    case TraceKind::kSlice:
      return "slice";
    case TraceKind::kPreempt:
      return "preempt";
    case TraceKind::kBlock:
      return "block";
    case TraceKind::kWake:
      return "wake";
    case TraceKind::kInterrupt:
      return "interrupt";
    case TraceKind::kExit:
      return "exit";
  }
  return "?";
}

void Tracer::ForEach(const std::function<void(const TraceEvent&)>& fn) const {
  if (ring_.size() < capacity_) {
    for (const TraceEvent& e : ring_) {
      fn(e);
    }
    return;
  }
  for (std::size_t i = 0; i < ring_.size(); ++i) {
    fn(ring_[(next_ + i) % ring_.size()]);
  }
}

std::size_t Tracer::CountOf(TraceKind kind) const {
  std::size_t n = 0;
  ForEach([&](const TraceEvent& e) {
    if (e.kind == kind) {
      ++n;
    }
  });
  return n;
}

void Tracer::Dump(std::ostream& os, std::size_t max_lines) const {
  std::size_t emitted = 0;
  ForEach([&](const TraceEvent& e) {
    if (emitted++ >= max_lines) {
      return;
    }
    os << std::setw(12) << e.at << "us  " << std::setw(9) << TraceKindName(e.kind);
    if (e.thread_id != 0) {
      os << "  thread=" << e.thread_id;
    }
    if (e.container_id != 0) {
      os << "  container=" << e.container_id;
    }
    if (e.arg != 0) {
      os << "  " << e.arg << "us";
    }
    os << '\n';
  });
  if (dropped_ > 0) {
    os << "(" << dropped_ << " older events overwritten)\n";
  }
}

}  // namespace kernel
