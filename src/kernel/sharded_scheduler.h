// Per-CPU run-queue sharding for SMP (one scheduler instance per CPU behind
// the single-CPU CpuScheduler interface).
//
// Each CPU engine is handed a View that routes scheduler calls to that CPU's
// shard, so the engine code is identical on a uniprocessor and on an N-way
// machine. The policy inside each shard is unchanged (DecayUsageScheduler or
// HierarchicalScheduler); what makes shares and limits *machine-wide* is that
// OnCharge and Tick are broadcast to every shard: all N copies of the policy
// observe the same global charge stream, so stride passes, decayed usage and
// CPU-limit windows advance identically everywhere, and each CPU's local
// arbitration reflects machine-wide consumption.
//
// Placement: a thread is homed on the least-loaded shard at its first
// enqueue and stays there (cache affinity); an idle CPU steals from the
// most-loaded shard, re-homing the stolen thread. Sys::SetThreadAffinity pins
// a thread to one CPU, exempting it from stealing.
#ifndef SRC_KERNEL_SHARDED_SCHEDULER_H_
#define SRC_KERNEL_SHARDED_SCHEDULER_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "src/common/thread_annotations.h"
#include "src/kernel/scheduler.h"

namespace kernel {

class ShardedScheduler : public CpuScheduler {
 public:
  using ShardFactory = std::function<std::unique_ptr<CpuScheduler>()>;

  ShardedScheduler(int cpus, const ShardFactory& make_shard);

  int cpus() const { return static_cast<int>(shards_.size()); }

  // The per-CPU facade to install on CPU `cpu`'s engine.
  CpuScheduler* ViewFor(int cpu);

  // Underlying policy instance of one shard (tests/diagnostics).
  CpuScheduler& shard(int cpu) {
    serial_.AssertHeld();
    return *shards_[static_cast<std::size_t>(cpu)];
  }

  // Threads migrated by idle stealing since construction.
  std::uint64_t steals() const {
    serial_.AssertHeld();
    return steals_;
  }

  // Called with the home CPU after every enqueue, so the owning engine can
  // re-arbitrate. Without this a thread re-homed at slice end (pin or steal
  // changed its home while it ran elsewhere) would sit in an idle CPU's
  // queue until the next machine-wide wake-up.
  void set_poke(std::function<void(int cpu)> poke) {
    serial_.AssertHeld();
    poke_ = std::move(poke);
  }

  // --- CpuScheduler (machine-wide view; PickNext == CPU 0's view) ----------
  void Enqueue(Thread* t, sim::SimTime now) override;
  Thread* PickNext(sim::SimTime now) override { return PickFor(0, now); }
  void OnCharge(rc::ResourceContainer& c, sim::Duration usec, sim::SimTime now) override;
  void FlushCharges() override;
  void MigrateQueued(Thread* t, sim::SimTime now) override;
  void Remove(Thread* t) override;
  void Tick(sim::SimTime now) override;
  std::optional<sim::SimTime> NextEligibleTime(sim::SimTime now) override;
  void OnContainerDestroyed(rc::ResourceContainer& c) override;
  void DetachLifecycle() override;
  int runnable_count() const override;

 private:
  // Facade bound to one CPU; everything an engine calls lands on the shard
  // (or, for charges and container lifecycle, on the broadcast path).
  class View : public CpuScheduler {
   public:
    View(ShardedScheduler* owner, int cpu) : owner_(owner), cpu_(cpu) {}

    void Enqueue(Thread* t, sim::SimTime now) override { owner_->Enqueue(t, now); }
    Thread* PickNext(sim::SimTime now) override { return owner_->PickFor(cpu_, now); }
    void OnCharge(rc::ResourceContainer& c, sim::Duration usec,
                  sim::SimTime now) override {
      owner_->OnCharge(c, usec, now);
    }
    void FlushCharges() override { owner_->FlushCharges(); }
    void MigrateQueued(Thread* t, sim::SimTime now) override {
      owner_->MigrateQueued(t, now);
    }
    void Remove(Thread* t) override { owner_->Remove(t); }
    bool ShouldPreempt(const Thread& running) const override {
      return owner_->shard(cpu_).ShouldPreempt(running);
    }
    void Tick(sim::SimTime now) override { owner_->Tick(now); }
    std::optional<sim::SimTime> NextEligibleTime(sim::SimTime now) override {
      // Machine-wide: when any shard's throttled work becomes eligible this
      // CPU can pick it up locally or by stealing.
      return owner_->NextEligibleTime(now);
    }
    int runnable_count() const override {
      return owner_->shard(cpu_).runnable_count();
    }

   private:
    ShardedScheduler* const owner_;
    const int cpu_;
  };

  // Pick for CPU `cpu`: its own shard first, then idle-steal from the
  // most-loaded shard.
  Thread* PickFor(int cpu, sim::SimTime now);

  // Shard a (possibly fresh) thread belongs on: its pin, then its sticky
  // home, then the least-loaded shard.
  int HomeFor(Thread* t) const;

  // The machine-wide scheduler state is confined to the kernel's serialized
  // event-loop domain; Views route into it from every CPU engine, so each
  // routed entry point re-asserts the domain. shards_/views_ stay unguarded:
  // their *structure* is frozen after construction (only the shard objects
  // behind the pointers mutate).
  rccommon::Serial serial_;
  std::vector<std::unique_ptr<CpuScheduler>> shards_;
  std::vector<std::unique_ptr<View>> views_;
  std::function<void(int)> poke_ RC_GUARDED_BY(serial_);
  std::uint64_t steals_ RC_GUARDED_BY(serial_) = 0;
};

}  // namespace kernel

#endif  // SRC_KERNEL_SHARDED_SCHEDULER_H_
