// Kernel threads as C++20 coroutines.
//
// Application code running on the simulated kernel is an ordinary coroutine
// ("Program") whose co_awaits are syscalls. The CPU engine resumes the
// coroutine only while the thread is dispatched, so all application logic
// executes "on CPU" under the control of the scheduler, and every microsecond
// of simulated CPU is charged to the thread's current resource binding.
#ifndef SRC_KERNEL_THREAD_H_
#define SRC_KERNEL_THREAD_H_

#include <coroutine>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "src/rc/binding.h"
#include "src/rc/usage.h"
#include "src/sim/time.h"

namespace kernel {

class Kernel;
class Process;
class Thread;

// Coroutine return object for a thread body. The Thread owns the coroutine
// frame; the frame is destroyed when the thread is reaped.
class Program {
 public:
  struct promise_type {
    Thread* thread = nullptr;

    Program get_return_object() {
      return Program(std::coroutine_handle<promise_type>::from_promise(*this));
    }
    std::suspend_always initial_suspend() noexcept { return {}; }

    struct FinalAwaiter {
      bool await_ready() noexcept { return false; }
      void await_suspend(std::coroutine_handle<promise_type> h) noexcept;
      void await_resume() noexcept {}
    };
    FinalAwaiter final_suspend() noexcept { return {}; }
    void return_void() {}
    void unhandled_exception();
  };

  explicit Program(std::coroutine_handle<promise_type> handle) : handle_(handle) {}
  std::coroutine_handle<promise_type> handle() const { return handle_; }

 private:
  std::coroutine_handle<promise_type> handle_;
};

using ThreadId = std::uint64_t;

class Thread {
 public:
  enum class State {
    kRunnable,  // in (or headed for) a scheduler run queue
    kRunning,   // dispatched on the CPU
    kBlocked,   // waiting on a syscall completion
    kDone,      // program finished; awaiting reap
  };

  Thread(Kernel* kernel, Process* process, ThreadId id, std::string name);
  ~Thread();

  Thread(const Thread&) = delete;
  Thread& operator=(const Thread&) = delete;

  ThreadId id() const { return id_; }
  const std::string& name() const { return name_; }
  Process* process() const { return process_; }
  Kernel* kernel() const { return kernel_; }

  State state() const { return state_; }
  bool done() const { return state_ == State::kDone; }

  // Resource/scheduler bindings (Section 4.2 / 4.3).
  rc::BindingPoint& binding() { return binding_; }
  const rc::BindingPoint& binding() const { return binding_; }

  // Leaf container the scheduler should queue this thread under. Normally
  // the resource binding; the kernel network thread is re-pointed at the
  // highest-priority container with pending work (scheduler-binding effect).
  const rc::ContainerRef& sched_hint() const {
    return sched_hint_ ? sched_hint_ : binding_.resource_binding();
  }
  void set_sched_hint(rc::ContainerRef c) { sched_hint_ = std::move(c); }

  // Wall CPU this thread actually executed, independent of which container
  // the time was *charged* to (exposes softint misaccounting in experiments).
  sim::Duration executed_usec() const { return executed_usec_; }
  void AddExecuted(sim::Duration d) { executed_usec_ += d; }

  // --- CPU-demand protocol (driven by awaitables and the CPU engine) -----

  // Outstanding CPU the thread must consume before it can proceed.
  sim::Duration cpu_demand = 0;
  rc::CpuKind demand_kind = rc::CpuKind::kUser;

  // Deferred syscall action: runs (at zero simulated cost) once cpu_demand
  // reaches zero. May complete a value, add more demand, or block the thread.
  std::function<void()> after_demand;

  // Coroutine continuation to resume once demand and after_demand are done.
  std::coroutine_handle<> pending_resume;

  // --- State transitions --------------------------------------------------

  void MarkRunning() { state_ = State::kRunning; }
  void MarkRunnable() { state_ = State::kRunnable; }

  // Blocks the thread; it will not be scheduled until Unblock().
  void Block() { state_ = State::kBlocked; }

  // Wakes a blocked thread: enqueues it with the scheduler and pokes the CPU.
  void Unblock();

  void MarkDone() { state_ = State::kDone; }

  // Set by the promise when the program runs to completion.
  bool program_finished = false;

  // Set by the Yield awaitable: requeue instead of continuing.
  bool yield_requested = false;

  // The coroutine frame (owned). Installed by Kernel at spawn.
  std::coroutine_handle<Program::promise_type> frame;

  // The thread body callable, kept alive for the thread's lifetime. A
  // capturing lambda that is itself a coroutine reaches its captures through
  // the lambda object — which must therefore outlive the coroutine frame.
  std::function<void()> body_keepalive;

  // Opaque per-scheduler run-queue state.
  void* sched_cookie = nullptr;

  // --- SMP placement ------------------------------------------------------
  // CPU whose run-queue shard holds (or last held) this thread. -1 until the
  // sharded scheduler first places the thread; stays 0 on a uniprocessor.
  // Idle stealing re-homes the thread to the stealing CPU.
  int home_cpu = -1;
  // Hard affinity set via Sys::SetThreadAffinity: the thread only runs on
  // this CPU and is never stolen away from it. -1 = unpinned.
  int pinned_cpu = -1;

  // Invoked when the thread is reaped (used by join/wait primitives).
  std::vector<std::function<void()>> exit_watchers;

 private:
  Kernel* const kernel_;
  Process* const process_;
  const ThreadId id_;
  const std::string name_;

  State state_ = State::kRunnable;
  rc::BindingPoint binding_;
  rc::ContainerRef sched_hint_;
  sim::Duration executed_usec_ = 0;
};

}  // namespace kernel

#endif  // SRC_KERNEL_THREAD_H_
