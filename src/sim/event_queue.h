// A cancelable pending-event queue for the discrete-event engine.
//
// Events at equal timestamps fire in insertion order (FIFO), which keeps
// simulations deterministic regardless of queue internals.
//
// Two backends share one API and one slab of event records:
//
//  - kWheel (default): a 4-level hierarchical timing wheel, 256 slots per
//    level, 1 us granularity at level 0. Level k buckets times that share the
//    level-(k+1) window with the wheel's current time; a sorted calendar map
//    catches timers beyond the 2^32 us (~71.6 min) horizon. Schedule and
//    cancel are O(1); dispatch is amortized O(1) (occupancy-bitmap scans plus
//    one cascade per window crossing).
//  - kHeap: the seed binary-heap ordering, kept as a reference for
//    differential tests and as the benchmark baseline.
//
// Events live in a slab (std::vector) threaded with an intrusive freelist, so
// steady-state scheduling performs no heap allocation. Handles are
// generation-counted slot references instead of shared_ptr control blocks.
#ifndef SRC_SIM_EVENT_QUEUE_H_
#define SRC_SIM_EVENT_QUEUE_H_

#include <cstddef>
#include <cstdint>
#include <functional>
#include <map>
#include <queue>
#include <vector>

#include "src/sim/time.h"

namespace sim {

class EventQueue;

// Handle to a scheduled event; lets the scheduler cancel in-flight work
// (e.g. a CPU slice-completion event when an interrupt preempts the slice).
//
// The handle names a slab slot plus the generation stamped when the event was
// scheduled; a stale handle (slot freed or reused) is detected by generation
// mismatch, so Cancel/pending are safe after the event fired. A handle must
// not outlive its EventQueue — engine components satisfy this because the
// Simulator is declared before (and so destroyed after) everything that
// stores handles.
class EventHandle {
 public:
  EventHandle() = default;

  // Cancels the event if it has not fired yet. Safe to call repeatedly and
  // after the event fired.
  void Cancel();

  // True while the event is scheduled and not canceled.
  bool pending() const;

 private:
  friend class EventQueue;
  EventHandle(EventQueue* queue, std::uint32_t slot, std::uint32_t gen)
      : queue_(queue), slot_(slot), gen_(gen) {}

  EventQueue* queue_ = nullptr;
  std::uint32_t slot_ = 0;
  std::uint32_t gen_ = 0;
};

class EventQueue {
 public:
  enum class Backend {
    kWheel,  // hierarchical timing wheel + calendar overflow (default)
    kHeap,   // reference binary heap (differential tests, benchmarks)
  };

  explicit EventQueue(Backend backend = Backend::kWheel);

  // Schedules `fn` at absolute time `when`. Returns a handle usable to
  // cancel. The wheel backend requires `when` to be no earlier than the last
  // dispatched timestamp (the simulator's clock never runs backwards).
  EventHandle Schedule(SimTime when, std::function<void()> fn);

  // True when no non-canceled event remains. O(1), no side effects.
  bool empty() const { return live_ == 0; }

  // Time of the earliest non-canceled event. Precondition: !empty().
  // Logically const: may lazily reclaim canceled slots encountered while
  // scanning, which is unobservable through this API.
  SimTime NextTime() const;

  // Pops and runs the earliest non-canceled event; returns its timestamp.
  // Precondition: !empty().
  SimTime RunNext();

  // Eagerly reclaims every canceled-but-unreaped slot. Dispatch already
  // reclaims lazily; this just bounds slab growth after a cancel storm.
  void PurgeCanceled();

  // --- engine telemetry ----------------------------------------------------
  std::size_t depth() const { return live_; }            // live pending events
  std::uint64_t dispatched() const { return dispatched_; }
  std::uint64_t canceled() const { return canceled_; }
  Backend backend() const { return backend_; }

 private:
  friend class EventHandle;

  static constexpr std::uint32_t kNil = 0xFFFFFFFFu;
  static constexpr int kLevels = 4;
  static constexpr int kSlotBits = 8;
  static constexpr std::uint32_t kSlotsPerLevel = 1u << kSlotBits;  // 256
  static constexpr std::uint32_t kBitmapWords = kSlotsPerLevel / 64;

  struct Event {
    SimTime when = 0;
    std::uint64_t seq = 0;  // insertion order; orders the heap backend
    std::uint32_t gen = 0;  // bumped on free; handles must match
    bool canceled = false;
    std::uint32_t next = kNil;  // slot-list / freelist link
    std::function<void()> fn;
  };

  // Intrusive FIFO list of slab indices (one per wheel slot / calendar key).
  struct List {
    std::uint32_t head = kNil;
    std::uint32_t tail = kNil;
    bool empty() const { return head == kNil; }
  };

  struct HeapEntry {
    SimTime when;
    std::uint64_t seq;
    std::uint32_t slot;
  };
  struct Later {
    bool operator()(const HeapEntry& a, const HeapEntry& b) const {
      if (a.when != b.when) {
        return a.when > b.when;
      }
      return a.seq > b.seq;
    }
  };

  // --- slab ---------------------------------------------------------------
  std::uint32_t AllocEvent(SimTime when, std::function<void()> fn);
  void FreeEvent(std::uint32_t idx);

  // --- handle support -----------------------------------------------------
  void CancelSlot(std::uint32_t idx, std::uint32_t gen);
  bool SlotPending(std::uint32_t idx, std::uint32_t gen) const;

  // --- wheel --------------------------------------------------------------
  void Append(List& list, std::uint32_t idx);
  void SetOccupied(int level, std::uint32_t slot);
  void ClearOccupied(int level, std::uint32_t slot);
  // First occupied slot at `level`, or -1. All occupied slots are at or after
  // the wheel's current index at that level (past windows are always empty).
  int FirstOccupied(int level) const;
  // Routes the event into the wheel level whose window (relative to cur_)
  // contains events_[idx].when, or into the overflow calendar.
  void WheelInsert(std::uint32_t idx);
  // Redistributes one slot of `level` into lower levels (order-preserving).
  void CascadeSlot(int level, std::uint32_t slot);
  // Moves every overflow-calendar event of `epoch` (when >> 32) into the
  // wheel. Precondition: cur_ is at the epoch base.
  void MigrateOverflowEpoch(std::uint64_t epoch);
  // Advances wheel time to `t` (the timestamp about to dispatch), cascading
  // higher-level slots across each window boundary crossed.
  void AdvanceTo(SimTime t);
  // Rebuilds `list` without its canceled events, freeing them.
  void DropCanceled(List& list);

  // Ensures next_time_ names the earliest live timestamp. Returns false when
  // no live event exists. Reclaims canceled slots found while scanning.
  bool RefreshNext();

  Backend backend_;

  std::vector<Event> events_;
  std::uint32_t free_head_ = kNil;
  std::size_t live_ = 0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t dispatched_ = 0;
  std::uint64_t canceled_ = 0;

  // Wheel time: the timestamp of the last dispatched event. Invariant: no
  // live event is earlier, and every wheel slot before the current index at
  // each level is empty.
  SimTime cur_ = 0;
  List wheel_[kLevels][kSlotsPerLevel];
  std::uint64_t occupied_[kLevels][kBitmapWords] = {};
  std::map<SimTime, List> overflow_;

  // Cached earliest live timestamp; invalidated by dispatch and by cancels
  // at or before it, tightened by earlier schedules.
  bool next_valid_ = false;
  SimTime next_time_ = 0;

  std::priority_queue<HeapEntry, std::vector<HeapEntry>, Later> heap_;
};

}  // namespace sim

#endif  // SRC_SIM_EVENT_QUEUE_H_
