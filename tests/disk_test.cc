// Tests for the simulated disk and its container-aware scheduling.
#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "src/disk/disk_engine.h"
#include "src/kernel/kernel.h"
#include "src/kernel/syscalls.h"
#include "src/rc/manager.h"
#include "src/sim/simulator.h"

namespace disk {
namespace {

class DiskTest : public ::testing::Test {
 protected:
  sim::Simulator simr_;
  rc::ContainerManager manager_;
  DiskCosts costs_;
};

TEST_F(DiskTest, ServiceTimeIncludesPositioning) {
  DiskEngine d(&simr_, costs_, &manager_);
  EXPECT_EQ(d.ServiceTime(4, /*sequential=*/false),
            costs_.positioning_usec + 4 * costs_.transfer_usec_per_kb);
  EXPECT_EQ(d.ServiceTime(4, /*sequential=*/true), 4 * costs_.transfer_usec_per_kb);
}

TEST_F(DiskTest, CompletesInServiceTime) {
  DiskEngine d(&simr_, costs_, &manager_);
  sim::SimTime done_at = -1;
  IoRequest req;
  req.kb = 8;
  req.block_kb = 100;
  req.done = [&] { done_at = simr_.now(); };
  d.Submit(std::move(req));
  EXPECT_TRUE(d.busy());
  simr_.RunUntilIdle();
  EXPECT_EQ(done_at, costs_.positioning_usec + 8 * costs_.transfer_usec_per_kb);
  EXPECT_FALSE(d.busy());
  EXPECT_EQ(d.stats().requests, 1u);
  EXPECT_EQ(d.stats().kb_transferred, 8u);
}

TEST_F(DiskTest, SequentialReadsSkipPositioning) {
  DiskEngine d(&simr_, costs_, &manager_);
  sim::SimTime done_at = -1;
  IoRequest a;
  a.block_kb = 0;
  a.kb = 4;
  d.Submit(std::move(a));
  IoRequest b;
  b.block_kb = 4;  // adjacent to a's end
  b.kb = 4;
  b.done = [&] { done_at = simr_.now(); };
  d.Submit(std::move(b));
  simr_.RunUntilIdle();
  // a: positioning + 4 KB; b: transfer only.
  EXPECT_EQ(done_at, costs_.positioning_usec + 8 * costs_.transfer_usec_per_kb);
  EXPECT_EQ(d.stats().sequential_hits, 1u);
}

TEST_F(DiskTest, HighPriorityContainerJumpsQueue) {
  DiskEngine d(&simr_, costs_, &manager_);
  rc::Attributes hi;
  hi.sched.priority = 40;
  rc::Attributes lo;
  lo.sched.priority = 4;
  auto chi = manager_.Create(nullptr, "hi", hi).value();
  auto clo = manager_.Create(nullptr, "lo", lo).value();

  std::vector<int> completion_order;
  auto submit = [&](rc::ContainerRef c, int id) {
    IoRequest r;
    r.block_kb = 10000u * static_cast<unsigned>(id);
    r.container = std::move(c);
    r.done = [&completion_order, id] { completion_order.push_back(id); };
    d.Submit(std::move(r));
  };
  // First request starts immediately; the rest queue. The high-priority
  // request (3) must run before the earlier-queued low-priority ones.
  submit(clo, 1);
  submit(clo, 2);
  submit(chi, 3);
  simr_.RunUntilIdle();
  EXPECT_EQ(completion_order, (std::vector<int>{1, 3, 2}));
}

TEST_F(DiskTest, FifoWithinPriorityClass) {
  DiskEngine d(&simr_, costs_, &manager_);
  auto c = manager_.Create(nullptr, "c").value();
  std::vector<int> order;
  for (int i = 0; i < 4; ++i) {
    IoRequest r;
    r.block_kb = 5000u * static_cast<unsigned>(i + 1);
    r.container = c;
    r.done = [&order, i] { order.push_back(i); };
    d.Submit(std::move(r));
  }
  simr_.RunUntilIdle();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3}));
}

TEST_F(DiskTest, ChargesContainerDiskUsage) {
  DiskEngine d(&simr_, costs_, &manager_);
  auto c = manager_.Create(nullptr, "c").value();
  IoRequest r;
  r.kb = 16;
  r.block_kb = 999;
  r.container = c;
  d.Submit(std::move(r));
  simr_.RunUntilIdle();
  EXPECT_EQ(c->usage().disk_reads, 1u);
  EXPECT_EQ(c->usage().disk_kb, 16u);
  EXPECT_EQ(c->usage().disk_busy_usec,
            costs_.positioning_usec + 16 * costs_.transfer_usec_per_kb);
}

TEST_F(DiskTest, SubtreeUsageIncludesDisk) {
  rc::Attributes fs;
  fs.sched.cls = rc::SchedClass::kFixedShare;
  fs.sched.fixed_share = 0.5;
  auto parent = manager_.Create(nullptr, "p", fs).value();
  auto child = manager_.Create(parent, "c").value();
  DiskEngine d(&simr_, costs_, &manager_);
  IoRequest r;
  r.kb = 4;
  r.container = child;
  d.Submit(std::move(r));
  simr_.RunUntilIdle();
  EXPECT_EQ(parent->SubtreeUsage().disk_kb, 4u);
}

// --- Through the syscall layer ----------------------------------------------

kernel::Program ReadOnce(kernel::Sys sys, std::uint32_t kb, sim::SimTime* done) {
  co_await sys.ReadDisk(0, kb);
  *done = sys.now();
}

TEST(DiskSyscallTest, ReadDiskBlocksCallerAndCharges) {
  sim::Simulator simr;
  kernel::Kernel kern(&simr, kernel::ResourceContainerSystemConfig());
  sim::SimTime done = -1;
  kernel::Process* p = kern.CreateProcess("reader");
  kern.SpawnThread(p, "t", [&done](kernel::Sys sys) { return ReadOnce(sys, 64, &done); });
  simr.RunUntil(sim::Sec(1));
  // 8 ms positioning + 64 KB * 60 us/KB = 11.84 ms, plus small syscall costs.
  EXPECT_GT(done, sim::Msec(11));
  EXPECT_LT(done, sim::Msec(13));
  EXPECT_EQ(p->default_container()->usage().disk_kb, 64u);
  // The thread consumed almost no CPU while waiting on the transfer.
  EXPECT_LT(p->default_container()->usage().TotalCpuUsec(), 100);
}

TEST(DiskSyscallTest, PrioritizedReadersUnderContention) {
  sim::Simulator simr;
  kernel::Kernel kern(&simr, kernel::ResourceContainerSystemConfig());
  rc::Attributes hi;
  hi.sched.priority = 40;
  rc::Attributes lo;
  lo.sched.priority = 4;
  auto chi = kern.containers().Create(nullptr, "hi", hi).value();
  auto clo = kern.containers().Create(nullptr, "lo", lo).value();

  auto reader = [](kernel::Sys sys) -> kernel::Program {
    for (int i = 0; i < 500; ++i) {
      co_await sys.ReadDisk(static_cast<std::uint64_t>(i) * 100, 4);
    }
  };
  // One high-priority reader competes with three low-priority ones; each
  // thread keeps one request outstanding (closed loop), so the disk queue
  // holds several low-priority requests whenever the high one arrives.
  kernel::Process* ph = kern.CreateProcess("hi-reader", chi);
  kern.SpawnThread(ph, "t", reader);
  for (int i = 0; i < 3; ++i) {
    kernel::Process* pl = kern.CreateProcess("lo-reader", clo);
    kern.SpawnThread(pl, "t", reader);
  }

  simr.RunUntil(sim::Sec(1));
  // The high-priority container jumps the queue at every completion, so it
  // gets far more than the 1/4 of the bandwidth a fair split would give.
  const double hi_reads = static_cast<double>(chi->usage().disk_reads);
  const double lo_each = static_cast<double>(clo->usage().disk_reads) / 3.0;
  EXPECT_GT(hi_reads, 2.0 * lo_each);
}

TEST(DiskSyscallTest, PriorityZeroReadersAreNotStarved) {
  // Regression test for the share-tree arbitration: under the old strict
  // priority buckets a priority-0 container's I/O never ran while a saturating
  // higher-priority stream existed. On the disk (unlike the CPU) priority 0 is
  // just the weakest weight, so the background reader keeps a proportional
  // trickle.
  sim::Simulator simr;
  kernel::Kernel kern(&simr, kernel::ResourceContainerSystemConfig());
  rc::Attributes hi;
  hi.disk.override_sched = true;
  hi.disk.sched.priority = 40;
  rc::Attributes zero;
  zero.disk.override_sched = true;
  zero.disk.sched.priority = 0;
  auto chi = kern.containers().Create(nullptr, "hi", hi).value();
  auto czero = kern.containers().Create(nullptr, "zero", zero).value();

  auto reader = [](kernel::Sys sys) -> kernel::Program {
    for (int i = 0; i < 5000; ++i) {
      co_await sys.ReadDisk(static_cast<std::uint64_t>(i) * 100, 4);
    }
  };
  // Three high-priority readers keep the disk queue backlogged (a single
  // closed-loop reader would leave the queue empty at every decision point);
  // one background reader competes at priority 0.
  for (int i = 0; i < 3; ++i) {
    kernel::Process* ph = kern.CreateProcess("hi-reader", chi);
    kern.SpawnThread(ph, "t", reader);
  }
  kernel::Process* pz = kern.CreateProcess("zero-reader", czero);
  kern.SpawnThread(pz, "t", reader);

  simr.RunUntil(sim::Sec(2));
  const auto hi_reads = chi->usage().disk_reads;
  const auto zero_reads = czero->usage().disk_reads;
  // Proportional progress: some reads, but far fewer than the 40-weight
  // stream (a fair split would be ~50/50, starvation would be 0).
  EXPECT_GT(zero_reads, 0u);
  EXPECT_GT(hi_reads, 5 * zero_reads);
}

}  // namespace
}  // namespace disk
