file(REMOVE_RECURSE
  "CMakeFiles/kernel_syscalls_test.dir/kernel_syscalls_test.cc.o"
  "CMakeFiles/kernel_syscalls_test.dir/kernel_syscalls_test.cc.o.d"
  "kernel_syscalls_test"
  "kernel_syscalls_test.pdb"
  "kernel_syscalls_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kernel_syscalls_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
