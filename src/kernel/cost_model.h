// CPU cost parameters of the simulated machine, calibrated against the
// paper's 500 MHz Alpha 21164 server (Section 5.2/5.3):
//
//   * connection-per-request HTTP, cached 1 KB file: 338 us/request
//     (2954 requests/s at CPU saturation)
//   * persistent-connection HTTP: 105 us/request (9487 requests/s)
//   * SYN-flood: unmodified kernel saturates at ~10,000 SYNs/s
//     => per-SYN softint cost (irq + protocol) ~ 97 us
//   * RC kernel keeps ~73% of throughput at 70,000 SYNs/s
//     => per-SYN irq + packet-filter cost ~ 4 us
//
// Per-request cost budget, connection-per-request (softint mode):
//   4 inbound packets (SYN, ACK, DATA, FIN) x irq          =   8
//   SYN 95 + ACK 25 + DATA-in 22 + FIN 18 (protocol)       = 160
//   accept 12 + recv 5 + send 10 + close 8 (syscalls)      =  35
//   parse 45 + file-cache lookup 25 (application)          =  70
//   response output 20 + FIN output + teardown 25          =  45
//   event wait amortized + dispatch                        ~  20
//                                                   total  ~ 338 us
// Persistent-connection request: irq 2 + DATA-in 22 + recv 5 + parse 45 +
//   file 25 + send 10 + output 20 ~ 105-130 us => calibrated via parse/file.
#ifndef SRC_KERNEL_COST_MODEL_H_
#define SRC_KERNEL_COST_MODEL_H_

#include "src/net/stack.h"
#include "src/sim/time.h"

namespace kernel {

struct CostModel {
  // --- Interrupt path ----------------------------------------------------
  sim::Duration irq_overhead = 2;    // per-packet device interrupt
  sim::Duration packet_filter = 2;   // early demux + filter match (LRP/RC)

  // --- Protocol processing (shared with net::StackCosts) ------------------
  sim::Duration syn_processing = 95;
  sim::Duration ack_processing = 60;
  sim::Duration data_in = 21;
  sim::Duration fin_processing = 18;
  sim::Duration output_per_packet = 20;
  sim::Duration teardown = 40;

  // --- Syscalls ------------------------------------------------------------
  sim::Duration syscall_base = 2;
  sim::Duration accept_syscall = 25;
  sim::Duration recv_syscall = 5;
  sim::Duration send_syscall = 10;  // plus per-packet output cost
  sim::Duration close_syscall = 8;
  sim::Duration listen_syscall = 10;

  // select(): linear in the number of descriptors in the interest set
  // (Section 5.5 attributes the residual Thigh growth to exactly this).
  sim::Duration select_base = 6;
  sim::Duration select_per_fd = 2;

  // The scalable event API of [Banga/Druschel/Mogul 98]: constant per call
  // plus constant per returned event.
  sim::Duration event_api_base = 4;
  sim::Duration event_api_per_event = 1;

  // --- Resource-container primitives (Table 1) ----------------------------
  sim::Duration container_create = 2;
  sim::Duration container_destroy = 2;
  sim::Duration container_bind_thread = 1;
  sim::Duration container_get_usage = 2;
  sim::Duration container_set_attr = 2;
  sim::Duration container_move = 3;
  sim::Duration container_get_handle = 2;

  // --- Process machinery ---------------------------------------------------
  sim::Duration fork_cost = 300;
  sim::Duration exit_cost = 50;
  sim::Duration context_switch = 2;

  // --- Application-level HTTP costs ---------------------------------------
  sim::Duration http_parse = 30;
  sim::Duration file_cache_lookup = 15;

  // Scheduler parameters. The quantum models the clock-tick re-arbitration
  // granularity of the paper's kernel (Alpha hz = 1024 -> ~1 ms), not the
  // (longer) round-robin quantum: a runnable higher-precedence thread gets
  // the CPU within one tick.
  sim::Duration quantum = sim::Msec(1);
  sim::Duration decay_tick = sim::Msec(100);
  double decay_per_tick = 0.933;  // ~0.5 per second at 100 ms ticks
  sim::Duration limit_window = sim::Msec(100);
  sim::Duration binding_prune_interval = sim::Sec(1);
  sim::Duration binding_idle_threshold = sim::Sec(2);

  net::StackCosts ToStackCosts() const {
    net::StackCosts c;
    c.syn_processing = syn_processing;
    c.ack_processing = ack_processing;
    c.data_in = data_in;
    c.fin_processing = fin_processing;
    c.output_per_packet = output_per_packet;
    c.teardown = teardown;
    return c;
  }
};

}  // namespace kernel

#endif  // SRC_KERNEL_COST_MODEL_H_
