# Empty compiler generated dependencies file for rc_load.
# This may be replaced when dependencies are built.
