file(REMOVE_RECURSE
  "CMakeFiles/rc_common.dir/expected.cc.o"
  "CMakeFiles/rc_common.dir/expected.cc.o.d"
  "librc_common.a"
  "librc_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rc_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
