#include "src/telemetry/sampler.h"

#include <utility>

#include "src/common/check.h"
#include "src/telemetry/json.h"

namespace telemetry {

EpochSampler::EpochSampler(sim::Simulator* simulator, rc::ContainerManager* containers,
                           sim::Duration interval)
    : simr_(simulator),
      containers_(containers),
      interval_(interval),
      self_(std::make_shared<EpochSampler*>(this)) {
  // A non-positive interval would make Tick() reschedule itself at the same
  // instant and pin the simulator at the current time forever.
  RC_CHECK_GT(interval_, 0);
  // Stamp retirement on destroy so a series is never mistaken for a live
  // container that merely stopped accumulating.
  std::weak_ptr<EpochSampler*> weak = self_;
  containers_->AddDestroyObserver([weak](rc::ResourceContainer& c) {
    auto self = weak.lock();
    if (!self) {
      return;  // sampler destroyed before the manager
    }
    EpochSampler& sampler = **self;
    auto it = sampler.series_.find(c.id());
    if (it != sampler.series_.end() && !it->second.retired()) {
      it->second.retired_at = sampler.simr_->now();
    }
  });
}

EpochSampler::~EpochSampler() { Stop(); }

void EpochSampler::Start() {
  if (running_) {
    return;
  }
  running_ = true;
  timer_ = simr_->After(interval_, [this] { Tick(); });
}

void EpochSampler::Stop() {
  running_ = false;
  timer_.Cancel();
}

void EpochSampler::Tick() {
  if (!running_) {
    return;
  }
  SampleNow();
  timer_ = simr_->After(interval_, [this] { Tick(); });
}

void EpochSampler::SampleNow() {
  const sim::SimTime now = simr_->now();
  ++epochs_;
  const sim::EventQueue& q = simr_->queue();
  engine_series_.push_back(EngineSample{now, q.dispatched(), q.canceled(),
                                        static_cast<std::uint64_t>(q.depth())});
  containers_->ForEachLive([&](rc::ResourceContainer& c) {
    auto [it, inserted] = series_.try_emplace(c.id());
    ContainerSeries& s = it->second;
    if (inserted) {
      s.id = c.id();
      s.name = c.name();
      s.first_sample_at = now;
    }
    UsageSample sample{now, c.usage(), 0};
    if (guarantee_probe_) {
      sample.guaranteed_bytes = guarantee_probe_(c);
    }
    s.samples.push_back(std::move(sample));
  });
}

void EpochSampler::WriteJsonLines(std::ostream& os) const {
  const auto old_precision = os.precision(15);
  for (const auto& [id, s] : series_) {
    for (const UsageSample& sample : s.samples) {
      const rc::ResourceUsage& u = sample.usage;
      os << "{\"at\":" << sample.at << ",\"container\":" << id << ",\"name\":\""
         << EscapeJson(s.name) << "\",\"cpu_user_usec\":" << u.cpu_user_usec
         << ",\"cpu_kernel_usec\":" << u.cpu_kernel_usec
         << ",\"cpu_network_usec\":" << u.cpu_network_usec
         << ",\"memory_bytes\":" << u.memory_bytes
         << ",\"memory_guaranteed_bytes\":" << sample.guaranteed_bytes
         << ",\"memory_reclaims\":" << u.memory_reclaims
         << ",\"memory_reclaimed_bytes\":" << u.memory_reclaimed_bytes
         << ",\"memory_refusals\":" << u.memory_refusals
         << ",\"packets_received\":" << u.packets_received
         << ",\"packets_dropped\":" << u.packets_dropped
         << ",\"bytes_received\":" << u.bytes_received
         << ",\"bytes_sent\":" << u.bytes_sent
         << ",\"disk_busy_usec\":" << u.disk_busy_usec
         << ",\"link_busy_usec\":" << u.link_busy_usec
         << ",\"link_packets\":" << u.link_packets << "}\n";
    }
    if (s.retired()) {
      os << "{\"container\":" << id << ",\"name\":\"" << EscapeJson(s.name)
         << "\",\"retired\":" << s.retired_at << "}\n";
    }
  }
  for (const EngineSample& e : engine_series_) {
    os << "{\"at\":" << e.at << ",\"engine\":{\"events_dispatched\":"
       << e.events_dispatched << ",\"events_canceled\":" << e.events_canceled
       << ",\"queue_depth\":" << e.queue_depth << "}}\n";
  }
  os.precision(old_precision);
}

}  // namespace telemetry
