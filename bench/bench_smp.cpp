// SMP scaling — throughput vs CPU count, and machine-wide fixed shares.
//
// The paper's prototype is a uniprocessor; this bench exercises the
// simulator's SMP extension (per-CPU run queues + interrupt steering,
// DESIGN.md Section 4) and answers two questions:
//
//  1. Scaling: how does aggregate throughput grow with CPUs for (a) one
//     single-threaded event-driven server instance per CPU and (b) one
//     multi-threaded server whose worker pool spreads across CPUs by idle
//     stealing? Interrupts are flow-hash steered (RSS-style), so protocol
//     processing parallelizes with the application.
//  2. Share accuracy: do the Section 5.8 fixed shares (50/30/20) hold
//     machine-wide on 4 CPUs? Guest threads are spawned interleaved so every
//     per-CPU queue holds all three guests (the placement rule of
//     DESIGN.md Section 4); usage broadcasting then makes each guest's
//     *machine-wide* consumption track its share.
//
// Flags: --cpus=1,2,4,8 (CPU counts to sweep; CI smoke uses --cpus=1,4),
//        --seconds=N (measurement window per point), --metrics-out[=file].
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "src/httpd/event_server.h"
#include "src/httpd/threaded_server.h"
#include "src/telemetry/bench_io.h"
#include "src/load/http_client.h"
#include "src/load/wire.h"
#include "src/xp/table.h"

namespace {

constexpr int kClientsPerCpu = 24;  // saturates one CPU at connection/request

struct ScaleResult {
  double throughput = 0;   // aggregate req/s
  double busy_cpus = 0;    // machine busy time / wall time (units of CPUs)
  std::uint64_t steals = 0;
};

kernel::Program Spinner(kernel::Sys sys) {
  while (true) {
    co_await sys.Compute(100, rc::CpuKind::kUser);
  }
}

ScaleResult Measure(sim::Simulator& simr, kernel::Kernel& kern,
                    std::vector<std::unique_ptr<load::HttpClient>>& clients,
                    sim::Duration measure) {
  sim::SimTime at = 0;
  for (auto& c : clients) {
    c->Start(at);
    at += sim::Msec(1);  // staggered, as in xp::Scenario
  }
  simr.RunUntil(sim::Sec(1));  // warm-up
  for (auto& c : clients) {
    c->ResetStats();
  }
  const sim::SimTime t0 = simr.now();
  const sim::Duration busy0 = kern.smp().busy_usec();
  simr.RunUntil(t0 + measure);
  const sim::SimTime t1 = simr.now();

  ScaleResult r;
  std::uint64_t completed = 0;
  for (auto& c : clients) {
    completed += c->completed();
  }
  r.throughput = static_cast<double>(completed) / sim::ToSeconds(t1 - t0);
  r.busy_cpus = static_cast<double>(kern.smp().busy_usec() - busy0) /
                static_cast<double>(t1 - t0);
  if (kern.sharded_scheduler() != nullptr) {
    r.steals = kern.sharded_scheduler()->steals();
  }
  return r;
}

// One single-threaded event-driven server instance per CPU (ports 80+i),
// kClientsPerCpu closed-loop clients each.
ScaleResult RunEventDriven(int cpus, sim::Duration measure) {
  sim::Simulator simr;
  kernel::KernelConfig kcfg = kernel::UnmodifiedSystemConfig();
  kcfg.cpus = cpus;
  kcfg.irq_steering = kernel::IrqSteering::kFlowHash;
  kernel::Kernel kern(&simr, kcfg);
  load::Wire wire(&simr, &kern);
  kern.Start();

  httpd::FileCache cache;
  cache.AddDocument(1, 1024);

  std::vector<std::unique_ptr<httpd::EventDrivenServer>> servers;
  std::vector<std::unique_ptr<load::HttpClient>> clients;
  std::uint32_t client_id = 1;
  for (int i = 0; i < cpus; ++i) {
    httpd::ServerConfig scfg;
    scfg.port = static_cast<std::uint16_t>(80 + i);
    auto server = std::make_unique<httpd::EventDrivenServer>(&kern, &cache, scfg);
    server->Start();
    servers.push_back(std::move(server));
    for (int c = 0; c < kClientsPerCpu; ++c) {
      load::HttpClient::Config ccfg;
      ccfg.addr = net::Addr{net::MakeAddr(10, static_cast<unsigned>(1 + i), 0, 0).v +
                            static_cast<std::uint32_t>(c) + 1};
      ccfg.server_port = scfg.port;
      clients.push_back(
          std::make_unique<load::HttpClient>(&simr, &wire, client_id++, ccfg));
    }
  }
  return Measure(simr, kern, clients, measure);
}

// One multi-threaded server (16-worker pool, port 80); offered load grows
// with the machine. Workers have no static placement — idle CPUs steal them.
ScaleResult RunThreadPool(int cpus, sim::Duration measure) {
  sim::Simulator simr;
  kernel::KernelConfig kcfg = kernel::UnmodifiedSystemConfig();
  kcfg.cpus = cpus;
  kcfg.irq_steering = kernel::IrqSteering::kFlowHash;
  kernel::Kernel kern(&simr, kcfg);
  load::Wire wire(&simr, &kern);
  kern.Start();

  httpd::FileCache cache;
  cache.AddDocument(1, 1024);

  httpd::ServerConfig scfg;
  scfg.worker_threads = 16;
  httpd::MultiThreadedServer server(&kern, &cache, scfg);
  server.Start();

  std::vector<std::unique_ptr<load::HttpClient>> clients;
  for (int c = 0; c < kClientsPerCpu * cpus; ++c) {
    load::HttpClient::Config ccfg;
    ccfg.addr = net::Addr{net::MakeAddr(10, 1, 0, 0).v + static_cast<std::uint32_t>(c) + 1};
    clients.push_back(std::make_unique<load::HttpClient>(
        &simr, &wire, static_cast<std::uint32_t>(c) + 1, ccfg));
  }
  return Measure(simr, kern, clients, measure);
}

// Section 5.8 machine-wide: three CPU-bound guests at 50/30/20 on 4 CPUs.
void RunShares(telemetry::BenchReport& report, xp::Table& table, int cpus,
               sim::Duration measure) {
  sim::Simulator simr;
  kernel::KernelConfig kcfg = kernel::ResourceContainerSystemConfig();
  kcfg.cpus = cpus;
  kernel::Kernel kern(&simr, kcfg);
  kern.Start();

  const double shares[3] = {0.50, 0.30, 0.20};
  std::vector<rc::ContainerRef> guests;
  for (int g = 0; g < 3; ++g) {
    rc::Attributes attrs;
    attrs.sched.cls = rc::SchedClass::kFixedShare;
    attrs.sched.fixed_share = shares[g];
    guests.push_back(
        kern.containers().Create(nullptr, "guest" + std::to_string(g), attrs).value());
  }
  // Interleaved spawn (A,B,C,A,B,C,...), one thread per CPU per guest: the
  // least-loaded home assignment then gives every per-CPU queue one thread
  // of each guest, so shares hold without migration.
  for (int round = 0; round < cpus; ++round) {
    for (int g = 0; g < 3; ++g) {
      kernel::Process* p = kern.CreateProcess(
          "guest" + std::to_string(g) + ".t" + std::to_string(round), guests[g]);
      kern.SpawnThread(p, "spin", [](kernel::Sys sys) { return Spinner(sys); });
    }
  }

  simr.RunUntil(sim::Sec(1));  // let the stride state settle
  std::vector<rc::ResourceUsage> usage0;
  for (auto& g : guests) {
    usage0.push_back(g->SubtreeUsage());
  }
  const sim::SimTime t0 = simr.now();
  simr.RunUntil(t0 + measure);
  const sim::SimTime t1 = simr.now();
  // All CPUs are saturated: shares are of the whole machine.
  const double machine = static_cast<double>(cpus) * static_cast<double>(t1 - t0);

  for (int g = 0; g < 3; ++g) {
    const double used = static_cast<double>(guests[g]->SubtreeUsage().TotalCpuUsec() -
                                            usage0[g].TotalCpuUsec());
    const double share = used / machine;
    const std::string config = "smp-shares,cpus=" + std::to_string(cpus) + ",guest=" +
                               std::to_string(g) + ",configured=" +
                               xp::FormatDouble(shares[g], 2);
    report.Add("measured_cpu_share", 100 * share, "percent", config);
    report.Add("share_error", 100 * (share - shares[g]), "points", config);
    table.AddRow({"shares cpus=" + std::to_string(cpus) + " guest" + std::to_string(g),
                  xp::FormatDouble(100 * shares[g], 0) + "% of machine",
                  xp::FormatDouble(100 * share, 1) + "%", "-", "-"});
  }
}

}  // namespace

int main(int argc, char** argv) {
  telemetry::BenchReport report("smp", argc, argv);

  std::vector<int> cpu_counts = {1, 2, 4, 8};
  sim::Duration measure = sim::Sec(3);
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strncmp(arg, "--cpus=", 7) == 0) {
      cpu_counts.clear();
      std::string list = arg + 7;
      std::size_t pos = 0;
      while (pos < list.size()) {
        std::size_t comma = list.find(',', pos);
        if (comma == std::string::npos) {
          comma = list.size();
        }
        const int n = std::atoi(list.substr(pos, comma - pos).c_str());
        if (n < 1) {
          std::fprintf(stderr, "bad --cpus list: %s\n", arg);
          return 2;
        }
        cpu_counts.push_back(n);
        pos = comma + 1;
      }
    } else if (std::strncmp(arg, "--seconds=", 10) == 0) {
      const int s = std::atoi(arg + 10);
      if (s < 1) {
        std::fprintf(stderr, "bad --seconds: %s\n", arg);
        return 2;
      }
      measure = sim::Sec(s);
    } else if (std::strncmp(arg, "--metrics-out", 13) != 0) {
      std::fprintf(stderr,
                   "usage: bench_smp [--cpus=1,2,4,8] [--seconds=N] "
                   "[--metrics-out[=file]]\n");
      return 2;
    }
  }

  std::printf("=== SMP scaling: per-CPU run queues + flow-hash interrupt steering ===\n\n");

  xp::Table table({"configuration", "load", "req/s or share", "CPUs busy", "speedup"});
  double event_base = 0;
  double pool_base = 0;

  for (int cpus : cpu_counts) {
    const ScaleResult ev = RunEventDriven(cpus, measure);
    if (cpus == cpu_counts.front()) {
      event_base = ev.throughput / cpus;  // per-CPU baseline
    }
    const double speedup = event_base > 0 ? ev.throughput / event_base : 0;
    std::string config = "event-driven,instances=" + std::to_string(cpus) +
                         ",clients=" + std::to_string(kClientsPerCpu) +
                         "/instance,cpus=" + std::to_string(cpus);
    report.Add("throughput", ev.throughput, "req/s", config);
    report.Add("cpu_busy", ev.busy_cpus, "cpus", config);
    report.Add("speedup", speedup, "x", config);
    table.AddRow({"event-driven cpus=" + std::to_string(cpus),
                  std::to_string(cpus) + "x" + std::to_string(kClientsPerCpu) + " clients",
                  xp::FormatDouble(ev.throughput, 0), xp::FormatDouble(ev.busy_cpus, 2),
                  xp::FormatDouble(speedup, 2) + "x"});

    const ScaleResult tp = RunThreadPool(cpus, measure);
    if (cpus == cpu_counts.front()) {
      pool_base = tp.throughput / cpus;
    }
    const double tp_speedup = pool_base > 0 ? tp.throughput / pool_base : 0;
    config = "thread-pool,workers=16,clients=" +
             std::to_string(kClientsPerCpu * cpus) + ",cpus=" + std::to_string(cpus);
    report.Add("throughput", tp.throughput, "req/s", config);
    report.Add("cpu_busy", tp.busy_cpus, "cpus", config);
    report.Add("speedup", tp_speedup, "x", config);
    report.Add("steals", static_cast<double>(tp.steals), "count", config);
    table.AddRow({"thread-pool cpus=" + std::to_string(cpus),
                  std::to_string(kClientsPerCpu * cpus) + " clients",
                  xp::FormatDouble(tp.throughput, 0), xp::FormatDouble(tp.busy_cpus, 2),
                  xp::FormatDouble(tp_speedup, 2) + "x"});
  }

  // Machine-wide fixed shares on the largest multi-CPU point (4 preferred).
  int share_cpus = 0;
  for (int cpus : cpu_counts) {
    if (cpus > 1 && (share_cpus == 0 || cpus == 4)) {
      share_cpus = cpus;
    }
  }
  if (share_cpus > 0) {
    RunShares(report, table, share_cpus, measure);
  }

  table.Print(std::cout);
  std::printf(
      "\nevent-driven: one single-threaded instance per CPU; speedup is vs the\n"
      "per-CPU baseline of the first point. shares: 50/30/20 of the whole\n"
      "machine (Section 5.8 semantics, machine-wide on SMP).\n");
  if (!report.Flush()) {
    std::fprintf(stderr, "failed to write %s\n", report.path().c_str());
    return 1;
  }
  return 0;
}
