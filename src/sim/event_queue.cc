#include "src/sim/event_queue.h"

#include <bit>
#include <utility>

#include "src/common/check.h"

namespace sim {

void EventHandle::Cancel() {
  if (queue_ != nullptr) {
    queue_->CancelSlot(slot_, gen_);
  }
}

bool EventHandle::pending() const {
  return queue_ != nullptr && queue_->SlotPending(slot_, gen_);
}

EventQueue::EventQueue(Backend backend) : backend_(backend) {}

// --- slab ------------------------------------------------------------------

std::uint32_t EventQueue::AllocEvent(SimTime when, std::function<void()> fn) {
  std::uint32_t idx;
  if (free_head_ != kNil) {
    idx = free_head_;
    free_head_ = events_[idx].next;
  } else {
    idx = static_cast<std::uint32_t>(events_.size());
    events_.emplace_back();
  }
  Event& e = events_[idx];
  e.when = when;
  e.seq = next_seq_++;
  e.canceled = false;
  e.next = kNil;
  e.fn = std::move(fn);
  return idx;
}

void EventQueue::FreeEvent(std::uint32_t idx) {
  Event& e = events_[idx];
  ++e.gen;  // invalidate outstanding handles
  e.canceled = false;
  e.fn = nullptr;
  e.next = free_head_;
  free_head_ = idx;
}

// --- handle support --------------------------------------------------------

void EventQueue::CancelSlot(std::uint32_t idx, std::uint32_t gen) {
  if (idx >= events_.size()) {
    return;
  }
  Event& e = events_[idx];
  if (e.gen != gen || e.canceled) {
    return;
  }
  e.canceled = true;
  e.fn = nullptr;  // release captured state now, not at reap time
  RC_CHECK_GT(live_, 0u);
  --live_;
  ++canceled_;
  // The canceled event may have been the cached next; recompute lazily.
  if (next_valid_ && e.when <= next_time_) {
    next_valid_ = false;
  }
}

bool EventQueue::SlotPending(std::uint32_t idx, std::uint32_t gen) const {
  if (idx >= events_.size()) {
    return false;
  }
  const Event& e = events_[idx];
  return e.gen == gen && !e.canceled;
}

// --- wheel primitives ------------------------------------------------------

void EventQueue::Append(List& list, std::uint32_t idx) {
  events_[idx].next = kNil;
  if (list.tail == kNil) {
    list.head = idx;
  } else {
    events_[list.tail].next = idx;
  }
  list.tail = idx;
}

void EventQueue::SetOccupied(int level, std::uint32_t slot) {
  occupied_[level][slot >> 6] |= std::uint64_t{1} << (slot & 63);
}

void EventQueue::ClearOccupied(int level, std::uint32_t slot) {
  occupied_[level][slot >> 6] &= ~(std::uint64_t{1} << (slot & 63));
}

int EventQueue::FirstOccupied(int level) const {
  for (std::uint32_t w = 0; w < kBitmapWords; ++w) {
    std::uint64_t word = occupied_[level][w];
    if (word != 0) {
      return static_cast<int>(w * 64 +
                              static_cast<std::uint32_t>(std::countr_zero(word)));
    }
  }
  return -1;
}

void EventQueue::WheelInsert(std::uint32_t idx) {
  const std::uint64_t when = static_cast<std::uint64_t>(events_[idx].when);
  const std::uint64_t cur = static_cast<std::uint64_t>(cur_);
  RC_CHECK_GE(events_[idx].when, cur_);
  int level;
  if ((when >> 8) == (cur >> 8)) {
    level = 0;
  } else if ((when >> 16) == (cur >> 16)) {
    level = 1;
  } else if ((when >> 24) == (cur >> 24)) {
    level = 2;
  } else if ((when >> 32) == (cur >> 32)) {
    level = 3;
  } else {
    Append(overflow_[events_[idx].when], idx);
    return;
  }
  const std::uint32_t slot =
      static_cast<std::uint32_t>(when >> (kSlotBits * level)) &
      (kSlotsPerLevel - 1);
  Append(wheel_[level][slot], idx);
  SetOccupied(level, slot);
}

void EventQueue::CascadeSlot(int level, std::uint32_t slot) {
  List list = wheel_[level][slot];
  wheel_[level][slot] = List{};
  ClearOccupied(level, slot);
  std::uint32_t idx = list.head;
  while (idx != kNil) {
    const std::uint32_t next = events_[idx].next;
    if (events_[idx].canceled) {
      FreeEvent(idx);
    } else {
      WheelInsert(idx);  // in list order, so same-slot FIFO is preserved
    }
    idx = next;
  }
}

void EventQueue::MigrateOverflowEpoch(std::uint64_t epoch) {
  while (!overflow_.empty()) {
    auto it = overflow_.begin();
    if ((static_cast<std::uint64_t>(it->first) >> 32) != epoch) {
      break;
    }
    std::uint32_t idx = it->second.head;
    while (idx != kNil) {
      const std::uint32_t next = events_[idx].next;
      if (events_[idx].canceled) {
        FreeEvent(idx);
      } else {
        WheelInsert(idx);
      }
      idx = next;
    }
    overflow_.erase(it);
  }
}

void EventQueue::AdvanceTo(SimTime t) {
  const std::uint64_t target = static_cast<std::uint64_t>(t);
  // Nothing lives in [cur_, t), so each boundary crossing can jump straight
  // to the window containing `t` and cascade just that window's source slot.
  if ((target >> 32) != (static_cast<std::uint64_t>(cur_) >> 32)) {
    cur_ = static_cast<SimTime>((target >> 32) << 32);
    MigrateOverflowEpoch(target >> 32);
  }
  if ((target >> 24) != (static_cast<std::uint64_t>(cur_) >> 24)) {
    cur_ = static_cast<SimTime>((target >> 24) << 24);
    CascadeSlot(3, static_cast<std::uint32_t>(target >> 24) &
                       (kSlotsPerLevel - 1));
  }
  if ((target >> 16) != (static_cast<std::uint64_t>(cur_) >> 16)) {
    cur_ = static_cast<SimTime>((target >> 16) << 16);
    CascadeSlot(2, static_cast<std::uint32_t>(target >> 16) &
                       (kSlotsPerLevel - 1));
  }
  if ((target >> 8) != (static_cast<std::uint64_t>(cur_) >> 8)) {
    cur_ = static_cast<SimTime>((target >> 8) << 8);
    CascadeSlot(1, static_cast<std::uint32_t>(target >> 8) &
                       (kSlotsPerLevel - 1));
  }
  cur_ = t;
}

void EventQueue::DropCanceled(List& list) {
  List kept;
  std::uint32_t idx = list.head;
  while (idx != kNil) {
    const std::uint32_t next = events_[idx].next;
    if (events_[idx].canceled) {
      FreeEvent(idx);
    } else {
      Append(kept, idx);
    }
    idx = next;
  }
  list = kept;
}

// --- core ------------------------------------------------------------------

bool EventQueue::RefreshNext() {
  if (next_valid_) {
    return true;
  }
  if (live_ == 0) {
    return false;
  }

  if (backend_ == Backend::kHeap) {
    while (!heap_.empty() && events_[heap_.top().slot].canceled) {
      FreeEvent(heap_.top().slot);
      heap_.pop();
    }
    RC_CHECK(!heap_.empty());
    next_time_ = heap_.top().when;
    next_valid_ = true;
    return true;
  }

  // Level 0: every occupied slot holds exactly one timestamp, and all
  // occupied slots are at or after the current index, so the first occupied
  // slot with a live event is the global earliest.
  for (int slot = FirstOccupied(0); slot >= 0; slot = FirstOccupied(0)) {
    List& list = wheel_[0][static_cast<std::uint32_t>(slot)];
    while (list.head != kNil && events_[list.head].canceled) {
      const std::uint32_t dead = list.head;
      list.head = events_[dead].next;
      if (list.head == kNil) {
        list.tail = kNil;
      }
      FreeEvent(dead);
    }
    if (list.head == kNil) {
      ClearOccupied(0, static_cast<std::uint32_t>(slot));
      continue;
    }
    next_time_ = events_[list.head].when;
    next_valid_ = true;
    return true;
  }

  // Levels 1..3: the first occupied slot bounds every later slot and every
  // higher level, but spans multiple timestamps — scan its list for the
  // earliest live event (first occurrence wins, preserving FIFO).
  for (int level = 1; level < kLevels; ++level) {
    for (int slot = FirstOccupied(level); slot >= 0;
         slot = FirstOccupied(level)) {
      List& list = wheel_[level][static_cast<std::uint32_t>(slot)];
      DropCanceled(list);
      if (list.empty()) {
        ClearOccupied(level, static_cast<std::uint32_t>(slot));
        continue;
      }
      SimTime best = events_[list.head].when;
      for (std::uint32_t idx = events_[list.head].next; idx != kNil;
           idx = events_[idx].next) {
        if (events_[idx].when < best) {
          best = events_[idx].when;
        }
      }
      next_time_ = best;
      next_valid_ = true;
      return true;
    }
  }

  while (!overflow_.empty()) {
    auto it = overflow_.begin();
    DropCanceled(it->second);
    if (it->second.empty()) {
      overflow_.erase(it);
      continue;
    }
    next_time_ = it->first;
    next_valid_ = true;
    return true;
  }

  RC_CHECK(false);  // live_ > 0 but no live event found
  return false;
}

RC_HOT_PATH EventHandle EventQueue::Schedule(SimTime when,
                                             std::function<void()> fn) {
  const std::uint32_t idx = AllocEvent(when, std::move(fn));
  if (backend_ == Backend::kHeap) {
    // rclint: allow(hotpath): reference heap backend only; the default wheel
    // backend routes through the intrusive slot lists below.
    heap_.push(HeapEntry{when, events_[idx].seq, idx});
  } else {
    WheelInsert(idx);
  }
  ++live_;
  if (next_valid_ && when < next_time_) {
    next_time_ = when;
  }
  return EventHandle(this, idx, events_[idx].gen);
}

SimTime EventQueue::NextTime() const {
  // Logically const: refreshing reclaims canceled slots and caches the scan.
  EventQueue* self = const_cast<EventQueue*>(this);
  RC_CHECK(self->RefreshNext());
  return next_time_;
}

RC_HOT_PATH SimTime EventQueue::RunNext() {
  RC_CHECK(RefreshNext());
  const SimTime when = next_time_;

  std::uint32_t idx;
  if (backend_ == Backend::kHeap) {
    idx = heap_.top().slot;  // live: RefreshNext purged canceled heads
    heap_.pop();
  } else {
    AdvanceTo(when);
    List& list = wheel_[0][static_cast<std::uint32_t>(
        static_cast<std::uint64_t>(when)) &
                           (kSlotsPerLevel - 1)];
    idx = list.head;  // live: RefreshNext pruned the canceled prefix
    RC_CHECK(idx != kNil);
    list.head = events_[idx].next;
    if (list.head == kNil) {
      list.tail = kNil;
      ClearOccupied(0, static_cast<std::uint32_t>(
                           static_cast<std::uint64_t>(when)) &
                           (kSlotsPerLevel - 1));
    }
  }

  RC_CHECK(!events_[idx].canceled);
  RC_CHECK_EQ(events_[idx].when, when);
  // Free the slot before invoking so a handle kept by the caller reports
  // !pending() during and after the callback, and the callback may reuse
  // the slot for new work.
  // rclint: allow(hotpath): move of the slab slot's stored callable — no new
  // std::function state is allocated.
  std::function<void()> fn = std::move(events_[idx].fn);
  FreeEvent(idx);
  RC_CHECK_GT(live_, 0u);
  --live_;
  ++dispatched_;
  next_valid_ = false;
  fn();
  return when;
}

void EventQueue::PurgeCanceled() {
  if (backend_ == Backend::kHeap) {
    std::vector<HeapEntry> kept;
    kept.reserve(live_);
    while (!heap_.empty()) {
      const HeapEntry e = heap_.top();
      heap_.pop();
      if (events_[e.slot].canceled) {
        FreeEvent(e.slot);
      } else {
        kept.push_back(e);
      }
    }
    for (const HeapEntry& e : kept) {
      heap_.push(e);
    }
    return;
  }
  for (int level = 0; level < kLevels; ++level) {
    for (std::uint32_t slot = 0; slot < kSlotsPerLevel; ++slot) {
      List& list = wheel_[level][slot];
      if (list.empty()) {
        continue;
      }
      DropCanceled(list);
      if (list.empty()) {
        ClearOccupied(level, slot);
      }
    }
  }
  for (auto it = overflow_.begin(); it != overflow_.end();) {
    DropCanceled(it->second);
    it = it->second.empty() ? overflow_.erase(it) : std::next(it);
  }
}

}  // namespace sim
