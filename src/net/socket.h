// Simulated sockets: listen sockets with CIDR filters and per-connection
// state. These objects are passive data structures; all transitions are
// driven by net::Stack, and the kernel observes them through StackEnv
// callbacks.
#ifndef SRC_NET_SOCKET_H_
#define SRC_NET_SOCKET_H_

#include <cstdint>
#include <deque>
#include <memory>

#include "src/net/addr.h"
#include "src/net/packet.h"
#include "src/rc/container.h"
#include "src/sim/time.h"

namespace net {

class Connection;
using ConnRef = std::shared_ptr<Connection>;

class ListenSocket;
using ListenRef = std::shared_ptr<ListenSocket>;

enum class ConnState {
  kSynRcvd,      // half-open, in the listen socket's SYN queue
  kEstablished,  // handshake complete (queued for accept or accepted)
  kClosed,       // torn down locally
};

// Server-side connection state (a protocol control block plus the socket
// receive queue, collapsed into one object).
class Connection {
 public:
  Connection(std::uint64_t flow_id, Endpoint client, std::uint16_t server_port,
             rc::ContainerRef container, std::uint64_t owner_tag)
      : flow_id_(flow_id),
        client_(client),
        server_port_(server_port),
        container_(std::move(container)),
        owner_tag_(owner_tag) {}

  std::uint64_t flow_id() const { return flow_id_; }
  Endpoint client() const { return client_; }
  std::uint16_t server_port() const { return server_port_; }

  ConnState state() const { return state_; }
  void set_state(ConnState s) { state_ = s; }

  // The resource container charged for this connection's kernel processing.
  // Inherited from the listen socket at creation; rebindable by the
  // application ("Binding a socket to a container", Section 4.6).
  const rc::ContainerRef& container() const { return container_; }
  void set_container(rc::ContainerRef c) { container_ = std::move(c); }

  // Owning protection domain (used to route deferred protocol processing to
  // that process's kernel network thread).
  std::uint64_t owner_tag() const { return owner_tag_; }

  bool peer_closed() const { return peer_closed_; }
  void set_peer_closed() { peer_closed_ = true; }

  bool has_data() const { return !recv_queue_.empty(); }
  std::deque<HttpRequestInfo>& recv_queue() { return recv_queue_; }

  // True once the application closed / the stack tore this connection down.
  bool torn_down() const { return torn_down_; }
  void set_torn_down() { torn_down_ = true; }

  std::uint64_t requests_received = 0;
  std::uint64_t responses_sent = 0;

 private:
  const std::uint64_t flow_id_;
  const Endpoint client_;
  const std::uint16_t server_port_;
  rc::ContainerRef container_;
  const std::uint64_t owner_tag_;

  ConnState state_ = ConnState::kSynRcvd;
  bool peer_closed_ = false;
  bool torn_down_ = false;
  std::deque<HttpRequestInfo> recv_queue_;
};

// A listening socket bound to <port, CIDR filter> (the paper's extended
// sockaddr namespace). Multiple listen sockets may share a port with
// different filters; demux picks the most specific match.
class ListenSocket {
 public:
  ListenSocket(std::uint16_t port, CidrFilter filter, rc::ContainerRef container,
               std::uint64_t owner_tag, int syn_backlog, int accept_backlog)
      : port_(port),
        filter_(filter),
        container_(std::move(container)),
        owner_tag_(owner_tag),
        syn_backlog_(syn_backlog),
        accept_backlog_(accept_backlog) {}

  std::uint16_t port() const { return port_; }
  const CidrFilter& filter() const { return filter_; }

  const rc::ContainerRef& container() const { return container_; }
  void set_container(rc::ContainerRef c) { container_ = std::move(c); }

  std::uint64_t owner_tag() const { return owner_tag_; }

  int syn_backlog() const { return syn_backlog_; }
  int accept_backlog() const { return accept_backlog_; }

  bool closed() const { return closed_; }
  void set_closed() { closed_ = true; }

  // Half-open connections, oldest first (drop-oldest eviction under SYN
  // pressure, so a flood cannot permanently wedge the queue).
  std::deque<ConnRef>& syn_queue() { return syn_queue_; }

  // Fully established connections awaiting accept().
  std::deque<ConnRef>& accept_queue() { return accept_queue_; }

  // --- Statistics (Section 5.7 drop notification feeds off these) -------
  std::uint64_t syns_received = 0;
  std::uint64_t syns_dropped = 0;     // evicted half-open entries
  std::uint64_t accept_drops = 0;     // accept-queue overflow resets
  std::uint64_t connections_accepted = 0;

 private:
  const std::uint16_t port_;
  const CidrFilter filter_;
  rc::ContainerRef container_;
  const std::uint64_t owner_tag_;
  const int syn_backlog_;
  const int accept_backlog_;
  bool closed_ = false;

  std::deque<ConnRef> syn_queue_;
  std::deque<ConnRef> accept_queue_;
};

}  // namespace net

#endif  // SRC_NET_SOCKET_H_
