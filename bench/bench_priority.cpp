// Figure 11 — response time of one high-priority client (Thigh) as an
// increasing number of low-priority clients saturates the server.
//
// Three systems, as in the paper:
//   "without containers"            unmodified kernel; the application tries
//                                   to prefer the high-priority client by
//                                   handling its select() events first
//   "with containers / select()"    RC kernel, per-class listen containers +
//                                   per-connection containers; select()
//   "with containers / event API"   same, with the scalable event API
//
// Paper shape: the first curve rises sharply once the server saturates
// (most request processing is kernel-mode and uncontrolled); the second
// rises mildly (residual select() overhead, linear in #descriptors); the
// third stays nearly flat (residual = packet-arrival interrupts).
#include <iostream>

#include "src/telemetry/bench_io.h"
#include "src/xp/scenario.h"
#include "src/xp/table.h"

namespace {

constexpr int kHighClass = 1;
constexpr int kLowClass = 0;

double MeasureThigh(const kernel::KernelConfig& kcfg, bool use_containers,
                    bool use_event_api, int low_clients) {
  xp::ScenarioOptions options;
  options.kernel_config = kcfg;

  httpd::ServerConfig& server = options.server_config;
  server.use_containers = use_containers;
  server.use_event_api = use_event_api;
  server.classes.clear();
  // Most-specific filter wins: the high-priority client population is
  // 10.1.0.0/16; everything else lands on the default socket.
  server.classes.push_back(
      httpd::ListenClass{net::CidrFilter{net::MakeAddr(10, 1, 0, 0), 16}, 48, "high"});
  server.classes.push_back(httpd::ListenClass{net::kMatchAll, 8, "low"});

  xp::Scenario scenario(options);
  scenario.StartServer();

  load::HttpClient::Config high;
  high.addr = net::MakeAddr(10, 1, 0, 1);
  high.client_class = kHighClass;
  load::HttpClient* high_client = scenario.AddClient(high);

  scenario.AddStaticClients(low_clients, net::MakeAddr(10, 2, 0, 0), kLowClass);

  for (auto& c : scenario.clients()) {
    c->Start();
  }
  scenario.RunFor(sim::Sec(2));
  scenario.ResetClientStats();
  scenario.RunFor(sim::Sec(5));
  return high_client->latencies().mean();  // ms
}

}  // namespace

int main(int argc, char** argv) {
  telemetry::BenchReport report("priority", argc, argv);

  std::printf(
      "=== Figure 11: Thigh (ms) vs number of concurrent low-priority clients ===\n\n");

  xp::Table table({"low clients", "no containers", "containers+select", "containers+event API"});
  for (int n : {0, 5, 10, 15, 20, 25, 30, 35}) {
    const double plain = MeasureThigh(kernel::UnmodifiedSystemConfig(), false, false, n);
    const double rc_select =
        MeasureThigh(kernel::ResourceContainerSystemConfig(), true, false, n);
    const double rc_event =
        MeasureThigh(kernel::ResourceContainerSystemConfig(), true, true, n);
    const std::string config = "low_clients=" + std::to_string(n);
    report.Add("thigh_no_containers", plain, "ms", config);
    report.Add("thigh_containers_select", rc_select, "ms", config);
    report.Add("thigh_containers_event_api", rc_event, "ms", config);
    table.AddRow({std::to_string(n), xp::FormatDouble(plain, 2),
                  xp::FormatDouble(rc_select, 2), xp::FormatDouble(rc_event, 2)});
    std::fflush(stdout);
  }
  table.Print(std::cout);
  std::printf(
      "\npaper: 'no containers' rises sharply at saturation (~8-9 ms at 35);\n"
      "       'containers+select' rises mildly (select is O(#descriptors));\n"
      "       'containers+event API' increases only very slightly.\n");
  if (!report.Flush()) {
    std::fprintf(stderr, "failed to write %s\n", report.path().c_str());
    return 1;
  }
  return 0;
}
