file(REMOVE_RECURSE
  "CMakeFiles/httpd_load_test.dir/httpd_load_test.cc.o"
  "CMakeFiles/httpd_load_test.dir/httpd_load_test.cc.o.d"
  "httpd_load_test"
  "httpd_load_test.pdb"
  "httpd_load_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/httpd_load_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
