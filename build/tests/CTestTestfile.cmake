# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/common_test[1]_include.cmake")
include("/root/repo/build/tests/sim_test[1]_include.cmake")
include("/root/repo/build/tests/rc_container_test[1]_include.cmake")
include("/root/repo/build/tests/rc_binding_test[1]_include.cmake")
include("/root/repo/build/tests/net_test[1]_include.cmake")
include("/root/repo/build/tests/kernel_engine_test[1]_include.cmake")
include("/root/repo/build/tests/kernel_syscalls_test[1]_include.cmake")
include("/root/repo/build/tests/httpd_load_test[1]_include.cmake")
include("/root/repo/build/tests/property_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
include("/root/repo/build/tests/kernel_fd_event_test[1]_include.cmake")
include("/root/repo/build/tests/disk_test[1]_include.cmake")
include("/root/repo/build/tests/trace_test[1]_include.cmake")
include("/root/repo/build/tests/class_limit_test[1]_include.cmake")
include("/root/repo/build/tests/scheduler_unit_test[1]_include.cmake")
include("/root/repo/build/tests/mode_matrix_test[1]_include.cmake")
