// The single-process event-driven Web server (Figure 2; derived-from-thttpd
// model the paper evaluates). One thread multiplexes every connection, using
// either select() or the scalable event API, and — on the RC kernel — one
// resource container per connection with dynamic thread rebinding
// (Figure 10).
#ifndef SRC_HTTPD_EVENT_SERVER_H_
#define SRC_HTTPD_EVENT_SERVER_H_

#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "src/httpd/file_cache.h"
#include "src/httpd/server.h"
#include "src/httpd/server_config.h"
#include "src/kernel/kernel.h"
#include "src/kernel/syscalls.h"

namespace telemetry {
class Registry;
}

namespace httpd {

class EventDrivenServer : public Server {
 public:
  EventDrivenServer(kernel::Kernel* kernel, FileCache* cache, ServerConfig config);

  // Creates the server process (optionally with a caller-provided default
  // container, e.g. a fixed-share guest container) and starts the server.
  void Start(rc::ContainerRef default_container = nullptr) override;

  kernel::Process* process() const { return proc_; }
  const ServerStats& stats() const override { return stats_; }
  std::uint64_t cgi_responses_completed() const { return cgi_completed_; }

  // Installs the httpd.* probes (server counters + file cache) on `registry`.
  void RegisterMetrics(telemetry::Registry& registry) override;

 private:
  struct ConnCtx {
    int container_fd = -1;  // per-connection container (RC mode)
    int priority = rc::kDefaultPriority;
  };

  kernel::Program Run(kernel::Sys sys);

  kernel::Kernel* const kernel_;
  FileCache* const cache_;
  const ServerConfig config_;
  kernel::Process* proc_ = nullptr;

  struct ListenInfo {
    int priority = rc::kDefaultPriority;
    int class_ct_fd = -1;  // parent for per-connection containers, if any
    // Pre-validated per-class recipe for "conn" containers (attributes
    // checked once per listen class, reused per connection). Null when
    // containers are off — fall back to the generic create path.
    rc::ContainerTemplateRef conn_template;
  };

  std::unordered_map<int, ConnCtx> conns_;
  std::unordered_map<int, ListenInfo> listen_info_;  // by listen fd
  std::unordered_set<std::uint32_t> filtered_prefixes_;
  std::unordered_map<std::uint32_t, std::uint64_t> drop_counts_;  // per /24 prefix
  int default_ct_fd_ = -1;
  int cgi_parent_fd_ = -1;
  rc::ContainerTemplateRef cgi_req_template_;  // "cgi-req" under the sandbox

  ServerStats stats_;
  std::uint64_t cgi_completed_ = 0;
};

}  // namespace httpd

#endif  // SRC_HTTPD_EVENT_SERVER_H_
