// The resource-generic proportional-share core (Sections 4.3, 4.5, 5.1),
// extracted from the CPU scheduler so every schedulable resource — CPU time,
// disk bandwidth, transmit-link bandwidth — arbitrates with the same
// machinery, keyed by the container hierarchy.
//
// At each tree level the share tree arbitrates with *stride scheduling*
// between
//
//   * each fixed-share child (weight = its guaranteed fraction), and
//   * the set of time-share children, treated as ONE aggregate client whose
//     weight is the residual fraction left by the fixed shares.
//
// Every charge advances the charged client's "pass" by usec/weight; the
// client with the minimum pass runs next. Clients (re)entering the runnable
// set are clamped to the level's virtual time, so they get no credit for
// idle periods. Within the time-share group, siblings are picked by decayed
// usage scaled by numeric priority.
//
// The tree is parameterized over "what a charge is" via ShareTreeOptions:
// the resource kind selects which of the container's attributes govern it
// (rc::SchedFor / rc::LimitFor), and `starve_priority_zero` selects the
// priority-0 semantics:
//
//   * true (CPU): priority 0 is the starvation class (Section 4.8) —
//     selected only when nothing positive-priority is runnable anywhere.
//   * false (disk, link): priority 0 is simply the weakest weight
//     (weight 1), so low-priority I/O makes proportional progress instead
//     of starving behind a saturating high-priority stream.
//
// Windowed limits ("resource sand-box", Section 5.6): a container whose
// windowed subtree usage exceeds its per-resource limit is throttled until
// the window ends.
//
// Hot-path layout: nodes live in one contiguous array indexed by NodeIndex;
// containers carry a per-tree slot registry so lookup is a short scan, not a
// hash probe; per-node item queues are intrusive lists threaded through a
// shared arena. Charges are *batched*: OnCharge only appends to an
// arrival-order log, and the ancestor walks (stride passes, decayed usage,
// limit windows) run at the next Flush(), which every read or structural
// operation performs first. The replay applies the log entry by entry in
// arrival order — the exact operation sequence of unbatched charging, so the
// tree observed by any scheduling decision is bit-identical to the eager
// one — while amortizing the per-level residual-weight computation across
// the whole batch.
//
// Queued items are opaque (void*): the CPU adapter queues Thread*, the disk
// engine queues IoRequest*, the link scheduler queues pending packets. Items
// queue FIFO per container; Push returns the node's index — the cookie Erase
// needs.
#ifndef SRC_SCHED_SHARE_TREE_H_
#define SRC_SCHED_SHARE_TREE_H_

#include <cstdint>
#include <functional>
#include <optional>
#include <vector>

#include "src/common/thread_annotations.h"
#include "src/rc/lifecycle.h"
#include "src/rc/manager.h"
#include "src/rc/usage.h"
#include "src/sim/time.h"

namespace sched {

struct ShareTreeOptions {
  // Which container attributes govern arbitration (rc::SchedFor/LimitFor).
  rc::ResourceKind resource = rc::ResourceKind::kCpu;
  // Multiplier applied to decayed usage on every Tick().
  double decay_per_tick = 1.0;
  // Length of the windowed-limit budget window.
  sim::Duration limit_window = 0;
  // Budget multiplier for limits: a window of length W holds capacity * W of
  // the resource (CPU: the CPU count; single-server devices: 1).
  int capacity = 1;
  // Priority-0 semantics (see file comment).
  bool starve_priority_zero = true;

  // Space-shared occupancy mode (memory). A space-shared tree arbitrates
  // *held bytes* instead of consumed time: there is no stride state, no
  // queue, no decay — the tree is pure policy math over the container
  // hierarchy's live subtree_memory_bytes(). Only CheckSpaceCharge /
  // EntitlementBytes / GuaranteeBytes are meaningful; Push/Pop/OnCharge must
  // not be called on a space-shared tree.
  bool space_shared = false;
  // Machine capacity in bytes (space-shared mode). 0 = unknown: hierarchical
  // byte limits still apply but entitlements and guarantees are all zero.
  std::int64_t capacity_bytes = 0;
};

class ShareTree : public rc::LifecycleListener {
 public:
  // Index of a container's node in the flat node array. Stable for the
  // node's lifetime (slots are freelisted, not compacted).
  using NodeIndex = std::int32_t;
  static constexpr NodeIndex kInvalidNode = -1;

  ShareTree(rc::ContainerManager* manager, const ShareTreeOptions& options);

  ShareTree(const ShareTree&) = delete;
  ShareTree& operator=(const ShareTree&) = delete;

  // Queues `item` under `leaf` (FIFO within the container). Returns the index
  // of the node holding it — the cookie a later Erase needs.
  NodeIndex Push(rc::ResourceContainer* leaf, void* item);

  // Removes and returns the next item under the share policy; nullptr when
  // nothing is eligible (empty, or everything throttled / starvation-class).
  void* Pop(sim::SimTime now);

  // Removes `item` from `node`'s queue (it must be queued there).
  void Erase(NodeIndex node, void* item);

  // `usec` of the resource was consumed on behalf of `c`. Appends to the
  // charge log only: the ancestor walk (decayed usage, stride passes, limit
  // windows) is deferred to the next Flush(). O(1).
  void OnCharge(rc::ResourceContainer& c, sim::Duration usec, sim::SimTime now);

  // Applies every accumulated charge to the tree. Called automatically
  // before any operation that reads or restructures tree state; callers only
  // need it explicitly around external reads of container attributes that
  // charges depend on (weights, limits).
  void Flush();

  // Periodic decay of per-node usage.
  void Tick();

  // Earliest time a throttled container with queued items becomes eligible
  // again; nullopt when nothing relevant is throttled.
  std::optional<sim::SimTime> NextEligibleTime(sim::SimTime now) const;

  // Hierarchy lifecycle: the tree registers itself with the manager at
  // construction (rc::LifecycleListener) and drops per-container node state
  // the moment a container dies or moves. Any work still queued under a
  // dying container is discarded (teardown paths).
  void OnContainerDestroyed(rc::ResourceContainer& c) override;
  void OnContainerReparented(rc::ResourceContainer& child,
                             rc::ResourceContainer* old_parent,
                             rc::ResourceContainer* new_parent) override;

  // Unregisters from the manager early (kernel teardown: process/thread
  // containers die in bulk and their scheduler state no longer matters).
  void DetachLifecycle();

  // Total items queued anywhere in the tree.
  int queued_total() const {
    serial_.AssertHeld();
    return total_queued_;
  }

  // Removes and returns every queued item, ignoring policy (owner teardown).
  std::vector<void*> DrainAll();

  // Introspection / test hooks.
  double DecayedUsage(const rc::ResourceContainer& c) const;
  bool IsThrottled(const rc::ResourceContainer& c, sim::SimTime now) const;

  // --- Space-shared (occupancy) mode ----------------------------------
  // Valid only when options_.space_shared.

  // Would charging `bytes` to `c` violate any ancestor's byte or fraction
  // limit? (Capacity pressure is the broker's job, not the tree's.)
  rccommon::Expected<void> CheckSpaceCharge(const rc::ResourceContainer& c,
                                            std::int64_t bytes) const;

  // The bytes `c`'s subtree is *entitled* to hold right now: capacity split
  // down the root→c path — a fixed-share link takes share × parent
  // entitlement; a time-share link splits the parent's residual among the
  // currently-occupying time-share siblings by priority weight. Entitlement
  // is demand-dependent (idle siblings cede their split), which is what makes
  // "over-entitled" a meaningful reclaim-victim test.
  std::int64_t EntitlementBytes(const rc::ResourceContainer& c) const;

  // The bytes `c` is *guaranteed* independent of demand: the product of
  // fixed memory shares along the whole root→c path × capacity; 0 if any
  // link is time-share (time-share holdings are not protected).
  std::int64_t GuaranteeBytes(const rc::ResourceContainer& c) const;

  // Batch entitlement walk over the root's *occupying* children (subtree
  // bytes > 0 — exactly the possible reclaim victims). The residual and the
  // occupying time-share weight denominator are computed once and shared, so
  // the whole sweep is O(children) where per-child EntitlementBytes calls
  // would make it O(children²) — the difference between a bounded reclaim
  // pass and one that melts under thousands of per-connection containers.
  // Agrees with EntitlementBytes for every emitted child.
  void ForEachOccupyingTopLevel(
      const std::function<void(rc::ResourceContainer& child, std::int64_t held,
                               std::int64_t entitlement)>& fn) const;

  std::int64_t capacity_bytes() const { return options_.capacity_bytes; }

 private:
  struct Node {
    rc::ResourceContainer* container = nullptr;  // nullptr == free slot

    double decayed = 0.0;  // decayed subtree charge (time-share pick, stats)

    // Stride state. For a fixed-share container: its own pass. As a parent:
    // the aggregate pass and virtual time of its time-share children.
    double pass = 0.0;
    double tshare_pass = 0.0;
    double vtime = 0.0;
    int tshare_runnable_children = 0;

    // Windowed-limit state (see rc::UsageWindow).
    rc::UsageWindow window;

    // Items queued at this node (leaves only, normally): intrusive FIFO
    // through the shared queue-slot arena.
    std::int32_t q_head = -1;
    std::int32_t q_tail = -1;
    // Queued items at or below this node.
    int runnable = 0;

    // Residual-weight cache, valid only within one Flush() (weights cannot
    // change mid-flush, so the cached value is exact).
    double residual = 0.0;
    bool residual_valid = false;
  };

  struct QueueSlot {
    void* item = nullptr;
    std::int32_t next = -1;
  };

  // One charge, in arrival order. Stride passes and limit windows are
  // order-sensitive (floating-point rounding and window boundaries), so
  // Flush replays the log in exactly this order.
  struct LogEntry {
    NodeIndex node;
    sim::Duration usec;
    sim::SimTime now;
  };

  // Node lookup via the container's per-tree slot registry. Find does not
  // allocate; Ensure does.
  NodeIndex FindNode(const rc::ResourceContainer& c) const;
  NodeIndex EnsureNode(rc::ResourceContainer& c);

  bool Throttled(const Node& n, sim::SimTime now) const {
    return n.window.Throttled(now);
  }

  // Residual weight left for the time-share group under `parent`.
  double ResidualWeight(const rc::ResourceContainer& parent) const;
  // Flush-scoped memoization of ResidualWeight (exact: weights are constant
  // within a flush).
  double CachedResidualWeight(NodeIndex parent_index,
                              const rc::ResourceContainer& parent);

  // Arbitration at `parent`: the eligible child with minimal pass (stride),
  // descending into the time-share group by decayed/priority. `allow_zero`
  // admits priority-0 time-share children.
  NodeIndex PickChild(NodeIndex parent, sim::SimTime now, bool allow_zero);

  // One full descent; nullptr if nothing eligible under this policy pass.
  void* Descend(sim::SimTime now, bool allow_zero);

  void AdjustRunnable(rc::ResourceContainer* leaf, int delta);

  rc::ContainerManager* const manager_;
  const ShareTreeOptions options_;

  // The tree is confined to its owner's serialized event-loop context; every
  // mutating entry point asserts the domain, and clang's -Wthread-safety
  // rejects new code that reaches the guarded state without doing the same.
  rccommon::Serial serial_;

  std::vector<Node> nodes_;
  std::vector<NodeIndex> free_nodes_ RC_GUARDED_BY(serial_);

  std::vector<QueueSlot> qslots_ RC_GUARDED_BY(serial_);
  std::int32_t qfree_ RC_GUARDED_BY(serial_) = -1;

  std::vector<LogEntry> log_ RC_GUARDED_BY(serial_);
  // Scratch, reset after each Flush.
  std::vector<NodeIndex> residual_cached_ RC_GUARDED_BY(serial_);

  int total_queued_ RC_GUARDED_BY(serial_) = 0;
};

}  // namespace sched

#endif  // SRC_SCHED_SHARE_TREE_H_
