// Unit tests for the descriptor table and the event channel.
#include <gtest/gtest.h>

#include "src/kernel/event_api.h"
#include "src/kernel/fd_table.h"
#include "src/rc/manager.h"

namespace kernel {
namespace {

TEST(FdTableTest, InstallUsesLowestFreeDescriptor) {
  rc::ContainerManager m;
  FdTable t;
  auto a = m.Create(nullptr, "a").value();
  auto b = m.Create(nullptr, "b").value();
  auto c = m.Create(nullptr, "c").value();
  EXPECT_EQ(t.Install(a), 0);
  EXPECT_EQ(t.Install(b), 1);
  ASSERT_TRUE(t.Remove(0).ok());
  EXPECT_EQ(t.Install(c), 0);  // reuses the hole
  EXPECT_EQ(t.open_count(), 2);
}

TEST(FdTableTest, TypedGet) {
  rc::ContainerManager m;
  FdTable t;
  auto c = m.Create(nullptr, "c").value();
  const int fd = t.Install(c);
  EXPECT_EQ(t.Get<rc::ContainerRef>(fd), c);
  EXPECT_EQ(t.Get<net::ConnRef>(fd), nullptr);  // wrong type
  EXPECT_EQ(t.Get<rc::ContainerRef>(99), nullptr);
  EXPECT_EQ(t.Get<rc::ContainerRef>(-1), nullptr);
}

TEST(FdTableTest, RemoveReturnsEntryAndInvalidates) {
  rc::ContainerManager m;
  FdTable t;
  auto c = m.Create(nullptr, "c").value();
  const int fd = t.Install(c);
  auto removed = t.Remove(fd);
  ASSERT_TRUE(removed.ok());
  EXPECT_FALSE(t.IsValid(fd));
  EXPECT_FALSE(t.Remove(fd).ok());
}

TEST(FdTableTest, HoldsReference) {
  rc::ContainerManager m;
  FdTable t;
  rc::ContainerId id;
  {
    auto c = m.Create(nullptr, "c").value();
    id = c->id();
    t.Install(c);
  }
  EXPECT_TRUE(m.Lookup(id).ok());  // fd table keeps it alive
  t.Remove(0).value();
  EXPECT_FALSE(m.Lookup(id).ok());
}

TEST(EventChannelTest, RegisterAndLookup) {
  EventChannel ch;
  int object = 0;
  ch.Register(&object, 5);
  EXPECT_EQ(ch.FdFor(&object), std::optional<int>(5));
  ch.Unregister(&object);
  EXPECT_FALSE(ch.FdFor(&object).has_value());
}

TEST(EventChannelTest, FifoWithoutPriorityOrder) {
  EventChannel ch;
  ch.Push(Event{1, Event::Kind::kDataReady, 50}, /*priority_order=*/false);
  ch.Push(Event{2, Event::Kind::kDataReady, 10}, false);
  auto events = ch.Drain(10);
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].fd, 1);
  EXPECT_EQ(events[1].fd, 2);
}

TEST(EventChannelTest, PriorityInsertionJumpsQueue) {
  EventChannel ch;
  ch.Push(Event{1, Event::Kind::kDataReady, 10}, true);
  ch.Push(Event{2, Event::Kind::kDataReady, 40}, true);
  ch.Push(Event{3, Event::Kind::kDataReady, 10}, true);
  auto events = ch.Drain(10);
  ASSERT_EQ(events.size(), 3u);
  EXPECT_EQ(events[0].fd, 2);
  EXPECT_EQ(events[1].fd, 1);
  EXPECT_EQ(events[2].fd, 3);
}

TEST(EventChannelTest, DedupeSuppressesDuplicates) {
  EventChannel ch;
  ch.Push(Event{7, Event::Kind::kSynDrop, 0}, false, /*dedupe=*/true);
  ch.Push(Event{7, Event::Kind::kSynDrop, 0}, false, true);
  ch.Push(Event{7, Event::Kind::kDataReady, 0}, false, true);  // different kind
  EXPECT_EQ(ch.pending_count(), 2u);
}

TEST(EventChannelTest, DrainRespectsMax) {
  EventChannel ch;
  for (int i = 0; i < 10; ++i) {
    ch.Push(Event{i, Event::Kind::kDataReady, 0}, false);
  }
  EXPECT_EQ(ch.Drain(3).size(), 3u);
  EXPECT_EQ(ch.pending_count(), 7u);
}

TEST(EventChannelTest, WaiterFiredOncePerArm) {
  EventChannel ch;
  int fired = 0;
  ch.waiter = [&] { ++fired; };
  ch.Push(Event{1, Event::Kind::kDataReady, 0}, false);
  ch.Push(Event{2, Event::Kind::kDataReady, 0}, false);  // waiter already consumed
  EXPECT_EQ(fired, 1);
}

}  // namespace
}  // namespace kernel
