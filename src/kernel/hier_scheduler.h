// The resource-container hierarchical scheduler (Sections 4.3, 4.5, 5.1).
//
// The container tree is the scheduling structure. At each tree level the
// scheduler arbitrates with *stride scheduling* between
//
//   * each fixed-share child (weight = its guaranteed fraction), and
//   * the set of time-share children, treated as ONE aggregate client whose
//     weight is the residual fraction left by the fixed shares.
//
// Every CPU charge advances the charged client's "pass" by usec/weight; the
// client with the minimum pass runs next. Clients (re)entering the runnable
// set are clamped to the level's virtual time, so they get no credit for
// idle periods. Aggregating the time-share children is essential for a busy
// server: per-connection containers are created and destroyed thousands of
// times per second, and per-container usage alone would make every fresh
// container look cheapest, starving fixed-share siblings (the CGI sand-box)
// of their guarantee.
//
// Within the time-share group, siblings are picked by decayed usage scaled
// by numeric priority. Priority 0 is the starvation class (Section 4.8):
// selected only when nothing positive-priority is runnable anywhere.
//
// CPU limits ("resource sand-box", Section 5.6): a container whose windowed
// subtree usage exceeds attributes().cpu_limit is throttled until the window
// ends.
#ifndef SRC_KERNEL_HIER_SCHEDULER_H_
#define SRC_KERNEL_HIER_SCHEDULER_H_

#include <deque>
#include <memory>
#include <unordered_map>

#include "src/kernel/scheduler.h"
#include "src/rc/manager.h"

namespace kernel {

class HierarchicalScheduler : public CpuScheduler {
 public:
  // `capacity_cpus` scales CPU-limit budgets to the machine size (a window of
  // length W holds capacity_cpus * W of CPU), so limits stay fractions of the
  // whole machine under SMP. `cache_in_container` lets the scheduler stash
  // its per-container Node in the container's sched_cookie (fast path, valid
  // only for a single instance); per-CPU shards must pass false, since N
  // instances share one container tree and would clobber each other's cookie.
  HierarchicalScheduler(rc::ContainerManager* manager, double decay_per_tick,
                        sim::Duration limit_window, int capacity_cpus = 1,
                        bool cache_in_container = true);

  void Enqueue(Thread* t, sim::SimTime now) override;
  Thread* PickNext(sim::SimTime now) override;
  void OnCharge(rc::ResourceContainer& c, sim::Duration usec, sim::SimTime now) override;
  void MigrateQueued(Thread* t, sim::SimTime now) override;
  void Remove(Thread* t) override;
  void Tick(sim::SimTime now) override;
  std::optional<sim::SimTime> NextEligibleTime(sim::SimTime now) override;
  void OnContainerDestroyed(rc::ResourceContainer& c) override;
  void OnContainerReparented(rc::ResourceContainer& child, rc::ResourceContainer* old_parent,
                             rc::ResourceContainer* new_parent) override;
  int runnable_count() const override { return total_runnable_; }

  // Test hooks.
  double DecayedUsage(const rc::ResourceContainer& c) const;
  bool IsThrottled(const rc::ResourceContainer& c, sim::SimTime now) const;

 private:
  struct Node {
    rc::ResourceContainer* container = nullptr;

    double decayed = 0.0;  // decayed subtree CPU charge (time-share pick, stats)

    // Stride state. For a fixed-share container: its own pass. As a parent:
    // the aggregate pass and virtual time of its time-share children.
    double pass = 0.0;
    double tshare_pass = 0.0;
    double vtime = 0.0;
    int tshare_runnable_children = 0;

    // CPU-limit window state (machine-wide; see rc::UsageWindow).
    rc::UsageWindow window;

    // Runnable threads queued at this node (leaves only, normally).
    std::deque<Thread*> run_queue;
    // Queued threads at or below this node.
    int runnable = 0;
  };

  Node* NodeFor(rc::ResourceContainer& c);
  Node* NodeForIfExists(const rc::ResourceContainer& c) const;
  bool Throttled(const Node& n, sim::SimTime now) const {
    return n.window.Throttled(now);
  }

  // Residual weight left for the time-share group under `parent`.
  static double ResidualWeight(const rc::ResourceContainer& parent);

  // Arbitration at `parent`: the eligible child with minimal pass (stride),
  // descending into the time-share group by decayed/priority. `allow_zero`
  // admits priority-0 time-share children.
  Node* PickChild(Node* parent, sim::SimTime now, bool allow_zero);

  // One full descent; nullptr if nothing eligible under this policy pass.
  Thread* Descend(sim::SimTime now, bool allow_zero);

  void AdjustRunnable(rc::ResourceContainer* leaf, int delta);

  rc::ContainerManager* const manager_;
  const double decay_;
  const sim::Duration limit_window_;
  const int capacity_cpus_;
  const bool cache_in_container_;
  std::unordered_map<rc::ContainerId, std::unique_ptr<Node>> nodes_;
  int total_runnable_ = 0;
};

}  // namespace kernel

#endif  // SRC_KERNEL_HIER_SCHEDULER_H_
