// Fixed-width table output for benchmark harnesses (mirrors the rows/series
// of the paper's tables and figures).
#ifndef SRC_XP_TABLE_H_
#define SRC_XP_TABLE_H_

#include <ostream>
#include <string>
#include <vector>

namespace telemetry {
class Registry;
}

namespace xp {

std::string FormatDouble(double v, int precision = 1);

class Table {
 public:
  explicit Table(std::vector<std::string> headers) : headers_(std::move(headers)) {}

  void AddRow(std::vector<std::string> cells) { rows_.push_back(std::move(cells)); }

  // Aligned human-readable output.
  void Print(std::ostream& os) const;

  // Machine-readable CSV.
  void PrintCsv(std::ostream& os) const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

// Renders every metric in `registry` (sorted by name, probes evaluated) as a
// {metric, value, unit} table — the registry-backed replacement for
// hand-rolled per-benchmark stat structs.
Table MetricsTable(const telemetry::Registry& registry);

}  // namespace xp

#endif  // SRC_XP_TABLE_H_
