// rcsim — command-line driver for the simulated server machine.
//
// Every run goes through the scenario compiler (src/xp/spec.h + runner.h):
// either a declarative spec file (--scenario) or an xp::Spec assembled from
// the classic flags below. Flags and specs compose — with --scenario, the
// overlay flags (--kernel, --cpus, --seed, --warmup, --seconds, --clients,
// --cgi, --flood) override the corresponding spec values, and a flag that
// cannot take effect (e.g. --clients when the spec has no population named
// "static") is a hard error, never a silent no-op. Workload-shaping flags
// (--containers, --disk-shares, ...) are flag-mode only; edit the spec
// instead.
//
//   rcsim --kernel=rc --containers --event-api --clients=24 --seconds=5
//   rcsim --kernel=unmodified --clients=16 --cgi=4 --cgi-seconds=2
//   rcsim --scenario=scenarios/synflood_defended.json --audit --digest
//   rcsim --scenario=scenarios/web_hosting.json --seconds=20 --csv
//   rcsim --list-scenarios
//
// Scenario flags:
//   --scenario=FILE              run a declarative spec (see docs/SCENARIOS.md)
//   --list-scenarios[=DIR]       list the specs under DIR (default scenarios/)
//   --describe=FILE              parse FILE and print its canonical form with
//                                every field (including defaults) made explicit
//   --validate=FILE              parse and compile FILE without running; exit
//                                nonzero with a diagnostic if it is invalid
//
// Workload flags (flag mode):
//   --kernel=unmodified|lrp|rc   which of the paper's systems to run
//   --containers                 per-connection containers (RC kernel)
//   --event-api                  scalable event API instead of select()
//   --clients=N                  static-document clients (default 16; counts
//                                beyond ~64000 spill into further /16 source
//                                blocks — 10.1/16, 10.2/16, ... — so
//                                million-client populations get unique
//                                addresses)
//   --bench-events=N             instead of a server scenario, run the raw
//                                event-core throughput workload from
//                                bench/bench_engine.cpp (timing wheel,
//                                --clients concurrent timers, N dispatches)
//                                and report events/sec; reproduces the
//                                million-client configuration from the CLI:
//                                  rcsim --clients=1000000 --bench-events=4000000
//   --persistent=K               requests per connection (default 1)
//   --doc-bytes=N                document size (default 1024)
//   --cgi=N                      concurrent CGI clients (default 0)
//   --cgi-seconds=S              CPU burned per CGI request (default 2)
//   --cgi-cap=F                  CGI-parent sand-box share/limit (default 0.3)
//   --flood=RATE                 SYN flood rate per second (default 0)
//   --defend                     adaptive SYN-flood filter defense
//   --cpus=N                     simulated CPUs (default 1, the paper's
//                                uniprocessor; N>1 shards the run queues)
//   --disk-shares=A,B,...        create one fixed-disk-share container per
//                                percentage (e.g. 50,30,20) with a closed-loop
//                                disk reader in each, and report how the disk
//                                bandwidth actually split
//   --link-mbps=X                model the transmit link as a fixed-rate,
//                                container-scheduled device (default 0: the
//                                link is infinitely fast, as before)
//   --memory-bytes=N             machine physical memory (default 0: memory
//                                is unscheduled; limits only). Enables the
//                                memory broker: entitlements, guarantees and
//                                reclaim from the file cache
//   --memory-shares=A,B,...      create one fixed-memory-share container per
//                                percentage, each streaming documents through
//                                the file cache, and report how resident
//                                bytes actually split (requires
//                                --memory-bytes)
//   --memory-guarantee=P         create a container with a P% fixed memory
//                                share holding a working set equal to its
//                                guaranteed resident bytes; report the
//                                minimum it held across the run (requires
//                                --memory-bytes)
//   --cache-bytes=N              bound the server file cache (LRU eviction,
//                                resident bytes charged to the server's
//                                container; default 0 = unbounded)
//   --irq-steering=fixed|rr|flow interrupt steering policy for --cpus>1
//                                (default flow: per-connection flow hash)
//
// Run control and output (both modes):
//   --seed=N                     root seed for the load generators (default
//                                42; same seed + flags => same run)
//   --warmup=S --seconds=S       warm-up / measured simulated seconds
//   --csv                        machine-readable output
//   --metrics-out[=FILE]         write headline metrics as BENCH_rcsim.json
//   --trace-out=FILE             record the kernel tracer and export the run
//                                as Chrome trace-event JSON (chrome://tracing)
//   --series-out=FILE            per-container usage time series (JSON Lines)
//   --epoch-ms=N                 sampling interval for --series-out (default 100)
//   --print-metrics              dump the full metric registry after the run
//   --audit                      charge-conservation auditing (src/verify):
//                                every RunFor verifies that busy CPU time,
//                                container charges and overheads conserve;
//                                violations go to stderr and exit nonzero.
//                                RC_AUDIT=1 in the environment does the same.
//   --digest                     print "digest: <16 hex>" — an FNV-1a hash of
//                                the full event timeline. Same seed + flags
//                                must reproduce the same digest.
//
// A run whose spec declares assertions prints each verdict and exits
// nonzero when any fails.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "src/net/addr.h"
#include "src/sim/event_queue.h"
#include "src/sim/rng.h"
#include "src/telemetry/bench_io.h"
#include "src/telemetry/trace_export.h"
#include "src/xp/runner.h"
#include "src/xp/spec.h"
#include "src/xp/table.h"

namespace {

struct Flags {
  std::string kernel = "unmodified";
  bool containers = false;
  bool event_api = false;
  int clients = 16;
  long long bench_events = 0;
  int persistent = 1;
  std::uint32_t doc_bytes = 1024;
  int cgi = 0;
  double cgi_seconds = 2.0;
  double cgi_cap = 0.3;
  double flood = 0.0;
  bool defend = false;
  int cpus = 1;
  std::string irq_steering = "flow";
  std::string disk_shares;
  double link_mbps = 0.0;
  long long memory_bytes = 0;
  std::string memory_shares;
  double memory_guarantee = 0.0;  // fraction of machine memory
  long long cache_bytes = 0;
  std::uint64_t seed = 42;
  double warmup = 2.0;
  double seconds = 5.0;
  bool csv = false;
  std::string trace_out;
  std::string series_out;
  int epoch_ms = 100;
  bool print_metrics = false;
  bool audit = false;
  bool digest = false;

  std::string scenario;
  bool list_scenarios = false;
  std::string scenario_dir = "scenarios";
  std::string describe;
  std::string validate;
};

// "50,30,20" -> {0.5, 0.3, 0.2}; empty on malformed input.
std::vector<double> ParseShareList(const std::string& s) {
  std::vector<double> out;
  std::size_t pos = 0;
  while (pos < s.size()) {
    std::size_t comma = s.find(',', pos);
    if (comma == std::string::npos) {
      comma = s.size();
    }
    const double pct = std::atof(s.substr(pos, comma - pos).c_str());
    if (pct <= 0.0 || pct > 100.0) {
      return {};
    }
    out.push_back(pct / 100.0);
    pos = comma + 1;
  }
  return out;
}

bool ParseFlag(const char* arg, const char* name, std::string* out) {
  const std::size_t n = std::strlen(name);
  if (std::strncmp(arg, name, n) == 0 && arg[n] == '=') {
    *out = arg + n + 1;
    return true;
  }
  return false;
}

int Usage() {
  std::fprintf(stderr, "see the header of tools/rcsim.cpp for flag reference\n");
  return 2;
}

// --bench-events: the bench_engine timer workload (wheel backend) driven
// from the CLI. Each client keeps one live timer (mixed HTTP-like gaps) and
// one mostly-canceled 30 ms timeout; callbacks are trivial so the number
// isolates the event core.
class EngineBench {
 public:
  EngineBench(int clients, std::uint64_t seed)
      : rng_(seed), clients_(static_cast<std::size_t>(clients)) {
    for (std::size_t i = 0; i < clients_.size(); ++i) {
      Arm(i, 0);
    }
  }

  sim::SimTime RunEvents(long long total) {
    sim::SimTime now = 0;
    while (queue_.dispatched() < static_cast<std::uint64_t>(total) && !queue_.empty()) {
      now = queue_.RunNext();
    }
    return now;
  }

  const sim::EventQueue& queue() const { return queue_; }

 private:
  struct Client {
    sim::EventHandle timeout;
    sim::SimTime fire_at = 0;
  };

  sim::Duration NextDelay() {
    const std::uint64_t shape = rng_.NextU64() % 100;
    if (shape < 70) {
      return static_cast<sim::Duration>(100 + rng_.NextU64() % 400);
    }
    return static_cast<sim::Duration>(10'000 + rng_.NextU64() % 190'000);
  }

  void Arm(std::size_t i, sim::SimTime now) {
    Client& c = clients_[i];
    c.timeout.Cancel();
    c.timeout = queue_.Schedule(now + 30'000, [] {});
    c.fire_at = now + NextDelay();
    queue_.Schedule(c.fire_at, [this, i] { Arm(i, clients_[i].fire_at); });
  }

  sim::EventQueue queue_;
  sim::Rng rng_;
  std::vector<Client> clients_;
};

int RunEngineBench(const Flags& flags, int argc, char** argv) {
  telemetry::BenchReport bench("rcsim", argc, argv);
  const auto start = std::chrono::steady_clock::now();
  EngineBench b(flags.clients, flags.seed);
  const sim::SimTime end_sim = b.RunEvents(flags.bench_events);
  const double wall =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
  const double events_per_sec = static_cast<double>(b.queue().dispatched()) / wall;
  const double sim_seconds = static_cast<double>(end_sim) / 1e6;
  const double wall_per_sim = sim_seconds > 0 ? wall / sim_seconds : 0;
  std::printf("engine bench: clients=%d events=%llu wall=%.2fs\n", flags.clients,
              static_cast<unsigned long long>(b.queue().dispatched()), wall);
  std::printf("  events/sec       %12.0f\n", events_per_sec);
  std::printf("  wall per sim-sec %12.3f s\n", wall_per_sim);
  std::printf("  canceled         %12llu\n",
              static_cast<unsigned long long>(b.queue().canceled()));
  const std::string config = "engine,clients=" + std::to_string(flags.clients) +
                             ",events=" + std::to_string(flags.bench_events);
  bench.Add("events_per_sec", events_per_sec, "events/s", config);
  bench.Add("wall_per_sim_sec", wall_per_sim, "s/sim-s", config);
  if (!bench.Flush()) {
    std::fprintf(stderr, "failed to write %s\n", bench.path().c_str());
    return 1;
  }
  return 0;
}

xp::AddrSpec MakeAddrSpec(int a, int b, int c, int d) {
  xp::AddrSpec s;
  s.text = std::to_string(a) + "." + std::to_string(b) + "." + std::to_string(c) +
           "." + std::to_string(d);
  s.value = net::MakeAddr(a, b, c, d).v;
  return s;
}

xp::SystemKind SystemFromKernelFlag(const std::string& kernel) {
  if (kernel == "lrp") {
    return xp::SystemKind::kLrp;
  }
  if (kernel == "rc") {
    return xp::SystemKind::kResourceContainer;
  }
  return xp::SystemKind::kUnmodified;
}

// The classic rcsim workload as a Spec: one event-driven server on port 80,
// a "static" population on the historic 250-hosts-per-/24 layout above
// 10.1.0.0, an optional "cgi" population, and the disk/memory/flood extras.
xp::Spec BuildSpecFromFlags(const Flags& flags, const std::vector<double>& disk_shares,
                            const std::vector<double>& memory_shares) {
  xp::Spec spec;
  spec.name = "rcsim";
  spec.system = SystemFromKernelFlag(flags.kernel);
  spec.machine.cpus = flags.cpus;
  spec.machine.irq_steering = flags.irq_steering == "fixed" ? "cpu0"
                              : flags.irq_steering == "rr"  ? "round_robin"
                                                            : "flow_hash";
  spec.machine.link_mbps = flags.link_mbps;
  spec.machine.memory_mb =
      static_cast<double>(flags.memory_bytes) / (1024.0 * 1024.0);
  spec.seed = flags.seed;
  spec.phases.warmup_s = flags.warmup;
  spec.phases.measure_s = flags.seconds;

  xp::ServerSpec srv;
  srv.use_containers = flags.containers;
  srv.use_event_api = flags.event_api || flags.defend;
  srv.syn_defense = flags.defend;
  if (flags.containers && flags.cgi > 0) {
    srv.cgi_sandbox = true;
    srv.cgi_share = flags.cgi_cap;
  }
  srv.cache_capacity_mb = static_cast<double>(flags.cache_bytes) / (1024.0 * 1024.0);
  spec.servers.push_back(srv);

  if (flags.clients > 0) {
    xp::PopulationSpec st;
    st.name = "static";
    st.clients = flags.clients;
    st.layout = "blocks250";
    st.base_addr = MakeAddrSpec(10, 1, 0, 0);
    st.requests_per_conn = flags.persistent;
    st.doc_id = 2;
    st.response_kb = static_cast<double>(flags.doc_bytes) / 1024.0;
    spec.populations.push_back(st);
  }
  if (flags.cgi > 0) {
    xp::PopulationSpec cg;
    cg.name = "cgi";
    cg.clients = flags.cgi;
    cg.base_addr = MakeAddrSpec(10, 3, 0, 0);
    cg.client_class = 2;
    cg.is_cgi = true;
    cg.cgi_cpu_ms = flags.cgi_seconds * 1000.0;
    cg.request_timeout_s = 0.0;  // CGI responses are legitimately slow
    spec.populations.push_back(cg);
  }

  for (std::size_t i = 0; i < disk_shares.size(); ++i) {
    xp::ContainerSpec ct;
    ct.name = "disk-" + std::to_string(i);
    ct.attrs.disk.override_sched = true;
    ct.attrs.disk.sched.cls = rc::SchedClass::kFixedShare;
    ct.attrs.disk.sched.fixed_share = disk_shares[i];
    spec.containers.push_back(ct);
    xp::WorkloadSpec w;
    w.kind = "disk_reader";
    w.name = "disk-reader-" + std::to_string(i);
    w.container = ct.name;
    w.threads = 4;
    w.read_kb = 4.0;
    spec.workloads.push_back(w);
  }

  if (flags.memory_guarantee > 0) {
    xp::ContainerSpec ct;
    ct.name = "mem-guaranteed";
    ct.attrs.memory.override_sched = true;
    ct.attrs.memory.sched.cls = rc::SchedClass::kFixedShare;
    ct.attrs.memory.sched.fixed_share = flags.memory_guarantee;
    spec.containers.push_back(ct);
    xp::WorkloadSpec w;
    w.kind = "cache_pin";
    w.name = "mem-guaranteed";
    w.container = ct.name;
    w.docs = 32;
    w.doc_bytes_kb = 0.0;  // size the set to the container's guarantee
    w.sample_period_ms = static_cast<double>(flags.epoch_ms);
    spec.workloads.push_back(w);
  }
  for (std::size_t i = 0; i < memory_shares.size(); ++i) {
    xp::ContainerSpec ct;
    ct.name = "mem-" + std::to_string(i);
    ct.attrs.memory.override_sched = true;
    ct.attrs.memory.sched.cls = rc::SchedClass::kFixedShare;
    ct.attrs.memory.sched.fixed_share = memory_shares[i];
    spec.containers.push_back(ct);
    xp::WorkloadSpec w;
    w.kind = "cache_stream";
    w.name = "mem-stream-" + std::to_string(i);
    w.container = ct.name;
    w.period_ms = 1.0;
    w.bytes_kb = 64.0;
    spec.workloads.push_back(w);
  }

  if (flags.flood > 0) {
    xp::AttackSpec atk;
    atk.kind = "syn_flood";
    atk.name = "flood";
    atk.prefix = MakeAddrSpec(10, 99, 0, 0);
    atk.rate_per_sec = flags.flood;
    spec.attacks.push_back(atk);
  }
  return spec;
}

int ListScenarios(const std::string& dir) {
  std::error_code ec;
  std::vector<std::filesystem::path> paths;
  for (const auto& entry : std::filesystem::directory_iterator(dir, ec)) {
    if (entry.path().extension() == ".json") {
      paths.push_back(entry.path());
    }
  }
  if (ec) {
    std::fprintf(stderr, "cannot list %s: %s\n", dir.c_str(), ec.message().c_str());
    return 1;
  }
  std::sort(paths.begin(), paths.end());
  xp::Table table({"scenario", "name", "summary"});
  for (const auto& path : paths) {
    const xp::SpecParseResult r = xp::ParseSpecFile(path.string());
    if (!r.ok()) {
      table.AddRow({path.filename().string(), "(invalid)", r.error.substr(0, 60)});
      continue;
    }
    std::string summary = r.spec.comment.substr(0, r.spec.comment.find('\n'));
    if (summary.size() > 72) {
      summary = summary.substr(0, 69) + "...";
    }
    table.AddRow({path.filename().string(), r.spec.name, summary});
  }
  table.Print(std::cout);
  return 0;
}

double MetricOr(const xp::RunResult& rr, const std::string& name, double fallback) {
  const double* v = rr.Find(name);
  return v != nullptr ? *v : fallback;
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags;
  std::set<std::string> seen;
  for (int i = 1; i < argc; ++i) {
    std::string value;
    const char* a = argv[i];
    {
      std::string name = a;
      const std::size_t eq = name.find('=');
      if (eq != std::string::npos) {
        name = name.substr(0, eq);
      }
      seen.insert(name);
    }
    if (ParseFlag(a, "--kernel", &value)) {
      flags.kernel = value;
    } else if (std::strcmp(a, "--containers") == 0) {
      flags.containers = true;
    } else if (std::strcmp(a, "--event-api") == 0) {
      flags.event_api = true;
    } else if (ParseFlag(a, "--clients", &value)) {
      flags.clients = std::atoi(value.c_str());
    } else if (ParseFlag(a, "--bench-events", &value)) {
      flags.bench_events = std::atoll(value.c_str());
    } else if (ParseFlag(a, "--persistent", &value)) {
      flags.persistent = std::atoi(value.c_str());
    } else if (ParseFlag(a, "--doc-bytes", &value)) {
      flags.doc_bytes = static_cast<std::uint32_t>(std::atoi(value.c_str()));
    } else if (ParseFlag(a, "--cgi", &value)) {
      flags.cgi = std::atoi(value.c_str());
    } else if (ParseFlag(a, "--cgi-seconds", &value)) {
      flags.cgi_seconds = std::atof(value.c_str());
    } else if (ParseFlag(a, "--cgi-cap", &value)) {
      flags.cgi_cap = std::atof(value.c_str());
    } else if (ParseFlag(a, "--flood", &value)) {
      flags.flood = std::atof(value.c_str());
    } else if (std::strcmp(a, "--defend") == 0) {
      flags.defend = true;
    } else if (ParseFlag(a, "--cpus", &value)) {
      flags.cpus = std::atoi(value.c_str());
    } else if (ParseFlag(a, "--irq-steering", &value)) {
      flags.irq_steering = value;
    } else if (ParseFlag(a, "--disk-shares", &value)) {
      flags.disk_shares = value;
    } else if (ParseFlag(a, "--link-mbps", &value)) {
      flags.link_mbps = std::atof(value.c_str());
    } else if (ParseFlag(a, "--memory-bytes", &value)) {
      flags.memory_bytes = std::atoll(value.c_str());
    } else if (ParseFlag(a, "--memory-shares", &value)) {
      flags.memory_shares = value;
    } else if (ParseFlag(a, "--memory-guarantee", &value)) {
      flags.memory_guarantee = std::atof(value.c_str()) / 100.0;
    } else if (ParseFlag(a, "--cache-bytes", &value)) {
      flags.cache_bytes = std::atoll(value.c_str());
    } else if (ParseFlag(a, "--seed", &value)) {
      flags.seed = static_cast<std::uint64_t>(std::atoll(value.c_str()));
    } else if (ParseFlag(a, "--warmup", &value)) {
      flags.warmup = std::atof(value.c_str());
    } else if (ParseFlag(a, "--seconds", &value)) {
      flags.seconds = std::atof(value.c_str());
    } else if (std::strcmp(a, "--csv") == 0) {
      flags.csv = true;
    } else if (std::strncmp(a, "--metrics-out", 13) == 0) {
      // Consumed by BenchReport, which scans argv itself.
    } else if (ParseFlag(a, "--trace-out", &value)) {
      flags.trace_out = value;
    } else if (ParseFlag(a, "--series-out", &value)) {
      flags.series_out = value;
    } else if (ParseFlag(a, "--epoch-ms", &value)) {
      flags.epoch_ms = std::atoi(value.c_str());
    } else if (std::strcmp(a, "--print-metrics") == 0) {
      flags.print_metrics = true;
    } else if (std::strcmp(a, "--audit") == 0) {
      flags.audit = true;
    } else if (std::strcmp(a, "--digest") == 0) {
      flags.digest = true;
    } else if (ParseFlag(a, "--scenario", &value)) {
      flags.scenario = value;
    } else if (std::strcmp(a, "--list-scenarios") == 0) {
      flags.list_scenarios = true;
    } else if (ParseFlag(a, "--list-scenarios", &value)) {
      flags.list_scenarios = true;
      flags.scenario_dir = value;
    } else if (ParseFlag(a, "--describe", &value)) {
      flags.describe = value;
    } else if (ParseFlag(a, "--validate", &value)) {
      flags.validate = value;
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", a);
      return Usage();
    }
  }

  if (flags.list_scenarios) {
    return ListScenarios(flags.scenario_dir);
  }
  if (!flags.describe.empty()) {
    const xp::SpecParseResult r = xp::ParseSpecFile(flags.describe);
    if (!r.ok()) {
      std::fprintf(stderr, "%s\n", r.error.c_str());
      return 1;
    }
    std::fputs(xp::DumpSpec(r.spec).c_str(), stdout);
    return 0;
  }
  if (!flags.validate.empty()) {
    const xp::SpecParseResult r = xp::ParseSpecFile(flags.validate);
    if (!r.ok()) {
      std::fprintf(stderr, "%s\n", r.error.c_str());
      return 1;
    }
    const xp::CompileResult c = xp::Compile(r.spec);
    if (!c.ok()) {
      std::fprintf(stderr, "%s: %s\n", flags.validate.c_str(), c.error.c_str());
      return 1;
    }
    std::printf("%s: ok (spec \"%s\")\n", flags.validate.c_str(), r.spec.name.c_str());
    return 0;
  }

  if (flags.bench_events > 0) {
    return RunEngineBench(flags, argc, argv);
  }

  if (flags.kernel != "unmodified" && flags.kernel != "lrp" && flags.kernel != "rc") {
    std::fprintf(stderr, "bad --kernel value: %s\n", flags.kernel.c_str());
    return Usage();
  }
  if (flags.cpus < 1) {
    std::fprintf(stderr, "--cpus must be >= 1\n");
    return Usage();
  }
  if (flags.epoch_ms <= 0) {
    std::fprintf(stderr, "--epoch-ms must be positive\n");
    return Usage();
  }

  xp::Spec spec;
  if (!flags.scenario.empty()) {
    // Workload shape comes from the spec; only the overlay flags compose.
    static constexpr const char* kFlagModeOnly[] = {
        "--containers",    "--event-api",  "--defend",       "--persistent",
        "--doc-bytes",     "--cgi-seconds", "--cgi-cap",     "--irq-steering",
        "--disk-shares",   "--link-mbps",  "--memory-bytes", "--memory-shares",
        "--memory-guarantee", "--cache-bytes"};
    for (const char* f : kFlagModeOnly) {
      if (seen.count(f) > 0) {
        std::fprintf(stderr, "%s is not compatible with --scenario; edit the spec\n",
                     f);
        return Usage();
      }
    }
    const xp::SpecParseResult r = xp::ParseSpecFile(flags.scenario);
    if (!r.ok()) {
      std::fprintf(stderr, "%s\n", r.error.c_str());
      return 1;
    }
    spec = r.spec;
    xp::SpecOverlay overlay;
    if (seen.count("--kernel") > 0) {
      overlay.system = SystemFromKernelFlag(flags.kernel);
    }
    if (seen.count("--cpus") > 0) {
      overlay.cpus = flags.cpus;
    }
    if (seen.count("--seed") > 0) {
      overlay.seed = flags.seed;
    }
    if (seen.count("--warmup") > 0) {
      overlay.warmup_s = flags.warmup;
    }
    if (seen.count("--seconds") > 0) {
      overlay.measure_s = flags.seconds;
    }
    if (seen.count("--clients") > 0) {
      overlay.static_clients = flags.clients;
    }
    if (seen.count("--cgi") > 0) {
      overlay.cgi_clients = flags.cgi;
    }
    if (seen.count("--flood") > 0) {
      overlay.flood_rate = flags.flood;
    }
    const std::string err = xp::ApplyOverlay(spec, overlay);
    if (!err.empty()) {
      std::fprintf(stderr, "%s\n", err.c_str());
      return Usage();
    }
  } else {
    if ((flags.containers || flags.defend) && flags.kernel != "rc") {
      std::fprintf(stderr, "--containers/--defend require --kernel=rc\n");
      return Usage();
    }
    if (flags.irq_steering != "fixed" && flags.irq_steering != "rr" &&
        flags.irq_steering != "flow") {
      std::fprintf(stderr, "bad --irq-steering value: %s\n",
                   flags.irq_steering.c_str());
      return Usage();
    }
    std::vector<double> disk_shares;
    if (!flags.disk_shares.empty()) {
      disk_shares = ParseShareList(flags.disk_shares);
      double sum = 0.0;
      for (double s : disk_shares) {
        sum += s;
      }
      if (disk_shares.empty() || sum > 1.0 + 1e-9) {
        std::fprintf(stderr, "bad --disk-shares value: %s (percentages, sum <= 100)\n",
                     flags.disk_shares.c_str());
        return Usage();
      }
    }
    if (flags.link_mbps < 0.0) {
      std::fprintf(stderr, "--link-mbps must be >= 0\n");
      return Usage();
    }
    std::vector<double> memory_shares;
    if (!flags.memory_shares.empty()) {
      memory_shares = ParseShareList(flags.memory_shares);
      double sum = flags.memory_guarantee;
      for (double s : memory_shares) {
        sum += s;
      }
      if (memory_shares.empty() || sum > 1.0 + 1e-9) {
        std::fprintf(stderr,
                     "bad --memory-shares value: %s (percentages, sum with "
                     "--memory-guarantee <= 100)\n",
                     flags.memory_shares.c_str());
        return Usage();
      }
    }
    if (flags.memory_guarantee < 0.0 || flags.memory_guarantee > 1.0) {
      std::fprintf(stderr, "--memory-guarantee must be in [0, 100]\n");
      return Usage();
    }
    if ((!memory_shares.empty() || flags.memory_guarantee > 0) &&
        flags.memory_bytes <= 0) {
      std::fprintf(stderr,
                   "--memory-shares/--memory-guarantee require --memory-bytes\n");
      return Usage();
    }
    if (flags.memory_bytes < 0) {
      std::fprintf(stderr, "--memory-bytes must be >= 0\n");
      return Usage();
    }
    spec = BuildSpecFromFlags(flags, disk_shares, memory_shares);
  }

  xp::CompileOptions copts;
  copts.audit = flags.audit;
  copts.digest = flags.digest;
  copts.telemetry = !flags.series_out.empty() || flags.print_metrics;
  copts.telemetry_interval_ms = static_cast<double>(flags.epoch_ms);
  xp::CompileResult compiled = xp::Compile(spec, copts);
  if (!compiled.ok()) {
    std::fprintf(stderr, "%s\n", compiled.error.c_str());
    return 1;
  }
  xp::CompiledScenario& cs = *compiled.compiled;
  if (!flags.trace_out.empty()) {
    cs.scenario().kernel().tracer().Enable();
  }

  const xp::RunResult rr = cs.Run(&std::cout);

  if (!flags.trace_out.empty()) {
    std::ofstream os(flags.trace_out);
    telemetry::WriteChromeTrace(
        cs.scenario().kernel().tracer(),
        telemetry::ContainerNamesFrom(cs.scenario().kernel().containers()), os);
    if (!os) {
      std::fprintf(stderr, "failed to write %s\n", flags.trace_out.c_str());
      return 1;
    }
  }
  if (!flags.series_out.empty()) {
    std::ofstream os(flags.series_out);
    cs.scenario().sampler()->WriteJsonLines(os);
    if (!os) {
      std::fprintf(stderr, "failed to write %s\n", flags.series_out.c_str());
      return 1;
    }
  }

  const double tput = MetricOr(rr, "throughput_rps", 0);
  const double mean_ms = MetricOr(rr, "mean_latency_ms", 0);
  const double busy = MetricOr(rr, "cpu_busy_frac", 0);
  const double irq = MetricOr(rr, "interrupt_frac", 0);
  const double cgi_share = MetricOr(rr, "cgi_cpu_share", 0);
  const auto timeouts = static_cast<std::uint64_t>(MetricOr(rr, "client_timeouts", 0));
  const auto failures = static_cast<std::uint64_t>(MetricOr(rr, "client_failures", 0));

  telemetry::BenchReport bench("rcsim", argc, argv);
  {
    std::string config;
    if (flags.scenario.empty()) {
      config = "kernel=" + flags.kernel + ",clients=" + std::to_string(flags.clients) +
               ",persistent=" + std::to_string(flags.persistent);
      if (flags.cpus > 1) config += ",cpus=" + std::to_string(flags.cpus);
      if (flags.cgi > 0) config += ",cgi=" + std::to_string(flags.cgi);
      if (flags.flood > 0) {
        config += ",flood=" + std::to_string(static_cast<long>(flags.flood));
      }
    } else {
      config = "scenario=" + spec.name;
    }
    bench.Add("throughput", tput, "req/s", config);
    bench.Add("mean_latency", mean_ms, "ms", config);
    bench.Add("cpu_busy_frac", busy, "fraction", config);
    bench.Add("interrupt_frac", irq, "fraction", config);
    if (rr.Find("cgi_cpu_share") != nullptr) {
      bench.Add("cgi_cpu_share", cgi_share, "fraction", config);
    }
    if (const double* v = rr.Find("link_utilization")) {
      bench.Add("link_utilization", *v, "fraction", config);
    }
    bench.Add("client_timeouts", static_cast<double>(timeouts), "count", config);
    bench.Add("client_failures", static_cast<double>(failures), "count", config);
    // Everything the metric namespace adds beyond the headline numbers —
    // per-population, per-container, per-workload, per-server — under its
    // namespace name.
    for (const auto& [name, value] : rr.metrics) {
      if (name.find('/') != std::string::npos) {
        bench.Add(name, value, "", config);
      }
    }
    if (!bench.Flush()) {
      std::fprintf(stderr, "failed to write %s\n", bench.path().c_str());
      return 1;
    }
  }

  if (flags.print_metrics) {
    xp::MetricsTable(cs.scenario().metrics()).Print(std::cout);
    std::printf("\n");
  }

  if (flags.digest) {
    std::printf("digest: %s\n", rr.digest_hex.c_str());
  }

  int exit_code = 0;
  if (!rr.assertions.empty()) {
    for (const xp::AssertionResult& ar : rr.assertions) {
      std::printf("assert %s: %s\n", ar.passed ? "PASS" : "FAIL", ar.detail.c_str());
    }
    if (!rr.ok) {
      std::fprintf(stderr, "%zu assertion(s) failed\n",
                   static_cast<std::size_t>(std::count_if(
                       rr.assertions.begin(), rr.assertions.end(),
                       [](const xp::AssertionResult& ar) { return !ar.passed; })));
      exit_code = 1;
    }
  }

  if (flags.csv) {
    std::printf("throughput,mean_ms,cpu_busy,interrupt,cgi_share,timeouts,failures\n");
    std::printf("%.1f,%.3f,%.4f,%.4f,%.4f,%llu,%llu\n", tput, mean_ms, busy, irq,
                cgi_share, static_cast<unsigned long long>(timeouts),
                static_cast<unsigned long long>(failures));
    return exit_code;
  }

  xp::Table report({"metric", "value"});
  if (flags.scenario.empty()) {
    report.AddRow({"kernel", flags.kernel});
  } else {
    report.AddRow({"scenario", spec.name});
    report.AddRow({"system", xp::SystemKindName(spec.system)});
  }
  report.AddRow({"throughput", xp::FormatDouble(tput, 0) + " req/s"});
  report.AddRow({"mean latency", xp::FormatDouble(mean_ms, 2) + " ms"});
  report.AddRow({"CPU busy", xp::FormatDouble(100 * busy, 1) + "%"});
  report.AddRow({"interrupt time", xp::FormatDouble(100 * irq, 1) + "%"});
  if (rr.Find("cgi_cpu_share") != nullptr) {
    report.AddRow({"CGI CPU share", xp::FormatDouble(100 * cgi_share, 1) + "%"});
  }
  if (const double* v = rr.Find("link_utilization")) {
    report.AddRow({"link utilization", xp::FormatDouble(100 * *v, 1) + "%"});
  }
  // The namespaced metrics (populations, containers, workloads, servers).
  for (const auto& [name, value] : rr.metrics) {
    if (name.find('/') != std::string::npos) {
      report.AddRow({name, xp::FormatDouble(value, 4)});
    }
  }
  report.AddRow({"client timeouts", std::to_string(timeouts)});
  report.AddRow({"client failures", std::to_string(failures)});
  report.Print(std::cout);
  return exit_code;
}
