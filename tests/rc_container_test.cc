// Unit tests for the resource-container core: hierarchy rules, attributes,
// lifetime semantics, and accounting.
#include <gtest/gtest.h>

#include "src/rc/container.h"
#include "src/rc/manager.h"

namespace rc {
namespace {

using rccommon::Errc;

Attributes FixedShare(double share) {
  Attributes a;
  a.sched.cls = SchedClass::kFixedShare;
  a.sched.fixed_share = share;
  return a;
}

TEST(ContainerManagerTest, RootExists) {
  ContainerManager m;
  ASSERT_NE(m.root(), nullptr);
  EXPECT_TRUE(m.root()->is_root());
  EXPECT_EQ(m.live_count(), 1u);
  EXPECT_EQ(m.root()->attributes().sched.cls, SchedClass::kFixedShare);
}

TEST(ContainerManagerTest, CreateTopLevel) {
  ContainerManager m;
  auto c = m.Create(nullptr, "web");
  ASSERT_TRUE(c.ok());
  EXPECT_EQ((*c)->parent(), m.root().get());
  EXPECT_EQ((*c)->name(), "web");
  EXPECT_EQ((*c)->depth(), 1);
  EXPECT_EQ(m.live_count(), 2u);
}

TEST(ContainerManagerTest, IdsAreUnique) {
  ContainerManager m;
  auto a = m.Create(nullptr, "a").value();
  auto b = m.Create(nullptr, "b").value();
  EXPECT_NE(a->id(), b->id());
}

TEST(ContainerManagerTest, TimeShareCannotHaveChildren) {
  ContainerManager m;
  auto ts = m.Create(nullptr, "ts").value();  // default: time-share
  auto child = m.Create(ts, "child");
  EXPECT_FALSE(child.ok());
  EXPECT_EQ(child.error(), Errc::kHasChildren);
}

TEST(ContainerManagerTest, FixedShareCanHaveChildren) {
  ContainerManager m;
  auto fs = m.Create(nullptr, "fs", FixedShare(0.5)).value();
  auto child = m.Create(fs, "child");
  ASSERT_TRUE(child.ok());
  EXPECT_EQ((*child)->parent(), fs.get());
  EXPECT_EQ((*child)->depth(), 2);
}

TEST(ContainerManagerTest, SiblingSharesCannotOversubscribe) {
  ContainerManager m;
  auto a = m.Create(nullptr, "a", FixedShare(0.6)).value();
  auto b = m.Create(nullptr, "b", FixedShare(0.5));
  EXPECT_FALSE(b.ok());
  EXPECT_EQ(b.error(), Errc::kLimitExceeded);
  auto c = m.Create(nullptr, "c", FixedShare(0.4));
  EXPECT_TRUE(c.ok());
}

TEST(ContainerManagerTest, NestedShareBudgetIsPerParent) {
  ContainerManager m;
  auto p = m.Create(nullptr, "p", FixedShare(0.5)).value();
  // Children of p can themselves sum to 100% *of p*.
  auto c1 = m.Create(p, "c1", FixedShare(0.7));
  ASSERT_TRUE(c1.ok());
  auto c2 = m.Create(p, "c2", FixedShare(0.3));
  ASSERT_TRUE(c2.ok());
  EXPECT_FALSE(m.Create(p, "c3", FixedShare(0.1)).ok());
}

TEST(ContainerManagerTest, LookupFindsLiveContainer) {
  ContainerManager m;
  auto c = m.Create(nullptr, "x").value();
  auto found = m.Lookup(c->id());
  ASSERT_TRUE(found.ok());
  EXPECT_EQ(found->get(), c.get());
}

TEST(ContainerManagerTest, LookupFailsAfterDestroy) {
  ContainerManager m;
  ContainerId id;
  {
    auto c = m.Create(nullptr, "gone").value();
    id = c->id();
  }
  EXPECT_FALSE(m.Lookup(id).ok());
  EXPECT_EQ(m.live_count(), 1u);
}

TEST(ContainerManagerTest, SetParentMovesSubtree) {
  ContainerManager m;
  auto a = m.Create(nullptr, "a", FixedShare(0.3)).value();
  auto b = m.Create(nullptr, "b", FixedShare(0.3)).value();
  auto child = m.Create(a, "child").value();
  ASSERT_TRUE(m.SetParent(child, b).ok());
  EXPECT_EQ(child->parent(), b.get());
  EXPECT_EQ(a->child_count(), 0u);
  EXPECT_EQ(b->child_count(), 1u);
}

TEST(ContainerManagerTest, SetParentNullMeansTopLevel) {
  ContainerManager m;
  auto a = m.Create(nullptr, "a", FixedShare(0.3)).value();
  auto child = m.Create(a, "child").value();
  ASSERT_TRUE(m.SetParent(child, nullptr).ok());
  EXPECT_EQ(child->parent(), m.root().get());
}

TEST(ContainerManagerTest, SetParentRejectsCycle) {
  ContainerManager m;
  auto a = m.Create(nullptr, "a", FixedShare(0.3)).value();
  auto b = m.Create(a, "b", FixedShare(0.5)).value();
  EXPECT_FALSE(m.SetParent(a, b).ok());   // b is a descendant of a
  EXPECT_FALSE(m.SetParent(a, a).ok());   // self
  EXPECT_FALSE(m.SetParent(m.root(), a).ok());  // root is immovable
}

TEST(ContainerManagerTest, SetParentChecksShareBudgetAtNewParent) {
  ContainerManager m;
  auto p = m.Create(nullptr, "p", FixedShare(0.3)).value();
  auto existing = m.Create(p, "existing", FixedShare(0.8));
  ASSERT_TRUE(existing.ok());
  auto mover = m.Create(nullptr, "mover", FixedShare(0.5)).value();
  EXPECT_FALSE(m.SetParent(mover, p).ok());  // 0.8 + 0.5 > 1
}

TEST(ContainerLifetimeTest, DestroyOrphansChildrenToTopLevel) {
  ContainerManager m;
  ContainerRef child;
  {
    auto parent = m.Create(nullptr, "parent", FixedShare(0.5)).value();
    child = m.Create(parent, "child").value();
    EXPECT_EQ(child->depth(), 2);
  }
  // "If the parent P of a container C is destroyed, C's parent is set to
  // 'no parent'".
  EXPECT_EQ(child->parent(), m.root().get());
  EXPECT_EQ(child->depth(), 1);
}

TEST(ContainerLifetimeTest, DestroyRetiresUsageIntoParent) {
  ContainerManager m;
  auto parent = m.Create(nullptr, "parent", FixedShare(0.5)).value();
  {
    auto child = m.Create(parent, "child").value();
    child->ChargeCpu(1000, CpuKind::kUser);
  }
  EXPECT_EQ(parent->retired_usage().cpu_user_usec, 1000);
  EXPECT_EQ(parent->SubtreeUsage().cpu_user_usec, 1000);
}

TEST(ContainerLifetimeTest, RetiredUsageChainsThroughGenerations) {
  ContainerManager m;
  auto top = m.Create(nullptr, "top", FixedShare(0.5)).value();
  {
    auto mid = m.Create(top, "mid", FixedShare(0.5)).value();
    {
      auto leaf = m.Create(mid, "leaf").value();
      leaf->ChargeCpu(500, CpuKind::kKernel);
    }
    EXPECT_EQ(mid->retired_usage().cpu_kernel_usec, 500);
  }
  EXPECT_EQ(top->retired_usage().cpu_kernel_usec, 500);
}

namespace {

struct RecordingListener : rc::LifecycleListener {
  void OnContainerDestroyed(ResourceContainer& c) override { destroyed = c.id(); }
  void OnContainerReparented(ResourceContainer& c, ResourceContainer* o,
                             ResourceContainer* n) override {
    reparented = c.id();
    seen_old = o;
    seen_new = n;
  }
  ContainerId destroyed = 0;
  ContainerId reparented = 0;
  ResourceContainer* seen_old = nullptr;
  ResourceContainer* seen_new = nullptr;
};

}  // namespace

TEST(ContainerLifetimeTest, DestroyListenerFires) {
  ContainerManager m;
  RecordingListener listener;
  m.AddLifecycleListener(&listener);
  ContainerId id;
  {
    auto c = m.Create(nullptr, "watched").value();
    id = c->id();
  }
  EXPECT_EQ(listener.destroyed, id);
}

TEST(ContainerLifetimeTest, ReparentListenerFiresOnExplicitMove) {
  ContainerManager m;
  auto a = m.Create(nullptr, "a", FixedShare(0.3)).value();
  auto child = m.Create(a, "child").value();
  RecordingListener listener;
  m.AddLifecycleListener(&listener);
  ASSERT_TRUE(m.SetParent(child, nullptr).ok());
  EXPECT_EQ(listener.reparented, child->id());
  EXPECT_EQ(listener.seen_old, a.get());
  EXPECT_EQ(listener.seen_new, m.root().get());
}

TEST(ContainerUsageTest, CpuKindsSeparated) {
  ContainerManager m;
  auto c = m.Create(nullptr, "c").value();
  c->ChargeCpu(10, CpuKind::kUser);
  c->ChargeCpu(20, CpuKind::kKernel);
  c->ChargeCpu(30, CpuKind::kNetwork);
  EXPECT_EQ(c->usage().cpu_user_usec, 10);
  EXPECT_EQ(c->usage().cpu_kernel_usec, 20);
  EXPECT_EQ(c->usage().cpu_network_usec, 30);
  EXPECT_EQ(c->usage().TotalCpuUsec(), 60);
}

TEST(ContainerUsageTest, SubtreeAggregates) {
  ContainerManager m;
  auto p = m.Create(nullptr, "p", FixedShare(0.5)).value();
  auto c1 = m.Create(p, "c1").value();
  auto c2 = m.Create(p, "c2").value();
  p->ChargeCpu(1, CpuKind::kUser);
  c1->ChargeCpu(2, CpuKind::kUser);
  c2->ChargeCpu(4, CpuKind::kUser);
  EXPECT_EQ(p->SubtreeUsage().cpu_user_usec, 7);
  EXPECT_EQ(p->usage().cpu_user_usec, 1);
}

TEST(ContainerUsageTest, NetworkCounters) {
  ContainerManager m;
  auto c = m.Create(nullptr, "c").value();
  c->CountPacketReceived(1500);
  c->CountPacketReceived(500);
  c->CountPacketDropped();
  c->CountBytesSent(4096);
  EXPECT_EQ(c->usage().packets_received, 2u);
  EXPECT_EQ(c->usage().bytes_received, 2000u);
  EXPECT_EQ(c->usage().packets_dropped, 1u);
  EXPECT_EQ(c->usage().bytes_sent, 4096u);
}

TEST(ContainerMemoryTest, ChargeAndRelease) {
  ContainerManager m;
  auto c = m.Create(nullptr, "c").value();
  ASSERT_TRUE(c->ChargeMemory(4096).ok());
  EXPECT_EQ(c->usage().memory_bytes, 4096);
  EXPECT_EQ(c->subtree_memory_bytes(), 4096);
  EXPECT_EQ(m.root()->subtree_memory_bytes(), 4096);
  c->ReleaseMemory(4096);
  EXPECT_EQ(c->usage().memory_bytes, 0);
  EXPECT_EQ(m.root()->subtree_memory_bytes(), 0);
}

TEST(ContainerMemoryTest, PeakTracksHighWater) {
  ContainerManager m;
  auto c = m.Create(nullptr, "c").value();
  ASSERT_TRUE(c->ChargeMemory(100).ok());
  c->ReleaseMemory(50);
  ASSERT_TRUE(c->ChargeMemory(20).ok());
  EXPECT_EQ(c->usage().memory_peak_bytes, 100);
  EXPECT_EQ(c->usage().memory_bytes, 70);
}

TEST(ContainerMemoryTest, OwnLimitEnforced) {
  ContainerManager m;
  Attributes a;
  a.memory_limit_bytes = 1000;
  auto c = m.Create(nullptr, "c", a).value();
  EXPECT_TRUE(c->ChargeMemory(900).ok());
  auto over = c->ChargeMemory(200);
  EXPECT_FALSE(over.ok());
  EXPECT_EQ(over.error(), Errc::kLimitExceeded);
  EXPECT_EQ(c->usage().memory_bytes, 900);  // failed charge not applied
}

TEST(ContainerMemoryTest, ParentLimitConstrainsSubtree) {
  ContainerManager m;
  Attributes pa = FixedShare(0.5);
  pa.memory_limit_bytes = 1000;
  auto p = m.Create(nullptr, "p", pa).value();
  auto c1 = m.Create(p, "c1").value();
  auto c2 = m.Create(p, "c2").value();
  EXPECT_TRUE(c1->ChargeMemory(600).ok());
  EXPECT_FALSE(c2->ChargeMemory(600).ok());  // would exceed parent's limit
  EXPECT_TRUE(c2->ChargeMemory(400).ok());
}

TEST(ContainerMemoryTest, ReparentMigratesSubtreeMemory) {
  ContainerManager m;
  auto a = m.Create(nullptr, "a", FixedShare(0.3)).value();
  auto b = m.Create(nullptr, "b", FixedShare(0.3)).value();
  auto child = m.Create(a, "child").value();
  ASSERT_TRUE(child->ChargeMemory(512).ok());
  EXPECT_EQ(a->subtree_memory_bytes(), 512);
  ASSERT_TRUE(m.SetParent(child, b).ok());
  EXPECT_EQ(a->subtree_memory_bytes(), 0);
  EXPECT_EQ(b->subtree_memory_bytes(), 512);
  EXPECT_EQ(m.root()->subtree_memory_bytes(), 512);
}

TEST(ContainerMemoryTest, DestroyedParentMovesChildMemoryToRoot) {
  ContainerManager m;
  ContainerRef child;
  {
    auto parent = m.Create(nullptr, "parent", FixedShare(0.5)).value();
    child = m.Create(parent, "child").value();
    ASSERT_TRUE(child->ChargeMemory(256).ok());
  }
  EXPECT_EQ(child->parent(), m.root().get());
  EXPECT_EQ(child->subtree_memory_bytes(), 256);
  EXPECT_EQ(m.root()->subtree_memory_bytes(), 256);
}

TEST(AttributesTest, ValidateRejectsBadPriority) {
  Attributes a;
  a.sched.priority = -1;
  EXPECT_FALSE(a.Validate().ok());
  a.sched.priority = kMaxPriority + 1;
  EXPECT_FALSE(a.Validate().ok());
}

TEST(AttributesTest, ValidateRejectsBadShares) {
  EXPECT_FALSE(FixedShare(0.0).Validate().ok());
  EXPECT_FALSE(FixedShare(1.5).Validate().ok());
  EXPECT_TRUE(FixedShare(1.0).Validate().ok());
  Attributes ts;  // time-share with nonzero share is inconsistent
  ts.sched.fixed_share = 0.5;
  EXPECT_FALSE(ts.Validate().ok());
}

TEST(AttributesTest, ValidateRejectsBadLimits) {
  Attributes a;
  a.cpu_limit = 1.5;
  EXPECT_FALSE(a.Validate().ok());
  a.cpu_limit = 0.5;
  a.memory_limit_bytes = -1;
  EXPECT_FALSE(a.Validate().ok());
}

TEST(AttributesTest, EffectiveNetworkPriority) {
  Attributes a;
  a.sched.priority = 20;
  EXPECT_EQ(a.EffectiveNetworkPriority(), 20);
  a.network_priority = 3;
  EXPECT_EQ(a.EffectiveNetworkPriority(), 3);
}

TEST(AttributesTest, SetAttributesValidatesAndApplies) {
  ContainerManager m;
  auto c = m.Create(nullptr, "c").value();
  Attributes a = c->attributes();
  a.sched.priority = 40;
  ASSERT_TRUE(c->SetAttributes(a).ok());
  EXPECT_EQ(c->attributes().sched.priority, 40);
  a.sched.priority = 1000;
  EXPECT_FALSE(c->SetAttributes(a).ok());
  EXPECT_EQ(c->attributes().sched.priority, 40);
}

TEST(AttributesTest, CannotBecomeTimeShareWithChildren) {
  ContainerManager m;
  auto p = m.Create(nullptr, "p", FixedShare(0.5)).value();
  auto child = m.Create(p, "c").value();
  (void)child;
  Attributes ts;  // time-share
  auto result = p->SetAttributes(ts);
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.error(), Errc::kHasChildren);
}

TEST(AttributesTest, ShareChangeCheckedAgainstSiblings) {
  ContainerManager m;
  auto a = m.Create(nullptr, "a", FixedShare(0.5)).value();
  auto b = m.Create(nullptr, "b", FixedShare(0.4)).value();
  (void)a;
  EXPECT_FALSE(b->SetAttributes(FixedShare(0.6)).ok());
  EXPECT_TRUE(b->SetAttributes(FixedShare(0.5)).ok());
}

TEST(ContainerTest, IsSelfOrDescendant) {
  ContainerManager m;
  auto a = m.Create(nullptr, "a", FixedShare(0.5)).value();
  auto b = m.Create(a, "b", FixedShare(0.5)).value();
  auto c = m.Create(b, "c").value();
  EXPECT_TRUE(a->IsSelfOrDescendant(a.get()));
  EXPECT_TRUE(a->IsSelfOrDescendant(c.get()));
  EXPECT_FALSE(b->IsSelfOrDescendant(a.get()));
  EXPECT_TRUE(m.root()->IsSelfOrDescendant(c.get()));
}

TEST(ContainerTest, ForEachChildVisitsAll) {
  ContainerManager m;
  auto p = m.Create(nullptr, "p", FixedShare(0.5)).value();
  auto c1 = m.Create(p, "c1").value();
  auto c2 = m.Create(p, "c2").value();
  (void)c1;
  (void)c2;
  int count = 0;
  p->ForEachChild([&](ResourceContainer&) { ++count; });
  EXPECT_EQ(count, 2);
  EXPECT_FALSE(p->IsLeaf());
  EXPECT_TRUE(c1->IsLeaf());
}

}  // namespace
}  // namespace rc
