// Section 5.8 — isolation of virtual servers (the Rent-A-Server scenario).
//
// Three guest Web servers run on one machine, each under a top-level
// fixed-share container (50% / 30% / 20%). Client populations offer
// *unequal* demand; the paper observed that "the total CPU time consumed by
// each guest server exactly matched its allocation", with each guest free to
// subdivide its allocation among its own connections (the hierarchy is
// recursive: per-connection containers are children of the guest container).
#include <iostream>

#include "src/httpd/event_server.h"
#include "src/telemetry/bench_io.h"
#include "src/load/http_client.h"
#include "src/load/syn_flood.h"
#include "src/load/wire.h"
#include "src/xp/table.h"

namespace {

struct Guest {
  double share;
  std::uint16_t port;
  int clients;
  bool with_cgi;
};

}  // namespace

int main(int argc, char** argv) {
  telemetry::BenchReport report("virtual_servers", argc, argv);

  std::printf("=== Section 5.8: virtual-server isolation (fixed shares 50/30/20) ===\n\n");

  sim::Simulator simr;
  kernel::Kernel kern(&simr, kernel::ResourceContainerSystemConfig());
  load::Wire wire(&simr, &kern);
  kern.Start();

  httpd::FileCache cache;
  cache.AddDocument(1, 1024);

  const Guest guests[] = {
      {0.50, 80, 16, true},   // heavy static + CGI load
      {0.30, 81, 16, true},   // same offered load, smaller share
      {0.20, 82, 16, false},  // static-only tenant
  };

  std::vector<std::unique_ptr<httpd::EventDrivenServer>> servers;
  std::vector<std::unique_ptr<load::HttpClient>> clients;
  std::vector<rc::ContainerRef> guest_containers;
  std::uint32_t client_id = 1;

  for (std::size_t g = 0; g < std::size(guests); ++g) {
    rc::Attributes attrs;
    attrs.sched.cls = rc::SchedClass::kFixedShare;
    attrs.sched.fixed_share = guests[g].share;
    auto guest_ct =
        kern.containers().Create(nullptr, "guest" + std::to_string(g), attrs).value();
    guest_containers.push_back(guest_ct);

    httpd::ServerConfig scfg;
    scfg.port = guests[g].port;
    scfg.use_containers = true;
    scfg.use_event_api = true;
    scfg.nest_under_default = true;  // per-connection containers under the guest
    if (guests[g].with_cgi) {
      scfg.cgi_sandbox = true;
      scfg.cgi_share = 0.25;  // of the guest's own allocation
    }
    auto server = std::make_unique<httpd::EventDrivenServer>(&kern, &cache, scfg);
    server->Start(guest_ct);
    servers.push_back(std::move(server));

    for (int i = 0; i < guests[g].clients; ++i) {
      load::HttpClient::Config ccfg;
      ccfg.addr = net::Addr{net::MakeAddr(10, static_cast<unsigned>(10 + g), 0, 0).v +
                            static_cast<std::uint32_t>(i) + 1};
      ccfg.server_port = guests[g].port;
      clients.push_back(
          std::make_unique<load::HttpClient>(&simr, &wire, client_id++, ccfg));
    }
    if (guests[g].with_cgi) {
      load::HttpClient::Config cgi;
      cgi.addr = net::Addr{net::MakeAddr(10, static_cast<unsigned>(10 + g), 1, 0).v + 1};
      cgi.server_port = guests[g].port;
      cgi.is_cgi = true;
      cgi.cgi_cpu_usec = sim::Sec(2);
      clients.push_back(
          std::make_unique<load::HttpClient>(&simr, &wire, client_id++, cgi));
    }
  }

  for (auto& c : clients) {
    c->Start();
  }

  simr.RunUntil(sim::Sec(2));  // warm-up
  std::vector<rc::ResourceUsage> usage0;
  usage0.reserve(std::size(guests));
  for (auto& gc : guest_containers) {
    usage0.push_back(gc->SubtreeUsage());
  }
  const sim::SimTime t0 = simr.now();

  simr.RunUntil(t0 + sim::Sec(10));
  const sim::SimTime t1 = simr.now();

  xp::Table table({"guest", "configured share", "measured CPU share", "throughput req/s"});
  for (std::size_t g = 0; g < std::size(guests); ++g) {
    const rc::ResourceUsage u1 = guest_containers[g]->SubtreeUsage();
    const double used =
        static_cast<double>(u1.TotalCpuUsec() - usage0[g].TotalCpuUsec());
    const double share = used / static_cast<double>(t1 - t0);
    const double tput = static_cast<double>(servers[g]->stats().static_served) /
                        sim::ToSeconds(t1 - t0 + sim::Sec(2));
    const std::string config = "guest=" + std::to_string(g) + ",share=" +
                               xp::FormatDouble(guests[g].share, 2);
    report.Add("measured_cpu_share", 100 * share, "percent", config);
    report.Add("static_throughput", tput, "req/s", config);
    table.AddRow({"guest" + std::to_string(g),
                  xp::FormatDouble(100 * guests[g].share, 0) + "%",
                  xp::FormatDouble(100 * share, 1) + "%", xp::FormatDouble(tput, 0)});
  }
  table.Print(std::cout);
  std::printf(
      "\npaper: 'the total CPU time consumed by each guest server exactly\n"
      "matched its allocation'. Guests subdivide recursively (each runs its\n"
      "own CGI sand-box inside its share).\n");
  if (!report.Flush()) {
    std::fprintf(stderr, "failed to write %s\n", report.path().c_str());
    return 1;
  }
  return 0;
}
