#include "src/telemetry/json.h"

#include <cctype>
#include <charconv>
#include <cstdio>

namespace telemetry {

std::string EscapeJson(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

const JsonValue* JsonValue::Find(std::string_view key) const {
  if (type != Type::kObject) {
    return nullptr;
  }
  for (const auto& [k, v] : object) {
    if (k == key) {
      return &v;
    }
  }
  return nullptr;
}

double JsonValue::NumberOr(std::string_view key, double fallback) const {
  const JsonValue* v = Find(key);
  return v != nullptr && v->type == Type::kNumber ? v->number_value : fallback;
}

std::string JsonValue::StringOr(std::string_view key, std::string_view fallback) const {
  const JsonValue* v = Find(key);
  return v != nullptr && v->type == Type::kString ? v->string_value
                                                  : std::string(fallback);
}

namespace {

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  std::optional<JsonValue> Parse() {
    JsonValue v;
    if (!ParseValue(&v)) {
      return std::nullopt;
    }
    SkipSpace();
    if (pos_ != text_.size()) {
      return std::nullopt;  // trailing garbage
    }
    return v;
  }

 private:
  void SkipSpace() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  bool Consume(char c) {
    SkipSpace();
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool ConsumeLiteral(std::string_view lit) {
    if (text_.substr(pos_, lit.size()) == lit) {
      pos_ += lit.size();
      return true;
    }
    return false;
  }

  bool ParseValue(JsonValue* out) {
    SkipSpace();
    if (pos_ >= text_.size()) {
      return false;
    }
    switch (text_[pos_]) {
      case '{':
        return ParseObject(out);
      case '[':
        return ParseArray(out);
      case '"':
        out->type = JsonValue::Type::kString;
        return ParseString(&out->string_value);
      case 't':
        out->type = JsonValue::Type::kBool;
        out->bool_value = true;
        return ConsumeLiteral("true");
      case 'f':
        out->type = JsonValue::Type::kBool;
        out->bool_value = false;
        return ConsumeLiteral("false");
      case 'n':
        out->type = JsonValue::Type::kNull;
        return ConsumeLiteral("null");
      default:
        return ParseNumber(out);
    }
  }

  bool ParseObject(JsonValue* out) {
    out->type = JsonValue::Type::kObject;
    if (!Consume('{')) {
      return false;
    }
    SkipSpace();
    if (Consume('}')) {
      return true;
    }
    while (true) {
      SkipSpace();
      std::string key;
      if (!ParseString(&key) || !Consume(':')) {
        return false;
      }
      JsonValue v;
      if (!ParseValue(&v)) {
        return false;
      }
      out->object.emplace_back(std::move(key), std::move(v));
      if (Consume(',')) {
        continue;
      }
      return Consume('}');
    }
  }

  bool ParseArray(JsonValue* out) {
    out->type = JsonValue::Type::kArray;
    if (!Consume('[')) {
      return false;
    }
    SkipSpace();
    if (Consume(']')) {
      return true;
    }
    while (true) {
      JsonValue v;
      if (!ParseValue(&v)) {
        return false;
      }
      out->array.push_back(std::move(v));
      if (Consume(',')) {
        continue;
      }
      return Consume(']');
    }
  }

  bool ParseString(std::string* out) {
    if (pos_ >= text_.size() || text_[pos_] != '"') {
      return false;
    }
    ++pos_;
    out->clear();
    while (pos_ < text_.size()) {
      char c = text_[pos_++];
      if (c == '"') {
        return true;
      }
      if (c != '\\') {
        *out += c;
        continue;
      }
      if (pos_ >= text_.size()) {
        return false;
      }
      char esc = text_[pos_++];
      switch (esc) {
        case '"':
        case '\\':
        case '/':
          *out += esc;
          break;
        case 'n':
          *out += '\n';
          break;
        case 'r':
          *out += '\r';
          break;
        case 't':
          *out += '\t';
          break;
        case 'b':
          *out += '\b';
          break;
        case 'f':
          *out += '\f';
          break;
        case 'u': {
          if (pos_ + 4 > text_.size()) {
            return false;
          }
          unsigned code = 0;
          if (std::from_chars(text_.data() + pos_, text_.data() + pos_ + 4, code, 16)
                  .ec != std::errc{}) {
            return false;
          }
          pos_ += 4;
          // Telemetry output only escapes control characters; represent
          // anything in the BMP as UTF-8.
          if (code < 0x80) {
            *out += static_cast<char>(code);
          } else if (code < 0x800) {
            *out += static_cast<char>(0xC0 | (code >> 6));
            *out += static_cast<char>(0x80 | (code & 0x3F));
          } else {
            *out += static_cast<char>(0xE0 | (code >> 12));
            *out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
            *out += static_cast<char>(0x80 | (code & 0x3F));
          }
          break;
        }
        default:
          return false;
      }
    }
    return false;  // unterminated string
  }

  bool ParseNumber(JsonValue* out) {
    const std::size_t start = pos_;
    if (pos_ < text_.size() && (text_[pos_] == '-' || text_[pos_] == '+')) {
      ++pos_;
    }
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '-' || text_[pos_] == '+')) {
      ++pos_;
    }
    if (pos_ == start) {
      return false;
    }
    out->type = JsonValue::Type::kNumber;
    double value = 0.0;
    const auto result =
        std::from_chars(text_.data() + start, text_.data() + pos_, value);
    if (result.ec != std::errc{}) {
      return false;
    }
    out->number_value = value;
    return true;
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

}  // namespace

std::optional<JsonValue> ParseJson(std::string_view text) {
  return Parser(text).Parse();
}

}  // namespace telemetry
