file(REMOVE_RECURSE
  "librc_disk.a"
)
