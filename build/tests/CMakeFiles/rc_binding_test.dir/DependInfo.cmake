
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/rc_binding_test.cc" "tests/CMakeFiles/rc_binding_test.dir/rc_binding_test.cc.o" "gcc" "tests/CMakeFiles/rc_binding_test.dir/rc_binding_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/rc/CMakeFiles/rc_core.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/rc_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/rc_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
