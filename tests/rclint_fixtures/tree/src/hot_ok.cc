// Hot-path fixture, negative case: placement construction into recycled
// storage is the sanctioned pooled-allocation idiom, declared with a
// reasoned suppression.
#include <new>
#include <utility>
#include <vector>

#define RC_HOT_PATH

struct Event {
  int id = 0;
};

struct Pool {
  std::vector<void*> free_;

  RC_HOT_PATH Event* Create(int id) {
    void* block = free_.back();
    free_.pop_back();
    // rclint: allow(hotpath): placement construction into recycled storage —
    // no heap allocation.
    return new (block) Event{id};
  }
};
