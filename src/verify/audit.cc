#include "src/verify/audit.h"

#include <cstdio>

#include "src/common/check.h"
#include "src/telemetry/registry.h"

namespace verify {

namespace {

std::string Fmt(const char* format, long long a, long long b) {
  char buf[256];
  std::snprintf(buf, sizeof(buf), format, a, b);
  return std::string(buf);
}

}  // namespace

void ChargeAuditor::ObserveHierarchy(rc::ContainerManager* manager) {
  RC_CHECK_EQ(manager_, nullptr);
  RC_CHECK_NE(manager, nullptr);
  manager_ = manager;
  manager->AddLifecycleListener(this);
}

void ChargeAuditor::OnContainerDestroyed(rc::ResourceContainer& c) {
  auto it = tallies_.find(c.id());
  if (it == tallies_.end()) {
    return;  // never charged and no retired descendants
  }
  const rc::ResourceContainer* parent = c.parent();
  if (parent != nullptr) {
    // Mirror the kernel: a dying container's accumulated usage (direct and
    // already-retired) retires into its parent — for every resource.
    ContainerTally& up = tallies_[parent->id()];
    for (std::size_t k = 0; k < rc::kResourceKindCount; ++k) {
      up.retired[k] += it->second.direct[k] + it->second.retired[k];
    }
    // Bytes the dying container still held follow its usage record into
    // the parent's retired accounting.
    up.retired_resident += it->second.resident + it->second.retired_resident;
    if (up.name.empty()) {
      up.name = parent->name();
    }
  }
  tallies_.erase(it);
}

void ChargeAuditor::OnCharge(const rc::ResourceContainer& c, sim::Duration usec) {
  OnResourceCharge(rc::ResourceKind::kCpu, c, usec);
}

void ChargeAuditor::OnResourceCharge(rc::ResourceKind kind,
                                     const rc::ResourceContainer& c,
                                     sim::Duration usec) {
  ContainerTally& tally = tallies_[c.id()];
  tally.direct[KindIndex(kind)] += usec;
  if (tally.name.empty()) {
    tally.name = c.name();
  }
  ++charge_events_;
  if (kind == rc::ResourceKind::kCpu) {
    charged_total_ += usec;
  } else {
    device_charged_total_[KindIndex(kind)] += usec;
  }
  if (charge_counter_ != nullptr) {
    charge_counter_->Add();
    if (kind == rc::ResourceKind::kCpu) {
      usec_counter_->Add(static_cast<std::uint64_t>(usec));
    }
  }
}

void ChargeAuditor::OnSlice(int cpu, sim::Duration overhead, sim::Duration work) {
  CpuTally& tally = CpuAt(cpu);
  tally.busy += overhead + work;
  tally.overhead += overhead;
  tally.charged += work;
  engine_charged_total_ += work;
}

void ChargeAuditor::OnInterrupt(int cpu, sim::Duration cost, bool charged) {
  CpuTally& tally = CpuAt(cpu);
  tally.busy += cost;
  if (charged) {
    tally.charged += cost;
    engine_charged_total_ += cost;
  } else {
    tally.irq += cost;
  }
}

void ChargeAuditor::OnDeviceWork(rc::ResourceKind kind, sim::Duration busy,
                                 bool charged) {
  DeviceTally& tally = devices_[KindIndex(kind)];
  tally.busy += busy;
  if (charged) {
    tally.charged += busy;
  } else {
    tally.unowned += busy;
  }
}

void ChargeAuditor::OnMemoryCharge(const rc::ResourceContainer& c,
                                   std::int64_t bytes, rc::MemorySource source) {
  ContainerTally& tally = tallies_[c.id()];
  tally.resident += bytes;
  if (tally.name.empty()) {
    tally.name = c.name();
  }
  mem_resident_total_ += bytes;
  mem_by_source_[static_cast<std::size_t>(source)] += bytes;
}

void ChargeAuditor::OnMemoryRelease(const rc::ResourceContainer& c,
                                    std::int64_t bytes, rc::MemorySource source) {
  ContainerTally& tally = tallies_[c.id()];
  tally.resident -= bytes;
  mem_resident_total_ -= bytes;
  mem_by_source_[static_cast<std::size_t>(source)] -= bytes;
}

AuditFault ChargeAuditor::TakeFault() {
  const AuditFault f = fault_;
  fault_ = AuditFault::kNone;
  if (f != AuditFault::kNone) {
    ++faults_injected_;
    if (fault_counter_ != nullptr) {
      fault_counter_->Add();
    }
  }
  return f;
}

ChargeAuditor::CpuTally& ChargeAuditor::CpuAt(int cpu) {
  if (static_cast<std::size_t>(cpu) >= cpus_.size()) {
    cpus_.resize(static_cast<std::size_t>(cpu) + 1);
  }
  return cpus_[static_cast<std::size_t>(cpu)];
}

std::vector<std::string> ChargeAuditor::Check(
    const std::vector<CpuSample>& cpus, const std::vector<DeviceSample>& devices,
    const MemorySample* memory) const {
  std::vector<std::string> out;

  // 1. Per-CPU: busy + idle == wallclock, and the engine's busy counter
  //    matches the busy microseconds the auditor observed accruing.
  for (const CpuSample& s : cpus) {
    if (s.busy + s.idle != s.wallclock) {
      out.push_back("audit: cpu " + std::to_string(s.cpu) +
                    Fmt(": busy+idle %lld != wallclock %lld usec",
                        static_cast<long long>(s.busy + s.idle),
                        static_cast<long long>(s.wallclock)));
    }
    const CpuTally tally = static_cast<std::size_t>(s.cpu) < cpus_.size()
                               ? cpus_[static_cast<std::size_t>(s.cpu)]
                               : CpuTally{};
    if (tally.busy != s.busy) {
      out.push_back("audit: cpu " + std::to_string(s.cpu) +
                    Fmt(": engine busy %lld != audited busy %lld usec",
                        static_cast<long long>(s.busy),
                        static_cast<long long>(tally.busy)));
    }
    // 2. Every busy microsecond lands in exactly one bucket: container
    //    charge, machine interrupt overhead, or context-switch overhead.
    const sim::Duration accounted = tally.charged + tally.irq + tally.overhead;
    if (accounted != tally.busy) {
      out.push_back("audit: cpu " + std::to_string(s.cpu) +
                    Fmt(": accounted %lld != busy %lld usec",
                        static_cast<long long>(accounted),
                        static_cast<long long>(tally.busy)));
    }
  }

  // 1b. Per device (disk, transmit link): the same conservation story. Busy
  //     and idle partition the device's wallclock, the device's own busy
  //     counter matches the audited service intervals, and every busy
  //     microsecond was either charged to a container or explicitly unowned.
  for (const DeviceSample& s : devices) {
    const char* dev = rc::ResourceKindName(s.kind);
    if (s.busy + s.idle != s.wallclock) {
      out.push_back(std::string("audit: device ") + dev +
                    Fmt(": busy+idle %lld != wallclock %lld usec",
                        static_cast<long long>(s.busy + s.idle),
                        static_cast<long long>(s.wallclock)));
    }
    const DeviceTally& tally = devices_[KindIndex(s.kind)];
    if (tally.busy != s.busy) {
      out.push_back(std::string("audit: device ") + dev +
                    Fmt(": engine busy %lld != audited busy %lld usec",
                        static_cast<long long>(s.busy),
                        static_cast<long long>(tally.busy)));
    }
    if (tally.charged + tally.unowned != tally.busy) {
      out.push_back(std::string("audit: device ") + dev +
                    Fmt(": accounted %lld != busy %lld usec",
                        static_cast<long long>(tally.charged + tally.unowned),
                        static_cast<long long>(tally.busy)));
    }
    // Device-side charged intervals match the container-side charge path.
    if (tally.charged != device_charged_total_[KindIndex(s.kind)]) {
      out.push_back(std::string("audit: device ") + dev +
                    Fmt(": engine charged %lld usec but the container charge "
                        "path recorded %lld usec",
                        static_cast<long long>(tally.charged),
                        static_cast<long long>(
                            device_charged_total_[KindIndex(s.kind)])));
    }
  }

  // 3. Engine-side charges and kernel-side charges agree: every microsecond
  //    an engine handed to Kernel::ChargeCpu arrived exactly once.
  if (engine_charged_total_ != charged_total_) {
    out.push_back(Fmt("audit: engines charged %lld usec but the kernel charge "
                      "path recorded %lld usec",
                      static_cast<long long>(engine_charged_total_),
                      static_cast<long long>(charged_total_)));
  }

  if (manager_ == nullptr) {
    return out;
  }

  // 4. Per-container and per-resource: the kernel's usage records match the
  //    audit tallies, both for direct charges and for usage retired from
  //    destroyed children. A dropped or duplicated charge shows up here,
  //    naming the container and resource involved.
  std::array<sim::Duration, rc::kResourceKindCount> tally_sum{};
  std::int64_t resident_sum = 0;
  manager_->ForEachLive([&](rc::ResourceContainer& c) {
    auto it = tallies_.find(c.id());
    const ContainerTally tally =
        it != tallies_.end() ? it->second : ContainerTally{};
    // 4m. Resident-byte occupancy matches the kernel's usage record, for
    //     held bytes and for bytes retired from destroyed children. Only
    //     meaningful when a memory sample is provided (broker attached);
    //     without one the kernel may be charging memory outside the audited
    //     path (standalone managers).
    if (memory != nullptr) {
      resident_sum += tally.resident + tally.retired_resident;
      if (c.usage().memory_bytes != tally.resident) {
        out.push_back("audit: container '" + c.name() + "' (id " +
                      std::to_string(c.id()) +
                      Fmt(") memory: usage records %lld resident bytes but "
                          "%lld bytes were charged",
                          static_cast<long long>(c.usage().memory_bytes),
                          static_cast<long long>(tally.resident)));
      }
      if (c.retired_usage().memory_bytes != tally.retired_resident) {
        out.push_back("audit: container '" + c.name() + "' (id " +
                      std::to_string(c.id()) +
                      Fmt(") memory: retired usage %lld bytes but audit "
                          "retired %lld bytes",
                          static_cast<long long>(c.retired_usage().memory_bytes),
                          static_cast<long long>(tally.retired_resident)));
      }
    }
    for (std::size_t k = 0; k < rc::kResourceKindCount; ++k) {
      const rc::ResourceKind kind = static_cast<rc::ResourceKind>(k);
      tally_sum[k] += tally.direct[k] + tally.retired[k];
      const sim::Duration direct = c.usage().BusyUsecFor(kind);
      if (direct != tally.direct[k]) {
        out.push_back("audit: container '" + c.name() + "' (id " +
                      std::to_string(c.id()) + ") " + rc::ResourceKindName(kind) +
                      Fmt(": usage records %lld usec but %lld usec were charged",
                          static_cast<long long>(direct),
                          static_cast<long long>(tally.direct[k])));
      }
      const sim::Duration retired = c.retired_usage().BusyUsecFor(kind);
      if (retired != tally.retired[k]) {
        out.push_back("audit: container '" + c.name() + "' (id " +
                      std::to_string(c.id()) + ") " + rc::ResourceKindName(kind) +
                      Fmt(": retired usage %lld usec but audit retired %lld usec",
                          static_cast<long long>(retired),
                          static_cast<long long>(tally.retired[k])));
      }
    }
  });

  // 5. Hierarchy conservation: the root subtree (parents fold in children
  //    and retired usage) accounts for every charged microsecond of every
  //    resource, no more, no less.
  const rc::ResourceUsage subtree = manager_->root()->SubtreeUsage();
  for (std::size_t k = 0; k < rc::kResourceKindCount; ++k) {
    const rc::ResourceKind kind = static_cast<rc::ResourceKind>(k);
    const sim::Duration charged = kind == rc::ResourceKind::kCpu
                                      ? charged_total_
                                      : device_charged_total_[k];
    const sim::Duration recorded = subtree.BusyUsecFor(kind);
    if (recorded != charged) {
      out.push_back(std::string("audit: root subtree ") +
                    rc::ResourceKindName(kind) +
                    Fmt(" records %lld usec but %lld usec were charged "
                        "machine-wide",
                        static_cast<long long>(recorded),
                        static_cast<long long>(charged)));
    }
    if (tally_sum[k] != charged) {
      out.push_back(std::string("audit: live container ") +
                    rc::ResourceKindName(kind) +
                    Fmt(" tallies sum to %lld usec but %lld usec were charged "
                        "(a destroyed container leaked its usage)",
                        static_cast<long long>(tally_sum[k]),
                        static_cast<long long>(charged)));
    }
  }

  // 6. Resident-byte conservation: Σ per-container resident (live + retired)
  //    == the audited machine total == the broker's running total == what
  //    the kernel objects actually hold, and the per-source split matches
  //    each holder exactly. A byte charged twice, released twice, or
  //    stranded by a teardown path shows up here.
  if (memory != nullptr) {
    if (resident_sum != mem_resident_total_) {
      out.push_back(Fmt("audit: memory: container tallies sum to %lld resident "
                        "bytes but %lld bytes are charged machine-wide",
                        static_cast<long long>(resident_sum),
                        static_cast<long long>(mem_resident_total_)));
    }
    if (memory->broker_resident != mem_resident_total_) {
      out.push_back(Fmt("audit: memory: broker total %lld bytes != audited "
                        "total %lld bytes",
                        static_cast<long long>(memory->broker_resident),
                        static_cast<long long>(mem_resident_total_)));
    }
    std::int64_t by_source = 0;
    for (std::size_t s = 0; s < rc::kMemorySourceCount; ++s) {
      by_source += mem_by_source_[s];
    }
    if (by_source != mem_resident_total_) {
      out.push_back(Fmt("audit: memory: per-source tallies sum to %lld bytes "
                        "but %lld bytes are resident",
                        static_cast<long long>(by_source),
                        static_cast<long long>(mem_resident_total_)));
    }
    const std::int64_t cache_tally =
        mem_by_source_[static_cast<std::size_t>(rc::MemorySource::kFileCache)];
    if (memory->cache_resident != cache_tally) {
      out.push_back(Fmt("audit: memory: reclaimers hold %lld bytes but %lld "
                        "file-cache bytes were charged",
                        static_cast<long long>(memory->cache_resident),
                        static_cast<long long>(cache_tally)));
    }
    const std::int64_t conn_tally =
        mem_by_source_[static_cast<std::size_t>(rc::MemorySource::kConnection)];
    if (memory->connection_bytes != conn_tally) {
      out.push_back(Fmt("audit: memory: the stack holds %lld connection bytes "
                        "but %lld were charged",
                        static_cast<long long>(memory->connection_bytes),
                        static_cast<long long>(conn_tally)));
    }
  }

  return out;
}

void ChargeAuditor::AttachTelemetry(telemetry::Registry* registry) {
  if (registry == nullptr) {
    charge_counter_ = usec_counter_ = fault_counter_ = nullptr;
    return;
  }
  charge_counter_ = registry->GetCounter("audit.charge_events", "events");
  usec_counter_ = registry->GetCounter("audit.charged_usec", "usec");
  fault_counter_ = registry->GetCounter("audit.faults_injected", "faults");
}

}  // namespace verify
