// End-to-end tests of the syscall layer: container operations (the Table 1
// primitives), socket syscalls driven by crafted wire packets, event waiting,
// process management, and descriptor passing.
#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "src/kernel/kernel.h"
#include "src/kernel/sync.h"
#include "src/kernel/syscalls.h"

namespace kernel {
namespace {

using rccommon::Errc;

class SyscallTest : public ::testing::Test {
 protected:
  void MakeKernel(KernelConfig cfg = ResourceContainerSystemConfig()) {
    kernel_ = std::make_unique<Kernel>(&simr_, cfg);
    kernel_->set_wire_sink([this](const net::Packet& p) { wire_.push_back(p); });
  }

  // Runs `body` on a fresh process until the simulator reaches `until`.
  Process* Run(std::function<Program(Sys)> body, sim::Duration until = sim::Sec(1)) {
    Process* p = kernel_->CreateProcess("test");
    kernel_->SpawnThread(p, "main", std::move(body));
    simr_.RunUntil(simr_.now() + until);
    return p;
  }

  void Deliver(net::Packet p) { kernel_->DeliverFromWire(p); }

  net::Packet Syn(std::uint64_t flow, net::Addr src = net::MakeAddr(10, 1, 0, 1)) {
    net::Packet p;
    p.type = net::PacketType::kSyn;
    p.src = net::Endpoint{src, 1234};
    p.dst = net::Endpoint{net::Addr{0}, 80};
    p.flow_id = flow;
    return p;
  }
  net::Packet Ack(std::uint64_t flow, net::Addr src = net::MakeAddr(10, 1, 0, 1)) {
    net::Packet p = Syn(flow, src);
    p.type = net::PacketType::kAck;
    return p;
  }
  net::Packet Request(std::uint64_t flow, net::Addr src = net::MakeAddr(10, 1, 0, 1)) {
    net::Packet p = Syn(flow, src);
    p.type = net::PacketType::kData;
    p.request.request_id = flow;
    p.request.response_bytes = 512;
    return p;
  }

  // Client-side handshake + request, delivered over the wire at fixed delays.
  void ConnectAndRequest(std::uint64_t flow) {
    simr_.After(10, [this, flow] { Deliver(Syn(flow)); });
    simr_.After(500, [this, flow] { Deliver(Ack(flow)); });
    simr_.After(700, [this, flow] { Deliver(Request(flow)); });
  }

  sim::Simulator simr_;
  std::unique_ptr<Kernel> kernel_;
  std::vector<net::Packet> wire_;
};

TEST_F(SyscallTest, CreateContainerReturnsDescriptor) {
  MakeKernel();
  rccommon::Expected<int> fd = rccommon::MakeUnexpected(Errc::kNotFound);
  Run([&](Sys sys) -> Program { fd = co_await sys.CreateContainer("web"); });
  ASSERT_TRUE(fd.ok());
  EXPECT_GE(*fd, 0);
  // Container alive: held by the process descriptor table.
  EXPECT_EQ(kernel_->containers().live_count(), 3u);  // root + proc default + web
}

TEST_F(SyscallTest, CloseFdReleasesContainer) {
  MakeKernel();
  Run([&](Sys sys) -> Program {
    auto fd = co_await sys.CreateContainer("temp");
    co_await sys.CloseFd(*fd);
  });
  EXPECT_EQ(kernel_->containers().live_count(), 2u);  // root + proc default
}

TEST_F(SyscallTest, BindThreadChargesNewContainer) {
  MakeKernel();
  rc::ResourceUsage usage;
  Run([&](Sys sys) -> Program {
    auto fd = co_await sys.CreateContainer("work");
    co_await sys.BindThread(*fd);
    co_await sys.Compute(1000, rc::CpuKind::kUser);
    usage = (co_await sys.GetUsage(*fd)).value();
  });
  EXPECT_EQ(usage.cpu_user_usec, 1000);
}

TEST_F(SyscallTest, BindThreadRejectsNonLeaf) {
  MakeKernel();
  rccommon::Errc err = Errc::kOk;
  Run([&](Sys sys) -> Program {
    rc::Attributes fs;
    fs.sched.cls = rc::SchedClass::kFixedShare;
    fs.sched.fixed_share = 0.5;
    auto parent = co_await sys.CreateContainer("parent", fs);
    auto child = co_await sys.CreateContainer("child", {}, *parent);
    (void)child;
    auto bound = co_await sys.BindThread(*parent);
    err = bound.error();
  });
  EXPECT_EQ(err, Errc::kNotLeaf);
}

TEST_F(SyscallTest, GetSubtreeUsageAggregates) {
  MakeKernel();
  rc::ResourceUsage subtree;
  Run([&](Sys sys) -> Program {
    rc::Attributes fs;
    fs.sched.cls = rc::SchedClass::kFixedShare;
    fs.sched.fixed_share = 0.5;
    auto parent = co_await sys.CreateContainer("parent", fs);
    auto child = co_await sys.CreateContainer("child", {}, *parent);
    co_await sys.BindThread(*child);
    co_await sys.Compute(500, rc::CpuKind::kUser);
    subtree = (co_await sys.GetSubtreeUsage(*parent)).value();
  });
  EXPECT_EQ(subtree.cpu_user_usec, 500);
}

TEST_F(SyscallTest, SetAndGetAttributes) {
  MakeKernel();
  rc::Attributes read_back;
  Run([&](Sys sys) -> Program {
    auto fd = co_await sys.CreateContainer("c");
    rc::Attributes a;
    a.sched.priority = 42;
    a.cpu_limit = 0.5;
    co_await sys.SetAttributes(*fd, a);
    read_back = (co_await sys.GetAttributes(*fd)).value();
  });
  EXPECT_EQ(read_back.sched.priority, 42);
  EXPECT_DOUBLE_EQ(read_back.cpu_limit, 0.5);
}

TEST_F(SyscallTest, GetContainerHandleById) {
  MakeKernel();
  bool same = false;
  Run([&](Sys sys) -> Program {
    auto fd = co_await sys.CreateContainer("c");
    auto attrs1 = (co_await sys.GetAttributes(*fd)).value();
    // Find the id via the process fd table, then reopen a handle.
    rc::ContainerRef c = sys.process()->fds().Get<rc::ContainerRef>(*fd);
    auto fd2 = co_await sys.GetContainerHandle(c->id());
    rc::ContainerRef c2 = sys.process()->fds().Get<rc::ContainerRef>(*fd2);
    same = (c == c2);
    (void)attrs1;
  });
  EXPECT_TRUE(same);
}

TEST_F(SyscallTest, PassContainerSharesWithTargetProcess) {
  MakeKernel();
  // Process B just sleeps; A passes it a container.
  Process* b = kernel_->CreateProcess("b");
  kernel_->SpawnThread(b, "main", [](Sys sys) -> Program {
    co_await sys.Sleep(sim::Msec(100));
  });
  bool ok = false;
  int remote_fd = -1;
  Pid b_pid = b->pid();
  Run([&](Sys sys) -> Program {
    auto fd = co_await sys.CreateContainer("shared");
    auto passed = co_await sys.PassContainer(b_pid, *fd);
    ok = passed.ok();
    remote_fd = passed.value_or(-1);
    // The sender retains access.
    auto still = co_await sys.GetAttributes(*fd);
    ok = ok && still.ok();
  });
  EXPECT_TRUE(ok);
  EXPECT_GE(remote_fd, 0);
}

TEST_F(SyscallTest, ResetSchedulerBindingShrinksSet) {
  MakeKernel();
  std::size_t before = 0;
  std::size_t after = 0;
  Run([&](Sys sys) -> Program {
    auto a = co_await sys.CreateContainer("a");
    auto b = co_await sys.CreateContainer("b");
    co_await sys.BindThread(*a);
    co_await sys.BindThread(*b);
    before = sys.thread()->binding().scheduler_binding().size();
    co_await sys.ResetSchedulerBinding();
    after = sys.thread()->binding().scheduler_binding().size();
  });
  EXPECT_GE(before, 3u);  // default + a + b
  EXPECT_EQ(after, 1u);
}

TEST_F(SyscallTest, ListenAcceptRecvSendLifecycle) {
  MakeKernel();
  bool got_request = false;
  std::uint32_t bytes = 0;
  Run([&](Sys sys) -> Program {
    auto lfd = co_await sys.Listen(80, net::kMatchAll);
    auto cfd = co_await sys.Accept(*lfd);  // blocks for the handshake
    auto req = co_await sys.Recv(*cfd);    // blocks for the request
    got_request = req.ok() && !req->eof;
    bytes = req->request.response_bytes;
    co_await sys.Send(*cfd, bytes, req->request.request_id, /*close_after=*/true);
    co_await sys.ReleaseFd(*cfd);
  });
  ConnectAndRequest(7);
  simr_.RunUntil(simr_.now() + sim::Sec(1));
  EXPECT_TRUE(got_request);
  EXPECT_EQ(bytes, 512u);
  // Wire saw: SYN-ACK, response DATA, FIN.
  ASSERT_GE(wire_.size(), 3u);
  EXPECT_EQ(wire_.front().type, net::PacketType::kSynAck);
  EXPECT_EQ(wire_.back().type, net::PacketType::kFin);
}

TEST_F(SyscallTest, TryAcceptWouldBlock) {
  MakeKernel();
  rccommon::Errc err = Errc::kOk;
  Run([&](Sys sys) -> Program {
    auto lfd = co_await sys.Listen(80, net::kMatchAll);
    auto r = co_await sys.TryAccept(*lfd);
    err = r.error();
  });
  EXPECT_EQ(err, Errc::kWouldBlock);
}

TEST_F(SyscallTest, RecvReportsEofAfterFin) {
  MakeKernel();
  bool eof = false;
  Run([&](Sys sys) -> Program {
    auto lfd = co_await sys.Listen(80, net::kMatchAll);
    auto cfd = co_await sys.Accept(*lfd);
    auto req = co_await sys.Recv(*cfd);  // first: the request
    (void)req;
    auto second = co_await sys.Recv(*cfd);  // then the FIN
    eof = second.ok() && second->eof;
    co_await sys.CloseFd(*cfd);
  });
  ConnectAndRequest(9);
  simr_.After(900, [this] {
    net::Packet fin = Syn(9);
    fin.type = net::PacketType::kFin;
    Deliver(fin);
  });
  simr_.RunUntil(simr_.now() + sim::Sec(1));
  EXPECT_TRUE(eof);
}

TEST_F(SyscallTest, SelectReturnsReadyDescriptors) {
  MakeKernel();
  std::vector<int> ready;
  int lfd_out = -1;
  Run([&](Sys sys) -> Program {
    auto lfd = co_await sys.Listen(80, net::kMatchAll);
    lfd_out = *lfd;
    std::vector<int> interest(1, *lfd);  // GCC 12: no init-lists in co_await args
    ready = co_await sys.Select(interest);
  });
  ConnectAndRequest(11);
  simr_.RunUntil(simr_.now() + sim::Sec(1));
  ASSERT_EQ(ready.size(), 1u);
  EXPECT_EQ(ready[0], lfd_out);
}

TEST_F(SyscallTest, EventApiDeliversAcceptAndData) {
  MakeKernel();
  std::vector<Event::Kind> kinds;
  Run([&](Sys sys) -> Program {
    auto lfd = co_await sys.Listen(80, net::kMatchAll);
    co_await sys.EventRegister(*lfd);
    auto events = co_await sys.WaitEvents();
    for (const Event& e : events) {
      kinds.push_back(e.kind);
    }
    auto cfd = co_await sys.TryAccept(*lfd);
    co_await sys.EventRegister(*cfd);  // request may already be queued
    auto more = co_await sys.WaitEvents();
    for (const Event& e : more) {
      kinds.push_back(e.kind);
    }
  });
  ConnectAndRequest(13);
  simr_.RunUntil(simr_.now() + sim::Sec(1));
  ASSERT_GE(kinds.size(), 2u);
  EXPECT_EQ(kinds[0], Event::Kind::kAcceptReady);
  EXPECT_EQ(kinds[1], Event::Kind::kDataReady);
}

TEST_F(SyscallTest, SpawnAndWaitProcess) {
  MakeKernel();
  bool child_ran = false;
  bool wait_ok = false;
  Run([&](Sys sys) -> Program {
    auto pid = co_await sys.Spawn("child", [&child_ran](Sys child) -> Program {
      co_await child.Compute(100, rc::CpuKind::kUser);
      child_ran = true;
    });
    auto waited = co_await sys.WaitProcess(*pid);
    wait_ok = waited.ok();
  });
  EXPECT_TRUE(child_ran);
  EXPECT_TRUE(wait_ok);
  // Child reaped: only the "test" process remains.
  EXPECT_EQ(kernel_->process_count(), 1u);
}

TEST_F(SyscallTest, DetachedChildAutoReaps) {
  MakeKernel();
  Run([&](Sys sys) -> Program {
    SpawnOptions opts;
    opts.detach = true;
    auto pid = co_await sys.Spawn(
        "fire-and-forget",
        [](Sys child) -> Program { co_await child.Compute(50, rc::CpuKind::kUser); },
        opts);
    (void)pid;
    co_await sys.Sleep(sim::Msec(10));
  });
  EXPECT_EQ(kernel_->process_count(), 1u);
}

TEST_F(SyscallTest, SpawnInheritsContainerByDescriptor) {
  MakeKernel();
  sim::Duration charged = 0;
  Run([&](Sys sys) -> Program {
    auto ct = co_await sys.CreateContainer("sandbox");
    SpawnOptions opts;
    opts.container_fd = *ct;
    auto pid = co_await sys.Spawn(
        "child",
        [](Sys child) -> Program { co_await child.Compute(777, rc::CpuKind::kUser); },
        opts);
    co_await sys.WaitProcess(*pid);
    charged = (co_await sys.GetUsage(*ct)).value().cpu_user_usec;
  });
  EXPECT_EQ(charged, 777);
}

TEST_F(SyscallTest, PassFdSharesConnection) {
  MakeKernel();
  // Parent accepts, passes the connection to a child, child responds.
  bool child_sent = false;
  Run([&](Sys sys) -> Program {
    auto lfd = co_await sys.Listen(80, net::kMatchAll);
    auto cfd = co_await sys.Accept(*lfd);
    SpawnOptions opts;
    opts.pass_fds = {*cfd};
    opts.detach = true;
    auto pid = co_await sys.Spawn("responder", [&child_sent](Sys child) -> Program {
      auto req = co_await child.Recv(0);
      if (req.ok() && !req->eof) {
        co_await child.Send(0, 128, req->request.request_id, true);
        child_sent = true;
      }
    }, opts);
    (void)pid;
    co_await sys.ReleaseFd(*cfd);
  });
  ConnectAndRequest(21);
  simr_.RunUntil(simr_.now() + sim::Sec(1));
  EXPECT_TRUE(child_sent);
}

TEST_F(SyscallTest, BindSocketChargesConnectionContainer) {
  MakeKernel();
  std::uint64_t sent_bytes = 0;
  Run([&](Sys sys) -> Program {
    auto lfd = co_await sys.Listen(80, net::kMatchAll);
    auto cfd = co_await sys.Accept(*lfd);
    auto ct = co_await sys.CreateContainer("conn");
    co_await sys.BindSocket(*cfd, *ct);
    auto req = co_await sys.Recv(*cfd);
    co_await sys.Send(*cfd, 2048, req->request.request_id, false);
    sent_bytes = (co_await sys.GetUsage(*ct)).value().bytes_sent;
  });
  ConnectAndRequest(23);
  simr_.RunUntil(simr_.now() + sim::Sec(1));
  EXPECT_EQ(sent_bytes, 2048u);
}

TEST_F(SyscallTest, SemaphorePostWakesWaiter) {
  MakeKernel();
  Semaphore sem;
  std::vector<int> order;
  Process* p = kernel_->CreateProcess("sync");
  kernel_->SpawnThread(p, "waiter", [&](Sys sys) -> Program {
    order.push_back(1);
    co_await sem.Wait(sys);
    order.push_back(3);
  });
  kernel_->SpawnThread(p, "poster", [&](Sys sys) -> Program {
    co_await sys.Sleep(sim::Msec(5));
    order.push_back(2);
    sem.Post();
  });
  simr_.RunUntil(sim::Msec(50));
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST_F(SyscallTest, SemaphoreCountsWithoutWaiters) {
  MakeKernel();
  Semaphore sem;
  sem.Post();
  sem.Post();
  EXPECT_EQ(sem.count(), 2);
  bool done = false;
  Run([&](Sys sys) -> Program {
    co_await sem.Wait(sys);
    co_await sem.Wait(sys);
    done = true;
  });
  EXPECT_TRUE(done);
  EXPECT_EQ(sem.count(), 0);
}

TEST_F(SyscallTest, SynDropReportAccumulatesBySource) {
  MakeKernel();
  Kernel::SynDropReport report;
  // Four SYNs into a backlog of 2: two evictions from 10.9.9.0/24. Scheduled
  // before Run() so they arrive while the program is sleeping.
  for (int i = 0; i < 4; ++i) {
    simr_.After(1000 + i, [this, i] {
      Deliver(Syn(100 + static_cast<std::uint64_t>(i),
                  net::MakeAddr(10, 9, 9, static_cast<unsigned>(i + 1))));
    });
  }
  Run([&](Sys sys) -> Program {
    auto lfd = co_await sys.Listen(80, net::kMatchAll, -1, /*syn_backlog=*/2);
    co_await sys.Sleep(sim::Msec(50));
    report = (co_await sys.GetSynDropReport(*lfd)).value();
  });
  EXPECT_EQ(report.total, 2u);
  ASSERT_EQ(report.sources.size(), 1u);
  EXPECT_EQ(report.sources[0].prefix.v, net::MakeAddr(10, 9, 9, 0).v);
}

TEST_F(SyscallTest, SyscallsOnBadDescriptorsFail) {
  MakeKernel();
  std::vector<rccommon::Errc> errs;
  Run([&](Sys sys) -> Program {
    errs.push_back((co_await sys.BindThread(99)).error());
    errs.push_back((co_await sys.GetUsage(99)).error());
    errs.push_back((co_await sys.CloseFd(99)).error());
    errs.push_back((co_await sys.Accept(99)).error());
    errs.push_back((co_await sys.Recv(99)).error());
    errs.push_back((co_await sys.Send(99, 10, 0, false)).error());
  });
  for (auto e : errs) {
    EXPECT_EQ(e, Errc::kNotFound);
  }
  EXPECT_EQ(errs.size(), 6u);
}

TEST_F(SyscallTest, NetThreadSpawnedOnlyInDeferredModes) {
  MakeKernel(UnmodifiedSystemConfig());
  Process* p = Run([](Sys sys) -> Program {
    auto lfd = co_await sys.Listen(80, net::kMatchAll);
    (void)lfd;
    co_await sys.Sleep(sim::Msec(1));
  });
  EXPECT_EQ(p->net_thread, nullptr);

  MakeKernel(LrpSystemConfig());
  Process* q = Run([](Sys sys) -> Program {
    auto lfd = co_await sys.Listen(80, net::kMatchAll);
    (void)lfd;
    co_await sys.Sleep(sim::Msec(1));
  });
  EXPECT_NE(q->net_thread, nullptr);
}

}  // namespace
}  // namespace kernel

namespace kernel {
namespace close_listen_tests {

TEST(CloseListenTest, BlockedAcceptorObservesClosure) {
  sim::Simulator simr;
  Kernel kern(&simr, UnmodifiedSystemConfig());
  rccommon::Errc accept_err = rccommon::Errc::kOk;

  Process* p = kern.CreateProcess("server");
  int lfd = -1;
  kern.SpawnThread(p, "acceptor", [&](Sys sys) -> Program {
    auto l = co_await sys.Listen(80, net::kMatchAll);
    lfd = *l;
    auto conn = co_await sys.Accept(*l);  // blocks; nothing ever connects
    accept_err = conn.error();
  });
  kern.SpawnThread(p, "closer", [&](Sys sys) -> Program {
    co_await sys.Sleep(sim::Msec(10));
    co_await sys.CloseFd(lfd);
  });
  simr.RunUntil(sim::Sec(1));
  EXPECT_EQ(accept_err, rccommon::Errc::kWrongState);
  EXPECT_TRUE(p->zombie());  // both threads finished; no hang
}

}  // namespace close_listen_tests
}  // namespace kernel
