# Empty compiler generated dependencies file for billing.
# This may be replaced when dependencies are built.
