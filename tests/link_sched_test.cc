// Tests for the rate-limited, container-scheduled transmit link.
#include <vector>

#include <gtest/gtest.h>

#include "src/net/link_sched.h"
#include "src/rc/manager.h"
#include "src/sim/simulator.h"

namespace net {
namespace {

Packet MakePacket(std::uint32_t bytes) {
  Packet p;
  p.size_bytes = bytes;
  return p;
}

class LinkSchedTest : public ::testing::Test {
 protected:
  LinkScheduler MakeLink(double mbps) {
    LinkConfig cfg;
    cfg.mbps = mbps;
    return LinkScheduler(&simr_, &manager_, cfg);
  }

  sim::Simulator simr_;
  rc::ContainerManager manager_;
};

TEST_F(LinkSchedTest, DisabledLinkPassesThroughSynchronously) {
  LinkScheduler link = MakeLink(0.0);
  int delivered = 0;
  link.set_sink([&](const Packet&) { ++delivered; });
  link.Transmit(MakePacket(1500), nullptr);
  // No events, no queueing, no charges: the packet reached the sink already.
  EXPECT_EQ(delivered, 1);
  EXPECT_FALSE(link.busy());
  EXPECT_EQ(link.queued(), 0);
  EXPECT_EQ(link.stats().packets, 0u);
}

TEST_F(LinkSchedTest, TxTimeMatchesRate) {
  LinkScheduler link = MakeLink(10.0);  // 10 Mbps = 10 bits/usec
  EXPECT_EQ(link.TxTime(1250), 1000);   // 10000 bits / 10
  EXPECT_EQ(link.TxTime(1), 1);         // rounds up to at least 1 usec
}

TEST_F(LinkSchedTest, SerializesPacketsAtLinkRate) {
  LinkScheduler link = MakeLink(10.0);
  std::vector<sim::SimTime> delivered_at;
  link.set_sink([&](const Packet&) { delivered_at.push_back(simr_.now()); });
  link.Transmit(MakePacket(1250), nullptr);  // 1000 usec each
  link.Transmit(MakePacket(1250), nullptr);
  EXPECT_TRUE(link.busy());
  EXPECT_EQ(link.queued(), 1);
  simr_.RunUntilIdle();
  ASSERT_EQ(delivered_at.size(), 2u);
  EXPECT_EQ(delivered_at[0], 1000);
  EXPECT_EQ(delivered_at[1], 2000);
  EXPECT_EQ(link.stats().packets, 2u);
  EXPECT_EQ(link.stats().busy_usec, 2000);
  EXPECT_EQ(link.stats().bytes_sent, 2500u);
}

TEST_F(LinkSchedTest, ChargesContainerForWireTime) {
  LinkScheduler link = MakeLink(10.0);
  link.set_sink([](const Packet&) {});
  auto c = manager_.Create(nullptr, "c").value();
  link.Transmit(MakePacket(1250), c);
  simr_.RunUntilIdle();
  EXPECT_EQ(c->usage().link_busy_usec, 1000);
  EXPECT_EQ(c->usage().link_packets, 1u);
}

TEST_F(LinkSchedTest, FixedSharesSplitBandwidthUnderSaturation) {
  LinkScheduler link = MakeLink(100.0);
  link.set_sink([](const Packet&) {});

  auto make = [&](const char* name, double share) {
    rc::Attributes a;
    a.link.override_sched = true;
    a.link.sched.cls = rc::SchedClass::kFixedShare;
    a.link.sched.fixed_share = share;
    return manager_.Create(nullptr, name, a).value();
  };
  auto c50 = make("c50", 0.5);
  auto c30 = make("c30", 0.3);
  auto c20 = make("c20", 0.2);

  // Keep every container's queue saturated for one simulated second.
  for (int i = 0; i < 1200; ++i) {
    link.Transmit(MakePacket(12500), c50);  // 1000 usec each at 100 Mbps
    link.Transmit(MakePacket(12500), c30);
    link.Transmit(MakePacket(12500), c20);
  }
  simr_.RunUntil(sim::Sec(1));

  const double total = static_cast<double>(c50->usage().link_busy_usec +
                                           c30->usage().link_busy_usec +
                                           c20->usage().link_busy_usec);
  ASSERT_GT(total, 0.0);
  EXPECT_NEAR(static_cast<double>(c50->usage().link_busy_usec) / total, 0.50, 0.02);
  EXPECT_NEAR(static_cast<double>(c30->usage().link_busy_usec) / total, 0.30, 0.02);
  EXPECT_NEAR(static_cast<double>(c20->usage().link_busy_usec) / total, 0.20, 0.02);
}

TEST_F(LinkSchedTest, LinkLimitThrottlesSubtree) {
  LinkConfig cfg;
  cfg.mbps = 100.0;
  cfg.limit_window = 10000;
  LinkScheduler link(&simr_, &manager_, cfg);
  int delivered = 0;
  link.set_sink([&](const Packet&) { ++delivered; });

  rc::Attributes a;
  a.link.limit = 0.1;  // 10% of the link per window
  auto limited = manager_.Create(nullptr, "limited", a).value();

  // 5 packets of 1000 usec each, against a 1000-usec budget per 10 ms
  // window: roughly one packet per window makes it out.
  for (int i = 0; i < 5; ++i) {
    link.Transmit(MakePacket(12500), limited);
  }
  simr_.RunUntil(10000);
  EXPECT_TRUE(link.IsThrottled(*limited, 5000));
  EXPECT_LE(delivered, 2);
  simr_.RunUntil(sim::Sec(1));
  EXPECT_EQ(delivered, 5);  // throttled, not dropped
}

TEST_F(LinkSchedTest, UnownedPacketsYieldToOwnedOnes) {
  LinkScheduler link = MakeLink(10.0);
  std::vector<int> order;
  link.set_sink([&](const Packet& p) { order.push_back(static_cast<int>(p.flow_id)); });
  auto c = manager_.Create(nullptr, "c").value();

  Packet first = MakePacket(1250);
  first.flow_id = 1;
  link.Transmit(std::move(first), nullptr);  // starts transmitting
  Packet unowned = MakePacket(1250);
  unowned.flow_id = 2;
  link.Transmit(std::move(unowned), nullptr);  // queued at the root
  Packet owned = MakePacket(1250);
  owned.flow_id = 3;
  link.Transmit(std::move(owned), c);  // queued under c

  simr_.RunUntilIdle();
  // Root-queued (unowned) traffic is served only when no child is eligible.
  EXPECT_EQ(order, (std::vector<int>{1, 3, 2}));
}

}  // namespace
}  // namespace net
