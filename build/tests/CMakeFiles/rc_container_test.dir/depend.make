# Empty dependencies file for rc_container_test.
# This may be replaced when dependencies are built.
