file(REMOVE_RECURSE
  "librc_load.a"
)
