// The discrete-event simulator: a virtual clock plus an event queue.
//
// Every component of the simulated system (CPU engine, NIC, clients) advances
// exclusively by scheduling callbacks here, so a whole experiment is a pure
// function of its configuration and RNG seed.
#ifndef SRC_SIM_SIMULATOR_H_
#define SRC_SIM_SIMULATOR_H_

#include <functional>

#include "src/sim/event_queue.h"
#include "src/sim/time.h"

namespace sim {

class Simulator {
 public:
  explicit Simulator(
      EventQueue::Backend backend = EventQueue::Backend::kWheel)
      : queue_(backend) {}

  SimTime now() const { return now_; }

  // Schedules `fn` at absolute simulated time `when` (>= now()).
  EventHandle At(SimTime when, std::function<void()> fn);

  // Schedules `fn` after `delay` microseconds of simulated time.
  EventHandle After(Duration delay, std::function<void()> fn);

  // Runs the earliest pending event; returns false if none remain.
  bool Step();

  // Runs events until the clock reaches `deadline` (events at exactly
  // `deadline` are executed) or the queue drains.
  void RunUntil(SimTime deadline);

  // Runs until no events remain.
  void RunUntilIdle();

  // Total number of events executed (diagnostics).
  std::uint64_t events_run() const { return events_run_; }

  // Engine telemetry: dispatch/cancel counters and live queue depth.
  const EventQueue& queue() const { return queue_; }

 private:
  SimTime now_ = 0;
  EventQueue queue_;
  std::uint64_t events_run_ = 0;
};

}  // namespace sim

#endif  // SRC_SIM_SIMULATOR_H_
