// Determinism fixture, negative cases: seeded PRNG, simulated time, id-keyed
// maps, member functions that merely share a banned name, and a reasoned
// suppression — none of these may fire.
#include <cstdint>
#include <cstdlib>
#include <map>
#include <random>

struct Sim {
  std::uint64_t time() const { return 0; }  // member named `time`, not ::time
};

int DetOk() {
  std::mt19937_64 rng(42);       // seeded deterministic PRNG
  std::map<std::uint64_t, int> by_id;  // value-keyed, stable order
  Sim sim;
  std::uint64_t now = sim.time();  // simulated clock, member call
  // rclint: allow(determinism): fixture replica of the scenario toggle — the
  // variable gates diagnostics, never the timeline.
  const char* audit = std::getenv("RC_AUDIT");
  (void)rng;
  (void)by_id;
  (void)now;
  (void)audit;
  return 0;
}
