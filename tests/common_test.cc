// Unit tests for the shared Expected<T> type.
#include <string>

#include <gtest/gtest.h>

#include "src/common/expected.h"

namespace rccommon {
namespace {

TEST(ExpectedTest, HoldsValue) {
  Expected<int> e(42);
  ASSERT_TRUE(e.ok());
  EXPECT_EQ(*e, 42);
  EXPECT_EQ(e.error(), Errc::kOk);
}

TEST(ExpectedTest, HoldsError) {
  Expected<int> e = MakeUnexpected(Errc::kNotFound);
  EXPECT_FALSE(e.ok());
  EXPECT_FALSE(static_cast<bool>(e));
  EXPECT_EQ(e.error(), Errc::kNotFound);
}

TEST(ExpectedTest, ValueOrFallsBack) {
  Expected<int> ok(7);
  Expected<int> err = MakeUnexpected(Errc::kWouldBlock);
  EXPECT_EQ(ok.value_or(-1), 7);
  EXPECT_EQ(err.value_or(-1), -1);
}

TEST(ExpectedTest, MoveOutValue) {
  Expected<std::string> e(std::string("hello"));
  std::string s = *std::move(e);
  EXPECT_EQ(s, "hello");
}

TEST(ExpectedTest, ArrowOperator) {
  Expected<std::string> e(std::string("hello"));
  EXPECT_EQ(e->size(), 5u);
}

TEST(ExpectedVoidTest, DefaultIsOk) {
  Expected<void> e;
  EXPECT_TRUE(e.ok());
  EXPECT_EQ(e.error(), Errc::kOk);
}

TEST(ExpectedVoidTest, Error) {
  Expected<void> e = MakeUnexpected(Errc::kLimitExceeded);
  EXPECT_FALSE(e.ok());
  EXPECT_EQ(e.error(), Errc::kLimitExceeded);
}

TEST(ErrcTest, NamesAreDistinctAndNonNull) {
  for (Errc e : {Errc::kOk, Errc::kInvalidArgument, Errc::kNotFound,
                 Errc::kPermissionDenied, Errc::kLimitExceeded, Errc::kWrongState,
                 Errc::kWouldBlock, Errc::kQueueFull, Errc::kNotLeaf,
                 Errc::kHasChildren}) {
    ASSERT_NE(ErrcName(e), nullptr);
    EXPECT_GT(std::string(ErrcName(e)).size(), 0u);
  }
  EXPECT_STRNE(ErrcName(Errc::kNotFound), ErrcName(Errc::kWouldBlock));
}

}  // namespace
}  // namespace rccommon
