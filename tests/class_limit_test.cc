// Tests for class-level resource control (Section 4.8: "restrict the total
// CPU consumption of certain classes of requests" by parenting per-request
// containers under a class-specific container) and the harness utilities.
#include <sstream>

#include <gtest/gtest.h>

#include "src/xp/scenario.h"
#include "src/xp/table.h"

namespace {

TEST(ClassLimitTest, PerClassRequestContainersNestUnderClassContainer) {
  xp::ScenarioOptions options;
  options.kernel_config = kernel::ResourceContainerSystemConfig();
  httpd::ServerConfig& server = options.server_config;
  server.use_containers = true;
  server.use_event_api = true;
  server.classes.clear();
  server.classes.push_back(httpd::ListenClass{net::kMatchAll, 16, "metered", 0.8, 0.0});

  xp::Scenario scenario(options);
  scenario.StartServer();
  scenario.AddStaticClients(4, net::MakeAddr(10, 1, 0, 0));
  scenario.StartAllClients();
  scenario.RunFor(sim::Sec(1));
  EXPECT_GT(scenario.TotalCompleted(), 500u);

  // The class container's subtree accumulated the per-request consumption.
  rc::ResourceContainer* metered = nullptr;
  scenario.kernel().containers().root()->ForEachChild([&](rc::ResourceContainer& c) {
    if (c.name() == "listen-metered") {
      metered = &c;
    }
  });
  ASSERT_NE(metered, nullptr);
  const rc::ResourceUsage u = metered->SubtreeUsage();
  EXPECT_GT(u.TotalCpuUsec(), sim::Msec(500));
  EXPECT_GT(u.bytes_sent, 100000u);
}

TEST(ClassLimitTest, ClassCpuLimitCapsWholeClass) {
  // Two classes: "capped" is limited to 20% of the machine; "free" is not.
  // Both offer saturating load; the capped class must stay near its cap.
  //
  // Note: with an event-driven server ONE thread serves both classes, so
  // while the capped class is throttled mid-request the whole server waits
  // out the window (head-of-line blocking). The cap itself is what this
  // test asserts; hard caps without HOL effects require dedicated threads
  // per capped activity, as in the paper's CGI sand-box experiments.
  xp::ScenarioOptions options;
  options.kernel_config = kernel::ResourceContainerSystemConfig();
  httpd::ServerConfig& server = options.server_config;
  server.use_containers = true;
  server.use_event_api = true;
  server.classes.clear();
  server.classes.push_back(httpd::ListenClass{
      net::CidrFilter{net::MakeAddr(10, 5, 0, 0), 16}, 16, "capped", 0.2, 0.2});
  server.classes.push_back(httpd::ListenClass{net::kMatchAll, 16, "free", 0.8, 0.0});

  xp::Scenario scenario(options);
  scenario.StartServer();
  auto capped_clients = scenario.AddStaticClients(12, net::MakeAddr(10, 5, 0, 0), 1);
  auto free_clients = scenario.AddStaticClients(12, net::MakeAddr(10, 6, 0, 0), 0);
  scenario.StartAllClients();
  scenario.RunFor(sim::Sec(2));
  scenario.ResetClientStats();

  rc::ResourceContainer* capped = nullptr;
  scenario.kernel().containers().root()->ForEachChild([&](rc::ResourceContainer& c) {
    if (c.name() == "listen-capped") {
      capped = &c;
    }
  });
  ASSERT_NE(capped, nullptr);
  const sim::Duration used0 = capped->SubtreeUsage().TotalCpuUsec();
  const sim::SimTime t0 = scenario.simulator().now();
  scenario.RunFor(sim::Sec(4));
  const double share =
      static_cast<double>(capped->SubtreeUsage().TotalCpuUsec() - used0) /
      static_cast<double>(scenario.simulator().now() - t0);
  EXPECT_NEAR(share, 0.20, 0.03);

  // Both classes still make progress.
  std::uint64_t capped_done = 0;
  for (auto* c : capped_clients) {
    capped_done += c->completed();
  }
  std::uint64_t free_done = 0;
  for (auto* c : free_clients) {
    free_done += c->completed();
  }
  EXPECT_GT(capped_done, 100u);
  EXPECT_GT(free_done, capped_done / 2);
}

TEST(TableTest, AlignsColumns) {
  xp::Table t({"a", "long-header"});
  t.AddRow({"xxxx", "1"});
  std::ostringstream os;
  t.Print(os);
  const std::string out = os.str();
  // Header, rule, one row.
  EXPECT_EQ(std::count(out.begin(), out.end(), '\n'), 3);
  EXPECT_NE(out.find("long-header"), std::string::npos);
  EXPECT_NE(out.find("xxxx"), std::string::npos);
}

TEST(TableTest, CsvOutput) {
  xp::Table t({"a", "b"});
  t.AddRow({"1", "2"});
  t.AddRow({"3", "4"});
  std::ostringstream os;
  t.PrintCsv(os);
  EXPECT_EQ(os.str(), "a,b\n1,2\n3,4\n");
}

TEST(TableTest, FormatDouble) {
  EXPECT_EQ(xp::FormatDouble(3.14159, 2), "3.14");
  EXPECT_EQ(xp::FormatDouble(3.0, 0), "3");
  EXPECT_EQ(xp::FormatDouble(-1.5, 1), "-1.5");
}

TEST(ScenarioTest, SnapshotCpuMonotone) {
  xp::ScenarioOptions options;
  options.kernel_config = kernel::UnmodifiedSystemConfig();
  xp::Scenario scenario(options);
  scenario.StartServer();
  scenario.AddStaticClients(2, net::MakeAddr(10, 1, 0, 0));
  scenario.StartAllClients();
  auto s0 = scenario.SnapshotCpu();
  scenario.RunFor(sim::Msec(500));
  auto s1 = scenario.SnapshotCpu();
  EXPECT_GT(s1.at, s0.at);
  EXPECT_GE(s1.busy, s0.busy);
  EXPECT_GE(s1.charged, s0.charged);
}

}  // namespace
