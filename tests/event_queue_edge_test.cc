// Edge-case tests for the timing-wheel event queue: cancellation corners,
// FIFO preservation across wheel-window rollovers and the overflow calendar,
// and a randomized differential check against the reference heap backend.
#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

#include "src/sim/event_queue.h"
#include "src/sim/rng.h"

namespace sim {
namespace {

TEST(EventQueueEdgeTest, CancelAtHeadAdvancesToNextEvent) {
  EventQueue q;
  std::vector<int> fired;
  EventHandle head = q.Schedule(10, [&] { fired.push_back(1); });
  q.Schedule(20, [&] { fired.push_back(2); });
  q.Schedule(10, [&] { fired.push_back(3); });

  head.Cancel();
  EXPECT_FALSE(head.pending());
  ASSERT_FALSE(q.empty());
  // The canceled head must not mask the surviving same-timestamp event.
  EXPECT_EQ(q.NextTime(), 10);
  EXPECT_EQ(q.RunNext(), 10);
  EXPECT_EQ(q.RunNext(), 20);
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(fired, (std::vector<int>{3, 2}));
  EXPECT_EQ(q.canceled(), 1u);
  EXPECT_EQ(q.dispatched(), 2u);
}

TEST(EventQueueEdgeTest, CancelEntireHeadTimestampSkipsForward) {
  EventQueue q;
  bool late_fired = false;
  std::vector<EventHandle> heads;
  for (int i = 0; i < 8; ++i) {
    heads.push_back(q.Schedule(100, [] { FAIL() << "canceled event fired"; }));
  }
  q.Schedule(5000, [&] { late_fired = true; });
  for (EventHandle& h : heads) {
    h.Cancel();
  }
  EXPECT_EQ(q.depth(), 1u);
  EXPECT_EQ(q.NextTime(), 5000);
  EXPECT_EQ(q.RunNext(), 5000);
  EXPECT_TRUE(late_fired);
  EXPECT_TRUE(q.empty());
}

TEST(EventQueueEdgeTest, CancelAfterFireIsInertAndHandleNotPending) {
  EventQueue q;
  int runs = 0;
  EventHandle h = q.Schedule(7, [&] { ++runs; });
  EXPECT_TRUE(h.pending());
  q.RunNext();
  EXPECT_EQ(runs, 1);
  EXPECT_FALSE(h.pending());

  // Cancel after fire: no effect, no cancel counted, repeatable.
  h.Cancel();
  h.Cancel();
  EXPECT_EQ(q.canceled(), 0u);

  // Even after the slot is recycled by a new event, the stale handle must
  // neither read as pending nor cancel the new occupant.
  bool second_fired = false;
  q.Schedule(9, [&] { second_fired = true; });
  EXPECT_FALSE(h.pending());
  h.Cancel();
  EXPECT_EQ(q.RunNext(), 9);
  EXPECT_TRUE(second_fired);
}

TEST(EventQueueEdgeTest, PurgeCanceledReclaimsWithoutDisturbingSurvivors) {
  EventQueue q;
  std::vector<int> fired;
  std::vector<EventHandle> doomed;
  for (int i = 0; i < 100; ++i) {
    if (i % 2 == 0) {
      doomed.push_back(q.Schedule(i * 3, [] { FAIL() << "canceled event fired"; }));
    } else {
      q.Schedule(i * 3, [&fired, i] { fired.push_back(i); });
    }
  }
  for (EventHandle& h : doomed) {
    h.Cancel();
  }
  q.PurgeCanceled();
  EXPECT_EQ(q.depth(), 50u);
  SimTime prev = -1;
  while (!q.empty()) {
    const SimTime at = q.RunNext();
    EXPECT_GT(at, prev);
    prev = at;
  }
  ASSERT_EQ(fired.size(), 50u);
  for (std::size_t i = 0; i < fired.size(); ++i) {
    EXPECT_EQ(fired[i], static_cast<int>(2 * i + 1));
  }
}

// FIFO must survive a level-0 window rollover (256 us): events scheduled at
// the same timestamp from both sides of the boundary, interleaved with
// dispatch, still fire in insertion order.
TEST(EventQueueEdgeTest, FifoAcrossLevel0Rollover) {
  EventQueue q;
  std::vector<int> order;
  const SimTime t = 300;  // beyond the first 256-slot window
  for (int i = 0; i < 4; ++i) {
    q.Schedule(t, [&order, i] { order.push_back(i); });
  }
  // Dispatch something to roll the wheel past 256, then append more at t.
  q.Schedule(260, [&] {
    for (int i = 4; i < 8; ++i) {
      q.Schedule(t, [&order, i] { order.push_back(i); });
    }
  });
  while (!q.empty()) {
    q.RunNext();
  }
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4, 5, 6, 7}));
}

// FIFO across a level-1 boundary (65536 us): the first batch is parked in a
// level-1 slot and cascades down when the wheel crosses the window; events
// added after the cascade must still fire behind them.
TEST(EventQueueEdgeTest, FifoAcrossLevel1Cascade) {
  EventQueue q;
  std::vector<int> order;
  const SimTime t = 70000;  // past 2^16
  for (int i = 0; i < 4; ++i) {
    q.Schedule(t, [&order, i] { order.push_back(i); });
  }
  q.Schedule(66000, [&] {  // fires after the level-1 window crossing
    for (int i = 4; i < 8; ++i) {
      q.Schedule(t, [&order, i] { order.push_back(i); });
    }
  });
  while (!q.empty()) {
    q.RunNext();
  }
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4, 5, 6, 7}));
}

// Timers beyond the 2^32 us wheel horizon land in the overflow calendar and
// must migrate back preserving both time order and same-timestamp FIFO.
TEST(EventQueueEdgeTest, FarFutureOverflowCalendar) {
  EventQueue q;
  std::vector<std::pair<SimTime, int>> fired;
  const SimTime horizon = SimTime{1} << 32;           // ~71.6 min
  const SimTime far = horizon + 12345;                // next epoch
  const SimTime farther = (SimTime{3} << 32) + 7;     // two epochs later

  q.Schedule(farther, [&] { fired.emplace_back(farther, 30); });
  for (int i = 0; i < 3; ++i) {
    q.Schedule(far, [&fired, far, i] { fired.emplace_back(far, i); });
  }
  q.Schedule(50, [&] { fired.emplace_back(50, 99); });
  EXPECT_EQ(q.NextTime(), 50);
  EXPECT_EQ(q.depth(), 5u);

  while (!q.empty()) {
    q.RunNext();
  }
  ASSERT_EQ(fired.size(), 5u);
  EXPECT_EQ(fired[0], (std::pair<SimTime, int>{50, 99}));
  EXPECT_EQ(fired[1], (std::pair<SimTime, int>{far, 0}));
  EXPECT_EQ(fired[2], (std::pair<SimTime, int>{far, 1}));
  EXPECT_EQ(fired[3], (std::pair<SimTime, int>{far, 2}));
  EXPECT_EQ(fired[4], (std::pair<SimTime, int>{farther, 30}));
}

TEST(EventQueueEdgeTest, CancelInsideOverflowCalendar) {
  EventQueue q;
  bool survivor_fired = false;
  const SimTime far = (SimTime{1} << 32) + 1000;
  EventHandle h = q.Schedule(far, [] { FAIL() << "canceled event fired"; });
  q.Schedule(far + 1, [&] { survivor_fired = true; });
  h.Cancel();
  EXPECT_EQ(q.NextTime(), far + 1);
  EXPECT_EQ(q.RunNext(), far + 1);
  EXPECT_TRUE(survivor_fired);
  EXPECT_TRUE(q.empty());
}

// Differential test: the wheel and the reference heap, fed an identical
// randomized schedule/cancel/dispatch workload, must dispatch the exact same
// (timestamp, tag) sequence. ~1M operations, spanning level rollovers,
// same-timestamp bursts, and far-future overflow epochs.
TEST(EventQueueEdgeTest, RandomizedDifferentialWheelVsHeap) {
  EventQueue wheel(EventQueue::Backend::kWheel);
  EventQueue heap(EventQueue::Backend::kHeap);

  struct Queues {
    std::vector<std::pair<SimTime, int>> fired;
    std::vector<EventHandle> handles;  // parallel across backends by index
  };
  Queues w, h;

  Rng rng(0xC0FFEE);
  SimTime now = 0;
  int next_tag = 0;
  const int kOps = 1'000'000;
  for (int op = 0; op < kOps; ++op) {
    const std::uint64_t kind = rng.NextU64() % 100;
    if (kind < 55 || wheel.empty()) {
      // Schedule: mostly near-future, sometimes same-instant bursts,
      // occasionally far past the 2^32 horizon.
      SimTime delay;
      const std::uint64_t shape = rng.NextU64() % 100;
      if (shape < 60) {
        delay = static_cast<SimTime>(rng.NextU64() % 512);
      } else if (shape < 85) {
        delay = static_cast<SimTime>(rng.NextU64() % (1u << 20));
      } else if (shape < 97) {
        delay = static_cast<SimTime>(rng.NextU64() % (std::uint64_t{1} << 30));
      } else {
        delay = static_cast<SimTime>((std::uint64_t{1} << 32) +
                                     rng.NextU64() % (std::uint64_t{1} << 33));
      }
      const SimTime at = now + delay;
      const int tag = next_tag++;
      w.handles.push_back(wheel.Schedule(at, [&w, at, tag] { w.fired.emplace_back(at, tag); }));
      h.handles.push_back(heap.Schedule(at, [&h, at, tag] { h.fired.emplace_back(at, tag); }));
    } else if (kind < 75) {
      // Cancel a random handle (possibly already fired or canceled — the
      // backends must agree on whether it was still pending).
      const std::size_t i = rng.NextU64() % w.handles.size();
      ASSERT_EQ(w.handles[i].pending(), h.handles[i].pending());
      w.handles[i].Cancel();
      h.handles[i].Cancel();
    } else {
      ASSERT_EQ(wheel.empty(), heap.empty());
      if (!wheel.empty()) {
        const SimTime wt = wheel.RunNext();
        const SimTime ht = heap.RunNext();
        ASSERT_EQ(wt, ht);
        now = wt;
      }
    }
    if (op % 200'000 == 0) {
      wheel.PurgeCanceled();  // exercise eager reclamation mid-stream
    }
  }
  while (!wheel.empty()) {
    ASSERT_FALSE(heap.empty());
    ASSERT_EQ(wheel.NextTime(), heap.NextTime());
    ASSERT_EQ(wheel.RunNext(), heap.RunNext());
  }
  EXPECT_TRUE(heap.empty());
  ASSERT_EQ(w.fired.size(), h.fired.size());
  EXPECT_EQ(w.fired, h.fired);
  EXPECT_EQ(wheel.dispatched(), heap.dispatched());
  EXPECT_EQ(wheel.canceled(), heap.canceled());
}

}  // namespace
}  // namespace sim
