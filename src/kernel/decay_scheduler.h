// Classic 4.3BSD-style decay-usage time sharing, with the process (its
// default container) as the resource principal. This models the paper's
// "unmodified system" and, combined with LRP packet charging, the "LRP
// system".
#ifndef SRC_KERNEL_DECAY_SCHEDULER_H_
#define SRC_KERNEL_DECAY_SCHEDULER_H_

#include <deque>
#include <unordered_map>

#include "src/kernel/scheduler.h"

namespace kernel {

class DecayUsageScheduler : public CpuScheduler {
 public:
  explicit DecayUsageScheduler(double decay_per_tick) : decay_(decay_per_tick) {}

  void Enqueue(Thread* t, sim::SimTime now) override;
  Thread* PickNext(sim::SimTime now) override;
  void OnCharge(rc::ResourceContainer& c, sim::Duration usec, sim::SimTime now) override;
  bool ShouldPreempt(const Thread& running) const override;
  void MigrateQueued(Thread* t, sim::SimTime now) override;
  void Remove(Thread* t) override;
  void Tick(sim::SimTime now) override;
  std::optional<sim::SimTime> NextEligibleTime(sim::SimTime now) override;
  void OnContainerDestroyed(rc::ResourceContainer& c) override;
  int runnable_count() const override { return static_cast<int>(run_queue_.size()); }

  // Decayed CPU usage currently recorded against a principal (tests).
  double DecayedUsage(const rc::ResourceContainer& c) const;

 private:
  double UsageOf(const Thread* t) const;

  const double decay_;
  std::unordered_map<rc::ContainerId, double> usage_;
  std::deque<Thread*> run_queue_;
};

}  // namespace kernel

#endif  // SRC_KERNEL_DECAY_SCHEDULER_H_
