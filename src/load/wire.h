// The simulated network wire between client actors and the server kernel.
// Client actors live outside the simulated kernel (they model the paper's
// FreeBSD client machines); the wire adds fixed one-way latency in each
// direction and routes server output packets to the right client.
#ifndef SRC_LOAD_WIRE_H_
#define SRC_LOAD_WIRE_H_

#include <unordered_map>

#include "src/kernel/kernel.h"
#include "src/net/packet.h"
#include "src/sim/simulator.h"

namespace load {

class PacketSink {
 public:
  virtual ~PacketSink() = default;
  virtual void OnPacket(const net::Packet& p) = 0;
};

class Wire {
 public:
  Wire(sim::Simulator* simulator, kernel::Kernel* kernel,
       sim::Duration one_way_latency = 100)
      : simr_(simulator), kernel_(kernel), latency_(one_way_latency) {
    kernel_->set_wire_sink([this](const net::Packet& p) { RouteToClient(p); });
  }

  sim::Duration latency() const { return latency_; }

  // Registers the actor receiving packets addressed to `addr`.
  void Attach(net::Addr addr, PacketSink* sink) { sinks_[addr.v] = sink; }
  void Detach(net::Addr addr) { sinks_.erase(addr.v); }

  // Client -> server, after one-way latency.
  void ToServer(const net::Packet& p) {
    simr_->After(latency_, [this, p] { kernel_->DeliverFromWire(p); });
  }

  std::uint64_t dropped_to_unknown() const { return dropped_; }

 private:
  void RouteToClient(const net::Packet& p) {
    simr_->After(latency_, [this, p] {
      auto it = sinks_.find(p.dst.addr.v);
      if (it == sinks_.end()) {
        ++dropped_;  // e.g. RSTs to a SYN flooder's spoofed sources
        return;
      }
      it->second->OnPacket(p);
    });
  }

  sim::Simulator* const simr_;
  kernel::Kernel* const kernel_;
  const sim::Duration latency_;
  std::unordered_map<std::uint32_t, PacketSink*> sinks_;
  std::uint64_t dropped_ = 0;
};

}  // namespace load

#endif  // SRC_LOAD_WIRE_H_
