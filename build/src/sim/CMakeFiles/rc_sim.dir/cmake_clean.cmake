file(REMOVE_RECURSE
  "CMakeFiles/rc_sim.dir/event_queue.cc.o"
  "CMakeFiles/rc_sim.dir/event_queue.cc.o.d"
  "CMakeFiles/rc_sim.dir/rng.cc.o"
  "CMakeFiles/rc_sim.dir/rng.cc.o.d"
  "CMakeFiles/rc_sim.dir/simulator.cc.o"
  "CMakeFiles/rc_sim.dir/simulator.cc.o.d"
  "CMakeFiles/rc_sim.dir/stats.cc.o"
  "CMakeFiles/rc_sim.dir/stats.cc.o.d"
  "librc_sim.a"
  "librc_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rc_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
