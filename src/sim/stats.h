// Online statistics used by the workload generators and benchmark harness.
#ifndef SRC_SIM_STATS_H_
#define SRC_SIM_STATS_H_

#include <cstdint>
#include <vector>

#include "src/sim/time.h"

namespace sim {

// Welford-style running mean / variance / extrema.
class RunningStat {
 public:
  void Add(double x);

  std::uint64_t count() const { return count_; }
  double mean() const { return count_ ? mean_ : 0.0; }
  double variance() const;
  double stddev() const;
  double min() const { return count_ ? min_ : 0.0; }
  double max() const { return count_ ? max_ : 0.0; }
  double sum() const { return sum_; }

 private:
  std::uint64_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  double sum_ = 0.0;
};

// Keeps all samples; supports exact percentiles. Fine at experiment scale
// (at most a few million samples per run).
class SampleSet {
 public:
  void Add(double x) {
    samples_.push_back(x);
    sorted_ = false;
  }

  std::size_t count() const { return samples_.size(); }
  double mean() const;

  // Raw samples, for merging sets at aggregation boundaries.
  const std::vector<double>& samples() const { return samples_; }

  void Merge(const SampleSet& other) {
    samples_.insert(samples_.end(), other.samples_.begin(), other.samples_.end());
    sorted_ = false;
  }

  // Percentile with linear interpolation between closest ranks (the
  // numpy/Excel "inclusive" definition); p in [0, 100]. Sorts lazily, so
  // the first call after an Add is O(n log n) and repeats are O(1).
  double Percentile(double p);
  double Median() { return Percentile(50.0); }

 private:
  std::vector<double> samples_;
  bool sorted_ = true;
};

// Events-per-second meter over a measurement interval.
class RateMeter {
 public:
  void Start(SimTime now) { start_ = now; }
  void Stop(SimTime now) { stop_ = now; }
  void Count(std::uint64_t n = 1) { events_ += n; }

  std::uint64_t events() const { return events_; }
  // Events per simulated second over [start, stop]; 0 when the interval is
  // empty or inverted.
  double PerSecond() const;

 private:
  SimTime start_ = 0;
  SimTime stop_ = 0;
  std::uint64_t events_ = 0;
};

}  // namespace sim

#endif  // SRC_SIM_STATS_H_
