// Tests for the kernel execution tracer.
#include <sstream>

#include <gtest/gtest.h>

#include "src/kernel/kernel.h"
#include "src/kernel/syscalls.h"

namespace kernel {
namespace {

TEST(TracerTest, DisabledByDefaultAndCheap) {
  Tracer t;
  EXPECT_FALSE(t.enabled());
  t.Record(1, TraceKind::kDispatch, 1, 1, 0);
  EXPECT_EQ(t.size(), 0u);
}

TEST(TracerTest, RecordsInOrder) {
  Tracer t;
  t.Enable(16);
  for (int i = 0; i < 5; ++i) {
    t.Record(i * 10, TraceKind::kSlice, 1, 0, i);
  }
  std::vector<sim::SimTime> times;
  t.ForEach([&](const TraceEvent& e) { times.push_back(e.at); });
  EXPECT_EQ(times, (std::vector<sim::SimTime>{0, 10, 20, 30, 40}));
}

TEST(TracerTest, RingOverwritesOldest) {
  Tracer t;
  t.Enable(4);
  for (int i = 0; i < 10; ++i) {
    t.Record(i, TraceKind::kSlice, 1, 0, 0);
  }
  EXPECT_EQ(t.size(), 4u);
  EXPECT_EQ(t.dropped(), 6u);
  EXPECT_EQ(t.total_recorded(), 10u);
  std::vector<sim::SimTime> times;
  t.ForEach([&](const TraceEvent& e) { times.push_back(e.at); });
  EXPECT_EQ(times, (std::vector<sim::SimTime>{6, 7, 8, 9}));
}

TEST(TracerTest, KindNamesDistinct) {
  EXPECT_STREQ(TraceKindName(TraceKind::kDispatch), "dispatch");
  EXPECT_STREQ(TraceKindName(TraceKind::kPreempt), "preempt");
  EXPECT_STRNE(TraceKindName(TraceKind::kBlock), TraceKindName(TraceKind::kWake));
}

TEST(TracerTest, CapturesKernelActivity) {
  sim::Simulator simr;
  Kernel kern(&simr, UnmodifiedSystemConfig());
  kern.tracer().Enable();

  Process* p = kern.CreateProcess("traced");
  kern.SpawnThread(p, "t", [](Sys sys) -> Program {
    co_await sys.Compute(500, rc::CpuKind::kUser);
    co_await sys.Sleep(1000);
    co_await sys.Compute(500, rc::CpuKind::kUser);
  });
  simr.RunUntil(sim::Msec(100));

  EXPECT_GE(kern.tracer().CountOf(TraceKind::kDispatch), 2u);  // before+after sleep
  EXPECT_GE(kern.tracer().CountOf(TraceKind::kSlice), 2u);
  EXPECT_EQ(kern.tracer().CountOf(TraceKind::kBlock), 1u);     // the sleep
  EXPECT_EQ(kern.tracer().CountOf(TraceKind::kWake), 1u);
  EXPECT_EQ(kern.tracer().CountOf(TraceKind::kExit), 1u);

  // Slice events carry the charged container and consumed time.
  sim::Duration charged = 0;
  kern.tracer().ForEach([&](const TraceEvent& e) {
    if (e.kind == TraceKind::kSlice) {
      EXPECT_EQ(e.container_id, p->default_container()->id());
      charged += e.arg;
    }
  });
  // 1000 usec of work plus context-switch overhead inside the slices.
  EXPECT_GE(charged, 1000);
}

TEST(TracerTest, CapturesInterrupts) {
  sim::Simulator simr;
  Kernel kern(&simr, UnmodifiedSystemConfig());
  kern.tracer().Enable();
  kern.cpu().QueueInterruptWork(123, nullptr, nullptr);
  simr.RunUntilIdle();
  ASSERT_EQ(kern.tracer().CountOf(TraceKind::kInterrupt), 1u);
  kern.tracer().ForEach([&](const TraceEvent& e) {
    if (e.kind == TraceKind::kInterrupt) {
      EXPECT_EQ(e.arg, 123);
      EXPECT_EQ(e.container_id, 0u);
    }
  });
}

TEST(TracerTest, DumpProducesTimeline) {
  sim::Simulator simr;
  Kernel kern(&simr, UnmodifiedSystemConfig());
  kern.tracer().Enable();
  Process* p = kern.CreateProcess("traced");
  kern.SpawnThread(p, "t", [](Sys sys) -> Program {
    co_await sys.Compute(100, rc::CpuKind::kUser);
  });
  simr.RunUntil(sim::Msec(1));
  std::ostringstream os;
  kern.tracer().Dump(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("dispatch"), std::string::npos);
  EXPECT_NE(out.find("slice"), std::string::npos);
  EXPECT_NE(out.find("thread="), std::string::npos);
}

}  // namespace
}  // namespace kernel
