
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_cgi.cpp" "bench/CMakeFiles/bench_cgi.dir/bench_cgi.cpp.o" "gcc" "bench/CMakeFiles/bench_cgi.dir/bench_cgi.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/xp/CMakeFiles/rc_xp.dir/DependInfo.cmake"
  "/root/repo/build/src/httpd/CMakeFiles/rc_httpd.dir/DependInfo.cmake"
  "/root/repo/build/src/load/CMakeFiles/rc_load.dir/DependInfo.cmake"
  "/root/repo/build/src/kernel/CMakeFiles/rc_kernel.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/rc_net.dir/DependInfo.cmake"
  "/root/repo/build/src/disk/CMakeFiles/rc_disk.dir/DependInfo.cmake"
  "/root/repo/build/src/rc/CMakeFiles/rc_core.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/rc_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/rc_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
