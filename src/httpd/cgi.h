// The CGI child program: consumes the request's CPU demand, writes the
// response on the inherited connection (fd 0), and exits. One process per
// dynamic request, as in classic CGI (Section 2).
#ifndef SRC_HTTPD_CGI_H_
#define SRC_HTTPD_CGI_H_

#include <functional>

#include "src/kernel/syscalls.h"
#include "src/net/packet.h"

namespace httpd {

// Builds the body for a CGI process handling `req`. If `completed` is
// non-null it is incremented when the response has been sent.
std::function<kernel::Program(kernel::Sys)> MakeCgiProgram(
    net::HttpRequestInfo req, std::uint64_t* completed = nullptr);

}  // namespace httpd

#endif  // SRC_HTTPD_CGI_H_
