#include "src/telemetry/trace_export.h"

#include <algorithm>
#include <map>
#include <memory>
#include <set>
#include <utility>
#include <vector>

#include "src/rc/manager.h"
#include "src/telemetry/json.h"

namespace telemetry {

namespace {

bool IsDurationEvent(kernel::TraceKind k) {
  return k == kernel::TraceKind::kSlice || k == kernel::TraceKind::kPreempt ||
         k == kernel::TraceKind::kInterrupt;
}

}  // namespace

void WriteChromeTrace(const kernel::Tracer& tracer, const ContainerNameFn& name_of,
                      std::ostream& os) {
  os << "{\"traceEvents\":[";
  bool first = true;
  auto comma = [&] {
    if (!first) {
      os << ",";
    }
    first = false;
  };

  // Track-name metadata first: one trace "process" per CPU (pid = 1 + cpu;
  // a uniprocessor run keeps the historical single pid 1), and inside each,
  // one thread_name entry per container id seen on that CPU.
  std::set<std::pair<int, rc::ContainerId>> tracks;
  tracer.ForEach([&](const kernel::TraceEvent& e) {
    tracks.insert({e.cpu, e.container_id});
  });
  std::set<int> cpus_seen;
  for (const auto& [cpu, tid] : tracks) {
    cpus_seen.insert(cpu);
  }
  if (cpus_seen.empty()) {
    cpus_seen.insert(0);
  }
  for (int cpu : cpus_seen) {
    std::string pname = "rc kernel";
    if (cpu != 0 || cpus_seen.size() > 1) {
      pname += " cpu" + std::to_string(cpu);
    }
    comma();
    os << "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":" << 1 + cpu
       << ",\"tid\":0,\"args\":{\"name\":\"" << EscapeJson(pname) << "\"}}";
  }
  for (const auto& [cpu, tid] : tracks) {
    std::string label;
    if (tid == 0) {
      label = "(unattributed)";
    } else if (name_of) {
      label = name_of(tid);
    }
    if (label.empty()) {
      label = "container " + std::to_string(tid);
    } else {
      label += " [ct " + std::to_string(tid) + "]";
    }
    comma();
    os << "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":" << 1 + cpu
       << ",\"tid\":" << tid << ",\"args\":{\"name\":\"" << EscapeJson(label)
       << "\"}}";
  }

  tracer.ForEach([&](const kernel::TraceEvent& e) {
    comma();
    const char* name = kernel::TraceKindName(e.kind);
    if (IsDurationEvent(e.kind)) {
      // Recorded at completion; the consumed CPU (`arg`) ends at `at`.
      const sim::SimTime start = e.at - e.arg;
      os << "{\"name\":\"" << name << "\",\"cat\":\"kernel\",\"ph\":\"X\",\"ts\":"
         << start << ",\"dur\":" << e.arg << ",\"pid\":" << 1 + e.cpu
         << ",\"tid\":" << e.container_id << ",\"args\":{\"thread\":"
         << e.thread_id << "}}";
    } else {
      os << "{\"name\":\"" << name << "\",\"cat\":\"kernel\",\"ph\":\"i\",\"ts\":"
         << e.at << ",\"s\":\"t\",\"pid\":" << 1 + e.cpu
         << ",\"tid\":" << e.container_id << ",\"args\":{\"thread\":"
         << e.thread_id << "}}";
    }
  });

  os << "],\"displayTimeUnit\":\"ms\"}";
}

ContainerNameFn ContainerNamesFrom(const rc::ContainerManager& manager) {
  // Snapshot names once: per-id Lookup is a cold-path slot scan, and trace
  // export resolves one id per track.
  auto names = std::make_shared<std::map<rc::ContainerId, std::string>>();
  manager.ForEachLive([&](rc::ResourceContainer& c) {
    names->emplace(c.id(), c.name());
  });
  return [names](rc::ContainerId id) -> std::string {
    auto it = names->find(id);
    return it != names->end() ? it->second : std::string();
  };
}

}  // namespace telemetry
