#include "src/rc/manager.h"

#include <algorithm>
#include <utility>

#include "src/common/check.h"

namespace rc {

using rccommon::Errc;
using rccommon::Expected;
using rccommon::MakeUnexpected;

ContainerManager::ContainerManager() : alive_(std::make_shared<bool>(true)) {
  Attributes root_attrs;
  root_attrs.sched.cls = SchedClass::kFixedShare;
  root_attrs.sched.fixed_share = 1.0;
  root_ = ContainerRef(new ResourceContainer(this, alive_, next_id_++, "root", root_attrs));
  index_[root_->id()] = root_;
}

ContainerManager::~ContainerManager() {
  // Containers still referenced elsewhere (e.g. by queued simulator events)
  // may be destroyed after this point; the shared flag tells their
  // destructors to skip manager interaction.
  *alive_ = false;
  root_.reset();
}

Expected<ContainerRef> ContainerManager::Create(const ContainerRef& parent,
                                                std::string name,
                                                const Attributes& attrs) {
  if (auto v = attrs.Validate(); !v.ok()) {
    return MakeUnexpected(v.error());
  }
  ResourceContainer* p = parent ? parent.get() : root_.get();
  if (auto v = CheckParentEligible(*p, attrs, nullptr); !v.ok()) {
    return MakeUnexpected(v.error());
  }
  ContainerRef c(new ResourceContainer(this, alive_, next_id_++, std::move(name), attrs));
  p->AdoptChild(c.get());
  index_[c->id()] = c;
  return c;
}

Expected<void> ContainerManager::SetParent(const ContainerRef& c,
                                           const ContainerRef& parent) {
  if (!c || c == root_) {
    return MakeUnexpected(Errc::kInvalidArgument);
  }
  ResourceContainer* new_parent = parent ? parent.get() : root_.get();
  if (new_parent == c->parent()) {
    return {};
  }
  // Reject cycles: the new parent must not be c or a descendant of c.
  if (c->IsSelfOrDescendant(new_parent)) {
    return MakeUnexpected(Errc::kInvalidArgument);
  }
  if (auto v = CheckParentEligible(*new_parent, c->attributes(), c.get()); !v.ok()) {
    return v;
  }

  ResourceContainer* old_parent = c->parent();
  RC_CHECK_NE(old_parent, nullptr);
  const std::int64_t m = c->subtree_memory_bytes();
  old_parent->RemoveChild(c.get());
  old_parent->PropagateMemory(-m);
  new_parent->AdoptChild(c.get());
  new_parent->PropagateMemory(m);
  NotifyReparent(*c, old_parent, new_parent);
  return {};
}

Expected<ContainerRef> ContainerManager::Lookup(ContainerId id) const {
  auto it = index_.find(id);
  if (it == index_.end()) {
    return MakeUnexpected(Errc::kNotFound);
  }
  ContainerRef ref = it->second.lock();
  if (!ref) {
    return MakeUnexpected(Errc::kNotFound);
  }
  return ref;
}

void ContainerManager::ForEachLive(
    const std::function<void(ResourceContainer&)>& fn) const {
  // id order keeps telemetry exports deterministic across runs.
  std::vector<ContainerRef> live;
  live.reserve(index_.size());
  for (const auto& [id, weak] : index_) {
    if (ContainerRef ref = weak.lock()) {
      live.push_back(std::move(ref));
    }
  }
  std::sort(live.begin(), live.end(),
            [](const ContainerRef& a, const ContainerRef& b) { return a->id() < b->id(); });
  for (const ContainerRef& ref : live) {
    fn(*ref);
  }
}

void ContainerManager::AddDestroyObserver(
    std::function<void(ResourceContainer&)> observer) {
  destroy_observers_.push_back(std::move(observer));
}

void ContainerManager::AddReparentObserver(ReparentObserver observer) {
  reparent_observers_.push_back(std::move(observer));
}

void ContainerManager::NotifyReparent(ResourceContainer& child,
                                      ResourceContainer* old_parent,
                                      ResourceContainer* new_parent) {
  for (auto& observer : reparent_observers_) {
    observer(child, old_parent, new_parent);
  }
}

double ContainerManager::SiblingFixedShareSum(const ResourceContainer& parent,
                                              const ResourceContainer* exclude,
                                              ResourceKind kind) {
  double sum = 0.0;
  parent.ForEachChild([&](ResourceContainer& child) {
    if (&child == exclude) {
      return;
    }
    const SchedParams& sched = SchedFor(child.attributes(), kind);
    if (sched.cls == SchedClass::kFixedShare) {
      sum += sched.fixed_share;
    }
  });
  return sum;
}

void ContainerManager::OnDestroy(ResourceContainer& c) {
  for (auto& observer : destroy_observers_) {
    observer(c);
  }
  index_.erase(c.id());
}

Expected<void> ContainerManager::CheckParentEligible(
    const ResourceContainer& parent, const Attributes& child_attrs,
    const ResourceContainer* exclude) const {
  // Time-share containers cannot have children (prototype rule, Section 5.1).
  if (parent.attributes().sched.cls != SchedClass::kFixedShare) {
    return MakeUnexpected(Errc::kHasChildren);
  }
  // Fixed-share budgets are per resource: a child's CPU, disk, link, and
  // memory guarantees each draw from an independent 100% at the parent —
  // this is what rejects sibling memory over-guarantee.
  for (const ResourceKind kind :
       {ResourceKind::kCpu, ResourceKind::kDisk, ResourceKind::kLink,
        ResourceKind::kMemory}) {
    const SchedParams& sched = SchedFor(child_attrs, kind);
    if (sched.cls == SchedClass::kFixedShare) {
      const double others = SiblingFixedShareSum(parent, exclude, kind);
      if (others + sched.fixed_share > 1.0 + 1e-9) {
        return MakeUnexpected(Errc::kLimitExceeded);
      }
    }
  }
  return {};
}

}  // namespace rc
