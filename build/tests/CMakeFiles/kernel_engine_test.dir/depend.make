# Empty dependencies file for kernel_engine_test.
# This may be replaced when dependencies are built.
