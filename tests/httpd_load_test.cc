// Tests of the server application models (event-driven, multi-threaded,
// pre-forked) and the workload generators, driven through full scenarios.
#include <gtest/gtest.h>

#include "src/httpd/prefork_server.h"
#include "src/httpd/threaded_server.h"
#include "src/xp/scenario.h"

namespace {

TEST(FileCacheTest, HitMissAndInsert) {
  httpd::FileCache cache;
  cache.AddDocument(1, 1024);
  EXPECT_EQ(cache.Lookup(1), std::optional<std::uint32_t>(1024));
  EXPECT_FALSE(cache.Lookup(2).has_value());
  cache.Insert(2, 2048);
  EXPECT_EQ(cache.Lookup(2), std::optional<std::uint32_t>(2048));
  EXPECT_EQ(cache.hits(), 2u);
  EXPECT_EQ(cache.misses(), 1u);
}

TEST(EventServerTest, ServesStaticRequests) {
  xp::ScenarioOptions options;
  options.kernel_config = kernel::UnmodifiedSystemConfig();
  xp::Scenario scenario(options);
  scenario.StartServer();
  auto clients = scenario.AddStaticClients(4, net::MakeAddr(10, 1, 0, 0));
  scenario.StartAllClients();
  scenario.RunFor(sim::Sec(1));
  EXPECT_GT(scenario.TotalCompleted(), 1000u);
  EXPECT_EQ(scenario.server().stats().static_served, scenario.TotalCompleted());
  for (auto* c : clients) {
    EXPECT_EQ(c->failures(), 0u);
    EXPECT_EQ(c->timeouts(), 0u);
  }
}

TEST(EventServerTest, PersistentConnectionsAreFaster) {
  auto run = [](int requests_per_conn) {
    xp::ScenarioOptions options;
    options.kernel_config = kernel::UnmodifiedSystemConfig();
    xp::Scenario scenario(options);
    scenario.StartServer();
    scenario.AddStaticClients(8, net::MakeAddr(10, 1, 0, 0), 0, requests_per_conn);
    scenario.StartAllClients();
    scenario.RunFor(sim::Sec(2));
    return scenario.TotalCompleted();
  };
  const std::uint64_t per_request = run(1);
  const std::uint64_t persistent = run(1000);
  EXPECT_GT(persistent, 2 * per_request);
}

TEST(EventServerTest, EventApiModeServes) {
  xp::ScenarioOptions options;
  options.kernel_config = kernel::ResourceContainerSystemConfig();
  options.server_config.use_containers = true;
  options.server_config.use_event_api = true;
  xp::Scenario scenario(options);
  scenario.StartServer();
  scenario.AddStaticClients(4, net::MakeAddr(10, 1, 0, 0));
  scenario.StartAllClients();
  scenario.RunFor(sim::Sec(1));
  EXPECT_GT(scenario.TotalCompleted(), 1000u);
  // Per-connection containers come and go; at any instant only a bounded
  // set should be live (conn containers of open connections + listen + misc).
  EXPECT_LT(scenario.kernel().containers().live_count(), 5000u);
}

TEST(EventServerTest, CacheMissChargesPenaltyButServes) {
  xp::ScenarioOptions options;
  options.kernel_config = kernel::UnmodifiedSystemConfig();
  xp::Scenario scenario(options);
  scenario.StartServer();
  load::HttpClient::Config cfg;
  cfg.addr = net::MakeAddr(10, 1, 0, 1);
  cfg.doc_id = 777;  // not in the cache
  scenario.AddClient(cfg);
  scenario.StartAllClients();
  scenario.RunFor(sim::Sec(1));
  EXPECT_GT(scenario.TotalCompleted(), 100u);
  EXPECT_GT(scenario.cache().misses(), 0u);
  EXPECT_GT(scenario.cache().hits(), 0u);  // subsequent hits after insert
}

TEST(EventServerTest, CgiRequestForksAndResponds) {
  xp::ScenarioOptions options;
  options.kernel_config = kernel::UnmodifiedSystemConfig();
  xp::Scenario scenario(options);
  scenario.StartServer();
  load::HttpClient::Config cgi;
  cgi.addr = net::MakeAddr(10, 3, 0, 1);
  cgi.is_cgi = true;
  cgi.cgi_cpu_usec = sim::Msec(50);
  cgi.request_timeout = sim::Sec(30);
  scenario.AddClient(cgi);
  scenario.StartAllClients();
  scenario.RunFor(sim::Sec(2));
  EXPECT_GT(scenario.TotalCompleted(), 10u);
  EXPECT_GT(scenario.server().stats().cgi_started, 10u);
  // CGI processes are detached and auto-reaped.
  EXPECT_LE(scenario.kernel().process_count(), 3u);
}

TEST(EventServerTest, MixedStaticAndCgi) {
  xp::ScenarioOptions options;
  options.kernel_config = kernel::ResourceContainerSystemConfig();
  options.server_config.use_containers = true;
  options.server_config.cgi_sandbox = true;
  options.server_config.cgi_share = 0.3;
  xp::Scenario scenario(options);
  scenario.StartServer();
  scenario.AddStaticClients(4, net::MakeAddr(10, 1, 0, 0));
  load::HttpClient::Config cgi;
  cgi.addr = net::MakeAddr(10, 3, 0, 1);
  cgi.is_cgi = true;
  cgi.cgi_cpu_usec = sim::Msec(100);
  cgi.request_timeout = sim::Sec(30);
  scenario.AddClient(cgi);
  scenario.StartAllClients();
  scenario.RunFor(sim::Sec(2));
  EXPECT_GT(scenario.server().stats().static_served, 1000u);
  EXPECT_GT(scenario.server().cgi_responses_completed(), 2u);
}

TEST(EventServerTest, PriorityClassesTracked) {
  xp::ScenarioOptions options;
  options.kernel_config = kernel::ResourceContainerSystemConfig();
  options.server_config.use_containers = true;
  options.server_config.classes.clear();
  options.server_config.classes.push_back(
      httpd::ListenClass{net::CidrFilter{net::MakeAddr(10, 1, 0, 0), 16}, 48, "gold"});
  options.server_config.classes.push_back(httpd::ListenClass{net::kMatchAll, 8, "rest"});
  xp::Scenario scenario(options);
  scenario.StartServer();
  scenario.AddStaticClients(2, net::MakeAddr(10, 1, 0, 0), /*class=*/1);
  scenario.AddStaticClients(2, net::MakeAddr(10, 2, 0, 0), /*class=*/0);
  scenario.StartAllClients();
  scenario.RunFor(sim::Sec(1));
  EXPECT_GT(scenario.server().stats().served_by_class[0], 100u);
  EXPECT_GT(scenario.server().stats().served_by_class[1], 100u);
}

// --- Multi-threaded server --------------------------------------------------

class MtScenario {
 public:
  explicit MtScenario(kernel::KernelConfig kcfg, httpd::ServerConfig scfg = {}) {
    kernel_ = std::make_unique<kernel::Kernel>(&simr_, kcfg);
    wire_ = std::make_unique<load::Wire>(&simr_, kernel_.get());
    cache_.AddDocument(1, 1024);
    kernel_->Start();
    server_ = std::make_unique<httpd::MultiThreadedServer>(kernel_.get(), &cache_, scfg);
    server_->Start();
  }
  sim::Simulator simr_;
  std::unique_ptr<kernel::Kernel> kernel_;
  std::unique_ptr<load::Wire> wire_;
  httpd::FileCache cache_;
  std::unique_ptr<httpd::MultiThreadedServer> server_;
  std::vector<std::unique_ptr<load::HttpClient>> clients_;

  void AddClients(int n) {
    for (int i = 0; i < n; ++i) {
      load::HttpClient::Config cfg;
      cfg.addr = net::Addr{net::MakeAddr(10, 1, 0, 0).v + static_cast<std::uint32_t>(i) + 1};
      clients_.push_back(std::make_unique<load::HttpClient>(
          &simr_, wire_.get(), static_cast<std::uint32_t>(i + 1), cfg));
    }
  }
  std::uint64_t Completed() const {
    std::uint64_t total = 0;
    for (auto& c : clients_) {
      total += c->completed();
    }
    return total;
  }
};

TEST(ThreadedServerTest, ServesWithThreadPool) {
  MtScenario s(kernel::UnmodifiedSystemConfig());
  s.AddClients(8);
  for (auto& c : s.clients_) {
    c->Start();
  }
  s.simr_.RunUntil(sim::Sec(1));
  EXPECT_GT(s.Completed(), 1000u);
  EXPECT_EQ(s.server_->stats().static_served, s.Completed());
}

TEST(ThreadedServerTest, PerConnectionContainersOnRcKernel) {
  httpd::ServerConfig scfg;
  scfg.use_containers = true;
  MtScenario s(kernel::ResourceContainerSystemConfig(), scfg);
  s.AddClients(8);
  for (auto& c : s.clients_) {
    c->Start();
  }
  s.simr_.RunUntil(sim::Sec(1));
  EXPECT_GT(s.Completed(), 1000u);
}

// --- Pre-forked server -------------------------------------------------------

TEST(PreforkServerTest, MasterPassesConnectionsToWorkers) {
  sim::Simulator simr;
  kernel::Kernel kern(&simr, kernel::UnmodifiedSystemConfig());
  load::Wire wire(&simr, &kern);
  httpd::FileCache cache;
  cache.AddDocument(1, 1024);
  kern.Start();
  httpd::ServerConfig scfg;
  scfg.worker_processes = 4;
  httpd::PreforkServer server(&kern, &cache, scfg);
  server.Start();

  std::vector<std::unique_ptr<load::HttpClient>> clients;
  for (int i = 0; i < 6; ++i) {
    load::HttpClient::Config cfg;
    cfg.addr = net::Addr{net::MakeAddr(10, 1, 0, 0).v + static_cast<std::uint32_t>(i) + 1};
    clients.push_back(std::make_unique<load::HttpClient>(
        &simr, &wire, static_cast<std::uint32_t>(i + 1), cfg));
    clients.back()->Start();
  }
  simr.RunUntil(sim::Sec(1));
  std::uint64_t total = 0;
  for (auto& c : clients) {
    total += c->completed();
  }
  EXPECT_GT(total, 500u);
  EXPECT_EQ(server.stats().static_served, total);
  EXPECT_GT(server.stats().connections_accepted, 500u);
  // Master + 4 workers (+ no stray processes).
  EXPECT_EQ(kern.process_count(), 5u);
}

// --- Workload generators ------------------------------------------------------

TEST(HttpClientTest, MeasuresLatency) {
  xp::ScenarioOptions options;
  options.kernel_config = kernel::UnmodifiedSystemConfig();
  xp::Scenario scenario(options);
  scenario.StartServer();
  auto clients = scenario.AddStaticClients(1, net::MakeAddr(10, 1, 0, 0));
  scenario.StartAllClients();
  scenario.RunFor(sim::Sec(1));
  ASSERT_GT(clients[0]->latencies().count(), 0u);
  // Unloaded: ~2 RTTs (SYN + request) + ~350 usec service.
  EXPECT_GT(clients[0]->latencies().mean(), 0.4);
  EXPECT_LT(clients[0]->latencies().mean(), 2.0);
}

TEST(HttpClientTest, ResetStatsClearsHistory) {
  xp::ScenarioOptions options;
  options.kernel_config = kernel::UnmodifiedSystemConfig();
  xp::Scenario scenario(options);
  scenario.StartServer();
  auto clients = scenario.AddStaticClients(1, net::MakeAddr(10, 1, 0, 0));
  scenario.StartAllClients();
  scenario.RunFor(sim::Msec(100));
  EXPECT_GT(clients[0]->completed(), 0u);
  scenario.ResetClientStats();
  EXPECT_EQ(clients[0]->completed(), 0u);
  EXPECT_EQ(clients[0]->latencies().count(), 0u);
}

TEST(HttpClientTest, ConnectTimeoutRetriesWhenServerAbsent) {
  sim::Simulator simr;
  kernel::Kernel kern(&simr, kernel::UnmodifiedSystemConfig());
  load::Wire wire(&simr, &kern);
  kern.Start();
  // No server process: SYNs meet no listener. In softint mode the stack
  // RSTs them, producing failures and retries.
  load::HttpClient::Config cfg;
  cfg.addr = net::MakeAddr(10, 1, 0, 1);
  load::HttpClient client(&simr, &wire, 1, cfg);
  client.Start();
  simr.RunUntil(sim::Sec(1));
  EXPECT_EQ(client.completed(), 0u);
  EXPECT_GT(client.failures() + client.timeouts(), 10u);
}

TEST(SynFlooderTest, GeneratesApproximatelyConfiguredRate) {
  sim::Simulator simr;
  kernel::Kernel kern(&simr, kernel::UnmodifiedSystemConfig());
  load::Wire wire(&simr, &kern);
  kern.Start();
  load::SynFlooder::Config cfg;
  cfg.rate_per_sec = 5000;
  load::SynFlooder flooder(&simr, &wire, cfg);
  flooder.Start();
  simr.RunUntil(sim::Sec(2));
  flooder.Stop();
  EXPECT_NEAR(static_cast<double>(flooder.sent()), 10000.0, 500.0);
}

TEST(WireTest, DropsPacketsToUnknownAddresses) {
  sim::Simulator simr;
  kernel::Kernel kern(&simr, kernel::UnmodifiedSystemConfig());
  load::Wire wire(&simr, &kern);
  kern.Start();
  // A flood SYN from a spoofed source gets a RST back to nowhere.
  load::SynFlooder::Config cfg;
  cfg.rate_per_sec = 100;
  load::SynFlooder flooder(&simr, &wire, cfg);
  flooder.Start();
  simr.RunUntil(sim::Msec(500));
  EXPECT_GT(wire.dropped_to_unknown(), 0u);
}

}  // namespace
