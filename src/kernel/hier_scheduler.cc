#include "src/kernel/hier_scheduler.h"

#include <algorithm>

#include "src/common/check.h"
#include "src/kernel/process.h"
#include "src/kernel/thread.h"

namespace kernel {

namespace {
// Floor for the residual share granted to time-share children when fixed
// shares (nearly) exhaust the parent; keeps time-share work from starving.
constexpr double kResidualFloor = 0.02;
}  // namespace

HierarchicalScheduler::HierarchicalScheduler(rc::ContainerManager* manager,
                                             double decay_per_tick,
                                             sim::Duration limit_window,
                                             int capacity_cpus,
                                             bool cache_in_container)
    : manager_(manager),
      decay_(decay_per_tick),
      limit_window_(limit_window),
      capacity_cpus_(capacity_cpus),
      cache_in_container_(cache_in_container) {}

HierarchicalScheduler::Node* HierarchicalScheduler::NodeFor(rc::ResourceContainer& c) {
  if (cache_in_container_) {
    if (c.sched_cookie() != nullptr) {
      return static_cast<Node*>(c.sched_cookie());
    }
  } else {
    auto it = nodes_.find(c.id());
    if (it != nodes_.end()) {
      return it->second.get();
    }
  }
  auto node = std::make_unique<Node>();
  node->container = &c;
  Node* raw = node.get();
  if (cache_in_container_) {
    c.set_sched_cookie(raw);
  }
  nodes_[c.id()] = std::move(node);
  return raw;
}

HierarchicalScheduler::Node* HierarchicalScheduler::NodeForIfExists(
    const rc::ResourceContainer& c) const {
  if (cache_in_container_) {
    return static_cast<Node*>(c.sched_cookie());
  }
  auto it = nodes_.find(c.id());
  return it == nodes_.end() ? nullptr : it->second.get();
}

double HierarchicalScheduler::ResidualWeight(const rc::ResourceContainer& parent) {
  double fixed_total = 0.0;
  parent.ForEachChild([&](rc::ResourceContainer& child) {
    if (child.attributes().sched.cls == rc::SchedClass::kFixedShare) {
      fixed_total += child.attributes().sched.fixed_share;
    }
  });
  return std::max(kResidualFloor, 1.0 - fixed_total);
}

void HierarchicalScheduler::AdjustRunnable(rc::ResourceContainer* leaf, int delta) {
  for (rc::ResourceContainer* c = leaf; c != nullptr; c = c->parent()) {
    Node* n = NodeFor(*c);
    const int before = n->runnable;
    n->runnable += delta;
    RC_CHECK_GE(n->runnable, 0);
    rc::ResourceContainer* parent = c->parent();
    if (parent == nullptr) {
      continue;
    }
    Node* pn = NodeFor(*parent);
    const bool fixed = c->attributes().sched.cls == rc::SchedClass::kFixedShare;
    if (before == 0 && n->runnable == 1) {
      // (Re)entering the runnable set: no credit for idle time.
      if (fixed) {
        n->pass = std::max(n->pass, pn->vtime);
      } else if (++pn->tshare_runnable_children == 1) {
        pn->tshare_pass = std::max(pn->tshare_pass, pn->vtime);
      }
    } else if (before == 1 && n->runnable == 0) {
      if (!fixed) {
        --pn->tshare_runnable_children;
        RC_CHECK_GE(pn->tshare_runnable_children, 0);
      }
    }
  }
  total_runnable_ += delta;
}

void HierarchicalScheduler::Enqueue(Thread* t, sim::SimTime now) {
  RC_CHECK_EQ(t->sched_cookie, nullptr);
  const rc::ContainerRef& leaf = t->sched_hint();
  RC_CHECK_NE(leaf, nullptr);
  (void)now;
  // Note: a thread queued under a throttled container waits out the window,
  // even if it is multiplexed over other (un-throttled) containers. Hard CPU
  // caps are only free of head-of-line effects when the capped activities
  // have dedicated threads/processes (the paper's CGI sand-box and guest
  // servers); an event-driven server applying caps to a subset of its own
  // connections must cooperate by deferring those connections itself.
  Node* node = NodeFor(*leaf);
  node->run_queue.push_back(t);
  t->sched_cookie = node;
  AdjustRunnable(leaf.get(), +1);
}

HierarchicalScheduler::Node* HierarchicalScheduler::PickChild(Node* parent,
                                                              sim::SimTime now,
                                                              bool allow_zero) {
  // Collect the stride candidates at this level: eligible fixed-share
  // children, and the time-share group if any of its members is eligible.
  Node* best_fixed = nullptr;
  bool group_eligible = false;

  parent->container->ForEachChild([&](rc::ResourceContainer& child) {
    Node* cn = NodeForIfExists(child);
    if (cn == nullptr || cn->runnable == 0 || Throttled(*cn, now)) {
      return;
    }
    const rc::Attributes& a = child.attributes();
    if (a.sched.cls == rc::SchedClass::kFixedShare) {
      if (best_fixed == nullptr || cn->pass < best_fixed->pass) {
        best_fixed = cn;
      }
    } else {
      if (a.sched.priority <= 0 && !allow_zero) {
        return;
      }
      group_eligible = true;
    }
  });

  const bool pick_group =
      group_eligible && (best_fixed == nullptr || parent->tshare_pass <= best_fixed->pass);

  if (!pick_group && best_fixed == nullptr) {
    return nullptr;
  }

  parent->vtime =
      std::max(parent->vtime, pick_group ? parent->tshare_pass : best_fixed->pass);

  if (!pick_group) {
    return best_fixed;
  }

  // Inside the group: decayed usage scaled by numeric priority, preferring
  // positive-priority children.
  Node* best = nullptr;
  double best_key = 0.0;
  bool best_positive = false;
  parent->container->ForEachChild([&](rc::ResourceContainer& child) {
    Node* cn = NodeForIfExists(child);
    if (cn == nullptr || cn->runnable == 0 || Throttled(*cn, now)) {
      return;
    }
    const rc::Attributes& a = child.attributes();
    if (a.sched.cls == rc::SchedClass::kFixedShare) {
      return;
    }
    const bool positive = a.sched.priority > 0;
    if (!positive && !allow_zero) {
      return;
    }
    const double key = cn->decayed / static_cast<double>(std::max(1, a.sched.priority));
    if (best == nullptr || (positive && !best_positive) ||
        (positive == best_positive && key < best_key)) {
      best = cn;
      best_key = key;
      best_positive = positive;
    }
  });
  return best;
}

Thread* HierarchicalScheduler::Descend(sim::SimTime now, bool allow_zero) {
  Node* n = NodeFor(*manager_->root());
  if (n->runnable == 0) {
    return nullptr;
  }
  while (true) {
    Node* child = PickChild(n, now, allow_zero);
    if (child != nullptr) {
      n = child;
      continue;
    }
    if (n->run_queue.empty()) {
      return nullptr;  // everything below is throttled or priority-0
    }
    Thread* t = n->run_queue.front();
    n->run_queue.pop_front();
    t->sched_cookie = nullptr;
    AdjustRunnable(n->container, -1);
    return t;
  }
}

Thread* HierarchicalScheduler::PickNext(sim::SimTime now) {
  if (Thread* t = Descend(now, /*allow_zero=*/false)) {
    return t;
  }
  // Nothing with positive priority: admit the starvation (priority-0) class.
  return Descend(now, /*allow_zero=*/true);
}

void HierarchicalScheduler::OnCharge(rc::ResourceContainer& c, sim::Duration usec,
                                     sim::SimTime now) {
  for (rc::ResourceContainer* p = &c; p != nullptr; p = p->parent()) {
    Node* n = NodeFor(*p);
    n->decayed += static_cast<double>(usec);

    // Stride pass advance at this level.
    if (rc::ResourceContainer* parent = p->parent()) {
      Node* pn = NodeFor(*parent);
      const rc::Attributes& a = p->attributes();
      if (a.sched.cls == rc::SchedClass::kFixedShare) {
        n->pass += static_cast<double>(usec) / std::max(1e-6, a.sched.fixed_share);
      } else {
        pn->tshare_pass += static_cast<double>(usec) / ResidualWeight(*parent);
      }
    }

    // CPU-limit window, budgeted against the whole machine's capacity.
    const double limit = p->attributes().cpu_limit;
    if (limit > 0.0) {
      n->window.Charge(usec, now, limit, limit_window_, capacity_cpus_);
    }
  }
}

void HierarchicalScheduler::MigrateQueued(Thread* t, sim::SimTime now) {
  if (t->sched_cookie == nullptr) {
    return;
  }
  Node* old_node = static_cast<Node*>(t->sched_cookie);
  auto& q = old_node->run_queue;
  q.erase(std::remove(q.begin(), q.end(), t), q.end());
  AdjustRunnable(old_node->container, -1);
  t->sched_cookie = nullptr;
  Enqueue(t, now);
}

void HierarchicalScheduler::Remove(Thread* t) {
  if (t->sched_cookie == nullptr) {
    return;
  }
  Node* node = static_cast<Node*>(t->sched_cookie);
  auto& q = node->run_queue;
  q.erase(std::remove(q.begin(), q.end(), t), q.end());
  AdjustRunnable(node->container, -1);
  t->sched_cookie = nullptr;
}

void HierarchicalScheduler::Tick(sim::SimTime /*now*/) {
  for (auto& [id, node] : nodes_) {
    node->decayed *= decay_;
  }
}

std::optional<sim::SimTime> HierarchicalScheduler::NextEligibleTime(sim::SimTime now) {
  std::optional<sim::SimTime> earliest;
  for (const auto& [id, node] : nodes_) {
    if (node->runnable > 0 && node->window.throttled_until > now) {
      if (!earliest.has_value() || node->window.throttled_until < *earliest) {
        earliest = node->window.throttled_until;
      }
    }
  }
  return earliest;
}

void HierarchicalScheduler::OnContainerDestroyed(rc::ResourceContainer& c) {
  Node* n = NodeForIfExists(c);
  if (n == nullptr) {
    return;
  }
  // Threads hold refs to their binding containers, so a container with
  // queued threads can never be destroyed.
  RC_CHECK(n->run_queue.empty());
  if (cache_in_container_) {
    c.set_sched_cookie(nullptr);
  }
  nodes_.erase(c.id());
}

void HierarchicalScheduler::OnContainerReparented(rc::ResourceContainer& child,
                                                  rc::ResourceContainer* old_parent,
                                                  rc::ResourceContainer* new_parent) {
  Node* cn = NodeForIfExists(child);
  if (cn == nullptr || cn->runnable == 0) {
    return;
  }
  const int k = cn->runnable;
  const bool fixed = child.attributes().sched.cls == rc::SchedClass::kFixedShare;
  for (rc::ResourceContainer* p = old_parent; p != nullptr; p = p->parent()) {
    Node* n = NodeForIfExists(*p);
    if (n != nullptr) {
      if (p == old_parent && !fixed) {
        --n->tshare_runnable_children;
      }
      n->runnable -= k;
      RC_CHECK_GE(n->runnable, 0);
    }
  }
  for (rc::ResourceContainer* p = new_parent; p != nullptr; p = p->parent()) {
    Node* n = NodeFor(*p);
    if (p == new_parent && !fixed) {
      ++n->tshare_runnable_children;
    }
    n->runnable += k;
  }
}

double HierarchicalScheduler::DecayedUsage(const rc::ResourceContainer& c) const {
  Node* n = NodeForIfExists(c);
  return n == nullptr ? 0.0 : n->decayed;
}

bool HierarchicalScheduler::IsThrottled(const rc::ResourceContainer& c,
                                        sim::SimTime now) const {
  Node* n = NodeForIfExists(c);
  return n != nullptr && Throttled(*n, now);
}

}  // namespace kernel
