#include "src/xp/spec.h"

#include <cctype>
#include <cinttypes>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <utility>

namespace xp {

namespace {

// ---------------------------------------------------------------------------
// JSON-subset document tree
// ---------------------------------------------------------------------------

struct JMember;

struct JValue {
  enum class Kind { kNull, kBool, kNumber, kString, kObject, kArray };

  using Member = JMember;

  Kind kind = Kind::kNull;
  bool b = false;
  double num = 0.0;
  std::string str;
  std::vector<JMember> members;  // kObject
  std::vector<JValue> items;     // kArray
  int line = 0;
  int col = 0;
};

struct JMember {
  std::string key;
  int key_line = 0;
  int key_col = 0;
  JValue value;
};

const char* JKindName(JValue::Kind k) {
  switch (k) {
    case JValue::Kind::kNull:
      return "null";
    case JValue::Kind::kBool:
      return "a boolean";
    case JValue::Kind::kNumber:
      return "a number";
    case JValue::Kind::kString:
      return "a string";
    case JValue::Kind::kObject:
      return "an object";
    case JValue::Kind::kArray:
      return "an array";
  }
  return "?";
}

// Shared parse/validate state: source text (for excerpts) plus the first
// diagnostic. Fail-fast: once `error` is set, everything else no-ops.
struct Ctx {
  std::string filename;
  std::vector<std::string> lines;
  std::string error;

  bool failed() const { return !error.empty(); }

  void Fail(int line, int col, const std::string& message) {
    if (failed()) {
      return;
    }
    std::ostringstream os;
    os << filename << ":" << line << ":" << col << ": " << message;
    if (line >= 1 && static_cast<std::size_t>(line) <= lines.size()) {
      os << "\n  " << line << " | " << lines[static_cast<std::size_t>(line) - 1];
    }
    error = os.str();
  }
};

std::vector<std::string> SplitLines(const std::string& text) {
  std::vector<std::string> lines;
  std::string cur;
  for (char c : text) {
    if (c == '\n') {
      lines.push_back(cur);
      cur.clear();
    } else {
      cur.push_back(c);
    }
  }
  lines.push_back(cur);
  return lines;
}

// ---------------------------------------------------------------------------
// Lexer + recursive-descent parser
// ---------------------------------------------------------------------------

class Parser {
 public:
  Parser(const std::string& text, Ctx* ctx) : text_(text), ctx_(ctx) {}

  JValue ParseDocument() {
    SkipWs();
    JValue v = ParseValue();
    SkipWs();
    if (!ctx_->failed() && pos_ < text_.size()) {
      ctx_->Fail(line_, Col(), "trailing content after the top-level value");
    }
    return v;
  }

 private:
  int Col() const { return static_cast<int>(pos_ - line_start_) + 1; }

  bool AtEnd() const { return pos_ >= text_.size(); }
  char Peek() const { return text_[pos_]; }

  void Advance() {
    if (text_[pos_] == '\n') {
      ++line_;
      line_start_ = pos_ + 1;
    }
    ++pos_;
  }

  void SkipWs() {
    while (!AtEnd()) {
      const char c = Peek();
      if (c == ' ' || c == '\t' || c == '\r' || c == '\n') {
        Advance();
      } else if (c == '/' && pos_ + 1 < text_.size() && text_[pos_ + 1] == '/') {
        while (!AtEnd() && Peek() != '\n') {
          Advance();
        }
      } else {
        break;
      }
    }
  }

  JValue ParseValue() {
    JValue v;
    if (ctx_->failed()) {
      return v;
    }
    if (AtEnd()) {
      ctx_->Fail(line_, Col(), "unexpected end of input (expected a value)");
      return v;
    }
    v.line = line_;
    v.col = Col();
    const char c = Peek();
    if (c == '{') {
      return ParseObject();
    }
    if (c == '[') {
      return ParseArray();
    }
    if (c == '"') {
      v.kind = JValue::Kind::kString;
      v.str = ParseString();
      return v;
    }
    if (c == '-' || (c >= '0' && c <= '9')) {
      v.kind = JValue::Kind::kNumber;
      v.num = ParseNumber();
      return v;
    }
    if (ConsumeWord("true")) {
      v.kind = JValue::Kind::kBool;
      v.b = true;
      return v;
    }
    if (ConsumeWord("false")) {
      v.kind = JValue::Kind::kBool;
      v.b = false;
      return v;
    }
    if (ConsumeWord("null")) {
      v.kind = JValue::Kind::kNull;
      return v;
    }
    ctx_->Fail(line_, Col(), std::string("unexpected character '") + c + "'");
    return v;
  }

  bool ConsumeWord(const char* word) {
    const std::size_t n = std::strlen(word);
    if (text_.compare(pos_, n, word) != 0) {
      return false;
    }
    // Must not be a prefix of a longer identifier.
    if (pos_ + n < text_.size() &&
        (std::isalnum(static_cast<unsigned char>(text_[pos_ + n])) || text_[pos_ + n] == '_')) {
      return false;
    }
    for (std::size_t i = 0; i < n; ++i) {
      Advance();
    }
    return true;
  }

  std::string ParseString() {
    std::string out;
    Advance();  // opening quote
    while (true) {
      if (AtEnd() || Peek() == '\n') {
        ctx_->Fail(line_, Col(), "unterminated string");
        return out;
      }
      char c = Peek();
      if (c == '"') {
        Advance();
        return out;
      }
      if (c == '\\') {
        Advance();
        if (AtEnd()) {
          ctx_->Fail(line_, Col(), "unterminated string");
          return out;
        }
        const char e = Peek();
        switch (e) {
          case '"':
            out.push_back('"');
            break;
          case '\\':
            out.push_back('\\');
            break;
          case '/':
            out.push_back('/');
            break;
          case 'n':
            out.push_back('\n');
            break;
          case 't':
            out.push_back('\t');
            break;
          case 'r':
            out.push_back('\r');
            break;
          default:
            ctx_->Fail(line_, Col(), std::string("unsupported string escape '\\") + e + "'");
            return out;
        }
        Advance();
        continue;
      }
      out.push_back(c);
      Advance();
    }
  }

  double ParseNumber() {
    const std::size_t start = pos_;
    const int start_line = line_;
    const int start_col = Col();
    if (Peek() == '-') {
      Advance();
    }
    while (!AtEnd()) {
      const char c = Peek();
      if ((c >= '0' && c <= '9') || c == '.' || c == 'e' || c == 'E' || c == '+' || c == '-') {
        Advance();
      } else {
        break;
      }
    }
    const std::string token = text_.substr(start, pos_ - start);
    char* end = nullptr;
    const double v = std::strtod(token.c_str(), &end);
    if (end == nullptr || *end != '\0' || token.empty()) {
      ctx_->Fail(start_line, start_col, "malformed number \"" + token + "\"");
      return 0.0;
    }
    return v;
  }

  JValue ParseObject() {
    JValue v;
    v.kind = JValue::Kind::kObject;
    v.line = line_;
    v.col = Col();
    Advance();  // '{'
    SkipWs();
    if (!AtEnd() && Peek() == '}') {
      Advance();
      return v;
    }
    while (true) {
      SkipWs();
      if (ctx_->failed()) {
        return v;
      }
      if (AtEnd() || Peek() != '"') {
        ctx_->Fail(line_, Col(), "expected a quoted key");
        return v;
      }
      JValue::Member m;
      m.key_line = line_;
      m.key_col = Col();
      m.key = ParseString();
      SkipWs();
      if (AtEnd() || Peek() != ':') {
        ctx_->Fail(line_, Col(), "expected ':' after key \"" + m.key + "\"");
        return v;
      }
      Advance();  // ':'
      SkipWs();
      m.value = ParseValue();
      if (ctx_->failed()) {
        return v;
      }
      for (const auto& prev : v.members) {
        if (prev.key == m.key) {
          ctx_->Fail(m.key_line, m.key_col, "duplicate key \"" + m.key + "\"");
          return v;
        }
      }
      v.members.push_back(std::move(m));
      SkipWs();
      if (AtEnd()) {
        ctx_->Fail(line_, Col(), "unterminated object (expected ',' or '}')");
        return v;
      }
      if (Peek() == ',') {
        Advance();
        continue;
      }
      if (Peek() == '}') {
        Advance();
        return v;
      }
      ctx_->Fail(line_, Col(), "expected ',' or '}' in object");
      return v;
    }
  }

  JValue ParseArray() {
    JValue v;
    v.kind = JValue::Kind::kArray;
    v.line = line_;
    v.col = Col();
    Advance();  // '['
    SkipWs();
    if (!AtEnd() && Peek() == ']') {
      Advance();
      return v;
    }
    while (true) {
      SkipWs();
      v.items.push_back(ParseValue());
      if (ctx_->failed()) {
        return v;
      }
      SkipWs();
      if (AtEnd()) {
        ctx_->Fail(line_, Col(), "unterminated array (expected ',' or ']')");
        return v;
      }
      if (Peek() == ',') {
        Advance();
        continue;
      }
      if (Peek() == ']') {
        Advance();
        return v;
      }
      ctx_->Fail(line_, Col(), "expected ',' or ']' in array");
      return v;
    }
  }

  const std::string& text_;
  Ctx* const ctx_;
  std::size_t pos_ = 0;
  int line_ = 1;
  std::size_t line_start_ = 0;
};

// ---------------------------------------------------------------------------
// Schema mapping
// ---------------------------------------------------------------------------

// Reads one object's members by name, tracking consumption so that Finish()
// can reject unknown keys — the diagnostic points at the key itself.
class ObjReader {
 public:
  ObjReader(Ctx* ctx, const JValue& v, std::string path)
      : ctx_(ctx), v_(v), path_(std::move(path)) {
    if (v_.kind != JValue::Kind::kObject) {
      ctx_->Fail(v_.line, v_.col,
                 path_ + " must be an object, got " + JKindName(v_.kind));
    } else {
      consumed_.assign(v_.members.size(), false);
    }
  }

  const std::string& path() const { return path_; }

  const JValue* Get(const char* key) {
    if (v_.kind != JValue::Kind::kObject) {
      return nullptr;
    }
    for (std::size_t i = 0; i < v_.members.size(); ++i) {
      if (v_.members[i].key == key) {
        consumed_[i] = true;
        return &v_.members[i].value;
      }
    }
    return nullptr;
  }

  void Bool(const char* key, bool* out) {
    const JValue* j = Get(key);
    if (j == nullptr || ctx_->failed()) {
      return;
    }
    if (j->kind != JValue::Kind::kBool) {
      TypeError(key, *j, "a boolean");
      return;
    }
    *out = j->b;
  }

  void Num(const char* key, double* out) {
    const JValue* j = Get(key);
    if (j == nullptr || ctx_->failed()) {
      return;
    }
    if (j->kind != JValue::Kind::kNumber) {
      TypeError(key, *j, "a number");
      return;
    }
    *out = j->num;
  }

  void Int(const char* key, int* out) {
    const JValue* j = Get(key);
    if (j == nullptr || ctx_->failed()) {
      return;
    }
    if (j->kind != JValue::Kind::kNumber || j->num != std::floor(j->num)) {
      TypeError(key, *j, "an integer");
      return;
    }
    *out = static_cast<int>(j->num);
  }

  void I64(const char* key, std::int64_t* out) {
    const JValue* j = Get(key);
    if (j == nullptr || ctx_->failed()) {
      return;
    }
    if (j->kind != JValue::Kind::kNumber || j->num != std::floor(j->num)) {
      TypeError(key, *j, "an integer");
      return;
    }
    *out = static_cast<std::int64_t>(j->num);
  }

  void U32(const char* key, std::uint32_t* out) {
    const JValue* j = Get(key);
    if (j == nullptr || ctx_->failed()) {
      return;
    }
    if (j->kind != JValue::Kind::kNumber || j->num != std::floor(j->num) || j->num < 0) {
      TypeError(key, *j, "a non-negative integer");
      return;
    }
    *out = static_cast<std::uint32_t>(j->num);
  }

  void U64(const char* key, std::uint64_t* out) {
    const JValue* j = Get(key);
    if (j == nullptr || ctx_->failed()) {
      return;
    }
    if (j->kind != JValue::Kind::kNumber || j->num != std::floor(j->num) || j->num < 0) {
      TypeError(key, *j, "a non-negative integer");
      return;
    }
    *out = static_cast<std::uint64_t>(j->num);
  }

  void Str(const char* key, std::string* out) {
    const JValue* j = Get(key);
    if (j == nullptr || ctx_->failed()) {
      return;
    }
    if (j->kind != JValue::Kind::kString) {
      TypeError(key, *j, "a string");
      return;
    }
    *out = j->str;
  }

  // Enum-style string: value must be one of `allowed` (nullptr-terminated).
  void Enum(const char* key, std::string* out, const char* const* allowed) {
    const JValue* j = Get(key);
    if (j == nullptr || ctx_->failed()) {
      return;
    }
    if (j->kind != JValue::Kind::kString) {
      TypeError(key, *j, "a string");
      return;
    }
    for (const char* const* a = allowed; *a != nullptr; ++a) {
      if (j->str == *a) {
        *out = j->str;
        return;
      }
    }
    std::string expected;
    for (const char* const* a = allowed; *a != nullptr; ++a) {
      if (!expected.empty()) {
        expected += (*(a + 1) == nullptr) ? ", or " : ", ";
      }
      expected += std::string("\"") + *a + "\"";
    }
    ctx_->Fail(j->line, j->col,
               "invalid value \"" + j->str + "\" for \"" + key + "\" in " + path_ +
                   " (expected " + expected + ")");
  }

  void Finish() {
    if (ctx_->failed() || v_.kind != JValue::Kind::kObject) {
      return;
    }
    for (std::size_t i = 0; i < v_.members.size(); ++i) {
      if (!consumed_[i]) {
        ctx_->Fail(v_.members[i].key_line, v_.members[i].key_col,
                   "unknown key \"" + v_.members[i].key + "\" in " + path_);
        return;
      }
    }
  }

  void Fail(const char* key, const std::string& message) {
    const JValue* j = nullptr;
    for (std::size_t i = 0; i < v_.members.size(); ++i) {
      if (v_.members[i].key == key) {
        j = &v_.members[i].value;
        break;
      }
    }
    ctx_->Fail(j != nullptr ? j->line : v_.line, j != nullptr ? j->col : v_.col, message);
  }

 private:
  void TypeError(const char* key, const JValue& j, const char* want) {
    ctx_->Fail(j.line, j.col, std::string("\"") + key + "\" in " + path_ + " must be " +
                                  want + ", got " + JKindName(j.kind));
  }

  Ctx* const ctx_;
  const JValue& v_;
  const std::string path_;
  std::vector<bool> consumed_;
};

// ---------------------------------------------------------------------------
// Field parsers
// ---------------------------------------------------------------------------

bool ParseDottedQuad(const std::string& s, std::uint32_t* out) {
  unsigned a = 0, b = 0, c = 0, d = 0;
  char tail = '\0';
  if (std::sscanf(s.c_str(), "%u.%u.%u.%u%c", &a, &b, &c, &d, &tail) != 4) {
    return false;
  }
  if (a > 255 || b > 255 || c > 255 || d > 255) {
    return false;
  }
  *out = (static_cast<std::uint32_t>(a) << 24) | (static_cast<std::uint32_t>(b) << 16) |
         (static_cast<std::uint32_t>(c) << 8) | static_cast<std::uint32_t>(d);
  return true;
}

void ReadAddr(Ctx* ctx, ObjReader& r, const char* key, AddrSpec* out) {
  std::string text;
  r.Str(key, &text);
  if (ctx->failed() || text.empty()) {
    return;
  }
  std::uint32_t v = 0;
  if (!ParseDottedQuad(text, &v)) {
    r.Fail(key, "\"" + text + "\" is not a dotted-quad IPv4 address");
    return;
  }
  out->text = text;
  out->value = v;
}

void ReadFilter(Ctx* ctx, ObjReader& r, const char* key, FilterSpec* out) {
  std::string text;
  r.Str(key, &text);
  if (ctx->failed() || text.empty()) {
    return;
  }
  std::string body = text;
  out->negate = false;
  if (!body.empty() && body[0] == '!') {
    out->negate = true;
    body = body.substr(1);
  }
  const std::size_t slash = body.find('/');
  if (slash == std::string::npos) {
    r.Fail(key, "filter \"" + text + "\" must look like \"10.1.0.0/16\" (optional leading '!')");
    return;
  }
  const std::string addr = body.substr(0, slash);
  const std::string len = body.substr(slash + 1);
  std::uint32_t v = 0;
  char* end = nullptr;
  const long n = std::strtol(len.c_str(), &end, 10);
  if (!ParseDottedQuad(addr, &v) || end == nullptr || *end != '\0' || n < 0 || n > 32) {
    r.Fail(key, "filter \"" + text + "\" must look like \"10.1.0.0/16\" (optional leading '!')");
    return;
  }
  out->base.text = addr;
  out->base.value = v;
  out->prefix_len = static_cast<int>(n);
}

// Range guards. Each produces a deterministic one-line diagnostic.
void RequireRange(ObjReader& r, const char* key, double v, double lo, double hi) {
  if (v < lo || v > hi) {
    std::ostringstream os;
    os << "\"" << key << "\" in " << r.path() << " must be in [" << lo << ", " << hi
       << "], got " << v;
    r.Fail(key, os.str());
  }
}

void RequireMin(ObjReader& r, const char* key, double v, double lo) {
  if (v < lo) {
    std::ostringstream os;
    os << "\"" << key << "\" in " << r.path() << " must be >= " << lo << ", got " << v;
    r.Fail(key, os.str());
  }
}

constexpr const char* kSchedClassNames[] = {"time_share", "fixed_share", nullptr};

void ReadSchedFields(Ctx* ctx, ObjReader& r, rc::SchedParams* out) {
  std::string cls = out->cls == rc::SchedClass::kFixedShare ? "fixed_share" : "time_share";
  r.Enum("class", &cls, kSchedClassNames);
  if (ctx->failed()) {
    return;
  }
  out->cls = cls == "fixed_share" ? rc::SchedClass::kFixedShare : rc::SchedClass::kTimeShare;
  r.Int("priority", &out->priority);
  r.Num("share", &out->fixed_share);
  if (ctx->failed()) {
    return;
  }
  RequireRange(r, "priority", out->priority, rc::kMinPriority, rc::kMaxPriority);
  RequireRange(r, "share", out->fixed_share, 0.0, 1.0);
  if (!ctx->failed() && out->cls == rc::SchedClass::kFixedShare && out->fixed_share <= 0.0) {
    r.Fail("class", "a fixed_share container needs \"share\" > 0 in " + r.path());
  }
}

void ReadResourcePolicy(Ctx* ctx, ObjReader& parent, const char* key, rc::ResourcePolicy* out) {
  const JValue* j = parent.Get(key);
  if (j == nullptr || ctx->failed()) {
    return;
  }
  ObjReader r(ctx, *j, parent.path() + "." + key);
  if (r.Get("class") != nullptr || r.Get("priority") != nullptr || r.Get("share") != nullptr) {
    out->override_sched = true;
  }
  // Re-read through the typed accessors (Get above already marked them).
  ObjReader r2(ctx, *j, parent.path() + "." + key);
  ReadSchedFields(ctx, r2, &out->sched);
  r2.Num("limit", &out->limit);
  if (!ctx->failed()) {
    RequireRange(r2, "limit", out->limit, 0.0, 1.0);
  }
  r2.Finish();
}

void ReadAttributes(Ctx* ctx, ObjReader& r, rc::Attributes* out) {
  ReadSchedFields(ctx, r, &out->sched);
  r.Num("cpu_limit", &out->cpu_limit);
  double memory_limit_mb =
      static_cast<double>(out->memory_limit_bytes) / (1024.0 * 1024.0);
  r.Num("memory_limit_mb", &memory_limit_mb);
  r.Int("network_priority", &out->network_priority);
  if (ctx->failed()) {
    return;
  }
  out->memory_limit_bytes = static_cast<std::int64_t>(std::llround(memory_limit_mb * 1024.0 * 1024.0));
  RequireRange(r, "cpu_limit", out->cpu_limit, 0.0, 1.0);
  RequireMin(r, "memory_limit_mb", memory_limit_mb, 0.0);
  RequireRange(r, "network_priority", out->network_priority, -1, rc::kMaxPriority);
  ReadResourcePolicy(ctx, r, "disk", &out->disk);
  ReadResourcePolicy(ctx, r, "link", &out->link);
  ReadResourcePolicy(ctx, r, "memory", &out->memory);
}

void ReadSizeDist(Ctx* ctx, ObjReader& parent, const char* key, SizeDistSpec* out) {
  const JValue* j = parent.Get(key);
  if (j == nullptr || ctx->failed()) {
    return;
  }
  ObjReader r(ctx, *j, parent.path() + "." + key);
  static constexpr const char* kDists[] = {"fixed", "table", "pareto", nullptr};
  r.Enum("dist", &out->dist, kDists);
  r.Num("fixed_kb", &out->fixed_kb);
  r.Num("alpha", &out->pareto_alpha);
  r.Num("min_kb", &out->pareto_min_kb);
  r.Num("max_kb", &out->pareto_max_kb);
  const JValue* table = r.Get("table");
  if (table != nullptr && !ctx->failed()) {
    if (table->kind != JValue::Kind::kArray) {
      ctx->Fail(table->line, table->col, "\"table\" in " + r.path() + " must be an array");
      return;
    }
    out->table.clear();
    for (std::size_t i = 0; i < table->items.size(); ++i) {
      ObjReader e(ctx, table->items[i],
                  r.path() + ".table[" + std::to_string(i) + "]");
      SizeDistSpec::TableEntry entry;
      e.Num("kb", &entry.kb);
      e.Num("weight", &entry.weight);
      e.Finish();
      if (ctx->failed()) {
        return;
      }
      out->table.push_back(entry);
    }
  }
  r.Finish();
  if (ctx->failed()) {
    return;
  }
  if (out->dist == "table" && out->table.empty()) {
    ctx->Fail(j->line, j->col, "\"table\" dist in " + r.path() + " needs a non-empty \"table\"");
    return;
  }
  if (out->dist == "pareto" &&
      (out->pareto_alpha <= 0.0 || out->pareto_min_kb <= 0.0 ||
       out->pareto_max_kb < out->pareto_min_kb)) {
    ctx->Fail(j->line, j->col,
              "\"pareto\" dist in " + r.path() +
                  " needs alpha > 0 and 0 < min_kb <= max_kb");
  }
}

// ---------------------------------------------------------------------------
// Section parsers
// ---------------------------------------------------------------------------

void ReadMachine(Ctx* ctx, ObjReader& top, MachineSpec* out) {
  const JValue* j = top.Get("machine");
  if (j == nullptr || ctx->failed()) {
    return;
  }
  ObjReader r(ctx, *j, "machine");
  r.Int("cpus", &out->cpus);
  static constexpr const char* kSteering[] = {"flow_hash", "cpu0", "round_robin",
                                              nullptr};
  r.Enum("irq_steering", &out->irq_steering, kSteering);
  r.Num("link_mbps", &out->link_mbps);
  r.Num("memory_mb", &out->memory_mb);
  r.Finish();
  if (ctx->failed()) {
    return;
  }
  RequireRange(r, "cpus", out->cpus, 1, 64);
  RequireMin(r, "link_mbps", out->link_mbps, 0.0);
  RequireMin(r, "memory_mb", out->memory_mb, 0.0);
}

void ReadContainers(Ctx* ctx, ObjReader& top, Spec* spec) {
  const JValue* j = top.Get("containers");
  if (j == nullptr || ctx->failed()) {
    return;
  }
  if (j->kind != JValue::Kind::kArray) {
    ctx->Fail(j->line, j->col, "\"containers\" must be an array");
    return;
  }
  for (std::size_t i = 0; i < j->items.size(); ++i) {
    const std::string path = "containers[" + std::to_string(i) + "]";
    ObjReader r(ctx, j->items[i], path);
    ContainerSpec c;
    r.Str("name", &c.name);
    r.Str("parent", &c.parent);
    ReadAttributes(ctx, r, &c.attrs);
    r.Finish();
    if (ctx->failed()) {
      return;
    }
    if (c.name.empty()) {
      ctx->Fail(j->items[i].line, j->items[i].col, path + " needs a non-empty \"name\"");
      return;
    }
    for (const ContainerSpec& prev : spec->containers) {
      if (prev.name == c.name) {
        ctx->Fail(j->items[i].line, j->items[i].col,
                  "duplicate container name \"" + c.name + "\"");
        return;
      }
    }
    if (!c.parent.empty()) {
      bool found = false;
      for (const ContainerSpec& prev : spec->containers) {
        found = found || prev.name == c.parent;
      }
      if (!found) {
        ctx->Fail(j->items[i].line, j->items[i].col,
                  path + ": parent \"" + c.parent +
                      "\" is not a previously declared container");
        return;
      }
    }
    spec->containers.push_back(std::move(c));
  }
}

void ReadOneServer(Ctx* ctx, const JValue& j, const std::string& path, Spec* spec) {
  ObjReader r(ctx, j, path);
  ServerSpec s;
  static constexpr const char* kArchs[] = {"event", "threaded", "prefork", nullptr};
  r.Enum("arch", &s.arch, kArchs);
  r.Int("port", &s.port);
  r.Str("container", &s.container);
  r.Bool("use_containers", &s.use_containers);
  r.Bool("use_event_api", &s.use_event_api);
  r.Bool("sort_ready_by_priority", &s.sort_ready_by_priority);
  r.Bool("nest_under_default", &s.nest_under_default);
  r.Bool("cgi_sandbox", &s.cgi_sandbox);
  r.Num("cgi_share", &s.cgi_share);
  r.Bool("cgi_new_principal", &s.cgi_new_principal);
  r.Bool("syn_defense", &s.syn_defense);
  r.I64("syn_defense_threshold", &s.syn_defense_threshold);
  r.Int("syn_backlog", &s.syn_backlog);
  r.Int("accept_backlog", &s.accept_backlog);
  r.Num("cache_capacity_mb", &s.cache_capacity_mb);
  r.Num("file_miss_penalty_usec", &s.file_miss_penalty_usec);
  r.Bool("use_disk_model", &s.use_disk_model);
  r.Int("worker_threads", &s.worker_threads);
  r.Int("worker_processes", &s.worker_processes);
  const JValue* classes = r.Get("classes");
  if (classes != nullptr && !ctx->failed()) {
    if (classes->kind != JValue::Kind::kArray) {
      ctx->Fail(classes->line, classes->col, "\"classes\" in " + path + " must be an array");
      return;
    }
    for (std::size_t k = 0; k < classes->items.size(); ++k) {
      const std::string cpath = path + ".classes[" + std::to_string(k) + "]";
      ObjReader cr(ctx, classes->items[k], cpath);
      ListenClassSpec cls;
      cr.Str("name", &cls.name);
      ReadFilter(ctx, cr, "filter", &cls.filter);
      cr.Int("priority", &cls.priority);
      cr.Num("fixed_share", &cls.fixed_share);
      cr.Num("cpu_limit", &cls.cpu_limit);
      cr.Finish();
      if (ctx->failed()) {
        return;
      }
      RequireRange(cr, "priority", cls.priority, rc::kMinPriority, rc::kMaxPriority);
      RequireRange(cr, "fixed_share", cls.fixed_share, 0.0, 1.0);
      RequireRange(cr, "cpu_limit", cls.cpu_limit, 0.0, 1.0);
      if (ctx->failed()) {
        return;
      }
      s.classes.push_back(std::move(cls));
    }
  }
  r.Finish();
  if (ctx->failed()) {
    return;
  }
  RequireRange(r, "port", s.port, 1, 65535);
  RequireRange(r, "cgi_share", s.cgi_share, 0.0, 1.0);
  RequireMin(r, "syn_backlog", s.syn_backlog, 1);
  RequireMin(r, "accept_backlog", s.accept_backlog, 1);
  RequireMin(r, "cache_capacity_mb", s.cache_capacity_mb, 0.0);
  RequireMin(r, "file_miss_penalty_usec", s.file_miss_penalty_usec, 0.0);
  RequireMin(r, "worker_threads", s.worker_threads, 1);
  RequireMin(r, "worker_processes", s.worker_processes, 1);
  if (ctx->failed()) {
    return;
  }
  if (!s.container.empty()) {
    bool found = false;
    for (const ContainerSpec& c : spec->containers) {
      found = found || c.name == s.container;
    }
    if (!found) {
      ctx->Fail(j.line, j.col,
                path + ": container \"" + s.container + "\" is not declared in \"containers\"");
      return;
    }
  }
  for (const ServerSpec& prev : spec->servers) {
    if (prev.port == s.port) {
      ctx->Fail(j.line, j.col, path + ": duplicate server port " + std::to_string(s.port));
      return;
    }
  }
  spec->servers.push_back(std::move(s));
}

void ReadServers(Ctx* ctx, ObjReader& top, Spec* spec) {
  const JValue* one = top.Get("server");
  const JValue* many = top.Get("servers");
  if (ctx->failed()) {
    return;
  }
  if (one != nullptr && many != nullptr) {
    ctx->Fail(many->line, many->col, "use either \"server\" or \"servers\", not both");
    return;
  }
  if (one != nullptr) {
    ReadOneServer(ctx, *one, "server", spec);
    return;
  }
  if (many != nullptr) {
    if (many->kind != JValue::Kind::kArray) {
      ctx->Fail(many->line, many->col, "\"servers\" must be an array");
      return;
    }
    for (std::size_t i = 0; i < many->items.size(); ++i) {
      ReadOneServer(ctx, many->items[i], "servers[" + std::to_string(i) + "]", spec);
      if (ctx->failed()) {
        return;
      }
    }
  }
}

void ReadFiles(Ctx* ctx, ObjReader& top, Spec* spec) {
  const JValue* j = top.Get("files");
  if (j == nullptr || ctx->failed()) {
    return;
  }
  if (j->kind != JValue::Kind::kArray) {
    ctx->Fail(j->line, j->col, "\"files\" must be an array");
    return;
  }
  for (std::size_t i = 0; i < j->items.size(); ++i) {
    const std::string path = "files[" + std::to_string(i) + "]";
    ObjReader r(ctx, j->items[i], path);
    FileSetSpec f;
    r.U32("first_doc_id", &f.first_doc_id);
    r.Int("count", &f.count);
    ReadSizeDist(ctx, r, "size", &f.size);
    r.Finish();
    if (ctx->failed()) {
      return;
    }
    RequireMin(r, "first_doc_id", f.first_doc_id, 1);
    RequireMin(r, "count", f.count, 1);
    if (ctx->failed()) {
      return;
    }
    spec->files.push_back(std::move(f));
  }
}

void ReadPopulations(Ctx* ctx, ObjReader& top, Spec* spec) {
  const JValue* j = top.Get("populations");
  if (j == nullptr || ctx->failed()) {
    return;
  }
  if (j->kind != JValue::Kind::kArray) {
    ctx->Fail(j->line, j->col, "\"populations\" must be an array");
    return;
  }
  for (std::size_t i = 0; i < j->items.size(); ++i) {
    const std::string path = "populations[" + std::to_string(i) + "]";
    ObjReader r(ctx, j->items[i], path);
    PopulationSpec p;
    r.Str("name", &p.name);
    static constexpr const char* kArrivals[] = {"closed_loop", "open_loop", "on_off", nullptr};
    r.Enum("arrival", &p.arrival, kArrivals);
    r.Int("clients", &p.clients);
    r.Num("rate_per_sec", &p.rate_per_sec);
    r.Int("conns_per_session", &p.conns_per_session);
    r.Num("on_s", &p.on_s);
    r.Num("off_s", &p.off_s);
    static constexpr const char* kLayouts[] = {"flat", "blocks250", nullptr};
    r.Enum("layout", &p.layout, kLayouts);
    ReadAddr(ctx, r, "base_addr", &p.base_addr);
    r.Int("class", &p.client_class);
    r.Int("requests_per_conn", &p.requests_per_conn);
    r.U32("doc_id", &p.doc_id);
    r.Num("response_kb", &p.response_kb);
    r.U32("docs_first_id", &p.docs_first_id);
    r.Int("docs_count", &p.docs_count);
    r.Bool("is_cgi", &p.is_cgi);
    r.Num("cgi_cpu_ms", &p.cgi_cpu_ms);
    r.Num("think_ms", &p.think_ms);
    r.Num("connect_timeout_ms", &p.connect_timeout_ms);
    r.Num("request_timeout_s", &p.request_timeout_s);
    r.Num("retry_backoff_ms", &p.retry_backoff_ms);
    r.Int("port", &p.port);
    r.Num("start_s", &p.start_s);
    r.Num("stagger_ms", &p.stagger_ms);
    r.Num("stop_s", &p.stop_s);
    r.Finish();
    if (ctx->failed()) {
      return;
    }
    RequireMin(r, "clients", p.clients, 1);
    RequireMin(r, "rate_per_sec", p.rate_per_sec, 0.001);
    RequireMin(r, "conns_per_session", p.conns_per_session, 1);
    RequireMin(r, "on_s", p.on_s, 0.001);
    RequireMin(r, "off_s", p.off_s, 0.001);
    RequireRange(r, "class", p.client_class, 0, 7);
    RequireMin(r, "requests_per_conn", p.requests_per_conn, 1);
    RequireMin(r, "response_kb", p.response_kb, 0.001);
    RequireMin(r, "cgi_cpu_ms", p.cgi_cpu_ms, 0.0);
    RequireMin(r, "think_ms", p.think_ms, 0.0);
    RequireMin(r, "connect_timeout_ms", p.connect_timeout_ms, 0.001);
    RequireMin(r, "request_timeout_s", p.request_timeout_s, 0.0);
    RequireMin(r, "retry_backoff_ms", p.retry_backoff_ms, 0.0);
    RequireMin(r, "stagger_ms", p.stagger_ms, 0.0);
    RequireMin(r, "start_s", p.start_s, 0.0);
    RequireMin(r, "stop_s", p.stop_s, 0.0);
    if (ctx->failed()) {
      return;
    }
    for (const PopulationSpec& prev : spec->populations) {
      if (prev.name == p.name) {
        ctx->Fail(j->items[i].line, j->items[i].col,
                  "duplicate population name \"" + p.name + "\"");
        return;
      }
    }
    if (p.docs_count > 0) {
      bool covered = false;
      for (const FileSetSpec& f : spec->files) {
        covered = covered ||
                  (p.docs_first_id >= f.first_doc_id &&
                   p.docs_first_id + static_cast<std::uint32_t>(p.docs_count) <=
                       f.first_doc_id + static_cast<std::uint32_t>(f.count));
      }
      if (!covered) {
        ctx->Fail(j->items[i].line, j->items[i].col,
                  path + ": docs_first_id/docs_count do not lie inside any \"files\" range");
        return;
      }
    }
    spec->populations.push_back(std::move(p));
  }
}

void ReadWorkloads(Ctx* ctx, ObjReader& top, Spec* spec) {
  const JValue* j = top.Get("workloads");
  if (j == nullptr || ctx->failed()) {
    return;
  }
  if (j->kind != JValue::Kind::kArray) {
    ctx->Fail(j->line, j->col, "\"workloads\" must be an array");
    return;
  }
  for (std::size_t i = 0; i < j->items.size(); ++i) {
    const std::string path = "workloads[" + std::to_string(i) + "]";
    ObjReader r(ctx, j->items[i], path);
    WorkloadSpec w;
    static constexpr const char* kKinds[] = {"disk_reader", "cache_stream", "cache_pin",
                                             nullptr};
    r.Enum("kind", &w.kind, kKinds);
    r.Str("name", &w.name);
    r.Str("container", &w.container);
    r.Int("threads", &w.threads);
    r.Num("read_kb", &w.read_kb);
    r.Num("period_ms", &w.period_ms);
    r.Num("bytes_kb", &w.bytes_kb);
    r.Int("docs", &w.docs);
    r.Num("doc_bytes_kb", &w.doc_bytes_kb);
    r.Num("sample_period_ms", &w.sample_period_ms);
    r.U32("first_doc_id", &w.first_doc_id);
    r.Finish();
    if (ctx->failed()) {
      return;
    }
    RequireMin(r, "threads", w.threads, 1);
    RequireMin(r, "read_kb", w.read_kb, 0.001);
    RequireMin(r, "period_ms", w.period_ms, 0.001);
    RequireMin(r, "bytes_kb", w.bytes_kb, 0.001);
    RequireMin(r, "docs", w.docs, 1);
    RequireMin(r, "doc_bytes_kb", w.doc_bytes_kb, 0.0);
    RequireMin(r, "sample_period_ms", w.sample_period_ms, 0.001);
    if (ctx->failed()) {
      return;
    }
    if (w.name.empty()) {
      ctx->Fail(j->items[i].line, j->items[i].col, path + " needs a non-empty \"name\"");
      return;
    }
    for (const WorkloadSpec& prev : spec->workloads) {
      if (prev.name == w.name) {
        ctx->Fail(j->items[i].line, j->items[i].col,
                  "duplicate workload name \"" + w.name + "\"");
        return;
      }
    }
    bool found = false;
    for (const ContainerSpec& c : spec->containers) {
      found = found || c.name == w.container;
    }
    if (!found) {
      ctx->Fail(j->items[i].line, j->items[i].col,
                path + ": container \"" + w.container +
                    "\" is not declared in \"containers\"");
      return;
    }
    spec->workloads.push_back(std::move(w));
  }
}

void ReadAttacks(Ctx* ctx, ObjReader& top, Spec* spec) {
  const JValue* j = top.Get("attacks");
  if (j == nullptr || ctx->failed()) {
    return;
  }
  if (j->kind != JValue::Kind::kArray) {
    ctx->Fail(j->line, j->col, "\"attacks\" must be an array");
    return;
  }
  for (std::size_t i = 0; i < j->items.size(); ++i) {
    const std::string path = "attacks[" + std::to_string(i) + "]";
    ObjReader r(ctx, j->items[i], path);
    AttackSpec a;
    a.prefix = AddrSpec{"10.99.0.0", (10u << 24) | (99u << 16)};
    a.addr = AddrSpec{"10.66.0.1", (10u << 24) | (66u << 16) | 1u};
    static constexpr const char* kKinds[] = {"syn_flood", "conn_hoard", nullptr};
    r.Enum("kind", &a.kind, kKinds);
    r.Str("name", &a.name);
    ReadAddr(ctx, r, "prefix", &a.prefix);
    r.Num("rate_per_sec", &a.rate_per_sec);
    ReadAddr(ctx, r, "addr", &a.addr);
    r.Int("connections", &a.connections);
    r.Num("open_interval_ms", &a.open_interval_ms);
    r.Num("hold_s", &a.hold_s);
    r.Num("start_s", &a.start_s);
    r.Num("stop_s", &a.stop_s);
    r.Finish();
    if (ctx->failed()) {
      return;
    }
    RequireMin(r, "rate_per_sec", a.rate_per_sec, 0.001);
    RequireMin(r, "connections", a.connections, 1);
    RequireMin(r, "open_interval_ms", a.open_interval_ms, 0.001);
    RequireMin(r, "hold_s", a.hold_s, 0.0);
    RequireMin(r, "start_s", a.start_s, 0.0);
    RequireMin(r, "stop_s", a.stop_s, 0.0);
    if (ctx->failed()) {
      return;
    }
    if (a.name.empty()) {
      a.name = a.kind + "-" + std::to_string(i);
    }
    spec->attacks.push_back(std::move(a));
  }
}

void ReadPhases(Ctx* ctx, ObjReader& top, PhaseSpec* out) {
  const JValue* j = top.Get("phases");
  if (j == nullptr || ctx->failed()) {
    return;
  }
  ObjReader r(ctx, *j, "phases");
  r.Num("warmup_s", &out->warmup_s);
  r.Num("measure_s", &out->measure_s);
  r.Num("report_every_s", &out->report_every_s);
  r.Finish();
  if (ctx->failed()) {
    return;
  }
  RequireMin(r, "warmup_s", out->warmup_s, 0.0);
  RequireMin(r, "measure_s", out->measure_s, 0.001);
  RequireMin(r, "report_every_s", out->report_every_s, 0.0);
}

void ReadAsserts(Ctx* ctx, ObjReader& top, Spec* spec) {
  const JValue* j = top.Get("assert");
  if (j == nullptr || ctx->failed()) {
    return;
  }
  if (j->kind != JValue::Kind::kArray) {
    ctx->Fail(j->line, j->col, "\"assert\" must be an array");
    return;
  }
  for (std::size_t i = 0; i < j->items.size(); ++i) {
    const std::string path = "assert[" + std::to_string(i) + "]";
    ObjReader r(ctx, j->items[i], path);
    AssertSpec a;
    r.Str("metric", &a.metric);
    double v = 0.0;
    if (r.Get("min") != nullptr) {
      ObjReader r2(ctx, j->items[i], path);
      r2.Num("min", &v);
      a.min = v;
    }
    if (r.Get("max") != nullptr) {
      ObjReader r2(ctx, j->items[i], path);
      r2.Num("max", &v);
      a.max = v;
    }
    if (r.Get("approx") != nullptr) {
      ObjReader r2(ctx, j->items[i], path);
      r2.Num("approx", &v);
      a.approx = v;
    }
    r.Num("tol", &a.tol);
    r.Num("tol_frac", &a.tol_frac);
    r.Finish();
    if (ctx->failed()) {
      return;
    }
    if (a.metric.empty()) {
      ctx->Fail(j->items[i].line, j->items[i].col, path + " needs a \"metric\"");
      return;
    }
    if (!a.min.has_value() && !a.max.has_value() && !a.approx.has_value()) {
      ctx->Fail(j->items[i].line, j->items[i].col,
                path + " needs at least one of \"min\", \"max\", \"approx\"");
      return;
    }
    if (a.approx.has_value() && a.tol <= 0.0 && a.tol_frac <= 0.0) {
      ctx->Fail(j->items[i].line, j->items[i].col,
                path + ": \"approx\" needs \"tol\" or \"tol_frac\" > 0");
      return;
    }
    spec->asserts.push_back(std::move(a));
  }
}

void CrossValidate(Ctx* ctx, const JValue& root, Spec* spec) {
  if (ctx->failed()) {
    return;
  }
  for (std::size_t i = 0; i < spec->populations.size(); ++i) {
    bool found = false;
    for (const ServerSpec& s : spec->servers) {
      found = found || s.port == spec->populations[i].port;
    }
    if (!found) {
      ctx->Fail(root.line, root.col,
                "populations[" + std::to_string(i) + "] (\"" + spec->populations[i].name +
                    "\") targets port " + std::to_string(spec->populations[i].port) +
                    " but no server listens there");
      return;
    }
  }
}

}  // namespace

const char* SystemKindName(SystemKind kind) {
  switch (kind) {
    case SystemKind::kUnmodified:
      return "unmodified";
    case SystemKind::kLrp:
      return "lrp";
    case SystemKind::kResourceContainer:
      return "rc";
  }
  return "?";
}

std::string FilterSpec::ToString() const {
  return (negate ? "!" : "") + base.text + "/" + std::to_string(prefix_len);
}

SpecParseResult ParseSpec(const std::string& text, const std::string& filename) {
  SpecParseResult result;
  Ctx ctx;
  ctx.filename = filename;
  ctx.lines = SplitLines(text);

  Parser parser(text, &ctx);
  const JValue root = parser.ParseDocument();
  if (!ctx.failed() && root.kind != JValue::Kind::kObject) {
    ctx.Fail(root.line, root.col, "the top-level value must be an object");
  }
  if (ctx.failed()) {
    result.error = ctx.error;
    return result;
  }

  Spec& spec = result.spec;
  ObjReader top(&ctx, root, "the top level");
  top.Str("name", &spec.name);
  top.Str("comment", &spec.comment);
  static constexpr const char* kSystems[] = {"unmodified", "lrp", "rc", nullptr};
  std::string system = "rc";
  top.Enum("system", &system, kSystems);
  if (!ctx.failed()) {
    spec.system = system == "unmodified" ? SystemKind::kUnmodified
                  : system == "lrp"      ? SystemKind::kLrp
                                         : SystemKind::kResourceContainer;
  }
  top.U64("seed", &spec.seed);
  top.Num("wire_latency_usec", &spec.wire_latency_usec);
  top.Bool("telemetry", &spec.telemetry);

  ReadMachine(&ctx, top, &spec.machine);
  ReadContainers(&ctx, top, &spec);
  ReadServers(&ctx, top, &spec);
  ReadFiles(&ctx, top, &spec);
  ReadPopulations(&ctx, top, &spec);
  ReadWorkloads(&ctx, top, &spec);
  ReadAttacks(&ctx, top, &spec);
  ReadPhases(&ctx, top, &spec.phases);
  ReadAsserts(&ctx, top, &spec);
  top.Finish();

  if (!ctx.failed() && spec.name.empty()) {
    ctx.Fail(root.line, root.col, "missing required key \"name\"");
  }
  if (!ctx.failed()) {
    RequireMin(top, "wire_latency_usec", spec.wire_latency_usec, 0.0);
  }
  CrossValidate(&ctx, root, &spec);

  if (ctx.failed()) {
    result.error = ctx.error;
    result.spec = Spec{};
  }
  return result;
}

SpecParseResult ParseSpecFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    SpecParseResult result;
    result.error = path + ": cannot open file";
    return result;
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  return ParseSpec(buf.str(), path);
}

// ---------------------------------------------------------------------------
// Canonical dump
// ---------------------------------------------------------------------------

namespace {

// Shortest representation that parses back to the same double.
std::string FormatNum(double v) {
  if (v == static_cast<double>(static_cast<std::int64_t>(v)) && std::fabs(v) < 1e15) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%" PRId64, static_cast<std::int64_t>(v));
    return buf;
  }
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.15g", v);
  if (std::strtod(buf, nullptr) != v) {
    std::snprintf(buf, sizeof(buf), "%.17g", v);
  }
  return buf;
}

std::string Quote(const std::string& s) {
  std::string out = "\"";
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\r':
        out += "\\r";
        break;
      default:
        out.push_back(c);
    }
  }
  out += "\"";
  return out;
}

// Tiny structured writer so every section dumps with the same style.
class Dumper {
 public:
  explicit Dumper(std::ostringstream* os) : os_(os) {}

  void Open(const char* brace) {
    Pad();
    *os_ << brace << "\n";
    ++indent_;
    first_in_level_ = true;
  }

  void OpenField(const std::string& key, const char* brace) {
    Key(key);
    *os_ << brace << "\n";
    ++indent_;
    first_in_level_ = true;
  }

  void Close(const char* brace) {
    *os_ << "\n";
    --indent_;
    Pad();
    *os_ << brace;
    first_in_level_ = false;
  }

  void Field(const std::string& key, const std::string& raw) {
    Key(key);
    *os_ << raw;
    first_in_level_ = false;
  }

  void Str(const std::string& key, const std::string& v) { Field(key, Quote(v)); }
  void Num(const std::string& key, double v) { Field(key, FormatNum(v)); }
  void Bool(const std::string& key, bool v) { Field(key, v ? "true" : "false"); }

  void Item() {
    if (!first_in_level_) {
      *os_ << ",\n";
    }
    first_in_level_ = true;  // the upcoming Open() emits its own padding
  }

 private:
  void Key(const std::string& key) {
    if (!first_in_level_) {
      *os_ << ",\n";
    }
    Pad();
    *os_ << Quote(key) << ": ";
    first_in_level_ = false;
  }

  void Pad() {
    for (int i = 0; i < indent_; ++i) {
      *os_ << "  ";
    }
  }

  std::ostringstream* const os_;
  int indent_ = 0;
  bool first_in_level_ = true;
};

void DumpSched(Dumper& d, const rc::SchedParams& s) {
  d.Str("class", s.cls == rc::SchedClass::kFixedShare ? "fixed_share" : "time_share");
  d.Num("priority", s.priority);
  d.Num("share", s.fixed_share);
}

void DumpPolicy(Dumper& d, const std::string& key, const rc::ResourcePolicy& p) {
  if (!p.override_sched && p.limit == 0.0) {
    return;  // default policy: inherit CPU sched, no cap — omit entirely
  }
  d.OpenField(key, "{");
  if (p.override_sched) {
    DumpSched(d, p.sched);
  }
  d.Num("limit", p.limit);
  d.Close("}");
}

void DumpServerBody(Dumper& d, const ServerSpec& s) {
  d.Str("arch", s.arch);
  d.Num("port", s.port);
  if (!s.container.empty()) {
    d.Str("container", s.container);
  }
  d.Bool("use_containers", s.use_containers);
  d.Bool("use_event_api", s.use_event_api);
  d.Bool("sort_ready_by_priority", s.sort_ready_by_priority);
  d.Bool("nest_under_default", s.nest_under_default);
  d.Bool("cgi_sandbox", s.cgi_sandbox);
  d.Num("cgi_share", s.cgi_share);
  d.Bool("cgi_new_principal", s.cgi_new_principal);
  d.Bool("syn_defense", s.syn_defense);
  d.Num("syn_defense_threshold", static_cast<double>(s.syn_defense_threshold));
  d.Num("syn_backlog", s.syn_backlog);
  d.Num("accept_backlog", s.accept_backlog);
  d.Num("cache_capacity_mb", s.cache_capacity_mb);
  d.Num("file_miss_penalty_usec", s.file_miss_penalty_usec);
  d.Bool("use_disk_model", s.use_disk_model);
  d.Num("worker_threads", s.worker_threads);
  d.Num("worker_processes", s.worker_processes);
  if (!s.classes.empty()) {
    d.OpenField("classes", "[");
    for (const ListenClassSpec& c : s.classes) {
      d.Item();
      d.Open("{");
      d.Str("name", c.name);
      d.Str("filter", c.filter.ToString());
      d.Num("priority", c.priority);
      d.Num("fixed_share", c.fixed_share);
      d.Num("cpu_limit", c.cpu_limit);
      d.Close("}");
    }
    d.Close("]");
  }
}

void DumpSizeDist(Dumper& d, const std::string& key, const SizeDistSpec& s) {
  d.OpenField(key, "{");
  d.Str("dist", s.dist);
  if (s.dist == "fixed") {
    d.Num("fixed_kb", s.fixed_kb);
  } else if (s.dist == "table") {
    d.OpenField("table", "[");
    for (const SizeDistSpec::TableEntry& e : s.table) {
      d.Item();
      d.Open("{");
      d.Num("kb", e.kb);
      d.Num("weight", e.weight);
      d.Close("}");
    }
    d.Close("]");
  } else {
    d.Num("alpha", s.pareto_alpha);
    d.Num("min_kb", s.pareto_min_kb);
    d.Num("max_kb", s.pareto_max_kb);
  }
  d.Close("}");
}

}  // namespace

std::string DumpSpec(const Spec& spec) {
  std::ostringstream os;
  Dumper d(&os);
  d.Open("{");
  d.Str("name", spec.name);
  if (!spec.comment.empty()) {
    d.Str("comment", spec.comment);
  }
  d.Str("system", SystemKindName(spec.system));
  d.OpenField("machine", "{");
  d.Num("cpus", spec.machine.cpus);
  d.Str("irq_steering", spec.machine.irq_steering);
  d.Num("link_mbps", spec.machine.link_mbps);
  d.Num("memory_mb", spec.machine.memory_mb);
  d.Close("}");
  d.Num("seed", static_cast<double>(spec.seed));
  d.Num("wire_latency_usec", spec.wire_latency_usec);
  d.Bool("telemetry", spec.telemetry);

  if (!spec.containers.empty()) {
    d.OpenField("containers", "[");
    for (const ContainerSpec& c : spec.containers) {
      d.Item();
      d.Open("{");
      d.Str("name", c.name);
      if (!c.parent.empty()) {
        d.Str("parent", c.parent);
      }
      DumpSched(d, c.attrs.sched);
      d.Num("cpu_limit", c.attrs.cpu_limit);
      d.Num("memory_limit_mb",
            static_cast<double>(c.attrs.memory_limit_bytes) / (1024.0 * 1024.0));
      d.Num("network_priority", c.attrs.network_priority);
      DumpPolicy(d, "disk", c.attrs.disk);
      DumpPolicy(d, "link", c.attrs.link);
      DumpPolicy(d, "memory", c.attrs.memory);
      d.Close("}");
    }
    d.Close("]");
  }

  if (spec.servers.size() == 1) {
    d.OpenField("server", "{");
    DumpServerBody(d, spec.servers.front());
    d.Close("}");
  } else if (!spec.servers.empty()) {
    d.OpenField("servers", "[");
    for (const ServerSpec& s : spec.servers) {
      d.Item();
      d.Open("{");
      DumpServerBody(d, s);
      d.Close("}");
    }
    d.Close("]");
  }

  if (!spec.files.empty()) {
    d.OpenField("files", "[");
    for (const FileSetSpec& f : spec.files) {
      d.Item();
      d.Open("{");
      d.Num("first_doc_id", f.first_doc_id);
      d.Num("count", f.count);
      DumpSizeDist(d, "size", f.size);
      d.Close("}");
    }
    d.Close("]");
  }

  if (!spec.populations.empty()) {
    d.OpenField("populations", "[");
    for (const PopulationSpec& p : spec.populations) {
      d.Item();
      d.Open("{");
      d.Str("name", p.name);
      d.Str("arrival", p.arrival);
      d.Num("clients", p.clients);
      if (p.arrival == "open_loop") {
        d.Num("rate_per_sec", p.rate_per_sec);
        d.Num("conns_per_session", p.conns_per_session);
      }
      if (p.arrival == "on_off") {
        d.Num("on_s", p.on_s);
        d.Num("off_s", p.off_s);
      }
      d.Str("layout", p.layout);
      d.Str("base_addr", p.base_addr.text);
      d.Num("class", p.client_class);
      d.Num("requests_per_conn", p.requests_per_conn);
      if (p.docs_count > 0) {
        d.Num("docs_first_id", p.docs_first_id);
        d.Num("docs_count", p.docs_count);
      } else {
        d.Num("doc_id", p.doc_id);
        d.Num("response_kb", p.response_kb);
      }
      d.Bool("is_cgi", p.is_cgi);
      if (p.is_cgi) {
        d.Num("cgi_cpu_ms", p.cgi_cpu_ms);
      }
      d.Num("think_ms", p.think_ms);
      d.Num("connect_timeout_ms", p.connect_timeout_ms);
      d.Num("request_timeout_s", p.request_timeout_s);
      d.Num("retry_backoff_ms", p.retry_backoff_ms);
      d.Num("port", p.port);
      d.Num("start_s", p.start_s);
      d.Num("stagger_ms", p.stagger_ms);
      d.Num("stop_s", p.stop_s);
      d.Close("}");
    }
    d.Close("]");
  }

  if (!spec.workloads.empty()) {
    d.OpenField("workloads", "[");
    for (const WorkloadSpec& w : spec.workloads) {
      d.Item();
      d.Open("{");
      d.Str("kind", w.kind);
      d.Str("name", w.name);
      d.Str("container", w.container);
      if (w.kind == "disk_reader") {
        d.Num("threads", w.threads);
        d.Num("read_kb", w.read_kb);
      } else if (w.kind == "cache_stream") {
        d.Num("period_ms", w.period_ms);
        d.Num("bytes_kb", w.bytes_kb);
      } else {
        d.Num("docs", w.docs);
        d.Num("doc_bytes_kb", w.doc_bytes_kb);
        d.Num("sample_period_ms", w.sample_period_ms);
      }
      if (w.first_doc_id != 0) {
        d.Num("first_doc_id", w.first_doc_id);
      }
      d.Close("}");
    }
    d.Close("]");
  }

  if (!spec.attacks.empty()) {
    d.OpenField("attacks", "[");
    for (const AttackSpec& a : spec.attacks) {
      d.Item();
      d.Open("{");
      d.Str("kind", a.kind);
      d.Str("name", a.name);
      if (a.kind == "syn_flood") {
        d.Str("prefix", a.prefix.text);
        d.Num("rate_per_sec", a.rate_per_sec);
      } else {
        d.Str("addr", a.addr.text);
        d.Num("connections", a.connections);
        d.Num("open_interval_ms", a.open_interval_ms);
        d.Num("hold_s", a.hold_s);
      }
      d.Num("start_s", a.start_s);
      d.Num("stop_s", a.stop_s);
      d.Close("}");
    }
    d.Close("]");
  }

  d.OpenField("phases", "{");
  d.Num("warmup_s", spec.phases.warmup_s);
  d.Num("measure_s", spec.phases.measure_s);
  d.Num("report_every_s", spec.phases.report_every_s);
  d.Close("}");

  if (!spec.asserts.empty()) {
    d.OpenField("assert", "[");
    for (const AssertSpec& a : spec.asserts) {
      d.Item();
      d.Open("{");
      d.Str("metric", a.metric);
      if (a.min.has_value()) {
        d.Num("min", *a.min);
      }
      if (a.max.has_value()) {
        d.Num("max", *a.max);
      }
      if (a.approx.has_value()) {
        d.Num("approx", *a.approx);
        if (a.tol > 0.0) {
          d.Num("tol", a.tol);
        }
        if (a.tol_frac > 0.0) {
          d.Num("tol_frac", a.tol_frac);
        }
      }
      d.Close("}");
    }
    d.Close("]");
  }

  d.Close("}");
  os << "\n";
  return os.str();
}

// ---------------------------------------------------------------------------
// Overlay
// ---------------------------------------------------------------------------

std::string ApplyOverlay(Spec& spec, const SpecOverlay& overlay) {
  if (overlay.cpus.has_value()) {
    if (*overlay.cpus < 1 || *overlay.cpus > 64) {
      return "--cpus: must be in [1, 64]";
    }
    spec.machine.cpus = *overlay.cpus;
  }
  if (overlay.system.has_value()) {
    spec.system = *overlay.system;
  }
  if (overlay.seed.has_value()) {
    spec.seed = *overlay.seed;
  }
  if (overlay.telemetry.has_value()) {
    spec.telemetry = *overlay.telemetry;
  }
  if (overlay.warmup_s.has_value()) {
    if (*overlay.warmup_s < 0.0) {
      return "--warmup: must be >= 0";
    }
    spec.phases.warmup_s = *overlay.warmup_s;
  }
  if (overlay.measure_s.has_value()) {
    if (*overlay.measure_s <= 0.0) {
      return "--duration: must be > 0";
    }
    spec.phases.measure_s = *overlay.measure_s;
  }
  if (overlay.static_clients.has_value()) {
    PopulationSpec* target = nullptr;
    for (PopulationSpec& p : spec.populations) {
      if (p.name == "static") {
        target = &p;
      }
    }
    if (target == nullptr) {
      return "--clients: spec has no population named \"static\"";
    }
    if (*overlay.static_clients < 1) {
      return "--clients: must be >= 1";
    }
    target->clients = *overlay.static_clients;
  }
  if (overlay.cgi_clients.has_value()) {
    if (*overlay.cgi_clients < 0) {
      return "--cgi: must be >= 0";
    }
    std::size_t idx = spec.populations.size();
    for (std::size_t i = 0; i < spec.populations.size(); ++i) {
      if (spec.populations[i].name == "cgi") {
        idx = i;
      }
    }
    if (idx == spec.populations.size()) {
      return "--cgi: spec has no population named \"cgi\"";
    }
    if (*overlay.cgi_clients == 0) {
      spec.populations.erase(spec.populations.begin() + static_cast<std::ptrdiff_t>(idx));
    } else {
      spec.populations[idx].clients = *overlay.cgi_clients;
    }
  }
  if (overlay.flood_rate.has_value()) {
    if (*overlay.flood_rate < 0.0) {
      return "--flood: must be >= 0";
    }
    if (*overlay.flood_rate == 0.0) {
      for (std::size_t i = spec.attacks.size(); i > 0; --i) {
        if (spec.attacks[i - 1].kind == "syn_flood") {
          spec.attacks.erase(spec.attacks.begin() + static_cast<std::ptrdiff_t>(i - 1));
        }
      }
    } else {
      AttackSpec* target = nullptr;
      for (AttackSpec& a : spec.attacks) {
        if (a.kind == "syn_flood" && target == nullptr) {
          target = &a;
        }
      }
      if (target == nullptr) {
        AttackSpec a;
        a.kind = "syn_flood";
        a.name = "flood";
        a.prefix = AddrSpec{"10.99.1.0", (10u << 24) | (99u << 16) | (1u << 8)};
        a.addr = AddrSpec{"10.66.0.1", (10u << 24) | (66u << 16) | 1u};
        spec.attacks.push_back(std::move(a));
        target = &spec.attacks.back();
      }
      target->rate_per_sec = *overlay.flood_rate;
    }
  }
  return "";
}

}  // namespace xp
