// S-Client-style HTTP load generator (Banga & Druschel '97): a closed-loop
// client that keeps exactly one request outstanding, aborts connection
// attempts that exceed a timeout, and retries — so a saturated server sees
// sustained offered load rather than livelocked clients.
#ifndef SRC_LOAD_HTTP_CLIENT_H_
#define SRC_LOAD_HTTP_CLIENT_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "src/load/wire.h"
#include "src/sim/rng.h"
#include "src/sim/stats.h"

namespace load {

class HttpClient : public PacketSink {
 public:
  // One entry of a shared document set; clients holding a `doc_set` pick
  // uniformly per request (heavy-tailed file sets, load::SizeDist).
  struct DocChoice {
    std::uint32_t doc_id = 1;
    std::uint32_t response_bytes = 1024;
  };

  struct Config {
    net::Addr addr;                   // this client's address
    std::uint16_t server_port = 80;
    int requests_per_conn = 1;        // > 1 => persistent connections
    std::uint32_t doc_id = 1;
    std::uint32_t response_bytes = 1024;
    // When non-null and non-empty, each request picks a document uniformly
    // from this set (seeded by `doc_seed`) instead of the fixed `doc_id`.
    // The set must outlive the client.
    const std::vector<DocChoice>* doc_set = nullptr;
    std::uint64_t doc_seed = 0;
    bool is_cgi = false;
    sim::Duration cgi_cpu_usec = 0;
    int client_class = 0;
    sim::Duration think_time = 0;
    sim::Duration connect_timeout = sim::Msec(500);
    // Abort a request whose response does not complete in time (the server
    // may never have seen it: deferred-processing backlogs discard excess
    // traffic early and the simulator does not model TCP retransmission).
    // The client resets the connection and retries.
    sim::Duration request_timeout = sim::Sec(10);
    sim::Duration retry_backoff = sim::Msec(10);
    // Open-loop mode: park after this many finished connections per Start()
    // (0 = closed loop, reconnect forever). A parked client stops issuing
    // work and reports via `on_park`; a later Start() reactivates it.
    int conns_per_activation = 0;
    std::function<void(HttpClient*)> on_park;
  };

  HttpClient(sim::Simulator* simulator, Wire* wire, std::uint32_t client_id,
             Config config);

  // Begins issuing requests at `at` (absolute simulated time). Also
  // reactivates a stopped or parked client; a no-op if the client is still
  // mid-connection (clearing the stop flag lets it continue its loop).
  void Start(sim::SimTime at = 0);
  // Stops issuing new requests (in-flight work completes).
  void Stop();

  // --- Statistics -----------------------------------------------------

  std::uint64_t completed() const { return completed_; }
  std::uint64_t failures() const { return failures_; }
  std::uint64_t timeouts() const { return timeouts_; }
  bool parked() const { return state_ == State::kStopped; }

  // Response times in milliseconds.
  sim::SampleSet& latencies() { return latencies_; }

  // Forgets history at a measurement boundary (end of warm-up).
  void ResetStats();

  void OnPacket(const net::Packet& p) override;

 private:
  enum class State {
    kIdle,
    kConnecting,        // SYN sent, awaiting SYN-ACK
    kAwaitingResponse,  // request sent
    kThinking,          // between requests
    kStopped,
  };

  void BeginConnect();
  void MaybeBegin();
  void SendRequest();
  void OnRequestTimeout(std::uint64_t request);
  void SendRst();
  void ScheduleNext(sim::Duration delay);
  void OnConnectTimeout(std::uint64_t flow);
  void Failure();
  // End of one connection (served, aborted, or failed). Parks the client
  // when its per-activation connection budget is exhausted; returns true if
  // it parked (callers must not issue further work).
  bool ConnectionEnded();
  void Park();

  sim::Simulator* const simr_;
  Wire* const wire_;
  const std::uint32_t client_id_;
  const Config config_;

  State state_ = State::kIdle;
  bool stopped_ = false;
  int conns_this_activation_ = 0;
  sim::Rng doc_rng_;

  std::uint64_t flow_seq_ = 0;
  std::uint64_t request_seq_ = 0;
  std::uint64_t current_flow_ = 0;
  std::uint64_t current_request_ = 0;
  int requests_done_on_conn_ = 0;
  sim::SimTime conn_start_ = 0;
  sim::SimTime request_start_ = 0;
  sim::EventHandle timeout_;
  sim::EventHandle request_timeout_;

  std::uint64_t completed_ = 0;
  std::uint64_t failures_ = 0;
  std::uint64_t timeouts_ = 0;
  sim::SampleSet latencies_;
};

}  // namespace load

#endif  // SRC_LOAD_HTTP_CLIENT_H_
