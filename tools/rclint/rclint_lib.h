// rclint — a project-specific static analysis pass for the resource
// containers simulator.
//
// The repo's correctness story rests on invariants the test suite can only
// check *dynamically*: digit-identical determinism digests, charge
// conservation under the auditor, allocation-free hot paths earned by the
// PR 6-8 rebuilds. rclint is the static half: a lightweight lexer over the
// source tree (no libclang) that catches the ways those invariants rot at
// lint time instead of as a mysterious digest or bench regression.
//
// Rules (each suppressible via `// rclint: allow(<rule>): <reason>` on the
// violating line or the line above; the reason is mandatory):
//
//   determinism  (src/ only)
//     Bans wall-clock and ambient-entropy sources: std::random_device,
//     rand/srand/drand48, time()/gettimeofday/clock_gettime,
//     std::chrono::{system,steady,high_resolution}_clock, getenv, and
//     pointer-keyed ordered containers (std::map/set<T*>), whose iteration
//     order is address-space layout. The simulation draws all entropy from
//     sim::Rng and all time from the event clock.
//
//   charging  (src/, bench/, tools/; choke-point files exempt)
//     Direct mutation of ResourceContainer accounting state (writes through
//     a usage_/retired_/usage path to the ResourceUsage counters, or calls
//     to usage_.AddCpu) is only legal inside the charging choke points —
//     src/kernel/kernel.cc, src/sched/share_tree.cc, and src/rc/. Everyone
//     else goes through ChargeCpu/ChargeMemory/ChargeDisk/ChargeLink and the
//     share-tree APIs, which is what keeps the auditor's double-entry books
//     balanced.
//
//   hotpath  (any file)
//     Function bodies annotated RC_HOT_PATH (src/common/check.h) may not
//     contain `new` (including placement new — suppress with the pool
//     rationale if intended), make_shared/make_unique/allocate_shared,
//     std::function construction, or throwing container growth
//     (push_back/emplace/insert/resize/reserve/...).
//
//   layering  (src/ only)
//     Include hygiene between layers: src/sim/ and src/common/ must not
//     include src/kernel/ or src/httpd/ headers; src/rc/ must not include
//     src/net/ or src/disk/.
//
//   bad-suppression
//     A suppression comment that names an unknown rule or omits the reason
//     string is itself a diagnostic — silent blanket waivers defeat the
//     point.
#ifndef TOOLS_RCLINT_RCLINT_LIB_H_
#define TOOLS_RCLINT_RCLINT_LIB_H_

#include <string>
#include <string_view>
#include <vector>

namespace rclint {

enum class Rule {
  kDeterminism,
  kCharging,
  kHotPath,
  kLayering,
  kBadSuppression,
};

// Stable rule name used in output and in allow() comments.
const char* RuleName(Rule rule);

// Parses a rule name; returns false for unknown names.
bool RuleFromName(std::string_view name, Rule* out);

struct Diagnostic {
  std::string file;  // root-relative path, '/'-separated
  int line = 0;
  Rule rule = Rule::kDeterminism;
  std::string message;
  std::string suggestion;  // populated for --fix-suggestions
};

struct FileInput {
  // Path relative to the project root ('/'-separated) — rule scoping keys
  // off the leading directory (src/, bench/, tools/).
  std::string path;
  std::string content;
};

// Runs every applicable rule over one file, appending diagnostics in line
// order. Suppressed diagnostics are dropped; malformed suppressions are
// reported as bad-suppression.
void AnalyzeFile(const FileInput& input, std::vector<Diagnostic>* out);

// Canned fix suggestion for a rule (what --fix-suggestions prints).
std::string SuggestionFor(Rule rule);

// Formats one diagnostic as "path:line: [rule] message".
std::string FormatDiagnostic(const Diagnostic& d, bool fix_suggestions);

}  // namespace rclint

#endif  // TOOLS_RCLINT_RCLINT_LIB_H_
