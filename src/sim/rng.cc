#include "src/sim/rng.h"

#include <cmath>

#include "src/common/check.h"

namespace sim {

namespace {

std::uint64_t SplitMix64(std::uint64_t& x) {
  x += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::uint64_t Rotl(std::uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t x = seed;
  for (auto& s : s_) {
    s = SplitMix64(x);
  }
}

std::uint64_t Rng::NextU64() {
  const std::uint64_t result = Rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

double Rng::NextDouble() {
  // 53 high bits -> double in [0, 1).
  return static_cast<double>(NextU64() >> 11) * 0x1.0p-53;
}

std::int64_t Rng::UniformInt(std::int64_t lo, std::int64_t hi) {
  RC_CHECK_LE(lo, hi);
  const std::uint64_t span = static_cast<std::uint64_t>(hi - lo) + 1;
  if (span == 0) {  // full 64-bit range
    return static_cast<std::int64_t>(NextU64());
  }
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t limit = UINT64_MAX - UINT64_MAX % span;
  std::uint64_t v;
  do {
    v = NextU64();
  } while (v >= limit);
  return lo + static_cast<std::int64_t>(v % span);
}

double Rng::UniformReal(double lo, double hi) {
  RC_CHECK_LE(lo, hi);
  return lo + (hi - lo) * NextDouble();
}

double Rng::Exponential(double mean) {
  RC_CHECK_GT(mean, 0);
  double u;
  do {
    u = NextDouble();
  } while (u <= 0.0);
  return -mean * std::log(u);
}

Duration Rng::PoissonGap(double rate_per_sec) {
  RC_CHECK_GT(rate_per_sec, 0);
  const double mean_usec = static_cast<double>(kSec) / rate_per_sec;
  const double gap = Exponential(mean_usec);
  return gap < 1.0 ? 1 : static_cast<Duration>(gap);
}

bool Rng::Chance(double p) { return NextDouble() < p; }

Rng Rng::Fork() { return Rng(NextU64()); }

}  // namespace sim
