#include "src/sim/simulator.h"

#include <utility>

#include "src/common/check.h"

namespace sim {

EventHandle Simulator::At(SimTime when, std::function<void()> fn) {
  RC_CHECK_GE(when, now_);
  return queue_.Schedule(when, std::move(fn));
}

EventHandle Simulator::After(Duration delay, std::function<void()> fn) {
  RC_CHECK_GE(delay, 0);
  return queue_.Schedule(now_ + delay, std::move(fn));
}

bool Simulator::Step() {
  if (queue_.empty()) {
    return false;
  }
  SimTime when = queue_.NextTime();
  RC_CHECK_GE(when, now_);
  now_ = when;
  queue_.RunNext();
  ++events_run_;
  return true;
}

void Simulator::RunUntil(SimTime deadline) {
  while (!queue_.empty() && queue_.NextTime() <= deadline) {
    Step();
  }
  if (now_ < deadline) {
    now_ = deadline;
  }
}

void Simulator::RunUntilIdle() {
  while (Step()) {
  }
}

}  // namespace sim
