#include "src/verify/lockset.h"

#include <algorithm>

namespace verify {

namespace {

// Address used as the implicit kernel-context lock (see header).
const int kKernelLockTag = 0;
const void* const kKernelLock = &kKernelLockTag;

}  // namespace

void RaceDetector::OnAcquire(std::uint64_t tid, const void* lock,
                             const char* name) {
  held_[tid].insert(lock);
  auto& stored = lock_names_[lock];
  if (stored.empty()) {
    stored = name;
  }
}

void RaceDetector::OnRelease(std::uint64_t tid, const void* lock) {
  auto it = held_.find(tid);
  if (it != held_.end()) {
    it->second.erase(lock);  // releasing an unheld lock is a no-op
  }
}

std::set<const void*> RaceDetector::CurrentLocks() const {
  std::set<const void*> locks;
  auto it = held_.find(current_);
  if (it != held_.end()) {
    locks = it->second;
  }
  if (current_ == kKernelContext) {
    locks.insert(kKernelLock);
  }
  return locks;
}

void RaceDetector::OnAccess(const void* addr, const char* name, bool is_write) {
  ++access_count_;
  VarState& var = vars_[addr];
  if (var.name.empty()) {
    var.name = name;
  }
  switch (var.phase) {
    case Phase::kVirgin:
      var.phase = Phase::kExclusive;
      var.owner = current_;
      return;
    case Phase::kExclusive:
      if (current_ == var.owner) {
        return;  // still single-threaded: no refinement yet
      }
      // Second thread: initialize the candidate lockset from its held locks
      // and leave the exclusive phase.
      var.lockset = CurrentLocks();
      var.last_other = current_;
      var.phase = is_write ? Phase::kSharedModified : Phase::kShared;
      MaybeReport(var, is_write);
      return;
    case Phase::kShared:
    case Phase::kSharedModified: {
      const std::set<const void*> locks = CurrentLocks();
      std::set<const void*> refined;
      std::set_intersection(var.lockset.begin(), var.lockset.end(),
                            locks.begin(), locks.end(),
                            std::inserter(refined, refined.begin()));
      var.lockset = std::move(refined);
      if (current_ != var.owner) {
        var.last_other = current_;
      }
      if (is_write) {
        var.phase = Phase::kSharedModified;
      }
      MaybeReport(var, is_write);
      return;
    }
  }
}

void RaceDetector::MaybeReport(VarState& var, bool is_write) {
  if (var.phase != Phase::kSharedModified || !var.lockset.empty() ||
      var.reported) {
    return;
  }
  var.reported = true;
  Report r;
  r.variable = var.name;
  r.first_thread = var.owner;
  r.second_thread = var.last_other;
  r.on_write = is_write;
  r.what = "race: '" + var.name + "' accessed by thread " +
           std::to_string(var.owner) + " and thread " +
           std::to_string(var.last_other) +
           " with no common lock (candidate lockset empty on a " +
           (is_write ? "write" : "read") + ")";
  reports_.push_back(std::move(r));
}

}  // namespace verify
