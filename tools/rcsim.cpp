// rcsim — command-line driver for the simulated server machine.
//
// Runs a configurable scenario and prints a report, so experiments beyond
// the canned benchmarks can be run without writing C++:
//
//   rcsim --kernel=rc --containers --event-api --clients=24 --seconds=5
//   rcsim --kernel=unmodified --clients=16 --cgi=4 --cgi-seconds=2
//   rcsim --kernel=rc --containers --event-api --defend --flood=50000
//   rcsim --kernel=lrp --clients=64 --persistent=100 --csv
//
// Flags:
//   --kernel=unmodified|lrp|rc   which of the paper's systems to run
//   --containers                 per-connection containers (RC kernel)
//   --event-api                  scalable event API instead of select()
//   --clients=N                  static-document clients (default 16; counts
//                                beyond ~64000 spill into further /16 source
//                                blocks — 10.1/16, 10.2/16, ... — so
//                                million-client populations get unique
//                                addresses)
//   --bench-events=N             instead of a server scenario, run the raw
//                                event-core throughput workload from
//                                bench/bench_engine.cpp (timing wheel,
//                                --clients concurrent timers, N dispatches)
//                                and report events/sec; reproduces the
//                                million-client configuration from the CLI:
//                                  rcsim --clients=1000000 --bench-events=4000000
//   --persistent=K               requests per connection (default 1)
//   --doc-bytes=N                document size (default 1024)
//   --cgi=N                      concurrent CGI clients (default 0)
//   --cgi-seconds=S              CPU burned per CGI request (default 2)
//   --cgi-cap=F                  CGI-parent sand-box share/limit (default 0.3)
//   --flood=RATE                 SYN flood rate per second (default 0)
//   --defend                     adaptive SYN-flood filter defense
//   --cpus=N                     simulated CPUs (default 1, the paper's
//                                uniprocessor; N>1 shards the run queues)
//   --disk-shares=A,B,...        create one fixed-disk-share container per
//                                percentage (e.g. 50,30,20) with a closed-loop
//                                disk reader in each, and report how the disk
//                                bandwidth actually split
//   --link-mbps=X                model the transmit link as a fixed-rate,
//                                container-scheduled device (default 0: the
//                                link is infinitely fast, as before)
//   --memory-bytes=N             machine physical memory (default 0: memory
//                                is unscheduled; limits only). Enables the
//                                memory broker: entitlements, guarantees and
//                                reclaim from the file cache
//   --memory-shares=A,B,...      create one fixed-memory-share container per
//                                percentage, each streaming documents through
//                                the file cache, and report how resident
//                                bytes actually split (requires
//                                --memory-bytes)
//   --memory-guarantee=P         create a container with a P% fixed memory
//                                share holding a working set equal to its
//                                guaranteed resident bytes; report the
//                                minimum it held across the run (requires
//                                --memory-bytes)
//   --cache-bytes=N              bound the server file cache (LRU eviction,
//                                resident bytes charged to the server's
//                                container; default 0 = unbounded)
//   --irq-steering=fixed|rr|flow interrupt steering policy for --cpus>1
//                                (default flow: per-connection flow hash)
//   --seed=N                     root seed for the load generators (default
//                                42; same seed + flags => same run)
//   --warmup=S --seconds=S       warm-up / measured simulated seconds
//   --csv                        machine-readable output
//   --metrics-out[=FILE]         write headline metrics as BENCH_rcsim.json
//   --trace-out=FILE             record the kernel tracer and export the run
//                                as Chrome trace-event JSON (chrome://tracing)
//   --series-out=FILE            per-container usage time series (JSON Lines)
//   --epoch-ms=N                 sampling interval for --series-out (default 100)
//   --print-metrics              dump the full metric registry after the run
//   --audit                      charge-conservation auditing (src/verify):
//                                every RunFor verifies that busy CPU time,
//                                container charges and overheads conserve;
//                                violations go to stderr and exit nonzero.
//                                RC_AUDIT=1 in the environment does the same.
//   --digest                     print "digest: <16 hex>" — an FNV-1a hash of
//                                the full event timeline. Same seed + flags
//                                must reproduce the same digest.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <functional>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "src/kernel/syscalls.h"
#include "src/sim/event_queue.h"
#include "src/sim/rng.h"
#include "src/telemetry/bench_io.h"
#include "src/telemetry/trace_export.h"
#include "src/xp/scenario.h"
#include "src/xp/table.h"

namespace {

struct Flags {
  std::string kernel = "unmodified";
  bool containers = false;
  bool event_api = false;
  int clients = 16;
  long long bench_events = 0;
  int persistent = 1;
  std::uint32_t doc_bytes = 1024;
  int cgi = 0;
  double cgi_seconds = 2.0;
  double cgi_cap = 0.3;
  double flood = 0.0;
  bool defend = false;
  int cpus = 1;
  std::string irq_steering = "flow";
  std::string disk_shares;
  double link_mbps = 0.0;
  long long memory_bytes = 0;
  std::string memory_shares;
  double memory_guarantee = 0.0;  // fraction of machine memory
  long long cache_bytes = 0;
  std::uint64_t seed = 42;
  double warmup = 2.0;
  double seconds = 5.0;
  bool csv = false;
  std::string trace_out;
  std::string series_out;
  int epoch_ms = 100;
  bool print_metrics = false;
  bool audit = false;
  bool digest = false;
};

// "50,30,20" -> {0.5, 0.3, 0.2}; empty on malformed input.
std::vector<double> ParseShareList(const std::string& s) {
  std::vector<double> out;
  std::size_t pos = 0;
  while (pos < s.size()) {
    std::size_t comma = s.find(',', pos);
    if (comma == std::string::npos) {
      comma = s.size();
    }
    const double pct = std::atof(s.substr(pos, comma - pos).c_str());
    if (pct <= 0.0 || pct > 100.0) {
      return {};
    }
    out.push_back(pct / 100.0);
    pos = comma + 1;
  }
  return out;
}

bool ParseFlag(const char* arg, const char* name, std::string* out) {
  const std::size_t n = std::strlen(name);
  if (std::strncmp(arg, name, n) == 0 && arg[n] == '=') {
    *out = arg + n + 1;
    return true;
  }
  return false;
}

int Usage() {
  std::fprintf(stderr, "see the header of tools/rcsim.cpp for flag reference\n");
  return 2;
}

// Source address for static client `i`: 250 hosts per /24, /24 blocks
// filling 10.1/16 first (the historical layout for counts up to ~64000),
// then spilling into 10.2/16, 10.3/16, ... so arbitrarily large client
// populations stay unique. Collides with the CGI block (10.3/16) only past
// ~128k static clients and the flooder prefix (10.99/16) past ~6.1M.
net::Addr StaticClientAddr(int i) {
  const std::uint32_t block = static_cast<std::uint32_t>(i) / 250;
  return net::Addr{net::MakeAddr(10, 1 + block / 256, block % 256, 0).v +
                   static_cast<std::uint32_t>(i) % 250 + 1};
}

// --bench-events: the bench_engine timer workload (wheel backend) driven
// from the CLI. Each client keeps one live timer (mixed HTTP-like gaps) and
// one mostly-canceled 30 ms timeout; callbacks are trivial so the number
// isolates the event core.
class EngineBench {
 public:
  EngineBench(int clients, std::uint64_t seed)
      : rng_(seed), clients_(static_cast<std::size_t>(clients)) {
    for (std::size_t i = 0; i < clients_.size(); ++i) {
      Arm(i, 0);
    }
  }

  sim::SimTime RunEvents(long long total) {
    sim::SimTime now = 0;
    while (queue_.dispatched() < static_cast<std::uint64_t>(total) && !queue_.empty()) {
      now = queue_.RunNext();
    }
    return now;
  }

  const sim::EventQueue& queue() const { return queue_; }

 private:
  struct Client {
    sim::EventHandle timeout;
    sim::SimTime fire_at = 0;
  };

  sim::Duration NextDelay() {
    const std::uint64_t shape = rng_.NextU64() % 100;
    if (shape < 70) {
      return static_cast<sim::Duration>(100 + rng_.NextU64() % 400);
    }
    return static_cast<sim::Duration>(10'000 + rng_.NextU64() % 190'000);
  }

  void Arm(std::size_t i, sim::SimTime now) {
    Client& c = clients_[i];
    c.timeout.Cancel();
    c.timeout = queue_.Schedule(now + 30'000, [] {});
    c.fire_at = now + NextDelay();
    queue_.Schedule(c.fire_at, [this, i] { Arm(i, clients_[i].fire_at); });
  }

  sim::EventQueue queue_;
  sim::Rng rng_;
  std::vector<Client> clients_;
};

int RunEngineBench(const Flags& flags, int argc, char** argv) {
  telemetry::BenchReport bench("rcsim", argc, argv);
  const auto start = std::chrono::steady_clock::now();
  EngineBench b(flags.clients, flags.seed);
  const sim::SimTime end_sim = b.RunEvents(flags.bench_events);
  const double wall =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
  const double events_per_sec = static_cast<double>(b.queue().dispatched()) / wall;
  const double sim_seconds = static_cast<double>(end_sim) / 1e6;
  const double wall_per_sim = sim_seconds > 0 ? wall / sim_seconds : 0;
  std::printf("engine bench: clients=%d events=%llu wall=%.2fs\n", flags.clients,
              static_cast<unsigned long long>(b.queue().dispatched()), wall);
  std::printf("  events/sec       %12.0f\n", events_per_sec);
  std::printf("  wall per sim-sec %12.3f s\n", wall_per_sim);
  std::printf("  canceled         %12llu\n",
              static_cast<unsigned long long>(b.queue().canceled()));
  const std::string config = "engine,clients=" + std::to_string(flags.clients) +
                             ",events=" + std::to_string(flags.bench_events);
  bench.Add("events_per_sec", events_per_sec, "events/s", config);
  bench.Add("wall_per_sim_sec", wall_per_sim, "s/sim-s", config);
  if (!bench.Flush()) {
    std::fprintf(stderr, "failed to write %s\n", bench.path().c_str());
    return 1;
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags;
  for (int i = 1; i < argc; ++i) {
    std::string value;
    const char* a = argv[i];
    if (ParseFlag(a, "--kernel", &value)) {
      flags.kernel = value;
    } else if (std::strcmp(a, "--containers") == 0) {
      flags.containers = true;
    } else if (std::strcmp(a, "--event-api") == 0) {
      flags.event_api = true;
    } else if (ParseFlag(a, "--clients", &value)) {
      flags.clients = std::atoi(value.c_str());
    } else if (ParseFlag(a, "--bench-events", &value)) {
      flags.bench_events = std::atoll(value.c_str());
    } else if (ParseFlag(a, "--persistent", &value)) {
      flags.persistent = std::atoi(value.c_str());
    } else if (ParseFlag(a, "--doc-bytes", &value)) {
      flags.doc_bytes = static_cast<std::uint32_t>(std::atoi(value.c_str()));
    } else if (ParseFlag(a, "--cgi", &value)) {
      flags.cgi = std::atoi(value.c_str());
    } else if (ParseFlag(a, "--cgi-seconds", &value)) {
      flags.cgi_seconds = std::atof(value.c_str());
    } else if (ParseFlag(a, "--cgi-cap", &value)) {
      flags.cgi_cap = std::atof(value.c_str());
    } else if (ParseFlag(a, "--flood", &value)) {
      flags.flood = std::atof(value.c_str());
    } else if (std::strcmp(a, "--defend") == 0) {
      flags.defend = true;
    } else if (ParseFlag(a, "--cpus", &value)) {
      flags.cpus = std::atoi(value.c_str());
    } else if (ParseFlag(a, "--irq-steering", &value)) {
      flags.irq_steering = value;
    } else if (ParseFlag(a, "--disk-shares", &value)) {
      flags.disk_shares = value;
    } else if (ParseFlag(a, "--link-mbps", &value)) {
      flags.link_mbps = std::atof(value.c_str());
    } else if (ParseFlag(a, "--memory-bytes", &value)) {
      flags.memory_bytes = std::atoll(value.c_str());
    } else if (ParseFlag(a, "--memory-shares", &value)) {
      flags.memory_shares = value;
    } else if (ParseFlag(a, "--memory-guarantee", &value)) {
      flags.memory_guarantee = std::atof(value.c_str()) / 100.0;
    } else if (ParseFlag(a, "--cache-bytes", &value)) {
      flags.cache_bytes = std::atoll(value.c_str());
    } else if (ParseFlag(a, "--seed", &value)) {
      flags.seed = static_cast<std::uint64_t>(std::atoll(value.c_str()));
    } else if (ParseFlag(a, "--warmup", &value)) {
      flags.warmup = std::atof(value.c_str());
    } else if (ParseFlag(a, "--seconds", &value)) {
      flags.seconds = std::atof(value.c_str());
    } else if (std::strcmp(a, "--csv") == 0) {
      flags.csv = true;
    } else if (std::strncmp(a, "--metrics-out", 13) == 0) {
      // Consumed by BenchReport, which scans argv itself.
    } else if (ParseFlag(a, "--trace-out", &value)) {
      flags.trace_out = value;
    } else if (ParseFlag(a, "--series-out", &value)) {
      flags.series_out = value;
    } else if (ParseFlag(a, "--epoch-ms", &value)) {
      flags.epoch_ms = std::atoi(value.c_str());
    } else if (std::strcmp(a, "--print-metrics") == 0) {
      flags.print_metrics = true;
    } else if (std::strcmp(a, "--audit") == 0) {
      flags.audit = true;
    } else if (std::strcmp(a, "--digest") == 0) {
      flags.digest = true;
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", a);
      return Usage();
    }
  }

  if (flags.bench_events > 0) {
    return RunEngineBench(flags, argc, argv);
  }

  xp::ScenarioOptions options;
  if (flags.kernel == "unmodified") {
    options.kernel_config = kernel::UnmodifiedSystemConfig();
  } else if (flags.kernel == "lrp") {
    options.kernel_config = kernel::LrpSystemConfig();
  } else if (flags.kernel == "rc") {
    options.kernel_config = kernel::ResourceContainerSystemConfig();
  } else {
    std::fprintf(stderr, "bad --kernel value: %s\n", flags.kernel.c_str());
    return Usage();
  }
  if ((flags.containers || flags.defend) && flags.kernel != "rc") {
    std::fprintf(stderr, "--containers/--defend require --kernel=rc\n");
    return Usage();
  }
  if (flags.cpus < 1) {
    std::fprintf(stderr, "--cpus must be >= 1\n");
    return Usage();
  }
  options.kernel_config.cpus = flags.cpus;
  if (flags.irq_steering == "fixed") {
    options.kernel_config.irq_steering = kernel::IrqSteering::kFixed;
  } else if (flags.irq_steering == "rr") {
    options.kernel_config.irq_steering = kernel::IrqSteering::kRoundRobin;
  } else if (flags.irq_steering == "flow") {
    options.kernel_config.irq_steering = kernel::IrqSteering::kFlowHash;
  } else {
    std::fprintf(stderr, "bad --irq-steering value: %s\n", flags.irq_steering.c_str());
    return Usage();
  }
  options.seed = flags.seed;
  options.audit = flags.audit;
  options.digest = flags.digest;

  std::vector<double> disk_shares;
  if (!flags.disk_shares.empty()) {
    disk_shares = ParseShareList(flags.disk_shares);
    double sum = 0.0;
    for (double s : disk_shares) {
      sum += s;
    }
    if (disk_shares.empty() || sum > 1.0 + 1e-9) {
      std::fprintf(stderr, "bad --disk-shares value: %s (percentages, sum <= 100)\n",
                   flags.disk_shares.c_str());
      return Usage();
    }
  }
  if (flags.link_mbps < 0.0) {
    std::fprintf(stderr, "--link-mbps must be >= 0\n");
    return Usage();
  }
  options.kernel_config.link_mbps = flags.link_mbps;

  std::vector<double> memory_shares;
  if (!flags.memory_shares.empty()) {
    memory_shares = ParseShareList(flags.memory_shares);
    double sum = flags.memory_guarantee;
    for (double s : memory_shares) {
      sum += s;
    }
    if (memory_shares.empty() || sum > 1.0 + 1e-9) {
      std::fprintf(stderr,
                   "bad --memory-shares value: %s (percentages, sum with "
                   "--memory-guarantee <= 100)\n",
                   flags.memory_shares.c_str());
      return Usage();
    }
  }
  if (flags.memory_guarantee < 0.0 || flags.memory_guarantee > 1.0) {
    std::fprintf(stderr, "--memory-guarantee must be in [0, 100]\n");
    return Usage();
  }
  if ((!memory_shares.empty() || flags.memory_guarantee > 0) &&
      flags.memory_bytes <= 0) {
    std::fprintf(stderr,
                 "--memory-shares/--memory-guarantee require --memory-bytes\n");
    return Usage();
  }
  if (flags.memory_bytes < 0) {
    std::fprintf(stderr, "--memory-bytes must be >= 0\n");
    return Usage();
  }
  options.kernel_config.memory_bytes = flags.memory_bytes;

  if (flags.epoch_ms <= 0) {
    std::fprintf(stderr, "--epoch-ms must be positive\n");
    return Usage();
  }
  if (!flags.series_out.empty() || flags.print_metrics) {
    options.telemetry = true;
    options.telemetry_interval = sim::Msec(flags.epoch_ms);
  }

  httpd::ServerConfig& server = options.server_config;
  server.use_containers = flags.containers;
  server.use_event_api = flags.event_api || flags.defend;
  server.syn_defense = flags.defend;
  if (flags.containers && flags.cgi > 0) {
    server.cgi_sandbox = true;
    server.cgi_share = flags.cgi_cap;
  }
  server.file_cache_capacity_bytes = flags.cache_bytes;

  xp::Scenario scenario(options);
  if (!flags.trace_out.empty()) {
    scenario.kernel().tracer().Enable();
  }
  scenario.cache().AddDocument(2, flags.doc_bytes);
  scenario.StartServer();

  for (int i = 0; i < flags.clients; ++i) {
    load::HttpClient::Config cfg;
    cfg.addr = StaticClientAddr(i);
    cfg.requests_per_conn = flags.persistent;
    cfg.doc_id = 2;
    cfg.response_bytes = flags.doc_bytes;
    scenario.AddClient(cfg);
  }
  for (int i = 0; i < flags.cgi; ++i) {
    load::HttpClient::Config cgi;
    cgi.addr = net::Addr{net::MakeAddr(10, 3, 0, 0).v + static_cast<std::uint32_t>(i) + 1};
    cgi.is_cgi = true;
    cgi.cgi_cpu_usec = static_cast<sim::Duration>(flags.cgi_seconds * sim::kSec);
    cgi.client_class = 2;
    cgi.request_timeout = 0;
    scenario.AddClient(cgi);
  }
  if (flags.flood > 0) {
    load::SynFlooder::Config fcfg;
    fcfg.rate_per_sec = flags.flood;
    fcfg.seed = flags.seed;
    scenario.AddFlooder(fcfg)->Start();
  }

  // --disk-shares: one fixed-disk-share container per entry, each running a
  // closed-loop reader (one request always outstanding), so the disk stays
  // saturated and the share tree decides who gets the bandwidth.
  std::vector<rc::ContainerRef> disk_cts;
  for (std::size_t i = 0; i < disk_shares.size(); ++i) {
    rc::Attributes a;
    a.disk.override_sched = true;
    a.disk.sched.cls = rc::SchedClass::kFixedShare;
    a.disk.sched.fixed_share = disk_shares[i];
    auto ct = scenario.kernel().containers().Create(
        nullptr, "disk-" + std::to_string(i), a);
    if (!ct.ok()) {
      std::fprintf(stderr, "--disk-shares: %s\n", rccommon::ErrcName(ct.error()));
      return 1;
    }
    disk_cts.push_back(*ct);
    // Several readers per container keep its disk queue backlogged at every
    // completion (a single closed-loop reader is always between requests when
    // the arbitration decision happens).
    for (int t = 0; t < 4; ++t) {
      kernel::Process* p =
          scenario.kernel().CreateProcess("disk-reader-" + std::to_string(i), *ct);
      scenario.kernel().SpawnThread(p, "reader", [](kernel::Sys sys) -> kernel::Program {
        for (std::uint64_t n = 0;; ++n) {
          co_await sys.ReadDisk(n * 9973u * 64, 4);
        }
      });
    }
  }

  // Self-rearming simulator timer (runs until the scenario ends).
  struct Periodic {
    sim::Simulator* simr;
    sim::Duration period;
    std::function<void()> fn;
    void Arm() {
      simr->After(period, [this] {
        fn();
        Arm();
      });
    }
  };
  std::vector<std::unique_ptr<Periodic>> periodics;
  auto every = [&](sim::Duration period, std::function<void()> fn) {
    periodics.push_back(std::make_unique<Periodic>(
        Periodic{&scenario.simulator(), period, std::move(fn)}));
    periodics.back()->Arm();
  };

  // --memory-guarantee: a tenant whose file-cache working set equals its
  // guaranteed resident bytes; the report shows the minimum resident bytes
  // it held while everyone else fought over the rest of the machine.
  rc::ContainerRef mem_guaranteed;
  std::int64_t mem_guarantee_bytes = 0;
  auto mem_guarantee_min = std::make_shared<std::int64_t>(0);
  if (flags.memory_guarantee > 0) {
    rc::Attributes a;
    a.memory.override_sched = true;
    a.memory.sched.cls = rc::SchedClass::kFixedShare;
    a.memory.sched.fixed_share = flags.memory_guarantee;
    auto ct = scenario.kernel().containers().Create(nullptr, "mem-guaranteed", a);
    if (!ct.ok()) {
      std::fprintf(stderr, "--memory-guarantee: %s\n", rccommon::ErrcName(ct.error()));
      return 1;
    }
    mem_guaranteed = *ct;
    mem_guarantee_bytes = scenario.kernel().memory().GuaranteeBytes(*mem_guaranteed);
    constexpr std::uint32_t kDocs = 32;
    const auto doc_bytes =
        static_cast<std::uint32_t>(mem_guarantee_bytes / kDocs);
    for (std::uint32_t i = 0; i < kDocs && doc_bytes > 0; ++i) {
      scenario.cache().Insert(900000 + i, doc_bytes, mem_guaranteed);
    }
    *mem_guarantee_min = mem_guaranteed->usage().memory_bytes;
    every(sim::Msec(flags.epoch_ms), [mem_guarantee_min, mem_guaranteed] {
      *mem_guarantee_min =
          std::min(*mem_guarantee_min, mem_guaranteed->usage().memory_bytes);
    });
  }

  // --memory-shares: one fixed-memory-share container per entry, each
  // streaming fresh documents through the file cache, so machine memory
  // stays saturated and the broker decides whose documents stay resident.
  std::vector<rc::ContainerRef> mem_cts;
  for (std::size_t i = 0; i < memory_shares.size(); ++i) {
    rc::Attributes a;
    a.memory.override_sched = true;
    a.memory.sched.cls = rc::SchedClass::kFixedShare;
    a.memory.sched.fixed_share = memory_shares[i];
    auto ct = scenario.kernel().containers().Create(
        nullptr, "mem-" + std::to_string(i), a);
    if (!ct.ok()) {
      std::fprintf(stderr, "--memory-shares: %s\n", rccommon::ErrcName(ct.error()));
      return 1;
    }
    mem_cts.push_back(*ct);
    auto next_id = std::make_shared<std::uint32_t>(
        1000000 + static_cast<std::uint32_t>(i) * 100000);
    rc::ContainerRef tenant = *ct;
    xp::Scenario* sc = &scenario;
    every(sim::Msec(1), [sc, tenant, next_id] {
      sc->cache().Insert((*next_id)++, 64 * 1024, tenant);
    });
  }

  scenario.StartAllClients();
  scenario.RunFor(static_cast<sim::Duration>(flags.warmup * sim::kSec));
  scenario.ResetClientStats();
  const auto cpu0 = scenario.SnapshotCpu();
  const sim::Duration cgi0 = scenario.kernel().ExecutedUsecForName("cgi");
  std::vector<sim::Duration> disk0(disk_cts.size());
  for (std::size_t i = 0; i < disk_cts.size(); ++i) {
    disk0[i] = disk_cts[i]->usage().disk_busy_usec;
  }
  const sim::Duration link0 = scenario.kernel().link().stats().busy_usec;
  scenario.RunFor(static_cast<sim::Duration>(flags.seconds * sim::kSec));
  const auto cpu1 = scenario.SnapshotCpu();
  const sim::Duration cgi1 = scenario.kernel().ExecutedUsecForName("cgi");
  std::vector<double> disk_fracs(disk_cts.size(), 0.0);
  {
    sim::Duration total = 0;
    for (std::size_t i = 0; i < disk_cts.size(); ++i) {
      disk0[i] = disk_cts[i]->usage().disk_busy_usec - disk0[i];
      total += disk0[i];
    }
    for (std::size_t i = 0; i < disk_cts.size(); ++i) {
      disk_fracs[i] = total > 0 ? static_cast<double>(disk0[i]) /
                                      static_cast<double>(total)
                                : 0.0;
    }
  }
  const double link_util =
      static_cast<double>(scenario.kernel().link().stats().busy_usec - link0) /
      static_cast<double>(cpu1.at - cpu0.at);
  std::vector<double> mem_fracs(mem_cts.size(), 0.0);
  {
    std::int64_t total = 0;
    for (const auto& ct : mem_cts) {
      total += ct->usage().memory_bytes;
    }
    for (std::size_t i = 0; i < mem_cts.size(); ++i) {
      mem_fracs[i] = total > 0 ? static_cast<double>(mem_cts[i]->usage().memory_bytes) /
                                     static_cast<double>(total)
                               : 0.0;
    }
  }

  const double secs = sim::ToSeconds(cpu1.at - cpu0.at);
  const double tput = static_cast<double>(scenario.TotalCompleted()) / secs;
  double mean_ms = 0;
  std::size_t samples = 0;
  std::uint64_t timeouts = 0;
  std::uint64_t failures = 0;
  for (const auto& c : scenario.clients()) {
    mean_ms += c->latencies().mean() * static_cast<double>(c->latencies().count());
    samples += c->latencies().count();
    timeouts += c->timeouts();
    failures += c->failures();
  }
  mean_ms = samples ? mean_ms / static_cast<double>(samples) : 0;
  const double busy = static_cast<double>(cpu1.busy - cpu0.busy) /
                      static_cast<double>(cpu1.at - cpu0.at);
  const double irq = static_cast<double>(cpu1.interrupt - cpu0.interrupt) /
                     static_cast<double>(cpu1.at - cpu0.at);
  const double cgi_share =
      static_cast<double>(cgi1 - cgi0) / static_cast<double>(cpu1.at - cpu0.at);

  if (!flags.trace_out.empty()) {
    std::ofstream os(flags.trace_out);
    telemetry::WriteChromeTrace(scenario.kernel().tracer(),
                                telemetry::ContainerNamesFrom(scenario.kernel().containers()),
                                os);
    if (!os) {
      std::fprintf(stderr, "failed to write %s\n", flags.trace_out.c_str());
      return 1;
    }
  }
  if (!flags.series_out.empty()) {
    std::ofstream os(flags.series_out);
    scenario.sampler()->WriteJsonLines(os);
    if (!os) {
      std::fprintf(stderr, "failed to write %s\n", flags.series_out.c_str());
      return 1;
    }
  }

  telemetry::BenchReport bench("rcsim", argc, argv);
  {
    std::string config = "kernel=" + flags.kernel +
                         ",clients=" + std::to_string(flags.clients) +
                         ",persistent=" + std::to_string(flags.persistent);
    if (flags.cpus > 1) config += ",cpus=" + std::to_string(flags.cpus);
    if (flags.cgi > 0) config += ",cgi=" + std::to_string(flags.cgi);
    if (flags.flood > 0) {
      config += ",flood=" + std::to_string(static_cast<long>(flags.flood));
    }
    bench.Add("throughput", tput, "req/s", config);
    bench.Add("mean_latency", mean_ms, "ms", config);
    bench.Add("cpu_busy_frac", busy, "fraction", config);
    bench.Add("interrupt_frac", irq, "fraction", config);
    if (flags.cgi > 0) bench.Add("cgi_cpu_share", cgi_share, "fraction", config);
    for (std::size_t i = 0; i < disk_fracs.size(); ++i) {
      bench.Add("disk_share_" + std::to_string(i), disk_fracs[i], "fraction", config);
    }
    for (std::size_t i = 0; i < mem_fracs.size(); ++i) {
      bench.Add("memory_share_" + std::to_string(i), mem_fracs[i], "fraction", config);
    }
    if (flags.memory_guarantee > 0) {
      bench.Add("memory_guarantee_bytes", static_cast<double>(mem_guarantee_bytes),
                "bytes", config);
      bench.Add("memory_guarantee_min_resident",
                static_cast<double>(*mem_guarantee_min), "bytes", config);
    }
    if (flags.link_mbps > 0) bench.Add("link_utilization", link_util, "fraction", config);
    bench.Add("client_timeouts", static_cast<double>(timeouts), "count", config);
    bench.Add("client_failures", static_cast<double>(failures), "count", config);
    if (!bench.Flush()) {
      std::fprintf(stderr, "failed to write %s\n", bench.path().c_str());
      return 1;
    }
  }

  if (flags.print_metrics) {
    xp::MetricsTable(scenario.metrics()).Print(std::cout);
    std::printf("\n");
  }

  if (flags.digest) {
    std::printf("digest: %s\n", scenario.digest()->hex().c_str());
  }

  if (flags.csv) {
    std::printf("throughput,mean_ms,cpu_busy,interrupt,cgi_share,timeouts,failures\n");
    std::printf("%.1f,%.3f,%.4f,%.4f,%.4f,%llu,%llu\n", tput, mean_ms, busy, irq,
                cgi_share, static_cast<unsigned long long>(timeouts),
                static_cast<unsigned long long>(failures));
    return 0;
  }

  xp::Table report({"metric", "value"});
  report.AddRow({"kernel", flags.kernel});
  report.AddRow({"throughput", xp::FormatDouble(tput, 0) + " req/s"});
  report.AddRow({"mean latency", xp::FormatDouble(mean_ms, 2) + " ms"});
  report.AddRow({"CPU busy", xp::FormatDouble(100 * busy, 1) + "%"});
  report.AddRow({"interrupt time", xp::FormatDouble(100 * irq, 1) + "%"});
  if (flags.cgi > 0) {
    report.AddRow({"CGI CPU share", xp::FormatDouble(100 * cgi_share, 1) + "%"});
  }
  if (flags.flood > 0) {
    report.AddRow({"flood filters", std::to_string(
                                        scenario.server().stats().flood_filters_installed)});
  }
  for (std::size_t i = 0; i < disk_fracs.size(); ++i) {
    report.AddRow({"disk share " + std::to_string(i) + " (want " +
                       xp::FormatDouble(100 * disk_shares[i], 0) + "%)",
                   xp::FormatDouble(100 * disk_fracs[i], 1) + "%"});
  }
  for (std::size_t i = 0; i < mem_fracs.size(); ++i) {
    report.AddRow({"memory share " + std::to_string(i) + " (want " +
                       xp::FormatDouble(100 * memory_shares[i], 0) + "%)",
                   xp::FormatDouble(100 * mem_fracs[i], 1) + "%"});
  }
  if (flags.memory_guarantee > 0) {
    report.AddRow({"memory guarantee (bytes)", std::to_string(mem_guarantee_bytes)});
    report.AddRow({"memory min resident (bytes)",
                   std::to_string(*mem_guarantee_min)});
  }
  if (flags.link_mbps > 0) {
    report.AddRow({"link utilization", xp::FormatDouble(100 * link_util, 1) + "%"});
  }
  report.AddRow({"client timeouts", std::to_string(timeouts)});
  report.AddRow({"client failures", std::to_string(failures)});
  report.Print(std::cout);
  return 0;
}
