// ContainerManager: creates containers, owns the root of the hierarchy, and
// enforces cross-container invariants (sibling share sums, parenting rules).
//
// Lifecycle fast path: container storage comes from a slab/freelist arena
// (one pooled allocation per container, shared_ptr control block included);
// the live-container registry is a dense slot array with generation counters
// instead of an id-keyed hash map; names are interned per class; sibling
// fixed-share sums are maintained incrementally so per-create validation is
// O(1); and lifecycle notifications dispatch through the typed
// LifecycleListener interface. Repeated creations of the same class go
// through a pre-validated ContainerTemplate, skipping attribute validation
// and name interning per instance.
#ifndef SRC_RC_MANAGER_H_
#define SRC_RC_MANAGER_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "src/common/expected.h"
#include "src/rc/container.h"
#include "src/rc/lifecycle.h"
#include "src/rc/slab.h"

namespace rc {

class MemoryArbiter;

// A pre-validated recipe for creating containers of one class ("conn",
// "cgi-req"): attributes are validated and the name interned once, at
// preparation time; each CreateFromTemplate then only re-checks the
// invariants that can drift (parent class, sibling share budget — and the
// latter only when the template holds fixed shares). The template pins its
// parent and the interned-name storage, so it stays valid for the manager's
// lifetime.
class ContainerTemplate {
 public:
  const ContainerRef& parent() const { return parent_; }
  const std::string& name() const { return *name_; }
  const Attributes& attributes() const { return attrs_; }
  // True when the template carries a fixed share for any resource kind, i.e.
  // creation must re-check the sibling budget.
  bool needs_budget_check() const { return needs_budget_check_; }

 private:
  friend class ContainerManager;
  ContainerTemplate() = default;

  ContainerRef parent_;  // resolved: never null (top level == root)
  const std::string* name_ = nullptr;
  std::shared_ptr<ManagerShared> shared_;  // keeps the interned name alive
  Attributes attrs_;
  bool needs_budget_check_ = false;
};

using ContainerTemplateRef = std::shared_ptr<const ContainerTemplate>;

class ContainerManager {
 public:
  ContainerManager();
  ~ContainerManager();

  ContainerManager(const ContainerManager&) = delete;
  ContainerManager& operator=(const ContainerManager&) = delete;

  // The machine-wide root container: fixed-share, 100% of the CPU. All
  // top-level ("no parent") containers are its children.
  const ContainerRef& root() const { return root_; }

  // Creates a container under `parent` (nullptr means top level). Fails if
  // the parent is a time-share container ("time-share containers cannot have
  // children", Section 5.1) or if a fixed share would oversubscribe the
  // parent.
  rccommon::Expected<ContainerRef> Create(const ContainerRef& parent, std::string name,
                                          const Attributes& attrs = {});

  // Validates `attrs` and the parent once and returns a reusable creation
  // recipe for the container class. Fails exactly when Create would.
  rccommon::Expected<ContainerTemplateRef> PrepareTemplate(
      const ContainerRef& parent, std::string name, const Attributes& attrs = {});

  // The per-connection fast path: creates a container from a prepared
  // template, skipping per-instance attribute validation and name interning.
  // Re-checks the parent's class, and the sibling share budget only when the
  // template carries fixed shares.
  rccommon::Expected<ContainerRef> CreateFromTemplate(const ContainerTemplate& t);

  // Re-parents `c` (Section 4.6 "Set a container's parent"); `parent` of
  // nullptr means "no parent" (top level). Rejects cycles and
  // oversubscription at the new parent.
  rccommon::Expected<void> SetParent(const ContainerRef& c, const ContainerRef& parent);

  // "Obtain handle for existing container" (Table 1). Returns kNotFound when
  // the id does not name a live container. Cold path: scans the slot array.
  rccommon::Expected<ContainerRef> Lookup(ContainerId id) const;

  // Number of live containers, including the root.
  std::size_t live_count() const { return live_; }

  // Visits every live container (including the root) in id order. Used by
  // telemetry exports that need run-to-run deterministic order.
  void ForEachLive(const std::function<void(ResourceContainer&)>& fn) const;

  // Dense slot access for single-pass consumers (the epoch sampler): slots
  // in [0, slot_capacity()) hold either a live container or nullptr. A
  // destroyed container's slot is reused by a later create with a bumped
  // generation.
  std::size_t slot_capacity() const { return slots_.size(); }
  ResourceContainer* container_at_slot(std::size_t slot) const {
    return slots_[slot].ptr;
  }

  // Registers `listener` for destroy/reparent notifications. A listener
  // registers with at most one manager; it is unregistered automatically by
  // its destructor (or explicitly via RemoveLifecycleListener). Registration
  // and removal are safe during notification dispatch: a listener removed
  // mid-dispatch is not called again, one added mid-dispatch is first called
  // for the next event.
  void AddLifecycleListener(LifecycleListener* listener);
  void RemoveLifecycleListener(LifecycleListener* listener);

  // Sum of fixed shares of `parent`'s children that are fixed-share for
  // `kind`, excluding `exclude` (used when re-validating an attribute
  // change). Disk/link shares are budgeted independently of CPU shares.
  // O(1): reads the parent's incrementally maintained per-kind sums.
  static double SiblingFixedShareSum(const ResourceContainer& parent,
                                     const ResourceContainer* exclude,
                                     ResourceKind kind = ResourceKind::kCpu);

  // Memory policy engine all ChargeMemory/ReleaseMemory calls route through
  // when set (the kernel installs its MemoryBroker here). Not owned; the
  // broker clears it on destruction.
  void set_memory_arbiter(MemoryArbiter* arbiter) { memory_arbiter_ = arbiter; }
  MemoryArbiter* memory_arbiter() const { return memory_arbiter_; }

 private:
  friend class ResourceContainer;

  struct Slot {
    ResourceContainer* ptr = nullptr;  // nullptr == free
    std::uint32_t generation = 0;
  };

  // Allocates a container from the arena, assigns the next id and a dense
  // slot, and adopts it under `parent` (nullptr only for the root itself).
  ContainerRef Materialize(ResourceContainer* parent, const std::string* name,
                           const Attributes& attrs);

  // Called from ResourceContainer's destructor.
  void OnDestroy(ResourceContainer& c);

  void NotifyReparent(ResourceContainer& child, ResourceContainer* old_parent,
                      ResourceContainer* new_parent);

  rccommon::Expected<void> CheckParentEligible(const ResourceContainer& parent,
                                               const Attributes& child_attrs,
                                               const ResourceContainer* exclude) const;

  std::shared_ptr<ManagerShared> shared_;
  std::shared_ptr<SlabPool> pool_;
  ContainerRef root_;
  ContainerId next_id_ = 1;

  std::vector<Slot> slots_;
  std::vector<std::uint32_t> free_slots_;
  std::size_t live_ = 0;

  // Dense listener array; removal during dispatch nulls the entry, and the
  // array is compacted once the outermost dispatch unwinds.
  std::vector<LifecycleListener*> listeners_;
  int dispatch_depth_ = 0;
  bool listeners_dirty_ = false;

  MemoryArbiter* memory_arbiter_ = nullptr;
};

}  // namespace rc

#endif  // SRC_RC_MANAGER_H_
