#include "src/httpd/prefork_server.h"

#include <utility>

#include "src/common/check.h"
#include "src/httpd/metrics.h"

namespace httpd {

using kernel::SpawnOptions;
using kernel::Sys;

PreforkServer::PreforkServer(kernel::Kernel* kernel, FileCache* cache,
                             ServerConfig config)
    : kernel_(kernel), cache_(cache), config_(std::move(config)) {
  RC_CHECK_GT(config_.worker_processes, 0);
}

void PreforkServer::Start(rc::ContainerRef default_container) {
  RC_CHECK_EQ(master_, nullptr);
  master_ = kernel_->CreateProcess("httpd-master", std::move(default_container));
  kernel_->SpawnThread(master_, "master", [this](Sys sys) { return Master(sys); });
}

kernel::Program PreforkServer::Master(Sys sys) {
  // Pre-fork the worker pool.
  for (int i = 0; i < config_.worker_processes; ++i) {
    auto state = std::make_unique<WorkerState>();
    WorkerState* raw = state.get();
    workers_.push_back(std::move(state));
    SpawnOptions opts;
    opts.detach = true;  // workers run for the whole simulation
    auto pid = co_await sys.Spawn(
        "httpd-worker", [this, raw](Sys worker_sys) { return Worker(worker_sys, raw); },
        opts);
    RC_CHECK(pid.ok());
    raw->pid = *pid;
  }

  const ListenClass& cls = config_.classes.front();
  auto lfd = co_await sys.Listen(config_.port, cls.filter, -1, config_.syn_backlog,
                                 config_.accept_backlog);
  RC_CHECK(lfd.ok());

  std::size_t next = 0;
  for (;;) {
    auto accepted = co_await sys.Accept(*lfd);
    if (!accepted.ok()) {
      break;
    }
    ++stats_.connections_accepted;
    WorkerState* w = workers_[next % workers_.size()].get();
    ++next;
    auto wfd = co_await sys.PassFd(w->pid, *accepted);
    co_await sys.ReleaseFd(*accepted);
    if (wfd.ok()) {
      w->jobs.push_back(*wfd);
      w->sem.Post();
    }
  }
}

kernel::Program PreforkServer::Worker(Sys sys, WorkerState* state) {
  const kernel::CostModel& costs = sys.kernel().costs();
  for (;;) {
    co_await state->sem.Wait(sys);
    RC_CHECK(!state->jobs.empty());
    const int cfd = state->jobs.front();
    state->jobs.pop_front();

    for (;;) {
      auto received = co_await sys.Recv(cfd);
      if (!received.ok() || received->eof) {
        co_await sys.CloseFd(cfd);
        ++stats_.eof_closed;
        break;
      }
      const net::HttpRequestInfo req = received->request;
      co_await sys.Compute(costs.http_parse, rc::CpuKind::kUser);
      if (req.is_cgi) {
        // Library-based dynamic module: run the computation in-process.
        co_await sys.Compute(req.cgi_cpu_usec, rc::CpuKind::kUser);
        ++stats_.cgi_started;
      } else {
        auto size = cache_->Lookup(req.doc_id);
        sim::Duration lookup_cost = costs.file_cache_lookup;
        if (!size.has_value()) {
          lookup_cost += config_.file_miss_penalty;
          cache_->Insert(req.doc_id, req.response_bytes);
        }
        co_await sys.Compute(lookup_cost, rc::CpuKind::kUser);
      }
      co_await sys.Send(cfd, req.response_bytes, req.request_id,
                        /*close_after=*/!req.keep_alive);
      ++stats_.static_served;
      if (req.client_class >= 0 && req.client_class < kMaxClientClasses) {
        ++stats_.served_by_class[req.client_class];
      }
      if (!req.keep_alive) {
        co_await sys.ReleaseFd(cfd);
        break;
      }
    }
  }
}

void PreforkServer::RegisterMetrics(telemetry::Registry& registry) {
  RegisterServerMetrics(registry, &stats_, cache_);
}

}  // namespace httpd
