// The simulated monolithic kernel: ties together the container manager, the
// CPU engine and scheduler, the TCP/IP stack, processes and syscalls. One
// Kernel instance is one simulated machine.
#ifndef SRC_KERNEL_KERNEL_H_
#define SRC_KERNEL_KERNEL_H_

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/disk/disk_engine.h"
#include "src/kernel/cost_model.h"
#include "src/kernel/cpu_engine.h"
#include "src/kernel/memory_broker.h"
#include "src/kernel/process.h"
#include "src/kernel/scheduler.h"
#include "src/kernel/sharded_scheduler.h"
#include "src/kernel/smp_engine.h"
#include "src/kernel/thread.h"
#include "src/kernel/trace.h"
#include "src/common/expected.h"
#include "src/net/link_sched.h"
#include "src/net/stack.h"
#include "src/rc/manager.h"
#include "src/sim/simulator.h"
#include "src/telemetry/registry.h"

namespace verify {
class ChargeAuditor;
class RaceDetector;
}  // namespace verify

namespace kernel {

class Sys;

enum class SchedulerKind {
  kDecayUsage,    // classic process-centric time sharing
  kHierarchical,  // resource containers as principals
};

struct KernelConfig {
  net::NetMode net_mode = net::NetMode::kSoftint;
  SchedulerKind sched = SchedulerKind::kDecayUsage;
  // Number of simulated CPUs. 1 reproduces the paper's uniprocessor exactly;
  // N > 1 shards the run queue per CPU (shares and limits stay machine-wide).
  int cpus = 1;
  // Which CPU device interrupts (and trailing protocol work) land on. Only
  // meaningful when cpus > 1.
  IrqSteering irq_steering = IrqSteering::kFlowHash;
  CostModel costs;
  disk::DiskCosts disk_costs;
  // Outbound-link rate in Mbps; 0 disables the transmit-link model (packets
  // pass through unscheduled, matching the pre-link behaviour exactly).
  double link_mbps = 0.0;
  // Machine physical memory in bytes; 0 disables the memory broker's
  // capacity/guarantee/reclaim machinery, leaving pure hierarchical limits
  // (the pre-broker behaviour exactly).
  std::int64_t memory_bytes = 0;
};

// Canonical configurations matching the paper's four evaluated systems.
KernelConfig UnmodifiedSystemConfig();        // softint + decay usage
KernelConfig LrpSystemConfig();               // LRP charging + decay usage
KernelConfig ResourceContainerSystemConfig(); // RC charging + hierarchical

class Kernel : public net::StackEnv, public rc::LifecycleListener {
 public:
  Kernel(sim::Simulator* simulator, KernelConfig config);
  ~Kernel() override;

  Kernel(const Kernel&) = delete;
  Kernel& operator=(const Kernel&) = delete;

  sim::Simulator& simulator() { return *simr_; }
  rc::ContainerManager& containers() { return containers_; }
  net::Stack& stack() { return *stack_; }
  disk::DiskEngine& disk() { return *disk_; }
  net::LinkScheduler& link() { return *link_; }
  MemoryBroker& memory() { return *memory_broker_; }
  const MemoryBroker& memory() const { return *memory_broker_; }
  // The multiprocessor, and (for uniprocessor-era call sites) CPU 0.
  SmpEngine& smp() { return *smp_; }
  CpuEngine& cpu() { return smp_->engine(0); }
  CpuScheduler& scheduler() { return *active_sched_; }
  // Per-CPU policy shards when cpus > 1; null on a uniprocessor.
  ShardedScheduler* sharded_scheduler() { return sharded_.get(); }
  const CostModel& costs() const { return config_.costs; }
  Tracer& tracer() { return tracer_; }
  const KernelConfig& config() const { return config_; }
  sim::SimTime now() const { return simr_->now(); }

  // Starts periodic housekeeping (scheduler decay ticks, scheduler-binding
  // pruning). Call once before running the simulation.
  void Start();
  // Cancels periodic timers so the simulator can drain.
  void Stop();

  // --- Processes and threads ---------------------------------------------

  // Creates a process. When `default_container` is null a fresh top-level
  // container named after the process is created (the classic model: one
  // resource principal per process).
  Process* CreateProcess(std::string name, rc::ContainerRef default_container = nullptr);

  // Spawns a thread running `body`; the thread starts bound to the process's
  // default container.
  Thread* SpawnThread(Process* process, std::string name,
                      std::function<Program(Sys)> body);

  // Destroys a finished thread; fires process-exit watchers when it was the
  // last one.
  void ReapThread(Thread* t);

  Process* FindProcess(Pid pid);
  // Removes a zombie process (after WaitProcess observed it).
  void ReapProcess(Pid pid);

  std::size_t process_count() const { return processes_.size(); }

  // --- Accounting ----------------------------------------------------------

  // Attaches a metrics registry: machine-wide charge counters
  // (rc.cpu.*_usec), the tracer's recorded-event counter, and kernel-level
  // probes are resolved once here, so the charge path below costs one null
  // check when telemetry was never attached. Pass nullptr to detach.
  void AttachTelemetry(telemetry::Registry* registry);
  telemetry::Registry* telemetry_registry() const { return telemetry_; }

  // Charges `usec` of CPU to `c` and informs the scheduler (feedback).
  void ChargeCpu(rc::ResourceContainer& c, sim::Duration usec, rc::CpuKind kind);

  // Forces batched charges into every share tree (CPU shards, disk, link).
  // The trees flush themselves before every scheduling decision or read;
  // this hook exists for the two mutations batching cannot see coming —
  // SetAttributes and fixed-share container creation — which would otherwise
  // re-weight charges accrued under the old attributes.
  void FlushResourceCharges();

  // --- Verification (src/verify, opt-in) -----------------------------------

  // Attaches the charge-conservation auditor. Must be called before any
  // simulated work runs (tallies start empty), and the auditor must outlive
  // this kernel (destroy notifications fire during teardown). Null detaches
  // the charge-path hook but not hierarchy observation.
  void AttachAuditor(verify::ChargeAuditor* auditor);
  verify::ChargeAuditor* auditor() const { return auditor_; }

  // Runs the auditor's conservation checks against the engines' accounting.
  // Empty result == clean (or no auditor attached).
  std::vector<std::string> AuditCheck() const;

  // Attaches the lockset race detector; instrumentation hooks throughout the
  // engine, semaphores and scheduler sections feed it. Null detaches.
  void AttachRaceDetector(verify::RaceDetector* detector) {
    race_detector_ = detector;
  }
  verify::RaceDetector* race_detector() const { return race_detector_; }

  // Gives every CPU a dispatch opportunity (wake-up path). On a uniprocessor
  // this is exactly one Poke of the single engine.
  void PokeCpus() { smp_->PokeAll(); }

  // Pins `t` to `cpu` (-1 unpins). Fails on an out-of-range CPU. A queued
  // thread is re-queued on the target shard immediately.
  rccommon::Expected<void> SetThreadAffinity(Thread* t, int cpu);

  // Total CPU charged to any container (root subtree).
  sim::Duration TotalChargedCpuUsec() const;

  // Wall CPU actually executed by threads of all processes with this name
  // (live and reaped). Ground truth for per-process-class CPU shares
  // (Figure 13), independent of which container the time was charged to.
  sim::Duration ExecutedUsecForName(const std::string& name) const;

  // --- Wire ----------------------------------------------------------------

  // Packet arrival from the network; raises the device interrupt.
  void DeliverFromWire(const net::Packet& p);

  // Outbound packets are handed to this sink (installed by the workload).
  void set_wire_sink(std::function<void(const net::Packet&)> sink) {
    wire_sink_ = std::move(sink);
  }

  // --- Syscall-layer plumbing (used by Sys awaitables) ---------------------

  // Waiters return true when they completed and should be removed.
  void AddAcceptWaiter(net::ListenSocket* ls, std::function<bool()> waiter);
  void AddConnWaiter(net::Connection* conn, std::function<bool()> waiter);
  void AddSelectWaiter(Process* proc, std::function<bool()> waiter);
  void SetNetWorkWaiter(std::uint64_t owner_tag, std::function<void()> waiter);
  void AddProcessExitWaiter(Pid pid, std::function<void()> waiter);

  // select()-style readiness for a descriptor.
  bool IsFdReady(Process& proc, int fd) const;

  // Ensures the per-process kernel network thread exists (LRP/RC modes).
  void EnsureNetThread(Process* proc);

  // Drains (and runs) all accept waiters of `ls` — used when the listen
  // socket closes so blocked acceptors observe the closure instead of
  // hanging.
  void DrainAcceptWaiters(net::ListenSocket* ls);

  // --- SYN-drop monitor (Section 5.7) --------------------------------------

  struct SynDropSource {
    net::Addr prefix;  // /24 prefix of the offending source
    std::uint64_t drops = 0;
  };
  struct SynDropReport {
    std::uint64_t total = 0;
    std::vector<SynDropSource> sources;  // sorted by drops, descending
  };
  // Snapshot-and-clear of drop counts on a listen socket.
  SynDropReport TakeSynDrops(net::ListenSocket* ls);

  // --- net::StackEnv --------------------------------------------------------
  void EmitToWire(net::Packet p) override;
  void EmitToWire(net::Packet p, rc::ContainerRef charge_to) override;
  void WakeAcceptors(net::ListenSocket& ls) override;
  void WakeConnection(net::Connection& conn) override;
  void NotifyPendingNetWork(std::uint64_t owner_tag) override;
  void OnSynDrop(net::ListenSocket& ls, net::Addr source) override;

  // --- rc::LifecycleListener ------------------------------------------------
  // Share trees register with the manager themselves; this forwards destroy
  // events to scheduler policies with private per-container state (decay
  // usage maps).
  void OnContainerDestroyed(rc::ResourceContainer& c) override;

 private:
  friend class Sys;

  void ScheduleTick();
  void SchedulePrune();
  void WakeSelectWaiters(Process& proc);
  int EventPriorityFor(const rc::ContainerRef& c) const;
  Program NetThreadBody(Sys sys, std::uint64_t owner_tag);

  sim::Simulator* const simr_;
  KernelConfig config_;
  rc::ContainerManager containers_;
  // Declared right after containers_ so it is destroyed after the stack and
  // devices (their teardown releases memory through the live broker) but
  // before the manager it deregisters from.
  std::unique_ptr<MemoryBroker> memory_broker_;
  // cpus == 1: `sched_` is the policy, wired straight to the single engine
  // (bit-identical to the uniprocessor code path). cpus > 1: `sharded_` owns
  // one policy instance per CPU. `active_sched_` points at whichever is live.
  std::unique_ptr<CpuScheduler> sched_;
  std::unique_ptr<ShardedScheduler> sharded_;
  CpuScheduler* active_sched_ = nullptr;
  std::unique_ptr<SmpEngine> smp_;
  std::unique_ptr<net::Stack> stack_;
  std::unique_ptr<disk::DiskEngine> disk_;
  std::unique_ptr<net::LinkScheduler> link_;
  Tracer tracer_;

  telemetry::Registry* telemetry_ = nullptr;
  // Charge counters indexed by rc::CpuKind; null while telemetry is detached.
  telemetry::Counter* charge_counters_[3] = {nullptr, nullptr, nullptr};

  verify::ChargeAuditor* auditor_ = nullptr;
  verify::RaceDetector* race_detector_ = nullptr;

  std::function<void(const net::Packet&)> wire_sink_;

  Pid next_pid_ = 1;
  ThreadId next_tid_ = 1;
  std::unordered_map<Pid, std::unique_ptr<Process>> processes_;

  std::unordered_map<const net::ListenSocket*, std::deque<std::function<bool()>>>
      accept_waiters_;
  std::unordered_map<const net::Connection*, std::deque<std::function<bool()>>>
      conn_waiters_;
  std::unordered_map<const Process*, std::vector<std::function<bool()>>> select_waiters_;
  std::unordered_map<std::uint64_t, std::function<void()>> net_work_waiters_;

  std::unordered_map<const net::ListenSocket*,
                     std::unordered_map<std::uint32_t, std::uint64_t>>
      syn_drops_;

  std::unordered_map<std::string, sim::Duration> reaped_executed_by_name_;

  sim::EventHandle tick_timer_;
  sim::EventHandle prune_timer_;
  bool running_ = false;
  // Set during destruction: container-destroy observers must not call into
  // the scheduler, which is torn down before the container manager.
  bool shutting_down_ = false;
};

}  // namespace kernel

#endif  // SRC_KERNEL_KERNEL_H_
