#include "src/kernel/smp_engine.h"

#include "src/common/check.h"

namespace kernel {

SmpEngine::SmpEngine(sim::Simulator* simulator, Kernel* kernel, const CostModel* costs,
                     int cpus, IrqSteering steering)
    : steering_(steering) {
  RC_CHECK_GE(cpus, 1);
  engines_.reserve(static_cast<std::size_t>(cpus));
  for (int i = 0; i < cpus; ++i) {
    engines_.push_back(std::make_unique<CpuEngine>(simulator, kernel, costs, i));
  }
}

CpuEngine& SmpEngine::SteerFor(const net::Packet& p) {
  const auto n = engines_.size();
  if (n == 1) {
    return *engines_[0];
  }
  switch (steering_) {
    case IrqSteering::kFixed:
      return *engines_[0];
    case IrqSteering::kRoundRobin:
      return *engines_[rr_next_++ % n];
    case IrqSteering::kFlowHash:
      return *engines_[net::FlowHash(p) % n];
  }
  return *engines_[0];
}

void SmpEngine::PokeAll() {
  for (auto& engine : engines_) {
    engine->Poke();
  }
}

sim::Duration SmpEngine::busy_usec() const {
  sim::Duration total = 0;
  for (const auto& engine : engines_) {
    total += engine->busy_usec();
  }
  return total;
}

sim::Duration SmpEngine::interrupt_usec() const {
  sim::Duration total = 0;
  for (const auto& engine : engines_) {
    total += engine->interrupt_usec();
  }
  return total;
}

sim::Duration SmpEngine::context_switch_usec() const {
  sim::Duration total = 0;
  for (const auto& engine : engines_) {
    total += engine->context_switch_usec();
  }
  return total;
}

sim::Duration SmpEngine::idle_usec() const {
  sim::Duration total = 0;
  for (const auto& engine : engines_) {
    total += engine->idle_usec();
  }
  return total;
}

}  // namespace kernel
