// Eraser-style lockset race detector for *simulated* threads.
//
// The simulator is single-threaded, so host-level TSan can never see a data
// race between two simulated threads — yet the coroutine threads multiplexed
// over kernel::Semaphore and the per-CPU run queues have exactly the same
// interleaving hazards as real threads: any blocking point (semaphore wait,
// syscall, quantum preemption) is a point where another simulated thread may
// run and touch the same state.
//
// This detector implements the classic Eraser algorithm (Savage et al. 1997)
// over simulation-level events:
//   - shared state is annotated with RC_SHARED_READ / RC_SHARED_WRITE;
//   - lock acquire/release is instrumented on kernel::Semaphore and on the
//     scheduler's run-queue sections (verify::ScopedLock);
//   - each variable's candidate lockset is the intersection of the locks
//     held at every access once a second thread has touched it. A write
//     with an empty candidate lockset is reported as a race, naming the
//     variable and the threads involved.
//
// Context model: accesses made while no simulated thread is dispatched
// (interrupt handlers, simulator callbacks) run in "kernel context", which
// implicitly holds the kernel lock — the single-threaded event loop *is* a
// big kernel lock for such state. Thread-context accesses hold only the
// semaphores/sections the thread actually acquired.
#ifndef SRC_VERIFY_LOCKSET_H_
#define SRC_VERIFY_LOCKSET_H_

#include <cstdint>
#include <set>
#include <string>
#include <unordered_map>
#include <vector>

namespace verify {

class RaceDetector {
 public:
  // The "thread id" of kernel context (interrupts, simulator callbacks).
  static constexpr std::uint64_t kKernelContext = 0;

  // Locks are tracked by a dense id assigned at first acquisition (an event
  // whose order the simulation fully determines), never by raw address:
  // locksets are ordered sets, and pointer keys would make their iteration
  // order — and thus any derived output — depend on address-space layout.
  using LockId = std::uint32_t;

  RaceDetector() = default;
  RaceDetector(const RaceDetector&) = delete;
  RaceDetector& operator=(const RaceDetector&) = delete;

  // Set by the CPU engine around coroutine execution; kKernelContext
  // otherwise.
  void SetCurrentThread(std::uint64_t tid) { current_ = tid; }
  std::uint64_t current_thread() const { return current_; }

  // Lock acquire/release. `tid` is explicit because a semaphore hand-off
  // grants the lock to the *waiting* thread from the poster's context.
  void OnAcquire(std::uint64_t tid, const void* lock, const char* name);
  void OnRelease(std::uint64_t tid, const void* lock);

  // A shared-state access by the current context. Drives the Eraser state
  // machine for `addr`; `name` labels the variable in reports.
  void OnAccess(const void* addr, const char* name, bool is_write);

  struct Report {
    std::string variable;
    std::uint64_t first_thread = 0;   // thread that owned the exclusive phase
    std::uint64_t second_thread = 0;  // access that emptied the lockset
    bool on_write = false;
    std::string what;  // full human-readable diagnostic
  };
  const std::vector<Report>& reports() const { return reports_; }
  std::uint64_t access_count() const { return access_count_; }

 private:
  enum class Phase : std::uint8_t {
    kVirgin,          // never accessed
    kExclusive,       // accessed by one thread only — no lockset refinement
    kShared,          // read-shared across threads
    kSharedModified,  // written by more than one thread: races reportable
  };

  struct VarState {
    Phase phase = Phase::kVirgin;
    std::uint64_t owner = 0;  // exclusive-phase thread
    std::uint64_t last_other = 0;
    std::set<LockId> lockset;
    bool reported = false;
    std::string name;
  };

  // Dense id for `lock`, assigned on first sight.
  LockId IdFor(const void* lock);

  // The lockset of the current context: held locks, plus the implicit
  // kernel lock in kernel context.
  std::set<LockId> CurrentLocks() const;
  void MaybeReport(VarState& var, bool is_write);

  std::uint64_t current_ = kKernelContext;
  std::unordered_map<std::uint64_t, std::set<LockId>> held_;
  std::unordered_map<const void*, LockId> lock_ids_;
  std::vector<std::string> lock_names_;  // indexed by LockId
  std::unordered_map<const void*, VarState> vars_;
  std::vector<Report> reports_;
  std::uint64_t access_count_ = 0;
};

// RAII acquire/release of an instrumentation lock (e.g. the scheduler
// run-queue lock). Null-safe: a detached detector costs one branch.
class ScopedLock {
 public:
  ScopedLock(RaceDetector* detector, const void* lock, const char* name)
      : detector_(detector), lock_(lock) {
    if (detector_ != nullptr) {
      tid_ = detector_->current_thread();
      detector_->OnAcquire(tid_, lock_, name);
    }
  }
  ~ScopedLock() {
    if (detector_ != nullptr) {
      detector_->OnRelease(tid_, lock_);
    }
  }
  ScopedLock(const ScopedLock&) = delete;
  ScopedLock& operator=(const ScopedLock&) = delete;

 private:
  RaceDetector* const detector_;
  const void* const lock_;
  std::uint64_t tid_ = 0;
};

}  // namespace verify

// Shared-state annotations. `var` must be an lvalue; its address identifies
// the state, its spelling labels it in race reports. One branch when the
// detector is detached (null).
#define RC_SHARED_READ(detector, var)                    \
  do {                                                   \
    ::verify::RaceDetector* rc_det = (detector);         \
    if (rc_det != nullptr) {                             \
      rc_det->OnAccess(&(var), #var, /*is_write=*/false); \
    }                                                    \
  } while (0)

#define RC_SHARED_WRITE(detector, var)                   \
  do {                                                   \
    ::verify::RaceDetector* rc_det = (detector);         \
    if (rc_det != nullptr) {                             \
      rc_det->OnAccess(&(var), #var, /*is_write=*/true); \
    }                                                    \
  } while (0)

#endif  // SRC_VERIFY_LOCKSET_H_
