// Deterministic random-number generation for experiments.
//
// xoshiro256** seeded via SplitMix64: fast, high quality, and — unlike
// std::mt19937 distributions — bit-for-bit reproducible across standard
// library implementations, which EXPERIMENTS.md relies on.
#ifndef SRC_SIM_RNG_H_
#define SRC_SIM_RNG_H_

#include <cstdint>

#include "src/sim/time.h"

namespace sim {

class Rng {
 public:
  explicit Rng(std::uint64_t seed);

  // Uniform 64-bit value.
  std::uint64_t NextU64();

  // Uniform in [0, 1).
  double NextDouble();

  // Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  std::int64_t UniformInt(std::int64_t lo, std::int64_t hi);

  // Uniform real in [lo, hi).
  double UniformReal(double lo, double hi);

  // Exponential with the given mean (> 0). Used for Poisson arrivals.
  double Exponential(double mean);

  // Exponential inter-arrival gap for a Poisson process of `rate_per_sec`
  // events per simulated second, returned as a Duration (>= 1 usec).
  Duration PoissonGap(double rate_per_sec);

  // Bernoulli trial with probability p of returning true.
  bool Chance(double p);

  // Derives an independent stream (for giving each client its own RNG).
  Rng Fork();

 private:
  std::uint64_t s_[4];
};

}  // namespace sim

#endif  // SRC_SIM_RNG_H_
