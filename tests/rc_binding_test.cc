// Unit tests for thread<->container bindings (Sections 4.2/4.3).
#include <gtest/gtest.h>

#include "src/rc/binding.h"
#include "src/rc/manager.h"

namespace rc {
namespace {

TEST(SchedulerBindingTest, TouchAddsOnce) {
  ContainerManager m;
  auto c = m.Create(nullptr, "c").value();
  SchedulerBinding b;
  b.Touch(c, 10);
  b.Touch(c, 20);
  EXPECT_EQ(b.size(), 1u);
  EXPECT_TRUE(b.Contains(c.get()));
}

TEST(SchedulerBindingTest, PruneRemovesStaleEntries) {
  ContainerManager m;
  auto a = m.Create(nullptr, "a").value();
  auto b = m.Create(nullptr, "b").value();
  SchedulerBinding sb;
  sb.Touch(a, 0);
  sb.Touch(b, 900);
  EXPECT_EQ(sb.Prune(/*now=*/1000, /*idle_threshold=*/500), 1u);
  EXPECT_FALSE(sb.Contains(a.get()));
  EXPECT_TRUE(sb.Contains(b.get()));
}

TEST(SchedulerBindingTest, PruneKeepsFreshEntries) {
  ContainerManager m;
  auto a = m.Create(nullptr, "a").value();
  SchedulerBinding sb;
  sb.Touch(a, 999);
  EXPECT_EQ(sb.Prune(1000, 500), 0u);
  EXPECT_EQ(sb.size(), 1u);
}

TEST(SchedulerBindingTest, ResetToSingleContainer) {
  ContainerManager m;
  auto a = m.Create(nullptr, "a").value();
  auto b = m.Create(nullptr, "b").value();
  SchedulerBinding sb;
  sb.Touch(a, 1);
  sb.Touch(b, 2);
  sb.Reset(b, 3);
  EXPECT_EQ(sb.size(), 1u);
  EXPECT_TRUE(sb.Contains(b.get()));
  EXPECT_FALSE(sb.Contains(a.get()));
}

TEST(SchedulerBindingTest, CombinedPrioritySums) {
  ContainerManager m;
  Attributes a16;
  a16.sched.priority = 16;
  Attributes a32;
  a32.sched.priority = 32;
  auto a = m.Create(nullptr, "a", a16).value();
  auto b = m.Create(nullptr, "b", a32).value();
  SchedulerBinding sb;
  sb.Touch(a, 1);
  sb.Touch(b, 1);
  EXPECT_EQ(sb.CombinedPriority(), 48);
}

TEST(SchedulerBindingTest, HoldsContainerAlive) {
  ContainerManager m;
  ContainerId id;
  SchedulerBinding sb;
  {
    auto c = m.Create(nullptr, "c").value();
    id = c->id();
    sb.Touch(c, 0);
  }
  // The binding's reference keeps it alive.
  EXPECT_TRUE(m.Lookup(id).ok());
  sb.Prune(1000000, 1);
  EXPECT_FALSE(m.Lookup(id).ok());
}

TEST(BindingPointTest, BindSetsResourceBindingAndCount) {
  ContainerManager m;
  auto c = m.Create(nullptr, "c").value();
  {
    BindingPoint bp;
    bp.Bind(c, 5);
    EXPECT_EQ(bp.resource_binding(), c);
    EXPECT_EQ(c->bound_thread_count(), 1);
    EXPECT_TRUE(bp.scheduler_binding().Contains(c.get()));
  }
  EXPECT_EQ(c->bound_thread_count(), 0);  // destructor unbinds
}

TEST(BindingPointTest, RebindMovesCount) {
  ContainerManager m;
  auto a = m.Create(nullptr, "a").value();
  auto b = m.Create(nullptr, "b").value();
  BindingPoint bp;
  bp.Bind(a, 1);
  bp.Bind(b, 2);
  EXPECT_EQ(a->bound_thread_count(), 0);
  EXPECT_EQ(b->bound_thread_count(), 1);
  // The scheduler binding remembers both (multiplexed thread).
  EXPECT_EQ(bp.scheduler_binding().size(), 2u);
}

TEST(BindingPointTest, BindingKeepsContainerAlive) {
  ContainerManager m;
  ContainerId id;
  BindingPoint bp;
  {
    auto c = m.Create(nullptr, "c").value();
    id = c->id();
    bp.Bind(c, 0);
  }
  // "once there are no such descriptors, and no threads with resource
  // bindings, to the container, it is destroyed" — binding still exists.
  EXPECT_TRUE(m.Lookup(id).ok());
}

TEST(BindingPointTest, ResetSchedulerBindingKeepsCurrent) {
  ContainerManager m;
  auto a = m.Create(nullptr, "a").value();
  auto b = m.Create(nullptr, "b").value();
  BindingPoint bp;
  bp.Bind(a, 1);
  bp.Bind(b, 2);
  bp.ResetSchedulerBinding(3);
  EXPECT_EQ(bp.scheduler_binding().size(), 1u);
  EXPECT_TRUE(bp.scheduler_binding().Contains(b.get()));
}

TEST(BindingPointTest, MultipleThreadsOneContainer) {
  ContainerManager m;
  auto c = m.Create(nullptr, "c").value();
  BindingPoint t1;
  BindingPoint t2;
  t1.Bind(c, 0);
  t2.Bind(c, 0);
  EXPECT_EQ(c->bound_thread_count(), 2);
}

}  // namespace
}  // namespace rc
