file(REMOVE_RECURSE
  "CMakeFiles/bench_synflood.dir/bench_synflood.cpp.o"
  "CMakeFiles/bench_synflood.dir/bench_synflood.cpp.o.d"
  "bench_synflood"
  "bench_synflood.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_synflood.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
