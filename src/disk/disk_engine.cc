#include "src/disk/disk_engine.h"

#include <algorithm>
#include <utility>

#include "src/common/check.h"
#include "src/telemetry/registry.h"

namespace disk {

sim::Duration DiskEngine::ServiceTime(std::uint32_t kb, bool sequential) const {
  sim::Duration t = static_cast<sim::Duration>(kb) * costs_.transfer_usec_per_kb;
  if (!(sequential && costs_.sequential_optimization)) {
    t += costs_.positioning_usec;
  }
  return std::max<sim::Duration>(t, 1);
}

void DiskEngine::Submit(IoRequest request) {
  int prio = rc::kDefaultPriority;
  if (request.container) {
    prio = std::clamp(request.container->attributes().EffectiveNetworkPriority(),
                      rc::kMinPriority, rc::kMaxPriority);
  }
  buckets_[static_cast<std::size_t>(prio)].push_back(std::move(request));
  ++queued_;
  MaybeStart();
}

void DiskEngine::MaybeStart() {
  if (busy_ || queued_ == 0) {
    return;
  }
  // Highest container priority first; FIFO within a priority class.
  IoRequest req;
  bool found = false;
  for (int prio = rc::kMaxPriority; prio >= 0 && !found; --prio) {
    auto& bucket = buckets_[static_cast<std::size_t>(prio)];
    if (!bucket.empty()) {
      req = std::move(bucket.front());
      bucket.pop_front();
      found = true;
    }
  }
  RC_CHECK(found);
  --queued_;
  busy_ = true;

  const bool sequential = req.block_kb == head_pos_kb_;
  const sim::Duration service = ServiceTime(req.kb, sequential);
  if (sequential) {
    ++stats_.sequential_hits;
  }
  head_pos_kb_ = req.block_kb + req.kb;

  simr_->After(service, [this, req = std::move(req), service]() mutable {
    ++stats_.requests;
    stats_.busy_usec += service;
    stats_.kb_transferred += req.kb;
    if (req.container) {
      req.container->ChargeDisk(service, req.kb);
    }
    busy_ = false;
    if (req.done) {
      auto done = std::move(req.done);
      done();
    }
    MaybeStart();
  });
}

void DiskEngine::RegisterMetrics(telemetry::Registry& registry) {
  registry.AddProbe("disk.requests", "requests",
                    [this] { return static_cast<double>(stats_.requests); });
  registry.AddProbe("disk.busy_usec", "usec",
                    [this] { return static_cast<double>(stats_.busy_usec); });
  registry.AddProbe("disk.kb_transferred", "kb",
                    [this] { return static_cast<double>(stats_.kb_transferred); });
  registry.AddProbe("disk.sequential_hits", "requests",
                    [this] { return static_cast<double>(stats_.sequential_hits); });
  registry.AddProbe("disk.queue_depth", "requests",
                    [this] { return static_cast<double>(queued_); });
}

}  // namespace disk
