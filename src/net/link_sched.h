// A rate-limited transmit link scheduled by container shares.
//
// Section 4.4 extends containers beyond CPU time to "other system resources";
// network bandwidth is the canonical server bottleneck after the CPU. This
// models the machine's outbound NIC as a fixed-rate serial link: packets the
// stack emits are queued per container and drained through the same
// hierarchical share tree as the CPU scheduler and the disk (sched::ShareTree
// over the link attributes — fixed shares are bandwidth guarantees, windowed
// limits cap a subtree's transmit time), and each packet's wire time is
// charged to the container whose activity produced it
// (rc::ResourceUsage::link_busy_usec).
//
// A rate of 0 disables the model: packets pass straight through to the sink
// with no queueing, no charging, and no simulated events, which keeps every
// existing CPU-only configuration digit-identical.
//
// Like the disk (and unlike the CPU), priority 0 is not a starvation class
// here: background flows keep a weight-1 trickle under saturation.
#ifndef SRC_NET_LINK_SCHED_H_
#define SRC_NET_LINK_SCHED_H_

#include <cstdint>
#include <functional>

#include "src/common/object_pool.h"
#include "src/net/packet.h"
#include "src/rc/container.h"
#include "src/rc/manager.h"
#include "src/sched/share_tree.h"
#include "src/sim/simulator.h"

namespace telemetry {
class Registry;
}
namespace verify {
class ChargeAuditor;
}

namespace net {

struct LinkConfig {
  // Link rate in megabits per second; 0 disables the link model entirely
  // (synchronous pass-through). 1 Mbps == 1 bit per simulated microsecond.
  double mbps = 0.0;
  // Decay applied to per-container decayed link usage on every kernel tick.
  double decay_per_tick = 0.9;
  // Window length for per-container link limits (attributes().link.limit).
  sim::Duration limit_window = 100000;
};

class LinkScheduler {
 public:
  LinkScheduler(sim::Simulator* simulator, rc::ContainerManager* manager,
                const LinkConfig& config);
  ~LinkScheduler();

  LinkScheduler(const LinkScheduler&) = delete;
  LinkScheduler& operator=(const LinkScheduler&) = delete;

  // Where transmitted packets go once their wire time elapses (the kernel's
  // wire sink). Must be set before any Transmit.
  void set_sink(std::function<void(const Packet&)> sink) {
    sink_ = std::move(sink);
  }

  bool enabled() const { return config_.mbps > 0.0; }

  // Queues `p` for transmission on behalf of `charge_to` (null: unowned,
  // queued at the root and charged to nobody). With the model disabled the
  // packet is handed to the sink synchronously.
  void Transmit(Packet p, rc::ContainerRef charge_to);

  // Wire time of a packet of `bytes` at the configured rate.
  sim::Duration TxTime(std::uint32_t bytes) const;

  bool busy() const { return busy_; }
  int queued() const { return tree_.queued_total(); }

  struct Stats {
    std::uint64_t packets = 0;
    sim::Duration busy_usec = 0;
    std::uint64_t bytes_sent = 0;  // wire bytes, headers included
  };
  const Stats& stats() const { return stats_; }
  // Simulated time at which this link came into existence (audit wallclock).
  sim::SimTime created_at() const { return created_at_; }

  // Charge-conservation observer for link service intervals (may be null).
  void set_auditor(verify::ChargeAuditor* auditor) { auditor_ = auditor; }

  // Periodic decay of the share tree's usage (kernel housekeeping tick).
  void Tick() { tree_.Tick(); }

  // Forces batched link charges into the share tree; needed only before
  // mutating container attributes pending charges were accrued under.
  void FlushCharges() { tree_.Flush(); }

  // The share tree registers itself with the manager for container
  // lifecycle; this unhooks it early at kernel teardown.
  void DetachLifecycle() { tree_.DetachLifecycle(); }

  // Test hooks.
  double DecayedUsage(const rc::ResourceContainer& c) const {
    return tree_.DecayedUsage(c);
  }
  bool IsThrottled(const rc::ResourceContainer& c, sim::SimTime now) const {
    return tree_.IsThrottled(c, now);
  }

  // Installs pull-based probes for the link counters (link.*) and the
  // current queue depth; `this` must outlive reads of the registry.
  void RegisterMetrics(telemetry::Registry& registry);

 private:
  struct QueuedPacket {
    Packet packet;
    rc::ContainerRef container;
  };

  static sched::ShareTreeOptions TreeOptions(const LinkConfig& config);

  void MaybeSend();
  void CompleteInflight(sim::Duration tx);

  sim::Simulator* const simr_;
  rc::ContainerManager* const manager_;
  const LinkConfig config_;

  sched::ShareTree tree_;
  // Queued/inflight packets are pool-allocated (one per Transmit on the hot
  // path); the destructor drains every outstanding packet back into the
  // pool before members die.
  rccommon::ObjectPool<QueuedPacket> pool_;
  std::function<void(const Packet&)> sink_;
  QueuedPacket* inflight_ = nullptr;
  bool busy_ = false;
  // A retry is pending because everything queued was limit-throttled.
  bool retry_armed_ = false;

  const sim::SimTime created_at_;
  Stats stats_;
  verify::ChargeAuditor* auditor_ = nullptr;
};

}  // namespace net

#endif  // SRC_NET_LINK_SCHED_H_
