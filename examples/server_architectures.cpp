// The three classic server architectures from Section 2, side by side on the
// same kernel and workload:
//
//   Figure 1: process-per-connection with a master and pre-forked workers
//   Figure 2: single-process event-driven (select)
//   Figure 3: single-process multi-threaded (kernel thread pool)
//
//   $ ./server_architectures
#include <cstdio>
#include <iostream>
#include <memory>
#include <vector>

#include "src/httpd/event_server.h"
#include "src/httpd/prefork_server.h"
#include "src/httpd/threaded_server.h"
#include "src/load/http_client.h"
#include "src/load/wire.h"
#include "src/xp/table.h"

namespace {

struct Result {
  double throughput;
  double latency_ms;
};

template <typename MakeServer>
Result RunArchitecture(MakeServer make_server) {
  sim::Simulator simr;
  kernel::Kernel kern(&simr, kernel::UnmodifiedSystemConfig());
  load::Wire wire(&simr, &kern);
  kern.Start();
  httpd::FileCache cache;
  cache.AddDocument(1, 1024);

  auto server = make_server(&kern, &cache);

  std::vector<std::unique_ptr<load::HttpClient>> clients;
  for (int i = 0; i < 16; ++i) {
    load::HttpClient::Config cfg;
    cfg.addr = net::Addr{net::MakeAddr(10, 1, 0, 0).v + static_cast<std::uint32_t>(i) + 1};
    clients.push_back(std::make_unique<load::HttpClient>(
        &simr, &wire, static_cast<std::uint32_t>(i + 1), cfg));
    clients.back()->Start(i * 1000);
  }
  simr.RunUntil(sim::Sec(2));
  for (auto& c : clients) {
    c->ResetStats();
  }
  simr.RunUntil(simr.now() + sim::Sec(5));

  Result r{0, 0};
  std::size_t samples = 0;
  for (auto& c : clients) {
    r.throughput += static_cast<double>(c->completed()) / 5.0;
    r.latency_ms += c->latencies().mean() * static_cast<double>(c->latencies().count());
    samples += c->latencies().count();
  }
  r.latency_ms = samples ? r.latency_ms / static_cast<double>(samples) : 0;
  return r;
}

}  // namespace

int main() {
  httpd::ServerConfig base;

  Result event = RunArchitecture([&](kernel::Kernel* k, httpd::FileCache* c) {
    auto s = std::make_unique<httpd::EventDrivenServer>(k, c, base);
    s->Start();
    return s;
  });

  httpd::ServerConfig mt = base;
  mt.worker_threads = 16;
  Result threaded = RunArchitecture([&](kernel::Kernel* k, httpd::FileCache* c) {
    auto s = std::make_unique<httpd::MultiThreadedServer>(k, c, mt);
    s->Start();
    return s;
  });

  httpd::ServerConfig pf = base;
  pf.worker_processes = 8;
  Result prefork = RunArchitecture([&](kernel::Kernel* k, httpd::FileCache* c) {
    auto s = std::make_unique<httpd::PreforkServer>(k, c, pf);
    s->Start();
    return s;
  });

  xp::Table table({"architecture", "req/s", "mean latency ms"});
  table.AddRow({"event-driven (Fig. 2)", xp::FormatDouble(event.throughput, 0),
                xp::FormatDouble(event.latency_ms, 2)});
  table.AddRow({"multi-threaded (Fig. 3)", xp::FormatDouble(threaded.throughput, 0),
                xp::FormatDouble(threaded.latency_ms, 2)});
  table.AddRow({"pre-forked processes (Fig. 1)", xp::FormatDouble(prefork.throughput, 0),
                xp::FormatDouble(prefork.latency_ms, 2)});
  table.Print(std::cout);

  std::printf(
      "\nThe single-process architectures avoid per-connection context switches\n"
      "and descriptor passing; the pre-forked model pays for both (Section 2).\n");
  return 0;
}
