// SMP conformance: both scheduling policies must satisfy the same invariants
// on 1, 2, and 4 CPUs — conservation, no double-running, full utilization,
// wake preemption, affinity, stealing, machine-wide caps and shares, and the
// exact-determinism guarantee. Plus idle accounting for kernels that start
// after t = 0 (regression for the created-at-zero assumption).
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "src/kernel/kernel.h"
#include "src/kernel/syscalls.h"

namespace kernel {
namespace {

struct SpinnerState {
  bool stop = false;
};

Program Spinner(Sys sys, SpinnerState* state, sim::Duration chunk) {
  while (!state->stop) {
    co_await sys.Compute(chunk, rc::CpuKind::kUser);
  }
}

rc::Attributes FixedShare(double share) {
  rc::Attributes a;
  a.sched.cls = rc::SchedClass::kFixedShare;
  a.sched.fixed_share = share;
  return a;
}

struct SmpParam {
  bool hier = false;  // false: decay-usage policy, true: hierarchical
  int cpus = 1;
};

std::string ParamName(const ::testing::TestParamInfo<SmpParam>& info) {
  return std::string(info.param.hier ? "Hier" : "Decay") + "Cpus" +
         std::to_string(info.param.cpus);
}

class SmpSchedulerTest : public ::testing::TestWithParam<SmpParam> {
 protected:
  void MakeKernel() {
    KernelConfig cfg = GetParam().hier ? ResourceContainerSystemConfig()
                                       : UnmodifiedSystemConfig();
    cfg.cpus = GetParam().cpus;
    kernel_ = std::make_unique<Kernel>(&simr_, cfg);
  }

  struct Spin {
    SpinnerState state;
    Process* process = nullptr;
    Thread* thread = nullptr;
  };

  void SpawnSpinner(Spin* s, rc::ContainerRef c = nullptr, sim::Duration chunk = 100) {
    s->process = kernel_->CreateProcess("spin", std::move(c));
    SpinnerState* state = &s->state;
    s->thread = kernel_->SpawnThread(s->process, "t", [state, chunk](Sys sys) {
      return Spinner(sys, state, chunk);
    });
  }

  int cpus() const { return GetParam().cpus; }

  sim::Simulator simr_;
  std::unique_ptr<Kernel> kernel_;
};

// busy time == charged + interrupt + context-switch time, machine-wide, and
// idle is the exact complement of busy on every CPU.
TEST_P(SmpSchedulerTest, MachineWideConservation) {
  MakeKernel();
  std::vector<std::unique_ptr<Spin>> spins;
  for (int i = 0; i < 2 * cpus(); ++i) {
    spins.push_back(std::make_unique<Spin>());
    SpawnSpinner(spins.back().get());
  }
  simr_.RunUntil(sim::Msec(500));
  for (auto& s : spins) {
    s->state.stop = true;
  }
  simr_.RunUntil(sim::Sec(1));
  const auto& smp = kernel_->smp();
  EXPECT_EQ(smp.busy_usec(), kernel_->TotalChargedCpuUsec() + smp.interrupt_usec() +
                                 smp.context_switch_usec());
  for (int i = 0; i < cpus(); ++i) {
    const auto& e = smp.engine(i);
    EXPECT_EQ(e.busy_usec() + e.idle_usec(), simr_.now() - e.created_at()) << "cpu " << i;
  }
}

// One runnable thread occupies exactly one CPU: it is never double-run, and
// the other CPUs stay idle.
TEST_P(SmpSchedulerTest, SingleThreadRunsOnOneCpuAtATime) {
  MakeKernel();
  Spin s;
  SpawnSpinner(&s);
  simr_.RunUntil(sim::Sec(1));
  EXPECT_LE(s.process->TotalExecutedUsec(), simr_.now());
  EXPECT_LE(kernel_->smp().busy_usec(), simr_.now());
  EXPECT_GT(s.process->TotalExecutedUsec(), static_cast<sim::Duration>(
                                                0.95 * static_cast<double>(simr_.now())));
}

// With at least one runnable thread per CPU, every CPU saturates.
TEST_P(SmpSchedulerTest, AllCpusSaturateWithEnoughWork) {
  MakeKernel();
  std::vector<std::unique_ptr<Spin>> spins;
  for (int i = 0; i < 2 * cpus(); ++i) {
    spins.push_back(std::make_unique<Spin>());
    SpawnSpinner(spins.back().get());
  }
  simr_.RunUntil(sim::Sec(1));
  for (int i = 0; i < cpus(); ++i) {
    EXPECT_GT(kernel_->smp().engine(i).busy_usec(), sim::Msec(950)) << "cpu " << i;
  }
}

// Threads that exit are removed everywhere: the run queues drain to zero.
TEST_P(SmpSchedulerTest, RunQueuesDrainWhenThreadsExit) {
  MakeKernel();
  for (int i = 0; i < 2 * cpus(); ++i) {
    Process* p = kernel_->CreateProcess("once");
    kernel_->SpawnThread(p, "t", [](Sys sys) -> Program {
      co_await sys.Compute(1000, rc::CpuKind::kUser);
    });
  }
  simr_.RunUntil(sim::Sec(1));
  EXPECT_EQ(kernel_->scheduler().runnable_count(), 0u);
  EXPECT_EQ(kernel_->smp().idle_usec() > 0, true);
}

// A waking low-usage thread preempts promptly even when every CPU runs a
// long-slice hog (the wake lands on one specific run queue; that CPU must
// re-arbitrate rather than wait out the hog's demand).
TEST_P(SmpSchedulerTest, WakePreemptsOnBusyMachine) {
  MakeKernel();
  std::vector<std::unique_ptr<Spin>> hogs;
  for (int i = 0; i < cpus(); ++i) {
    hogs.push_back(std::make_unique<Spin>());
    SpawnSpinner(hogs.back().get(), nullptr, /*chunk=*/sim::Msec(50));
  }
  sim::SimTime woke = 0;
  Process* p = kernel_->CreateProcess("sleeper");
  kernel_->SpawnThread(p, "t", [&woke](Sys sys) -> Program {
    co_await sys.Sleep(sim::Msec(20));
    co_await sys.Compute(10, rc::CpuKind::kUser);
    woke = sys.now();
  });
  simr_.RunUntil(sim::Sec(1));
  EXPECT_GT(woke, sim::Msec(20));
  EXPECT_LT(woke, sim::Msec(20) + 2 * kernel_->costs().quantum);
}

// Affinity: a pinned thread runs only on its CPU; out-of-range CPUs are
// rejected; re-pinning a queued thread migrates it.
TEST_P(SmpSchedulerTest, AffinityPinsAndMigrates) {
  MakeKernel();
  Spin s;
  SpawnSpinner(&s);
  const int last = cpus() - 1;
  ASSERT_TRUE(kernel_->SetThreadAffinity(s.thread, last).ok());
  EXPECT_FALSE(kernel_->SetThreadAffinity(s.thread, cpus()).ok());
  EXPECT_FALSE(kernel_->SetThreadAffinity(s.thread, -2).ok());
  simr_.RunUntil(sim::Sec(1));
  EXPECT_GT(kernel_->smp().engine(last).busy_usec(), sim::Msec(950));
  for (int i = 0; i < last; ++i) {
    EXPECT_LT(kernel_->smp().engine(i).busy_usec(), sim::Msec(5)) << "cpu " << i;
  }
  // Migrate the (running or queued) thread to CPU 0 and release the pin; it
  // keeps CPU 0 as its home.
  ASSERT_TRUE(kernel_->SetThreadAffinity(s.thread, 0).ok());
  ASSERT_TRUE(kernel_->SetThreadAffinity(s.thread, -1).ok());
  const sim::Duration before = kernel_->smp().engine(0).busy_usec();
  simr_.RunUntil(sim::Sec(2));
  EXPECT_GT(kernel_->smp().engine(0).busy_usec() - before, sim::Msec(950));
}

// An idle CPU steals queued (unpinned) work from a loaded sibling instead of
// letting two threads time-share one CPU.
TEST_P(SmpSchedulerTest, IdleCpuStealsQueuedWork) {
  if (cpus() < 2) {
    GTEST_SKIP() << "needs at least two CPUs";
  }
  MakeKernel();
  Spin pinned;
  SpawnSpinner(&pinned);
  ASSERT_TRUE(kernel_->SetThreadAffinity(pinned.thread, 0).ok());
  // Homed on CPU 0 behind the pinned spinner, but free to move.
  Spin movable;
  SpawnSpinner(&movable);
  ASSERT_TRUE(kernel_->SetThreadAffinity(movable.thread, 0).ok());
  ASSERT_TRUE(kernel_->SetThreadAffinity(movable.thread, -1).ok());
  // A wake on any queue pokes every CPU; an idle one grabs the movable
  // spinner from CPU 0's queue.
  Process* waker = kernel_->CreateProcess("waker");
  kernel_->SpawnThread(waker, "t", [](Sys sys) -> Program {
    co_await sys.Sleep(sim::Msec(10));
  });
  simr_.RunUntil(sim::Sec(1));
  ASSERT_NE(kernel_->sharded_scheduler(), nullptr);
  EXPECT_GE(kernel_->sharded_scheduler()->steals(), 1u);
  // Both spinners now run in parallel on different CPUs.
  const sim::Duration total =
      pinned.process->TotalExecutedUsec() + movable.process->TotalExecutedUsec();
  EXPECT_GT(total, static_cast<sim::Duration>(1.8 * static_cast<double>(sim::Sec(1))));
}

// A CPU limit is a machine-wide cap: a 25% limit on an N-CPU machine allows
// 25% of N CPUs, no matter how many threads the container spreads out.
TEST_P(SmpSchedulerTest, CpuLimitIsMachineWide) {
  if (!GetParam().hier) {
    GTEST_SKIP() << "limits are a hierarchical-scheduler feature";
  }
  MakeKernel();
  rc::Attributes attrs;
  attrs.cpu_limit = 0.25;
  auto capped = kernel_->containers().Create(nullptr, "capped", attrs).value();
  std::vector<std::unique_ptr<Spin>> spins;
  for (int i = 0; i < cpus(); ++i) {
    spins.push_back(std::make_unique<Spin>());
    SpawnSpinner(spins.back().get(), capped);
  }
  simr_.RunUntil(sim::Sec(2));
  sim::Duration total = 0;
  for (auto& s : spins) {
    total += s->process->TotalExecutedUsec();
  }
  const double machine = static_cast<double>(cpus()) * static_cast<double>(sim::Sec(2));
  EXPECT_NEAR(static_cast<double>(total) / machine, 0.25, 0.02);
}

// Fixed shares are machine-wide when every run queue holds both guests —
// here enforced by pinning one thread of each guest to every CPU (the
// placement rule of DESIGN.md Section 4).
TEST_P(SmpSchedulerTest, FixedSharesHoldMachineWide) {
  if (!GetParam().hier) {
    GTEST_SKIP() << "fixed shares are a hierarchical-scheduler feature";
  }
  MakeKernel();
  auto ca = kernel_->containers().Create(nullptr, "a", FixedShare(0.7)).value();
  auto cb = kernel_->containers().Create(nullptr, "b", FixedShare(0.3)).value();
  std::vector<std::unique_ptr<Spin>> spins;
  sim::Duration ua = 0;
  sim::Duration ub = 0;
  for (int i = 0; i < cpus(); ++i) {
    for (const auto& c : {ca, cb}) {
      spins.push_back(std::make_unique<Spin>());
      SpawnSpinner(spins.back().get(), c);
      ASSERT_TRUE(kernel_->SetThreadAffinity(spins.back()->thread, i).ok());
    }
  }
  simr_.RunUntil(sim::Sec(5));
  for (std::size_t i = 0; i < spins.size(); ++i) {
    (i % 2 == 0 ? ua : ub) += spins[i]->process->TotalExecutedUsec();
  }
  const double total = static_cast<double>(ua + ub);
  EXPECT_NEAR(static_cast<double>(ua) / total, 0.7, 0.02);
}

// Two identical runs produce identical accounting, CPU by CPU: the SMP
// engine introduces no hidden ordering dependence.
TEST_P(SmpSchedulerTest, RunsAreDeterministic) {
  std::vector<sim::Duration> busy[2];
  std::vector<sim::Duration> executed[2];
  for (int run = 0; run < 2; ++run) {
    sim::Simulator simr;
    KernelConfig cfg = GetParam().hier ? ResourceContainerSystemConfig()
                                       : UnmodifiedSystemConfig();
    cfg.cpus = GetParam().cpus;
    Kernel kern(&simr, cfg);
    std::vector<SpinnerState> states(static_cast<std::size_t>(2 * cpus() + 1));
    std::vector<Process*> procs;
    for (auto& state : states) {
      Process* p = kern.CreateProcess("spin");
      SpinnerState* s = &state;
      kern.SpawnThread(p, "t", [s](Sys sys) { return Spinner(sys, s, 100); });
      procs.push_back(p);
    }
    simr.RunUntil(sim::Msec(200));
    for (int i = 0; i < cpus(); ++i) {
      busy[run].push_back(kern.smp().engine(i).busy_usec());
    }
    for (Process* p : procs) {
      executed[run].push_back(p->TotalExecutedUsec());
    }
  }
  EXPECT_EQ(busy[0], busy[1]);
  EXPECT_EQ(executed[0], executed[1]);
}

INSTANTIATE_TEST_SUITE_P(
    Policies, SmpSchedulerTest,
    ::testing::Values(SmpParam{false, 1}, SmpParam{false, 2}, SmpParam{false, 4},
                      SmpParam{true, 1}, SmpParam{true, 2}, SmpParam{true, 4}),
    ParamName);

// A kernel brought up mid-simulation (created_at > 0) must not count the
// time before its creation as idle.
TEST(SmpLateStartTest, IdleAccountingStartsAtCreation) {
  sim::Simulator simr;
  simr.At(sim::Msec(100), [] {});
  simr.RunUntil(sim::Msec(100));
  ASSERT_EQ(simr.now(), sim::Msec(100));
  KernelConfig cfg = UnmodifiedSystemConfig();
  cfg.cpus = 2;
  Kernel kern(&simr, cfg);
  simr.At(sim::Msec(300), [] {});
  simr.RunUntil(sim::Msec(300));
  for (int i = 0; i < 2; ++i) {
    const auto& e = kern.smp().engine(i);
    EXPECT_EQ(e.created_at(), sim::Msec(100)) << "cpu " << i;
    EXPECT_EQ(e.idle_usec(), sim::Msec(200)) << "cpu " << i;
    EXPECT_EQ(e.busy_usec(), 0) << "cpu " << i;
  }
}

}  // namespace
}  // namespace kernel
