#include "src/kernel/hier_scheduler.h"

#include <cstdint>

#include "src/common/check.h"
#include "src/kernel/process.h"
#include "src/kernel/thread.h"

namespace kernel {

namespace {

sched::ShareTreeOptions CpuTreeOptions(double decay_per_tick,
                                       sim::Duration limit_window,
                                       int capacity_cpus) {
  sched::ShareTreeOptions options;
  options.resource = rc::ResourceKind::kCpu;
  options.decay_per_tick = decay_per_tick;
  options.limit_window = limit_window;
  options.capacity = capacity_cpus;
  options.starve_priority_zero = true;
  return options;
}

// A queued thread's sched_cookie carries its share-tree node index, biased by
// one so a queued thread never reads as nullptr (== not queued).
void* EncodeCookie(sched::ShareTree::NodeIndex node) {
  return reinterpret_cast<void*>(static_cast<std::uintptr_t>(node) + 1);
}

sched::ShareTree::NodeIndex DecodeCookie(void* cookie) {
  return static_cast<sched::ShareTree::NodeIndex>(
      reinterpret_cast<std::uintptr_t>(cookie) - 1);
}

}  // namespace

HierarchicalScheduler::HierarchicalScheduler(rc::ContainerManager* manager,
                                             double decay_per_tick,
                                             sim::Duration limit_window,
                                             int capacity_cpus)
    : tree_(manager, CpuTreeOptions(decay_per_tick, limit_window, capacity_cpus)) {}

void HierarchicalScheduler::Enqueue(Thread* t, sim::SimTime now) {
  RC_CHECK_EQ(t->sched_cookie, nullptr);
  const rc::ContainerRef& leaf = t->sched_hint();
  RC_CHECK_NE(leaf, nullptr);
  (void)now;
  // Note: a thread queued under a throttled container waits out the window,
  // even if it is multiplexed over other (un-throttled) containers. Hard CPU
  // caps are only free of head-of-line effects when the capped activities
  // have dedicated threads/processes (the paper's CGI sand-box and guest
  // servers); an event-driven server applying caps to a subset of its own
  // connections must cooperate by deferring those connections itself.
  t->sched_cookie = EncodeCookie(tree_.Push(leaf.get(), t));
}

Thread* HierarchicalScheduler::PickNext(sim::SimTime now) {
  Thread* t = static_cast<Thread*>(tree_.Pop(now));
  if (t != nullptr) {
    t->sched_cookie = nullptr;
  }
  return t;
}

void HierarchicalScheduler::OnCharge(rc::ResourceContainer& c, sim::Duration usec,
                                     sim::SimTime now) {
  tree_.OnCharge(c, usec, now);
}

void HierarchicalScheduler::FlushCharges() { tree_.Flush(); }

void HierarchicalScheduler::MigrateQueued(Thread* t, sim::SimTime now) {
  if (t->sched_cookie == nullptr) {
    return;
  }
  tree_.Erase(DecodeCookie(t->sched_cookie), t);
  t->sched_cookie = nullptr;
  Enqueue(t, now);
}

void HierarchicalScheduler::Remove(Thread* t) {
  if (t->sched_cookie == nullptr) {
    return;
  }
  tree_.Erase(DecodeCookie(t->sched_cookie), t);
  t->sched_cookie = nullptr;
}

void HierarchicalScheduler::Tick(sim::SimTime /*now*/) { tree_.Tick(); }

std::optional<sim::SimTime> HierarchicalScheduler::NextEligibleTime(sim::SimTime now) {
  return tree_.NextEligibleTime(now);
}

}  // namespace kernel
