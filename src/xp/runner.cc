#include "src/xp/runner.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <map>

#include "src/common/expected.h"
#include "src/kernel/syscalls.h"
#include "src/load/dists.h"

namespace xp {

namespace {

sim::Duration UsecFromMs(double ms) {
  return static_cast<sim::Duration>(std::llround(ms * 1000.0));
}

sim::Duration UsecFromSec(double s) {
  return static_cast<sim::Duration>(std::llround(s * 1e6));
}

std::uint32_t BytesFromKb(double kb) {
  return static_cast<std::uint32_t>(std::llround(kb * 1024.0));
}

load::SizeDist MakeSizeDist(const SizeDistSpec& s) {
  load::SizeDist d;
  if (s.dist == "table") {
    d.kind = load::SizeDist::Kind::kTable;
    for (const SizeDistSpec::TableEntry& e : s.table) {
      d.table.push_back({BytesFromKb(e.kb), e.weight});
    }
  } else if (s.dist == "pareto") {
    d.kind = load::SizeDist::Kind::kPareto;
    d.pareto_alpha = s.pareto_alpha;
    d.pareto_min_bytes = BytesFromKb(s.pareto_min_kb);
    d.pareto_max_bytes = BytesFromKb(s.pareto_max_kb);
  } else {
    d.kind = load::SizeDist::Kind::kFixed;
    d.fixed_bytes = BytesFromKb(s.fixed_kb);
  }
  return d;
}

kernel::KernelConfig MakeKernelConfig(const Spec& spec) {
  kernel::KernelConfig k;
  switch (spec.system) {
    case SystemKind::kUnmodified:
      k = kernel::UnmodifiedSystemConfig();
      break;
    case SystemKind::kLrp:
      k = kernel::LrpSystemConfig();
      break;
    case SystemKind::kResourceContainer:
      k = kernel::ResourceContainerSystemConfig();
      break;
  }
  k.cpus = spec.machine.cpus;
  if (spec.machine.irq_steering == "cpu0") {
    k.irq_steering = kernel::IrqSteering::kFixed;
  } else if (spec.machine.irq_steering == "round_robin") {
    k.irq_steering = kernel::IrqSteering::kRoundRobin;
  } else {
    k.irq_steering = kernel::IrqSteering::kFlowHash;
  }
  k.link_mbps = spec.machine.link_mbps;
  k.memory_bytes =
      static_cast<std::int64_t>(std::llround(spec.machine.memory_mb * 1024.0 * 1024.0));
  return k;
}

// A free coroutine so `kb` lives in the coroutine frame, independent of the
// std::function wrapper's lifetime.
kernel::Program DiskReaderBody(kernel::Sys sys, std::uint32_t kb) {
  // Stride the block addresses so successive reads never coalesce.
  for (std::uint64_t n = 0;; ++n) {
    co_await sys.ReadDisk(n * 9973u * 64, kb);
  }
}

}  // namespace

const double* RunResult::Find(const std::string& name) const {
  for (const auto& [n, v] : metrics) {
    if (n == name) {
      return &v;
    }
  }
  return nullptr;
}

CompiledScenario::~CompiledScenario() = default;

rc::ContainerRef CompiledScenario::FindContainer(const std::string& name) const {
  for (const auto& [n, ref] : containers_) {
    if (n == name) {
      return ref;
    }
  }
  return nullptr;
}

CompileResult Compile(const Spec& spec, const CompileOptions& options) {
  CompileResult result;
  std::unique_ptr<CompiledScenario> cs(new CompiledScenario());
  cs->spec_ = spec;

  ScenarioOptions opts;
  opts.kernel_config = MakeKernelConfig(spec);
  opts.seed = spec.seed;
  opts.wire_latency = static_cast<sim::Duration>(std::llround(spec.wire_latency_usec));
  opts.telemetry = spec.telemetry || options.telemetry;
  if (options.telemetry_interval_ms > 0) {
    opts.telemetry_interval = UsecFromMs(options.telemetry_interval_ms);
  }
  opts.audit = options.audit;
  opts.digest = options.digest;
  cs->scenario_ = std::make_unique<Scenario>(opts);
  Scenario& sc = *cs->scenario_;

  auto every = [&cs, &sc](sim::Duration period, std::function<void()> fn) {
    auto p = std::make_unique<CompiledScenario::Periodic>();
    p->simr = &sc.simulator();
    p->period = period;
    p->fn = std::move(fn);
    p->Arm();
    cs->periodics_.push_back(std::move(p));
  };

  // --- Container policy tree (spec order; parents validated by the parser) --
  for (const ContainerSpec& c : spec.containers) {
    rc::ContainerRef parent;
    if (!c.parent.empty()) {
      parent = cs->FindContainer(c.parent);
    }
    auto ref = sc.kernel().containers().Create(parent, c.name, c.attrs);
    if (!ref.ok()) {
      result.error =
          "container \"" + c.name + "\": " + rccommon::ErrcName(ref.error());
      return result;
    }
    cs->containers_.emplace_back(c.name, *ref);
  }

  // --- File sets (before server start, so the servers' cache-container
  // attachment sees the whole catalog, like the classic binaries) -----------
  std::map<std::uint32_t, std::uint32_t> doc_bytes;
  {
    // One dedicated stream: the file set is a pure function of the spec.
    sim::Rng fs_rng(spec.seed ^ 0xD6E8FEB86659FD93ULL);
    for (const FileSetSpec& fs : spec.files) {
      load::SizeDist dist = MakeSizeDist(fs.size);
      for (int i = 0; i < fs.count; ++i) {
        const std::uint32_t id = fs.first_doc_id + static_cast<std::uint32_t>(i);
        const std::uint32_t bytes = std::max(1u, dist.Sample(fs_rng));
        sc.cache().AddDocument(id, bytes);
        doc_bytes[id] = bytes;
      }
    }
  }
  for (const PopulationSpec& p : spec.populations) {
    if (p.docs_count > 0) {
      continue;  // draws from a file set
    }
    const std::uint32_t bytes = BytesFromKb(p.response_kb);
    auto it = doc_bytes.find(p.doc_id);
    if (it == doc_bytes.end()) {
      sc.cache().AddDocument(p.doc_id, bytes);
      doc_bytes[p.doc_id] = bytes;
    } else if (it->second != bytes) {
      result.error = "population \"" + p.name + "\": doc " +
                     std::to_string(p.doc_id) +
                     " already has a different size in this spec";
      return result;
    }
  }

  // --- Servers --------------------------------------------------------------
  for (const ServerSpec& s : spec.servers) {
    httpd::ServerConfig cfg;
    cfg.port = static_cast<std::uint16_t>(s.port);
    if (!s.classes.empty()) {
      if (s.classes.size() > static_cast<std::size_t>(httpd::kMaxClientClasses)) {
        result.error = "server " + std::to_string(s.port) + ": more than " +
                       std::to_string(httpd::kMaxClientClasses) + " listen classes";
        return result;
      }
      cfg.classes.clear();
      for (const ListenClassSpec& lc : s.classes) {
        httpd::ListenClass out;
        out.filter = net::CidrFilter{net::Addr{lc.filter.base.value},
                                     lc.filter.prefix_len, lc.filter.negate};
        out.priority = lc.priority;
        out.name = lc.name;
        out.fixed_share = lc.fixed_share;
        out.cpu_limit = lc.cpu_limit;
        cfg.classes.push_back(out);
      }
    }
    cfg.use_containers = s.use_containers;
    cfg.use_event_api = s.use_event_api;
    cfg.sort_ready_by_priority = s.sort_ready_by_priority;
    cfg.nest_under_default = s.nest_under_default;
    cfg.cgi_sandbox = s.cgi_sandbox;
    cfg.cgi_share = s.cgi_share;
    cfg.cgi_new_principal = s.cgi_new_principal;
    cfg.syn_defense = s.syn_defense;
    cfg.syn_defense_threshold = static_cast<std::uint64_t>(s.syn_defense_threshold);
    cfg.syn_backlog = s.syn_backlog;
    cfg.accept_backlog = s.accept_backlog;
    cfg.file_cache_capacity_bytes =
        static_cast<std::int64_t>(std::llround(s.cache_capacity_mb * 1024.0 * 1024.0));
    cfg.file_miss_penalty =
        static_cast<sim::Duration>(std::llround(s.file_miss_penalty_usec));
    cfg.use_disk_model = s.use_disk_model;
    cfg.worker_threads = s.worker_threads;
    cfg.worker_processes = s.worker_processes;

    ServerKind kind = ServerKind::kEvent;
    if (s.arch == "threaded") {
      kind = ServerKind::kThreaded;
    } else if (s.arch == "prefork") {
      kind = ServerKind::kPrefork;
    }
    rc::ContainerRef guest;
    if (!s.container.empty()) {
      guest = cs->FindContainer(s.container);
    }
    cs->servers_.push_back(sc.AddServer(kind, cfg, std::move(guest)));
  }

  // --- Populations ----------------------------------------------------------
  // start_s == 0 populations chain onto one global stagger (the classic
  // StartAllClients ramp across every such population, in spec order).
  sim::SimTime chain = 0;
  for (std::size_t i = 0; i < spec.populations.size(); ++i) {
    const PopulationSpec& p = spec.populations[i];
    load::PopulationConfig pc;
    pc.name = p.name;
    pc.arrival = load::PopulationConfig::Arrival::kClosedLoop;
    if (p.arrival == "open_loop") {
      pc.arrival = load::PopulationConfig::Arrival::kOpenLoop;
    } else if (p.arrival == "on_off") {
      pc.arrival = load::PopulationConfig::Arrival::kOnOff;
    }
    pc.clients = p.clients;
    pc.rate_per_sec = p.rate_per_sec;
    pc.conns_per_session = p.conns_per_session;
    pc.on_period = UsecFromSec(p.on_s);
    pc.off_period = UsecFromSec(p.off_s);
    pc.layout = p.layout == "blocks250"
                    ? load::PopulationConfig::AddressLayout::kBlocks250
                    : load::PopulationConfig::AddressLayout::kFlat;
    pc.base_addr = net::Addr{p.base_addr.value};
    pc.seed = spec.seed ^ (0x9E3779B97F4A7C15ULL * (i + 1));
    pc.stagger = UsecFromMs(p.stagger_ms);

    load::HttpClient::Config& cc = pc.client;
    cc.server_port = static_cast<std::uint16_t>(p.port);
    cc.requests_per_conn = p.requests_per_conn;
    cc.client_class = p.client_class;
    cc.is_cgi = p.is_cgi;
    cc.cgi_cpu_usec = UsecFromMs(p.cgi_cpu_ms);
    cc.think_time = UsecFromMs(p.think_ms);
    cc.connect_timeout = UsecFromMs(p.connect_timeout_ms);
    cc.request_timeout = UsecFromSec(p.request_timeout_s);
    cc.retry_backoff = UsecFromMs(p.retry_backoff_ms);
    if (p.docs_count > 0) {
      auto set = std::make_unique<std::vector<load::HttpClient::DocChoice>>();
      set->reserve(static_cast<std::size_t>(p.docs_count));
      for (int d = 0; d < p.docs_count; ++d) {
        const std::uint32_t id = p.docs_first_id + static_cast<std::uint32_t>(d);
        set->push_back({id, doc_bytes[id]});
      }
      pc.doc_set = set.get();
      cs->doc_sets_.push_back(std::move(set));
    } else {
      cc.doc_id = p.doc_id;
      cc.response_bytes = BytesFromKb(p.response_kb);
    }

    load::Population* pop = sc.AddPopulation(std::move(pc));
    cs->populations_.push_back(pop);
    sim::SimTime start = 0;
    if (p.start_s > 0) {
      start = UsecFromSec(p.start_s);
    } else {
      start = chain;
      if (pc.arrival != load::PopulationConfig::Arrival::kOpenLoop) {
        chain += static_cast<sim::Duration>(p.clients) * UsecFromMs(p.stagger_ms);
      }
    }
    pop->Start(start);
    if (p.stop_s > 0) {
      sc.simulator().At(UsecFromSec(p.stop_s), [pop] { pop->Stop(); });
    }
  }

  // --- Background workloads -------------------------------------------------
  int stream_idx = 0;
  int pin_idx = 0;
  for (std::size_t i = 0; i < spec.workloads.size(); ++i) {
    const WorkloadSpec& w = spec.workloads[i];
    rc::ContainerRef ct = cs->FindContainer(w.container);
    const std::string name =
        w.name.empty() ? w.kind + "-" + std::to_string(i) : w.name;
    if (w.kind == "disk_reader") {
      // Several readers per container keep its disk queue backlogged at
      // every completion, so the share tree always has a real choice.
      const std::uint32_t kb =
          std::max(1u, static_cast<std::uint32_t>(std::llround(w.read_kb)));
      for (int t = 0; t < w.threads; ++t) {
        kernel::Process* proc = sc.kernel().CreateProcess(name, ct);
        sc.kernel().SpawnThread(proc, "reader",
                                [kb](kernel::Sys sys) -> kernel::Program {
                                  return DiskReaderBody(sys, kb);
                                });
      }
    } else if (w.kind == "cache_stream") {
      const std::uint32_t first =
          w.first_doc_id != 0
              ? w.first_doc_id
              : 1000000 + 100000 * static_cast<std::uint32_t>(stream_idx);
      ++stream_idx;
      auto next_id = std::make_shared<std::uint32_t>(first);
      const std::uint32_t bytes = BytesFromKb(w.bytes_kb);
      Scenario* scp = &sc;
      every(UsecFromMs(w.period_ms), [scp, next_id, bytes, ct] {
        scp->cache().Insert((*next_id)++, bytes, ct);
      });
    } else {  // cache_pin
      const std::int64_t guarantee = sc.kernel().memory().GuaranteeBytes(*ct);
      const std::int64_t bytes =
          w.doc_bytes_kb > 0
              ? static_cast<std::int64_t>(std::llround(w.doc_bytes_kb * 1024.0))
              : (w.docs > 0 ? guarantee / w.docs : 0);
      const std::uint32_t first =
          w.first_doc_id != 0
              ? w.first_doc_id
              : 900000 + 10000 * static_cast<std::uint32_t>(pin_idx);
      ++pin_idx;
      for (int d = 0; d < w.docs && bytes > 0; ++d) {
        sc.cache().Insert(first + static_cast<std::uint32_t>(d),
                          static_cast<std::uint32_t>(bytes), ct);
      }
      auto min_resident = std::make_shared<std::int64_t>(ct->usage().memory_bytes);
      every(UsecFromMs(w.sample_period_ms), [min_resident, ct] {
        *min_resident = std::min(*min_resident, ct->usage().memory_bytes);
      });
      cs->pins_.push_back({name, guarantee, min_resident});
    }
  }

  // --- Attack injections ----------------------------------------------------
  const auto target_port = static_cast<std::uint16_t>(spec.servers.front().port);
  for (std::size_t i = 0; i < spec.attacks.size(); ++i) {
    const AttackSpec& a = spec.attacks[i];
    const sim::SimTime start = UsecFromSec(a.start_s);
    if (a.kind == "syn_flood") {
      load::SynFlooder::Config fc;
      fc.prefix = net::Addr{a.prefix.value};
      fc.server_port = target_port;
      fc.rate_per_sec = a.rate_per_sec;
      fc.seed = spec.seed + static_cast<std::uint64_t>(i);
      load::SynFlooder* fl = sc.AddFlooder(fc);
      fl->Start(start);
      if (a.stop_s > 0) {
        sc.simulator().At(UsecFromSec(a.stop_s), [fl] { fl->Stop(); });
      }
    } else {  // conn_hoard
      load::ConnHoarder::Config hc;
      hc.addr = net::Addr{a.addr.value};
      hc.server_port = target_port;
      hc.connections = a.connections;
      hc.open_interval = UsecFromMs(a.open_interval_ms);
      hc.hold = UsecFromSec(a.hold_s);
      load::ConnHoarder* h = sc.AddHoarder(hc);
      h->Start(start);
      if (a.stop_s > 0) {
        sc.simulator().At(UsecFromSec(a.stop_s), [h] { h->Stop(); });
      }
    }
  }

  result.compiled = std::move(cs);
  return result;
}

RunResult CompiledScenario::Run(std::ostream* out) {
  RunResult rr;
  Scenario& sc = *scenario_;
  const PhaseSpec& ph = spec_.phases;

  sc.RunFor(UsecFromSec(ph.warmup_s));
  sc.ResetClientStats();

  // Measurement-window baselines.
  const CpuSnapshot cpu0 = sc.SnapshotCpu();
  const sim::Duration cgi0 = sc.kernel().ExecutedUsecForName("cgi");
  const sim::Duration link0 = sc.kernel().link().stats().busy_usec;
  struct CtBase {
    std::int64_t cpu = 0;
    std::int64_t disk = 0;
  };
  std::vector<CtBase> ct0(containers_.size());
  for (std::size_t i = 0; i < containers_.size(); ++i) {
    const rc::ResourceUsage u = containers_[i].second->SubtreeUsage();
    ct0[i] = {u.TotalCpuUsec(), u.disk_busy_usec};
  }
  struct SrvBase {
    std::uint64_t static_served = 0;
    std::uint64_t cgi_started = 0;
  };
  std::vector<SrvBase> srv0(servers_.size());
  for (std::size_t i = 0; i < servers_.size(); ++i) {
    srv0[i] = {servers_[i]->stats().static_served, servers_[i]->stats().cgi_started};
  }

  const sim::Duration measure = UsecFromSec(ph.measure_s);
  if (ph.report_every_s > 0 && out != nullptr) {
    const sim::Duration step0 = UsecFromSec(ph.report_every_s);
    std::uint64_t last = sc.TotalCompleted();
    sim::Duration done = 0;
    while (done < measure) {
      const sim::Duration step = std::min(step0, measure - done);
      sc.RunFor(step);
      done += step;
      const std::uint64_t total = sc.TotalCompleted();
      std::uint64_t filters = 0;
      for (const httpd::Server* s : servers_) {
        filters += s->stats().flood_filters_installed;
      }
      char line[128];
      std::snprintf(line, sizeof(line), "t=%.1fs goodput=%.1f req/s filters=%llu\n",
                    sim::ToSeconds(sc.simulator().now()),
                    static_cast<double>(total - last) / sim::ToSeconds(step),
                    static_cast<unsigned long long>(filters));
      (*out) << line;
      last = total;
    }
  } else {
    sc.RunFor(measure);
  }

  const CpuSnapshot cpu1 = sc.SnapshotCpu();
  const auto elapsed = static_cast<double>(cpu1.at - cpu0.at);
  const double secs = sim::ToSeconds(cpu1.at - cpu0.at);
  auto add = [&rr](const std::string& name, double value) {
    rr.metrics.emplace_back(name, value);
  };

  // Machine-wide metrics.
  add("throughput_rps", static_cast<double>(sc.TotalCompleted()) / secs);
  sim::SampleSet lat;
  std::uint64_t timeouts = 0;
  std::uint64_t failures = 0;
  for (const load::Population* p : populations_) {
    p->MergeLatencies(lat);
    timeouts += p->timeouts();
    failures += p->failures();
  }
  add("mean_latency_ms", lat.mean());
  add("p95_latency_ms", lat.count() > 0 ? lat.Percentile(95.0) : 0.0);
  add("cpu_busy_frac", static_cast<double>(cpu1.busy - cpu0.busy) / elapsed);
  add("interrupt_frac", static_cast<double>(cpu1.interrupt - cpu0.interrupt) / elapsed);
  add("client_timeouts", static_cast<double>(timeouts));
  add("client_failures", static_cast<double>(failures));
  bool any_cgi = false;
  for (const PopulationSpec& p : spec_.populations) {
    any_cgi = any_cgi || p.is_cgi;
  }
  if (any_cgi) {
    const sim::Duration cgi1 = sc.kernel().ExecutedUsecForName("cgi");
    add("cgi_cpu_share", static_cast<double>(cgi1 - cgi0) / elapsed);
  }
  if (spec_.machine.link_mbps > 0) {
    const sim::Duration link1 = sc.kernel().link().stats().busy_usec;
    add("link_utilization", static_cast<double>(link1 - link0) / elapsed);
  }

  // Per-population metrics.
  for (std::size_t i = 0; i < populations_.size(); ++i) {
    const load::Population* p = populations_[i];
    const std::string prefix = "pop/" + p->name() + "/";
    add(prefix + "throughput_rps", static_cast<double>(p->completed()) / secs);
    sim::SampleSet pl;
    p->MergeLatencies(pl);
    add(prefix + "mean_latency_ms", pl.mean());
    add(prefix + "p95_latency_ms", pl.count() > 0 ? pl.Percentile(95.0) : 0.0);
    add(prefix + "completed", static_cast<double>(p->completed()));
    add(prefix + "timeouts", static_cast<double>(p->timeouts()));
    add(prefix + "failures", static_cast<double>(p->failures()));
    if (spec_.populations[i].arrival == "open_loop") {
      add(prefix + "shed_arrivals", static_cast<double>(p->shed_arrivals()));
    }
  }

  // Per-container metrics (spec-declared containers only).
  std::vector<std::int64_t> cpu_delta(containers_.size());
  std::vector<std::int64_t> disk_delta(containers_.size());
  std::vector<std::int64_t> mem_now(containers_.size());
  std::int64_t disk_total = 0;
  std::int64_t mem_total = 0;
  for (std::size_t i = 0; i < containers_.size(); ++i) {
    const rc::ResourceUsage u = containers_[i].second->SubtreeUsage();
    cpu_delta[i] = u.TotalCpuUsec() - ct0[i].cpu;
    disk_delta[i] = u.disk_busy_usec - ct0[i].disk;
    mem_now[i] = u.memory_bytes;
    disk_total += disk_delta[i];
    mem_total += mem_now[i];
  }
  for (std::size_t i = 0; i < containers_.size(); ++i) {
    add("container/" + containers_[i].first + "/cpu_share",
        static_cast<double>(cpu_delta[i]) / elapsed);
  }
  if (disk_total > 0) {
    for (std::size_t i = 0; i < containers_.size(); ++i) {
      add("container/" + containers_[i].first + "/disk_share",
          static_cast<double>(disk_delta[i]) / static_cast<double>(disk_total));
    }
  }
  if (mem_total > 0) {
    for (std::size_t i = 0; i < containers_.size(); ++i) {
      add("container/" + containers_[i].first + "/memory_frac",
          static_cast<double>(mem_now[i]) / static_cast<double>(mem_total));
    }
  }

  // Pinned-set (cache_pin) workloads.
  for (const PinnedSet& pin : pins_) {
    add("workload/" + pin.name + "/guarantee_mb",
        static_cast<double>(pin.guarantee_bytes) / (1024.0 * 1024.0));
    add("workload/" + pin.name + "/min_resident_mb",
        static_cast<double>(*pin.min_resident) / (1024.0 * 1024.0));
  }

  // Per-server metrics.
  for (std::size_t i = 0; i < servers_.size(); ++i) {
    const httpd::ServerStats& st = servers_[i]->stats();
    const std::string prefix =
        "server/" + std::to_string(spec_.servers[i].port) + "/";
    add(prefix + "static_rps",
        static_cast<double>(st.static_served - srv0[i].static_served) / secs);
    add(prefix + "cgi_started",
        static_cast<double>(st.cgi_started - srv0[i].cgi_started));
    add(prefix + "flood_filters", static_cast<double>(st.flood_filters_installed));
  }

  if (sc.digest() != nullptr) {
    rr.digest_hex = sc.digest()->hex();
  }

  // Assertions.
  for (const AssertSpec& a : spec_.asserts) {
    AssertionResult ar;
    ar.metric = a.metric;
    const double* v = rr.Find(a.metric);
    char buf[192];
    if (v == nullptr) {
      ar.passed = false;
      ar.detail = a.metric + ": metric not produced by this run";
    } else {
      ar.value = *v;
      ar.passed = true;
      if (a.min.has_value() && *v < *a.min) {
        ar.passed = false;
        std::snprintf(buf, sizeof(buf), "%s = %g < min %g", a.metric.c_str(), *v,
                      *a.min);
        ar.detail = buf;
      } else if (a.max.has_value() && *v > *a.max) {
        ar.passed = false;
        std::snprintf(buf, sizeof(buf), "%s = %g > max %g", a.metric.c_str(), *v,
                      *a.max);
        ar.detail = buf;
      } else if (a.approx.has_value()) {
        const double tol = a.tol + a.tol_frac * std::fabs(*a.approx);
        if (std::fabs(*v - *a.approx) > tol) {
          ar.passed = false;
          std::snprintf(buf, sizeof(buf), "%s = %g not within %g of %g",
                        a.metric.c_str(), *v, tol, *a.approx);
          ar.detail = buf;
        }
      }
      if (ar.passed) {
        std::snprintf(buf, sizeof(buf), "%s = %g", a.metric.c_str(), *v);
        ar.detail = buf;
      }
    }
    rr.ok = rr.ok && ar.passed;
    rr.assertions.push_back(ar);
  }
  return rr;
}

}  // namespace xp
