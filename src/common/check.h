// Lightweight invariant-checking macros for the resource-containers project.
//
// RC_CHECK is always on (it guards simulator and accounting invariants whose
// violation would silently corrupt experiment results); RC_DCHECK compiles
// out in NDEBUG builds.
#ifndef SRC_COMMON_CHECK_H_
#define SRC_COMMON_CHECK_H_

#include <cstdio>
#include <cstdlib>

namespace rccommon {

[[noreturn]] inline void CheckFailed(const char* expr, const char* file, int line) {
  std::fprintf(stderr, "CHECK failed: %s at %s:%d\n", expr, file, line);
  std::abort();
}

}  // namespace rccommon

#define RC_CHECK(expr)                                     \
  do {                                                     \
    if (!(expr)) {                                         \
      ::rccommon::CheckFailed(#expr, __FILE__, __LINE__);  \
    }                                                      \
  } while (0)

#ifdef NDEBUG
#define RC_DCHECK(expr) \
  do {                  \
  } while (0)
#else
#define RC_DCHECK(expr) RC_CHECK(expr)
#endif

#endif  // SRC_COMMON_CHECK_H_
