#include "src/kernel/event_api.h"

#include <algorithm>

namespace kernel {

void EventChannel::Push(Event e, bool priority_order, bool dedupe) {
  if (dedupe) {
    for (const Event& p : pending_) {
      if (p.fd == e.fd && p.kind == e.kind) {
        return;
      }
    }
  }
  if (!priority_order || pending_.empty()) {
    pending_.push_back(e);
  } else {
    // Insert after the last pending event with priority >= e.priority.
    auto it = pending_.end();
    while (it != pending_.begin() && std::prev(it)->priority < e.priority) {
      --it;
    }
    pending_.insert(it, e);
  }
  if (waiter) {
    auto w = std::move(waiter);
    waiter = nullptr;
    w();
  }
}

std::vector<Event> EventChannel::Drain(int max) {
  std::vector<Event> out;
  while (!pending_.empty() && static_cast<int>(out.size()) < max) {
    out.push_back(pending_.front());
    pending_.pop_front();
  }
  return out;
}

}  // namespace kernel
