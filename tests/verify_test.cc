// Tests for the verification subsystem (src/verify): the charge-conservation
// auditor (clean runs, fault-injection detection), the lockset race detector's
// state machine, and the determinism digest.
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "src/kernel/kernel.h"
#include "src/kernel/syscalls.h"
#include "src/verify/audit.h"
#include "src/verify/digest.h"
#include "src/verify/lockset.h"
#include "src/xp/scenario.h"

namespace {

// --- Charge auditor over a raw kernel ---------------------------------------

class AuditTest : public ::testing::Test {
 protected:
  void MakeKernel(kernel::KernelConfig cfg = kernel::ResourceContainerSystemConfig()) {
    kernel_ = std::make_unique<kernel::Kernel>(&simr_, cfg);
    kernel_->AttachAuditor(&auditor_);
  }

  void RunComputeThread(sim::Duration demand) {
    kernel::Process* p = kernel_->CreateProcess("victim");
    kernel_->SpawnThread(p, "main", [demand](kernel::Sys sys) -> kernel::Program {
      co_await sys.Compute(demand);
    });
    simr_.RunUntil(simr_.now() + sim::Sec(1));
  }

  sim::Simulator simr_;
  // Declared before the kernel: container-destroy notifications reach the
  // auditor during kernel teardown.
  verify::ChargeAuditor auditor_;
  std::unique_ptr<kernel::Kernel> kernel_;
};

TEST_F(AuditTest, CleanRunHasNoViolations) {
  MakeKernel();
  RunComputeThread(5000);
  EXPECT_GT(auditor_.charge_events(), 0u);
  EXPECT_EQ(kernel_->AuditCheck(), std::vector<std::string>{});
}

TEST_F(AuditTest, DroppedChargeIsDetectedAndNamesTheContainer) {
  MakeKernel();
  auditor_.InjectFault(verify::AuditFault::kDropCharge);
  RunComputeThread(5000);
  const std::vector<std::string> violations = kernel_->AuditCheck();
  ASSERT_FALSE(violations.empty());
  EXPECT_EQ(auditor_.faults_injected(), 1u);
  bool names_container = false;
  for (const std::string& v : violations) {
    if (v.find("'victim'") != std::string::npos) {
      names_container = true;
    }
  }
  EXPECT_TRUE(names_container) << violations.front();
}

TEST_F(AuditTest, DuplicatedChargeIsDetected) {
  MakeKernel();
  auditor_.InjectFault(verify::AuditFault::kDuplicateCharge);
  RunComputeThread(5000);
  const std::vector<std::string> violations = kernel_->AuditCheck();
  ASSERT_FALSE(violations.empty());
  bool names_container = false;
  for (const std::string& v : violations) {
    if (v.find("'victim'") != std::string::npos) {
      names_container = true;
    }
  }
  EXPECT_TRUE(names_container) << violations.front();
}

TEST_F(AuditTest, FaultAppliesToExactlyOneCharge) {
  MakeKernel();
  auditor_.InjectFault(verify::AuditFault::kDropCharge);
  RunComputeThread(20000);  // several quanta => several charges
  EXPECT_EQ(auditor_.faults_injected(), 1u);
  // Exactly one quantum went missing: the mismatch equals one dropped charge,
  // not an accumulating drift.
  const sim::Duration recorded = kernel_->TotalChargedCpuUsec();
  EXPECT_LT(recorded, auditor_.charged_usec());
}

TEST_F(AuditTest, DestroyedContainerUsageStaysConserved) {
  MakeKernel();
  // The process's per-process container dies with the process; its usage
  // retires into the parent and the audit tallies must follow.
  RunComputeThread(5000);
  kernel::Process* p2 = kernel_->CreateProcess("short-lived");
  kernel_->SpawnThread(p2, "main", [](kernel::Sys sys) -> kernel::Program {
    co_await sys.Compute(3000);
  });
  simr_.RunUntil(simr_.now() + sim::Sec(1));
  kernel_->ReapProcess(p2->pid());
  EXPECT_EQ(kernel_->AuditCheck(), std::vector<std::string>{});
}

// --- Full scenarios under the auditor ----------------------------------------

xp::ScenarioOptions AuditedOptions(int cpus) {
  xp::ScenarioOptions options;
  options.kernel_config = kernel::ResourceContainerSystemConfig();
  options.kernel_config.cpus = cpus;
  options.server_config.use_containers = true;
  options.server_config.use_event_api = true;
  options.audit = true;
  return options;
}

void RunAuditedScenario(int cpus) {
  xp::Scenario scenario(AuditedOptions(cpus));
  scenario.StartServer();
  scenario.AddStaticClients(8, net::MakeAddr(10, 1, 0, 0));
  scenario.StartAllClients();
  // RunFor itself aborts the process on a violation; assert the clean result
  // explicitly as well.
  scenario.RunFor(sim::Msec(500));
  EXPECT_EQ(scenario.AuditCheck(), std::vector<std::string>{});
  EXPECT_GT(scenario.auditor()->charge_events(), 0u);
}

TEST(AuditScenarioTest, ServedLoadIsConservedOnOneCpu) { RunAuditedScenario(1); }

TEST(AuditScenarioTest, ServedLoadIsConservedOnFourCpus) { RunAuditedScenario(4); }

// --- Determinism digest -------------------------------------------------------

std::uint64_t DigestOfRun(std::uint64_t seed, int cpus) {
  xp::ScenarioOptions options = AuditedOptions(cpus);
  options.digest = true;
  options.seed = seed;
  xp::Scenario scenario(options);
  scenario.StartServer();
  scenario.AddStaticClients(6, net::MakeAddr(10, 1, 0, 0));
  // A seeded stochastic load source, so the seed actually shapes the
  // timeline (static clients alone are deterministic regardless of seed).
  load::SynFlooder::Config fcfg;
  fcfg.rate_per_sec = 5000;
  fcfg.seed = seed;
  scenario.AddFlooder(fcfg)->Start();
  scenario.StartAllClients();
  scenario.RunFor(sim::Msec(300));
  EXPECT_GT(scenario.digest()->events(), 0u);
  return scenario.digest()->value();
}

TEST(DigestTest, SameSeedSameConfigReproducesTheDigest) {
  EXPECT_EQ(DigestOfRun(42, 1), DigestOfRun(42, 1));
  EXPECT_EQ(DigestOfRun(42, 4), DigestOfRun(42, 4));
}

TEST(DigestTest, DifferentSeedsDiverge) {
  EXPECT_NE(DigestOfRun(42, 1), DigestOfRun(43, 1));
}

TEST(DigestTest, AbsorbIsOrderSensitive) {
  verify::TimelineDigest a;
  verify::TimelineDigest b;
  a.Absorb(1, 0, 7, 3, 0);
  a.Absorb(2, 1, 8, 3, 1);
  b.Absorb(2, 1, 8, 3, 1);
  b.Absorb(1, 0, 7, 3, 0);
  EXPECT_NE(a.value(), b.value());
  EXPECT_EQ(a.events(), 2u);
  EXPECT_EQ(a.hex().size(), 16u);
}

// --- Lockset state machine (pure unit tests) ---------------------------------

TEST(RaceDetectorTest, UnprotectedSharedWriteIsReported) {
  verify::RaceDetector det;
  int shared = 0;
  det.SetCurrentThread(1);
  det.OnAccess(&shared, "shared", /*is_write=*/true);
  det.SetCurrentThread(2);
  det.OnAccess(&shared, "shared", /*is_write=*/true);
  ASSERT_EQ(det.reports().size(), 1u);
  const verify::RaceDetector::Report& r = det.reports().front();
  EXPECT_EQ(r.variable, "shared");
  EXPECT_EQ(r.first_thread, 1u);
  EXPECT_EQ(r.second_thread, 2u);
  EXPECT_TRUE(r.on_write);
  EXPECT_NE(r.what.find("'shared'"), std::string::npos);
}

TEST(RaceDetectorTest, CommonLockSuppressesTheReport) {
  verify::RaceDetector det;
  int shared = 0;
  int lock = 0;
  for (std::uint64_t tid = 1; tid <= 2; ++tid) {
    det.SetCurrentThread(tid);
    verify::ScopedLock held(&det, &lock, "lock");
    det.OnAccess(&shared, "shared", /*is_write=*/true);
  }
  EXPECT_TRUE(det.reports().empty());
}

TEST(RaceDetectorTest, ReadSharingAloneIsNotARace) {
  verify::RaceDetector det;
  int shared = 0;
  det.SetCurrentThread(1);
  det.OnAccess(&shared, "shared", /*is_write=*/true);  // exclusive writer
  det.SetCurrentThread(2);
  det.OnAccess(&shared, "shared", /*is_write=*/false);  // read-shared
  det.SetCurrentThread(3);
  det.OnAccess(&shared, "shared", /*is_write=*/false);
  EXPECT_TRUE(det.reports().empty());
  // ... until somebody writes without a common lock.
  det.OnAccess(&shared, "shared", /*is_write=*/true);
  EXPECT_EQ(det.reports().size(), 1u);
}

TEST(RaceDetectorTest, KernelContextHoldsTheImplicitKernelLock) {
  verify::RaceDetector det;
  int shared = 0;
  // All accesses from kernel context (the single-threaded event loop) share
  // the implicit kernel lock and can never race with themselves.
  det.OnAccess(&shared, "shared", /*is_write=*/true);
  det.OnAccess(&shared, "shared", /*is_write=*/true);
  EXPECT_TRUE(det.reports().empty());
}

TEST(RaceDetectorTest, EachVariableReportsAtMostOnce) {
  verify::RaceDetector det;
  int shared = 0;
  det.SetCurrentThread(1);
  det.OnAccess(&shared, "shared", true);
  det.SetCurrentThread(2);
  det.OnAccess(&shared, "shared", true);
  det.OnAccess(&shared, "shared", true);
  det.SetCurrentThread(1);
  det.OnAccess(&shared, "shared", true);
  EXPECT_EQ(det.reports().size(), 1u);
}

}  // namespace
