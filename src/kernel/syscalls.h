// The syscall interface of the simulated kernel.
//
// Application programs are coroutines; every Sys method returns an awaitable.
// Each syscall charges its CPU cost (from the CostModel) to the calling
// thread's current resource binding before performing its action, exactly as
// kernel-mode work is charged in the paper's prototype.
//
//   kernel::Program Server(kernel::Sys sys) {
//     auto lfd = co_await sys.Listen(80, net::kMatchAll);
//     while (true) {
//       auto cfd = co_await sys.Accept(*lfd);
//       auto req = co_await sys.Recv(*cfd);
//       co_await sys.Compute(100);                  // application work
//       co_await sys.Send(*cfd, 1024, 0, true);
//     }
//   }
#ifndef SRC_KERNEL_SYSCALLS_H_
#define SRC_KERNEL_SYSCALLS_H_

#include <coroutine>
#include <functional>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "src/common/expected.h"
#include "src/kernel/event_api.h"
#include "src/kernel/kernel.h"
#include "src/kernel/process.h"
#include "src/kernel/thread.h"
#include "src/net/addr.h"
#include "src/net/packet.h"
#include "src/rc/attributes.h"
#include "src/rc/usage.h"

namespace kernel {

// Result of Recv: either a request, or eof (peer closed with nothing queued).
struct RecvResult {
  bool eof = false;
  net::HttpRequestInfo request;
};

struct SpawnOptions {
  // -2: create a fresh top-level default container for the child (classic
  //     fork semantics: every process its own principal);
  // -1: share the parent's default container;
  // >=0: use the container at this descriptor (e.g. a per-request container
  //      passed to a CGI process, Section 4.8).
  int container_fd = -2;
  // Descriptors duplicated into the child, installed as fds 0..n-1.
  std::vector<int> pass_fds;
  // Auto-reap on exit (no WaitProcess needed) — daemons and CGI children.
  bool detach = false;
};

class Sys {
 public:
  Sys(Kernel* kernel, Thread* thread) : kernel_(kernel), thread_(thread) {}

  Kernel& kernel() const { return *kernel_; }
  Thread* thread() const { return thread_; }
  Process* process() const { return thread_->process(); }
  sim::SimTime now() const { return kernel_->now(); }

  // ---------------------------------------------------------------------
  // Awaitable building blocks
  // ---------------------------------------------------------------------

  // Consumes `usec` of CPU, charged to the thread's resource binding.
  struct ComputeAwaiter {
    Thread* t;
    sim::Duration usec;
    rc::CpuKind kind;
    bool await_ready() const { return usec <= 0; }
    void await_suspend(std::coroutine_handle<> h) {
      t->pending_resume = h;
      t->cpu_demand += usec;
      t->demand_kind = kind;
    }
    void await_resume() const {}
  };

  // Consumes `cost`, then runs `action` at zero simulated cost.
  //
  // Note: the awaiters have user-declared constructors (they must not be
  // aggregates) — GCC 12 double-destroys std::function members of aggregate
  // awaiter temporaries in co_await expressions.
  template <typename T>
  struct ActionAwaiter {
    Thread* t;
    sim::Duration cost;
    rc::CpuKind kind;
    std::function<T()> action;
    std::optional<T> result;

    ActionAwaiter(Thread* thread, sim::Duration c, rc::CpuKind k, std::function<T()> a)
        : t(thread), cost(c), kind(k), action(std::move(a)) {}
    ActionAwaiter(const ActionAwaiter&) = delete;
    ActionAwaiter& operator=(const ActionAwaiter&) = delete;
    ActionAwaiter(ActionAwaiter&&) = default;

    bool await_ready() const { return false; }
    void await_suspend(std::coroutine_handle<> h) {
      t->pending_resume = h;
      t->cpu_demand += cost;
      t->demand_kind = kind;
      t->after_demand = [this] { result.emplace(action()); };
    }
    T await_resume() { return std::move(*result); }
  };

  // Consumes `cost`, then runs `start`. `start` either completes the call
  // synchronously (fills *slot, returns true) or registers a waiter that
  // will fill *slot and Unblock() the thread, and returns false.
  template <typename T>
  struct BlockingAwaiter {
    Thread* t;
    sim::Duration cost;
    rc::CpuKind kind;
    std::function<bool(std::optional<T>* slot)> start;
    std::optional<T> result;

    BlockingAwaiter(Thread* thread, sim::Duration c, rc::CpuKind k,
                    std::function<bool(std::optional<T>*)> s)
        : t(thread), cost(c), kind(k), start(std::move(s)) {}
    BlockingAwaiter(const BlockingAwaiter&) = delete;
    BlockingAwaiter& operator=(const BlockingAwaiter&) = delete;
    BlockingAwaiter(BlockingAwaiter&&) = default;

    bool await_ready() const { return false; }
    void await_suspend(std::coroutine_handle<> h) {
      t->pending_resume = h;
      t->cpu_demand += cost;
      t->demand_kind = kind;
      t->after_demand = [this] {
        if (!start(&result)) {
          t->Block();
        }
      };
    }
    T await_resume() { return std::move(*result); }
  };

  struct YieldAwaiter {
    Thread* t;
    bool await_ready() const { return false; }
    void await_suspend(std::coroutine_handle<> h) {
      t->pending_resume = h;
      t->yield_requested = true;
    }
    void await_resume() const {}
  };

  // ---------------------------------------------------------------------
  // CPU and time
  // ---------------------------------------------------------------------

  ComputeAwaiter Compute(sim::Duration usec, rc::CpuKind kind = rc::CpuKind::kUser) {
    return ComputeAwaiter{thread_, usec, kind};
  }

  BlockingAwaiter<bool> Sleep(sim::Duration usec);

  // Reads `kb` kilobytes starting at disk block `block_kb`. The request is
  // charged to (and scheduled at the priority of) the calling thread's
  // current resource binding; the thread blocks until the transfer finishes.
  BlockingAwaiter<bool> ReadDisk(std::uint64_t block_kb, std::uint32_t kb);

  YieldAwaiter Yield() { return YieldAwaiter{thread_}; }

  // Number of CPUs on the simulated machine (constant; free to read).
  int CpuCount() const;

  // Pins the calling thread to one CPU (-1 unpins): it only runs there and
  // idle CPUs never steal it. Fails with kInvalidArgument out of range.
  ActionAwaiter<rccommon::Expected<void>> SetThreadAffinity(int cpu);

  // ---------------------------------------------------------------------
  // Resource-container operations (Section 4.6 / Table 1)
  // ---------------------------------------------------------------------

  // Creates a container; parent_fd -1 means top level ("no parent").
  ActionAwaiter<rccommon::Expected<int>> CreateContainer(
      std::string name, const rc::Attributes& attrs = {}, int parent_fd = -1);

  // The per-connection fast path: creates a container from a template
  // prepared once per class (ContainerManager::PrepareTemplate — preparation
  // is a setup-time operation, not a syscall). Charges the same
  // container_create cost as the generic form but skips per-instance
  // attribute validation, name interning, and — for time-share classes —
  // the pre-create charge flush (a time-share sibling does not change the
  // residual split its siblings were charged under).
  ActionAwaiter<rccommon::Expected<int>> CreateContainer(rc::ContainerTemplateRef tmpl);

  // Releases a descriptor (containers: release reference; sockets: close).
  ActionAwaiter<rccommon::Expected<void>> CloseFd(int fd);

  // Drops a descriptor WITHOUT protocol close — used after handing a
  // connection to another process (the other copy keeps it open).
  ActionAwaiter<rccommon::Expected<void>> ReleaseFd(int fd);

  // Duplicates any descriptor into another process (descriptor passing);
  // returns the descriptor number in the target.
  ActionAwaiter<rccommon::Expected<int>> PassFd(Pid target, int fd);

  // Sets the calling thread's resource binding (Section 4.2).
  ActionAwaiter<rccommon::Expected<void>> BindThread(int container_fd);

  // Resets the scheduler binding to just the current resource binding.
  ActionAwaiter<bool> ResetSchedulerBinding();

  ActionAwaiter<rccommon::Expected<rc::ResourceUsage>> GetUsage(int container_fd);
  ActionAwaiter<rccommon::Expected<rc::ResourceUsage>> GetSubtreeUsage(int container_fd);

  ActionAwaiter<rccommon::Expected<rc::Attributes>> GetAttributes(int container_fd);
  ActionAwaiter<rccommon::Expected<void>> SetAttributes(int container_fd,
                                                        const rc::Attributes& attrs);

  // Re-parents a container; parent_fd -1 means top level.
  ActionAwaiter<rccommon::Expected<void>> SetContainerParent(int container_fd,
                                                             int parent_fd);

  // Shares a container with another process (the sender retains access);
  // returns the descriptor in the *target* process.
  ActionAwaiter<rccommon::Expected<int>> PassContainer(Pid target, int container_fd);

  // Obtains a descriptor for an existing container by id.
  ActionAwaiter<rccommon::Expected<int>> GetContainerHandle(rc::ContainerId id);

  // ---------------------------------------------------------------------
  // Sockets
  // ---------------------------------------------------------------------

  // Binds a listen socket on <port, filter>; container_fd -1 binds it to the
  // process's default container.
  ActionAwaiter<rccommon::Expected<int>> Listen(std::uint16_t port,
                                                const net::CidrFilter& filter,
                                                int container_fd = -1,
                                                int syn_backlog = 1024,
                                                int accept_backlog = 128);

  // Blocking accept; returns the connection descriptor.
  BlockingAwaiter<rccommon::Expected<int>> Accept(int listen_fd);

  // Non-blocking accept; kWouldBlock when the queue is empty.
  ActionAwaiter<rccommon::Expected<int>> TryAccept(int listen_fd);

  // Blocking receive of one request.
  BlockingAwaiter<rccommon::Expected<RecvResult>> Recv(int conn_fd);

  // Non-blocking receive; kWouldBlock when nothing is queued (and not eof).
  ActionAwaiter<rccommon::Expected<RecvResult>> TryRecv(int conn_fd);

  // Sends an n-byte response (cost includes per-packet output processing).
  ActionAwaiter<rccommon::Expected<void>> Send(int conn_fd, std::uint32_t bytes,
                                               std::uint64_t response_to,
                                               bool close_after);

  // Binds a socket descriptor (connection or listen socket) to a container.
  ActionAwaiter<rccommon::Expected<void>> BindSocket(int sock_fd, int container_fd);

  // ---------------------------------------------------------------------
  // Event waiting
  // ---------------------------------------------------------------------

  // select(): cost linear in the size of the interest set.
  BlockingAwaiter<std::vector<int>> Select(std::vector<int> fds);

  // Scalable event API: declare interest once...
  ActionAwaiter<rccommon::Expected<void>> EventRegister(int fd);
  ActionAwaiter<rccommon::Expected<void>> EventUnregister(int fd);
  // ...then wait for batches; cost is per returned event.
  BlockingAwaiter<std::vector<Event>> WaitEvents(int max_events = 64);

  // Snapshot-and-clear the SYN-drop report of a listen socket (Section 5.7).
  ActionAwaiter<rccommon::Expected<Kernel::SynDropReport>> GetSynDropReport(
      int listen_fd);

  // ---------------------------------------------------------------------
  // Processes
  // ---------------------------------------------------------------------

  ActionAwaiter<rccommon::Expected<Pid>> Spawn(std::string name,
                                               std::function<Program(Sys)> body,
                                               SpawnOptions options = {});

  // Blocks until the process exits, then reaps it.
  BlockingAwaiter<rccommon::Expected<void>> WaitProcess(Pid pid);

 private:
  Kernel* kernel_;
  Thread* thread_;
};

}  // namespace kernel

#endif  // SRC_KERNEL_SYSCALLS_H_
