// Figures 12 and 13 — controlling the resource consumption of CGI
// processing.
//
// A population of static-document clients saturates the server while N
// concurrent CGI requests (each burning ~2 s of CPU in a forked process)
// compete for the machine. Four systems, as in the paper:
//
//   Unmodified   softint kernel + decay-usage scheduling. Network processing
//                is charged to whatever process is running (usually a CGI
//                process), so the server gets *more* than its fair share —
//                but throughput still collapses as N grows.
//   LRP          network processing charged to the server. The server now
//                shares the CPU exactly equally with the CGI processes,
//                which lowers static throughput *further*.
//   RC System 1  resource containers; per-request CGI containers under a
//                CGI-parent container restricted to 30% of the CPU.
//   RC System 2  same with a 10% limit.
//
// Figure 12 reports static throughput; Figure 13 the total CPU share
// actually consumed by CGI processing (ground truth, not charged numbers).
#include <iostream>

#include "src/telemetry/bench_io.h"
#include "src/xp/scenario.h"
#include "src/xp/table.h"

namespace {

struct CgiResult {
  double static_tput = 0;
  double cgi_share = 0;  // fraction of the machine consumed by CGI processes
};

CgiResult RunCgi(const kernel::KernelConfig& kcfg, bool use_containers,
                 double cgi_share_limit, int cgi_clients) {
  xp::ScenarioOptions options;
  options.kernel_config = kcfg;
  httpd::ServerConfig& server = options.server_config;
  server.use_containers = use_containers;
  server.use_event_api = false;  // thttpd-style select server, as in the paper
  if (use_containers) {
    server.cgi_sandbox = true;
    server.cgi_share = cgi_share_limit;
  }

  xp::Scenario scenario(options);
  scenario.StartServer();

  scenario.AddStaticClients(20, net::MakeAddr(10, 1, 0, 0));

  for (int i = 0; i < cgi_clients; ++i) {
    load::HttpClient::Config cgi;
    cgi.addr = net::Addr{net::MakeAddr(10, 3, 0, 0).v + static_cast<std::uint32_t>(i) + 1};
    cgi.is_cgi = true;
    cgi.cgi_cpu_usec = sim::Sec(2);
    cgi.client_class = 2;
    scenario.AddClient(cgi);
  }

  for (auto& c : scenario.clients()) {
    c->Start();
  }

  scenario.RunFor(sim::Sec(4));  // warm-up: forks, decay equalization
  scenario.ResetClientStats();
  const auto cpu0 = scenario.SnapshotCpu();
  const sim::Duration cgi0 = scenario.kernel().ExecutedUsecForName("cgi");
  scenario.RunFor(sim::Sec(10));
  const auto cpu1 = scenario.SnapshotCpu();
  const sim::Duration cgi1 = scenario.kernel().ExecutedUsecForName("cgi");

  CgiResult r;
  const double secs = sim::ToSeconds(cpu1.at - cpu0.at);
  std::uint64_t static_completed = 0;
  for (const auto& c : scenario.clients()) {
    // CGI clients use class 2; count only static completions.
    static_completed += c->latencies().count();
  }
  (void)static_completed;
  std::uint64_t total = 0;
  for (const auto& c : scenario.clients()) {
    total += c->completed();
  }
  // CGI completions are negligible in number; total ~= static completions.
  r.static_tput = static_cast<double>(total) / secs;
  r.cgi_share = static_cast<double>(cgi1 - cgi0) / static_cast<double>(cpu1.at - cpu0.at);
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  telemetry::BenchReport report("cgi", argc, argv);

  std::printf("=== Figures 12 & 13: competing CGI requests (each ~2 s CPU) ===\n\n");

  xp::Table tput({"CGI reqs", "Unmodified", "LRP", "RC 30% cap", "RC 10% cap"});
  xp::Table share({"CGI reqs", "Unmodified", "LRP", "RC 30% cap", "RC 10% cap"});

  for (int n : {0, 1, 2, 3, 4, 5}) {
    CgiResult unmod = RunCgi(kernel::UnmodifiedSystemConfig(), false, 0, n);
    CgiResult lrp = RunCgi(kernel::LrpSystemConfig(), false, 0, n);
    CgiResult rc30 = RunCgi(kernel::ResourceContainerSystemConfig(), true, 0.30, n);
    CgiResult rc10 = RunCgi(kernel::ResourceContainerSystemConfig(), true, 0.10, n);

    const struct {
      const char* system;
      const CgiResult* r;
    } rows[] = {{"unmodified", &unmod}, {"lrp", &lrp}, {"rc,cap=0.30", &rc30},
                {"rc,cap=0.10", &rc10}};
    for (const auto& row : rows) {
      const std::string config = std::string(row.system) + ",cgi=" + std::to_string(n);
      report.Add("static_throughput", row.r->static_tput, "req/s", config);
      report.Add("cgi_cpu_share", 100 * row.r->cgi_share, "percent", config);
    }

    tput.AddRow({std::to_string(n), xp::FormatDouble(unmod.static_tput, 0),
                 xp::FormatDouble(lrp.static_tput, 0),
                 xp::FormatDouble(rc30.static_tput, 0),
                 xp::FormatDouble(rc10.static_tput, 0)});
    share.AddRow({std::to_string(n), xp::FormatDouble(100 * unmod.cgi_share, 1) + "%",
                  xp::FormatDouble(100 * lrp.cgi_share, 1) + "%",
                  xp::FormatDouble(100 * rc30.cgi_share, 1) + "%",
                  xp::FormatDouble(100 * rc10.cgi_share, 1) + "%"});
    std::fflush(stdout);
  }

  std::printf("--- Figure 12: static-document throughput (requests/s) ---\n");
  tput.Print(std::cout);
  std::printf(
      "\npaper: unmodified drops to ~44%% of max at 4 CGI; LRP drops further\n"
      "       (exact equal sharing); RC systems stay nearly flat.\n");

  std::printf("\n--- Figure 13: CPU share of CGI processing ---\n");
  share.Print(std::cout);
  std::printf(
      "\npaper: unmodified ~60%% at 4 CGI (server over-favored by misaccounting);\n"
      "       LRP = exact N/(N+1); RC capped at 30%% / 10%% almost exactly.\n");
  if (!report.Flush()) {
    std::fprintf(stderr, "failed to write %s\n", report.path().c_str());
    return 1;
  }
  return 0;
}
