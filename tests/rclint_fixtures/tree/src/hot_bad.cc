// Hot-path fixture: a function annotated RC_HOT_PATH may not allocate,
// build std::function objects, or grow containers.
#include <functional>
#include <memory>
#include <vector>

#define RC_HOT_PATH

struct Event {
  int id = 0;
};

RC_HOT_PATH void HotBad(std::vector<Event>* log, int id) {
  Event* e = new Event{id};                    // heap allocation
  auto shared = std::make_shared<Event>();     // heap allocation
  std::function<void()> fn = [e] { delete e; };  // type-erased callable
  log->push_back(*e);                          // throwing container growth
  fn();
  (void)shared;
}

// The same constructs outside an annotated function are not rclint's
// business (the cold path may allocate freely).
void ColdPath(std::vector<Event>* log) {
  log->push_back(Event{});
  Event* e = new Event{};
  delete e;
}
