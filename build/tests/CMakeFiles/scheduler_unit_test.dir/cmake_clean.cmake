file(REMOVE_RECURSE
  "CMakeFiles/scheduler_unit_test.dir/scheduler_unit_test.cc.o"
  "CMakeFiles/scheduler_unit_test.dir/scheduler_unit_test.cc.o.d"
  "scheduler_unit_test"
  "scheduler_unit_test.pdb"
  "scheduler_unit_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scheduler_unit_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
