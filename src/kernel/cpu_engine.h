// One simulated CPU.
//
// A processor (one of the SmpEngine's N, or the whole machine when N = 1, as
// on the paper's uniprocessor server) executes, in strict priority order:
//   1. interrupt-level work (device interrupts, and in softint mode the full
//      protocol processing) — always preempts threads;
//   2. thread CPU slices, chosen by the pluggable CpuScheduler.
//
// Threads are coroutines that express CPU consumption as "demand"; the engine
// slices demand by the scheduling quantum, charges each consumed microsecond
// to the thread's current resource binding, and resumes the coroutine when
// the demand is met.
#ifndef SRC_KERNEL_CPU_ENGINE_H_
#define SRC_KERNEL_CPU_ENGINE_H_

#include <deque>
#include <functional>

#include "src/kernel/cost_model.h"
#include "src/kernel/scheduler.h"
#include "src/kernel/thread.h"
#include "src/rc/container.h"
#include "src/sim/simulator.h"

namespace kernel {

class Kernel;

class CpuEngine {
 public:
  CpuEngine(sim::Simulator* simulator, Kernel* kernel, const CostModel* costs,
            int cpu_id = 0);

  void set_scheduler(CpuScheduler* sched) { sched_ = sched; }

  int cpu_id() const { return cpu_id_; }

  // Queues interrupt-level work: `cost` microseconds consumed at interrupt
  // priority, then `fn` applied. `charge_to` null means the time is machine
  // interrupt overhead (charged to no principal, as in classic kernels);
  // non-null charges the container (used for softint misaccounting, where
  // the caller captured the "unlucky" principal at arrival time).
  void QueueInterruptWork(sim::Duration cost, rc::ContainerRef charge_to,
                          std::function<void()> fn);

  // Something became runnable; dispatch if the CPU is idle.
  void Poke();

  // The thread currently on the CPU (nullptr during interrupts / idle).
  Thread* running() const { return running_; }

  // Container of the currently running thread, for unlucky-principal capture.
  rc::ContainerRef CurrentContainer() const;

  // --- Per-CPU accounting -------------------------------------------------
  sim::Duration interrupt_usec() const { return interrupt_usec_; }
  sim::Duration context_switch_usec() const { return csw_usec_; }
  sim::Duration busy_usec() const { return busy_usec_; }
  // When this engine came online; busy/idle accounting starts here, so an
  // engine created (hot-plugged) after t=0 reports no phantom idle time for
  // the interval before it existed.
  sim::SimTime created_at() const { return created_at_; }
  // Idle time since the engine came online: busy_usec() + idle_usec() always
  // equals now - created_at(), whatever the creation time.
  sim::Duration idle_usec() const;

 private:
  enum class CpuState {
    kIdle,
    kInterrupt,   // consuming interrupt work cost
    kSlice,       // consuming a thread slice
    kProcessing,  // running zero-cost thread/interrupt actions
  };

  struct IrqItem {
    sim::Duration cost;
    rc::ContainerRef charge_to;
    std::function<void()> fn;
  };

  void MaybeDispatch();
  void StartInterrupt();
  // `fresh` marks a new dispatch from the scheduler (resets the quantum
  // budget); continuations after a completed slice keep the current budget.
  void RunThread(Thread* t, bool fresh);
  void StartSlice(Thread* t);
  void OnSliceComplete();
  void PreemptSlice();
  // Accounts `consumed` microseconds of the current slice (overhead first,
  // then work charged to the thread's binding).
  void SettleSlice(sim::Duration consumed);
  void ScheduleThrottleRetry();

  sim::Simulator* const simr_;
  Kernel* const kernel_;
  const CostModel* const costs_;
  const int cpu_id_;
  CpuScheduler* sched_ = nullptr;

  CpuState state_ = CpuState::kIdle;
  std::deque<IrqItem> irq_queue_;

  Thread* running_ = nullptr;
  Thread* last_dispatched_ = nullptr;
  // CPU consumed by the current dispatch; once it reaches a quantum the
  // thread is re-queued so the scheduler can arbitrate, even if the thread
  // keeps generating demand across syscall boundaries.
  sim::Duration dispatch_used_ = 0;
  sim::SimTime slice_start_ = 0;
  sim::Duration slice_overhead_ = 0;
  sim::Duration slice_work_ = 0;
  sim::EventHandle completion_;

  sim::EventHandle retry_;
  sim::SimTime retry_time_ = 0;

  const sim::SimTime created_at_;
  sim::Duration interrupt_usec_ = 0;
  sim::Duration csw_usec_ = 0;
  sim::Duration busy_usec_ = 0;
};

}  // namespace kernel

#endif  // SRC_KERNEL_CPU_ENGINE_H_
