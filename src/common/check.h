// Lightweight invariant-checking macros for the resource-containers project.
//
// RC_CHECK is always on (it guards simulator and accounting invariants whose
// violation would silently corrupt experiment results); RC_DCHECK compiles
// out in NDEBUG builds. The comparison forms (RC_CHECK_EQ/NE/LE/GE/LT/GT)
// print both operand values on failure, so a violated invariant reports what
// the values actually were, not just the stringified expression.
#ifndef SRC_COMMON_CHECK_H_
#define SRC_COMMON_CHECK_H_

#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <string>
#include <type_traits>

namespace rccommon {

[[noreturn]] inline void CheckFailed(const char* expr, const char* file, int line) {
  std::fprintf(stderr, "CHECK failed: %s at %s:%d\n", expr, file, line);
  std::abort();
}

[[noreturn]] inline void CheckOpFailed(const char* expr, const char* file, int line,
                                       const std::string& lhs, const std::string& rhs) {
  std::fprintf(stderr, "CHECK failed: %s (lhs=%s, rhs=%s) at %s:%d\n", expr,
               lhs.c_str(), rhs.c_str(), file, line);
  std::abort();
}

namespace internal {

template <typename T, typename = void>
struct IsStreamable : std::false_type {};
template <typename T>
struct IsStreamable<T, std::void_t<decltype(std::declval<std::ostream&>()
                                            << std::declval<const T&>())>>
    : std::true_type {};

// Best-effort value rendering for failure messages: enums print as their
// underlying integer, pointers as addresses, anything streamable through
// operator<<, everything else as a placeholder.
template <typename T>
std::string DescribeValue(const T& value) {
  if constexpr (std::is_same_v<std::decay_t<T>, std::nullptr_t>) {
    return "nullptr";
  } else if constexpr (std::is_enum_v<std::decay_t<T>>) {
    return std::to_string(
        static_cast<long long>(static_cast<std::underlying_type_t<std::decay_t<T>>>(value)));
  } else if constexpr (std::is_pointer_v<std::decay_t<T>>) {
    char buf[24];
    std::snprintf(buf, sizeof(buf), "%p", static_cast<const void*>(value));
    return std::string(buf);
  } else if constexpr (IsStreamable<std::decay_t<T>>::value) {
    std::ostringstream os;
    os << value;
    return os.str();
  } else {
    return "<unprintable>";
  }
}

}  // namespace internal
}  // namespace rccommon

// Marks a function as part of an allocation-free hot path (event dispatch,
// charging, accept, packet/disk data planes). Two effects: the compiler gets
// a codegen hint, and tools/rclint statically bans heap allocation (`new`,
// make_shared/make_unique), std::function construction, and throwing
// container growth inside the function body — the disciplines PR 6-8's
// speedups depend on. Violations that are deliberate (placement new into
// pooled storage, amortized growth of a reserved arena) carry an inline
// `// rclint: allow(hotpath): <reason>` suppression.
#if defined(__GNUC__) || defined(__clang__)
#define RC_HOT_PATH __attribute__((hot))
#else
#define RC_HOT_PATH
#endif

#define RC_CHECK(expr)                                     \
  do {                                                     \
    if (!(expr)) {                                         \
      ::rccommon::CheckFailed(#expr, __FILE__, __LINE__);  \
    }                                                      \
  } while (0)

#define RC_CHECK_OP(op, a, b)                                                  \
  do {                                                                         \
    auto&& rc_check_lhs = (a);                                                 \
    auto&& rc_check_rhs = (b);                                                 \
    if (!(rc_check_lhs op rc_check_rhs)) {                                     \
      ::rccommon::CheckOpFailed(#a " " #op " " #b, __FILE__, __LINE__,         \
                                ::rccommon::internal::DescribeValue(rc_check_lhs), \
                                ::rccommon::internal::DescribeValue(rc_check_rhs)); \
    }                                                                          \
  } while (0)

#define RC_CHECK_EQ(a, b) RC_CHECK_OP(==, a, b)
#define RC_CHECK_NE(a, b) RC_CHECK_OP(!=, a, b)
#define RC_CHECK_LE(a, b) RC_CHECK_OP(<=, a, b)
#define RC_CHECK_GE(a, b) RC_CHECK_OP(>=, a, b)
#define RC_CHECK_LT(a, b) RC_CHECK_OP(<, a, b)
#define RC_CHECK_GT(a, b) RC_CHECK_OP(>, a, b)

#ifdef NDEBUG
#define RC_DCHECK(expr) \
  do {                  \
  } while (0)
#define RC_DCHECK_EQ(a, b) RC_DCHECK((a) == (b))
#define RC_DCHECK_NE(a, b) RC_DCHECK((a) != (b))
#define RC_DCHECK_LE(a, b) RC_DCHECK((a) <= (b))
#define RC_DCHECK_GE(a, b) RC_DCHECK((a) >= (b))
#else
#define RC_DCHECK(expr) RC_CHECK(expr)
#define RC_DCHECK_EQ(a, b) RC_CHECK_EQ(a, b)
#define RC_DCHECK_NE(a, b) RC_CHECK_NE(a, b)
#define RC_DCHECK_LE(a, b) RC_CHECK_LE(a, b)
#define RC_DCHECK_GE(a, b) RC_CHECK_GE(a, b)
#endif

#endif  // SRC_COMMON_CHECK_H_
