file(REMOVE_RECURSE
  "CMakeFiles/server_architectures.dir/server_architectures.cpp.o"
  "CMakeFiles/server_architectures.dir/server_architectures.cpp.o.d"
  "server_architectures"
  "server_architectures.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/server_architectures.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
