#include "src/rc/attributes.h"

namespace rc {

using rccommon::Errc;
using rccommon::Expected;
using rccommon::MakeUnexpected;

namespace {

Expected<void> ValidateSched(const SchedParams& sched) {
  if (sched.priority < kMinPriority || sched.priority > kMaxPriority) {
    return MakeUnexpected(Errc::kInvalidArgument);
  }
  if (sched.cls == SchedClass::kFixedShare) {
    if (sched.fixed_share <= 0.0 || sched.fixed_share > 1.0) {
      return MakeUnexpected(Errc::kInvalidArgument);
    }
  } else if (sched.fixed_share != 0.0) {
    return MakeUnexpected(Errc::kInvalidArgument);
  }
  return {};
}

Expected<void> ValidatePolicy(const ResourcePolicy& policy) {
  if (policy.override_sched) {
    if (auto v = ValidateSched(policy.sched); !v.ok()) {
      return v;
    }
  } else if (policy.sched.fixed_share != 0.0 ||
             policy.sched.priority != kDefaultPriority ||
             policy.sched.cls != SchedClass::kTimeShare) {
    // Sched fields are meaningless (and therefore rejected) while the
    // resource inherits the container's base SchedParams.
    return MakeUnexpected(Errc::kInvalidArgument);
  }
  if (policy.limit < 0.0 || policy.limit > 1.0) {
    return MakeUnexpected(Errc::kInvalidArgument);
  }
  return {};
}

}  // namespace

const char* ResourceKindName(ResourceKind kind) {
  switch (kind) {
    case ResourceKind::kCpu:
      return "cpu";
    case ResourceKind::kDisk:
      return "disk";
    case ResourceKind::kLink:
      return "link";
    case ResourceKind::kMemory:
      return "memory";
  }
  return "?";
}

Expected<void> Attributes::Validate() const {
  if (auto v = ValidateSched(sched); !v.ok()) {
    return v;
  }
  if (auto v = ValidatePolicy(disk); !v.ok()) {
    return v;
  }
  if (auto v = ValidatePolicy(link); !v.ok()) {
    return v;
  }
  if (auto v = ValidatePolicy(memory); !v.ok()) {
    return v;
  }
  if (cpu_limit < 0.0 || cpu_limit > 1.0) {
    return MakeUnexpected(Errc::kInvalidArgument);
  }
  if (memory_limit_bytes < 0) {
    return MakeUnexpected(Errc::kInvalidArgument);
  }
  if (network_priority < -1 || network_priority > kMaxPriority) {
    return MakeUnexpected(Errc::kInvalidArgument);
  }
  return {};
}

}  // namespace rc
