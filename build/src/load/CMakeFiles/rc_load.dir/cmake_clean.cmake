file(REMOVE_RECURSE
  "CMakeFiles/rc_load.dir/http_client.cc.o"
  "CMakeFiles/rc_load.dir/http_client.cc.o.d"
  "librc_load.a"
  "librc_load.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rc_load.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
