// Container attributes: scheduling parameters, resource limits, and network
// QoS values (Section 4.1: "Containers have attributes; these are used to
// provide scheduling parameters, resource limits, and network QoS values").
#ifndef SRC_RC_ATTRIBUTES_H_
#define SRC_RC_ATTRIBUTES_H_

#include <cstdint>

#include "src/common/expected.h"

namespace rc {

// Scheduling class of a container, mirroring the prototype's multi-level
// policy (Section 5.1): a container either holds a fixed-share guarantee
// from its parent, or time-shares the CPU granted to its parent with its
// sibling time-share containers. Only fixed-share containers may have
// children.
enum class SchedClass {
  kTimeShare,
  kFixedShare,
};

// Numeric priorities act as proportional weights among sibling time-share
// containers. Priority 0 is the starvation class used for denial-of-service
// defense (Section 4.8): a priority-0 container is scheduled — and its
// pending network processing performed — only when nothing else is runnable.
inline constexpr int kMinPriority = 0;
inline constexpr int kMaxPriority = 63;
inline constexpr int kDefaultPriority = 16;

struct SchedParams {
  SchedClass cls = SchedClass::kTimeShare;
  int priority = kDefaultPriority;  // time-share weight; 0 = only-when-idle
  double fixed_share = 0.0;         // fraction of parent, for kFixedShare
};

// The schedulable resources a container's share/limit machinery applies to.
// kCpu is the paper's CPU scheduler; kDisk and kLink extend the same
// proportional-share core to disk bandwidth and the transmit link
// (Section 4.4: "other system resources such as physical memory, disk
// bandwidth and socket buffers can be conveniently controlled by resource
// containers").
enum class ResourceKind {
  kCpu = 0,
  kDisk = 1,
  kLink = 2,
  kMemory = 3,
};
inline constexpr int kResourceKindCount = 4;

const char* ResourceKindName(ResourceKind kind);

// Per-resource scheduling override. By default a container's disk and link
// scheduling follow its CPU SchedParams (`Attributes::sched`); setting
// `override_sched` gives the resource its own class/priority/share — e.g. a
// CPU-bound time-share container can still hold a fixed disk-bandwidth
// guarantee. `limit` is a windowed bandwidth cap (fraction of the device),
// the disk/link analogue of Attributes::cpu_limit; 0 = unlimited.
struct ResourcePolicy {
  bool override_sched = false;
  SchedParams sched;
  double limit = 0.0;
};

struct Attributes {
  SchedParams sched;

  // Maximum fraction of the whole machine's CPU this container (with its
  // descendants) may consume, enforced over a sliding window; 0 = unlimited.
  // This is the "resource sand-box" mechanism of Section 5.6.
  double cpu_limit = 0.0;

  // Maximum bytes charged to this container's subtree; 0 = unlimited.
  std::int64_t memory_limit_bytes = 0;

  // Priority used to order kernel protocol processing of this container's
  // pending packets (Section 4.7); -1 means "use sched.priority".
  int network_priority = -1;

  // Disk-bandwidth and transmit-link scheduling (share tree instantiations
  // over ResourceKind::kDisk / kLink). Defaults follow `sched` with no limit,
  // so containers that never touch these fields behave exactly as before.
  ResourcePolicy disk;
  ResourcePolicy link;

  // Physical-memory scheduling (ResourceKind::kMemory, space-shared). A
  // fixed memory share is both a proportional claim on machine memory and a
  // guarantee of resident bytes (share × parent guarantee, down from machine
  // capacity); `memory.limit` caps the subtree at a fraction of the machine,
  // combining with the absolute `memory_limit_bytes` above (tighter wins).
  ResourcePolicy memory;

  // Checks internal consistency (ranges, share bounds). Cross-container
  // constraints (sibling share sums) are checked by ContainerManager.
  rccommon::Expected<void> Validate() const;

  // The priority used for network processing order.
  int EffectiveNetworkPriority() const {
    return network_priority >= 0 ? network_priority : sched.priority;
  }
};

// The scheduling parameters governing `kind`. For kCpu this is always
// `a.sched`; for disk/link it is the per-resource override when set, else
// `a.sched` (inheritance).
inline const SchedParams& SchedFor(const Attributes& a, ResourceKind kind) {
  switch (kind) {
    case ResourceKind::kDisk:
      return a.disk.override_sched ? a.disk.sched : a.sched;
    case ResourceKind::kLink:
      return a.link.override_sched ? a.link.sched : a.sched;
    case ResourceKind::kMemory:
      return a.memory.override_sched ? a.memory.sched : a.sched;
    case ResourceKind::kCpu:
      break;
  }
  return a.sched;
}

// The windowed-limit fraction governing `kind` (0 = unlimited).
inline double LimitFor(const Attributes& a, ResourceKind kind) {
  switch (kind) {
    case ResourceKind::kDisk:
      return a.disk.limit;
    case ResourceKind::kLink:
      return a.link.limit;
    case ResourceKind::kMemory:
      return a.memory.limit;
    case ResourceKind::kCpu:
      break;
  }
  return a.cpu_limit;
}

}  // namespace rc

#endif  // SRC_RC_ATTRIBUTES_H_
