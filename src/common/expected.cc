#include "src/common/expected.h"

namespace rccommon {

const char* ErrcName(Errc e) {
  switch (e) {
    case Errc::kOk:
      return "ok";
    case Errc::kInvalidArgument:
      return "invalid argument";
    case Errc::kNotFound:
      return "not found";
    case Errc::kPermissionDenied:
      return "permission denied";
    case Errc::kLimitExceeded:
      return "limit exceeded";
    case Errc::kWrongState:
      return "wrong state";
    case Errc::kWouldBlock:
      return "would block";
    case Errc::kQueueFull:
      return "queue full";
    case Errc::kNotLeaf:
      return "not a leaf container";
    case Errc::kHasChildren:
      return "container has children";
  }
  return "unknown";
}

}  // namespace rccommon
