# Empty compiler generated dependencies file for class_limit_test.
# This may be replaced when dependencies are built.
