#include "src/telemetry/bench_io.h"

#include <cstring>
#include <fstream>
#include <utility>

#include "src/telemetry/json.h"

namespace telemetry {

BenchReport::BenchReport(std::string name, int argc, char** argv)
    : name_(std::move(name)) {
  for (int i = 1; i < argc; ++i) {
    const char* a = argv[i];
    if (std::strcmp(a, "--metrics-out") == 0) {
      requested_ = true;
    } else if (std::strncmp(a, "--metrics-out=", 14) == 0) {
      requested_ = true;
      path_ = a + 14;
    }
  }
  if (requested_ && path_.empty()) {
    path_ = "BENCH_" + name_ + ".json";
  }
}

void BenchReport::Add(std::string metric, double value, std::string unit,
                      std::string config) {
  entries_.push_back(Entry{std::move(metric), value, std::move(unit), std::move(config)});
}

void BenchReport::WriteJson(std::ostream& os) const {
  const auto old_precision = os.precision(15);
  os << "[\n";
  for (std::size_t i = 0; i < entries_.size(); ++i) {
    const Entry& e = entries_[i];
    os << "  {\"metric\":\"" << EscapeJson(e.metric) << "\",\"value\":" << e.value
       << ",\"unit\":\"" << EscapeJson(e.unit) << "\",\"config\":\""
       << EscapeJson(e.config) << "\"}";
    if (i + 1 < entries_.size()) {
      os << ",";
    }
    os << "\n";
  }
  os << "]\n";
  os.precision(old_precision);
}

bool BenchReport::Flush() const {
  if (!requested_) {
    return true;
  }
  std::ofstream out(path_);
  if (!out) {
    return false;
  }
  WriteJson(out);
  return static_cast<bool>(out);
}

}  // namespace telemetry
