// A process: the protection domain. Owns a descriptor table, threads, an
// event channel, and a *default resource container* — the paper's bridge
// between the classic process-centric world (where the default container is
// the only principal a process ever has) and the container world.
#ifndef SRC_KERNEL_PROCESS_H_
#define SRC_KERNEL_PROCESS_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "src/kernel/event_api.h"
#include "src/kernel/fd_table.h"
#include "src/kernel/thread.h"
#include "src/rc/container.h"

namespace kernel {

class Kernel;

using Pid = std::uint64_t;

class Process {
 public:
  Process(Kernel* kernel, Pid pid, std::string name, rc::ContainerRef default_container);
  ~Process();

  Process(const Process&) = delete;
  Process& operator=(const Process&) = delete;

  Pid pid() const { return pid_; }
  const std::string& name() const { return name_; }
  Kernel* kernel() const { return kernel_; }

  // The container new threads are bound to, and the classic-mode principal.
  const rc::ContainerRef& default_container() const { return default_container_; }

  FdTable& fds() { return fds_; }
  EventChannel& events() { return events_; }

  std::vector<std::unique_ptr<Thread>>& threads() { return threads_; }

  // True once every thread has finished and been reaped.
  bool zombie() const { return started_ && threads_.empty(); }
  void mark_started() { started_ = true; }

  // The per-process kernel network thread (LRP/RC modes; Section 5.1: "a
  // per-process kernel thread is used to perform processing of network
  // packets"). Owned by threads_; null in softint mode.
  Thread* net_thread = nullptr;

  // Callbacks fired when the process becomes a zombie (WaitProcess).
  std::vector<std::function<void()>> exit_watchers;

  // Reap automatically when the last thread exits (detached processes).
  bool auto_reap = false;

  // Wall CPU executed by already-reaped threads.
  sim::Duration reaped_executed_usec = 0;

  // Total wall CPU actually executed by this process's threads (live +
  // reaped) — ground truth for Figure 13, independent of charging.
  sim::Duration TotalExecutedUsec() const;

 private:
  Kernel* const kernel_;
  const Pid pid_;
  const std::string name_;
  rc::ContainerRef default_container_;
  FdTable fds_;
  EventChannel events_;
  std::vector<std::unique_ptr<Thread>> threads_;
  bool started_ = false;
};

}  // namespace kernel

#endif  // SRC_KERNEL_PROCESS_H_
