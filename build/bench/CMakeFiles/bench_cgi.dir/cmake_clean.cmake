file(REMOVE_RECURSE
  "CMakeFiles/bench_cgi.dir/bench_cgi.cpp.o"
  "CMakeFiles/bench_cgi.dir/bench_cgi.cpp.o.d"
  "bench_cgi"
  "bench_cgi.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_cgi.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
