#include "src/kernel/sharded_scheduler.h"

#include <algorithm>
#include <utility>
#include <vector>

#include "src/common/check.h"
#include "src/kernel/thread.h"

namespace kernel {

ShardedScheduler::ShardedScheduler(int cpus, const ShardFactory& make_shard) {
  RC_CHECK_GE(cpus, 1);
  shards_.reserve(static_cast<std::size_t>(cpus));
  views_.reserve(static_cast<std::size_t>(cpus));
  for (int i = 0; i < cpus; ++i) {
    shards_.push_back(make_shard());
    views_.push_back(std::make_unique<View>(this, i));
  }
}

CpuScheduler* ShardedScheduler::ViewFor(int cpu) {
  return views_[static_cast<std::size_t>(cpu)].get();
}

int ShardedScheduler::HomeFor(Thread* t) const {
  if (t->pinned_cpu >= 0 && t->pinned_cpu < cpus()) {
    return t->pinned_cpu;
  }
  if (t->home_cpu >= 0 && t->home_cpu < cpus()) {
    return t->home_cpu;
  }
  int best = 0;
  int best_load = shards_[0]->runnable_count();
  for (int i = 1; i < cpus(); ++i) {
    const int load = shards_[static_cast<std::size_t>(i)]->runnable_count();
    if (load < best_load) {
      best = i;
      best_load = load;
    }
  }
  return best;
}

void ShardedScheduler::Enqueue(Thread* t, sim::SimTime now) {
  serial_.AssertHeld();
  const int home = HomeFor(t);
  // home_cpu is the routing key for Remove/MigrateQueued: it must name the
  // shard that holds the thread for as long as the thread is queued.
  t->home_cpu = home;
  shards_[static_cast<std::size_t>(home)]->Enqueue(t, now);
  if (poke_) {
    poke_(home);  // no-op unless that CPU is idle (or should preempt)
  }
}

Thread* ShardedScheduler::PickFor(int cpu, sim::SimTime now) {
  serial_.AssertHeld();
  Thread* t = shards_[static_cast<std::size_t>(cpu)]->PickNext(now);
  if (t != nullptr) {
    return t;
  }
  // Idle steal: take work from the most-loaded shard that holds a movable
  // candidate. Victims in decreasing-load order (ties: lowest CPU first);
  // pinned threads are popped and put straight back — never migrated.
  std::vector<std::pair<int, int>> victims;  // (-load, cpu)
  for (int i = 0; i < cpus(); ++i) {
    const int load = shards_[static_cast<std::size_t>(i)]->runnable_count();
    if (i != cpu && load > 0) {
      victims.emplace_back(-load, i);
    }
  }
  std::sort(victims.begin(), victims.end());
  for (const auto& [neg_load, victim] : victims) {
    auto& shard = shards_[static_cast<std::size_t>(victim)];
    std::vector<Thread*> skipped;
    Thread* stolen = nullptr;
    while ((stolen = shard->PickNext(now)) != nullptr) {
      if (stolen->pinned_cpu >= 0 && stolen->pinned_cpu != cpu) {
        skipped.push_back(stolen);
        continue;
      }
      break;
    }
    for (Thread* p : skipped) {
      // Routed through HomeFor: a pinned thread stranded on the wrong shard
      // (pinned while queued elsewhere) migrates to its own CPU here.
      Enqueue(p, now);
    }
    if (stolen != nullptr) {
      stolen->home_cpu = cpu;
      ++steals_;
      return stolen;
    }
    // Everything here was pinned elsewhere or throttled; try the next shard.
  }
  return nullptr;
}

void ShardedScheduler::OnCharge(rc::ResourceContainer& c, sim::Duration usec,
                                sim::SimTime now) {
  // Broadcast: every shard observes the machine-wide charge stream, so the
  // per-shard stride/decay/limit state is global, not per-CPU.
  for (auto& shard : shards_) {
    shard->OnCharge(c, usec, now);
  }
}

void ShardedScheduler::FlushCharges() {
  for (auto& shard : shards_) {
    shard->FlushCharges();
  }
}

void ShardedScheduler::MigrateQueued(Thread* t, sim::SimTime now) {
  if (t->home_cpu >= 0 && t->home_cpu < cpus()) {
    shards_[static_cast<std::size_t>(t->home_cpu)]->MigrateQueued(t, now);
  }
}

void ShardedScheduler::Remove(Thread* t) {
  if (t->home_cpu >= 0 && t->home_cpu < cpus()) {
    shards_[static_cast<std::size_t>(t->home_cpu)]->Remove(t);
  }
}

void ShardedScheduler::Tick(sim::SimTime now) {
  for (auto& shard : shards_) {
    shard->Tick(now);
  }
}

std::optional<sim::SimTime> ShardedScheduler::NextEligibleTime(sim::SimTime now) {
  std::optional<sim::SimTime> earliest;
  for (auto& shard : shards_) {
    const auto when = shard->NextEligibleTime(now);
    if (when.has_value() && (!earliest.has_value() || *when < *earliest)) {
      earliest = when;
    }
  }
  return earliest;
}

void ShardedScheduler::OnContainerDestroyed(rc::ResourceContainer& c) {
  for (auto& shard : shards_) {
    shard->OnContainerDestroyed(c);
  }
}

void ShardedScheduler::DetachLifecycle() {
  for (auto& shard : shards_) {
    shard->DetachLifecycle();
  }
}

int ShardedScheduler::runnable_count() const {
  int total = 0;
  for (const auto& shard : shards_) {
    total += shard->runnable_count();
  }
  return total;
}

}  // namespace kernel
