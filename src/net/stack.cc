#include "src/net/stack.h"

#include <algorithm>
#include <utility>

#include "src/common/check.h"
#include "src/telemetry/registry.h"

namespace net {

using rccommon::Errc;
using rccommon::Expected;
using rccommon::MakeUnexpected;

const char* NetModeName(NetMode mode) {
  switch (mode) {
    case NetMode::kSoftint:
      return "softint";
    case NetMode::kLrp:
      return "lrp";
    case NetMode::kResourceContainer:
      return "resource-container";
  }
  return "?";
}

Stack::Stack(StackEnv* env, const StackCosts& costs, NetMode mode)
    : env_(env), costs_(costs), mode_(mode) {
  RC_CHECK_NE(env, nullptr);
}

Stack::~Stack() {
  // Connections still open at stack teardown (e.g. clients that never sent
  // FIN) must release their memory charge like every other teardown path, or
  // the bytes stay charged to containers forever. Snapshot first: Teardown
  // erases from pcbs_.
  std::vector<ConnRef> open;
  open.reserve(pcbs_.size());
  for (const auto& [flow, conn] : pcbs_) {
    open.push_back(conn);
  }
  for (const ConnRef& conn : open) {
    Teardown(*conn);
  }
  RC_CHECK_EQ(connection_memory_bytes_, 0);
}

Expected<ListenRef> Stack::Listen(std::uint16_t port, const CidrFilter& filter,
                                  rc::ContainerRef container, std::uint64_t owner_tag,
                                  int syn_backlog, int accept_backlog) {
  if (!container || syn_backlog <= 0 || accept_backlog <= 0) {
    return MakeUnexpected(Errc::kInvalidArgument);
  }
  for (const ListenRef& ls : listeners_) {
    if (!ls->closed() && ls->port() == port &&
        ls->filter().prefix_len == filter.prefix_len &&
        ls->filter().negate == filter.negate &&
        ls->filter().Matches(filter.base) == !filter.negate &&
        filter.Matches(ls->filter().base) == !filter.negate) {
      return MakeUnexpected(Errc::kWrongState);  // exact duplicate binding
    }
  }
  auto ls = std::make_shared<ListenSocket>(port, filter, std::move(container), owner_tag,
                                           syn_backlog, accept_backlog);
  listeners_.push_back(ls);
  return ls;
}

void Stack::CloseListen(const ListenRef& ls) {
  ls->set_closed();
  // Tear down half-open and un-accepted connections.
  for (auto& conn : ls->syn_queue()) {
    Teardown(*conn);
  }
  ls->syn_queue().clear();
  for (auto& conn : ls->accept_queue()) {
    Teardown(*conn);
  }
  ls->accept_queue().clear();
  listeners_.erase(std::remove(listeners_.begin(), listeners_.end(), ls), listeners_.end());
}

RC_HOT_PATH ConnRef Stack::Accept(ListenSocket& ls) {
  while (!ls.accept_queue().empty()) {
    ConnRef conn = ls.accept_queue().front();
    ls.accept_queue().pop_front();
    if (conn->torn_down()) {
      continue;  // client reset it while queued
    }
    ++ls.connections_accepted;
    return conn;
  }
  return nullptr;
}

RC_HOT_PATH std::optional<HttpRequestInfo> Stack::Recv(Connection& conn) {
  if (conn.recv_queue().empty()) {
    return std::nullopt;
  }
  HttpRequestInfo req = conn.recv_queue().front();
  conn.recv_queue().pop_front();
  return req;
}

sim::Duration Stack::SendCost(std::uint32_t bytes) const {
  const std::uint32_t packets = std::max(1u, (bytes + costs_.mtu_bytes - 1) / costs_.mtu_bytes);
  return static_cast<sim::Duration>(packets) * costs_.output_per_packet;
}

void Stack::Send(Connection& conn, std::uint32_t bytes, std::uint64_t response_to,
                 bool close_after) {
  if (conn.torn_down()) {
    return;
  }
  const std::uint32_t packets = std::max(1u, (bytes + costs_.mtu_bytes - 1) / costs_.mtu_bytes);
  std::uint32_t remaining = bytes;
  for (std::uint32_t i = 0; i < packets; ++i) {
    Packet p;
    p.type = PacketType::kData;
    p.src = Endpoint{Addr{0}, conn.server_port()};
    p.dst = conn.client();
    p.flow_id = conn.flow_id();
    p.size_bytes = std::min(remaining, costs_.mtu_bytes) + 40;
    remaining -= std::min(remaining, costs_.mtu_bytes);
    p.response_to = response_to;
    p.last_segment = (i + 1 == packets);
    ++stats_.packets_out;
    env_->EmitToWire(p, conn.container());
  }
  ++conn.responses_sent;
  if (conn.container()) {
    conn.container()->CountBytesSent(bytes);
  }
  if (close_after) {
    Close(conn);
  }
}

void Stack::Close(Connection& conn) {
  if (conn.torn_down()) {
    return;
  }
  Packet fin;
  fin.type = PacketType::kFin;
  fin.src = Endpoint{Addr{0}, conn.server_port()};
  fin.dst = conn.client();
  fin.flow_id = conn.flow_id();
  ++stats_.packets_out;
  env_->EmitToWire(fin, conn.container());
  Teardown(conn);
}

Expected<void> Stack::RebindConnection(Connection& conn, rc::ContainerRef c) {
  if (!c) {
    return MakeUnexpected(Errc::kInvalidArgument);
  }
  if (conn.torn_down()) {
    return MakeUnexpected(Errc::kWrongState);
  }
  if (auto charged = c->ChargeMemory(costs_.connection_memory_bytes,
                                     rc::MemorySource::kConnection);
      !charged.ok()) {
    return charged;
  }
  if (conn.container()) {
    conn.container()->ReleaseMemory(costs_.connection_memory_bytes,
                                    rc::MemorySource::kConnection);
  } else {
    // The old charge is only dropped when a container held one; a rebind
    // from "no container" nets one new charge.
    connection_memory_bytes_ += costs_.connection_memory_bytes;
  }
  conn.set_container(std::move(c));
  return {};
}

RC_HOT_PATH std::optional<ProtocolWork> Stack::HandleArrival(const Packet& p) {
  ++stats_.packets_in;
  if (p.type == PacketType::kSyn) {
    ++stats_.syns_in;
  }

  if (mode_ == NetMode::kSoftint) {
    // Full protocol processing happens inline at softint priority, charged
    // to whomever the interrupt preempted (null charge target).
    return MakeWork(p, nullptr);
  }

  // LRP / RC: early demultiplexing at interrupt level.
  DemuxResult d = EarlyDemux(p);
  if (!d.container) {
    return std::nullopt;  // no match: discarded early, minimal cost
  }

  OwnerBacklog& backlog = backlogs_[d.owner_tag];
  const rc::ContainerId key = d.container->id();
  int& count = backlog.per_container_count[key];
  if (count >= kPerContainerBacklogLimit) {
    ++stats_.backlog_drops;
    d.container->CountPacketDropped();
    if (p.type == PacketType::kSyn && d.listener != nullptr) {
      ++d.listener->syns_dropped;
      env_->OnSynDrop(*d.listener, p.src.addr);
    }
    return std::nullopt;
  }

  int prio = rc::kDefaultPriority;
  if (mode_ == NetMode::kResourceContainer) {
    prio = std::clamp(d.container->attributes().EffectiveNetworkPriority(),
                      rc::kMinPriority, rc::kMaxPriority);
  }
  // rclint: allow(hotpath): bounded backlog append (kPerContainerBacklogLimit
  // per container); the deque reuses chunks once the backlog has breathed.
  backlog.buckets[static_cast<std::size_t>(prio)].push_back(
      PendingPacket{p, d.container, key});
  ++count;
  ++backlog.total;
  env_->NotifyPendingNetWork(d.owner_tag);
  return std::nullopt;
}

RC_HOT_PATH std::optional<ProtocolWork> Stack::NextPendingWork(std::uint64_t owner_tag) {
  auto it = backlogs_.find(owner_tag);
  if (it == backlogs_.end() || it->second.total == 0) {
    return std::nullopt;
  }
  OwnerBacklog& backlog = it->second;
  for (int prio = rc::kMaxPriority; prio >= 0; --prio) {
    auto& bucket = backlog.buckets[static_cast<std::size_t>(prio)];
    if (bucket.empty()) {
      continue;
    }
    PendingPacket pending = std::move(bucket.front());
    bucket.pop_front();
    --backlog.per_container_count[pending.backlog_key];
    --backlog.total;
    return MakeWork(pending.packet, std::move(pending.charge_to));
  }
  return std::nullopt;
}

bool Stack::HasPendingWork(std::uint64_t owner_tag) const {
  auto it = backlogs_.find(owner_tag);
  return it != backlogs_.end() && it->second.total > 0;
}

rc::ContainerRef Stack::PeekPendingContainer(std::uint64_t owner_tag) const {
  auto it = backlogs_.find(owner_tag);
  if (it == backlogs_.end() || it->second.total == 0) {
    return nullptr;
  }
  for (int prio = rc::kMaxPriority; prio >= 0; --prio) {
    const auto& bucket = it->second.buckets[static_cast<std::size_t>(prio)];
    if (!bucket.empty()) {
      return bucket.front().charge_to;
    }
  }
  return nullptr;
}

ListenSocket* Stack::DemuxListen(std::uint16_t port, Addr source) {
  ListenSocket* best = nullptr;
  for (const ListenRef& ls : listeners_) {
    if (ls->closed() || ls->port() != port || !ls->filter().Matches(source)) {
      continue;
    }
    if (best == nullptr || ls->filter().Specificity() > best->filter().Specificity()) {
      best = ls.get();
    }
  }
  return best;
}

Stack::DemuxResult Stack::EarlyDemux(const Packet& p) {
  if (p.type == PacketType::kSyn) {
    ListenSocket* ls = DemuxListen(p.dst.port, p.src.addr);
    if (ls == nullptr) {
      return {};
    }
    return DemuxResult{ls->container(), ls->owner_tag(), ls};
  }
  auto it = pcbs_.find(p.flow_id);
  if (it == pcbs_.end()) {
    return {};
  }
  return DemuxResult{it->second->container(), it->second->owner_tag(), nullptr};
}

sim::Duration Stack::CostFor(PacketType t) const {
  switch (t) {
    case PacketType::kSyn:
      return costs_.syn_processing;
    case PacketType::kAck:
      return costs_.ack_processing;
    case PacketType::kData:
      return costs_.data_in;
    case PacketType::kFin:
    case PacketType::kRst:
      return costs_.fin_processing;
    case PacketType::kSynAck:
      break;  // never an input
  }
  return costs_.data_in;
}

ProtocolWork Stack::MakeWork(const Packet& p, rc::ContainerRef charge_to) {
  ProtocolWork work;
  work.cost = CostFor(p.type);
  work.charge_to = std::move(charge_to);
  work.apply = [this, p] {
    switch (p.type) {
      case PacketType::kSyn:
        ApplySyn(p);
        break;
      case PacketType::kAck:
        ApplyAck(p);
        break;
      case PacketType::kData:
        ApplyData(p);
        break;
      case PacketType::kFin:
        ApplyFin(p);
        break;
      case PacketType::kRst:
        ApplyRst(p);
        break;
      case PacketType::kSynAck:
        break;
    }
  };
  return work;
}

void Stack::ApplySyn(const Packet& p) {
  ListenSocket* ls = DemuxListen(p.dst.port, p.src.addr);
  if (ls == nullptr) {
    EmitRst(p);
    return;
  }
  ++ls->syns_received;
  if (pcbs_.contains(p.flow_id)) {
    return;  // duplicate SYN (retransmission); SYN-ACK already sent
  }

  if (static_cast<int>(ls->syn_queue().size()) >= ls->syn_backlog()) {
    // Drop-oldest eviction: a flood cannot permanently exclude well-behaved
    // clients, but every eviction is a dropped SYN and is reported to the
    // application (Section 5.7).
    ConnRef victim = ls->syn_queue().front();
    ls->syn_queue().pop_front();
    const Addr victim_src = victim->client().addr;
    Teardown(*victim);
    ++ls->syns_dropped;
    ++stats_.syn_drops;
    env_->OnSynDrop(*ls, victim_src);
  }

  rc::ContainerRef container = ls->container();
  if (auto charged = container->ChargeMemory(costs_.connection_memory_bytes,
                                             rc::MemorySource::kConnection);
      !charged.ok()) {
    // Admission control: the PCB + buffer memory cannot be charged (container
    // limit, or the broker refused non-reclaimable pressure on the machine).
    ++stats_.mem_reject_drops;
    EmitRst(p);
    return;
  }
  connection_memory_bytes_ += costs_.connection_memory_bytes;
  auto conn = std::make_shared<Connection>(p.flow_id, p.src, p.dst.port, container,
                                           ls->owner_tag());
  pcbs_[p.flow_id] = conn;
  ls->syn_queue().push_back(conn);

  Packet synack;
  synack.type = PacketType::kSynAck;
  synack.src = Endpoint{Addr{0}, p.dst.port};
  synack.dst = p.src;
  synack.flow_id = p.flow_id;
  ++stats_.packets_out;
  env_->EmitToWire(synack, container);
}

void Stack::ApplyAck(const Packet& p) {
  auto it = pcbs_.find(p.flow_id);
  if (it == pcbs_.end()) {
    EmitRst(p);  // half-open entry was evicted; client must retry
    return;
  }
  ConnRef conn = it->second;
  if (conn->state() != ConnState::kSynRcvd) {
    return;  // duplicate ACK
  }
  ListenSocket* ls = DemuxListen(conn->server_port(), conn->client().addr);
  if (ls == nullptr) {
    Teardown(*conn);
    EmitRst(p);
    return;
  }
  auto& synq = ls->syn_queue();
  synq.erase(std::remove(synq.begin(), synq.end(), conn), synq.end());

  if (static_cast<int>(ls->accept_queue().size()) >= ls->accept_backlog()) {
    ++ls->accept_drops;
    ++stats_.accept_drops;
    Teardown(*conn);
    EmitRst(p);
    return;
  }
  conn->set_state(ConnState::kEstablished);
  ls->accept_queue().push_back(conn);
  env_->WakeAcceptors(*ls);
}

void Stack::ApplyData(const Packet& p) {
  auto it = pcbs_.find(p.flow_id);
  if (it == pcbs_.end()) {
    return;
  }
  ConnRef conn = it->second;
  if (conn->state() != ConnState::kEstablished) {
    return;
  }
  conn->recv_queue().push_back(p.request);
  ++conn->requests_received;
  if (conn->container()) {
    conn->container()->CountPacketReceived(p.size_bytes);
  }
  env_->WakeConnection(*conn);
}

void Stack::ApplyFin(const Packet& p) {
  auto it = pcbs_.find(p.flow_id);
  if (it == pcbs_.end()) {
    return;
  }
  it->second->set_peer_closed();
  env_->WakeConnection(*it->second);
}

void Stack::ApplyRst(const Packet& p) {
  auto it = pcbs_.find(p.flow_id);
  if (it == pcbs_.end()) {
    return;
  }
  ConnRef conn = it->second;
  conn->set_peer_closed();
  Teardown(*conn);
  env_->WakeConnection(*conn);
}

void Stack::Teardown(Connection& conn) {
  if (conn.torn_down()) {
    return;
  }
  conn.set_torn_down();
  conn.set_state(ConnState::kClosed);
  // Every teardown path funnels here exactly once (torn_down guard above):
  // application close, client reset, accept-queue overflow, SYN-queue
  // eviction, listener close, and stack destruction.
  if (conn.container()) {
    conn.container()->ReleaseMemory(costs_.connection_memory_bytes,
                                    rc::MemorySource::kConnection);
    connection_memory_bytes_ -= costs_.connection_memory_bytes;
    RC_DCHECK(connection_memory_bytes_ >= 0);
  }
  pcbs_.erase(conn.flow_id());
}

void Stack::EmitRst(const Packet& cause) {
  Packet rst;
  rst.type = PacketType::kRst;
  rst.src = cause.dst;
  rst.dst = cause.src;
  rst.flow_id = cause.flow_id;
  ++stats_.rsts_out;
  ++stats_.packets_out;
  env_->EmitToWire(rst);
}

void Stack::RegisterMetrics(telemetry::Registry& registry) {
  registry.AddProbe("net.packets_in", "packets",
                    [this] { return static_cast<double>(stats_.packets_in); });
  registry.AddProbe("net.packets_out", "packets",
                    [this] { return static_cast<double>(stats_.packets_out); });
  registry.AddProbe("net.syns_in", "packets",
                    [this] { return static_cast<double>(stats_.syns_in); });
  registry.AddProbe("net.syn_drops", "drops",
                    [this] { return static_cast<double>(stats_.syn_drops); });
  registry.AddProbe("net.backlog_drops", "drops",
                    [this] { return static_cast<double>(stats_.backlog_drops); });
  registry.AddProbe("net.rsts_out", "packets",
                    [this] { return static_cast<double>(stats_.rsts_out); });
  registry.AddProbe("net.accept_drops", "drops",
                    [this] { return static_cast<double>(stats_.accept_drops); });
  registry.AddProbe("net.mem_reject_drops", "drops",
                    [this] { return static_cast<double>(stats_.mem_reject_drops); });
  registry.AddProbe("net.pcbs", "connections",
                    [this] { return static_cast<double>(pcbs_.size()); });
  registry.AddProbe("net.connection_memory_bytes", "bytes", [this] {
    return static_cast<double>(connection_memory_bytes_);
  });
  registry.AddProbe("net.listeners", "sockets",
                    [this] { return static_cast<double>(listeners_.size()); });
  registry.AddProbe("net.backlog_depth", "packets", [this] {
    int total = 0;
    for (const auto& [tag, backlog] : backlogs_) {
      total += backlog.total;
    }
    return static_cast<double>(total);
  });
}

}  // namespace net
