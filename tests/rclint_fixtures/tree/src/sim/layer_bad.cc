// Layering fixture: src/sim/ is the foundation layer and must not reach up
// into the kernel or the server.
#include "src/kernel/kernel.h"  // illegal: sim -> kernel
#include "src/httpd/server.h"   // illegal: sim -> httpd

void SimLayerBad() {}
