# Empty compiler generated dependencies file for rc_xp.
# This may be replaced when dependencies are built.
