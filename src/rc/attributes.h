// Container attributes: scheduling parameters, resource limits, and network
// QoS values (Section 4.1: "Containers have attributes; these are used to
// provide scheduling parameters, resource limits, and network QoS values").
#ifndef SRC_RC_ATTRIBUTES_H_
#define SRC_RC_ATTRIBUTES_H_

#include <cstdint>

#include "src/common/expected.h"

namespace rc {

// Scheduling class of a container, mirroring the prototype's multi-level
// policy (Section 5.1): a container either holds a fixed-share guarantee
// from its parent, or time-shares the CPU granted to its parent with its
// sibling time-share containers. Only fixed-share containers may have
// children.
enum class SchedClass {
  kTimeShare,
  kFixedShare,
};

// Numeric priorities act as proportional weights among sibling time-share
// containers. Priority 0 is the starvation class used for denial-of-service
// defense (Section 4.8): a priority-0 container is scheduled — and its
// pending network processing performed — only when nothing else is runnable.
inline constexpr int kMinPriority = 0;
inline constexpr int kMaxPriority = 63;
inline constexpr int kDefaultPriority = 16;

struct SchedParams {
  SchedClass cls = SchedClass::kTimeShare;
  int priority = kDefaultPriority;  // time-share weight; 0 = only-when-idle
  double fixed_share = 0.0;         // fraction of parent, for kFixedShare
};

struct Attributes {
  SchedParams sched;

  // Maximum fraction of the whole machine's CPU this container (with its
  // descendants) may consume, enforced over a sliding window; 0 = unlimited.
  // This is the "resource sand-box" mechanism of Section 5.6.
  double cpu_limit = 0.0;

  // Maximum bytes charged to this container's subtree; 0 = unlimited.
  std::int64_t memory_limit_bytes = 0;

  // Priority used to order kernel protocol processing of this container's
  // pending packets (Section 4.7); -1 means "use sched.priority".
  int network_priority = -1;

  // Checks internal consistency (ranges, share bounds). Cross-container
  // constraints (sibling share sums) are checked by ContainerManager.
  rccommon::Expected<void> Validate() const;

  // The priority used for network processing order.
  int EffectiveNetworkPriority() const {
    return network_priority >= 0 ? network_priority : sched.priority;
  }
};

}  // namespace rc

#endif  // SRC_RC_ATTRIBUTES_H_
