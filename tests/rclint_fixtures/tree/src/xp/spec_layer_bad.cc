// Layering fixture: the spec layer (src/xp/spec*) speaks plain values and
// rc::Attributes only; reaching into simulator internals is illegal.
#include "src/kernel/kernel.h"  // illegal: spec -> kernel
#include "src/net/addr.h"       // illegal: spec -> net
#include "src/disk/disk.h"      // illegal: spec -> disk

void SpecLayerBad() {}
