# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for synflood_defense.
