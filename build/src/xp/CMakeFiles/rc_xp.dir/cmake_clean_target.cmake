file(REMOVE_RECURSE
  "librc_xp.a"
)
