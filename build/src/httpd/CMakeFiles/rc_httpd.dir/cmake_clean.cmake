file(REMOVE_RECURSE
  "CMakeFiles/rc_httpd.dir/cgi.cc.o"
  "CMakeFiles/rc_httpd.dir/cgi.cc.o.d"
  "CMakeFiles/rc_httpd.dir/event_server.cc.o"
  "CMakeFiles/rc_httpd.dir/event_server.cc.o.d"
  "CMakeFiles/rc_httpd.dir/prefork_server.cc.o"
  "CMakeFiles/rc_httpd.dir/prefork_server.cc.o.d"
  "CMakeFiles/rc_httpd.dir/threaded_server.cc.o"
  "CMakeFiles/rc_httpd.dir/threaded_server.cc.o.d"
  "librc_httpd.a"
  "librc_httpd.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rc_httpd.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
